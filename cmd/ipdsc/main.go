// Command ipdsc is the IPDS compiler driver: it compiles a MiniC
// source file (or one of the built-in server workloads) through the
// full pipeline and reports the analysis results — IR dump, discovered
// branch correlations, table sizes — and can emit the binary table
// image the runtime consumes.
//
// Usage:
//
//	ipdsc [-dump] [-corr] [-stats] [-j N] [-cache-dir dir] [-o tables.bin] (file.mc | -workload name)
//
// -j selects the per-function compile parallelism (0 = all cores, 1 =
// sequential); -cache-dir points at a persistent content-addressed
// table cache, so recompiles only re-analyse functions whose IR or
// alias facts changed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/tcache"
	"repro/internal/workload"
)

func main() {
	var (
		dump     = flag.Bool("dump", false, "print the lowered IR")
		corr     = flag.Bool("corr", false, "print discovered branch correlations")
		stats    = flag.Bool("stats", false, "print table size statistics (Figure 8 metric)")
		out      = flag.String("o", "", "write the binary table image to this file")
		wlName   = flag.String("workload", "", "compile a built-in server workload instead of a file")
		promote  = flag.Bool("promote", false, "enable region load promotion (ablation pipeline)")
		workers  = flag.Int("j", 0, "per-function compile workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheDir = flag.String("cache-dir", "", "persistent per-function table cache directory")
	)
	flag.Parse()

	src, name, err := loadSource(*wlName, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsc:", err)
		os.Exit(1)
	}

	opts := ir.DefaultOptions
	if *promote {
		opts.RegionPromotion = true
	}
	cfg := pipeline.Config{Workers: *workers}
	if *cacheDir != "" {
		cache, err := tcache.New(0, *cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsc: cache:", err)
			os.Exit(1)
		}
		cfg.Cache = cache
	}
	art, err := pipeline.CompileWith(src, opts, cfg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsc:", err)
		os.Exit(1)
	}
	if cfg.Cache != nil {
		s := cfg.Cache.Stats()
		fmt.Fprintf(os.Stderr, "ipdsc: tcache: %d hits (%d from disk), %d misses\n",
			s.Hits, s.DiskHits, s.Misses)
	}

	fmt.Printf("%s: %d functions, %d objects, %d strings\n",
		name, len(art.Prog.Funcs), len(art.Prog.Objects), len(art.Prog.Strings))

	if *dump {
		fmt.Print(art.Prog.Dump())
	}
	if *corr {
		for _, fn := range art.Prog.Funcs {
			ft := art.Tables.Tables[fn]
			if len(ft.Correlations) == 0 {
				continue
			}
			fmt.Printf("func %s: %d checked branches, %d BAT actions\n",
				fn.Name, ft.NumChecked(), ft.NumActions())
			for _, c := range ft.Correlations {
				fmt.Printf("  %s\n", c)
			}
		}
	}
	if *stats {
		s := art.Image.Sizes()
		fmt.Printf("functions:        %d\n", s.Funcs)
		fmt.Printf("avg BSV bits:     %.1f\n", s.AvgBSVBits)
		fmt.Printf("avg BCV bits:     %.1f\n", s.AvgBCVBits)
		fmt.Printf("avg BAT bits:     %.1f\n", s.AvgBATBits)
		fmt.Printf("total BAT entries: %d\n", s.TotalEntries)
	}
	if *out != "" {
		if err := os.WriteFile(*out, art.Image.Marshal(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ipdsc:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote table image to %s\n", *out)
	}
}

func loadSource(wlName string, args []string) (src, name string, err error) {
	if wlName != "" {
		w := workload.ByName(wlName)
		if w == nil {
			return "", "", fmt.Errorf("unknown workload %q", wlName)
		}
		return w.Source, w.Name, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("usage: ipdsc [flags] (file.mc | -workload name)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return string(data), args[0], nil
}
