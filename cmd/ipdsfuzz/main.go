// Command ipdsfuzz stress-tests the zero-false-positive guarantee: it
// generates random MiniC programs (internal/progen), compiles each
// through the full pipeline, runs it clean under the IPDS runtime, and
// fails loudly on any alarm, fault, or compiler error. Optionally each
// program is also attacked to accumulate aggregate detection numbers.
//
// With -wire it instead fuzzes the internal/wire frame decoder: each
// iteration builds a valid frame, then mutates, truncates or extends
// its bytes and feeds the result to wire.Decode, which must return a
// frame or an error — any panic crashes the fuzzer with the offending
// payload — and every successful decode must re-encode and re-decode
// to a fixed point.
//
// Usage:
//
//	ipdsfuzz [-n 1000] [-seed 0] [-attacks 0] [-v]
//	ipdsfuzz -wire [-n 100000] [-seed 0]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"

	"repro/internal/attack"
	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/vm"
	"repro/internal/wire"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "number of random programs (or wire payloads with -wire)")
		seed     = flag.Int64("seed", 0, "first seed")
		attacks  = flag.Int("attacks", 0, "tampering attacks per program (0 = clean runs only)")
		verbose  = flag.Bool("v", false, "log every seed")
		wireMode = flag.Bool("wire", false, "fuzz the wire frame decoder instead of the compiler")
	)
	flag.Parse()

	if *wireMode {
		fuzzWire(*n, *seed)
		return
	}

	var totTrials, totCF, totDet int
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		p := progen.Generate(s)
		art, err := pipeline.Compile(p.Source, ir.DefaultOptions)
		if err != nil {
			fail(s, p.Source, "compile error: %v", err)
		}
		v := vm.New(art.Prog, vm.DefaultConfig, p.Input)
		m := ipds.New(art.Image, ipds.DefaultConfig)
		ipds.Attach(v, m)
		res := v.Run()
		if res.Status == vm.Faulted {
			fail(s, p.Source, "generated program faulted: %v", res.Fault)
		}
		if len(m.Alarms()) > 0 {
			fail(s, p.Source, "FALSE POSITIVE: %v", m.Alarms()[0])
		}
		if *attacks > 0 {
			c := &attack.Campaign{
				Name:      fmt.Sprintf("seed%d", s),
				Artifacts: art,
				Input:     p.Input,
				Model:     attack.ArbitraryWrite,
				Attacks:   *attacks,
				Seed:      s * 31,
			}
			r := c.Run()
			totTrials += len(r.Trials)
			totCF += r.CFChanged
			totDet += r.Detected
		}
		if *verbose {
			fmt.Printf("seed %d ok (%d steps)\n", s, res.Steps)
		}
	}
	fmt.Printf("ipdsfuzz: %d programs, 0 false positives, 0 faults\n", *n)
	if totTrials > 0 {
		fmt.Printf("attacks: %d total, %d changed control flow, %d detected (%.1f%% of CF-changing)\n",
			totTrials, totCF, totDet, 100*float64(totDet)/float64(max(1, totCF)))
	}
}

// fuzzWire hammers wire.Decode with n mutated payloads. Decode's
// contract is totality: frame or error, never a panic, and any decoded
// frame must survive an encode/decode round trip unchanged.
func fuzzWire(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	decoded, errored := 0, 0
	for i := 0; i < n; i++ {
		payload := mutate(rng, validFrame(rng))
		f := decodeGuarded(payload)
		if f == nil {
			errored++
			continue
		}
		decoded++
		re := wire.MustAppend(nil, f)[4:] // strip the length prefix
		f2 := decodeGuarded(re)
		if f2 == nil || !reflect.DeepEqual(f, f2) {
			fmt.Fprintf(os.Stderr, "ipdsfuzz: wire: re-decode of %v diverged\npayload: %x\n", f.Type(), payload)
			os.Exit(1)
		}
	}
	fmt.Printf("ipdsfuzz: wire: %d payloads, %d decoded, %d rejected, 0 panics\n", n, decoded, errored)
}

// decodeGuarded decodes one payload, turning any panic into a fatal
// report. nil means the decoder returned an error.
func decodeGuarded(payload []byte) (f wire.Frame) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "ipdsfuzz: wire: PANIC %v\npayload: %x\n", r, payload)
			os.Exit(1)
		}
	}()
	f, err := wire.Decode(payload)
	if err != nil {
		return nil
	}
	return f
}

// validFrame encodes one random well-formed frame payload.
func validFrame(rng *rand.Rand) []byte {
	var f wire.Frame
	switch rng.Intn(7) {
	case 0:
		var h wire.Hello
		h.Version = uint8(rng.Intn(3))
		rng.Read(h.Image[:])
		h.Program = randString(rng)
		f = h
	case 1:
		f = wire.HelloAck{Version: wire.Version, MaxBatch: uint32(rng.Intn(wire.MaxBatch + 1))}
	case 2:
		evs := make([]wire.Event, rng.Intn(64))
		for i := range evs {
			switch rng.Intn(3) {
			case 0:
				evs[i] = wire.Event{Kind: wire.EvEnter, PC: rng.Uint64()}
			case 1:
				evs[i] = wire.Event{Kind: wire.EvLeave}
			default:
				evs[i] = wire.Event{Kind: wire.EvBranch, PC: rng.Uint64(), Taken: rng.Intn(2) == 0}
			}
		}
		b := wire.Batch{Events: evs}
		if rng.Intn(2) == 0 {
			// Half the batches carry the sampled trace extension, so the
			// mutator hammers the trailing extension area too (truncated
			// ids, unknown tags, bytes behind the block).
			b.TraceID = rng.Uint64() | 1 // nonzero: zero means untraced
			b.OriginNs = rng.Uint64()
		}
		f = b
	case 3:
		f = wire.Alarm{Seq: rng.Uint64(), PC: rng.Uint64(), Func: randString(rng),
			Slot: rng.Uint32() >> 1, Expected: uint8(rng.Intn(4)), Taken: rng.Intn(2) == 0}
	case 4:
		f = wire.Ack{Events: rng.Uint64()}
	case 5:
		f = wire.Error{Code: wire.ErrCode(rng.Intn(8)), Msg: randString(rng)}
	default:
		f = wire.Bye{}
	}
	b, err := wire.Append(nil, f)
	if err != nil {
		// Random inputs above stay within limits; an error here is a bug.
		panic(err)
	}
	return b[4:]
}

func randString(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(24))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return string(b)
}

// mutate corrupts a payload: byte flips, truncation, random extension,
// or wholesale random bytes.
func mutate(rng *rand.Rand, b []byte) []byte {
	switch rng.Intn(5) {
	case 0: // keep valid
		return b
	case 1: // flip a few bytes
		for k := 0; k <= rng.Intn(4); k++ {
			if len(b) > 0 {
				b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
			}
		}
		return b
	case 2: // truncate
		if len(b) > 0 {
			return b[:rng.Intn(len(b))]
		}
		return b
	case 3: // extend with garbage
		tail := make([]byte, 1+rng.Intn(16))
		rng.Read(tail)
		return append(b, tail...)
	default: // wholesale random
		out := make([]byte, rng.Intn(96))
		rng.Read(out)
		return out
	}
}

func fail(seed int64, src, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ipdsfuzz: seed %d: %s\n", seed, fmt.Sprintf(format, args...))
	fmt.Fprintf(os.Stderr, "--- source ---\n%s\n", src)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
