// Command ipdsfuzz stress-tests the zero-false-positive guarantee: it
// generates random MiniC programs (internal/progen), compiles each
// through the full pipeline, runs it clean under the IPDS runtime, and
// fails loudly on any alarm, fault, or compiler error. Optionally each
// program is also attacked to accumulate aggregate detection numbers.
//
// Usage:
//
//	ipdsfuzz [-n 1000] [-seed 0] [-attacks 0] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/vm"
)

func main() {
	var (
		n       = flag.Int("n", 1000, "number of random programs")
		seed    = flag.Int64("seed", 0, "first seed")
		attacks = flag.Int("attacks", 0, "tampering attacks per program (0 = clean runs only)")
		verbose = flag.Bool("v", false, "log every seed")
	)
	flag.Parse()

	var totTrials, totCF, totDet int
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		p := progen.Generate(s)
		art, err := pipeline.Compile(p.Source, ir.DefaultOptions)
		if err != nil {
			fail(s, p.Source, "compile error: %v", err)
		}
		v := vm.New(art.Prog, vm.DefaultConfig, p.Input)
		m := ipds.New(art.Image, ipds.DefaultConfig)
		ipds.Attach(v, m)
		res := v.Run()
		if res.Status == vm.Faulted {
			fail(s, p.Source, "generated program faulted: %v", res.Fault)
		}
		if len(m.Alarms()) > 0 {
			fail(s, p.Source, "FALSE POSITIVE: %v", m.Alarms()[0])
		}
		if *attacks > 0 {
			c := &attack.Campaign{
				Name:      fmt.Sprintf("seed%d", s),
				Artifacts: art,
				Input:     p.Input,
				Model:     attack.ArbitraryWrite,
				Attacks:   *attacks,
				Seed:      s * 31,
			}
			r := c.Run()
			totTrials += len(r.Trials)
			totCF += r.CFChanged
			totDet += r.Detected
		}
		if *verbose {
			fmt.Printf("seed %d ok (%d steps)\n", s, res.Steps)
		}
	}
	fmt.Printf("ipdsfuzz: %d programs, 0 false positives, 0 faults\n", *n)
	if totTrials > 0 {
		fmt.Printf("attacks: %d total, %d changed control flow, %d detected (%.1f%% of CF-changing)\n",
			totTrials, totCF, totDet, 100*float64(totDet)/float64(max(1, totCF)))
	}
}

func fail(seed int64, src, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ipdsfuzz: seed %d: %s\n", seed, fmt.Sprintf(format, args...))
	fmt.Fprintf(os.Stderr, "--- source ---\n%s\n", src)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
