package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

func sampleInfo() server.DebugInfo {
	return server.DebugInfo{
		NowUnixNs: 1_700_000_000_000_000_000,
		Sessions: []server.DebugSession{
			{ID: 1, Program: "telnetd#0", Shard: 1, Events: 1000, Batches: 2, Alarms: 0, Recorded: 1000, IdleMs: 5},
			{ID: 2, Program: "telnetd#1", Shard: 0, Events: 64000, Batches: 125, Alarms: 3, Recorded: 64000, IdleMs: 1,
				LastAlarm: &server.DebugAlarm{
					Seq: 512, PC: 0x1234, Func: "check", Expected: "taken", Taken: false,
					Window: 64, Stack: []string{"main", "check"},
				}},
		},
	}
}

func TestRenderSessionTable(t *testing.T) {
	out := render(sampleInfo())
	for _, want := range []string{
		"2 session(s)", "telnetd#0", "telnetd#1",
		"seq=512 check@0x1234 taken=false expected=taken window=64 stack=main>check",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered view lacks %q:\n%s", want, out)
		}
	}
	// Busiest session first.
	if i0, i1 := strings.Index(out, "telnetd#1"), strings.Index(out, "telnetd#0"); i0 > i1 {
		t.Errorf("sessions not sorted by events desc:\n%s", out)
	}
	if drained := render(server.DebugInfo{Draining: true}); !strings.Contains(drained, "DRAINING") ||
		!strings.Contains(drained, "(no live sessions)") {
		t.Errorf("empty draining view wrong:\n%s", drained)
	}
}

// TestFetchRoundTrip drives fetch against an httptest server producing
// the same JSON the daemon's DebugHandler emits.
func TestFetchRoundTrip(t *testing.T) {
	want := sampleInfo()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/sessions" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(want)
	}))
	defer ts.Close()

	got, err := fetch(ts.Client(), ts.URL+"/debug/sessions")
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if len(got.Sessions) != 2 || got.Sessions[1].LastAlarm == nil ||
		got.Sessions[1].LastAlarm.Func != "check" {
		t.Fatalf("decoded document diverges: %+v", got)
	}
	if _, err := fetch(ts.Client(), ts.URL+"/nope"); err == nil {
		t.Fatal("fetch of a 404 endpoint returned nil error")
	}
}
