package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/incident"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
)

func sampleInfo() server.DebugInfo {
	return server.DebugInfo{
		NowUnixNs: 1_700_000_000_000_000_000,
		Sessions: []server.DebugSession{
			{ID: 1, Program: "telnetd#0", Core: 1, Events: 1000, Batches: 2, Alarms: 0, Recorded: 1000, IdleMs: 5,
				UptimeS: 3.2, AlarmRate: 0},
			{ID: 2, Program: "telnetd#1", Core: 0, Events: 64000, Batches: 125, Alarms: 3, Recorded: 64000, IdleMs: 1,
				UptimeS: 12.7, AlarmRate: 2.5, KernelNs: 17.4,
				LastAlarm: &server.DebugAlarm{
					Seq: 512, PC: 0x1234, Func: "check", Expected: "taken", Taken: false,
					Window: 64, Stack: []string{"main", "check"},
				}},
		},
	}
}

func TestRenderSessionTable(t *testing.T) {
	out := render(sampleInfo())
	for _, want := range []string{
		"2 session(s)", "telnetd#0", "telnetd#1",
		"ALRM/S", "UPTIME", "2.5", "12.7s", "3.2s",
		// Kernel verify cost column: rendered for sessions that have
		// one, a dash for those that don't.
		"KRNL/EV", "17ns",
		"seq=512 check@0x1234 taken=false expected=taken window=64 stack=main>check",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered view lacks %q:\n%s", want, out)
		}
	}
	// Busiest session first.
	if i0, i1 := strings.Index(out, "telnetd#1"), strings.Index(out, "telnetd#0"); i0 > i1 {
		t.Errorf("sessions not sorted by events desc:\n%s", out)
	}
	if drained := render(server.DebugInfo{Draining: true}); !strings.Contains(drained, "DRAINING") ||
		!strings.Contains(drained, "(no live sessions)") {
		t.Errorf("empty draining view wrong:\n%s", drained)
	}
}

func sampleIncidents() server.DebugIncidents {
	return server.DebugIncidents{
		NowUnixNs: 1_700_000_000_000_000_000,
		Enabled:   true,
		Alarms:    69000,
		Folded:    68000,
		Incidents: 2,
		Reduction: 0.9997,
		List: []incident.Incident{
			{ID: 1, Score: 61.5, Func: "check", PC: 0x1234, Alarms: 68900, Folded: 67950,
				Sessions: 4, FirstSeq: 40000, LastSeq: 80000, Bursts: 4, Leads: 1,
				Cluster: 1, ClusterSize: 2, Root: true,
				Evidence: []string{"alarm rate change-point at seq bucket 78"},
				Context:  &incident.Context{Seq: 40001, Window: 64, Stack: []string{"main", "check"}}},
			{ID: 2, Score: 12.0, Func: "act", PC: 0x5678, Alarms: 100, Folded: 50,
				Sessions: 4, FirstSeq: 41000, LastSeq: 79000, Cluster: 1, ClusterSize: 2},
		},
	}
}

func TestRenderIncidentView(t *testing.T) {
	out := renderIncidents(sampleIncidents())
	for _, want := range []string{
		"69000 alarm(s) folded into 2 incident(s)",
		"100.0% reduction", // %.1f rounds 0.9997
		"check@0x1234", "act@0x5678", "root",
		"alarm rate change-point at seq bucket 78",
		"context: alarm seq=40001 window=64 stack=main>check",
		"[40000, 80000]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("incident view lacks %q:\n%s", want, out)
		}
	}
	// Rank order is the document order.
	if i0, i1 := strings.Index(out, "check@0x1234"), strings.Index(out, "act@0x5678"); i0 > i1 {
		t.Errorf("incidents not rendered in rank order:\n%s", out)
	}
	if off := renderIncidents(server.DebugIncidents{}); !strings.Contains(off, "disabled") {
		t.Errorf("disabled-stage view wrong:\n%s", off)
	}
	if empty := renderIncidents(server.DebugIncidents{Enabled: true}); !strings.Contains(empty, "(no incidents)") {
		t.Errorf("empty view wrong:\n%s", empty)
	}
}

func TestRenderFleetView(t *testing.T) {
	nodes := []fleetNode{
		{Base: "http://n0:6060", Info: sampleInfo()},
		{Base: "http://n1:6060", Info: server.DebugInfo{Draining: true, Sessions: []server.DebugSession{
			{ID: 7, Program: "ftpd#0", Core: 0, Events: 9000, Batches: 18, UptimeS: 1.1},
		}}},
		{Base: "http://n2:6060", Err: errFake},
	}
	out := renderFleet(nodes)
	for _, want := range []string{
		"3 node(s)",
		"node0", "serving — 2 session(s)",
		"node1", "DRAINING — 1 session(s)",
		"node2", "UNREACHABLE",
		"NODE", "telnetd#0", "telnetd#1", "ftpd#0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet view lacks %q:\n%s", want, out)
		}
	}
	// Busiest session first across nodes: telnetd#1 (64000 events on
	// node0) before ftpd#0 (9000 on node1) before telnetd#0 (1000).
	i0, i1, i2 := strings.Index(out, "telnetd#1"), strings.Index(out, "ftpd#0"), strings.Index(out, "telnetd#0")
	if !(i0 < i1 && i1 < i2) {
		t.Errorf("fleet sessions not merged busiest-first:\n%s", out)
	}
	if empty := renderFleet([]fleetNode{{Base: "http://n0:6060"}}); !strings.Contains(empty, "(no live sessions)") {
		t.Errorf("empty fleet view wrong:\n%s", empty)
	}
}

var errFake = fmt.Errorf("connection refused")

// TestRenderFleetTotals pins the PR 10 fleet columns: per-node kernel
// ns/event and traced-batch e2e p50/p99 on the node lines, a rolled-up
// cluster totals line (event-weighted kernel, trace-weighted p50,
// worst-node p99), and the KRNL/EV session column.
func TestRenderFleetTotals(t *testing.T) {
	nodes := []fleetNode{
		{Base: "http://n0:6060", Info: server.DebugInfo{
			Events: 1000, Alarms: 5, KernelNs: 100, TraceN: 10,
			E2EP50Ns: 1000, E2EP99Ns: 9000,
			Sessions: []server.DebugSession{{ID: 1, Program: "telnetd#0", Events: 1000, KernelNs: 100}},
		}},
		{Base: "http://n1:6060", Info: server.DebugInfo{
			Events: 3000, Alarms: 7, KernelNs: 100, TraceN: 10,
			E2EP50Ns: 3000, E2EP99Ns: 5000,
			Sessions: []server.DebugSession{{ID: 2, Program: "ftpd#0", Events: 3000, KernelNs: 100}},
		}},
	}
	out := renderFleet(nodes)
	for _, want := range []string{
		"100ns/ev",                   // per-node kernel figure
		"e2e 1µs/9µs", "e2e 3µs/5µs", // per-node p50/p99
		"totals: 2 session(s), 4000 event(s), 12 alarm(s), 100ns/ev, e2e 2µs/9µs",
		"KRNL/EV", "100ns", // session column
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet view lacks %q:\n%s", want, out)
		}
	}
}

func sampleTimeline() tsdb.Timeline {
	return tsdb.Timeline{
		NowUnixNs:  1_700_000_000_000_000_000,
		IntervalNs: 1_000_000_000,
		TimesNs:    []int64{1000, 2000, 3000},
		Series: []tsdb.Series{
			{Name: "server_events_total", Kind: tsdb.KindCounter, Points: []int64{100, 400, 200}},
			{Name: "server_verify_ns/p99", Kind: tsdb.KindGauge, Points: []int64{7, 7, 7}},
		},
	}
}

// TestRenderHistory pins the sparkline view: one row per series,
// min/last/max columns, counter series marked as deltas, and flat
// series rendered all-low rather than dividing by zero.
func TestRenderHistory(t *testing.T) {
	out := renderHistory(sampleTimeline())
	for _, want := range []string{
		"3 sample(s) every 1s",
		"server_events_total (Δ)",
		"server_verify_ns/p99",
		"▁█▃", // 100/400/200 scaled onto eight ticks
		"▁▁▁", // flat series
		"MIN", "LAST", "MAX",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("history view lacks %q:\n%s", want, out)
		}
	}
	if empty := renderHistory(tsdb.Timeline{}); !strings.Contains(empty, "(no history yet)") {
		t.Errorf("empty history view wrong:\n%s", empty)
	}
}

// TestFetchTimelineRoundTrip mirrors TestFetchRoundTrip for the
// /debug/timeline document tsdb's Handler emits.
func TestFetchTimelineRoundTrip(t *testing.T) {
	want := sampleTimeline()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/timeline" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(want)
	}))
	defer ts.Close()

	got, err := fetchTimeline(ts.Client(), ts.URL+"/debug/timeline")
	if err != nil {
		t.Fatalf("fetchTimeline: %v", err)
	}
	if len(got.Series) != 2 || got.Series[0].Name != "server_events_total" || len(got.TimesNs) != 3 {
		t.Fatalf("decoded document diverges: %+v", got)
	}
	if _, err := fetchTimeline(ts.Client(), ts.URL+"/nope"); err == nil {
		t.Fatal("fetchTimeline of a 404 endpoint returned nil error")
	}
}

// TestFetchRoundTrip drives fetch against an httptest server producing
// the same JSON the daemon's DebugHandler emits.
func TestFetchRoundTrip(t *testing.T) {
	want := sampleInfo()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/sessions" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(want)
	}))
	defer ts.Close()

	got, err := fetch(ts.Client(), ts.URL+"/debug/sessions")
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if len(got.Sessions) != 2 || got.Sessions[1].LastAlarm == nil ||
		got.Sessions[1].LastAlarm.Func != "check" {
		t.Fatalf("decoded document diverges: %+v", got)
	}
	if _, err := fetch(ts.Client(), ts.URL+"/nope"); err == nil {
		t.Fatal("fetch of a 404 endpoint returned nil error")
	}
}

// TestFetchIncidentsRoundTrip mirrors TestFetchRoundTrip for the
// /debug/incidents document the daemon's IncidentsHandler emits.
func TestFetchIncidentsRoundTrip(t *testing.T) {
	want := sampleIncidents()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/incidents" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(want)
	}))
	defer ts.Close()

	got, err := fetchIncidents(ts.Client(), ts.URL+"/debug/incidents")
	if err != nil {
		t.Fatalf("fetchIncidents: %v", err)
	}
	if !got.Enabled || len(got.List) != 2 || got.List[0].Func != "check" ||
		got.List[0].Context == nil || got.List[0].Context.Seq != 40001 {
		t.Fatalf("decoded document diverges: %+v", got)
	}
	if _, err := fetchIncidents(ts.Client(), ts.URL+"/nope"); err == nil {
		t.Fatal("fetchIncidents of a 404 endpoint returned nil error")
	}
}
