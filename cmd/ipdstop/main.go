// Command ipdstop is a top-style live view of an ipdsd daemon: it polls
// the daemon's /debug/sessions telemetry endpoint and renders the live
// session table — per-session event/batch/alarm counts, idle time, and
// each session's most recent forensic alarm context (violating function
// and branch, recent-window size, activation stack).
//
// With -once it prints a single snapshot and exits (scriptable, and
// what the tests drive); otherwise it redraws every -interval using an
// ANSI home+clear, like top.
//
// Usage:
//
//	ipdstop [-addr http://127.0.0.1:6060] [-interval 2s] [-once]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:6060", "ipdsd telemetry base URL (its -telemetry address)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one snapshot and exit")
	)
	flag.Parse()

	url := strings.TrimRight(*addr, "/")
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url += "/debug/sessions"

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		info, err := fetch(client, url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdstop:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear, top-style
		}
		os.Stdout.WriteString(render(info))
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch retrieves and decodes one /debug/sessions document.
func fetch(c *http.Client, url string) (server.DebugInfo, error) {
	var info server.DebugInfo
	resp, err := c.Get(url)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return info, err
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return info, fmt.Errorf("%s: %w", url, err)
	}
	return info, nil
}

// render formats one snapshot as the session table. Pure — the tests
// drive it with synthetic documents.
func render(info server.DebugInfo) string {
	var b strings.Builder
	state := "serving"
	if info.Draining {
		state = "DRAINING"
	}
	fmt.Fprintf(&b, "ipdsd %s — %d session(s) — %s\n\n",
		state, len(info.Sessions), time.Unix(0, info.NowUnixNs).Format(time.TimeOnly))
	if len(info.Sessions) == 0 {
		b.WriteString("(no live sessions)\n")
		return b.String()
	}
	sessions := append([]server.DebugSession(nil), info.Sessions...)
	// Busiest first, like top; stable on id so equal rows don't flap.
	sort.SliceStable(sessions, func(i, j int) bool {
		if sessions[i].Events != sessions[j].Events {
			return sessions[i].Events > sessions[j].Events
		}
		return sessions[i].ID < sessions[j].ID
	})
	fmt.Fprintf(&b, "%6s  %-16s %5s %10s %8s %7s %9s %6s  %s\n",
		"ID", "PROGRAM", "SHARD", "EVENTS", "BATCHES", "ALARMS", "RECORDED", "IDLE", "LAST ALARM")
	for _, s := range sessions {
		last := "-"
		if a := s.LastAlarm; a != nil {
			last = fmt.Sprintf("seq=%d %s@%#x taken=%v expected=%s window=%d stack=%s",
				a.Seq, a.Func, a.PC, a.Taken, a.Expected, a.Window, strings.Join(a.Stack, ">"))
		}
		fmt.Fprintf(&b, "%6d  %-16s %5d %10d %8d %7d %9d %5dms  %s\n",
			s.ID, s.Program, s.Shard, s.Events, s.Batches, s.Alarms, s.Recorded, s.IdleMs, last)
	}
	return b.String()
}
