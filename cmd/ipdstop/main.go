// Command ipdstop is a top-style live view of an ipdsd daemon: it polls
// the daemon's /debug/sessions telemetry endpoint and renders the live
// session table — per-session event/batch/alarm counts, uptime, the
// windowed alarm rate, idle time, and each session's most recent
// forensic alarm context (violating function and branch, recent-window
// size, activation stack).
//
// With -incidents it polls /debug/incidents instead and renders the
// incident pipeline's ranked fold of the alarm stream: score, site,
// alarm/fold counts, burst and lead-lag evidence, and the forensic
// context attached to each incident.
//
// With -fleet it polls several daemons' telemetry endpoints and
// renders one merged session table with a NODE column — the operator's
// view of a routed cluster, where a drained node's sessions visibly
// migrate to its peers. An unreachable node shows as such; the rest of
// the fleet still renders. Each node's line carries its kernel
// ns/event and traced-batch e2e p50/p99, and a cluster-totals line
// rolls the fleet up.
//
// With -history it polls /debug/timeline instead and renders each
// metric series as a terminal sparkline — the daemon's in-process
// metric history (internal/obs/tsdb), no external TSDB required.
//
// With -once it prints a single snapshot and exits (scriptable, and
// what the tests drive); otherwise it redraws every -interval using an
// ANSI home+clear, like top.
//
// Usage:
//
//	ipdstop [-addr http://127.0.0.1:6060] [-interval 2s] [-once]
//	        [-incidents] [-history] [-fleet url1,url2,...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/tsdb"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:6060", "ipdsd telemetry base URL (its -telemetry address)")
		interval  = flag.Duration("interval", 2*time.Second, "refresh interval")
		once      = flag.Bool("once", false, "print one snapshot and exit")
		incidents = flag.Bool("incidents", false, "show the ranked incident view instead of the session table")
		history   = flag.Bool("history", false, "show /debug/timeline metric history as sparklines")
		fleet     = flag.String("fleet", "", "comma-separated telemetry base URLs: one merged session table across fleet nodes")
	)
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	var fleetBases []string
	for _, u := range strings.Split(*fleet, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			fleetBases = append(fleetBases, u)
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		var out string
		if len(fleetBases) > 0 {
			out = renderFleet(fetchFleet(client, fleetBases))
		} else if *history {
			tl, err := fetchTimeline(client, base+"/debug/timeline")
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipdstop:", err)
				os.Exit(1)
			}
			out = renderHistory(tl)
		} else if *incidents {
			doc, err := fetchIncidents(client, base+"/debug/incidents")
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipdstop:", err)
				os.Exit(1)
			}
			out = renderIncidents(doc)
		} else {
			info, err := fetch(client, base+"/debug/sessions")
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipdstop:", err)
				os.Exit(1)
			}
			out = render(info)
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear, top-style
		}
		os.Stdout.WriteString(out)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch retrieves and decodes one /debug/sessions document.
func fetch(c *http.Client, url string) (server.DebugInfo, error) {
	var info server.DebugInfo
	resp, err := c.Get(url)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return info, err
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return info, fmt.Errorf("%s: %w", url, err)
	}
	return info, nil
}

// render formats one snapshot as the session table. Pure — the tests
// drive it with synthetic documents.
func render(info server.DebugInfo) string {
	var b strings.Builder
	state := "serving"
	if info.Draining {
		state = "DRAINING"
	}
	fmt.Fprintf(&b, "ipdsd %s — %d session(s) — %s\n\n",
		state, len(info.Sessions), time.Unix(0, info.NowUnixNs).Format(time.TimeOnly))
	if len(info.Sessions) == 0 {
		b.WriteString("(no live sessions)\n")
		return b.String()
	}
	sessions := append([]server.DebugSession(nil), info.Sessions...)
	// Busiest first, like top; stable on id so equal rows don't flap.
	sort.SliceStable(sessions, func(i, j int) bool {
		if sessions[i].Events != sessions[j].Events {
			return sessions[i].Events > sessions[j].Events
		}
		return sessions[i].ID < sessions[j].ID
	})
	fmt.Fprintf(&b, "%6s  %-16s %5s %10s %8s %7s %8s %9s %8s %8s %6s  %s\n",
		"ID", "PROGRAM", "CORE", "EVENTS", "BATCHES", "ALARMS", "ALRM/S", "RECORDED", "KRNL/EV", "UPTIME", "IDLE", "LAST ALARM")
	for _, s := range sessions {
		last := "-"
		if a := s.LastAlarm; a != nil {
			last = fmt.Sprintf("seq=%d %s@%#x taken=%v expected=%s window=%d stack=%s",
				a.Seq, a.Func, a.PC, a.Taken, a.Expected, a.Window, strings.Join(a.Stack, ">"))
		}
		kernel := "-"
		if s.KernelNs > 0 {
			kernel = fmt.Sprintf("%.0fns", s.KernelNs)
		}
		fmt.Fprintf(&b, "%6d  %-16s %5d %10d %8d %7d %8.1f %9d %8s %7.1fs %5dms  %s\n",
			s.ID, s.Program, s.Core, s.Events, s.Batches, s.Alarms, s.AlarmRate,
			s.Recorded, kernel, s.UptimeS, s.IdleMs, last)
	}
	return b.String()
}

// fleetNode is one fleet member's polled state: its telemetry base
// URL, the sessions document if reachable, and the fetch error if not.
type fleetNode struct {
	Base string
	Info server.DebugInfo
	Err  error
}

// fetchFleet polls every node's /debug/sessions; a node that fails to
// answer is reported in its row rather than failing the whole view.
func fetchFleet(c *http.Client, bases []string) []fleetNode {
	nodes := make([]fleetNode, len(bases))
	for i, b := range bases {
		nodes[i].Base = b
		nodes[i].Info, nodes[i].Err = fetch(c, b+"/debug/sessions")
	}
	return nodes
}

// renderFleet formats the merged cluster view: a per-node status line,
// then every live session across the fleet in one busiest-first table
// with a NODE column. Pure — the tests drive it with synthetic
// documents.
func renderFleet(nodes []fleetNode) string {
	var b strings.Builder
	type row struct {
		node int
		s    server.DebugSession
	}
	var rows []row
	total := 0
	// Cluster totals, rolled up from per-node /debug/sessions documents:
	// kernel ns/event weighted by each node's event count, e2e p50 as
	// the trace-weighted mean of node medians, e2e p99 as the worst
	// node's tail.
	var (
		tEvents, tAlarms   uint64
		kernelW            float64
		p50W, traceW, p99M int64
	)
	fmt.Fprintf(&b, "ipds fleet — %d node(s)\n", len(nodes))
	for i, n := range nodes {
		stats := func(info server.DebugInfo) string {
			e2e := "e2e -/-"
			if info.TraceN > 0 {
				e2e = fmt.Sprintf("e2e %s/%s",
					time.Duration(info.E2EP50Ns), time.Duration(info.E2EP99Ns))
			}
			return fmt.Sprintf("%d session(s), %.0fns/ev, %s", len(info.Sessions), info.KernelNs, e2e)
		}
		switch {
		case n.Err != nil:
			fmt.Fprintf(&b, "  node%-2d %-28s UNREACHABLE (%v)\n", i, n.Base, n.Err)
		case n.Info.Draining:
			fmt.Fprintf(&b, "  node%-2d %-28s DRAINING — %s\n", i, n.Base, stats(n.Info))
		default:
			fmt.Fprintf(&b, "  node%-2d %-28s serving — %s\n", i, n.Base, stats(n.Info))
		}
		if n.Err == nil {
			total += len(n.Info.Sessions)
			tEvents += n.Info.Events
			tAlarms += n.Info.Alarms
			kernelW += n.Info.KernelNs * float64(n.Info.Events)
			p50W += n.Info.E2EP50Ns * int64(n.Info.TraceN)
			traceW += int64(n.Info.TraceN)
			if n.Info.E2EP99Ns > p99M {
				p99M = n.Info.E2EP99Ns
			}
			for _, s := range n.Info.Sessions {
				rows = append(rows, row{i, s})
			}
		}
	}
	kernel := 0.0
	if tEvents > 0 {
		kernel = kernelW / float64(tEvents)
	}
	e2e := "e2e -/-"
	if traceW > 0 {
		e2e = fmt.Sprintf("e2e %s/%s", time.Duration(p50W/traceW), time.Duration(p99M))
	}
	fmt.Fprintf(&b, "  totals: %d session(s), %d event(s), %d alarm(s), %.0fns/ev, %s\n",
		total, tEvents, tAlarms, kernel, e2e)
	b.WriteString("\n")
	if total == 0 {
		b.WriteString("(no live sessions)\n")
		return b.String()
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].s.Events != rows[j].s.Events {
			return rows[i].s.Events > rows[j].s.Events
		}
		if rows[i].node != rows[j].node {
			return rows[i].node < rows[j].node
		}
		return rows[i].s.ID < rows[j].s.ID
	})
	fmt.Fprintf(&b, "%6s %6s  %-16s %5s %10s %8s %7s %8s %8s %8s %6s\n",
		"NODE", "ID", "PROGRAM", "CORE", "EVENTS", "BATCHES", "ALARMS", "ALRM/S", "KRNL/EV", "UPTIME", "IDLE")
	for _, r := range rows {
		s := r.s
		kernel := "-"
		if s.KernelNs > 0 {
			kernel = fmt.Sprintf("%.0fns", s.KernelNs)
		}
		fmt.Fprintf(&b, "%6s %6d  %-16s %5d %10d %8d %7d %8.1f %8s %7.1fs %5dms\n",
			fmt.Sprintf("node%d", r.node), s.ID, s.Program, s.Core, s.Events, s.Batches,
			s.Alarms, s.AlarmRate, kernel, s.UptimeS, s.IdleMs)
	}
	return b.String()
}

// fetchTimeline retrieves and decodes one /debug/timeline document.
func fetchTimeline(c *http.Client, url string) (tsdb.Timeline, error) {
	var tl tsdb.Timeline
	resp, err := c.Get(url)
	if err != nil {
		return tl, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return tl, fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return tl, err
	}
	if err := json.Unmarshal(body, &tl); err != nil {
		return tl, fmt.Errorf("%s: %w", url, err)
	}
	return tl, nil
}

// sparkTicks are the eight sparkline glyphs, lowest to highest.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders points as a fixed-width terminal sparkline, scaled
// to the series' own min..max (a flat series renders all-low).
func sparkline(points []int64, width int) string {
	if len(points) > width {
		points = points[len(points)-width:]
	}
	lo, hi := points[0], points[0]
	for _, p := range points {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	var b strings.Builder
	for _, p := range points {
		i := 0
		if hi > lo {
			i = int(int64(len(sparkTicks)-1) * (p - lo) / (hi - lo))
		}
		b.WriteRune(sparkTicks[i])
	}
	return b.String()
}

// historyWidth is how many trailing samples a sparkline shows.
const historyWidth = 60

// renderHistory formats one metric-history snapshot: one sparkline row
// per series with its window min/last/max. Pure — the tests drive it
// with synthetic timelines.
func renderHistory(tl tsdb.Timeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ipdsd history — %d sample(s) every %v — %s\n\n",
		len(tl.TimesNs), time.Duration(tl.IntervalNs), time.Unix(0, tl.NowUnixNs).Format(time.TimeOnly))
	if len(tl.Series) == 0 || len(tl.TimesNs) == 0 {
		b.WriteString("(no history yet)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-40s %12s %12s %12s  %s\n", "SERIES", "MIN", "LAST", "MAX", "HISTORY")
	for _, s := range tl.Series {
		lo, hi := s.Points[0], s.Points[0]
		for _, p := range s.Points {
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		// Counter series show per-interval increments; suffix the name so
		// the unit is readable at a glance.
		name := s.Name
		if s.Kind == tsdb.KindCounter {
			name += " (Δ)"
		}
		fmt.Fprintf(&b, "%-40s %12d %12d %12d  %s\n",
			name, lo, s.Points[len(s.Points)-1], hi, sparkline(s.Points, historyWidth))
	}
	return b.String()
}

// fetchIncidents retrieves and decodes one /debug/incidents document.
func fetchIncidents(c *http.Client, url string) (server.DebugIncidents, error) {
	var doc server.DebugIncidents
	resp, err := c.Get(url)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", url, err)
	}
	return doc, nil
}

// renderIncidents formats one incident-pipeline snapshot: the fold
// header, then the ranked list with each incident's evidence lines and
// forensic context. Pure — the tests drive it with synthetic documents.
func renderIncidents(doc server.DebugIncidents) string {
	var b strings.Builder
	if !doc.Enabled {
		b.WriteString("ipdsd incident stage disabled (-incidents=false on the daemon)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "ipdsd incidents — %d alarm(s) folded into %d incident(s) (%.1f%% reduction, %d deduped, %d dropped) — %s\n\n",
		doc.Alarms, doc.Incidents, doc.Reduction*100, doc.Folded, doc.Dropped,
		time.Unix(0, doc.NowUnixNs).Format(time.TimeOnly))
	if len(doc.List) == 0 {
		b.WriteString("(no incidents)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%4s %8s  %-24s %8s %8s %5s %6s %5s %5s  %s\n",
		"ID", "SCORE", "SITE", "ALARMS", "FOLDED", "SESS", "BURSTS", "LEADS", "ROOT", "SEQ RANGE")
	for _, in := range doc.List {
		root := "-"
		if in.Root {
			root = "root"
		}
		fmt.Fprintf(&b, "%4d %8.1f  %-24s %8d %8d %5d %6d %5d %5s  [%d, %d]\n",
			in.ID, in.Score, fmt.Sprintf("%s@%#x", in.Func, in.PC),
			in.Alarms, in.Folded, in.Sessions, in.Bursts, in.Leads, root,
			in.FirstSeq, in.LastSeq)
		for _, ev := range in.Evidence {
			fmt.Fprintf(&b, "      · %s\n", ev)
		}
		if c := in.Context; c != nil {
			fmt.Fprintf(&b, "      · context: alarm seq=%d window=%d stack=%s\n",
				c.Seq, c.Window, strings.Join(c.Stack, ">"))
		}
	}
	return b.String()
}
