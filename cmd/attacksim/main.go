// Command attacksim regenerates the paper's Figure 7: it attacks every
// server workload with independent seeded memory tamperings and
// reports, per program, how many tamperings changed control flow and
// how many the IPDS detected. It can also run the register-promotion
// ablation.
//
// Usage:
//
//	attacksim [-attacks 100] [-seed 1] [-ablation]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		attacks  = flag.Int("attacks", experiments.DefaultAttacks, "attacks per program")
		seed     = flag.Int64("seed", 1, "campaign base seed")
		ablation = flag.Bool("ablation", false, "also run the register-promotion ablation")
	)
	flag.Parse()

	r, err := experiments.Figure7(*attacks, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
	fmt.Print(r.Render())

	if *ablation {
		a, err := experiments.AblationRegPromo(*attacks, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(a.Render())

		c, err := experiments.AblationComponents(*attacks, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(c.Render())
	}
}
