// Command attacksim regenerates the paper's Figure 7: it attacks every
// server workload with independent seeded memory tamperings and
// reports, per program, how many tamperings changed control flow and
// how many the IPDS detected. It can also run the register-promotion
// ablation.
//
// Usage:
//
//	attacksim [-attacks 100] [-seed 1] [-ablation]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		attacks   = flag.Int("attacks", experiments.DefaultAttacks, "attacks per program")
		seed      = flag.Int64("seed", 1, "campaign base seed")
		ablation  = flag.Bool("ablation", false, "also run the register-promotion ablation")
		telemetry = flag.String("telemetry", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	if *telemetry != "" {
		reg := obs.NewRegistry()
		experiments.SetTelemetry(reg, obs.NewTracer(reg))
		reg.PublishExpvar("ipds")
		srv, addr, err := obs.Serve(*telemetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacksim: telemetry:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "attacksim: telemetry on http://%s/metrics\n", addr)
	}

	r, err := experiments.Figure7(*attacks, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
	fmt.Print(r.Render())

	if *ablation {
		a, err := experiments.AblationRegPromo(*attacks, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(a.Render())

		c, err := experiments.AblationComponents(*attacks, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(c.Render())
	}
}
