// Command ipdsrouter is the fleet's front door: a thin TCP router that
// reads each incoming session's Hello, places the session on a cluster
// node by consistent hash, and then splices bytes both ways with zero
// per-event parsing. Nodes are ipdsd daemons named with -peers; with
// -probe the router polls each node's /debug/sessions endpoint and
// reacts to unreachable or draining nodes by re-placing their traffic,
// so a rolling drain (SIGTERM one ipdsd at a time) never refuses a
// session while any node is up.
//
// Placement uses the same mix-then-jump consistent hash the daemon
// uses to pin sessions to verifier cores, one level up: the fleet is a
// two-level hash from session to node to core.
//
// With -telemetry and -probe the router also serves /debug/fleet: the
// merged cluster view — per-node totals, kernel ns/event, traced-batch
// e2e p50/p99 and node-tagged metric timelines — scraped live from
// every node's telemetry endpoint. `ipdstop -fleet` renders it.
//
// Usage:
//
//	ipdsrouter -peers host1:7077,host2:7077,host3:7077
//	           [-addr :7070] [-probe url1,url2,url3]
//	           [-interval 1s] [-telemetry :6070]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address for routed verifier sessions")
		peers     = flag.String("peers", "", "comma-separated ipdsd node addresses (required)")
		probe     = flag.String("probe", "", "comma-separated /debug/sessions URLs, one per peer in order")
		interval  = flag.Duration("interval", time.Second, "health probe interval")
		telemetry = flag.String("telemetry", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	if *peers == "" {
		fmt.Fprintln(os.Stderr, "ipdsrouter: -peers is required")
		os.Exit(1)
	}
	nodes := strings.Split(*peers, ",")
	ring := fleet.NewRing(nodes)
	reg := obs.NewRegistry()

	if *probe != "" {
		urls := strings.Split(*probe, ",")
		if len(urls) != len(nodes) {
			fmt.Fprintf(os.Stderr, "ipdsrouter: %d -probe URLs for %d peers\n", len(urls), len(nodes))
			os.Exit(1)
		}
		p := fleet.NewProber(ring, urls, *interval, reg)
		ctx, cancel := context.WithTimeout(context.Background(), *interval)
		p.ProbeOnce(ctx) // first placement reflects reality
		cancel()
		p.Start()
		defer p.Stop()
	}

	if *telemetry != "" {
		reg.PublishExpvar("ipdsrouter")
		mux := obs.NewMux(reg)
		// The router is the one process that knows every node, so it is
		// where the merged cluster view lives: /debug/fleet scrapes each
		// node's totals and timeline and serves them node-tagged.
		if *probe != "" {
			agg := fleet.NewAggregator(strings.Split(*probe, ","), *interval)
			mux.Handle("/debug/fleet", agg.Handler())
		}
		tsrv, taddr, err := obs.ServeHandler(*telemetry, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsrouter: telemetry:", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		fmt.Fprintf(os.Stderr, "ipdsrouter: telemetry on http://%s/metrics, fleet view on /debug/fleet\n", taddr)
	}

	router := fleet.NewRouter(ring, fleet.RouterConfig{Reg: reg})
	bound, err := router.ListenAndServe(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsrouter:", err)
		os.Exit(1)
	}
	fmt.Printf("ipdsrouter: routing %s across %d nodes: %s\n", bound, len(nodes), strings.Join(nodes, ", "))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Fprintf(os.Stderr, "ipdsrouter: %v: closing\n", sig)
	router.Close()
}
