// Command perfsim regenerates the paper's performance results on the
// Table 1 machine: Figure 9 (normalized runtime with the IPDS unit),
// the detection-latency measurement, the checking-speed claim and the
// compilation-time note. -table1 prints the machine configuration.
//
// Usage:
//
//	perfsim [-table1] [-checking] [-compile] [-baseline FILE]
//
// -compile measures all three pipeline modes (sequential, parallel,
// warm-cache); -baseline additionally writes that measurement as JSON
// (the committed BENCH_pr2.json compile-time baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "print the simulated machine configuration")
		checking  = flag.Bool("checking", false, "also measure IPDS checking speed")
		compile   = flag.Bool("compile", false, "also measure compilation times")
		baseline  = flag.String("baseline", "", "write the -compile measurement as JSON to this file")
		telemetry = flag.String("telemetry", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	if *telemetry != "" {
		reg := obs.NewRegistry()
		experiments.SetTelemetry(reg, obs.NewTracer(reg))
		reg.PublishExpvar("ipds")
		srv, addr, err := obs.Serve(*telemetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfsim: telemetry:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "perfsim: telemetry on http://%s/metrics\n", addr)
	}

	cfg := cpu.DefaultConfig()
	if *table1 {
		fmt.Print(experiments.Table1(cfg))
		fmt.Println()
	}

	r, err := experiments.Figure9(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfsim:", err)
		os.Exit(1)
	}
	fmt.Print(r.Render())

	if *checking {
		c, err := experiments.CheckingSpeed(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfsim:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(c.Render())
	}
	if *compile || *baseline != "" {
		ct, err := experiments.CompileTimes()
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfsim:", err)
			os.Exit(1)
		}
		if *baseline != "" {
			// Baseline files additionally carry the raw verification
			// kernel's throughput (the serve stack's upper bound).
			if ct.Kernel, err = experiments.KernelThroughput(); err != nil {
				fmt.Fprintln(os.Stderr, "perfsim:", err)
				os.Exit(1)
			}
		}
		fmt.Println()
		fmt.Print(ct.Render())
		if *baseline != "" {
			data, err := json.MarshalIndent(ct, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "perfsim:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*baseline, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "perfsim:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "perfsim: wrote compile-time baseline to %s\n", *baseline)
		}
	}
}
