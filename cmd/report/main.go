// Command report runs the complete evaluation — every table, figure,
// in-text measurement and ablation — and emits one consolidated plain
// text report. EXPERIMENTS.md's numbers are produced by this tool.
//
// Usage:
//
//	report [-attacks 100] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/experiments"
)

func main() {
	var (
		attacks = flag.Int("attacks", experiments.DefaultAttacks, "attacks per program")
		seed    = flag.Int64("seed", 1, "campaign base seed")
	)
	flag.Parse()

	cfg := cpu.DefaultConfig()
	fmt.Printf("IPDS reproduction report (attacks=%d seed=%d)\n\n", *attacks, *seed)

	fmt.Print(experiments.Table1(cfg))
	fmt.Println()

	section := func(name string, f func() (interface{ Render() string }, error)) {
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		fmt.Println()
	}

	section("figure7", func() (interface{ Render() string }, error) {
		return experiments.Figure7(*attacks, *seed)
	})
	section("figure8", func() (interface{ Render() string }, error) {
		return experiments.Figure8()
	})
	section("figure9", func() (interface{ Render() string }, error) {
		return experiments.Figure9(cfg)
	})
	section("checking-speed", func() (interface{ Render() string }, error) {
		return experiments.CheckingSpeed(cfg)
	})
	section("compile-times", func() (interface{ Render() string }, error) {
		return experiments.CompileTimes()
	})
	section("ablation-components", func() (interface{ Render() string }, error) {
		return experiments.AblationComponents(*attacks, *seed)
	})
	section("ablation-regpromo", func() (interface{ Render() string }, error) {
		return experiments.AblationRegPromo(*attacks, *seed)
	})
	section("extension-inlining", func() (interface{ Render() string }, error) {
		return experiments.ExtensionInlining(*attacks, *seed)
	})
}
