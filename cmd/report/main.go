// Command report runs the complete evaluation — every table, figure,
// in-text measurement and ablation — and emits one consolidated plain
// text report. EXPERIMENTS.md's numbers are produced by this tool.
//
// The -obs mode instead runs every workload on a metrics-instrumented
// machine and renders the registry snapshot as the per-workload
// observability table (checked %, avg BAT accesses/branch, spill
// rate); -baseline additionally writes the rows as JSON so later perf
// PRs have numbers to beat.
//
// Usage:
//
//	report [-attacks 100] [-seed 1]
//	report -obs [-baseline BENCH.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// obsReport runs the observability-driven per-workload report and
// optionally persists the rows as a JSON baseline file.
func obsReport(baseline string) {
	// TelemetryReport reuses the registry installed by -telemetry (so a
	// live scrape sees the same numbers) or creates its own.
	r, err := experiments.TelemetryReport()
	if err != nil {
		fmt.Fprintln(os.Stderr, "report: telemetry:", err)
		os.Exit(1)
	}
	fmt.Print(r.Render())
	if baseline == "" {
		return
	}
	f, err := os.Create(baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Rows); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "report: wrote %s\n", baseline)
}

func main() {
	var (
		attacks   = flag.Int("attacks", experiments.DefaultAttacks, "attacks per program")
		seed      = flag.Int64("seed", 1, "campaign base seed")
		obsMode   = flag.Bool("obs", false, "render the observability-derived per-workload table instead of the full report")
		baseline  = flag.String("baseline", "", "with -obs, also write the telemetry rows as JSON to this file")
		telemetry = flag.String("telemetry", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	if *telemetry != "" {
		reg := obs.NewRegistry()
		experiments.SetTelemetry(reg, obs.NewTracer(reg))
		reg.PublishExpvar("ipds")
		srv, addr, err := obs.Serve(*telemetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report: telemetry:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "report: telemetry on http://%s/metrics\n", addr)
	}

	if *obsMode || *baseline != "" {
		obsReport(*baseline)
		return
	}

	cfg := cpu.DefaultConfig()
	fmt.Printf("IPDS reproduction report (attacks=%d seed=%d)\n\n", *attacks, *seed)

	fmt.Print(experiments.Table1(cfg))
	fmt.Println()

	section := func(name string, f func() (interface{ Render() string }, error)) {
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		fmt.Println()
	}

	section("figure7", func() (interface{ Render() string }, error) {
		return experiments.Figure7(*attacks, *seed)
	})
	section("figure8", func() (interface{ Render() string }, error) {
		return experiments.Figure8()
	})
	section("figure9", func() (interface{ Render() string }, error) {
		return experiments.Figure9(cfg)
	})
	section("checking-speed", func() (interface{ Render() string }, error) {
		return experiments.CheckingSpeed(cfg)
	})
	section("compile-times", func() (interface{ Render() string }, error) {
		return experiments.CompileTimes()
	})
	section("ablation-components", func() (interface{ Render() string }, error) {
		return experiments.AblationComponents(*attacks, *seed)
	})
	section("ablation-regpromo", func() (interface{ Render() string }, error) {
		return experiments.AblationRegPromo(*attacks, *seed)
	})
	section("extension-inlining", func() (interface{ Render() string }, error) {
		return experiments.ExtensionInlining(*attacks, *seed)
	})
}
