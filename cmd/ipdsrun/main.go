// Command ipdsrun executes a MiniC program (or a built-in workload)
// under the IPDS runtime. Input lines come from stdin or from repeated
// -in flags; any infeasible-path alarm is reported with its location.
//
// Usage:
//
//	ipdsrun [-in line]... [-trace] (file.mc | -workload name [-session])
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/vm"
	"repro/internal/workload"
)

type lineFlags []string

func (l *lineFlags) String() string { return fmt.Sprint(*l) }
func (l *lineFlags) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	var (
		inputs  lineFlags
		wlName  = flag.String("workload", "", "run a built-in server workload")
		session = flag.Bool("session", false, "use the workload's bundled attack session as input")
		trace   = flag.Bool("trace", false, "print per-branch events")
	)
	flag.Var(&inputs, "in", "input line (repeatable)")
	flag.Parse()

	var src, name string
	var input []string
	if *wlName != "" {
		w := workload.ByName(*wlName)
		if w == nil {
			fmt.Fprintf(os.Stderr, "ipdsrun: unknown workload %q\n", *wlName)
			os.Exit(1)
		}
		src, name = w.Source, w.Name
		if *session {
			input = w.AttackSession
		}
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: ipdsrun [flags] (file.mc | -workload name)")
			os.Exit(1)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsrun:", err)
			os.Exit(1)
		}
		src, name = string(data), flag.Arg(0)
	}
	if len(input) == 0 {
		input = append(input, inputs...)
	}
	if len(input) == 0 {
		// Read input lines from stdin when nothing else is given.
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			input = append(input, sc.Text())
		}
	}

	art, err := pipeline.Compile(src, ir.DefaultOptions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsrun:", err)
		os.Exit(1)
	}
	v := vm.New(art.Prog, vm.DefaultConfig, input)
	m := ipds.New(art.Image, ipds.DefaultConfig)
	ipds.Attach(v, m)
	if *trace {
		v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
			fmt.Printf("branch %#x taken=%v expected=%v\n", br.PC, taken, m.Status(br.PC))
		}})
	}
	res := v.Run()

	for _, line := range res.Output {
		fmt.Println(line)
	}
	fmt.Printf("-- %s: status=%v exit=%d steps=%d branches-checked=%d\n",
		name, res.Status, res.ExitCode, res.Steps, m.Stats().Verified)
	if res.Fault != nil {
		fmt.Printf("-- fault: %v\n", res.Fault)
	}
	for _, a := range m.Alarms() {
		fmt.Printf("-- ALARM: %s\n", a)
	}
	if len(m.Alarms()) > 0 {
		os.Exit(2)
	}
}
