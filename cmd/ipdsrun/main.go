// Command ipdsrun executes a MiniC program (or a built-in workload)
// under the IPDS runtime. Input lines come from stdin or from repeated
// -in flags; any infeasible-path alarm is reported with its location.
//
// With -telemetry the process serves live observability endpoints
// (/metrics in Prometheus text, /debug/vars, /debug/pprof/) while the
// program runs; -repeat keeps the workload running long enough to
// scrape, and -tracefile dumps compile/run phase spans as a Chrome
// trace-event JSON file.
//
// -eventfile records the detector's event stream — function entries,
// exits and committed branches — in the canonical textual form shared
// with the wire protocol's Batch frames (see internal/wire): `enter
// 0x40`, `branch 0x4a T`, `branch 0x52 NT`, `leave`, with '#' comment
// and blank lines ignored. The file replays against a daemon via
// `ipdsload -events-file`, and text ↔ wire round trips are byte-exact.
//
// Usage:
//
//	ipdsrun [-in line]... [-trace] [-telemetry :6060] [-repeat n]
//	        [-tracefile out.json] [-eventfile out.events]
//	        (file.mc | -workload name [-session])
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/vm"
	"repro/internal/wire"
	"repro/internal/workload"
)

type lineFlags []string

func (l *lineFlags) String() string { return fmt.Sprint(*l) }
func (l *lineFlags) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	var (
		inputs    lineFlags
		wlName    = flag.String("workload", "", "run a built-in server workload")
		session   = flag.Bool("session", false, "use the workload's bundled attack session as input")
		trace     = flag.Bool("trace", false, "print per-branch events")
		telemetry = flag.String("telemetry", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		repeat    = flag.Int("repeat", 1, "run the program this many times (keeps telemetry endpoints warm)")
		traceFile = flag.String("tracefile", "", "write compile/run phase spans as Chrome trace-event JSON")
		eventFile = flag.String("eventfile", "", "write the branch-event stream in canonical text form")
	)
	flag.Var(&inputs, "in", "input line (repeatable)")
	flag.Parse()

	var src, name string
	var input []string
	if *wlName != "" {
		w := workload.ByName(*wlName)
		if w == nil {
			fmt.Fprintf(os.Stderr, "ipdsrun: unknown workload %q\n", *wlName)
			os.Exit(1)
		}
		src, name = w.Source, w.Name
		if *session {
			input = w.AttackSession
		}
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: ipdsrun [flags] (file.mc | -workload name)")
			os.Exit(1)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsrun:", err)
			os.Exit(1)
		}
		src, name = string(data), flag.Arg(0)
	}
	if len(input) == 0 {
		input = append(input, inputs...)
	}
	if len(input) == 0 {
		// Read input lines from stdin when nothing else is given.
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			input = append(input, sc.Text())
		}
	}

	// Observability wiring: a registry for machine metrics and a tracer
	// for compile/run phases. Both stay nil (free no-ops) unless asked
	// for.
	var reg *obs.Registry
	var tr *obs.Tracer
	if *telemetry != "" || *traceFile != "" {
		reg = obs.NewRegistry()
		tr = obs.NewTracer(reg)
	}
	if *telemetry != "" {
		reg.PublishExpvar("ipds")
		srv, addr, err := obs.Serve(*telemetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsrun: telemetry:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ipdsrun: telemetry on http://%s/metrics\n", addr)
	}

	art, err := pipeline.CompileTraced(src, ir.DefaultOptions, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsrun:", err)
		os.Exit(1)
	}

	if *repeat < 1 {
		*repeat = 1
	}
	var res vm.Result
	var m *ipds.Machine
	var events []wire.Event
	for i := 0; i < *repeat; i++ {
		stop := tr.Span("run")
		v := vm.New(art.Prog, vm.DefaultConfig, input)
		m = ipds.New(art.Image, ipds.DefaultConfig)
		m.Instrument(reg, "workload", name)
		ipds.Attach(v, m)
		if *eventFile != "" {
			v.AddHooks(vm.Hooks{
				OnCall: func(fn *ir.Func) {
					events = append(events, wire.Event{Kind: wire.EvEnter, PC: fn.Base})
				},
				OnRet: func(fn *ir.Func) {
					events = append(events, wire.Event{Kind: wire.EvLeave})
				},
				OnBranch: func(br *ir.Instr, taken bool) {
					events = append(events, wire.Event{Kind: wire.EvBranch, PC: br.PC, Taken: taken})
				},
			})
		}
		if *trace {
			v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
				fmt.Printf("branch %#x taken=%v expected=%v\n", br.PC, taken, m.Status(br.PC))
			}})
		}
		res = v.Run()
		stop()
	}

	if *eventFile != "" {
		f, err := os.Create(*eventFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsrun:", err)
			os.Exit(1)
		}
		fmt.Fprintf(f, "# %s: %d events (%d runs)\n", name, len(events), *repeat)
		if err := wire.WriteEventsText(f, events); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsrun:", err)
			os.Exit(1)
		}
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsrun:", err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsrun:", err)
			os.Exit(1)
		}
	}

	for _, line := range res.Output {
		fmt.Println(line)
	}
	fmt.Printf("-- %s: status=%v exit=%d steps=%d branches-checked=%d\n",
		name, res.Status, res.ExitCode, res.Steps, m.Stats().Verified)
	if res.Fault != nil {
		fmt.Printf("-- fault: %v\n", res.Fault)
	}
	for _, a := range m.Alarms() {
		fmt.Printf("-- ALARM: %s\n", a)
	}
	if len(m.Alarms()) > 0 {
		os.Exit(2)
	}
}
