// Command ipdsload is the load generator for the ipdsd daemon: it
// captures a workload's branch-event trace once, then replays it from
// N concurrent client sessions, reporting aggregate events/sec and
// ack/alarm latency percentiles. With -tamper the replayed trace has
// branch directions flipped, so the run also measures alarm delivery.
//
// The image hash is recomputed locally from the same source, so the
// daemon must be serving the same workload (compilation is
// deterministic: same source, same image, same hash).
//
// With -selfserve the process starts an in-process daemon engine on a
// loopback listener and loads that instead of a remote ipdsd — one
// command for benchmarks and CI smoke runs. -json appends a machine
// readable result row (used to produce the BENCH_pr*.json baselines);
// under -selfserve the row also carries the daemon-side batch-verify
// latency quantiles and the forensic context count, read from the
// in-process telemetry registry.
//
// With -selfserve -router the in-process engine is a fleet: -nodes
// daemon instances behind an in-process ipdsrouter, every session
// dialing the router — the routed counterpart of the direct -selfserve
// row, so the bench table can price the router's splice overhead.
//
// Usage:
//
//	ipdsload [-addr host:7077 | -selfserve] [-workload telnetd]
//	         [-sessions n] [-events n] [-batch n] [-tamper stride]
//	         [-repeat n] [-verifiers n] [-router] [-nodes n]
//	         [-events-file in.events] [-trace-sample n]
//	         [-json out.json] [-incidents] [-cpuprofile cpu.pprof]
//	         [-memprofile mem.pprof] [file.mc]
//	ipdsload trace [-url http://host:6060] [-spans] [-out file]
//
// -repeat runs the load n times against the same server and reports
// (and records) the fastest run — best-of-n is the noise-robust
// estimator for recorded baselines on shared hosts. The daemon-side
// verify quantiles in the JSON row are cumulative over all repeats.
//
// -verifiers (with -selfserve) pins the in-process daemon's per-core
// verifier count — 1 gives the single-core control row the scale gate
// compares against; 0 (the default) uses GOMAXPROCS. Self-served JSON
// rows carry the per-core breakdown (events, parks, stalls, ring
// high-water per verifier core) under "cores".
//
// -incidents reports the daemon's incident pipeline after the run:
// the alarm→incident fold reduction and the top ranked incidents.
// Under -selfserve the report is the in-process daemon's full
// /debug/incidents view; against a remote daemon it is the drain-time
// wire copy the daemon streamed to the last-closing session.
//
// -trace-sample N stamps every Nth flushed batch with a wire-level
// trace id and origin timestamp; the daemon expands each stamped batch
// into a per-stage span record. Self-served runs then report (and
// record in the -json row as e2e_p50_ns/e2e_p99_ns) the end-to-end
// batch latency quantiles from those spans. Against a remote daemon,
// fetch the spans with the trace subcommand:
//
//	ipdsload trace [-url http://host:6060] [-spans] [-out trace.json]
//
// which downloads the daemon's /debug/trace document — Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto — or,
// with -spans, the raw span records.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// row is one load run in the -json output.
type row struct {
	Program   string  `json:"program"`
	Forensics bool    `json:"forensics"`
	Sessions  int     `json:"sessions"`
	Events    uint64  `json:"events"`
	Alarms    uint64  `json:"alarms"`
	AlarmCtxs uint64  `json:"alarm_ctxs"`
	ElapsedNs int64   `json:"elapsed_ns"`
	EventsSec float64 `json:"events_per_sec"`
	AckP50Ns  int64   `json:"ack_p50_ns"`
	AckP95Ns  int64   `json:"ack_p95_ns"`
	AckP99Ns  int64   `json:"ack_p99_ns"`
	AlarmP50  int64   `json:"alarm_p50_ns"`
	AlarmP95  int64   `json:"alarm_p95_ns"`
	AlarmP99  int64   `json:"alarm_p99_ns"`

	// Daemon-side batch-verify latency quantiles, read from the
	// in-process registry — populated only with -selfserve (a remote
	// daemon keeps its registry; scrape /metrics there instead).
	VerifyP50Ns  uint64 `json:"verify_p50_ns"`
	VerifyP99Ns  uint64 `json:"verify_p99_ns"`
	VerifyP999Ns uint64 `json:"verify_p999_ns"`

	// KernelNsPerEvent is the daemon-side verify cost per event:
	// cumulative verifyBatch wall time over verified events, summed
	// across cores (CoreStats.VerifyNs / CoreStats.Events). Populated
	// only with -selfserve. Unlike events_per_sec, which folds in
	// client-side capture and wire overhead, this isolates the
	// verification kernel the BENCH_pr8 baselines gate.
	KernelNsPerEvent float64 `json:"kernel_ns_per_event,omitempty"`

	// Per-core serve breakdown — populated only with -selfserve.
	// Verifiers is the daemon's per-core loop count; Cores has one row
	// per verifier core, counters cumulative over all repeats.
	Verifiers int       `json:"verifiers,omitempty"`
	Cores     []coreRow `json:"cores,omitempty"`

	// Fleet shape — populated only with -selfserve -router: the load
	// went through an in-process ipdsrouter in front of Nodes daemons.
	Routed bool `json:"routed,omitempty"`
	Nodes  int  `json:"nodes,omitempty"`

	// Traced-batch end-to-end latency (client origin stamp → ack
	// flush), computed from the daemon-side span rings. Populated only
	// with -selfserve -trace-sample N; TraceSpans is the sample count
	// behind the quantiles.
	TraceSpans int   `json:"trace_spans,omitempty"`
	E2EP50Ns   int64 `json:"e2e_p50_ns,omitempty"`
	E2EP99Ns   int64 `json:"e2e_p99_ns,omitempty"`
}

// coreRow is one verifier core's slice of a self-served load run.
type coreRow struct {
	Core          int     `json:"core"`
	Sessions      uint64  `json:"sessions"`
	Events        uint64  `json:"events"`
	Batches       uint64  `json:"batches"`
	Alarms        uint64  `json:"alarms"`
	EventsSec     float64 `json:"events_per_sec"` // this core's share of the aggregate rate
	KernelNs      float64 `json:"kernel_ns_per_event,omitempty"`
	RingHighWater int     `json:"ring_high_water"`
	Parks         uint64  `json:"parks"`
	Wakes         uint64  `json:"wakes"`
	Stalls        uint64  `json:"stalls"`
}

func main() {
	// The trace subcommand is its own tiny tool: fetch a daemon's span
	// rings, no load run involved.
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		os.Exit(traceCmd(os.Args[2:]))
	}
	var (
		addr      = flag.String("addr", "127.0.0.1:7077", "ipdsd address")
		selfserve = flag.Bool("selfserve", false, "serve in-process instead of dialing a remote daemon")
		forensics = flag.Bool("forensics", true, "with -selfserve: enable the flight recorder + AlarmCtx delivery (the daemon default)")
		wlName    = flag.String("workload", "telnetd", "built-in workload to replay")
		sessions  = flag.Int("sessions", 8, "concurrent client sessions")
		events    = flag.Int("events", 100000, "minimum events per session (trace loops to fill)")
		batch     = flag.Int("batch", 512, "events per wire frame")
		tamper    = flag.Int("tamper", 0, "flip every stride-th branch (0 = benign replay)")
		repeat    = flag.Int("repeat", 1, "run the load n times and report/record the best run (suppresses host noise in baselines)")
		verifiers = flag.Int("verifiers", 0, "with -selfserve: per-core verifier loops (0 = GOMAXPROCS; 1 = single-core control)")
		routed    = flag.Bool("router", false, "with -selfserve: place sessions through an in-process fleet router")
		nodesN    = flag.Int("nodes", 3, "with -selfserve -router: fleet nodes behind the router")
		evFile    = flag.String("events-file", "", "replay this canonical-text event file (from ipdsrun -eventfile) instead of capturing")
		traceN    = flag.Int("trace-sample", 0, "stamp every Nth batch with a wire trace id + origin timestamp (0 = off)")
		jsonOut   = flag.String("json", "", "append a JSON result row to this file's row set")
		incidents = flag.Bool("incidents", false, "report the daemon's ranked incident fold of the alarm flood after the run")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-session network timeout")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the load run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	)
	flag.Parse()

	var src, name string
	var input []string
	if flag.NArg() == 1 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsload:", err)
			os.Exit(1)
		}
		src, name = string(data), filepath.Base(flag.Arg(0))
	} else {
		w := workload.ByName(*wlName)
		if w == nil {
			fmt.Fprintf(os.Stderr, "ipdsload: unknown workload %q (have %v)\n", *wlName, workload.Names())
			os.Exit(1)
		}
		src, name, input = w.Source, w.Name, w.AttackSession
	}

	art, err := pipeline.CompileWith(src, ir.DefaultOptions, pipeline.Config{}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsload: compile:", err)
		os.Exit(1)
	}
	hash := art.Image.Hash()

	var trace []wire.Event
	if *evFile != "" {
		f, err := os.Open(*evFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsload:", err)
			os.Exit(1)
		}
		trace, err = wire.ReadEventsText(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipdsload: %s: %v\n", *evFile, err)
			os.Exit(1)
		}
	} else {
		trace = ipdsclient.Capture(art, input)
	}
	if *tamper > 0 {
		trace = ipdsclient.Tamper(trace, *tamper)
	}
	if len(trace) == 0 {
		fmt.Fprintln(os.Stderr, "ipdsload: captured an empty trace")
		os.Exit(1)
	}

	target := *addr
	var reg *obs.Registry
	var srv *server.Server
	var engines []*server.Server // every in-process daemon (1, or -nodes when routed)
	if *selfserve {
		reg = obs.NewRegistry()
		scfg := server.Config{Reg: reg, Verifiers: *verifiers}
		if !*forensics {
			scfg.RecorderDepth = -1
		}
		shutdown := func(s *server.Server) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}
		if *routed {
			// A fleet: -nodes daemons behind an in-process router, every
			// node sharing the registry so verify quantiles and counters
			// aggregate cluster-wide. Per-core rows are skipped — they
			// describe one daemon, not a fleet.
			n := *nodesN
			if n < 1 {
				n = 1
			}
			addrs := make([]string, n)
			for i := 0; i < n; i++ {
				store := server.NewImageStore(nil)
				store.Add(name, art.Image)
				node := server.New(store, scfg)
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					fmt.Fprintln(os.Stderr, "ipdsload:", err)
					os.Exit(1)
				}
				go node.Serve(ln)
				defer shutdown(node)
				engines = append(engines, node)
				addrs[i] = ln.Addr().String()
			}
			rt := fleet.NewRouter(fleet.NewRing(addrs), fleet.RouterConfig{Reg: reg})
			bound, err := rt.ListenAndServe("127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipdsload:", err)
				os.Exit(1)
			}
			defer rt.Close()
			target = bound
			fmt.Printf("-- fleet: %d nodes behind router %s\n", n, bound)
		} else {
			store := server.NewImageStore(nil)
			store.Add(name, art.Image)
			srv = server.New(store, scfg)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipdsload:", err)
				os.Exit(1)
			}
			go srv.Serve(ln)
			defer shutdown(srv)
			engines = append(engines, srv)
			target = ln.Addr().String()
		}
	}

	// Profiling brackets only the load run itself: compilation and trace
	// capture above stay out of the profile so the hot-path picture is
	// the serve loop, not the frontend.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsload:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ipdsload: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// With -repeat the load runs several times against the same server
	// and the fastest run is the one reported and recorded: aggregate
	// throughput on a shared host is noisy, and the best of n is the
	// stable estimator of what the serve path can actually sustain.
	var res ipdsclient.LoadResult
	for i := 0; i < *repeat; i++ {
		r := ipdsclient.RunLoad(ipdsclient.LoadConfig{
			Addr:          target,
			Image:         hash,
			Program:       name,
			Trace:         trace,
			Sessions:      *sessions,
			EventsPerConn: *events,
			Batch:         *batch,
			Timeout:       *timeout,
			TraceSample:   *traceN,
		})
		for _, err := range r.Errors {
			fmt.Fprintln(os.Stderr, "ipdsload:", err)
		}
		if *repeat > 1 {
			fmt.Printf("-- run %d/%d: %.0f events/sec\n", i+1, *repeat, r.EventsSec)
		}
		if i == 0 || len(r.Errors) > 0 || r.EventsSec > res.EventsSec {
			res = r
		}
		if len(r.Errors) > 0 {
			break
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsload:", err)
			os.Exit(1)
		}
		// Flush pending allocation records so the profile reflects the
		// whole run, then write the allocs view (total allocation sites,
		// the right lens for a zero-allocation hot path).
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "ipdsload: memprofile:", err)
			os.Exit(1)
		}
		f.Close()
	}

	fmt.Printf("-- %s: %d sessions, %d events (%d alarms, %d contexts) in %v\n",
		name, res.Sessions, res.Events, res.Alarms, res.AlarmCtxs, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("-- throughput: %.0f events/sec aggregate\n", res.EventsSec)
	fmt.Printf("-- ack latency:   p50=%v p95=%v p99=%v\n", res.AckP50, res.AckP95, res.AckP99)
	if res.Alarms > 0 {
		fmt.Printf("-- alarm latency: p50=%v p95=%v p99=%v\n", res.AlarmP50, res.AlarmP95, res.AlarmP99)
	}
	var verify obs.HistSnapshot
	var cores []coreRow
	var kernelNs float64
	spanN, e2eP50, e2eP99 := traceE2E(engines)
	if spanN > 0 {
		fmt.Printf("-- e2e latency:   p50=%v p99=%v (%d traced batches, origin→ack)\n",
			time.Duration(e2eP50), time.Duration(e2eP99), spanN)
	}
	if reg != nil {
		verify = reg.Histogram("server_verify_ns").Snapshot()
		fmt.Printf("-- batch verify:  p50=%v p99=%v p99.9=%v (%d batches)\n",
			time.Duration(verify.Quantile(0.50)), time.Duration(verify.Quantile(0.99)),
			time.Duration(verify.Quantile(0.999)), verify.Count)
	}
	if srv != nil {
		// Per-core breakdown: counters are cumulative over all repeats;
		// each core's events/sec is its event share of the recorded
		// aggregate rate (the cores ran concurrently, so shares — not
		// per-core wall clocks — are the meaningful split).
		stats := srv.CoreStats()
		var total, totalNs uint64
		for _, cs := range stats {
			total += cs.Events
			totalNs += cs.VerifyNs
		}
		if total > 0 {
			kernelNs = float64(totalNs) / float64(total)
		}
		for _, cs := range stats {
			share, coreNs := 0.0, 0.0
			if total > 0 {
				share = float64(cs.Events) / float64(total)
			}
			if cs.Events > 0 {
				coreNs = float64(cs.VerifyNs) / float64(cs.Events)
			}
			cores = append(cores, coreRow{
				Core:          cs.Core,
				Sessions:      cs.SessionsTotal,
				Events:        cs.Events,
				Batches:       cs.Batches,
				Alarms:        cs.Alarms,
				EventsSec:     share * res.EventsSec,
				KernelNs:      coreNs,
				RingHighWater: cs.RingHighWater,
				Parks:         cs.Parks,
				Wakes:         cs.Wakes,
				Stalls:        cs.Stalls,
			})
			fmt.Printf("-- core %d: %d sessions, %d events (%.0f events/sec share, %.1f kernel ns/event), %d alarms, ring hw=%d, parks=%d, stalls=%d\n",
				cs.Core, cs.SessionsTotal, cs.Events, share*res.EventsSec, coreNs, cs.Alarms,
				cs.RingHighWater, cs.Parks, cs.Stalls)
		}
		if kernelNs > 0 {
			fmt.Printf("-- kernel: %.1f ns/event verify cost (daemon side, all cores)\n", kernelNs)
		}
	}

	// The incident report caps at the top 5: a load run's point is the
	// fold ratio and the head of the ranking, not the whole document
	// (ipdstop -incidents renders that).
	const incidentTop = 5
	if *incidents && srv != nil {
		di := srv.DebugIncidents()
		if !di.Enabled {
			fmt.Println("-- incidents: stage disabled on the in-process daemon")
		} else {
			fmt.Printf("-- incidents: %d alarm(s) folded into %d incident(s) (%.1f%% reduction, %d dropped)\n",
				di.Alarms, di.Incidents, di.Reduction*100, di.Dropped)
			for i, in := range di.List {
				if i == incidentTop {
					fmt.Printf("   … %d more\n", len(di.List)-incidentTop)
					break
				}
				fmt.Printf("   #%d score=%.1f %s@%#x alarms=%d sessions=%d bursts=%d\n",
					in.ID, in.Score, in.Func, in.PC, in.Alarms, in.Sessions, in.Bursts)
				for _, ev := range in.Evidence {
					fmt.Printf("      %s\n", ev)
				}
			}
		}
	} else if *incidents {
		// Remote daemon: the registry and debug endpoint live over there;
		// report the ranked wire copy it streamed during the final drain.
		if len(res.Incidents) == 0 {
			fmt.Println("-- incidents: none received at drain (stage disabled, or no alarms)")
		}
		for i, in := range res.Incidents {
			if i == incidentTop {
				fmt.Printf("   … %d more\n", len(res.Incidents)-incidentTop)
				break
			}
			fmt.Printf("-- incident #%d score=%.1f %s@%#x alarms=%d sessions=%d bursts=%d\n",
				in.ID, float64(in.ScoreMilli)/1000, in.Func, in.PC, in.Alarms, in.Sessions, in.Bursts)
			if in.Evidence != "" {
				fmt.Printf("      %s\n", in.Evidence)
			}
		}
	}

	if *jsonOut != "" {
		if err := appendRow(*jsonOut, row{
			Program:      name,
			Forensics:    !*selfserve || *forensics,
			Sessions:     res.Sessions,
			Events:       res.Events,
			Alarms:       res.Alarms,
			AlarmCtxs:    res.AlarmCtxs,
			ElapsedNs:    res.Elapsed.Nanoseconds(),
			EventsSec:    res.EventsSec,
			AckP50Ns:     res.AckP50.Nanoseconds(),
			AckP95Ns:     res.AckP95.Nanoseconds(),
			AckP99Ns:     res.AckP99.Nanoseconds(),
			AlarmP50:     res.AlarmP50.Nanoseconds(),
			AlarmP95:     res.AlarmP95.Nanoseconds(),
			AlarmP99:     res.AlarmP99.Nanoseconds(),
			VerifyP50Ns:  verify.Quantile(0.50),
			VerifyP99Ns:  verify.Quantile(0.99),
			VerifyP999Ns: verify.Quantile(0.999),

			KernelNsPerEvent: kernelNs,

			Verifiers: verifierCount(srv),
			Cores:     cores,
			Routed:    *selfserve && *routed,
			Nodes:     fleetNodes(*selfserve && *routed, *nodesN),

			TraceSpans: spanN,
			E2EP50Ns:   e2eP50,
			E2EP99Ns:   e2eP99,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "ipdsload:", err)
			os.Exit(1)
		}
	}
	if len(res.Errors) > 0 {
		os.Exit(1)
	}
}

// traceE2E merges the span rings of every in-process engine — the one
// direct daemon, or all fleet nodes of a routed run — and reports the
// count plus the p50/p99 end-to-end batch latency. Zeros when nothing
// was traced (no -trace-sample, or a remote daemon holding the rings).
func traceE2E(engines []*server.Server) (n int, p50, p99 int64) {
	var lat []int64
	for _, s := range engines {
		for _, r := range s.TraceSpans() {
			lat = append(lat, r.E2ENs())
		}
	}
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(f float64) int64 { return lat[int(f*float64(len(lat)-1))] }
	return len(lat), q(0.50), q(0.99)
}

// traceCmd is `ipdsload trace`: fetch a daemon's /debug/trace document
// — Chrome trace-event JSON (chrome://tracing, Perfetto), or the raw
// span records with -spans — and write it to stdout or -out.
func traceCmd(argv []string) int {
	fs := flag.NewFlagSet("ipdsload trace", flag.ExitOnError)
	var (
		url     = fs.String("url", "http://127.0.0.1:6060", "daemon telemetry base URL (or a full /debug/trace URL)")
		spans   = fs.Bool("spans", false, "fetch the raw span records instead of Chrome trace-event JSON")
		out     = fs.String("out", "", "write the document to this file instead of stdout")
		timeout = fs.Duration("timeout", 5*time.Second, "fetch timeout")
	)
	fs.Parse(argv)

	u := *url
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	if !strings.Contains(u, "/debug/trace") {
		u = strings.TrimRight(u, "/") + "/debug/trace"
	}
	if *spans {
		u += "?spans=1"
	}
	c := &http.Client{Timeout: *timeout}
	resp, err := c.Get(u)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsload trace:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "ipdsload trace: %s: %s\n", u, resp.Status)
		return 1
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsload trace:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsload trace:", err)
		return 1
	}
	if *out != "" {
		fmt.Printf("ipdsload trace: wrote %d bytes to %s — open in chrome://tracing or Perfetto\n", n, *out)
	}
	return 0
}

// verifierCount resolves the recorded verifier count: the in-process
// daemon's actual core count, or 0 for remote runs (unknown here).
func verifierCount(srv *server.Server) int {
	if srv == nil {
		return 0
	}
	return len(srv.CoreStats())
}

// fleetNodes resolves the recorded fleet width: n for routed
// self-served runs, 0 (omitted from the JSON) otherwise.
func fleetNodes(routed bool, n int) int {
	if !routed {
		return 0
	}
	if n < 1 {
		return 1
	}
	return n
}

// appendRow merges one result row into path's {"rows": [...]} document,
// creating it if absent — repeated runs build one bench file.
func appendRow(path string, r row) error {
	doc := struct {
		Rows []row `json:"rows"`
	}{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	doc.Rows = append(doc.Rows, r)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
