// Command ipdsd is the IPDS verification daemon: it compiles one or
// more programs to branch-correlation table images, registers each
// image under its content hash, and serves verifier sessions over TCP
// using the internal/wire protocol. Remote clients (cmd/ipdsload,
// internal/ipdsclient) open a session by hash, stream batched branch
// events, and receive infeasible-path alarms back.
//
// Images are compiled through the parallel cached pipeline; with
// -cachedir the marshalled images also land in the on-disk blob cache,
// so a restarted daemon resolves reconnecting clients' hashes without
// recompiling anything.
//
// With -telemetry the daemon serves /metrics (server_sessions_active,
// server_events_total, server_batches_total,
// server_backpressure_stalls_total, server_alarms_dropped_total,
// incident_* …), /debug/vars, /debug/pprof, /debug/sessions — a JSON
// document of every live session's telemetry and most recent forensic
// alarm context — and /debug/incidents — the incident pipeline's
// ranked, explained fold of the alarm stream. Both debug documents are
// polled by cmd/ipdstop for live top-style views. /debug/trace serves
// client-stamped batches expanded into per-stage span records as
// Chrome trace-event JSON, and /debug/timeline serves the in-process
// metric history (-history samples at 1/s) `ipdstop -history` renders
// as sparklines.
//
// In a fleet, -registry serves this node's image blobs to peers over
// the content-addressed registry protocol, and -fetch names peer
// registries to pull unknown hashes from: a node handed a Hello for an
// image it never compiled fetches the blob, verifies it against its
// hash, and serves the session — zero recompiles on handoff.
//
// Usage:
//
//	ipdsd [-addr :7077] [-workload name]... [-all] [-cachedir dir]
//	      [-telemetry :6060] [-idle 60s] [-verifiers n]
//	      [-incidents=false] [-registry :7078] [-fetch host:7078,...]
//	      [file.mc]...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/tcache"
	"repro/internal/workload"
)

type nameFlags []string

func (l *nameFlags) String() string { return fmt.Sprint(*l) }
func (l *nameFlags) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	var (
		wlNames   nameFlags
		addr      = flag.String("addr", "127.0.0.1:7077", "listen address for verifier sessions")
		all       = flag.Bool("all", false, "serve every built-in workload")
		cacheDir  = flag.String("cachedir", "", "on-disk table/image cache (survives restarts)")
		cacheN    = flag.Int("cachesize", 1024, "in-memory cache entries")
		telemetry = flag.String("telemetry", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		idle      = flag.Duration("idle", 60*time.Second, "evict sessions idle longer than this")
		verifiers = flag.Int("verifiers", 0, "verifier worker pool size (0 = GOMAXPROCS)")
		incidents = flag.Bool("incidents", true, "fold alarm floods into ranked incidents (off-path analytics stage)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGINT/SIGTERM")
		regAddr   = flag.String("registry", "", "serve this node's image blobs to fleet peers on this address")
		fetch     = flag.String("fetch", "", "comma-separated peer registry addresses to pull unknown image hashes from")
		history   = flag.Int("history", 240, "metric-history samples retained for /debug/timeline (1/s; 0 disables)")
		traceRing = flag.Int("tracering", 0, "per-core span records retained for /debug/trace (0 = default 256, <0 disables)")
	)
	flag.Var(&wlNames, "workload", "serve a built-in server workload (repeatable)")
	flag.Parse()

	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)

	cache, err := tcache.New(*cacheN, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipdsd: cache:", err)
		os.Exit(1)
	}

	// Gather (name, source) pairs: built-in workloads and/or files.
	type prog struct{ name, src string }
	var progs []prog
	if *all {
		for _, w := range workload.All() {
			progs = append(progs, prog{w.Name, w.Source})
		}
	}
	for _, n := range wlNames {
		w := workload.ByName(n)
		if w == nil {
			fmt.Fprintf(os.Stderr, "ipdsd: unknown workload %q (have %v)\n", n, workload.Names())
			os.Exit(1)
		}
		progs = append(progs, prog{w.Name, w.Source})
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsd:", err)
			os.Exit(1)
		}
		progs = append(progs, prog{filepath.Base(path), string(data)})
	}
	// A cold fleet node may start with nothing compiled locally and
	// resolve every image over the registry.
	if len(progs) == 0 && *fetch == "" {
		fmt.Fprintln(os.Stderr, "ipdsd: nothing to serve; use -workload, -all, file arguments, or -fetch")
		os.Exit(1)
	}

	store := server.NewImageStore(cache)
	if *fetch != "" {
		store.SetFetcher(registry.NewFetcher(strings.Split(*fetch, ","), 5*time.Second, reg))
	}
	if *regAddr != "" {
		regSrv := registry.NewServer(store, reg)
		bound, err := regSrv.ListenAndServe(*regAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsd: registry:", err)
			os.Exit(1)
		}
		defer regSrv.Close()
		fmt.Printf("ipdsd: registry on %s\n", bound)
	}
	for _, p := range progs {
		art, err := pipeline.CompileWith(p.src, ir.DefaultOptions,
			pipeline.Config{Cache: cache}, tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipdsd: compile %s: %v\n", p.name, err)
			os.Exit(1)
		}
		h := store.Add(p.name, art.Image)
		fmt.Printf("ipdsd: serving %-10s image %x (%d funcs)\n", p.name, h[:8], len(art.Image.Funcs))
	}

	srv := server.New(store, server.Config{
		ReadTimeout:      *idle,
		Verifiers:        *verifiers,
		DisableIncidents: !*incidents,
		TraceRing:        *traceRing,
		Reg:              reg,
		Tracer:           tr,
	})

	// The telemetry endpoint mounts the live-session document next to
	// the standard obs surface, so it starts after the verification
	// server exists. Compile-phase spans recorded above are already in
	// the registry; nothing is lost by the later bind.
	if *telemetry != "" {
		reg.PublishExpvar("ipdsd")
		mux := obs.NewMux(reg)
		mux.Handle("/debug/sessions", srv.DebugHandler())
		mux.Handle("/debug/incidents", srv.IncidentsHandler())
		mux.Handle("/debug/trace", srv.TraceHandler())
		// Metric history behind /debug/timeline: one snapshot per second
		// into a fixed ring (~4 minutes), rendered by `ipdstop -history`
		// and merged fleet-wide by the router's /debug/fleet.
		db := tsdb.New(reg, *history, time.Second)
		db.Start()
		defer db.Stop()
		mux.Handle("/debug/timeline", db.Handler())
		tsrv, taddr, err := obs.ServeHandler(*telemetry, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsd: telemetry:", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		fmt.Fprintf(os.Stderr, "ipdsd: telemetry on http://%s/metrics, sessions on /debug/sessions, incidents on /debug/incidents, trace on /debug/trace, timeline on /debug/timeline\n", taddr)
	}

	// Graceful drain on SIGINT/SIGTERM: queued batches verify, queued
	// alarms deliver, every session ends with Ack+Bye.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()

	// ListenAndServe binds asynchronously; report the address once up.
	for i := 0; i < 100; i++ {
		if a := srv.Addr(); a != "" {
			fmt.Printf("ipdsd: listening on %s\n", a)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "ipdsd: %v: draining (budget %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ipdsd: shutdown:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "ipdsd: drained")
	case err := <-errCh:
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipdsd:", err)
			os.Exit(1)
		}
	}
}
