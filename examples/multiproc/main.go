// Multiproc demonstrates the paper's §5.4 context-switch support: one
// IPDS hardware unit timeshared between two protected processes. Each
// process's BSV/BCV/BAT stack state is suspended and resumed at every
// scheduling quantum (the paper swaps the ~1K-bit stack tops on the
// critical path and restores lower layers lazily); detection state
// survives the interleaving, and tampering one process is attributed
// to that process only.
//
//	go run ./examples/multiproc
package main

import (
	"fmt"
	"log"

	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/vm"
	"repro/internal/workload"
)

type process struct {
	name string
	vm   *vm.VM
	st   *ipds.ProcessState
}

func main() {
	// Two different protected programs share the hardware.
	telnetd := workload.ByName("telnetd")
	ftpd := workload.ByName("wu-ftpd")

	artA := pipeline.MustCompile(telnetd.Source, ir.DefaultOptions)
	artB := pipeline.MustCompile(ftpd.Source, ir.DefaultOptions)

	// One hardware unit; per-process state lives in ProcessState.
	hw := ipds.New(artA.Image, ipds.DefaultConfig)

	vA := vm.New(artA.Prog, vm.DefaultConfig, telnetd.AttackSession)
	ipds.Attach(vA, hw)
	vB := vm.New(artB.Prog, vm.DefaultConfig, ftpd.AttackSession)
	ipds.Attach(vB, hw)

	// Boot both processes, capturing each one's initial IPDS state.
	if err := vA.Start(); err != nil {
		log.Fatal(err)
	}
	stA := hw.Suspend()
	hwB := ipds.New(artB.Image, ipds.DefaultConfig)
	hw.Resume(hwB.Suspend()) // bind the unit to B's image
	if err := vB.Start(); err != nil {
		log.Fatal(err)
	}
	stB := hw.Suspend()

	procs := []*process{{name: "telnetd", vm: vA, st: stA}, {name: "wu-ftpd", vm: vB, st: stB}}

	// Mid-run, forge telnetd's administrator flag (a guest session is
	// active at that point), while B keeps timesharing the same checker.
	tamperAt, tampered := uint64(200), false
	vA.AddHooks(vm.Hooks{OnStep: func(step uint64) {
		if tampered || step < tamperAt {
			return
		}
		for _, id := range vA.ActiveObjects(true) {
			obj := artA.Prog.Object(id)
			if obj.Name == "main.isadmin" {
				addr, ok := vA.AddrOfObj(id)
				if ok {
					_ = vA.Poke(addr, 1, 8) // forge administrator privilege
					tampered = true
				}
			}
		}
	}})

	// Round-robin scheduler, 97 steps per quantum.
	const quantum = 97
	switches := 0
	cur := -1
	for !vA.Done() || !vB.Done() {
		next := -1
		for i, p := range procs {
			if !p.vm.Done() && (next < 0 || i != cur) {
				next = i
			}
		}
		if next < 0 {
			break
		}
		if cur != next {
			if cur >= 0 {
				procs[cur].st = hw.Suspend()
			}
			hw.Resume(procs[next].st)
			switches++
			cur = next
		}
		for i := 0; i < quantum && !procs[cur].vm.Done(); i++ {
			procs[cur].vm.Step()
		}
	}
	procs[cur].st = hw.Suspend()

	fmt.Printf("scheduled %d context switches (critical state per switch: ~%d bits)\n",
		switches, procs[0].st.CriticalBits())
	for _, p := range procs {
		res := p.vm.Result()
		fmt.Printf("%-8s exited=%v steps=%d branches-checked=%d alarms=%d\n",
			p.name, res.Status, res.Steps, p.st.Stats().Verified, p.st.Stats().Alarms)
		for _, a := range p.st.Alarms() {
			fmt.Printf("         ALARM: %s\n", a)
		}
	}
	if procs[0].st.Stats().Alarms == 0 {
		fmt.Println("note: tampering landed outside a live window this run")
	}
	if procs[1].st.Stats().Alarms != 0 {
		log.Fatal("BUG: alarm attributed to the untampered process")
	}
}
