// Httpd walks the full evaluation pipeline on one of the paper's
// server workloads: compile the httpd re-creation, show its table
// sizes (Figure 8 metric), serve a clean session under IPDS, run a
// Figure 7-style tampering campaign, and time it on the Table 1
// machine with and without the detector (Figure 9 metric).
//
//	go run ./examples/httpd
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	w := workload.ByName("httpd")
	prog, err := repro.Compile(w.Source)
	if err != nil {
		log.Fatal(err)
	}

	sizes := prog.TableSizes()
	fmt.Printf("httpd compiled: %d functions, avg tables BSV=%.0f BCV=%.0f BAT=%.0f bits\n",
		sizes.Funcs, sizes.AvgBSVBits, sizes.AvgBCVBits, sizes.AvgBATBits)

	// Clean session: the detector stays quiet.
	res, err := prog.Run(w.AttackSession)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean session: %d steps, %d output lines, %d alarms\n",
		res.Steps, len(res.Output), len(res.Alarms))

	// Tampering campaign (buffer-overflow model: stack data only).
	campaign := prog.Attack(100, 42, repro.Overflow, w.AttackSession)
	fmt.Printf("attacks: %d/%d changed control flow, %d detected (%.0f%% of CF-changing)\n",
		campaign.CFChanged, len(campaign.Trials), campaign.Detected,
		100*campaign.ConditionalDetectionRate())

	// Timing on the Table 1 machine.
	cfg := repro.MachineConfig()
	base, err := prog.Time(w.PerfSession, cfg, false)
	if err != nil {
		log.Fatal(err)
	}
	guarded, err := prog.Time(w.PerfSession, cfg, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timing: base=%d cycles (IPC %.2f), with IPDS=%d cycles, overhead=%.2f%%\n",
		base.Cycles, base.IPC(), guarded.Cycles,
		100*(float64(guarded.Cycles)/float64(base.Cycles)-1))
	fmt.Printf("detection latency: %.1f cycles on average\n",
		guarded.AvgDetectionLatency())
}
