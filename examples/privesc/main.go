// Privesc reproduces the paper's Figure 1 scenario: a privilege flag
// is computed from the user's identity and checked twice; in between,
// an unbounded copy of attacker-controlled input overflows a stack
// buffer that sits right before the flag. The overflow flips the
// second check without injecting any code — and the IPDS catches the
// now-infeasible path (first check said guest, second says admin).
//
//	go run ./examples/privesc
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
int main() {
	char user[8];
	char str[8];
	int privileged;

	// verify_user(user): privilege derived from identity once.
	read_line_n(user, 8);
	privileged = 0;
	if (strcmp(user, "admin") == 0) {
		privileged = 1;
	}
	if (privileged == 1) {
		print_str("welcome, admin");
	} else {
		print_str("welcome, guest");
	}

	// The program interacts with the user again. strcpy-style bug:
	// str[8] is adjacent to privileged in the frame, and the copy is
	// unbounded (paper Figure 1's strcpy(str, someinput)).
	read_line(str);

	// The same decision data is consulted again. Without tampering
	// this branch must take the same direction as the first check.
	if (privileged == 1) {
		print_str("superuser operation permitted");
	} else {
		print_str("operation denied");
	}
	return 0;
}`

func run(prog *repro.Program, label string, input []string) {
	res, err := prog.Run(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", label)
	for _, line := range res.Output {
		fmt.Printf("  | %s\n", line)
	}
	if res.Detected() {
		fmt.Printf("  IPDS ALARM: %s\n", res.Alarms[0])
	} else {
		fmt.Printf("  no alarm\n")
	}
	fmt.Println()
}

func main() {
	prog, err := repro.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked branches: %d\n\n", prog.CheckedBranches())

	// Benign guest session: both checks agree, no alarm.
	run(prog, "guest session", []string{"guest", "hello"})

	// Benign admin session: both checks agree the other way, no alarm.
	run(prog, "admin session", []string{"admin", "hello"})

	// The attack: a guest sends an 8-byte filler plus a 0x01 byte that
	// lands exactly on `privileged`. No code is injected; the second
	// privilege check silently flips — an infeasible path the IPDS
	// reports.
	run(prog, "guest session with overflow payload",
		[]string{"guest", "AAAAAAAA\x01"})
}
