// Quickstart: compile a MiniC program, inspect the correlations the
// compiler found, run it clean under the IPDS runtime (no alarms), and
// launch a small tampering campaign to see detection working.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
int balance;
void audit() { }
int main() {
	int amount;
	int approved;
	balance = 100;
	amount = read_int();
	approved = 0;
	if (amount <= 100) {
		approved = 1;
	}
	if (approved == 1) {
		print_str("approved");
	} else {
		print_str("denied");
	}
	audit();
	if (approved == 1) {
		balance = balance - amount;
	}
	print_int(balance);
	return 0;
}`

func main() {
	prog, err := repro.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compiled: %d checked branches, %d correlations\n",
		prog.CheckedBranches(), len(prog.Correlations()))
	for _, c := range prog.Correlations() {
		fmt.Println("  ", c)
	}

	// A clean run never alarms: IPDS has zero false positives.
	res, err := prog.Run([]string{"30"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclean run: exit=%d output=%v alarms=%d\n",
		res.ExitCode, res.Output, len(res.Alarms))

	// Tamper memory mid-run, 50 independent times, and see how often
	// the corrupted control flow is caught as an infeasible path.
	campaign := prog.Attack(50, 7, repro.ArbitraryWrite, []string{"30"})
	fmt.Printf("\nattack campaign: %d/%d changed control flow, %d detected (%.0f%% of changes)\n",
		campaign.CFChanged, len(campaign.Trials), campaign.Detected,
		100*campaign.ConditionalDetectionRate())
}
