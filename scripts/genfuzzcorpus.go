//go:build ignore

// genfuzzcorpus regenerates internal/wire's checked-in fuzz seed
// corpus (testdata/fuzz/FuzzDecode). The native seeds in fuzz_test.go
// cover whatever sampleFrames covers at HEAD; the checked-in corpus
// pins the frame kinds that earned dedicated fuzzing attention —
// the AlarmCtx forensic frame and the Incident summary frame, whose
// nested counts and string fields carry the most decoder edge cases,
// (PR 8) the registry frames, whose length-prefixed blob is the
// largest attacker-controlled allocation in the protocol, and (PR 10)
// trace-extended Batch frames, whose trailing extension area is the
// protocol's forward-compatibility valve. Run from the repo root:
//
//	go run scripts/genfuzzcorpus.go
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/wire"
)

// hash fills a content hash with a recognisable byte pattern.
func hash(seed byte) (h [wire.HashLen]byte) {
	for i := range h {
		h[i] = seed + byte(i)
	}
	return h
}

func main() {
	dir := filepath.Join("internal", "wire", "testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := map[string]wire.Frame{
		"seed-alarmctx-full": wire.AlarmCtx{
			Seq:      912,
			Recorded: 5000,
			Stack:    []wire.CtxFrame{{Base: 0x40, Func: "main"}, {Base: 0x90, Func: "handle_cmd"}, {Base: 0x200}},
			Recent: []wire.CtxEvent{
				{Kind: wire.EvEnter, Seq: 900, PC: 0x90, Depth: 2},
				{Kind: wire.EvBranch, Seq: 901, PC: 0x9a, Depth: 2, Taken: true},
				{Kind: wire.EvSpill, Seq: 901, PC: 4096, Depth: 2},
				{Kind: wire.EvFill, Seq: 905, PC: 4096, Depth: 1},
				{Kind: wire.EvLeave, Seq: 910, Depth: 1},
				{Kind: wire.EvBranch, Seq: 912, PC: 0x7fffffff12, Depth: 1},
			},
			BSV: []uint8{0, 1, 2, 0, 3, 3},
		},
		"seed-alarmctx-empty": wire.AlarmCtx{Seq: 1},
		"seed-alarmctx-deep": wire.AlarmCtx{
			Seq:      1 << 60,
			Recorded: ^uint64(0),
			Stack:    []wire.CtxFrame{{Base: ^uint64(0), Func: "f"}},
			BSV:      make([]uint8, 256),
		},
		"seed-incident-full": wire.Incident{
			ID: 1, ScoreMilli: 144_250, Alarms: 69632, Folded: 69000,
			Sessions: 4, Bursts: 4, PC: 0x7fffffff12,
			FirstSeq: 524288, LastSeq: 1 << 20, Func: "handle_cmd",
			Evidence: "69632 alarm(s) across 4 session(s) at handle_cmd@0x7fffffff12; 4 alarm-rate change-point(s)",
		},
		"seed-incident-empty": wire.Incident{ID: 2},
		"seed-imageget":       wire.ImageGet{Hash: hash(0x11)},
		"seed-imageblob-full": wire.ImageBlob{Hash: hash(0x22), Data: append(make([]byte, 0, 512), "marshalled-table-image-bytes"...)},
		"seed-imageblob-empty": wire.ImageBlob{
			Hash: hash(0x33),
		},
		"seed-imagemissing": wire.ImageMissing{Hash: hash(0x44)},
		"seed-batch-traced": wire.Batch{
			Events: []wire.Event{
				{Kind: wire.EvEnter, PC: 0x40},
				{Kind: wire.EvBranch, PC: 0x4a, Taken: true},
				{Kind: wire.EvLeave},
			},
			TraceID:  0xdeadbeefcafe,
			OriginNs: 1_700_000_000_123_456_789,
		},
		"seed-batch-traced-empty": wire.Batch{TraceID: 1, OriginNs: 1},
	}
	write := func(name string, payload []byte) {
		// Native corpus entry: the fuzz target takes the frame payload
		// (the bytes after the 4-byte length prefix).
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(payload)))
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	for name, f := range seeds {
		enc, err := wire.Append(nil, f)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		write(name, enc[4:])
	}
	// Hand-built payloads no conforming encoder produces: the
	// extension-area shapes the decoder must skip or refuse.
	raw := map[string][]byte{
		"seed-batch-ext-unknown":   {3 /* TypeBatch */, 1, 1, 0x7e, 0xde, 0xad},
		"seed-batch-ext-truncated": {3 /* TypeBatch */, 1, 1, 1, 5},
		"seed-batch-ext-zero-id":   {3 /* TypeBatch */, 1, 1, 1, 0},
	}
	for name, payload := range raw {
		write(name, payload)
	}
}
