#!/usr/bin/env bash
# checkscale.sh — the serve path's scaling gate (`make scale-gate`).
#
# Runs the 64-session tampered-telnetd load against an in-process
# daemon twice: pinned to a single verifier loop, then with one
# verifier per core (the default). The multi-core aggregate must beat
# the single-verifier control by at least SCALE_FLOOR (default 1.5x) —
# a deliberately conservative floor: it catches "the per-core path
# stopped scaling" without flaking on loaded CI hosts. On a
# single-core host there is nothing to scale onto and the gate skips
# (the per-core architecture still runs there — one verifier, same
# code path — it just cannot be faster).
set -euo pipefail
cd "$(dirname "$0")/.."

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -le 1 ]; then
    echo "checkscale: single-core host; nothing to scale onto, skipping"
    exit 0
fi

FLOOR="${SCALE_FLOOR:-1.5}"

run_load() {
    go run ./cmd/ipdsload -selfserve -workload telnetd \
        -sessions 64 -events 100000 -tamper 97 -repeat 3 \
        -verifiers "$1" |
        sed -n 's/^-- throughput: \([0-9][0-9]*\) events\/sec aggregate$/\1/p'
}

single=$(run_load 1)
multi=$(run_load 0)
if [ -z "$single" ] || [ -z "$multi" ]; then
    echo "checkscale: failed to parse ipdsload throughput output" >&2
    exit 1
fi

echo "checkscale: single-verifier ${single} events/sec, ${cores}-core ${multi} events/sec"
if ! awk -v s="$single" -v m="$multi" -v f="$FLOOR" \
    'BEGIN { r = m / s; printf "checkscale: multiplier %.2fx (floor %sx)\n", r, f; exit !(r >= f) }'; then
    echo "checkscale: FAIL — per-core serve path does not clear the scaling floor" >&2
    exit 1
fi
echo "checkscale: per-core serve path clears the scaling floor"
