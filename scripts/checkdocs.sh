#!/bin/sh
# checkdocs.sh - CI gate: every exported declaration in the analysis,
# table, runtime, pipeline and cache packages must carry a doc comment.
#
# A line starting a top-level exported func/type whose preceding line is
# not a comment is flagged. Test files are exempt (Go test names are
# their own documentation). Exits non-zero listing offenders.
set -eu
cd "$(dirname "$0")/.."

PKGS="internal/core internal/tables internal/ipds internal/pipeline internal/tcache internal/obs internal/obs/tsdb internal/incident internal/ring internal/server internal/fleet internal/registry"

fail=0
for pkg in $PKGS; do
    for f in "$pkg"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        out=$(awk '
            /^(func|type) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
                if (prev !~ /^\/\//) printf "%s:%d: undocumented export: %s\n", FILENAME, FNR, $0
            }
            { prev = $0 }
        ' "$f")
        if [ -n "$out" ]; then
            echo "$out"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "checkdocs: undocumented exported declarations found" >&2
    exit 1
fi

# The performance handbook must stay linked from the README and keep
# its generated-table markers (benchtable rewrites between them).
grep -q 'docs/PERFORMANCE.md' README.md || {
    echo "checkdocs: README.md does not link docs/PERFORMANCE.md" >&2
    exit 1
}
grep -q 'benchtable:begin' docs/PERFORMANCE.md || {
    echo "checkdocs: docs/PERFORMANCE.md lacks the benchtable markers" >&2
    exit 1
}

echo "checkdocs: all exports documented in: $PKGS"
