#!/bin/sh
# checkallocs.sh — allocation-regression gate for the IPDS hot path.
#
# Runs the kernel benchmarks with -benchmem and fails if any of them
# reports a nonzero allocs/op: the batched verification kernel and the
# per-event kernel must stay allocation-free per event on a warmed
# machine. (The AllocsPerRun unit gates in internal/ipds and
# internal/wire cover the same property under `make test`; this script
# holds the benchmarks themselves to it, so a regression shows up even
# if someone relaxes the unit tests.)
set -e

out=$(go test -run '^$' -bench 'BenchmarkOnBranch|BenchmarkOnBatch' -benchtime 100x -benchmem ./internal/ipds)
echo "$out"

# The recorder-enabled batch kernel must be part of the gate: forensics
# on the serve path is only free if it stays allocation-free too.
echo "$out" | grep -q '^BenchmarkOnBatchRecorder' || {
	echo "checkallocs: BenchmarkOnBatchRecorder missing from gate output" >&2
	exit 1
}

# The verifier's serve path with the incident stage enabled: feeding
# the analytics queue must not cost the verify loop a single
# allocation per batch.
srvout=$(go test -run '^$' -bench 'BenchmarkVerifyBatchIncident' -benchtime 2000x -benchmem ./internal/server)
echo "$srvout"
echo "$srvout" | grep -q '^BenchmarkVerifyBatchIncident' || {
	echo "checkallocs: BenchmarkVerifyBatchIncident missing from gate output" >&2
	exit 1
}
out=$(printf '%s\n%s\n' "$out" "$srvout")

echo "$out" | awk '
/^Benchmark/ {
	allocs = $(NF-1)
	if (allocs + 0 != 0) {
		printf "checkallocs: %s reports %s allocs/op (want 0)\n", $1, allocs > "/dev/stderr"
		bad = 1
	}
}
END { exit bad }
'
echo "checkallocs: kernel benchmarks are allocation-free"
