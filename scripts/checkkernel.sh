#!/usr/bin/env bash
# checkkernel.sh — kernel regression gate (`make kernel-gate`).
#
# Benchmarks the batched verification kernel (BenchmarkOnBatch, the
# baked slot-record hot path) and holds its ns/event to the committed
# BENCH_pr8.json after-row: a regression of more than KERNEL_TOL
# percent (default 15) fails the gate. Best-of-N is the estimator on
# both sides — the committed baseline is a best-of over interleaved
# runs, so the gate compares like with like and a single noisy run on
# a loaded CI host cannot flake it; only a real kernel regression
# shifts the best of six.
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${KERNEL_TOL:-15}"
COUNT="${KERNEL_COUNT:-6}"

baseline=$(awk -F': ' '
	/"kernel"/ { kern = $2; gsub(/[",]/, "", kern) }
	/"stage"/ { stage = $2; gsub(/[",]/, "", stage) }
	/"ns_per_event"/ && kern == "OnBatch" && stage == "after" {
		v = $2; gsub(/,/, "", v); print v; exit
	}
' BENCH_pr8.json)
if [ -z "$baseline" ]; then
	echo "checkkernel: no OnBatch after-row in BENCH_pr8.json" >&2
	exit 1
fi

out=$(go test -run '^$' -bench 'BenchmarkOnBatch$' -count "$COUNT" ./internal/ipds)
echo "$out"

best=$(echo "$out" | awk '
	/^BenchmarkOnBatch-/ || /^BenchmarkOnBatch / {
		for (i = 2; i <= NF; i++) if ($i == "ns/event") v = $(i - 1)
		if (best == "" || v + 0 < best + 0) best = v
	}
	END { print best }
')
if [ -z "$best" ]; then
	echo "checkkernel: failed to parse ns/event from benchmark output" >&2
	exit 1
fi

echo "checkkernel: best of ${COUNT} runs ${best} ns/event, baseline ${baseline} ns/event (tolerance ${TOL}%)"
if ! awk -v got="$best" -v base="$baseline" -v tol="$TOL" 'BEGIN {
	limit = base * (1 + tol / 100)
	printf "checkkernel: limit %.2f ns/event\n", limit
	exit !(got + 0 <= limit)
}'; then
	echo "checkkernel: FAIL — batched kernel regressed past the tolerance" >&2
	exit 1
fi
echo "checkkernel: batched kernel holds the BENCH_pr8 baseline"
