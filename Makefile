GO ?= go

.PHONY: build test vet race bench bench-kernel alloc-gate kernel-gate forensics-gate incident-gate scale-gate fleet-gate trace-gate benchtable ci report docscheck race-parallel compile-baseline race-server smoke-load serve-baseline serve-baseline-pr5 serve-baseline-pr7 serve-baseline-pr10

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel compile path under the race detector, by name: the
# deterministic fan-out and cache tests must stay race-clean.
race-parallel:
	$(GO) test -race ./internal/pipeline -run Parallel
	$(GO) test -race ./internal/tcache

# Docs gates: godoc coverage of the exported API, the architecture
# walkthrough and performance handbook staying linked from the README,
# and the handbook's generated tables staying in sync with the
# committed BENCH_pr*.json baselines.
docscheck:
	./scripts/checkdocs.sh
	@grep -q 'docs/ARCHITECTURE.md' README.md || \
		{ echo "docscheck: README.md does not link docs/ARCHITECTURE.md" >&2; exit 1; }
	$(GO) run scripts/benchtable.go -check docs/PERFORMANCE.md

# The daemon stack under the race detector, by name: wire protocol,
# server lifecycle and the multi-session end-to-end verification.
race-server:
	$(GO) test -race ./internal/wire ./internal/ipdsclient
	$(GO) test -race ./internal/server -run 'Test'

# Short load-generator run against an in-process daemon: 8 sessions
# replaying a tampered telnetd trace, exercising the full client →
# wire → server → alarm path in one command.
smoke-load:
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 8 -events 20000 -tamper 97

# One-iteration benchmark pass: a smoke check that every benchmark still
# compiles and runs, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Hot-path measurement: the verification kernel (per-event and batched,
# with and without the flight recorder) and the full in-process serve
# loop, with allocation reporting.
bench-kernel:
	$(GO) test -run '^$$' -bench 'BenchmarkOnBranch|BenchmarkOnBatch' -benchmem ./internal/ipds
	$(GO) test -run '^$$' -bench 'BenchmarkServeSession' -benchmem ./internal/server

# Allocation-regression gate: kernel benchmarks — including the
# recorder-enabled batch kernel — must report 0 allocs/op.
alloc-gate:
	./scripts/checkallocs.sh

# Kernel-regression gate: the batched verification kernel's ns/event
# must hold the committed BENCH_pr8.json baseline within KERNEL_TOL
# percent (default 15).
kernel-gate:
	./scripts/checkkernel.sh

# Forensics gate: the tampered-trace end-to-end run under the race
# detector. A live daemon session must produce alarms whose forensic
# contexts (recent window, stack, BSV state) are byte-identical to an
# in-process replay, and per-session telemetry must flush cleanly on
# idle-eviction and drain.
forensics-gate:
	$(GO) test -race -run 'TestForensics|TestDebugSessions|TestEvictionFlushesSessionTelemetry|TestDrainFlushesSessionTelemetry' ./internal/server
	$(GO) test -race -run 'TestRecorder|TestAlarmContext|TestEventSinkBatchedEquivalence' ./internal/ipds

# Incident gate: the seeded-corruption end-to-end run under the race
# detector. A persistent single-site corruption with a mid-run onset,
# buried in tamper noise across 4 sessions, must come back from the
# live daemon as the #1 ranked incident, fold the alarm flood by at
# least 95%, and match an in-process replay of the same streams field
# for field; the incident package's own determinism and detector tests
# ride along.
incident-gate:
	$(GO) test -race -run 'TestIncident' ./internal/server
	$(GO) test -race ./internal/incident

# Scale gate: the per-core serve path must actually scale. Runs the
# 64-session load twice — pinned to 1 verifier, then one verifier per
# core — and fails unless the multi-core aggregate beats the
# single-verifier control by SCALE_FLOOR (default 1.5x). Skips on
# single-core hosts, where there is nothing to scale onto.
scale-gate:
	./scripts/checkscale.sh

# Fleet gate: the multi-node path must lose nothing. Three in-process
# nodes behind the router serve 24 sessions while one node drains
# mid-run; every session must finish fully acked with alarms and the
# incident fold byte-identical to a single uninterrupted replay, and a
# cold node must serve an image it only holds via a registry fetch
# (zero recompiles). The fleet, registry and redial unit tests ride
# along, all under -race.
fleet-gate:
	$(GO) test -race ./internal/fleet ./internal/registry
	$(GO) test -race -run 'TestRedial' ./internal/ipdsclient

# Trace gate: the wire-level trace plane end to end. A routed 3-node
# run with every batch stamped (-trace-sample 1) must commit exactly
# one span per verified batch, each chain complete and monotonic
# client → router → core → ack flush; the daemon-side span tests and
# the tsdb metric-history tests ride along, all under -race. The
# sampling-off zero-alloc invariant is held separately by alloc-gate
# (scripts/checkallocs.sh).
trace-gate:
	$(GO) test -race -run 'TestTraceGate' ./internal/fleet
	$(GO) test -race -run 'TestTrace|TestSpan' ./internal/server
	$(GO) test -race ./internal/obs/tsdb

# Full gate: what a PR must pass.
ci: vet build docscheck race race-parallel race-server smoke-load bench alloc-gate kernel-gate forensics-gate incident-gate scale-gate fleet-gate trace-gate

# Observability-driven per-workload table + JSON baseline.
report:
	$(GO) run ./cmd/report -obs -baseline BENCH_pr1.json

# Compile-time baseline across sequential/parallel/warm-cache modes.
compile-baseline:
	$(GO) run ./cmd/perfsim -compile -baseline BENCH_pr2.json

# Serving-throughput baseline: events/sec at 1, 8 and 64 sessions
# against an in-process per-core daemon, best-of-5 per config, each
# row carrying the per-core breakdown (events, parks, stalls, ring
# high-water per verifier). The final row is the 64-session load
# pinned to a single verifier — the control the multi-core multiplier
# is computed against (see docs/PERFORMANCE.md). Earlier generations'
# committed files (BENCH_pr3/4/5.json) stay as the trajectory.
serve-baseline:
	rm -f BENCH_pr6.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 1 -events 5000000 -tamper 97 -repeat 5 -json BENCH_pr6.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 8 -events 1000000 -tamper 97 -repeat 5 -json BENCH_pr6.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 64 -events 100000 -tamper 97 -repeat 5 -json BENCH_pr6.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 64 -events 100000 -tamper 97 -repeat 5 -verifiers 1 -json BENCH_pr6.json

# PR7 serving baseline: the fleet router's price. Each load point is
# recorded twice back-to-back — a direct -selfserve control row, then
# the same load through an in-process router over 3 nodes — at 1, 8
# and 64 sessions, best-of-5 per config. Routed rows carry routed=true
# and nodes=3; the bench table renders the direct/routed pairs side by
# side, so the splice overhead is judged against a paired same-host
# control.
serve-baseline-pr7:
	rm -f BENCH_pr7.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 1 -events 5000000 -tamper 97 -repeat 5 -json BENCH_pr7.json
	$(GO) run ./cmd/ipdsload -selfserve -router -nodes 3 -workload telnetd -sessions 1 -events 5000000 -tamper 97 -repeat 5 -json BENCH_pr7.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 8 -events 1000000 -tamper 97 -repeat 5 -json BENCH_pr7.json
	$(GO) run ./cmd/ipdsload -selfserve -router -nodes 3 -workload telnetd -sessions 8 -events 1000000 -tamper 97 -repeat 5 -json BENCH_pr7.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 64 -events 100000 -tamper 97 -repeat 5 -json BENCH_pr7.json
	$(GO) run ./cmd/ipdsload -selfserve -router -nodes 3 -workload telnetd -sessions 64 -events 100000 -tamper 97 -repeat 5 -json BENCH_pr7.json

# PR10 serving baseline: the trace plane's price and product. The
# 8-session load point is recorded three times back-to-back — an
# untraced control, the same load stamping every 64th batch (which
# also forces the client onto the re-encoding Send path), and the
# stamped load routed over 3 nodes. Traced rows carry trace_spans and
# the span-derived e2e_p50_ns/e2e_p99_ns the bench table renders.
serve-baseline-pr10:
	rm -f BENCH_pr10.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 8 -events 1000000 -tamper 97 -repeat 5 -json BENCH_pr10.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 8 -events 1000000 -tamper 97 -repeat 5 -trace-sample 64 -json BENCH_pr10.json
	$(GO) run ./cmd/ipdsload -selfserve -router -nodes 3 -workload telnetd -sessions 8 -events 1000000 -tamper 97 -repeat 5 -trace-sample 64 -json BENCH_pr10.json

# Regenerate the benchmark-trajectory table in docs/PERFORMANCE.md
# from the committed BENCH_pr*.json files.
benchtable:
	$(GO) run scripts/benchtable.go -w docs/PERFORMANCE.md

# PR5 serving baseline: same workload points as serve-baseline, with
# the flight recorder and forensic alarm-context delivery active (the
# daemon default). Rows carry alarm_ctxs and the daemon-side
# verify_p50/p99/p99.9 batch-verify quantiles. Each config is recorded
# twice back-to-back — a forensics=false control row, then the
# forensics row — and each run is best-of-5 (-repeat): the forensics
# budget (< 5%) is judged against the paired same-host control, which
# is the PR4 serve path re-measured under identical conditions;
# BENCH_pr4.json stays as the historical anchor.
serve-baseline-pr5:
	rm -f BENCH_pr5.json
	$(GO) run ./cmd/ipdsload -selfserve -forensics=false -workload telnetd -sessions 1 -events 5000000 -tamper 97 -repeat 5 -json BENCH_pr5.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 1 -events 5000000 -tamper 97 -repeat 5 -json BENCH_pr5.json
	$(GO) run ./cmd/ipdsload -selfserve -forensics=false -workload telnetd -sessions 8 -events 1000000 -tamper 97 -repeat 5 -json BENCH_pr5.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 8 -events 1000000 -tamper 97 -repeat 5 -json BENCH_pr5.json
	$(GO) run ./cmd/ipdsload -selfserve -forensics=false -workload telnetd -sessions 64 -events 100000 -tamper 97 -repeat 5 -json BENCH_pr5.json
	$(GO) run ./cmd/ipdsload -selfserve -workload telnetd -sessions 64 -events 100000 -tamper 97 -repeat 5 -json BENCH_pr5.json
