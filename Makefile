GO ?= go

.PHONY: build test vet race bench ci report

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration benchmark pass: a smoke check that every benchmark still
# compiles and runs, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full gate: what a PR must pass.
ci: vet build race bench

# Observability-driven per-workload table + JSON baseline.
report:
	$(GO) run ./cmd/report -obs -baseline BENCH_pr1.json
