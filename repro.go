// Package repro is the public API of the IPDS reproduction: the
// Infeasible Path Detection System from Zhuang, Zhang and Pande,
// "Using Branch Correlation to Identify Infeasible Paths for Anomaly
// Detection" (MICRO 2006), rebuilt from scratch in Go.
//
// The typical workflow mirrors the paper's toolchain:
//
//	prog, err := repro.Compile(src)       // MiniC -> IR -> BSV/BCV/BAT
//	res, err := prog.Run(inputLines)      // execute under the IPDS runtime
//	if len(res.Alarms) > 0 { ... }        // infeasible path == tampering
//
// Substrates (frontend, IR, analyses, tables, VM, CPU model, attack
// harness, the ten server workloads, and the per-figure experiment
// drivers) live under internal/; this package re-exports the pieces a
// downstream user needs to compile programs, run them guarded, launch
// tampering campaigns and time executions on the Table 1 machine.
package repro

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/tables"
	"repro/internal/vm"
)

// Options controls the compiler pipeline. Forwarding enables the
// store-to-load forwarding that exposes store→branch correlations (on
// in DefaultOptions); RegionPromotion emulates aggressive register
// allocation and exists for the ablation experiment.
type Options = ir.Options

// DefaultOptions is the paper-equivalent pipeline.
var DefaultOptions = ir.DefaultOptions

// Alarm re-exports the runtime's infeasible-path report.
type Alarm = ipds.Alarm

// AttackModel selects what memory an attack campaign may corrupt.
type AttackModel = attack.Model

// Attack models: overflows reach only stack data; arbitrary writes
// (format string class) reach any data object.
const (
	Overflow       = attack.Overflow
	ArbitraryWrite = attack.ArbitraryWrite
)

// Program is a compiled MiniC program with its IPDS tables.
type Program struct {
	art *pipeline.Artifacts
}

// Compile builds src with the default pipeline.
func Compile(src string) (*Program, error) {
	return CompileWithOptions(src, DefaultOptions)
}

// CompileWithOptions builds src with explicit pipeline options.
func CompileWithOptions(src string, opts Options) (*Program, error) {
	art, err := pipeline.Compile(src, opts)
	if err != nil {
		return nil, err
	}
	return &Program{art: art}, nil
}

// RunResult summarises a guarded execution.
type RunResult struct {
	ExitCode int64
	Output   []string
	Steps    uint64
	Alarms   []Alarm

	// Faulted is set when the program crashed (memory fault, division
	// by zero); Fault carries the cause.
	Faulted bool
	Fault   error
}

// Detected reports whether the run raised at least one infeasible-path
// alarm.
func (r RunResult) Detected() bool { return len(r.Alarms) > 0 }

// Run executes the program under the IPDS runtime with the given input
// lines. A non-empty Alarms slice means the execution followed a path
// the compiler proved infeasible — the detector's tampering signal.
func (p *Program) Run(input []string) (RunResult, error) {
	v := vm.New(p.art.Prog, vm.DefaultConfig, input)
	m := ipds.New(p.art.Image, ipds.DefaultConfig)
	ipds.Attach(v, m)
	res := v.Run()
	out := RunResult{
		ExitCode: res.ExitCode,
		Output:   res.Output,
		Steps:    res.Steps,
		Alarms:   m.Alarms(),
		Faulted:  res.Status == vm.Faulted,
		Fault:    res.Fault,
	}
	if res.Status == vm.StepLimit {
		return out, fmt.Errorf("repro: execution exceeded the step budget")
	}
	return out, nil
}

// DumpIR renders the lowered program (objects, functions, blocks).
func (p *Program) DumpIR() string { return p.art.Prog.Dump() }

// TableSizes returns the per-function average BSV/BCV/BAT sizes in
// bits (the paper's Figure 8 metric).
func (p *Program) TableSizes() tables.Stats { return p.art.Image.Sizes() }

// TableImage returns the encoded runtime tables (what the compiler
// attaches to the binary).
func (p *Program) TableImage() []byte { return p.art.Image.Marshal() }

// Correlations lists every branch correlation the compiler discovered,
// across all functions.
func (p *Program) Correlations() []core.Correlation {
	var out []core.Correlation
	for _, fn := range p.art.Prog.Funcs {
		out = append(out, p.art.Tables.Tables[fn].Correlations...)
	}
	return out
}

// CheckedBranches returns the total BCV population: how many branches
// the runtime verifies.
func (p *Program) CheckedBranches() int {
	n := 0
	for _, ft := range p.art.Tables.Tables {
		n += ft.NumChecked()
	}
	return n
}

// Attack runs n independent seeded tampering attacks against the
// program driven by input, per the paper's §6 methodology.
func (p *Program) Attack(n int, seed int64, model AttackModel, input []string) *attack.Result {
	c := &attack.Campaign{
		Artifacts: p.art,
		Input:     input,
		Model:     model,
		Attacks:   n,
		Seed:      seed,
	}
	return c.Run()
}

// MachineConfig re-exports the Table 1 processor configuration.
func MachineConfig() cpu.Config { return cpu.DefaultConfig() }

// Time runs the program on the cycle-level Table 1 machine, with or
// without the IPDS unit, and returns the timing statistics.
func (p *Program) Time(input []string, cfg cpu.Config, withIPDS bool) (cpu.Stats, error) {
	vcfg := vm.DefaultConfig
	vcfg.RecordBranches = false
	v := vm.New(p.art.Prog, vcfg, input)
	var m *ipds.Machine
	if withIPDS {
		m = ipds.New(p.art.Image, ipds.DefaultConfig)
	}
	s := cpu.New(cfg, m)
	s.Attach(v)
	res := v.Run()
	if res.Status != vm.Exited {
		return cpu.Stats{}, fmt.Errorf("repro: timing run ended %v: %v", res.Status, res.Fault)
	}
	return s.Stats(), nil
}
