package repro

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (go test -bench=. -benchmem). Each Benchmark
// reports the headline numbers of its figure via b.ReportMetric, so a
// bench run doubles as a reproduction run:
//
//	Figure 7  -> BenchmarkFigure7      (cfchange%, detected%)
//	Figure 8  -> BenchmarkFigure8      (bsv/bcv/bat bits)
//	Figure 9  -> BenchmarkFigure9      (overhead%, latency cycles)
//	Table 1   -> BenchmarkTable1Machine (machine-config render + timing)
//	§6 text   -> BenchmarkCompile, BenchmarkDetectionLatency,
//	             BenchmarkCheckingSpeed, BenchmarkAblationRegPromo

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/hashfn"
	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/tables"
	"repro/internal/tcache"
	"repro/internal/vm"
	"repro/internal/workload"
)

// BenchmarkFigure7 regenerates the detection-rate experiment (reduced
// to 20 attacks per program per iteration; the CLI default of 100 is
// cmd/attacksim's job).
func BenchmarkFigure7(b *testing.B) {
	var last *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(20, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.AvgCFChange, "cfchange%")
	b.ReportMetric(100*last.AvgDetected, "detected%")
	b.ReportMetric(100*last.Conditional, "conditional%")
}

// BenchmarkFigure8 regenerates the table-size measurement.
func BenchmarkFigure8(b *testing.B) {
	var last *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AvgBSVBits, "bsv-bits")
	b.ReportMetric(last.AvgBCVBits, "bcv-bits")
	b.ReportMetric(last.AvgBATBits, "bat-bits")
}

// BenchmarkFigure9 regenerates the normalized-performance experiment on
// the Table 1 machine.
func BenchmarkFigure9(b *testing.B) {
	cfg := cpu.DefaultConfig()
	var last *experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.AvgDegradation, "overhead%")
	b.ReportMetric(last.AvgDetectLat, "latency-cycles")
}

// BenchmarkTable1Machine times one server on the Table 1 configuration
// end to end (the machine the whole performance section runs on).
func BenchmarkTable1Machine(b *testing.B) {
	w := workload.ByName("httpd")
	art := pipeline.MustCompile(w.Source, ir.DefaultOptions)
	cfg := cpu.DefaultConfig()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		vcfg := vm.DefaultConfig
		vcfg.RecordBranches = false
		v := vm.New(art.Prog, vcfg, w.PerfSession)
		s := cpu.New(cfg, ipds.New(art.Image, ipds.DefaultConfig))
		s.Attach(v)
		if res := v.Run(); res.Status != vm.Exited {
			b.Fatal(res.Fault)
		}
		cycles = s.Stats().Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkDetectionLatency isolates the §6 latency measurement on one
// branch-dense workload.
func BenchmarkDetectionLatency(b *testing.B) {
	w := workload.ByName("sendmail")
	art := pipeline.MustCompile(w.Source, ir.DefaultOptions)
	cfg := cpu.DefaultConfig()
	var lat float64
	for i := 0; i < b.N; i++ {
		vcfg := vm.DefaultConfig
		vcfg.RecordBranches = false
		v := vm.New(art.Prog, vcfg, w.PerfSession)
		s := cpu.New(cfg, ipds.New(art.Image, ipds.DefaultConfig))
		s.Attach(v)
		if res := v.Run(); res.Status != vm.Exited {
			b.Fatal(res.Fault)
		}
		lat = s.Stats().AvgDetectionLatency()
	}
	b.ReportMetric(lat, "latency-cycles")
}

// BenchmarkCheckingSpeed regenerates the checking-speed claim.
func BenchmarkCheckingSpeed(b *testing.B) {
	cfg := cpu.DefaultConfig()
	var util float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.CheckingSpeed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		util = r.AvgUtilization
	}
	b.ReportMetric(util, "ipds-utilization")
}

// BenchmarkCompile regenerates the compilation-time note: the full
// pipeline over all ten servers per iteration.
func BenchmarkCompile(b *testing.B) {
	ws := workload.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			if _, err := pipeline.Compile(w.Source, ir.DefaultOptions); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompileParallel measures the per-function fan-out and the
// content-addressed table cache against BenchmarkCompile's sequential
// baseline, on a wide multi-function program (16 helpers) where the
// parallel section dominates. Run with
//
//	go test -bench 'Compile(Parallel|Cached)?$' -benchtime 2s
//
// and compare ns/op: parallel/4 plus a warm cache must clear the 1.5x
// speedup the PR claims (see BENCH_pr2.json for a committed run). On a
// single-CPU machine (GOMAXPROCS=1) the pool cannot beat sequential —
// the speedup then comes entirely from the content-addressed cache.
func BenchmarkCompileParallel(b *testing.B) {
	// Seed and shape chosen so the per-function phase dominates (the
	// hash search cost grows quickly with branch count) and no single
	// function monopolises the core phase — the workload a parallel
	// compile is for.
	prog := progen.GenerateWith(8, progen.Config{
		MaxHelpers: 24, MaxGlobals: 10, MaxLocals: 6,
		MaxStmts: 14, MaxDepth: 4, MaxExprDepth: 3, InputLines: 4,
	})

	run := func(b *testing.B, cfg pipeline.Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.CompileWith(prog.Source, ir.DefaultOptions, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("sequential", func(b *testing.B) {
		run(b, pipeline.Config{Workers: 1})
	})
	b.Run("parallel4", func(b *testing.B) {
		run(b, pipeline.Config{Workers: 4})
	})
	b.Run("parallel4-warm-cache", func(b *testing.B) {
		cache, err := tcache.New(0, "")
		if err != nil {
			b.Fatal(err)
		}
		cfg := pipeline.Config{Workers: 4, Cache: cache}
		// Warm every function once, outside the timed region.
		if _, err := pipeline.CompileWith(prog.Source, ir.DefaultOptions, cfg, nil); err != nil {
			b.Fatal(err)
		}
		warmMisses := cache.Stats().Misses
		b.ResetTimer()
		run(b, cfg)
		b.StopTimer()
		if s := cache.Stats(); s.Misses != warmMisses {
			b.Fatalf("timed region missed the warm cache %d times", s.Misses-warmMisses)
		}
	})
}

// BenchmarkAblationRegPromo regenerates the optimization ablation
// (DESIGN.md experiment index).
func BenchmarkAblationRegPromo(b *testing.B) {
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationRegPromo(10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Baseline.AvgDetected, "base-detected%")
	b.ReportMetric(100*last.Promoted.AvgDetected, "promoted-detected%")
}

// --- Micro-benchmarks of the substrates -----------------------------

// BenchmarkVMExecution measures raw interpreter throughput.
func BenchmarkVMExecution(b *testing.B) {
	w := workload.ByName("crond")
	art := pipeline.MustCompile(w.Source, ir.DefaultOptions)
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		vcfg := vm.DefaultConfig
		vcfg.RecordBranches = false
		v := vm.New(art.Prog, vcfg, w.PerfSession)
		res := v.Run()
		if res.Status != vm.Exited {
			b.Fatal(res.Fault)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
}

// BenchmarkIPDSOnBranch measures the runtime checker's per-event cost.
func BenchmarkIPDSOnBranch(b *testing.B) {
	art := pipeline.MustCompile(workload.ByName("telnetd").Source, ir.DefaultOptions)
	m := ipds.New(art.Image, ipds.DefaultConfig)
	main := art.Prog.ByName["main"]
	m.EnterFunc(main.Base)
	brs := main.Branches()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := brs[i%len(brs)]
		m.OnBranch(br.PC, i%2 == 0)
	}
}

// BenchmarkHashSearch measures the perfect-hash parameter search.
func BenchmarkHashSearch(b *testing.B) {
	base := uint64(0x4000)
	var pcs []uint64
	for i := 0; i < 24; i++ {
		pcs = append(pcs, base+uint64(i*i*4+4*i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hashfn.Find(base, pcs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableEncode measures BAT/BCV encoding.
func BenchmarkTableEncode(b *testing.B) {
	art := pipeline.MustCompile(workload.ByName("sshd").Source, ir.DefaultOptions)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tables.Encode(art.Tables); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrelationBuild measures the Figure 5 analysis itself.
func BenchmarkCorrelationBuild(b *testing.B) {
	art := pipeline.MustCompile(workload.ByName("sendmail").Source, ir.DefaultOptions)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(art.Prog, art.Alias)
	}
}
