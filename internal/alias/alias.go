// Package alias implements the pointer analysis the correlation pass
// depends on: a flow-insensitive, field-insensitive, inclusion-based
// (Andersen-style) points-to analysis over IR objects, plus per-function
// write summaries used to turn call sites into the paper's pseudo-store
// instructions.
//
// The paper used the Wilson–Lam context-sensitive pointer analysis for
// SUIF; for MiniC-sized programs a whole-program inclusion-based
// analysis gives comparable precision for the queries that matter here:
// which object does a load read, and which objects may a store or a
// call site write.
package alias

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/minic"
)

// ObjSet is a set of memory objects.
type ObjSet map[ir.ObjID]bool

// Add inserts id, reporting whether the set changed.
func (s ObjSet) Add(id ir.ObjID) bool {
	if s[id] {
		return false
	}
	s[id] = true
	return true
}

// AddAll inserts all of o, reporting whether the set changed.
func (s ObjSet) AddAll(o ObjSet) bool {
	changed := false
	for id := range o {
		if s.Add(id) {
			changed = true
		}
	}
	return changed
}

// Has reports membership.
func (s ObjSet) Has(id ir.ObjID) bool { return s[id] }

// Sorted returns the members in increasing order.
func (s ObjSet) Sorted() []ir.ObjID {
	ids := make([]ir.ObjID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Clone returns a copy.
func (s ObjSet) Clone() ObjSet {
	c := make(ObjSet, len(s))
	for id := range s {
		c[id] = true
	}
	return c
}

// Analysis holds the points-to and mod-summary results for a program.
type Analysis struct {
	prog *ir.Program

	regPts map[*ir.Func][]ObjSet // register points-to sets per function
	objPts []ObjSet              // pointer-valued object points-to sets
	retPts map[*ir.Func]ObjSet   // return-value points-to sets

	writes    map[*ir.Func]ObjSet // transitive write sets
	writesAll map[*ir.Func]bool   // conservative "may write anything"
}

// Analyze runs the analysis to fixpoint.
func Analyze(p *ir.Program) *Analysis {
	a := &Analysis{
		prog:      p,
		regPts:    map[*ir.Func][]ObjSet{},
		objPts:    make([]ObjSet, len(p.Objects)),
		retPts:    map[*ir.Func]ObjSet{},
		writes:    map[*ir.Func]ObjSet{},
		writesAll: map[*ir.Func]bool{},
	}
	for i := range a.objPts {
		a.objPts[i] = ObjSet{}
	}
	for _, f := range p.Funcs {
		regs := make([]ObjSet, f.NumRegs)
		for i := range regs {
			regs[i] = ObjSet{}
		}
		a.regPts[f] = regs
		a.retPts[f] = ObjSet{}
	}
	a.solvePointsTo()
	a.solveWrites()
	return a
}

func (a *Analysis) solvePointsTo() {
	for changed := true; changed; {
		changed = false
		for _, f := range a.prog.Funcs {
			regs := a.regPts[f]
			for _, in := range f.Instrs {
				switch in.Op {
				case ir.OpAddr:
					if regs[in.Dst].Add(in.Obj) {
						changed = true
					}
				case ir.OpMov:
					if regs[in.Dst].AddAll(regs[in.A]) {
						changed = true
					}
				case ir.OpAdd, ir.OpSub:
					// Pointer arithmetic: the result may point into
					// whatever either operand points into.
					if regs[in.Dst].AddAll(regs[in.A]) {
						changed = true
					}
					if in.B != ir.NoReg && regs[in.Dst].AddAll(regs[in.B]) {
						changed = true
					}
				case ir.OpLoad:
					if in.IsDirectAccess() {
						if regs[in.Dst].AddAll(a.objPts[in.Obj]) {
							changed = true
						}
					} else {
						for o := range regs[in.A] {
							if regs[in.Dst].AddAll(a.objPts[o]) {
								changed = true
							}
						}
					}
				case ir.OpStore:
					if in.IsDirectAccess() {
						if a.objPts[in.Obj].AddAll(regs[in.B]) {
							changed = true
						}
					} else {
						for o := range regs[in.A] {
							if a.objPts[o].AddAll(regs[in.B]) {
								changed = true
							}
						}
					}
				case ir.OpCall:
					callee := a.prog.ByName[in.Callee]
					if callee == nil {
						continue // builtin: no pointer flow
					}
					for i, arg := range in.Args {
						if i >= len(callee.Params) {
							break
						}
						if a.objPts[callee.Params[i]].AddAll(a.regPts[f][arg]) {
							changed = true
						}
					}
					if in.Dst != ir.NoReg {
						if regs[in.Dst].AddAll(a.retPts[callee]) {
							changed = true
						}
					}
				case ir.OpRet:
					if in.A != ir.NoReg {
						if a.retPts[f].AddAll(regs[in.A]) {
							changed = true
						}
					}
				}
			}
		}
	}
}

// solveWrites computes, for every function, the set of memory objects
// that executing the function (including its callees) may store to, and
// a conservative "may write anything" escape hatch for stores through
// pointers the analysis could not resolve.
func (a *Analysis) solveWrites() {
	for _, f := range a.prog.Funcs {
		a.writes[f] = ObjSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range a.prog.Funcs {
			w := a.writes[f]
			for _, in := range f.Instrs {
				switch in.Op {
				case ir.OpStore:
					if in.IsDirectAccess() {
						if w.Add(in.Obj) {
							changed = true
						}
						continue
					}
					pts := a.regPts[f][in.A]
					if len(pts) == 0 {
						if !a.writesAll[f] {
							a.writesAll[f] = true
							changed = true
						}
						continue
					}
					if w.AddAll(pts) {
						changed = true
					}
				case ir.OpCall:
					set, all := a.CallWrites(in)
					if all && !a.writesAll[f] {
						a.writesAll[f] = true
						changed = true
					}
					if w.AddAll(set) {
						changed = true
					}
				}
			}
		}
	}
}

// PointsTo returns the points-to set of register r in f.
func (a *Analysis) PointsTo(f *ir.Func, r ir.Reg) ObjSet {
	if r == ir.NoReg {
		return ObjSet{}
	}
	return a.regPts[f][r]
}

// LoadObject resolves a load to the unique scalar object it reads.
// ok is false for multiply-aliased or unresolvable loads, which the
// paper's algorithm removes from further analysis.
func (a *Analysis) LoadObject(in *ir.Instr) (ir.ObjID, bool) {
	if in.Op != ir.OpLoad {
		return ir.ObjNone, false
	}
	if in.IsDirectAccess() {
		obj := a.prog.Object(in.Obj)
		if obj.IsScalar() {
			return in.Obj, true
		}
		return ir.ObjNone, false
	}
	pts := a.regPts[in.Blk.Fn][in.A]
	if len(pts) != 1 {
		return ir.ObjNone, false
	}
	for id := range pts {
		obj := a.prog.Object(id)
		// A whole-object scalar access only: partial reads of arrays
		// or size-mismatched reads are not unique accesses.
		if obj.IsScalar() && obj.Size() == in.Size {
			return id, true
		}
	}
	return ir.ObjNone, false
}

// StoreTargets returns the objects a store may write. all=true means
// the target could not be bounded (write anywhere).
func (a *Analysis) StoreTargets(in *ir.Instr) (ObjSet, bool) {
	if in.IsDirectAccess() {
		return ObjSet{in.Obj: true}, false
	}
	pts := a.regPts[in.Blk.Fn][in.A]
	if len(pts) == 0 {
		return ObjSet{}, true
	}
	return pts, false
}

// CallWrites returns the pseudo-store set for a call site: the objects
// the callee may store to. For builtins this is the points-to sets of
// the written pointer arguments; for user functions it is the callee's
// transitive write summary. all=true means unbounded.
//
// Unbounded ("modify any variable") is exactly the paper's conservative
// fallback for callees it cannot reason about.
func (a *Analysis) CallWrites(in *ir.Instr) (ObjSet, bool) {
	f := in.Blk.Fn
	if bi := minic.Builtins[in.Callee]; bi != nil {
		out := ObjSet{}
		all := false
		for _, pi := range bi.WritesParams {
			if pi >= len(in.Args) {
				continue
			}
			pts := a.regPts[f][in.Args[pi]]
			if len(pts) == 0 {
				all = true
				continue
			}
			out.AddAll(pts)
		}
		return out, all
	}
	callee := a.prog.ByName[in.Callee]
	if callee == nil {
		return ObjSet{}, true // unknown library code
	}
	return a.writes[callee], a.writesAll[callee]
}

// FuncWrites returns the transitive write summary of f.
func (a *Analysis) FuncWrites(f *ir.Func) (ObjSet, bool) {
	return a.writes[f], a.writesAll[f]
}
