package alias

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func analyze(t *testing.T, src string) (*ir.Program, *Analysis) {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.Options{})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, Analyze(p)
}

func objByName(p *ir.Program, suffix string) *ir.Object {
	for _, o := range p.Objects {
		if o.Name == suffix || strings.HasSuffix(o.Name, "."+suffix) {
			return o
		}
	}
	return nil
}

func TestPointsToAddrOf(t *testing.T) {
	p, a := analyze(t, `
		void f() {
			int x;
			int* p;
			p = &x;
			*p = 3;
		}`)
	f := p.ByName["f"]
	x := objByName(p, "x")
	// Find the indirect store and check its target set is exactly {x}.
	for _, in := range f.Instrs {
		if in.Op == ir.OpStore && !in.IsDirectAccess() {
			set, all := a.StoreTargets(in)
			if all {
				t.Fatal("store targets should be bounded")
			}
			if len(set) != 1 || !set.Has(x.ID) {
				t.Errorf("targets = %v, want {%d}", set.Sorted(), x.ID)
			}
			return
		}
	}
	t.Fatal("indirect store not found")
}

func TestPointsToTwoTargets(t *testing.T) {
	p, a := analyze(t, `
		void f(int c) {
			int x; int y;
			int* p;
			if (c) { p = &x; } else { p = &y; }
			*p = 1;
		}`)
	f := p.ByName["f"]
	x, y := objByName(p, "x"), objByName(p, "y")
	for _, in := range f.Instrs {
		if in.Op == ir.OpStore && !in.IsDirectAccess() {
			set, all := a.StoreTargets(in)
			if all {
				t.Fatal("should be bounded")
			}
			if !set.Has(x.ID) || !set.Has(y.ID) || len(set) != 2 {
				t.Errorf("targets = %v, want {x,y}", set.Sorted())
			}
			return
		}
	}
	t.Fatal("indirect store not found")
}

func TestPointsToThroughCall(t *testing.T) {
	p, a := analyze(t, `
		void set(int* p) { *p = 7; }
		void f() {
			int x;
			set(&x);
		}`)
	f := p.ByName["f"]
	x := objByName(p, "x")
	// The call site must report a pseudo-store to x.
	for _, in := range f.Instrs {
		if in.Op == ir.OpCall {
			set, all := a.CallWrites(in)
			if all {
				t.Fatal("CallWrites should be bounded")
			}
			if !set.Has(x.ID) {
				t.Errorf("call writes = %v, missing x", set.Sorted())
			}
			// It also includes set's own param slot (the prologue spill).
			return
		}
	}
	t.Fatal("call not found")
}

func TestPointsToTransitiveCalls(t *testing.T) {
	p, a := analyze(t, `
		int g;
		void inner() { g = 1; }
		void outer() { inner(); }
		void f() { outer(); }`)
	f := p.ByName["f"]
	g := objByName(p, "g")
	for _, in := range f.Instrs {
		if in.Op == ir.OpCall {
			set, all := a.CallWrites(in)
			if all {
				t.Fatal("bounded expected")
			}
			if !set.Has(g.ID) {
				t.Errorf("transitive write to g missing: %v", set.Sorted())
			}
		}
	}
}

func TestBuiltinCallWrites(t *testing.T) {
	p, a := analyze(t, `
		void f() {
			char buf[16];
			char src[16];
			strcpy(buf, src);
			print_str(buf);
		}`)
	f := p.ByName["f"]
	buf := objByName(p, "buf")
	src := objByName(p, "src")
	var strcpyCall, printCall *ir.Instr
	for _, in := range f.Instrs {
		if in.Op == ir.OpCall {
			switch in.Callee {
			case "strcpy":
				strcpyCall = in
			case "print_str":
				printCall = in
			}
		}
	}
	set, all := a.CallWrites(strcpyCall)
	if all {
		t.Fatal("strcpy writes should be bounded by points-to")
	}
	if !set.Has(buf.ID) {
		t.Errorf("strcpy must write buf: %v", set.Sorted())
	}
	if set.Has(src.ID) {
		t.Errorf("strcpy must not write src: %v", set.Sorted())
	}
	pset, all := a.CallWrites(printCall)
	if all || len(pset) != 0 {
		t.Errorf("print_str writes nothing, got %v all=%v", pset.Sorted(), all)
	}
}

func TestLoadObjectDirectScalar(t *testing.T) {
	p, a := analyze(t, `int g; int f() { return g; }`)
	f := p.ByName["f"]
	g := objByName(p, "g")
	for _, in := range f.Instrs {
		if in.Op == ir.OpLoad {
			id, ok := a.LoadObject(in)
			if !ok || id != g.ID {
				t.Errorf("LoadObject = %v,%v want %v,true", id, ok, g.ID)
			}
		}
	}
}

func TestLoadObjectUniqueIndirect(t *testing.T) {
	p, a := analyze(t, `
		int f() {
			int x;
			int* p;
			x = 4;
			p = &x;
			return *p;
		}`)
	f := p.ByName["f"]
	x := objByName(p, "x")
	found := false
	for _, in := range f.Instrs {
		if in.Op == ir.OpLoad && !in.IsDirectAccess() {
			id, ok := a.LoadObject(in)
			if !ok || id != x.ID {
				t.Errorf("unique indirect load: got %v,%v", id, ok)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no indirect load found")
	}
}

func TestLoadObjectArrayExcluded(t *testing.T) {
	p, a := analyze(t, `char b[8]; char f(int i) { return b[i]; }`)
	f := p.ByName["f"]
	for _, in := range f.Instrs {
		if in.Op == ir.OpLoad && !in.IsDirectAccess() {
			if _, ok := a.LoadObject(in); ok {
				t.Error("array element load must not be a unique scalar access")
			}
		}
	}
}

func TestLoadObjectMultiAliasedExcluded(t *testing.T) {
	p, a := analyze(t, `
		int f(int c) {
			int x; int y;
			int* p;
			if (c) { p = &x; } else { p = &y; }
			return *p;
		}`)
	f := p.ByName["f"]
	for _, in := range f.Instrs {
		if in.Op == ir.OpLoad && !in.IsDirectAccess() {
			if _, ok := a.LoadObject(in); ok {
				t.Error("multiply-aliased load must be excluded")
			}
		}
	}
}

func TestReturnedPointer(t *testing.T) {
	p, a := analyze(t, `
		int g;
		int* pick() { return &g; }
		void f() {
			int* p;
			p = pick();
			*p = 9;
		}`)
	f := p.ByName["f"]
	g := objByName(p, "g")
	for _, in := range f.Instrs {
		if in.Op == ir.OpStore && !in.IsDirectAccess() {
			set, all := a.StoreTargets(in)
			if all || !set.Has(g.ID) {
				t.Errorf("store through returned pointer: %v all=%v", set.Sorted(), all)
			}
			return
		}
	}
	t.Fatal("indirect store not found")
}

func TestFuncWritesDirectGlobal(t *testing.T) {
	p, a := analyze(t, `
		int g; int h;
		void w() { g = 1; }
		void f() { h = 2; }`)
	g, h := objByName(p, "g"), objByName(p, "h")
	set, all := a.FuncWrites(p.ByName["w"])
	if all || !set.Has(g.ID) || set.Has(h.ID) {
		t.Errorf("w writes = %v all=%v", set.Sorted(), all)
	}
}

func TestObjSetOps(t *testing.T) {
	s := ObjSet{}
	if !s.Add(3) || s.Add(3) {
		t.Error("Add change reporting wrong")
	}
	o := ObjSet{1: true, 2: true}
	if !s.AddAll(o) {
		t.Error("AddAll should report change")
	}
	if s.AddAll(o) {
		t.Error("AddAll of subset should not report change")
	}
	want := []ir.ObjID{1, 2, 3}
	got := s.Sorted()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Sorted = %v", got)
	}
	c := s.Clone()
	c.Add(9)
	if s.Has(9) {
		t.Error("Clone must not share storage")
	}
}

func TestPointsToAPI(t *testing.T) {
	p, a := analyze(t, `
		void f() {
			int x;
			int* q;
			q = &x;
			*q = 1;
		}`)
	f := p.ByName["f"]
	x := objByName(p, "x")
	// The register assigned by &x must point to exactly {x}.
	for _, in := range f.Instrs {
		if in.Op == ir.OpAddr && in.Obj == x.ID {
			pts := a.PointsTo(f, in.Dst)
			if len(pts) != 1 || !pts.Has(x.ID) {
				t.Errorf("PointsTo(&x) = %v", pts.Sorted())
			}
		}
	}
	if got := a.PointsTo(f, ir.NoReg); len(got) != 0 {
		t.Error("PointsTo(NoReg) must be empty")
	}
}

func TestStoreTargetsDirect(t *testing.T) {
	p, a := analyze(t, `int g; void f() { g = 1; }`)
	f := p.ByName["f"]
	g := objByName(p, "g")
	for _, in := range f.Instrs {
		if in.Op == ir.OpStore {
			set, all := a.StoreTargets(in)
			if all || len(set) != 1 || !set.Has(g.ID) {
				t.Errorf("direct store targets = %v all=%v", set.Sorted(), all)
			}
		}
	}
}

func TestCallWritesUnknownCallee(t *testing.T) {
	// A call instruction naming a function that is neither a builtin
	// nor user-defined cannot happen via sema; simulate the conservative
	// path through a synthetic instruction.
	p, a := analyze(t, `void f() { print_int(1); }`)
	f := p.ByName["f"]
	var call *ir.Instr
	for _, in := range f.Instrs {
		if in.Op == ir.OpCall {
			call = in
		}
	}
	saved := call.Callee
	call.Callee = "mystery_library_fn"
	set, all := a.CallWrites(call)
	if !all || len(set) != 0 {
		t.Errorf("unknown callee must be unbounded, got %v all=%v", set.Sorted(), all)
	}
	call.Callee = saved
}
