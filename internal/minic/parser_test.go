package minic

import "testing"

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

func TestParseGlobalsAndFuncs(t *testing.T) {
	f := mustParse(t, `
		int g = 3;
		char buf[16];
		int add(int a, int b) { return a + b; }
		void main() { }
	`)
	if len(f.Globals) != 2 {
		t.Fatalf("got %d globals, want 2", len(f.Globals))
	}
	if f.Globals[1].Type.Kind != TypeArray || f.Globals[1].Type.ArrayLen != 16 {
		t.Errorf("buf type = %v, want char[16]", f.Globals[1].Type)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(f.Funcs))
	}
	if got := f.FuncByName("add"); got == nil || len(got.Params) != 2 {
		t.Errorf("add not parsed correctly: %+v", got)
	}
	if f.FuncByName("nope") != nil {
		t.Error("FuncByName should return nil for missing name")
	}
}

func TestParsePointerTypes(t *testing.T) {
	f := mustParse(t, `int** pp; void f(char* s, int* p) { }`)
	if f.Globals[0].Type.String() != "int**" {
		t.Errorf("pp type = %v", f.Globals[0].Type)
	}
	fn := f.FuncByName("f")
	if fn.Params[0].Type.String() != "char*" || fn.Params[1].Type.String() != "int*" {
		t.Errorf("param types: %v %v", fn.Params[0].Type, fn.Params[1].Type)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `void f() { int x; x = 1 + 2 * 3; }`)
	body := f.Funcs[0].Body.Stmts
	asg := body[1].(*ExprStmt).X.(*AssignExpr)
	add := asg.RHS.(*BinaryExpr)
	if add.Op != BAdd {
		t.Fatalf("root op = %v, want +", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != BMul {
		t.Fatalf("right op = %v, want *", mul.Op)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	f := mustParse(t, `void f(int a, int b, int c) { if (a < 1 && b > 2 || c == 3) { } }`)
	ifs := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	or := ifs.Cond.(*BinaryExpr)
	if or.Op != BLogOr {
		t.Fatalf("root = %v, want ||", or.Op)
	}
	and := or.L.(*BinaryExpr)
	if and.Op != BLogAnd {
		t.Fatalf("left = %v, want &&", and.Op)
	}
}

func TestParseIfElseChain(t *testing.T) {
	f := mustParse(t, `void f(int x) {
		if (x == 1) { } else if (x == 2) { } else { }
	}`)
	ifs := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	inner, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else-if not chained: %T", ifs.Else)
	}
	if inner.Else == nil {
		t.Error("final else missing")
	}
}

func TestParseLoops(t *testing.T) {
	f := mustParse(t, `void f() {
		int i;
		while (i < 10) { i = i + 1; }
		for (i = 0; i < 5; i = i + 1) { break; }
		for (int j = 0; j < 5; j++) { continue; }
		for (;;) { break; }
	}`)
	stmts := f.Funcs[0].Body.Stmts
	if _, ok := stmts[1].(*WhileStmt); !ok {
		t.Errorf("stmt1 = %T, want while", stmts[1])
	}
	fs := stmts[3].(*ForStmt)
	if _, ok := fs.Init.(*DeclStmt); !ok {
		t.Errorf("for init = %T, want decl", fs.Init)
	}
	empty := stmts[4].(*ForStmt)
	if empty.Init != nil || empty.Cond != nil || empty.Post != nil {
		t.Error("for(;;) should have nil clauses")
	}
}

func TestParseDesugarCompound(t *testing.T) {
	f := mustParse(t, `void f() { int x; x += 2; x++; ++x; x--; }`)
	for i, s := range f.Funcs[0].Body.Stmts[1:] {
		es := s.(*ExprStmt)
		asg, ok := es.X.(*AssignExpr)
		if !ok {
			t.Fatalf("stmt %d: %T, want assignment", i, es.X)
		}
		if _, ok := asg.RHS.(*BinaryExpr); !ok {
			t.Fatalf("stmt %d rhs: %T, want binary", i, asg.RHS)
		}
	}
}

func TestParseUnaryAndIndex(t *testing.T) {
	f := mustParse(t, `void f(int* p, int a) { int x; x = -a + *p; x = p[2]; p[x] = 1; }`)
	stmts := f.Funcs[0].Body.Stmts
	asg := stmts[1].(*ExprStmt).X.(*AssignExpr)
	add := asg.RHS.(*BinaryExpr)
	if u := add.L.(*UnaryExpr); u.Op != UNeg {
		t.Errorf("left unary = %v", u.Op)
	}
	if u := add.R.(*UnaryExpr); u.Op != UDeref {
		t.Errorf("right unary = %v", u.Op)
	}
	if _, ok := stmts[2].(*ExprStmt).X.(*AssignExpr).RHS.(*IndexExpr); !ok {
		t.Error("p[2] not parsed as index")
	}
	if _, ok := stmts[3].(*ExprStmt).X.(*AssignExpr).LHS.(*IndexExpr); !ok {
		t.Error("p[x] lhs not parsed as index")
	}
}

func TestParseCalls(t *testing.T) {
	f := mustParse(t, `int g(int a) { return a; } void f() { g(1); g(g(2)); print_str("hi"); }`)
	stmts := f.Funcs[1].Body.Stmts
	c := stmts[0].(*ExprStmt).X.(*CallExpr)
	if c.Name != "g" || len(c.Args) != 1 {
		t.Errorf("call = %+v", c)
	}
	nested := stmts[1].(*ExprStmt).X.(*CallExpr)
	if _, ok := nested.Args[0].(*CallExpr); !ok {
		t.Error("nested call not parsed")
	}
}

func TestParseStringAndCharLiterals(t *testing.T) {
	f := mustParse(t, `void f(char* s) { f("abc"); char c; c = 'x'; }`)
	call := f.Funcs[0].Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if s, ok := call.Args[0].(*StrLit); !ok || s.Value != "abc" {
		t.Errorf("string arg = %+v", call.Args[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int;",
		"void f( { }",
		"void f() { if x) {} }",
		"void f() { int 3; }",
		"void f() { x = ; }",
		"int a[0];",
		"void f() { return 1 }",
		"$$$",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseAssocRightAssign(t *testing.T) {
	f := mustParse(t, `void f() { int a; int b; a = b = 3; }`)
	asg := f.Funcs[0].Body.Stmts[2].(*ExprStmt).X.(*AssignExpr)
	if _, ok := asg.RHS.(*AssignExpr); !ok {
		t.Error("assignment should be right-associative")
	}
}
