package minic

import "fmt"

// Program is a fully checked MiniC translation unit: the AST with all
// identifiers resolved to symbols, all expressions typed, and the string
// literal table assembled. It is the input to the IR lowering.
type Program struct {
	File    *File
	Globals []*Symbol // in declaration order
	Funcs   []*FuncDecl
	Strings []string // string literal pool, indexed by StrLit.Index
}

// checker carries semantic-analysis state.
type checker struct {
	prog      *Program
	structs   map[string]*StructDef
	funcs     map[string]*Symbol
	globals   map[string]*Symbol
	scopes    []map[string]*Symbol
	curFn     *FuncDecl
	loop      int // nesting depth of loops (for continue)
	breakable int // nesting depth of loops+switches (for break)
	errs      ErrorList
	strIdx    map[string]int
}

// Check resolves and type-checks a parsed file, producing a Program.
func Check(f *File) (*Program, error) {
	c := &checker{
		prog:    &Program{File: f, Funcs: f.Funcs},
		structs: map[string]*StructDef{},
		funcs:   map[string]*Symbol{},
		globals: map[string]*Symbol{},
		strIdx:  map[string]int{},
	}

	// Pass 0: intern struct definitions and lay out their fields.
	for _, sd := range f.Structs {
		if c.structs[sd.Name] != nil {
			c.errorf(sd.Pos, "struct %q redeclared", sd.Name)
			continue
		}
		def := &StructDef{Name: sd.Name}
		seen := map[string]bool{}
		for i, fl := range sd.Fields {
			ft := c.resolveType(fl.Type, fl.Pos)
			switch {
			case ft.Kind == TypeVoid:
				c.errorf(fl.Pos, "field %q has void type", fl.Name)
				continue
			case ft.Kind == TypeStruct:
				c.errorf(fl.Pos, "nested struct field %q not supported", fl.Name)
				continue
			case ft.Kind == TypeArray && !ft.Elem.IsScalar():
				c.errorf(fl.Pos, "field %q: array of non-scalar", fl.Name)
				continue
			}
			if seen[fl.Name] {
				c.errorf(fl.Pos, "field %q redeclared", fl.Name)
				continue
			}
			seen[fl.Name] = true
			def.Fields = append(def.Fields, &Field{Name: fl.Name, Type: ft, Index: i})
		}
		def.layout()
		sd.Def = def
		c.structs[sd.Name] = def
	}

	// Pass 1: declare all globals and functions so uses may precede
	// definitions (MiniC has no forward declarations).
	for _, g := range f.Globals {
		g.Type = c.resolveType(g.Type, g.Pos)
		if c.globals[g.Name] != nil {
			c.errorf(g.Pos, "global %q redeclared", g.Name)
			continue
		}
		if g.Type.Kind == TypeVoid {
			c.errorf(g.Pos, "global %q has void type", g.Name)
		}
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Type, Pos: g.Pos}
		g.Sym = sym
		c.globals[g.Name] = sym
		c.prog.Globals = append(c.prog.Globals, sym)
	}
	for _, fn := range f.Funcs {
		if c.funcs[fn.Name] != nil {
			c.errorf(fn.Pos, "function %q redeclared", fn.Name)
			continue
		}
		if Builtins[fn.Name] != nil {
			c.errorf(fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		fn.Ret = c.resolveType(fn.Ret, fn.Pos)
		if fn.Ret.Kind == TypeStruct {
			c.errorf(fn.Pos, "function %q returns a struct (unsupported)", fn.Name)
		}
		for _, p := range fn.Params {
			p.Type = c.resolveType(p.Type, p.Pos)
		}
		sym := &Symbol{Name: fn.Name, Kind: SymFunc, Type: fn.Ret, Pos: fn.Pos, Func: fn}
		fn.Sym = sym
		c.funcs[fn.Name] = sym
	}

	// Pass 2: check global initializers (constants only) and bodies.
	for _, g := range f.Globals {
		if g.Init != nil {
			if g.Type.Kind == TypeStruct || g.Type.Kind == TypeArray {
				c.errorf(g.Pos, "global %q: %s cannot have an initializer", g.Name, g.Type)
				continue
			}
			t := c.checkExpr(g.Init)
			if t != nil && !assignable(g.Type, t, g.Init) {
				c.errorf(g.Pos, "cannot initialize %s with %s", g.Type, t)
			}
			if _, ok := constEval(g.Init); !ok {
				c.errorf(g.Pos, "global initializer for %q is not a constant expression", g.Name)
			}
		}
	}
	for _, fn := range f.Funcs {
		c.checkFunc(fn)
	}
	c.prog.Strings = make([]string, len(c.strIdx))
	for s, i := range c.strIdx {
		c.prog.Strings[i] = s
	}
	return c.prog, c.errs.Err()
}

// Compile parses and checks src in one step.
func Compile(src string) (*Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Check(f)
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// resolveType replaces unresolved struct references (parser
// placeholders holding only a name) with the interned definitions.
func (c *checker) resolveType(t *Type, pos Pos) *Type {
	if t == nil {
		return t
	}
	switch t.Kind {
	case TypeStruct:
		if t.Struct != nil && t.Struct.Fields == nil {
			def := c.structs[t.Struct.Name]
			if def == nil {
				c.errorf(pos, "undefined struct %q", t.Struct.Name)
				return IntType
			}
			return StructType(def)
		}
		return t
	case TypePointer:
		return PointerTo(c.resolveType(t.Elem, pos))
	case TypeArray:
		elem := c.resolveType(t.Elem, pos)
		if elem.Kind == TypeStruct {
			c.errorf(pos, "array of struct not supported")
			elem = IntType
		}
		return ArrayOf(elem, t.ArrayLen)
	}
	return t
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol) {
	top := c.scopes[len(c.scopes)-1]
	if top[sym.Name] != nil {
		c.errorf(sym.Pos, "%q redeclared in this scope", sym.Name)
		return
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s := c.scopes[i][name]; s != nil {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(fn *FuncDecl) {
	c.curFn = fn
	c.pushScope()
	for i, p := range fn.Params {
		if !p.Type.IsScalar() {
			c.errorf(p.Pos, "parameter %q must have scalar type, have %s", p.Name, p.Type)
		}
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type, Pos: p.Pos,
			Owner: fn, ParamIndex: i}
		p.Sym = sym
		c.declare(sym)
	}
	c.checkBlock(fn.Body)
	c.popScope()
	c.curFn = nil
}

func (c *checker) checkBlock(b *BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		c.checkBlock(s)
	case *DeclStmt:
		c.checkLocalDecl(s.Decl)
	case *IfStmt:
		c.checkCond(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *WhileStmt:
		c.checkCond(s.Cond)
		c.loop++
		c.breakable++
		c.checkStmt(s.Body)
		c.loop--
		c.breakable--
	case *ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		if s.Post != nil {
			c.checkExpr(s.Post)
		}
		c.loop++
		c.breakable++
		c.checkStmt(s.Body)
		c.loop--
		c.breakable--
		c.popScope()
	case *SwitchStmt:
		c.checkSwitch(s)
	case *ReturnStmt:
		ret := c.curFn.Ret
		if s.Value == nil {
			if ret.Kind != TypeVoid {
				c.errorf(s.Pos, "missing return value in %q", c.curFn.Name)
			}
			return
		}
		if ret.Kind == TypeVoid {
			c.errorf(s.Pos, "void function %q returns a value", c.curFn.Name)
		}
		t := c.checkExpr(s.Value)
		if t != nil && !assignable(ret, t, s.Value) {
			c.errorf(s.Pos, "cannot return %s from function returning %s", t, ret)
		}
	case *BreakStmt:
		if c.breakable == 0 {
			c.errorf(s.Pos, "break outside loop or switch")
		}
	case *ContinueStmt:
		if c.loop == 0 {
			c.errorf(s.Pos, "continue outside loop")
		}
	case *ExprStmt:
		c.checkExpr(s.X)
	}
}

func (c *checker) checkLocalDecl(d *VarDecl) {
	d.Type = c.resolveType(d.Type, d.Pos)
	if d.Type.Kind == TypeVoid {
		c.errorf(d.Pos, "local %q has void type", d.Name)
	}
	if d.Type.Kind == TypeStruct && d.Init != nil {
		c.errorf(d.Pos, "struct %q cannot have an initializer", d.Name)
	}
	sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: d.Type, Pos: d.Pos, Owner: c.curFn}
	d.Sym = sym
	c.declare(sym)
	c.curFn.Locals = append(c.curFn.Locals, d)
	if d.Init != nil {
		t := c.checkExpr(d.Init)
		if t != nil && !assignable(d.Type, t, d.Init) {
			c.errorf(d.Pos, "cannot initialize %s with %s", d.Type, t)
		}
	}
}

func (c *checker) checkSwitch(s *SwitchStmt) {
	t := c.checkExpr(s.Tag)
	if t != nil && !t.IsArith() {
		c.errorf(s.Pos, "switch tag must be arithmetic, have %s", t)
	}
	seen := map[int64]bool{}
	haveDefault := false
	c.breakable++
	c.pushScope()
	for _, e := range s.Entries {
		if e.IsDefault {
			if haveDefault {
				c.errorf(e.Pos, "multiple default labels")
			}
			haveDefault = true
		} else {
			c.checkExpr(e.Expr)
			v, ok := constEval(e.Expr)
			if !ok {
				c.errorf(e.Pos, "case label is not a constant expression")
			} else {
				if seen[v] {
					c.errorf(e.Pos, "duplicate case value %d", v)
				}
				seen[v] = true
				e.Val = v
			}
		}
		for _, st := range e.Stmts {
			c.checkStmt(st)
		}
	}
	c.popScope()
	c.breakable--
}

func (c *checker) checkCond(e Expr) {
	t := c.checkExpr(e)
	if t != nil && !t.IsScalar() {
		c.errorf(e.pos(), "condition must be scalar, have %s", t)
	}
}

// decay converts array types to pointers for value contexts.
func decay(t *Type) *Type {
	if t != nil && t.Kind == TypeArray {
		return PointerTo(t.Elem)
	}
	return t
}

// assignable reports whether a value of type src (with source expression
// srcExpr, used to allow the `ptr = 0` null idiom) can be assigned to dst.
func assignable(dst, src *Type, srcExpr Expr) bool {
	src = decay(src)
	if dst.IsArith() && src.IsArith() {
		return true
	}
	if dst.Kind == TypePointer && src.Kind == TypePointer {
		return dst.Elem.Equal(src.Elem)
	}
	if dst.Kind == TypePointer && src.IsArith() {
		if lit, ok := srcExpr.(*IntLit); ok && lit.Value == 0 {
			return true
		}
	}
	return false
}

func (c *checker) checkExpr(e Expr) *Type {
	switch e := e.(type) {
	case *IntLit:
		e.T = IntType
	case *CharLit:
		e.T = CharType
	case *StrLit:
		idx, ok := c.strIdx[e.Value]
		if !ok {
			idx = len(c.strIdx)
			c.strIdx[e.Value] = idx
		}
		e.Index = idx
		e.T = PointerTo(CharType)
	case *Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errorf(e.P, "undefined: %q", e.Name)
			e.T = IntType
			return e.T
		}
		if sym.Kind == SymFunc {
			c.errorf(e.P, "function %q used as value", e.Name)
		}
		e.Sym = sym
		e.T = sym.Type
	case *IndexExpr:
		bt := c.checkExpr(e.Base)
		it := c.checkExpr(e.Index)
		if it != nil && !it.IsArith() {
			c.errorf(e.P, "array index must be arithmetic, have %s", it)
		}
		switch {
		case bt == nil:
			e.T = IntType
		case bt.Kind == TypeArray:
			e.T = bt.Elem
			c.markAddrTaken(e.Base)
		case bt.Kind == TypePointer:
			e.T = bt.Elem
		default:
			c.errorf(e.P, "cannot index %s", bt)
			e.T = IntType
		}
	case *MemberExpr:
		c.checkMember(e)
	case *CallExpr:
		c.checkCall(e)
	case *UnaryExpr:
		c.checkUnary(e)
	case *BinaryExpr:
		c.checkBinary(e)
	case *AssignExpr:
		lt := c.checkExpr(e.LHS)
		rt := c.checkExpr(e.RHS)
		if !isLValue(e.LHS) {
			c.errorf(e.P, "assignment target is not an lvalue")
		} else if lt != nil && lt.Kind == TypeArray {
			c.errorf(e.P, "cannot assign to array")
		} else if lt != nil && lt.Kind == TypeStruct {
			c.errorf(e.P, "cannot assign whole struct")
		}
		if lt != nil && rt != nil && lt.Kind != TypeArray && lt.Kind != TypeStruct &&
			!assignable(lt, rt, e.RHS) {
			c.errorf(e.P, "cannot assign %s to %s", rt, lt)
		}
		e.T = lt
	}
	return e.TypeOf()
}

func isLValue(e Expr) bool {
	switch e := e.(type) {
	case *Ident:
		return true
	case *IndexExpr:
		return true
	case *MemberExpr:
		return true
	case *UnaryExpr:
		return e.Op == UDeref
	}
	return false
}

func (c *checker) markAddrTaken(e Expr) {
	switch e := e.(type) {
	case *Ident:
		if e.Sym != nil {
			e.Sym.AddrTaken = true
		}
	case *MemberExpr:
		if e.Arrow || e.Field == nil {
			return // pointee storage already escaped when & was taken
		}
		if id, ok := e.Base.(*Ident); ok && id.Sym != nil {
			// Field-granular escape: the struct stays split; only this
			// field's object becomes aliasable.
			if id.Sym.FieldAddrTaken == nil {
				id.Sym.FieldAddrTaken = map[int]bool{}
			}
			id.Sym.FieldAddrTaken[e.Field.Index] = true
			return
		}
		c.markAddrTaken(e.Base)
	}
}

func (c *checker) checkMember(e *MemberExpr) {
	bt := c.checkExpr(e.Base)
	e.T = IntType
	if bt == nil {
		return
	}
	var def *StructDef
	if e.Arrow {
		if bt.Kind != TypePointer || bt.Elem.Kind != TypeStruct {
			c.errorf(e.P, "-> requires a struct pointer, have %s", bt)
			return
		}
		def = bt.Elem.Struct
	} else {
		if bt.Kind != TypeStruct {
			c.errorf(e.P, ". requires a struct, have %s", bt)
			return
		}
		def = bt.Struct
	}
	f := def.FieldByName(e.Name)
	if f == nil {
		c.errorf(e.P, "struct %s has no field %q", def.Name, e.Name)
		return
	}
	e.Field = f
	e.T = f.Type
	// Array fields decay through pointers; accessing one through a
	// split struct works like accessing a named array, which needs the
	// variable's address. Mark accordingly for the blob fallback.
	if f.Type.Kind == TypeArray {
		c.markAddrTaken(e)
	}
}

func (c *checker) checkCall(e *CallExpr) {
	if bi := Builtins[e.Name]; bi != nil {
		e.Bi = bi
		e.T = bi.Ret
		if len(e.Args) != len(bi.Params) {
			c.errorf(e.P, "%s expects %d args, got %d", e.Name, len(bi.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := decay(c.checkExpr(a))
			if i >= len(bi.Params) || at == nil {
				continue
			}
			want := bi.Params[i]
			if want == nil { // any pointer
				if at.Kind != TypePointer {
					c.errorf(a.pos(), "%s arg %d must be a pointer, have %s", e.Name, i+1, at)
				}
				continue
			}
			if !assignable(want, at, a) {
				c.errorf(a.pos(), "%s arg %d: cannot use %s as %s", e.Name, i+1, at, want)
			}
		}
		return
	}
	sym := c.funcs[e.Name]
	if sym == nil {
		c.errorf(e.P, "call to undefined function %q", e.Name)
		e.T = IntType
		return
	}
	e.Sym = sym
	e.T = sym.Func.Ret
	if len(e.Args) != len(sym.Func.Params) {
		c.errorf(e.P, "%s expects %d args, got %d", e.Name, len(sym.Func.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at := decay(c.checkExpr(a))
		if i >= len(sym.Func.Params) || at == nil {
			continue
		}
		want := sym.Func.Params[i].Type
		if !assignable(want, at, a) {
			c.errorf(a.pos(), "%s arg %d: cannot use %s as %s", e.Name, i+1, at, want)
		}
	}
}

func (c *checker) checkUnary(e *UnaryExpr) {
	xt := c.checkExpr(e.X)
	switch e.Op {
	case UNeg, UBNot:
		if xt != nil && !xt.IsArith() {
			c.errorf(e.P, "operator %s requires arithmetic operand, have %s", e.Op, xt)
		}
		e.T = IntType
	case UNot:
		if xt != nil && !decay(xt).IsScalar() {
			c.errorf(e.P, "operator ! requires scalar operand, have %s", xt)
		}
		e.T = IntType
	case UDeref:
		dt := decay(xt)
		if dt == nil || dt.Kind != TypePointer {
			c.errorf(e.P, "cannot dereference %s", xt)
			e.T = IntType
			return
		}
		e.T = dt.Elem
	case UAddr:
		if !isLValue(e.X) {
			c.errorf(e.P, "cannot take address of non-lvalue")
			e.T = PointerTo(IntType)
			return
		}
		c.markAddrTaken(e.X)
		if ix, ok := e.X.(*IndexExpr); ok {
			c.markAddrTaken(ix.Base)
		}
		if xt == nil {
			e.T = PointerTo(IntType)
			return
		}
		e.T = PointerTo(xt)
	}
}

func (c *checker) checkBinary(e *BinaryExpr) {
	lt := decay(c.checkExpr(e.L))
	rt := decay(c.checkExpr(e.R))
	if lt == nil || rt == nil {
		e.T = IntType
		return
	}
	switch e.Op {
	case BAdd:
		switch {
		case lt.Kind == TypePointer && rt.IsArith():
			e.T = lt
		case lt.IsArith() && rt.Kind == TypePointer:
			e.T = rt
		case lt.IsArith() && rt.IsArith():
			e.T = IntType
		default:
			c.errorf(e.P, "invalid operands to +: %s and %s", lt, rt)
			e.T = IntType
		}
	case BSub:
		switch {
		case lt.Kind == TypePointer && rt.IsArith():
			e.T = lt
		case lt.Kind == TypePointer && rt.Kind == TypePointer:
			e.T = IntType
		case lt.IsArith() && rt.IsArith():
			e.T = IntType
		default:
			c.errorf(e.P, "invalid operands to -: %s and %s", lt, rt)
			e.T = IntType
		}
	case BEq, BNe, BLt, BLe, BGt, BGe:
		ok := (lt.IsArith() && rt.IsArith()) ||
			(lt.Kind == TypePointer && rt.Kind == TypePointer) ||
			(lt.Kind == TypePointer && isZeroLit(e.R)) ||
			(rt.Kind == TypePointer && isZeroLit(e.L))
		if !ok {
			c.errorf(e.P, "invalid comparison: %s %s %s", lt, e.Op, rt)
		}
		e.T = IntType
	case BLogAnd, BLogOr:
		if !lt.IsScalar() || !rt.IsScalar() {
			c.errorf(e.P, "invalid operands to %s: %s and %s", e.Op, lt, rt)
		}
		e.T = IntType
	default: // arithmetic/bitwise
		if !lt.IsArith() || !rt.IsArith() {
			c.errorf(e.P, "invalid operands to %s: %s and %s", e.Op, lt, rt)
		}
		e.T = IntType
	}
}

func isZeroLit(e Expr) bool {
	lit, ok := e.(*IntLit)
	return ok && lit.Value == 0
}

// ConstEval evaluates a constant expression (int/char literals combined
// with unary and binary arithmetic). It is used for global initializers
// both here and by the IR lowering.
func ConstEval(e Expr) (int64, bool) { return constEval(e) }

// ExprPos returns the source position of an expression.
func ExprPos(e Expr) Pos { return e.pos() }

func constEval(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Value, true
	case *CharLit:
		return int64(e.Value), true
	case *UnaryExpr:
		v, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case UNeg:
			return -v, true
		case UBNot:
			return ^v, true
		case UNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *BinaryExpr:
		l, ok1 := constEval(e.L)
		r, ok2 := constEval(e.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case BAdd:
			return l + r, true
		case BSub:
			return l - r, true
		case BMul:
			return l * r, true
		case BDiv:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case BRem:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case BAnd:
			return l & r, true
		case BOr:
			return l | r, true
		case BXor:
			return l ^ r, true
		case BShl:
			if r < 0 || r > 63 {
				return 0, false
			}
			return l << uint(r), true
		case BShr:
			if r < 0 || r > 63 {
				return 0, false
			}
			return l >> uint(r), true
		}
	}
	return 0, false
}
