package minic

import (
	"fmt"
	"strconv"
)

// Parser builds an AST from a token stream using recursive descent with
// standard C operator precedence.
type Parser struct {
	toks []Token
	pos  int
	errs ErrorList
}

// Parse lexes and parses src, returning the (unchecked) AST. Call Check
// afterwards to resolve names and types.
func Parse(src string) (*File, error) {
	toks, lerrs := Lex(src)
	return ParseTokens(toks, lerrs)
}

// ParseTokens parses an already-lexed token stream (with the lexer's
// error list, folded into the parse result). It exists so callers that
// time compiler phases can separate lexing from parsing.
func ParseTokens(toks []Token, lerrs ErrorList) (*File, error) {
	p := &Parser{toks: toks, errs: lerrs}
	f := p.parseFile()
	return f, p.errs.Err()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *Parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
}

// sync skips tokens until a likely statement/declaration boundary to
// limit error cascades.
func (p *Parser) sync() {
	for !p.at(EOF) && !p.at(Semi) && !p.at(RBrace) {
		p.advance()
	}
	p.accept(Semi)
}

func (p *Parser) parseFile() *File {
	f := &File{}
	for !p.at(EOF) {
		start := p.pos
		if !p.atType() {
			p.errorf("expected declaration, found %s", p.cur())
			p.sync()
			continue
		}
		// `struct Name {` introduces a definition; `struct Name x` a use.
		if p.at(KwStruct) && p.pos+2 < len(p.toks) &&
			p.toks[p.pos+1].Kind == IDENT && p.toks[p.pos+2].Kind == LBrace {
			f.Structs = append(f.Structs, p.parseStructDecl())
			continue
		}
		typ := p.parseType()
		name := p.expect(IDENT)
		if p.at(LParen) {
			f.Funcs = append(f.Funcs, p.parseFuncRest(typ, name))
		} else {
			f.Globals = append(f.Globals, p.parseVarRest(typ, name))
		}
		if p.pos == start { // no progress; avoid livelock on bad input
			p.advance()
		}
	}
	return f
}

func (p *Parser) atType() bool {
	switch p.cur().Kind {
	case KwInt, KwChar, KwVoid, KwStruct:
		return true
	}
	return false
}

func (p *Parser) parseType() *Type {
	var t *Type
	switch p.next().Kind {
	case KwInt:
		t = IntType
	case KwChar:
		t = CharType
	case KwVoid:
		t = VoidType
	case KwStruct:
		name := p.expect(IDENT)
		// Unresolved reference; sema interns by name.
		t = StructType(&StructDef{Name: name.Lit})
	default:
		p.errorf("expected type")
		t = IntType
	}
	for p.accept(Star) {
		t = PointerTo(t)
	}
	return t
}

func (p *Parser) parseStructDecl() *StructDecl {
	pos := p.next().Pos // consume 'struct'
	name := p.expect(IDENT)
	d := &StructDecl{Name: name.Lit, Pos: pos}
	p.expect(LBrace)
	for !p.at(RBrace) && !p.at(EOF) {
		start := p.pos
		ft := p.parseType()
		fn := p.expect(IDENT)
		if p.accept(LBracket) {
			lenTok := p.expect(INT)
			n, err := strconv.Atoi(lenTok.Lit)
			if err != nil || n <= 0 {
				p.errorf("bad array length %q", lenTok.Lit)
				n = 1
			}
			p.expect(RBracket)
			ft = ArrayOf(ft, n)
		}
		p.expect(Semi)
		d.Fields = append(d.Fields, &Param{Name: fn.Lit, Type: ft, Pos: fn.Pos})
		if p.pos == start {
			p.advance()
		}
	}
	p.expect(RBrace)
	p.expect(Semi)
	return d
}

// parseVarRest parses the remainder of a variable declaration after the
// base type and name: optional array suffix, optional initializer, semi.
func (p *Parser) parseVarRest(typ *Type, name Token) *VarDecl {
	d := &VarDecl{Name: name.Lit, Type: typ, Pos: name.Pos}
	if p.accept(LBracket) {
		lenTok := p.expect(INT)
		n, err := strconv.Atoi(lenTok.Lit)
		if err != nil || n <= 0 {
			p.errorf("bad array length %q", lenTok.Lit)
			n = 1
		}
		p.expect(RBracket)
		d.Type = ArrayOf(typ, n)
	}
	if p.accept(Assign) {
		d.Init = p.parseExpr()
	}
	p.expect(Semi)
	return d
}

func (p *Parser) parseFuncRest(ret *Type, name Token) *FuncDecl {
	fn := &FuncDecl{Name: name.Lit, Ret: ret, Pos: name.Pos}
	p.expect(LParen)
	if !p.at(RParen) {
		for {
			if p.accept(KwVoid) && p.at(RParen) { // f(void)
				break
			}
			pt := p.parseType()
			pn := p.expect(IDENT)
			fn.Params = append(fn.Params, &Param{Name: pn.Lit, Type: pt, Pos: pn.Pos})
			if !p.accept(Comma) {
				break
			}
		}
	}
	p.expect(RParen)
	fn.Body = p.parseBlock()
	return fn
}

func (p *Parser) parseBlock() *BlockStmt {
	b := &BlockStmt{Pos: p.cur().Pos}
	p.expect(LBrace)
	for !p.at(RBrace) && !p.at(EOF) {
		start := p.pos
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.pos == start {
			p.advance()
		}
	}
	p.expect(RBrace)
	return b
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case LBrace:
		return p.parseBlock()
	case KwInt, KwChar, KwStruct:
		typ := p.parseType()
		name := p.expect(IDENT)
		return &DeclStmt{Decl: p.parseVarRest(typ, name)}
	case KwIf:
		return p.parseIf()
	case KwWhile:
		pos := p.next().Pos
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		body := p.parseStmt()
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}
	case KwFor:
		return p.parseFor()
	case KwSwitch:
		return p.parseSwitch()
	case KwReturn:
		pos := p.next().Pos
		s := &ReturnStmt{Pos: pos}
		if !p.at(Semi) {
			s.Value = p.parseExpr()
		}
		p.expect(Semi)
		return s
	case KwBreak:
		pos := p.next().Pos
		p.expect(Semi)
		return &BreakStmt{Pos: pos}
	case KwContinue:
		pos := p.next().Pos
		p.expect(Semi)
		return &ContinueStmt{Pos: pos}
	case Semi:
		pos := p.next().Pos
		return &ExprStmt{X: &IntLit{exprBase: exprBase{P: pos}, Value: 0}, Pos: pos}
	default:
		pos := p.cur().Pos
		x := p.parseExpr()
		p.expect(Semi)
		return &ExprStmt{X: x, Pos: pos}
	}
}

func (p *Parser) parseIf() Stmt {
	pos := p.next().Pos // consume 'if'
	p.expect(LParen)
	cond := p.parseExpr()
	p.expect(RParen)
	then := p.parseStmt()
	var els Stmt
	if p.accept(KwElse) {
		els = p.parseStmt()
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}
}

func (p *Parser) parseFor() Stmt {
	pos := p.next().Pos // consume 'for'
	p.expect(LParen)
	s := &ForStmt{Pos: pos}
	if !p.at(Semi) {
		if p.atType() && !p.at(KwVoid) {
			typ := p.parseType()
			name := p.expect(IDENT)
			s.Init = &DeclStmt{Decl: p.parseVarRest(typ, name)}
		} else {
			x := p.parseExpr()
			p.expect(Semi)
			s.Init = &ExprStmt{X: x, Pos: pos}
		}
	} else {
		p.expect(Semi)
	}
	if !p.at(Semi) {
		s.Cond = p.parseExpr()
	}
	p.expect(Semi)
	if !p.at(RParen) {
		s.Post = p.parseExpr()
	}
	p.expect(RParen)
	s.Body = p.parseStmt()
	return s
}

func (p *Parser) parseSwitch() Stmt {
	pos := p.next().Pos // consume 'switch'
	p.expect(LParen)
	s := &SwitchStmt{Tag: p.parseExpr(), Pos: pos}
	p.expect(RParen)
	p.expect(LBrace)
	var cur *SwitchEntry
	for !p.at(RBrace) && !p.at(EOF) {
		switch p.cur().Kind {
		case KwCase:
			lpos := p.next().Pos
			e := &SwitchEntry{Expr: p.parseExpr(), Pos: lpos}
			p.expect(Colon)
			s.Entries = append(s.Entries, e)
			cur = e
		case KwDefault:
			lpos := p.next().Pos
			p.expect(Colon)
			e := &SwitchEntry{IsDefault: true, Pos: lpos}
			s.Entries = append(s.Entries, e)
			cur = e
		default:
			if cur == nil {
				p.errorf("statement before first case label")
				p.sync()
				continue
			}
			start := p.pos
			cur.Stmts = append(cur.Stmts, p.parseStmt())
			if p.pos == start {
				p.advance()
			}
		}
	}
	p.expect(RBrace)
	return s
}

// Expression parsing: precedence climbing.

func (p *Parser) parseExpr() Expr { return p.parseAssign() }

func (p *Parser) parseAssign() Expr {
	lhs := p.parseLogOr()
	switch p.cur().Kind {
	case Assign:
		pos := p.next().Pos
		rhs := p.parseAssign()
		return &AssignExpr{exprBase: exprBase{P: pos}, LHS: lhs, RHS: rhs}
	case PlusEq, MinusEq:
		op := BAdd
		if p.cur().Kind == MinusEq {
			op = BSub
		}
		pos := p.next().Pos
		rhs := p.parseAssign()
		// Desugar a += b into a = a + b. The duplicated LHS is re-lowered
		// independently; MiniC LHS forms are side-effect free.
		sum := &BinaryExpr{exprBase: exprBase{P: pos}, Op: op, L: lhs, R: rhs}
		return &AssignExpr{exprBase: exprBase{P: pos}, LHS: lhs, RHS: sum}
	}
	return lhs
}

type binLevel struct {
	toks map[TokKind]BinaryOp
	next func(*Parser) Expr
}

func (p *Parser) parseBinLevel(lv binLevel) Expr {
	x := lv.next(p)
	for {
		op, ok := lv.toks[p.cur().Kind]
		if !ok {
			return x
		}
		pos := p.next().Pos
		y := lv.next(p)
		x = &BinaryExpr{exprBase: exprBase{P: pos}, Op: op, L: x, R: y}
	}
}

func (p *Parser) parseLogOr() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{OrOr: BLogOr}, (*Parser).parseLogAnd})
}
func (p *Parser) parseLogAnd() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{AndAnd: BLogAnd}, (*Parser).parseBitOr})
}
func (p *Parser) parseBitOr() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{Pipe: BOr}, (*Parser).parseBitXor})
}
func (p *Parser) parseBitXor() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{Caret: BXor}, (*Parser).parseBitAnd})
}
func (p *Parser) parseBitAnd() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{Amp: BAnd}, (*Parser).parseEquality})
}
func (p *Parser) parseEquality() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{EqEq: BEq, NotEq: BNe}, (*Parser).parseRelational})
}
func (p *Parser) parseRelational() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{Lt: BLt, Le: BLe, Gt: BGt, Ge: BGe}, (*Parser).parseShift})
}
func (p *Parser) parseShift() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{Shl: BShl, Shr: BShr}, (*Parser).parseAdditive})
}
func (p *Parser) parseAdditive() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{Plus: BAdd, Minus: BSub}, (*Parser).parseMultiplicative})
}
func (p *Parser) parseMultiplicative() Expr {
	return p.parseBinLevel(binLevel{map[TokKind]BinaryOp{Star: BMul, Slash: BDiv, Percent: BRem}, (*Parser).parseUnary})
}

func (p *Parser) parseUnary() Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case Minus:
		p.advance()
		return &UnaryExpr{exprBase: exprBase{P: pos}, Op: UNeg, X: p.parseUnary()}
	case Bang:
		p.advance()
		return &UnaryExpr{exprBase: exprBase{P: pos}, Op: UNot, X: p.parseUnary()}
	case Tilde:
		p.advance()
		return &UnaryExpr{exprBase: exprBase{P: pos}, Op: UBNot, X: p.parseUnary()}
	case Star:
		p.advance()
		return &UnaryExpr{exprBase: exprBase{P: pos}, Op: UDeref, X: p.parseUnary()}
	case Amp:
		p.advance()
		return &UnaryExpr{exprBase: exprBase{P: pos}, Op: UAddr, X: p.parseUnary()}
	case PlusPlus, MinusMinus:
		// Desugar ++x into x = x + 1 (value semantics unused in MiniC).
		op := BAdd
		if p.cur().Kind == MinusMinus {
			op = BSub
		}
		p.advance()
		x := p.parseUnary()
		one := &IntLit{exprBase: exprBase{P: pos}, Value: 1}
		sum := &BinaryExpr{exprBase: exprBase{P: pos}, Op: op, L: x, R: one}
		return &AssignExpr{exprBase: exprBase{P: pos}, LHS: x, RHS: sum}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case LBracket:
			pos := p.next().Pos
			idx := p.parseExpr()
			p.expect(RBracket)
			x = &IndexExpr{exprBase: exprBase{P: pos}, Base: x, Index: idx}
		case Dot:
			pos := p.next().Pos
			name := p.expect(IDENT)
			x = &MemberExpr{exprBase: exprBase{P: pos}, Base: x, Name: name.Lit}
		case Arrow:
			pos := p.next().Pos
			name := p.expect(IDENT)
			x = &MemberExpr{exprBase: exprBase{P: pos}, Base: x, Name: name.Lit, Arrow: true}
		case PlusPlus, MinusMinus:
			// Desugar x++ into x = x + 1; postfix value is unused in
			// MiniC statement position (sema rejects value uses).
			op := BAdd
			if p.cur().Kind == MinusMinus {
				op = BSub
			}
			pos := p.next().Pos
			one := &IntLit{exprBase: exprBase{P: pos}, Value: 1}
			sum := &BinaryExpr{exprBase: exprBase{P: pos}, Op: op, L: x, R: one}
			x = &AssignExpr{exprBase: exprBase{P: pos}, LHS: x, RHS: sum}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf("bad integer literal %q", t.Lit)
		}
		return &IntLit{exprBase: exprBase{P: t.Pos}, Value: v}
	case CHARLIT:
		p.advance()
		return &CharLit{exprBase: exprBase{P: t.Pos}, Value: t.Lit[0]}
	case STRING:
		p.advance()
		return &StrLit{exprBase: exprBase{P: t.Pos}, Value: t.Lit, Index: -1}
	case IDENT:
		p.advance()
		if p.at(LParen) {
			return p.parseCall(t)
		}
		return &Ident{exprBase: exprBase{P: t.Pos}, Name: t.Lit}
	case LParen:
		p.advance()
		x := p.parseExpr()
		p.expect(RParen)
		return x
	}
	p.errorf("expected expression, found %s", t)
	p.advance()
	return &IntLit{exprBase: exprBase{P: t.Pos}, Value: 0}
}

func (p *Parser) parseCall(name Token) Expr {
	c := &CallExpr{exprBase: exprBase{P: name.Pos}, Name: name.Lit}
	p.expect(LParen)
	if !p.at(RParen) {
		for {
			c.Args = append(c.Args, p.parseExpr())
			if !p.accept(Comma) {
				break
			}
		}
	}
	p.expect(RParen)
	return c
}
