package minic

// File is a parsed MiniC translation unit.
type File struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// StructDecl is a top-level `struct Name { ... };` definition.
type StructDecl struct {
	Name   string
	Fields []*Param // reuses Param's name/type/pos triple
	Pos    Pos
	Def    *StructDef // interned definition, set by sema
}

// FuncByName returns the function declaration with the given name, or nil.
func (f *File) FuncByName(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Name string
	Type *Type
	Init Expr // optional initializer (nil if absent)
	Pos  Pos
	Sym  *Symbol // filled by sema
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
	Pos  Pos
	Sym  *Symbol // filled by sema
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*Param
	Body   *BlockStmt
	Pos    Pos
	Sym    *Symbol // filled by sema

	// Locals lists every local VarDecl in the body, in declaration
	// order, collected by sema for frame layout.
	Locals []*VarDecl
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a `{ ... }` statement list with its own scope.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	Decl *VarDecl
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// ForStmt is a C-style for loop; Init/Cond/Post may each be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// SwitchStmt is a C switch over an arithmetic tag. Entries appear in
// source order; control falls through from one entry's body to the
// next unless a break intervenes, as in C.
type SwitchStmt struct {
	Tag     Expr
	Entries []*SwitchEntry
	Pos     Pos
}

// SwitchEntry is one `case CONST:` or `default:` label with the
// statements up to the next label.
type SwitchEntry struct {
	IsDefault bool
	Expr      Expr  // case label expression (constant), nil for default
	Val       int64 // evaluated label value, set by sema
	Stmts     []Stmt
	Pos       Pos
}

// ReturnStmt returns from the function; Value is nil for `return;`.
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*SwitchStmt) stmtNode()   {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node. After sema, TypeOf reports its type.
type Expr interface {
	exprNode()
	TypeOf() *Type
	pos() Pos
}

type exprBase struct {
	T *Type
	P Pos
}

func (e *exprBase) exprNode()     {}
func (e *exprBase) TypeOf() *Type { return e.T }
func (e *exprBase) pos() Pos      { return e.P }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// CharLit is a character literal.
type CharLit struct {
	exprBase
	Value byte
}

// StrLit is a string literal; sema assigns it a static data index.
type StrLit struct {
	exprBase
	Value string
	Index int // index into the file's string table, set by sema
}

// Ident is a reference to a named symbol.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol // filled by sema
}

// IndexExpr is a[i]; Base is an array variable or a pointer expression.
type IndexExpr struct {
	exprBase
	Base  Expr
	Index Expr
}

// CallExpr is a function call (direct calls only; no function pointers).
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
	Sym  *Symbol  // callee symbol for user functions (nil for builtins)
	Bi   *Builtin // builtin descriptor (nil for user functions)
}

// MemberExpr is s.f (Arrow false) or p->f (Arrow true).
type MemberExpr struct {
	exprBase
	Base  Expr
	Name  string
	Arrow bool
	Field *Field // resolved by sema
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	UNeg   UnaryOp = iota // -x
	UNot                  // !x
	UBNot                 // ~x
	UDeref                // *p
	UAddr                 // &x
)

func (op UnaryOp) String() string {
	return [...]string{"-", "!", "~", "*", "&"}[op]
}

// UnaryExpr is a unary operation.
type UnaryExpr struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	BAdd BinaryOp = iota
	BSub
	BMul
	BDiv
	BRem
	BAnd
	BOr
	BXor
	BShl
	BShr
	BLt
	BLe
	BGt
	BGe
	BEq
	BNe
	BLogAnd
	BLogOr
)

func (op BinaryOp) String() string {
	return [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"<", "<=", ">", ">=", "==", "!=", "&&", "||"}[op]
}

// IsComparison reports whether the operator yields a boolean 0/1.
func (op BinaryOp) IsComparison() bool { return op >= BLt && op <= BNe }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	exprBase
	Op   BinaryOp
	L, R Expr
}

// AssignExpr is lhs = rhs (also produced for +=, -=, ++ and -- after
// desugaring in the parser).
type AssignExpr struct {
	exprBase
	LHS Expr // Ident, IndexExpr or UnaryExpr{UDeref}
	RHS Expr
}
