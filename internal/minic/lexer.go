package minic

import (
	"fmt"
	"strings"
)

// Error is a frontend diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects diagnostics; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Lexer turns MiniC source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs ErrorList
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input, returning the token stream (always
// terminated by an EOF token) and any lexical errors.
func Lex(src string) ([]Token, ErrorList) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, lx.errs
		}
	}
}

func (lx *Lexer) errorf(pos Pos, format string, args ...any) {
	lx.errs = append(lx.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	c := lx.advance()
	switch {
	case isDigit(c):
		start := lx.off - 1
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		return Token{Kind: INT, Lit: lx.src[start:lx.off], Pos: pos}
	case isAlpha(c):
		start := lx.off - 1
		for lx.off < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		lit := lx.src[start:lx.off]
		if kw, ok := keywords[lit]; ok {
			return Token{Kind: kw, Pos: pos}
		}
		return Token{Kind: IDENT, Lit: lit, Pos: pos}
	case c == '"':
		return lx.lexString(pos)
	case c == '\'':
		return lx.lexChar(pos)
	}

	two := func(next byte, k2, k1 TokKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}

	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}
	case ')':
		return Token{Kind: RParen, Pos: pos}
	case '{':
		return Token{Kind: LBrace, Pos: pos}
	case '}':
		return Token{Kind: RBrace, Pos: pos}
	case '[':
		return Token{Kind: LBracket, Pos: pos}
	case ']':
		return Token{Kind: RBracket, Pos: pos}
	case ',':
		return Token{Kind: Comma, Pos: pos}
	case ';':
		return Token{Kind: Semi, Pos: pos}
	case ':':
		return Token{Kind: Colon, Pos: pos}
	case '~':
		return Token{Kind: Tilde, Pos: pos}
	case '^':
		return Token{Kind: Caret, Pos: pos}
	case '/':
		return Token{Kind: Slash, Pos: pos}
	case '%':
		return Token{Kind: Percent, Pos: pos}
	case '=':
		return two('=', EqEq, Assign)
	case '!':
		return two('=', NotEq, Bang)
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: PlusPlus, Pos: pos}
		}
		return two('=', PlusEq, Plus)
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: MinusMinus, Pos: pos}
		}
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: Arrow, Pos: pos}
		}
		return two('=', MinusEq, Minus)
	case '.':
		return Token{Kind: Dot, Pos: pos}
	case '*':
		return Token{Kind: Star, Pos: pos}
	case '&':
		return two('&', AndAnd, Amp)
	case '|':
		return two('|', OrOr, Pipe)
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: Shl, Pos: pos}
		}
		return two('=', Le, Lt)
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: Shr, Pos: pos}
		}
		return two('=', Ge, Gt)
	}
	lx.errorf(pos, "unexpected character %q", c)
	return lx.Next()
}

func (lx *Lexer) lexString(pos Pos) Token {
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) {
			lx.errorf(pos, "unterminated string literal")
			break
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				lx.errorf(pos, "unterminated escape in string literal")
				break
			}
			b.WriteByte(lx.escape(lx.advance()))
			continue
		}
		if c == '\n' {
			lx.errorf(pos, "newline in string literal")
			break
		}
		b.WriteByte(c)
	}
	return Token{Kind: STRING, Lit: b.String(), Pos: pos}
}

func (lx *Lexer) lexChar(pos Pos) Token {
	if lx.off >= len(lx.src) {
		lx.errorf(pos, "unterminated char literal")
		return Token{Kind: CHARLIT, Lit: "\x00", Pos: pos}
	}
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			lx.errorf(pos, "unterminated char literal")
			return Token{Kind: CHARLIT, Lit: "\x00", Pos: pos}
		}
		c = lx.escape(lx.advance())
	}
	if lx.peek() != '\'' {
		lx.errorf(pos, "unterminated char literal")
	} else {
		lx.advance()
	}
	return Token{Kind: CHARLIT, Lit: string(c), Pos: pos}
}

func (lx *Lexer) escape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	}
	lx.errorf(lx.pos(), "unknown escape \\%c", c)
	return c
}
