package minic

import "testing"

func kinds(toks []Token) []TokKind {
	ks := make([]TokKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasicTokens(t *testing.T) {
	toks, errs := Lex("int x = 42;")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []TokKind{KwInt, IDENT, Assign, INT, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]TokKind{
		"==": EqEq, "!=": NotEq, "<=": Le, ">=": Ge, "&&": AndAnd,
		"||": OrOr, "<<": Shl, ">>": Shr, "++": PlusPlus, "--": MinusMinus,
		"+=": PlusEq, "-=": MinusEq, "=": Assign, "!": Bang, "<": Lt,
		">": Gt, "&": Amp, "|": Pipe, "+": Plus, "-": Minus, "~": Tilde,
		"^": Caret, "*": Star, "/": Slash, "%": Percent,
	}
	for src, want := range cases {
		toks, errs := Lex(src)
		if errs.Err() != nil {
			t.Fatalf("%q: unexpected errors: %v", src, errs)
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %v, want %v", src, toks[0].Kind, want)
		}
		if toks[1].Kind != EOF {
			t.Errorf("%q: expected single token", src)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, _ := Lex("if ifx while whilst return returns")
	want := []TokKind{KwIf, IDENT, KwWhile, IDENT, KwReturn, IDENT, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, errs := Lex("a // line comment\nb /* block\ncomment */ c")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	var ids []string
	for _, tok := range toks {
		if tok.Kind == IDENT {
			ids = append(ids, tok.Lit)
		}
	}
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Errorf("got idents %v, want [a b c]", ids)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, errs := Lex(`"ab\n\t\"\\\0"`)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[0].Kind != STRING {
		t.Fatalf("expected string, got %v", toks[0].Kind)
	}
	want := "ab\n\t\"\\\x00"
	if toks[0].Lit != want {
		t.Errorf("got %q, want %q", toks[0].Lit, want)
	}
}

func TestLexCharLiteral(t *testing.T) {
	for src, want := range map[string]byte{"'a'": 'a', "'\\n'": '\n', "'\\0'": 0} {
		toks, errs := Lex(src)
		if errs.Err() != nil {
			t.Fatalf("%q: unexpected errors: %v", src, errs)
		}
		if toks[0].Kind != CHARLIT || toks[0].Lit[0] != want {
			t.Errorf("%q: got %v %q", src, toks[0].Kind, toks[0].Lit)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Lex("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", `"unterminated`, "'x", "/* open"} {
		_, errs := Lex(src)
		if errs.Err() == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestLexUnterminatedStringAtEOF(t *testing.T) {
	toks, errs := Lex(`"abc`)
	if errs.Err() == nil {
		t.Fatal("expected error")
	}
	if toks[len(toks)-1].Kind != EOF {
		t.Fatal("stream must end with EOF")
	}
}
