// Package minic implements the frontend for MiniC, the C-subset source
// language used throughout this repository as the compiler substrate.
//
// The paper's compiler work was done in SUIF/MachSUIF over C server
// programs. MiniC replaces that stack: it is a small, strict subset of C
// (int/char scalars, pointers, fixed-size arrays, functions, the usual
// statements and operators, and a modelled slice of libc) that lowers to
// the three-address IR in internal/ir on which the branch-correlation
// analysis operates.
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds. Keyword and punctuation tokens carry no payload; IDENT,
// INT, CHARLIT and STRING carry their literal text in Token.Lit.
const (
	EOF TokKind = iota
	IDENT
	INT // integer literal
	CHARLIT
	STRING

	// Keywords.
	KwInt
	KwChar
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwSwitch
	KwCase
	KwDefault
	KwStruct

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;
	Colon    // :
	Dot      // .
	Arrow    // ->

	Assign     // =
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	Amp        // &
	Pipe       // |
	Caret      // ^
	Tilde      // ~
	Bang       // !
	Lt         // <
	Gt         // >
	Le         // <=
	Ge         // >=
	EqEq       // ==
	NotEq      // !=
	AndAnd     // &&
	OrOr       // ||
	Shl        // <<
	Shr        // >>
	PlusPlus   // ++
	MinusMinus // --
	PlusEq     // +=
	MinusEq    // -=
)

var tokNames = map[TokKind]string{
	EOF: "EOF", IDENT: "identifier", INT: "int literal", CHARLIT: "char literal",
	STRING: "string literal",
	KwInt:  "int", KwChar: "char", KwVoid: "void", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue", KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwStruct: "struct",
	LParen:   "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[",
	RBracket: "]", Comma: ",", Semi: ";", Colon: ":", Dot: ".", Arrow: "->",
	Assign: "=", Plus: "+", Minus: "-",
	Star: "*", Slash: "/", Percent: "%", Amp: "&", Pipe: "|", Caret: "^",
	Tilde: "~", Bang: "!", Lt: "<", Gt: ">", Le: "<=", Ge: ">=", EqEq: "==",
	NotEq: "!=", AndAnd: "&&", OrOr: "||", Shl: "<<", Shr: ">>",
	PlusPlus: "++", MinusMinus: "--", PlusEq: "+=", MinusEq: "-=",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int": KwInt, "char": KwChar, "void": KwVoid, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "struct": KwStruct,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind TokKind
	Lit  string // literal text for IDENT/INT/CHARLIT/STRING
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return t.Lit
	case STRING:
		return fmt.Sprintf("%q", t.Lit)
	case CHARLIT:
		return fmt.Sprintf("'%s'", t.Lit)
	}
	return t.Kind.String()
}
