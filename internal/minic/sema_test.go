package minic

import (
	"strings"
	"testing"
)

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile error: %v", err)
	}
	return p
}

func compileErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestSemaResolvesSymbols(t *testing.T) {
	p := mustCompile(t, `
		int g;
		int f(int a) { int x; x = a + g; return x; }
	`)
	fn := p.File.FuncByName("f")
	asg := fn.Body.Stmts[1].(*ExprStmt).X.(*AssignExpr)
	lhs := asg.LHS.(*Ident)
	if lhs.Sym == nil || lhs.Sym.Kind != SymLocal {
		t.Errorf("x resolved to %+v", lhs.Sym)
	}
	add := asg.RHS.(*BinaryExpr)
	if a := add.L.(*Ident); a.Sym.Kind != SymParam || a.Sym.ParamIndex != 0 {
		t.Errorf("a resolved to %+v", a.Sym)
	}
	if g := add.R.(*Ident); g.Sym.Kind != SymGlobal {
		t.Errorf("g resolved to %+v", g.Sym)
	}
}

func TestSemaShadowing(t *testing.T) {
	p := mustCompile(t, `
		int x;
		void f() { int x; x = 1; { int x; x = 2; } x = 3; }
	`)
	fn := p.File.FuncByName("f")
	outer := fn.Body.Stmts[1].(*ExprStmt).X.(*AssignExpr).LHS.(*Ident).Sym
	inner := fn.Body.Stmts[2].(*BlockStmt).Stmts[1].(*ExprStmt).X.(*AssignExpr).LHS.(*Ident).Sym
	if outer == inner {
		t.Error("inner x should shadow outer x")
	}
	last := fn.Body.Stmts[3].(*ExprStmt).X.(*AssignExpr).LHS.(*Ident).Sym
	if last != outer {
		t.Error("after block, x should resolve to outer local")
	}
}

func TestSemaStringTable(t *testing.T) {
	p := mustCompile(t, `void f() { print_str("a"); print_str("b"); print_str("a"); }`)
	if len(p.Strings) != 2 {
		t.Fatalf("string table = %v, want 2 entries", p.Strings)
	}
	calls := p.File.FuncByName("f").Body.Stmts
	s1 := calls[0].(*ExprStmt).X.(*CallExpr).Args[0].(*StrLit)
	s3 := calls[2].(*ExprStmt).X.(*CallExpr).Args[0].(*StrLit)
	if s1.Index != s3.Index {
		t.Error("identical literals should share a table index")
	}
}

func TestSemaAddrTaken(t *testing.T) {
	p := mustCompile(t, `
		void f() {
			int x; int y; char buf[8]; int* p;
			p = &x;
			buf[0] = 'a';
			y = x;
		}
	`)
	fn := p.File.FuncByName("f")
	bySym := map[string]*Symbol{}
	for _, d := range fn.Locals {
		bySym[d.Name] = d.Sym
	}
	if !bySym["x"].AddrTaken {
		t.Error("x should be address-taken (&x)")
	}
	if !bySym["buf"].AddrTaken {
		t.Error("buf should be address-taken (array use)")
	}
	if bySym["y"].AddrTaken {
		t.Error("y must not be address-taken")
	}
}

func TestSemaBuiltinResolution(t *testing.T) {
	p := mustCompile(t, `void f(char* s) { int n; n = strlen(s); }`)
	call := p.File.FuncByName("f").Body.Stmts[1].(*ExprStmt).X.(*AssignExpr).RHS.(*CallExpr)
	if call.Bi == nil || call.Bi.Name != "strlen" {
		t.Errorf("builtin not resolved: %+v", call)
	}
	if call.TypeOf() != IntType {
		t.Errorf("strlen type = %v", call.TypeOf())
	}
}

func TestSemaTypeRules(t *testing.T) {
	good := []string{
		`void f() { int x; char c; x = c; c = x; }`,
		`void f(int* p) { if (p == 0) { } }`,
		`void f(char* s) { char c; c = s[0]; s[1] = c; }`,
		`int f() { char buf[4]; return strlen(buf); }`, // array decay
		`void f(int* p) { int x; x = *p; *p = x; }`,
		`void f() { int a[3]; int* p; p = &a[1]; }`,
		`int f(int n) { if (n) { return 1; } return 0; }`,
	}
	for _, src := range good {
		if _, err := Compile(src); err != nil {
			t.Errorf("%q: unexpected error %v", src, err)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`void f() { x = 1; }`, "undefined"},
		{`void f() { y(); }`, "undefined function"},
		{`void f() { int x; int x; }`, "redeclared"},
		{`int g; int g;`, "redeclared"},
		{`void f() { } void f() { }`, "redeclared"},
		{`void strlen() { }`, "shadows a builtin"},
		{`void f() { break; }`, "break outside loop"},
		{`void f() { continue; }`, "continue outside loop"},
		{`int f() { return; }`, "missing return value"},
		{`void f() { return 3; }`, "void function"},
		{`void f(int x) { 3 = x; }`, "not an lvalue"},
		{`void f(int* p, char* q) { p = q; }`, "cannot assign"},
		{`void f(int* p) { p = 5; }`, "cannot assign"},
		{`void f(int x) { x = *x; }`, "cannot dereference"},
		{`void f() { int a[2]; int b[2]; a = b; }`, "cannot assign to array"},
		{`void f(int* p) { int x; x = p % 3; }`, "invalid operands"},
		{`void f(char* s) { strlen(s, s); }`, "expects 1 args"},
		{`void f(int x) { strlen(x); }`, "cannot use"},
		{`void f() { memset(3, 0, 4); }`, "must be a pointer"},
		{`int g = strlen("x");`, "not a constant"},
		{`void v; `, "void type"},
		{`void f() { void q; }`, "expected expression"}, // parse-time: void not a local decl type
		{`void f() { int* p; p = &3; }`, "address of non-lvalue"},
		{`void f(int a, int b) { int x; x = a < b < 3; }`, ""},
	}
	for _, c := range cases {
		if c.want == "" {
			continue
		}
		compileErr(t, c.src, c.want)
	}
}

func TestSemaGlobalConstInit(t *testing.T) {
	p := mustCompile(t, `int a = 2 + 3 * 4; int b = -7; int c = 'A'; int d = 1 << 8;`)
	vals := map[string]int64{"a": 14, "b": -7, "c": 65, "d": 256}
	for _, g := range p.File.Globals {
		v, ok := constEval(g.Init)
		if !ok {
			t.Errorf("%s: not constant", g.Name)
			continue
		}
		if v != vals[g.Name] {
			t.Errorf("%s = %d, want %d", g.Name, v, vals[g.Name])
		}
	}
}

func TestSemaLocalsCollected(t *testing.T) {
	p := mustCompile(t, `void f() { int a; { int b; } for (int i = 0; i < 2; i++) { int c; } }`)
	fn := p.File.FuncByName("f")
	if len(fn.Locals) != 4 {
		t.Errorf("got %d locals, want 4 (a,b,i,c)", len(fn.Locals))
	}
}

func TestConstEvalEdgeCases(t *testing.T) {
	cases := []struct {
		src  string
		want int64
		ok   bool
	}{
		{"1/0", 0, false},
		{"7%0", 0, false},
		{"6/2", 3, true},
		{"7%4", 3, true},
		{"~0", -1, true},
		{"!5", 0, true},
		{"!0", 1, true},
		{"1<<64", 0, false},
		{"5&3", 1, true},
		{"5|3", 7, true},
		{"5^3", 6, true},
		{"16>>2", 4, true},
	}
	for _, c := range cases {
		f, err := Parse("int g = " + c.src + ";")
		if err != nil {
			t.Fatalf("%q: parse: %v", c.src, err)
		}
		v, ok := constEval(f.Globals[0].Init)
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("constEval(%q) = %d,%v want %d,%v", c.src, v, ok, c.want, c.ok)
		}
	}
}

func TestTypeSizeAndString(t *testing.T) {
	cases := []struct {
		t    *Type
		size int
		str  string
	}{
		{IntType, 8, "int"},
		{CharType, 1, "char"},
		{PointerTo(CharType), 8, "char*"},
		{ArrayOf(CharType, 10), 10, "char[10]"},
		{ArrayOf(IntType, 4), 32, "int[4]"},
		{PointerTo(PointerTo(IntType)), 8, "int**"},
	}
	for _, c := range cases {
		if c.t.Size() != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.t, c.t.Size(), c.size)
		}
		if c.t.String() != c.str {
			t.Errorf("String() = %q, want %q", c.t.String(), c.str)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PointerTo(IntType).Equal(PointerTo(IntType)) {
		t.Error("int* should equal int*")
	}
	if PointerTo(IntType).Equal(PointerTo(CharType)) {
		t.Error("int* should not equal char*")
	}
	if ArrayOf(IntType, 3).Equal(ArrayOf(IntType, 4)) {
		t.Error("int[3] should not equal int[4]")
	}
	var nilT *Type
	if nilT.Equal(IntType) || IntType.Equal(nilT) {
		t.Error("nil type equals nothing")
	}
}

func TestSemaSwitch(t *testing.T) {
	mustCompile(t, `
		int f(int x) {
			switch (x + 1) {
			case 1: return 1;
			case 'a': return 2;
			case -2: break;
			default: return 3;
			}
			return 0;
		}`)
	compileErr(t, `void f(int x) { switch (x) { case x: break; } }`, "not a constant")
	compileErr(t, `void f(int x) { switch (x) { case 1: break; case 1: break; } }`, "duplicate case")
	compileErr(t, `void f(int x) { switch (x) { default: break; default: break; } }`, "multiple default")
	compileErr(t, `void f(int* p) { switch (p) { case 1: break; } }`, "must be arithmetic")
	compileErr(t, `void f(int x) { switch (x) { x = 1; case 1: break; } }`, "before first case")
	compileErr(t, `void f() { break; }`, "break outside")
}

func TestSemaSwitchScopes(t *testing.T) {
	// Declarations inside a switch share one scope across entries.
	mustCompile(t, `
		int f(int x) {
			switch (x) {
			case 1:
				int y;
				y = 1;
				return y;
			case 2:
				y = 2;
				return y;
			}
			return 0;
		}`)
}

func TestSemaStructs(t *testing.T) {
	p := mustCompile(t, `
		struct Conn { int fd; int authed; char buf[16]; int* next; };
		struct Conn g;
		int use(struct Conn* c) { return c->fd + c->authed; }
		int main() {
			struct Conn local;
			local.fd = 3;
			local.authed = 1;
			strcpy(local.buf, "x");
			return use(&local) + g.fd;
		}`)
	sd := p.File.Structs[0]
	if sd.Def == nil || len(sd.Def.Fields) != 4 {
		t.Fatalf("struct def = %+v", sd.Def)
	}
	// Layout: fd@0, authed@8, buf@16, next@32 (buf is 16 bytes, next
	// aligns to 8).
	offs := []int{0, 8, 16, 32}
	for i, f := range sd.Def.Fields {
		if f.Offset != offs[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, offs[i])
		}
	}
	if got := StructType(sd.Def).Size(); got != 40 {
		t.Errorf("struct size = %d, want 40", got)
	}
	// &local passed to use(): whole-struct escape.
	var localSym *Symbol
	for _, d := range p.File.FuncByName("main").Locals {
		if d.Name == "local" {
			localSym = d.Sym
		}
	}
	if localSym == nil || !localSym.AddrTaken {
		t.Error("&local must mark the struct address-taken")
	}
}

func TestSemaStructFieldEscape(t *testing.T) {
	p := mustCompile(t, `
		struct S { int a; int b; };
		int main() {
			struct S s;
			int* p;
			s.a = 1;
			p = &s.b;
			return s.a + *p;
		}`)
	var sym *Symbol
	for _, d := range p.File.FuncByName("main").Locals {
		if d.Name == "s" {
			sym = d.Sym
		}
	}
	if sym.AddrTaken {
		t.Error("&s.b must not escape the whole struct")
	}
	if !sym.FieldAddrTaken[1] {
		t.Error("field b must be marked address-taken")
	}
	if sym.FieldAddrTaken[0] {
		t.Error("field a must not be marked")
	}
}

func TestSemaStructErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`struct S { int a; }; struct S { int b; };`, "redeclared"},
		{`struct S { void v; };`, "void type"},
		{`struct A { int x; }; struct B { struct A inner; };`, "nested struct"},
		{`struct S { int a; int a; };`, `field "a" redeclared`},
		{`int main() { struct Nope n; return 0; }`, "undefined struct"},
		{`struct S { int a; }; int main() { struct S s; return s.b; }`, "no field"},
		{`struct S { int a; }; int main() { int x; return x.a; }`, "requires a struct"},
		{`struct S { int a; }; int main() { struct S s; return s->a; }`, "requires a struct pointer"},
		{`struct S { int a; }; struct S f() { }`, "returns a struct"},
		{`struct S { int a; }; void f(struct S s) { }`, "scalar type"},
		{`struct S { int a; }; struct S arr[3];`, "array of struct"},
		{`struct S { int a; }; int main() { struct S a; struct S b; a = b; return 0; }`, "cannot assign whole struct"},
		{`struct S { int a; }; int main() { struct S s; if (s) { } return 0; }`, "must be scalar"},
		{`struct S { int a; }; struct S g = 3;`, "cannot"},
	}
	for _, c := range cases {
		compileErr(t, c.src, c.want)
	}
}
