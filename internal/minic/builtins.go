package minic

// Builtin describes one of the modelled libc-style runtime functions.
// The paper handles standard C library calls specially "since we know
// the exact semantics of those functions"; Builtin carries exactly the
// semantics the analysis needs: which pointer parameters' pointees the
// function may write. Execution semantics live in internal/vm.
type Builtin struct {
	Name string
	Ret  *Type
	// Params lists parameter types; a nil entry accepts any pointer.
	Params []*Type
	// WritesParams lists the indices of pointer parameters whose
	// pointees the builtin may store to. All other memory is read-only
	// for the callee (module-local output streams aside).
	WritesParams []int
	// Unbounded marks writers that do not bound the write by a length
	// parameter (strcpy, read_line): the classic overflow vectors.
	Unbounded bool
}

var anyPtr *Type // nil sentinel: any pointer type

// Builtins is the table of modelled library functions, keyed by name.
var Builtins = map[string]*Builtin{
	"strcmp": {
		Name: "strcmp", Ret: IntType,
		Params: []*Type{PointerTo(CharType), PointerTo(CharType)},
	},
	"strncmp": {
		Name: "strncmp", Ret: IntType,
		Params: []*Type{PointerTo(CharType), PointerTo(CharType), IntType},
	},
	"strcpy": {
		Name: "strcpy", Ret: VoidType,
		Params:       []*Type{PointerTo(CharType), PointerTo(CharType)},
		WritesParams: []int{0},
		Unbounded:    true,
	},
	"strncpy": {
		Name: "strncpy", Ret: VoidType,
		Params:       []*Type{PointerTo(CharType), PointerTo(CharType), IntType},
		WritesParams: []int{0},
	},
	"strcat": {
		Name: "strcat", Ret: VoidType,
		Params:       []*Type{PointerTo(CharType), PointerTo(CharType)},
		WritesParams: []int{0},
		Unbounded:    true,
	},
	"strlen": {
		Name: "strlen", Ret: IntType,
		Params: []*Type{PointerTo(CharType)},
	},
	"atoi": {
		Name: "atoi", Ret: IntType,
		Params: []*Type{PointerTo(CharType)},
	},
	"memset": {
		Name: "memset", Ret: VoidType,
		Params:       []*Type{anyPtr, IntType, IntType},
		WritesParams: []int{0},
	},
	"print_str": {
		Name: "print_str", Ret: VoidType,
		Params: []*Type{PointerTo(CharType)},
	},
	"print_int": {
		Name: "print_int", Ret: VoidType,
		Params: []*Type{IntType},
	},
	// read_line copies the next session input line into buf with no
	// bounds check: the modelled buffer-overflow vector (gets(3)).
	"read_line": {
		Name: "read_line", Ret: IntType,
		Params:       []*Type{PointerTo(CharType)},
		WritesParams: []int{0},
		Unbounded:    true,
	},
	"read_line_n": {
		Name: "read_line_n", Ret: IntType,
		Params:       []*Type{PointerTo(CharType), IntType},
		WritesParams: []int{0},
	},
	"read_int": {
		Name: "read_int", Ret: IntType,
	},
	"input_avail": {
		Name: "input_avail", Ret: IntType,
	},
	"exit_prog": {
		Name: "exit_prog", Ret: VoidType,
		Params: []*Type{IntType},
	},
}
