package minic

import "fmt"

// TypeKind discriminates MiniC types.
type TypeKind int

// Type kinds.
const (
	TypeInt TypeKind = iota
	TypeChar
	TypeVoid
	TypePointer
	TypeArray
	TypeStruct
)

// Field is one member of a struct definition. Field types are scalars
// or arrays of scalars (no nested structs in MiniC).
type Field struct {
	Name   string
	Type   *Type
	Offset int // byte offset within the struct, set by the checker
	Index  int // declaration position
}

// StructDef is a named struct definition.
type StructDef struct {
	Name   string
	Fields []*Field
	size   int
}

// FieldByName returns the named field, or nil.
func (d *StructDef) FieldByName(name string) *Field {
	for _, f := range d.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// layout assigns field offsets (size-aligned) and the total size.
func (d *StructDef) layout() {
	off := 0
	for _, f := range d.Fields {
		a := 8
		if f.Type.Size() == 1 || (f.Type.Kind == TypeArray && f.Type.Elem.Size() == 1) {
			a = 1
		}
		off = (off + a - 1) &^ (a - 1)
		f.Offset = off
		off += f.Type.Size()
	}
	d.size = (off + 7) &^ 7
}

// Type is a MiniC type. Types are compared structurally via Equal; the
// frontend interns nothing, so pointer identity is meaningless.
type Type struct {
	Kind     TypeKind
	Elem     *Type      // pointee for TypePointer, element for TypeArray
	ArrayLen int        // number of elements for TypeArray
	Struct   *StructDef // definition for TypeStruct
}

// StructType returns the type of a struct definition.
func StructType(d *StructDef) *Type { return &Type{Kind: TypeStruct, Struct: d} }

// Prebuilt scalar types.
var (
	IntType  = &Type{Kind: TypeInt}
	CharType = &Type{Kind: TypeChar}
	VoidType = &Type{Kind: TypeVoid}
)

// PointerTo returns the type *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: TypePointer, Elem: elem} }

// ArrayOf returns the type elem[n].
func ArrayOf(elem *Type, n int) *Type {
	return &Type{Kind: TypeArray, Elem: elem, ArrayLen: n}
}

// Size returns the size in bytes of a value of this type in the VM's
// memory model: char is 1 byte, int and pointers are 8 bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeInt, TypePointer:
		return 8
	case TypeArray:
		return t.ArrayLen * t.Elem.Size()
	case TypeStruct:
		return t.Struct.size
	}
	return 0
}

// IsScalar reports whether the type is a scalar (int, char or pointer)
// that fits in a register.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case TypeInt, TypeChar, TypePointer:
		return true
	}
	return false
}

// IsArith reports whether the type participates in arithmetic (int/char).
func (t *Type) IsArith() bool { return t.Kind == TypeInt || t.Kind == TypeChar }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypePointer:
		return t.Elem.Equal(o.Elem)
	case TypeArray:
		return t.ArrayLen == o.ArrayLen && t.Elem.Equal(o.Elem)
	case TypeStruct:
		return t.Struct == o.Struct // definitions are interned by name
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeVoid:
		return "void"
	case TypePointer:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case TypeStruct:
		return "struct " + t.Struct.Name
	}
	return "?"
}

// SymKind discriminates what a symbol names.
type SymKind int

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymLocal:
		return "local"
	case SymParam:
		return "param"
	case SymFunc:
		return "func"
	}
	return "?"
}

// Symbol is a resolved program entity. The semantic pass allocates one
// Symbol per declaration and links every Ident to it.
type Symbol struct {
	Name string
	Kind SymKind
	Type *Type
	Pos  Pos

	// AddrTaken records whether the symbol's address escapes (&x, or
	// the symbol is an array, whose uses decay to its address). The
	// alias analysis treats address-taken symbols as potential targets
	// of indirect stores/loads. For a struct variable it means the
	// WHOLE struct's address escaped (&s), which forces the lowering's
	// conservative blob representation.
	AddrTaken bool

	// FieldAddrTaken records, for struct variables whose whole address
	// never escapes, which individual fields had their addresses taken
	// (&s.f, or array fields, whose uses decay). Lowering keeps such a
	// struct split into per-field objects and flags only these fields.
	FieldAddrTaken map[int]bool

	// Func is the declaration for SymFunc symbols.
	Func *FuncDecl

	// Owner is the enclosing function for locals and params.
	Owner *FuncDecl

	// ParamIndex is the 0-based parameter position for SymParam.
	ParamIndex int
}

func (s *Symbol) String() string { return s.Name }
