// Package core implements the paper's primary contribution: the
// compiler construction of branch-correlation tables (Figure 5 of the
// paper) — the Branch Checking Vector (BCV) marking which branches the
// runtime verifies, and the Branch Action Table (BAT) recording how
// each committed branch outcome updates the Branch Status Vector (BSV)
// expectations of other branches.
//
// # Event model
//
// The runtime observes only committed conditional branches, so every
// static fact must be attached to a (branch, direction) event:
//
//   - Correlations attach to the source branch: when bs commits with
//     direction d, the value it tested confines a memory variable to a
//     range; if that range forces the direction of a checked branch bl,
//     the action SET_T/SET_NT(bl) is executed.
//   - Kills attach to region entries: when branch b commits with
//     direction d, the straight-line region that will now execute (up
//     to the next conditional branch) is known. Every definition of a
//     variable v inside that region invalidates expectations about v,
//     so SET_UN is applied for each checked branch over v — applied
//     conservatively early, at region entry, which can only lose
//     detection, never soundness.
//
// Kills override correlations within the same table slot: if (b,d)'s
// own region redefines v, the value b tested is stale by the time any
// branch over v executes again (the paper's Figure 4, where BR2's taken
// edge enters BB3 and x is redefined, forcing BR2's status to UNKNOWN).
//
// # Soundness conditions (zero false positives)
//
// A store→load correlation st→bs→bl requires st to dominate bs with no
// other definition of v on any st→bs path; a load→load correlation
// lp→blp→bl requires the same between lp and blp. Multiply-aliased
// accesses, unresolvable pointers and unknown callees all degrade to
// kills ("set to unknown"), exactly the paper's conservative fallback.
package core

import (
	"fmt"
	"sort"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/ranges"
)

// Action is a BAT entry action. The paper's four actions are SET_T,
// SET_NT, SET_UN and NC; NC is represented by absence.
type Action int

// BAT actions.
const (
	SetTaken Action = iota
	SetNotTaken
	SetUnknown
)

// String renders the action in the paper's SET_T/SET_NT/SET_UN
// notation.
func (a Action) String() string {
	switch a {
	case SetTaken:
		return "SET_T"
	case SetNotTaken:
		return "SET_NT"
	case SetUnknown:
		return "SET_UN"
	}
	return "?"
}

// Update is one BAT action: when the owning (branch, direction) event
// fires, set Target's status accordingly.
type Update struct {
	Target *ir.Instr
	Act    Action
}

// Event keys a BAT row: a conditional branch committing with a
// direction.
type Event struct {
	Br  *ir.Instr
	Dir cfg.Direction
}

// CorrKind distinguishes the two correlation discovery paths of the
// paper's algorithm.
type CorrKind int

// Correlation kinds.
const (
	StoreLoad CorrKind = iota // branch bs → store st → load ld → branch bl
	LoadLoad                  // branch blp → load lp → load ld → branch bl
)

// String names the discovery path ("store→load" or "load→load").
func (k CorrKind) String() string {
	if k == StoreLoad {
		return "store→load"
	}
	return "load→load"
}

// Correlation records one discovered correlation for reporting and
// tests; the actionable form lives in FuncTables.Actions.
type Correlation struct {
	Kind   CorrKind
	Source *ir.Instr     // bs or blp
	Dir    cfg.Direction // direction of Source that fires the action
	Via    *ir.Instr     // the store st or load lp
	Target *ir.Instr     // bl
	Act    Action        // SetTaken or SetNotTaken
	Obj    ir.ObjID      // the correlated memory variable
}

// String renders the correlation for diagnostics (ipdsc -corr).
func (c Correlation) String() string {
	return fmt.Sprintf("%s: br@%#x %s -> %s br@%#x (obj%d via instr %d)",
		c.Kind, c.Source.PC, c.Dir, c.Act, c.Target.PC, c.Obj, c.Via.ID)
}

// FuncTables is the per-function analysis result: the checked-branch
// set (BCV) and the action table (BAT). internal/tables encodes it into
// the bit-level layout and internal/ipds interprets it at runtime.
//
// A FuncTables is owned by whoever built it (BuildFunc) and is not
// internally synchronised: it is written during construction only and
// safe for any number of concurrent readers afterwards.
type FuncTables struct {
	Fn       *ir.Func
	Branches []*ir.Instr // conditional branches in ID order

	// Checked is the BCV: branches whose direction the runtime
	// verifies against the BSV.
	Checked map[*ir.Instr]bool

	// Actions is the BAT: updates executed when an event fires.
	Actions map[Event][]Update

	// Correlations lists the discovered correlations (diagnostics).
	Correlations []Correlation
}

// NumChecked returns the BCV population count.
func (t *FuncTables) NumChecked() int { return len(t.Checked) }

// NumActions returns the total number of BAT updates.
func (t *FuncTables) NumActions() int {
	n := 0
	for _, ups := range t.Actions {
		n += len(ups)
	}
	return n
}

// Result holds the tables for every function of a program. Like
// FuncTables it is write-once: built sequentially (Build/BuildWith) or
// assembled from per-function BuildFunc results, then read-only.
type Result struct {
	Prog   *ir.Program
	Alias  *alias.Analysis
	Tables map[*ir.Func]*FuncTables
}

// Config toggles the correlation-discovery components, for the
// component-ablation experiments. The zero value enables everything
// (the paper's full algorithm).
type Config struct {
	// DisableStoreLoad drops the store→load discovery path (Figure 5
	// lines 6–10).
	DisableStoreLoad bool
	// DisableLoadLoad drops the load→load discovery path (lines
	// 11–15), including self correlations.
	DisableLoadLoad bool
	// SelfOnly keeps only same-branch (blp == bl) load→load
	// correlations: a branch may only predict its own next outcome.
	SelfOnly bool
}

// Build runs the Figure 5 construction for every function with the
// full algorithm.
func Build(prog *ir.Program, al *alias.Analysis) *Result {
	return BuildWith(prog, al, Config{})
}

// BuildWith runs the construction with selected components disabled.
func BuildWith(prog *ir.Program, al *alias.Analysis, conf Config) *Result {
	if al == nil {
		al = alias.Analyze(prog)
	}
	res := &Result{Prog: prog, Alias: al, Tables: map[*ir.Func]*FuncTables{}}
	for _, fn := range prog.Funcs {
		res.Tables[fn] = BuildFunc(prog, al, fn, conf)
	}
	return res
}

// BuildFunc runs the Figure 5 construction for a single function. It
// only reads prog, al and fn (dominator trees and regions are built
// locally), so concurrent calls on distinct functions of the same
// program are safe — this is the unit of work the parallel pipeline
// fans out per function. The caller owns the returned FuncTables.
func BuildFunc(prog *ir.Program, al *alias.Analysis, fn *ir.Func, conf Config) *FuncTables {
	return buildFunc(prog, al, fn, conf)
}

// defInfo is a may-definition of memory: a store or a call pseudo-store.
type defInfo struct {
	in  *ir.Instr
	set alias.ObjSet
	all bool // may write anything
}

func (d defInfo) defines(obj ir.ObjID) bool { return d.all || d.set.Has(obj) }

// target is a checked-branch candidate: a branch whose direction is a
// function of one scalar memory variable's loaded value.
type target struct {
	br   *ir.Instr
	con  ranges.Constraint
	load *ir.Instr // the root load
	obj  ir.ObjID  // the variable
}

func buildFunc(prog *ir.Program, al *alias.Analysis, fn *ir.Func, conf Config) *FuncTables {
	t := &FuncTables{
		Fn:       fn,
		Branches: fn.Branches(),
		Checked:  map[*ir.Instr]bool{},
		Actions:  map[Event][]Update{},
	}
	if len(t.Branches) == 0 {
		return t
	}
	dt := cfg.BuildDomTree(fn)

	// Step 1: collect may-definitions (paper line 2: treat each store
	// as a definition; §5.3: calls become pseudo-stores).
	var defs []defInfo
	defMap := map[*ir.Instr]defInfo{}
	for _, in := range fn.Instrs {
		switch in.Op {
		case ir.OpStore:
			set, all := al.StoreTargets(in)
			d := defInfo{in: in, set: set, all: all}
			defs = append(defs, d)
			defMap[in] = d
		case ir.OpCall:
			set, all := al.CallWrites(in)
			if all || len(set) > 0 {
				d := defInfo{in: in, set: set, all: all}
				defs = append(defs, d)
				defMap[in] = d
			}
		}
	}
	defOf := func(in *ir.Instr) (defInfo, bool) {
		d, ok := defMap[in]
		return d, ok
	}

	// Step 2: branch constraints. Targets additionally need a unique
	// scalar load as root (paper line 5: "branch whose outcome is
	// inferrable from the load's range").
	cons := map[*ir.Instr]ranges.Constraint{}
	var targets []target
	for _, br := range t.Branches {
		c, ok := ranges.BranchConstraint(fn, br)
		if !ok {
			continue
		}
		cons[br] = c
		if c.Aff.Root.Op != ir.OpLoad {
			continue
		}
		obj, ok := al.LoadObject(c.Aff.Root)
		if !ok {
			continue // multiply-aliased load: removed from analysis
		}
		if !dt.InstrDominates(c.Aff.Root, br) {
			continue
		}
		targets = append(targets, target{br: br, con: c, load: c.Aff.Root, obj: obj})
	}

	// noDefBetween reports that no definition of obj can execute
	// strictly between via and src on a path that does not re-pass via.
	noDefBetween := func(via, src *ir.Instr, obj ir.ObjID) bool {
		for _, in := range cfg.Between(via, src) {
			if d, ok := defOf(in); ok && d.defines(obj) {
				return false
			}
		}
		return true
	}

	addCorr := func(c Correlation) {
		t.Correlations = append(t.Correlations, c)
	}

	// Step 3a: store→load correlations (paper lines 6–10). For each
	// uniquely-aliased scalar store st of value rs, each branch bs
	// whose tested value shares rs's root constrains the stored value;
	// if that range forces a target branch over the same variable, emit
	// the action.
	storeLoadDefs := defs
	if conf.DisableStoreLoad || conf.SelfOnly {
		storeLoadDefs = nil
	}
	for _, d := range storeLoadDefs {
		st := d.in
		if st.Op != ir.OpStore || d.all || len(d.set) != 1 {
			continue
		}
		var obj ir.ObjID
		for o := range d.set {
			obj = o
		}
		objInfo := prog.Object(obj)
		if !objInfo.IsScalar() || objInfo.Size() != st.Size {
			continue
		}
		affStore, ok := ranges.Decompose(fn, st.B)
		if !ok {
			continue
		}
		for _, bs := range t.Branches {
			cbs, ok := cons[bs]
			if !ok || !cbs.Aff.SameRoot(affStore) {
				continue
			}
			if !dt.InstrDominates(st, bs) || !noDefBetween(st, bs, obj) {
				continue
			}
			for _, tgt := range targets {
				if tgt.obj != obj {
					continue
				}
				for _, dir := range []cfg.Direction{cfg.Taken, cfg.NotTaken} {
					rootRange := cbs.RootRange(dir == cfg.Taken)
					// Stored value = affStore(root); v holds that value.
					vRange := affStore.Apply(rootRange)
					act, ok := forcedAction(tgt.con, vRange)
					if !ok {
						continue
					}
					addCorr(Correlation{
						Kind: StoreLoad, Source: bs, Dir: dir, Via: st,
						Target: tgt.br, Act: act, Obj: obj,
					})
				}
			}
		}
	}

	// Step 3b: load→load correlations (paper lines 11–15), including
	// the self case blp == bl that makes a branch repeat its direction
	// around a loop while its variable is untouched (Figure 4).
	for _, src := range targets { // blp must itself test a load of v
		if conf.DisableLoadLoad {
			break
		}
		for _, tgt := range targets {
			if tgt.obj != src.obj {
				continue
			}
			if conf.SelfOnly && tgt.br != src.br {
				continue
			}
			if !noDefBetween(src.load, src.br, src.obj) {
				continue
			}
			for _, dir := range []cfg.Direction{cfg.Taken, cfg.NotTaken} {
				vRange := src.con.RootRange(dir == cfg.Taken)
				act, ok := forcedAction(tgt.con, vRange)
				if !ok {
					continue
				}
				addCorr(Correlation{
					Kind: LoadLoad, Source: src.br, Dir: dir, Via: src.load,
					Target: tgt.br, Act: act, Obj: src.obj,
				})
			}
		}
	}

	// Step 4: materialise SET actions; resolve conflicting predictions
	// (two sound chains disagreeing can only happen via conservative
	// widening — degrade to SET_UN).
	type slot struct {
		ev  Event
		tgt *ir.Instr
	}
	acts := map[slot]Action{}
	order := []slot{}
	for _, c := range t.Correlations {
		s := slot{Event{c.Source, c.Dir}, c.Target}
		if prev, ok := acts[s]; ok {
			if prev != c.Act {
				acts[s] = SetUnknown
			}
			continue
		}
		acts[s] = c.Act
		order = append(order, s)
	}
	for _, s := range order {
		if acts[s] == SetUnknown {
			continue // conflicting predictions carry no information
		}
		t.Checked[s.tgt] = true
		t.Actions[s.ev] = append(t.Actions[s.ev], Update{Target: s.tgt, Act: acts[s]})
	}

	// Step 5: kills (paper lines 19–21). For every region, every
	// definition of a checked variable inside it sets the dependent
	// branches to UNKNOWN — overriding any correlation in the same
	// slot, since the region's definition executes after the region's
	// originating branch committed.
	checkedByObj := map[ir.ObjID][]*ir.Instr{}
	for _, tgt := range targets {
		if t.Checked[tgt.br] {
			checkedByObj[tgt.obj] = append(checkedByObj[tgt.obj], tgt.br)
		}
	}
	for _, region := range cfg.Regions(fn) {
		if region.From == nil {
			// Entry region: every BSV entry is UNKNOWN until the first
			// branch commits, so definitions here cannot strand stale
			// expectations.
			continue
		}
		ev := Event{region.From, region.Dir}
		killed := map[*ir.Instr]bool{}
		region.Instrs(func(in *ir.Instr) bool {
			d, ok := defOf(in)
			if !ok {
				return true
			}
			for obj, brs := range checkedByObj {
				if !d.defines(obj) {
					continue
				}
				for _, bl := range brs {
					killed[bl] = true
				}
			}
			return true
		})
		if len(killed) == 0 {
			continue
		}
		// Override existing SETs for killed targets, then append pure
		// kills for the rest.
		ups := t.Actions[ev]
		for i := range ups {
			if killed[ups[i].Target] {
				ups[i].Act = SetUnknown
				delete(killed, ups[i].Target)
			}
		}
		var rest []*ir.Instr
		for bl := range killed {
			rest = append(rest, bl)
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
		for _, bl := range rest {
			ups = append(ups, Update{Target: bl, Act: SetUnknown})
		}
		t.Actions[ev] = ups
	}
	return t
}

// forcedAction decides whether knowing the variable's value lies in
// vRange forces the target branch's direction. The comparison happens
// on the branch's value side (an exact partition), mapping vRange
// through the branch's affine use chain.
func forcedAction(con ranges.Constraint, vRange ranges.Range) (Action, bool) {
	if vRange.Kind == ranges.Empty {
		// The source event is impossible under the analysis model;
		// predict nothing.
		return 0, false
	}
	if vRange.SubsetOf(con.Taken) && disjoint(vRange, con.Not) {
		return SetTaken, true
	}
	if vRange.SubsetOf(con.Not) && disjoint(vRange, con.Taken) {
		return SetNotTaken, true
	}
	return 0, false
}

// disjoint is a sufficient emptiness check for the intersection of two
// ranges, used to guard against conservative widening having made the
// direction ranges overlap.
func disjoint(a, b ranges.Range) bool {
	if a.Kind == ranges.Empty || b.Kind == ranges.Empty {
		return true
	}
	if a.Kind == ranges.Exclude || b.Kind == ranges.Exclude {
		// Complement-of-point sets intersect everything except the
		// complementary point set.
		if a.Kind == ranges.Exclude && b.Kind == ranges.Interval {
			return b.SubsetOf(ranges.Point(a.Ex))
		}
		if b.Kind == ranges.Exclude && a.Kind == ranges.Interval {
			return a.SubsetOf(ranges.Point(b.Ex))
		}
		return false
	}
	// Interval vs interval.
	if a.HiSet && b.LoSet && a.Hi < b.Lo {
		return true
	}
	if b.HiSet && a.LoSet && b.Hi < a.Lo {
		return true
	}
	return false
}
