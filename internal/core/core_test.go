package core

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/minic"
)

func build(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, Build(p, nil)
}

// findUpdates returns the actions fired by (br, dir) on target.
func findUpdates(ft *FuncTables, br *ir.Instr, dir cfg.Direction, target *ir.Instr) []Action {
	var acts []Action
	for _, u := range ft.Actions[Event{br, dir}] {
		if u.Target == target {
			acts = append(acts, u.Act)
		}
	}
	return acts
}

// Figure 3.a / Figure 4 shape: a loop with a branch on y, a branch on x
// whose taken arm redefines x, and a final branch on y (subsumed by the
// first).
const fig3aSrc = `
int x; int y;
void f(int n) {
	while (n > 0) {
		if (y < 5) {
			if (x > 10) {
				x = read_int();
			}
		}
		if (y < 10) {
			print_int(1);
		}
		n = n - 1;
	}
}`

func TestSubsumptionCorrelation(t *testing.T) {
	p, res := build(t, fig3aSrc)
	f := p.ByName["f"]
	ft := res.Tables[f]
	brs := f.Branches()
	// Branch order (by PC): n>0 loop, y<5, x>10, y<10.
	if len(brs) != 4 {
		t.Fatalf("branches = %d, want 4", len(brs))
	}
	brY5, brY10 := brs[1], brs[3]

	// y<5 taken must set y<10 to taken.
	acts := findUpdates(ft, brY5, cfg.Taken, brY10)
	if len(acts) != 1 || acts[0] != SetTaken {
		t.Errorf("y<5 taken -> y<10 actions = %v, want [SET_T]", acts)
	}
	// y<5 not-taken (y>=5) says nothing about y<10.
	if acts := findUpdates(ft, brY5, cfg.NotTaken, brY10); len(acts) != 0 {
		t.Errorf("y<5 NT should not constrain y<10, got %v", acts)
	}
	// Self correlation: y<5 taken sets itself taken.
	if acts := findUpdates(ft, brY5, cfg.Taken, brY5); len(acts) != 1 || acts[0] != SetTaken {
		t.Errorf("y<5 self correlation = %v, want [SET_T]", acts)
	}
	// And not-taken sets itself not-taken.
	if acts := findUpdates(ft, brY5, cfg.NotTaken, brY5); len(acts) != 1 || acts[0] != SetNotTaken {
		t.Errorf("y<5 NT self correlation = %v, want [SET_NT]", acts)
	}
	// Both y-branches are checked.
	if !ft.Checked[brY5] || !ft.Checked[brY10] {
		t.Error("y branches should be in the BCV")
	}
}

func TestRedefinitionKillsSelfCorrelation(t *testing.T) {
	p, res := build(t, fig3aSrc)
	f := p.ByName["f"]
	ft := res.Tables[f]
	brX := f.Branches()[2] // x > 10
	// Taken arm redefines x via read_int: the taken event must set the
	// x branch to UNKNOWN (Figure 4: BR2's status becomes UN).
	acts := findUpdates(ft, brX, cfg.Taken, brX)
	if len(acts) != 1 || acts[0] != SetUnknown {
		t.Errorf("x>10 taken -> self = %v, want [SET_UN]", acts)
	}
	// Not-taken arm leaves x alone: self-correlation survives.
	acts = findUpdates(ft, brX, cfg.NotTaken, brX)
	if len(acts) != 1 || acts[0] != SetNotTaken {
		t.Errorf("x>10 NT -> self = %v, want [SET_NT]", acts)
	}
}

func TestStoreLoadCorrelation(t *testing.T) {
	// Figure 3.b shape: y stored then branched on; a later branch over
	// the reloaded y is determined.
	p, res := build(t, `
		int y;
		int f() {
			y = read_int();
			if (y < 5) {
				print_int(1);
			}
			if (y < 10) {
				return 1;
			}
			return 0;
		}`)
	f := p.ByName["f"]
	ft := res.Tables[f]
	brs := f.Branches()
	brY5, brY10 := brs[0], brs[1]
	acts := findUpdates(ft, brY5, cfg.Taken, brY10)
	if len(acts) != 1 || acts[0] != SetTaken {
		t.Errorf("store-correlated y<5 taken -> y<10 = %v, want [SET_T]", acts)
	}
	hasStoreLoad := false
	for _, c := range ft.Correlations {
		if c.Kind == StoreLoad {
			hasStoreLoad = true
		}
	}
	if !hasStoreLoad {
		t.Error("expected at least one store→load correlation")
	}
}

func TestArithmeticChainCorrelation(t *testing.T) {
	// Figure 3.c: y < 5; r1 = y - 1; r1 < 10 must be taken.
	p, res := build(t, `
		int y;
		int f() {
			int r1;
			if (y < 5) {
				r1 = y - 1;
				if (r1 < 10) {
					return 1;
				}
				return 2;
			}
			return 0;
		}`)
	f := p.ByName["f"]
	ft := res.Tables[f]
	brs := f.Branches()
	brY5, brR1 := brs[0], brs[1]
	acts := findUpdates(ft, brY5, cfg.Taken, brR1)
	if len(acts) != 1 || acts[0] != SetTaken {
		t.Errorf("y<5 taken -> (y-1)<10 = %v, want [SET_T]", acts)
	}
}

func TestEqualityCorrelation(t *testing.T) {
	p, res := build(t, `
		int user;
		int f() {
			if (user == 1) {
				print_int(1);
			}
			if (user == 1) {
				return 1;
			}
			return 0;
		}`)
	f := p.ByName["f"]
	ft := res.Tables[f]
	brs := f.Branches()
	// Both directions of the first test determine the second.
	if acts := findUpdates(ft, brs[0], cfg.Taken, brs[1]); len(acts) != 1 || acts[0] != SetTaken {
		t.Errorf("eq taken -> eq = %v", acts)
	}
	if acts := findUpdates(ft, brs[0], cfg.NotTaken, brs[1]); len(acts) != 1 || acts[0] != SetNotTaken {
		t.Errorf("eq NT -> eq = %v", acts)
	}
}

func TestCallKillsCorrelation(t *testing.T) {
	// The callee writes the global, so the call must kill expectations.
	p, res := build(t, `
		int y;
		void clobber() { y = read_int(); }
		int f() {
			if (y < 5) {
				clobber();
			}
			if (y < 10) {
				return 1;
			}
			return 0;
		}`)
	f := p.ByName["f"]
	ft := res.Tables[f]
	brs := f.Branches()
	brY5, brY10 := brs[0], brs[1]
	// Taken edge leads through clobber(): action must be SET_UN, not SET_T.
	acts := findUpdates(ft, brY5, cfg.Taken, brY10)
	if len(acts) != 1 || acts[0] != SetUnknown {
		t.Errorf("y<5 taken through clobber -> y<10 = %v, want [SET_UN]", acts)
	}
	// Not-taken edge: y>=5 gives no prediction for y<10 and no kill.
	if acts := findUpdates(ft, brY5, cfg.NotTaken, brY10); len(acts) != 0 {
		t.Errorf("y<5 NT -> y<10 = %v, want none", acts)
	}
}

func TestPureCallDoesNotKill(t *testing.T) {
	p, res := build(t, `
		int y;
		int f() {
			if (y < 5) {
				print_int(7);
			}
			if (y < 10) {
				return 1;
			}
			return 0;
		}`)
	f := p.ByName["f"]
	ft := res.Tables[f]
	brs := f.Branches()
	acts := findUpdates(ft, brs[0], cfg.Taken, brs[1])
	if len(acts) != 1 || acts[0] != SetTaken {
		t.Errorf("print_int must not kill: %v", acts)
	}
}

func TestIndirectStoreKillsConservatively(t *testing.T) {
	// p may point to y: the indirect store must kill the y expectation.
	p, res := build(t, `
		int y; int z;
		int f(int c) {
			int* p;
			if (c) { p = &y; } else { p = &z; }
			if (y < 5) {
				*p = 99;
			}
			if (y < 10) {
				return 1;
			}
			return 0;
		}`)
	f := p.ByName["f"]
	ft := res.Tables[f]
	brs := f.Branches()
	brY5, brY10 := brs[1], brs[2]
	acts := findUpdates(ft, brY5, cfg.Taken, brY10)
	if len(acts) != 1 || acts[0] != SetUnknown {
		t.Errorf("taken edge with may-alias store = %v, want [SET_UN]", acts)
	}
}

func TestMultiAliasedLoadNotChecked(t *testing.T) {
	p, res := build(t, `
		int y; int z;
		int f(int c) {
			int* p;
			if (c) { p = &y; } else { p = &z; }
			if (*p < 5) { return 1; }
			if (*p < 10) { return 2; }
			return 0;
		}`)
	f := p.ByName["f"]
	ft := res.Tables[f]
	// The *p branches must not be checked (multiply-aliased loads).
	for _, c := range ft.Correlations {
		if c.Obj != ir.ObjNone {
			obj := p.Object(c.Obj)
			if obj.Name == "y" || obj.Name == "z" {
				t.Errorf("correlation through multiply-aliased pointer: %v", c)
			}
		}
	}
}

func TestUncorrelatedBranchesNotChecked(t *testing.T) {
	_, res := build(t, `
		int f(int a, int b) {
			if (a < b) { return 1; }
			return 0;
		}`)
	for _, ft := range res.Tables {
		if ft.NumChecked() != 0 {
			t.Errorf("two-variable branch must not be checked (func %s)", ft.Fn.Name)
		}
	}
}

func TestLoopCarriedSelfCorrelation(t *testing.T) {
	// A branch on an untouched global inside a loop must repeat its
	// direction every iteration.
	p, res := build(t, `
		int mode;
		void f(int n) {
			while (n > 0) {
				if (mode == 3) {
					print_int(1);
				}
				n = n - 1;
			}
		}`)
	f := p.ByName["f"]
	ft := res.Tables[f]
	var brMode *ir.Instr
	for _, br := range f.Branches() {
		if br.Cond == ir.CondEq {
			brMode = br
		}
	}
	if brMode == nil {
		t.Fatal("mode branch not found")
	}
	if acts := findUpdates(ft, brMode, cfg.Taken, brMode); len(acts) != 1 || acts[0] != SetTaken {
		t.Errorf("mode self taken = %v, want [SET_T]", acts)
	}
	if acts := findUpdates(ft, brMode, cfg.NotTaken, brMode); len(acts) != 1 || acts[0] != SetNotTaken {
		t.Errorf("mode self NT = %v, want [SET_NT]", acts)
	}
	if !ft.Checked[brMode] {
		t.Error("mode branch must be checked")
	}
}

func TestStatsHelpers(t *testing.T) {
	_, res := build(t, fig3aSrc)
	for _, ft := range res.Tables {
		if ft.Fn.Name != "f" {
			continue
		}
		if ft.NumChecked() == 0 {
			t.Error("f should have checked branches")
		}
		if ft.NumActions() == 0 {
			t.Error("f should have BAT actions")
		}
	}
}

func TestActionAndKindStrings(t *testing.T) {
	if SetTaken.String() != "SET_T" || SetNotTaken.String() != "SET_NT" ||
		SetUnknown.String() != "SET_UN" || Action(99).String() != "?" {
		t.Error("action strings")
	}
	if StoreLoad.String() != "store→load" || LoadLoad.String() != "load→load" {
		t.Error("kind strings")
	}
}

func TestCorrelationStringSmoke(t *testing.T) {
	_, res := build(t, fig3aSrc)
	for _, ft := range res.Tables {
		for _, c := range ft.Correlations {
			if c.String() == "" {
				t.Error("empty correlation string")
			}
		}
	}
}

func TestBuildWithExplicitAlias(t *testing.T) {
	mp, err := minic.Compile(`int g; int f() { if (g<1) { return 1; } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	p := ir.MustLower(mp, ir.DefaultOptions)
	res1 := Build(p, nil)
	res2 := Build(p, res1.Alias)
	f := p.ByName["f"]
	if res1.Tables[f].NumActions() != res2.Tables[f].NumActions() {
		t.Error("explicit alias analysis changes results")
	}
}
