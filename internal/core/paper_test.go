package core_test

// paper_test.go replays the paper's worked examples (Figures 2, 3 and
// 4) against the implementation, asserting both the static tables and
// the dynamic BSV evolution the paper narrates.

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/tables"
	"repro/internal/vm"
)

func buildImage(t *testing.T, src string) (*ir.Program, *core.Result, *tables.Image) {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	res := core.Build(p, nil)
	img, err := tables.Encode(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return p, res, img
}

// TestPaperFigure2 models the loop of Figure 2: with x < 0 established
// at BB1's branch and x unmodified around the loop, the back edge must
// be taken and the next iteration must branch the same way; a tampered
// x is caught.
func TestPaperFigure2(t *testing.T) {
	src := `
	int x;
	void work() { print_int(1); }
	int main() {
		int rounds;
		x = read_int();
		rounds = 0;
		while (x < 10) {          // BB1's branch: x < 10
			if (x < 0) {          // BB2/BB4 split on x
				work();
			}
			rounds = rounds + 1;
			if (rounds > 6) { return rounds; }
		}
		return 0;
	}`
	p, _, img := buildImage(t, src)

	// Clean negative input: loops forever until the round guard; no
	// alarm even though both x branches repeat many times.
	v := vm.New(p, vm.DefaultConfig, []string{"-3"})
	m := ipds.New(img, ipds.DefaultConfig)
	ipds.Attach(v, m)
	res := v.Run()
	if res.Status != vm.Exited || res.ExitCode != 7 {
		t.Fatalf("clean run: %+v", res)
	}
	if len(m.Alarms()) != 0 {
		t.Fatalf("false positive: %v", m.Alarms())
	}

	// Tamper x from -3 to 50 mid-loop: "variable x must be corrupted
	// when it is loaded back from the memory".
	var xID ir.ObjID = ir.ObjNone
	for _, o := range p.Objects {
		if o.Name == "x" {
			xID = o.ID
		}
	}
	v2 := vm.New(p, vm.DefaultConfig, []string{"-3"})
	m2 := ipds.New(img, ipds.DefaultConfig)
	ipds.Attach(v2, m2)
	poked := false
	v2.AddHooks(vm.Hooks{OnStep: func(step uint64) {
		if !poked && step == 40 {
			addr, _ := v2.AddrOfObj(xID)
			_ = v2.Poke(addr, 50, 8)
			poked = true
		}
	}})
	v2.Run()
	if len(m2.Alarms()) == 0 {
		t.Fatal("Figure 2 tampering not detected")
	}
}

// fig3Src is the Figure 3.a control-flow skeleton: branches on y (<5),
// x (>10, taken arm redefines x), y again (<10, not-taken arm redefines
// y), in a loop.
const fig3Src = `
int x; int y;
int main() {
	int n;
	n = read_int();
	while (n > 0) {
		if (y < 5) {
			if (x > 10) {
				x = read_int();
			}
		}
		if (y < 10) {
			print_int(1);
		} else {
			y = read_int();
		}
		n = n - 1;
	}
	return 0;
}`

// TestPaperFigure3Subsumption asserts the three correlations the paper
// reads off Figure 3.a: y<5 subsumes y<10; x>10's not-taken leaves x's
// branch repeatable while its taken arm makes it unknown.
func TestPaperFigure3Subsumption(t *testing.T) {
	p, res, _ := buildImage(t, fig3Src)
	f := p.ByName["main"]
	ft := res.Tables[f]
	brs := f.Branches() // n>0, y<5, x>10, y<10
	brY5, brX, brY10 := brs[1], brs[2], brs[3]

	check := func(src *ir.Instr, dir int, tgt *ir.Instr, want core.Action, context string) {
		t.Helper()
		var acts []core.Action
		for _, u := range ft.Actions[core.Event{src, dirOf(dir)}] {
			if u.Target == tgt {
				acts = append(acts, u.Act)
			}
		}
		if len(acts) != 1 || acts[0] != want {
			t.Errorf("%s: actions = %v, want [%v]", context, acts, want)
		}
	}
	check(brY5, 0, brY10, core.SetTaken, "y<5 taken forces y<10 taken")
	check(brY5, 0, brY5, core.SetTaken, "y<5 taken repeats")
	check(brX, 1, brX, core.SetNotTaken, "x>10 not-taken repeats (x unmodified)")
	check(brX, 0, brX, core.SetUnknown, "x>10 taken redefines x -> unknown")
	check(brY10, 1, brY10, core.SetUnknown, "y<10 not-taken redefines y -> unknown")
	check(brY10, 1, brY5, core.SetUnknown, "y redefinition also kills y<5")
}

// TestPaperFigure4Narrative replays the BSV walkthrough of Figure 4 on
// the live runtime: after BR1 (y<5) is taken, BR1 and BR5 (y<10) are
// expected taken; after BR2 (x>10) is taken its own status becomes
// unknown because x is redefined.
func TestPaperFigure4Narrative(t *testing.T) {
	p, _, img := buildImage(t, fig3Src)
	f := p.ByName["main"]
	brs := f.Branches()
	brY5, brX, brY10 := brs[1], brs[2], brs[3]

	// Input: n=2 iterations; y starts 0 (y<5 taken), x starts 0 (x>10
	// not taken).
	v := vm.New(p, vm.DefaultConfig, []string{"2"})
	m := ipds.New(img, ipds.DefaultConfig)
	ipds.Attach(v, m)

	type snapshot struct {
		after *ir.Instr
		y5    tables.Status
		y10   tables.Status
		x     tables.Status
	}
	var snaps []snapshot
	v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
		snaps = append(snaps, snapshot{
			after: br,
			y5:    m.Status(brY5.PC),
			y10:   m.Status(brY10.PC),
			x:     m.Status(brX.PC),
		})
	}})
	res := v.Run()
	if res.Status != vm.Exited {
		t.Fatalf("run: %+v", res)
	}
	if len(m.Alarms()) != 0 {
		t.Fatalf("false positive: %v", m.Alarms())
	}

	// Find the snapshot right after the first execution of BR1 (y<5).
	idx := -1
	for i, s := range snaps {
		if s.after == brY5 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("y<5 never executed")
	}
	s := snaps[idx]
	if s.y5 != tables.Taken {
		t.Errorf("after BR1 taken: BSV[BR1] = %v, want T", s.y5)
	}
	if s.y10 != tables.Taken {
		t.Errorf("after BR1 taken: BSV[BR5] = %v, want T (subsumption)", s.y10)
	}

	// After BR2 (x>10, not taken since x=0): its own status is NT —
	// the paper's scenario 2 (unmodified variable repeats).
	for _, s := range snaps {
		if s.after == brX {
			if s.x != tables.NotTaken {
				t.Errorf("after BR2 NT: BSV[BR2] = %v, want NT", s.x)
			}
			break
		}
	}
}

// TestPaperFigure3cArithmetic replays Figure 3.c: y<5 established, the
// reloaded y decremented by one, and the branch (y-1)<10 must be taken;
// tampering y in between is detected.
func TestPaperFigure3cArithmetic(t *testing.T) {
	src := `
	int y;
	int main() {
		int r1;
		y = read_int();
		if (y < 5) {
			r1 = y - 1;
			if (r1 < 10) {
				return 1;
			}
			return 2;
		}
		return 0;
	}`
	p, res, img := buildImage(t, src)
	f := p.ByName["main"]
	ft := res.Tables[f]
	brs := f.Branches()
	// Static: y<5 taken forces (y-1)<10 taken.
	found := false
	for _, u := range ft.Actions[core.Event{brs[0], 0}] {
		if u.Target == brs[1] && u.Act == core.SetTaken {
			found = true
		}
	}
	if !found {
		t.Fatal("Figure 3.c correlation missing")
	}

	// Dynamic: tamper y between the two branches; r1 = y-1 reloads y.
	var yID ir.ObjID
	for _, o := range p.Objects {
		if o.Name == "y" {
			yID = o.ID
		}
	}
	v := vm.New(p, vm.DefaultConfig, []string{"3"})
	m := ipds.New(img, ipds.DefaultConfig)
	ipds.Attach(v, m)
	v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
		if br == brs[0] {
			addr, _ := v.AddrOfObj(yID)
			_ = v.Poke(addr, 1000, 8)
		}
	}})
	resRun := v.Run()
	if resRun.ExitCode != 2 {
		t.Fatalf("tamper did not change flow: exit %d", resRun.ExitCode)
	}
	if len(m.Alarms()) == 0 {
		t.Fatal("Figure 3.c tampering not detected")
	}
}

func dirOf(d int) cfg.Direction {
	if d == 0 {
		return cfg.Taken
	}
	return cfg.NotTaken
}

// TestStructFieldCorrelations: split struct fields behave like scalar
// variables — correlated, checked, and tamper-detectable — while
// address-escaped structs degrade conservatively.
func TestStructFieldCorrelations(t *testing.T) {
	p, res, img := buildImage(t, `
	struct Session { int authed; int isadmin; char user[8]; };
	int main() {
		struct Session s;
		s.authed = read_int();
		if (s.authed == 1) {
			print_str("in");
		}
		print_int(0);
		if (s.authed == 1) {
			return 1;
		}
		return 0;
	}`)
	f := p.ByName["main"]
	ft := res.Tables[f]
	// The first branch tests the still-forwarded read_int result (a
	// store→load source); the second reloads the field and is checked.
	if ft.NumChecked() < 1 {
		t.Fatalf("struct field branches not checked: %d", ft.NumChecked())
	}
	hasStoreLoad := false
	for _, corr := range ft.Correlations {
		if corr.Kind == core.StoreLoad {
			hasStoreLoad = true
		}
	}
	if !hasStoreLoad {
		t.Fatal("expected a store→load correlation through the struct field")
	}
	// Clean runs: no alarms either way.
	for _, in := range []string{"1", "0"} {
		v := vm.New(p, vm.DefaultConfig, []string{in})
		m := ipds.New(img, ipds.DefaultConfig)
		ipds.Attach(v, m)
		v.Run()
		if len(m.Alarms()) != 0 {
			t.Fatalf("false positive on struct field: %v", m.Alarms())
		}
	}
	// Tamper the field between the checks: detected.
	var fieldObj ir.ObjID = ir.ObjNone
	for _, o := range p.Objects {
		if o.Name == "main.s.authed" {
			fieldObj = o.ID
		}
	}
	if fieldObj == ir.ObjNone {
		t.Fatal("split field object main.s.authed missing")
	}
	v := vm.New(p, vm.DefaultConfig, []string{"1"})
	m := ipds.New(img, ipds.DefaultConfig)
	ipds.Attach(v, m)
	poked := false
	v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
		if !poked {
			addr, ok := v.AddrOfObj(fieldObj)
			if ok {
				_ = v.Poke(addr, 0, 8)
				poked = true
			}
		}
	}})
	out := v.Run()
	if out.ExitCode != 0 {
		t.Fatalf("tamper did not change flow: %d", out.ExitCode)
	}
	if len(m.Alarms()) == 0 {
		t.Fatal("struct-field tampering not detected")
	}
}
