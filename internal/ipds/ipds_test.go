package ipds

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/tables"
	"repro/internal/vm"
)

// world bundles a compiled program with its table image.
type world struct {
	prog *ir.Program
	img  *tables.Image
}

func buildWorld(t testing.TB, src string) *world {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	res := core.Build(p, nil)
	img, err := tables.Encode(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return &world{prog: p, img: img}
}

// runGuarded executes the program under IPDS and returns the VM result
// and the machine.
func (w *world) runGuarded(t *testing.T, input []string, tamper func(v *vm.VM)) (vm.Result, *Machine) {
	t.Helper()
	v := vm.New(w.prog, vm.DefaultConfig, input)
	m := New(w.img, DefaultConfig)
	Attach(v, m)
	if tamper != nil {
		tamper(v)
	}
	return v.Run(), m
}

func objID(t *testing.T, p *ir.Program, name string) ir.ObjID {
	t.Helper()
	for _, o := range p.Objects {
		if o.Name == name || strings.HasSuffix(o.Name, "."+name) {
			return o.ID
		}
	}
	t.Fatalf("object %s not found", name)
	return ir.ObjNone
}

const guardedSrc = `
int secret;
void touch() { }
int main() {
	secret = read_int();
	if (secret == 1) {
		print_int(100);
	}
	touch();
	if (secret == 1) {
		return 42;
	}
	return 7;
}`

func TestCleanRunRaisesNoAlarm(t *testing.T) {
	w := buildWorld(t, guardedSrc)
	for _, input := range []string{"1", "0", "-5", "999"} {
		res, m := w.runGuarded(t, []string{input}, nil)
		if res.Status != vm.Exited {
			t.Fatalf("input %s: status %v (%v)", input, res.Status, res.Fault)
		}
		if len(m.Alarms()) != 0 {
			t.Errorf("input %s: false positive: %v", input, m.Alarms())
		}
	}
}

func TestTamperingDetected(t *testing.T) {
	w := buildWorld(t, guardedSrc)
	// Flip secret from 1 to 0 after the first branch consumed it.
	res, m := w.runGuarded(t, []string{"1"}, func(v *vm.VM) {
		id := objID(t, w.prog, "secret")
		poked := false
		v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
			if !poked && taken {
				addr, ok := v.AddrOfObj(id)
				if !ok {
					t.Fatal("secret unresolved")
				}
				if err := v.Poke(addr, 0, 8); err != nil {
					t.Fatal(err)
				}
				poked = true
			}
		}})
	})
	if res.ExitCode != 7 {
		t.Fatalf("tampering did not change control flow (exit %d)", res.ExitCode)
	}
	if len(m.Alarms()) == 0 {
		t.Fatal("tampered control-flow change not detected")
	}
	a := m.Alarms()[0]
	if a.Func != "main" || a.Expected != tables.Taken || a.Taken {
		t.Errorf("alarm = %+v", a)
	}
}

func TestTamperBothDirections(t *testing.T) {
	w := buildWorld(t, guardedSrc)
	// Start with secret==0 (branch not taken), then force it to 1.
	res, m := w.runGuarded(t, []string{"0"}, func(v *vm.VM) {
		id := objID(t, w.prog, "secret")
		poked := false
		v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
			if !poked {
				addr, _ := v.AddrOfObj(id)
				if err := v.Poke(addr, 1, 8); err != nil {
					t.Fatal(err)
				}
				poked = true
			}
		}})
	})
	if res.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42 (control flow changed)", res.ExitCode)
	}
	if len(m.Alarms()) == 0 {
		t.Fatal("NT->T flip not detected")
	}
}

func TestLegitRedefinitionNoFalsePositive(t *testing.T) {
	// The program itself changes the variable between the branches: the
	// BAT kill must prevent an alarm.
	w := buildWorld(t, `
		int mode;
		int main() {
			mode = read_int();
			if (mode == 1) {
				mode = 2;
			}
			if (mode == 1) {
				return 1;
			}
			return 0;
		}`)
	for _, in := range []string{"1", "2"} {
		res, m := w.runGuarded(t, []string{in}, nil)
		if res.Status != vm.Exited {
			t.Fatalf("status %v", res.Status)
		}
		if len(m.Alarms()) != 0 {
			t.Errorf("input %s: false positive %v", in, m.Alarms())
		}
	}
}

func TestLoopSelfCorrelationDetectsTamper(t *testing.T) {
	w := buildWorld(t, `
		int limit;
		void spin() { }
		int main() {
			int i;
			limit = 10;
			i = 0;
			while (i < 3) {
				if (limit > 5) {
					spin();
				}
				i = i + 1;
			}
			return 0;
		}`)
	// Clean loop: no alarms.
	if _, m := w.runGuarded(t, nil, nil); len(m.Alarms()) != 0 {
		t.Fatalf("false positive: %v", m.Alarms())
	}
	// Tamper limit right after its branch first resolves: the repeated
	// branch flips in the next iteration.
	_, m := w.runGuarded(t, nil, func(v *vm.VM) {
		id := objID(t, w.prog, "limit")
		poked := false
		v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
			if !poked && br.Cond == ir.CondGt {
				addr, _ := v.AddrOfObj(id)
				_ = v.Poke(addr, 0, 8)
				poked = true
			}
		}})
	})
	if len(m.Alarms()) == 0 {
		t.Fatal("loop-carried tamper not detected")
	}
}

func TestCalleeTablesPushedAndPopped(t *testing.T) {
	w := buildWorld(t, `
		int g;
		int check() {
			if (g < 5) { return 1; }
			return 0;
		}
		int main() {
			int i; int s;
			g = 3;
			s = 0;
			for (i = 0; i < 4; i++) {
				s = s + check();
			}
			return s;
		}`)
	res, m := w.runGuarded(t, nil, nil)
	if res.ExitCode != 4 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	if len(m.Alarms()) != 0 {
		t.Fatalf("false positive: %v", m.Alarms())
	}
	st := m.Stats()
	if st.Pushes != 5 { // main + 4 check calls
		t.Errorf("pushes = %d, want 5", st.Pushes)
	}
	if st.Pops != 5 {
		t.Errorf("pops = %d, want 5", st.Pops)
	}
	if m.Depth() != 0 {
		t.Errorf("depth = %d after exit", m.Depth())
	}
}

func TestCrossCallDetection(t *testing.T) {
	// Tampering inside a callee (modelled via hook) must be caught by
	// the caller's tables after return... the callee's own self
	// correlation also fires across its repeated calls? No: each call
	// pushes fresh UNKNOWN status. The detection comes from main's
	// correlation pair around the call.
	w := buildWorld(t, `
		int g;
		void work() { print_int(1); }
		int main() {
			g = read_int();
			if (g < 5) {
				work();
			}
			if (g < 9) {
				return 1;
			}
			return 0;
		}`)
	res, m := w.runGuarded(t, []string{"3"}, func(v *vm.VM) {
		id := objID(t, w.prog, "g")
		v.AddHooks(vm.Hooks{OnCall: func(fn *ir.Func) {
			if fn.Name == "work" {
				addr, _ := v.AddrOfObj(id)
				_ = v.Poke(addr, 100, 8)
			}
		}})
	})
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d, want 0 (flow changed)", res.ExitCode)
	}
	if len(m.Alarms()) == 0 {
		t.Fatal("cross-call tamper not detected")
	}
}

func TestSpillAndFill(t *testing.T) {
	w := buildWorld(t, `
		int g;
		int deep(int n) {
			if (g == 7) {
				print_int(n);
			}
			if (n <= 0) { return 0; }
			return deep(n - 1) + 1;
		}
		int main() {
			g = 7;
			return deep(100);
		}`)
	v := vm.New(w.prog, vm.DefaultConfig, nil)
	// Tiny on-chip buffers force spills on the deep call chain.
	m := New(w.img, Config{BSVStackBits: 64, BCVStackBits: 32, BATStackBits: 512})
	Attach(v, m)
	res := v.Run()
	if res.Status != vm.Exited || res.ExitCode != 100 {
		t.Fatalf("res = %+v", res)
	}
	st := m.Stats()
	if st.SpillEvents == 0 || st.FillEvents == 0 {
		t.Errorf("expected spill/fill traffic, got %+v", st)
	}
	if len(m.Alarms()) != 0 {
		t.Errorf("false positive under spilling: %v", m.Alarms())
	}
}

func TestStatsAndStatus(t *testing.T) {
	w := buildWorld(t, guardedSrc)
	v := vm.New(w.prog, vm.DefaultConfig, []string{"1"})
	m := New(w.img, DefaultConfig)
	Attach(v, m)
	v.Run()
	st := m.Stats()
	if st.Branches == 0 || st.Updates == 0 || st.Verified == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Alarms != 0 {
		t.Errorf("clean run alarms = %d", st.Alarms)
	}
	// After Reset everything zeroes.
	m.Reset()
	if m.Stats().Branches != 0 || m.Depth() != 0 || len(m.Alarms()) != 0 {
		t.Error("reset incomplete")
	}
}

func TestMachineIgnoresUnknownFunctions(t *testing.T) {
	w := buildWorld(t, guardedSrc)
	m := New(w.img, DefaultConfig)
	m.EnterFunc(0xdeadbeef) // library code without tables
	if a, cost := m.OnBranch(0xdeadbf00, true); a != nil || cost != 1 {
		t.Errorf("unknown function branch: alarm=%v cost=%d", a, cost)
	}
	m.LeaveFunc()
	m.LeaveFunc() // extra pop is a no-op
	if m.Depth() != 0 {
		t.Errorf("depth = %d", m.Depth())
	}
}

func TestOnBranchWithEmptyStack(t *testing.T) {
	w := buildWorld(t, guardedSrc)
	m := New(w.img, DefaultConfig)
	if a, _ := m.OnBranch(0x1004, true); a != nil {
		t.Error("no frame, no alarm")
	}
}

func TestAlarmString(t *testing.T) {
	a := Alarm{Seq: 3, PC: 0x1010, Func: "main", Expected: tables.Taken, Taken: false}
	s := a.String()
	for _, want := range []string{"main", "0x1010", "expected T"} {
		if !strings.Contains(s, want) {
			t.Errorf("alarm string %q missing %q", s, want)
		}
	}
}

func TestStatusQuery(t *testing.T) {
	w := buildWorld(t, guardedSrc)
	v := vm.New(w.prog, vm.DefaultConfig, []string{"1"})
	m := New(w.img, DefaultConfig)
	Attach(v, m)
	if m.Status(0x1004) != tables.Unknown {
		t.Error("empty machine status must be unknown")
	}
	v.Run()
}

func TestStatusReflectsUpdates(t *testing.T) {
	w := buildWorld(t, `
		int g;
		int main() {
			g = read_int();
			if (g == 5) { print_int(1); }
			print_int(2);
			if (g == 5) { return 1; }
			return 0;
		}`)
	v := vm.New(w.prog, vm.DefaultConfig, []string{"5"})
	m := New(w.img, DefaultConfig)
	Attach(v, m)
	brs := w.prog.ByName["main"].Branches()
	statuses := []tables.Status{}
	v.AddHooks(vm.Hooks{OnBranch: func(br *ir.Instr, taken bool) {
		statuses = append(statuses, m.Status(brs[len(brs)-1].PC))
	}})
	v.Run()
	if len(statuses) < 2 {
		t.Fatal("branches missing")
	}
	// After the first g==5 branch (taken), the second must be expected
	// taken.
	if statuses[0] != tables.Taken {
		t.Errorf("expected T after first check, got %v", statuses[0])
	}
}
