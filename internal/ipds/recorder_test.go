package ipds

import (
	"reflect"
	"testing"

	"repro/internal/wire"
)

// recorderConfig returns DefaultConfig with forensics enabled at the
// given ring depth and the alarm-storm throttle off, so every alarm
// captures a context (the per-alarm contract the unit tests pin).
func recorderConfig(depth int) Config {
	cfg := DefaultConfig
	cfg.Recorder = depth
	cfg.CtxGap = -1
	return cfg
}

// tamperEvery flips every n-th branch direction of a copied trace.
func tamperEvery(evs []wire.Event, n int) []wire.Event {
	out := make([]wire.Event, len(evs))
	copy(out, evs)
	b := 0
	for i := range out {
		if out[i].Kind != wire.EvBranch {
			continue
		}
		b++
		if b%n == 0 {
			out[i].Taken = !out[i].Taken
		}
	}
	return out
}

func TestRecorderRingWraps(t *testing.T) {
	r := newRecorder(4)
	for i := 1; i <= 10; i++ {
		r.push(RecEvent{
			Seq:   uint64(i),
			PC:    0x4000_0000 + uint64(i),
			Kind:  EvBranch,
			Taken: i%2 == 0,
			Depth: int32(i),
			Bits:  int32(100 * i),
		})
	}
	if r.total != 10 {
		t.Fatalf("total = %d, want 10", r.total)
	}
	got := r.snapshotInto(nil)
	want := make([]RecEvent, 0, 4)
	for i := 7; i <= 10; i++ {
		want = append(want, RecEvent{
			Seq:   uint64(i),
			PC:    0x4000_0000 + uint64(i),
			Kind:  EvBranch,
			Taken: i%2 == 0,
			Depth: int32(i),
			Bits:  int32(100 * i),
		})
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("window = %+v, want %+v", got, want)
	}
	// snapshotInto must reuse the destination's capacity.
	buf := got[:0]
	again := r.snapshotInto(buf)
	if &again[0] != &got[0] {
		t.Fatal("snapshotInto reallocated despite sufficient capacity")
	}
	r.reset()
	if r.live() != 0 || r.total != 0 {
		t.Fatalf("reset left live=%d total=%d", r.live(), r.total)
	}
}

// TestRecorderDisabledByDefault: DefaultConfig machines carry no ring
// and capture no contexts — forensics are strictly opt-in.
func TestRecorderDisabledByDefault(t *testing.T) {
	w, evs := benchTrace(t)
	m := New(w.img, DefaultConfig)
	m.OnBatch(tamperEvery(evs, 7))
	if m.Stats().Alarms == 0 {
		t.Fatal("tampered trace raised no alarms")
	}
	if m.RecorderDepth() != 0 || m.RecorderTotal() != 0 {
		t.Fatalf("disabled recorder reports depth=%d total=%d", m.RecorderDepth(), m.RecorderTotal())
	}
	if m.LastContext() != nil || m.Contexts() != nil {
		t.Fatal("disabled recorder captured contexts")
	}
}

// TestAlarmContextCapture is the unit-level forensic contract: the
// context of an alarm names the violating function and branch, ends its
// recent-event window with the violating branch, carries the live
// activation stack and the alarming frame's BSV.
func TestAlarmContextCapture(t *testing.T) {
	w, evs := benchTrace(t)
	bent := tamperEvery(evs, 50)
	m := New(w.img, recorderConfig(32))
	alarms := append([]Alarm(nil), m.OnBatch(bent)...)
	if len(alarms) == 0 {
		t.Fatal("tampered trace raised no alarms")
	}
	if m.RecorderDepth() != 32 {
		t.Fatalf("RecorderDepth = %d, want 32", m.RecorderDepth())
	}
	if m.RecorderTotal() != uint64(len(bent)) {
		t.Fatalf("RecorderTotal = %d, want %d (every committed event recorded)", m.RecorderTotal(), len(bent))
	}

	ctxs := m.Contexts()
	if len(ctxs) == 0 {
		t.Fatal("no contexts captured")
	}
	// The retained contexts are the most recent alarms, in order.
	tail := alarms
	if len(tail) > len(ctxs) {
		tail = tail[len(tail)-len(ctxs):]
	}
	for i, ctx := range ctxs {
		a := tail[i]
		if ctx.Alarm != a {
			t.Fatalf("context %d pairs alarm %+v, want %+v", i, ctx.Alarm, a)
		}
		if len(ctx.Recent) == 0 {
			t.Fatalf("context %d has an empty window", i)
		}
		last := ctx.Recent[len(ctx.Recent)-1]
		if last.Kind != EvBranch || last.PC != a.PC || last.Seq != a.Seq || last.Taken != a.Taken {
			t.Fatalf("context %d window does not end with the violating branch: %+v vs alarm %+v", i, last, a)
		}
		if len(ctx.Stack) == 0 {
			t.Fatalf("context %d has an empty stack summary", i)
		}
		top := ctx.Stack[len(ctx.Stack)-1]
		if top.Func != a.Func {
			t.Fatalf("context %d stack top %q, alarm in %q", i, top.Func, a.Func)
		}
		if fi := w.img.FuncAt(top.Base); fi == nil || fi.Name != a.Func {
			t.Fatalf("context %d stack top base %#x does not resolve to %q", i, top.Base, a.Func)
		}
		if want := w.img.FuncAt(top.Base).NumSlots; len(ctx.BSV) != want {
			t.Fatalf("context %d BSV has %d slots, function has %d", i, len(ctx.BSV), want)
		}
	}

	// ContextFor finds by alarm sequence number; LastContext is the
	// newest capture.
	lastAlarm := alarms[len(alarms)-1]
	if c := m.ContextFor(lastAlarm.Seq); c == nil || c.Alarm != lastAlarm {
		t.Fatalf("ContextFor(%d) = %+v", lastAlarm.Seq, c)
	}
	if c := m.LastContext(); c == nil || c.Alarm != lastAlarm {
		t.Fatalf("LastContext() pairs %+v, want alarm %+v", c, lastAlarm)
	}
	if c := m.ContextFor(lastAlarm.Seq + 999); c != nil {
		t.Fatalf("ContextFor on an unknown seq returned %+v", c)
	}

	// A full window holds exactly the ring depth.
	if lc := m.LastContext(); m.RecorderTotal() > 32 && len(lc.Recent) != 32 {
		t.Fatalf("full window holds %d events, want 32", len(lc.Recent))
	}

	// Reset clears forensic state but keeps the preallocated rings.
	m.Reset()
	if m.LastContext() != nil || m.RecorderTotal() != 0 || m.RecorderLive() != 0 {
		t.Fatal("Reset left forensic state behind")
	}
	if m.RecorderDepth() != 32 {
		t.Fatalf("Reset dropped the ring (depth %d)", m.RecorderDepth())
	}
}

// TestAlarmContextRingBounds: more alarms than AlarmCtxBuffer retains
// only the newest contexts.
func TestAlarmContextRingBounds(t *testing.T) {
	w, evs := benchTrace(t)
	bent := tamperEvery(evs, 7)
	cfg := recorderConfig(16)
	cfg.AlarmCtxBuffer = 3
	m := New(w.img, cfg)
	alarms := append([]Alarm(nil), m.OnBatch(bent)...)
	if len(alarms) <= 3 {
		t.Fatalf("need more than 3 alarms to exercise the ring, got %d", len(alarms))
	}
	ctxs := m.Contexts()
	if len(ctxs) != 3 {
		t.Fatalf("retained %d contexts, want 3", len(ctxs))
	}
	for i, ctx := range ctxs {
		if want := alarms[len(alarms)-3+i]; ctx.Alarm != want {
			t.Fatalf("context %d is for %+v, want %+v", i, ctx.Alarm, want)
		}
	}
	// Overwritten contexts are no longer findable.
	if c := m.ContextFor(alarms[0].Seq); c != nil {
		t.Fatalf("evicted context still findable: %+v", c)
	}
}

// TestRecorderDoesNotChangeVerdicts: forensics are observation only —
// alarms, stats and final machine state are identical with the recorder
// on and off, clean and tampered.
func TestRecorderDoesNotChangeVerdicts(t *testing.T) {
	w, evs := benchTrace(t)
	for name, trace := range map[string][]wire.Event{"clean": evs, "tampered": tamperEvery(evs, 11)} {
		ref := New(w.img, DefaultConfig)
		refAlarms := append([]Alarm(nil), ref.OnBatch(trace)...)
		rec := New(w.img, recorderConfig(64))
		recAlarms := append([]Alarm(nil), rec.OnBatch(trace)...)
		if !reflect.DeepEqual(refAlarms, recAlarms) {
			t.Errorf("%s: alarms diverge with recorder on", name)
		}
		if ref.Stats() != rec.Stats() {
			t.Errorf("%s: stats diverge:\n off %+v\n on  %+v", name, ref.Stats(), rec.Stats())
		}
		if ref.Depth() != rec.Depth() {
			t.Errorf("%s: depth %d != %d", name, rec.Depth(), ref.Depth())
		}
	}
}

// TestCopyIntoReusesCapacity: the daemon's per-session snapshot path
// relies on CopyInto being allocation-free once warmed.
func TestCopyIntoReusesCapacity(t *testing.T) {
	w, evs := benchTrace(t)
	m := New(w.img, recorderConfig(32))
	m.OnBatch(tamperEvery(evs, 7))
	src := m.LastContext()
	if src == nil {
		t.Fatal("no context captured")
	}
	var dst AlarmContext
	src.CopyInto(&dst)
	if !reflect.DeepEqual(*src, dst) {
		t.Fatal("CopyInto did not produce an equal context")
	}
	if n := testing.AllocsPerRun(20, func() { src.CopyInto(&dst) }); n != 0 {
		t.Fatalf("warmed CopyInto allocates %v per run, want 0", n)
	}
}

// sinkRecorder collects the sink stream with alarms flattened to values
// so streams from different machines compare by value.
type sinkEvent struct {
	Kind  EventKind
	Seq   uint64
	Depth int
	Bits  int
	Base  uint64
	Alarm Alarm
}

func collectSink(m *Machine) *[]sinkEvent {
	var out []sinkEvent
	m.SetEventSink(FuncSink(func(e Event) {
		se := sinkEvent{Kind: e.Kind, Seq: e.Seq, Depth: e.Depth, Bits: e.Bits, Base: e.Base}
		if e.Alarm != nil {
			se.Alarm = *e.Alarm
		}
		out = append(out, se)
	}))
	return &out
}

// TestEventSinkBatchedEquivalence pins the documented EventSink
// contract: the per-event path and the batched path publish the same
// event stream — same kinds, order, Seq and Depth — and raise the same
// alarms and Stats, with or without the flight recorder attached.
func TestEventSinkBatchedEquivalence(t *testing.T) {
	w, evs := benchTrace(t)
	bent := tamperEvery(evs, 9)
	for _, cfg := range []Config{DefaultConfig, recorderConfig(64)} {
		perEvent := New(w.img, cfg)
		perStream := collectSink(perEvent)
		replayPerEvent(perEvent, bent)

		batched := New(w.img, cfg)
		batStream := collectSink(batched)
		batched.OnBatch(bent)

		if !reflect.DeepEqual(*perStream, *batStream) {
			t.Fatalf("recorder=%d: sink streams diverge (%d vs %d events)",
				cfg.Recorder, len(*perStream), len(*batStream))
		}
		if perEvent.Stats() != batched.Stats() {
			t.Fatalf("recorder=%d: stats diverge", cfg.Recorder)
		}
		if !reflect.DeepEqual(perEvent.Alarms(), batched.Alarms()) {
			t.Fatalf("recorder=%d: retained alarms diverge", cfg.Recorder)
		}
		if cfg.Recorder > 0 && !reflect.DeepEqual(perEvent.Contexts(), batched.Contexts()) {
			t.Fatalf("recorder=%d: captured contexts diverge", cfg.Recorder)
		}
	}
}

// TestAlarmContextStackCap: a machine whose activation stack has grown
// far past MaxContextStack (as looped replays of a trace that never
// returns from its entry function do) still captures contexts, keeps
// only the innermost MaxContextStack frames, and the kept frames end
// with the violating function.
func TestAlarmContextStackCap(t *testing.T) {
	w, evs := benchTrace(t)
	m := New(w.img, recorderConfig(16))
	for i := 0; i < MaxContextStack+50; i++ {
		m.EnterFunc(0xdead_0000 + uint64(i)) // inert library activations
	}
	m.OnBatch(tamperEvery(evs, 50))
	ctx := m.LastContext()
	if ctx == nil {
		t.Fatal("no context captured")
	}
	if len(ctx.Stack) != MaxContextStack {
		t.Fatalf("stack summary has %d frames, want the cap %d", len(ctx.Stack), MaxContextStack)
	}
	if top := ctx.Stack[len(ctx.Stack)-1]; top.Func != ctx.Alarm.Func {
		t.Fatalf("capped stack top = %q, want violating function %q", top.Func, ctx.Alarm.Func)
	}
}

// TestAlarmContextThrottle: with the default CtxGap an alarm storm is
// counted in full but snapshotted sparsely — captures happen at most
// once per gap of branch sequence, and a sparse alarm (first of a
// storm, or any alarm after a quiet stretch) always captures.
func TestAlarmContextThrottle(t *testing.T) {
	w, evs := benchTrace(t)
	cfg := DefaultConfig
	cfg.Recorder = 16 // CtxGap 0 -> DefaultCtxGap
	m := New(w.img, cfg)
	bent := tamperEvery(evs, 3) // dense flood
	alarms := append([]Alarm(nil), m.OnBatch(bent)...)
	if len(alarms) < 4 {
		t.Fatalf("flood raised only %d alarms", len(alarms))
	}
	ctxs := m.Contexts()
	if len(ctxs) == 0 {
		t.Fatal("throttle suppressed every capture (first alarm must capture)")
	}
	if ctxs[0].Alarm != alarms[0] {
		t.Fatalf("first capture = %+v, want the storm's first alarm %+v", ctxs[0].Alarm, alarms[0])
	}
	// Every captured pair is at least a gap apart; alarms were denser.
	for i := 1; i < len(ctxs); i++ {
		if d := ctxs[i].Alarm.Seq - ctxs[i-1].Alarm.Seq; d < DefaultCtxGap {
			t.Fatalf("captures %d and %d only %d apart (gap %d)", i-1, i, d, DefaultCtxGap)
		}
	}
	if len(ctxs) >= len(alarms) {
		t.Fatalf("throttle captured %d contexts for %d alarms", len(ctxs), len(alarms))
	}

	// CtxGap < 0 turns the throttle off: one context per alarm.
	off := New(w.img, recorderConfig(16))
	offAlarms := append([]Alarm(nil), off.OnBatch(bent)...)
	want := len(offAlarms)
	if want > len(off.Contexts()) && len(off.Contexts()) == cap(off.ctxBuf) {
		want = cap(off.ctxBuf)
	}
	if got := len(off.Contexts()); got != want && got != DefaultAlarmCtxBuffer {
		t.Fatalf("throttle-off captured %d contexts for %d alarms", got, len(offAlarms))
	}
}
