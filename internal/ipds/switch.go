package ipds

import "repro/internal/tables"

// Context-switch support (§5.4): the BSV/BCV/BAT stacks and the
// detection state are per-process and must be saved and restored when
// the OS switches protected processes. The paper's optimisation:
// swap only the tops of the stacks (around 1K bits) on the critical
// path and context-switch the lower layers lazily, in parallel with
// the new process's execution; processes that are not protected need
// no save/restore at all.

// ProcessState is a suspended process's IPDS state, including the
// binding to its program's table image (different protected processes
// run different programs).
type ProcessState struct {
	img      *tables.Image
	stack    []activation
	resident int
	bsvBits  int
	bcvBits  int
	batBits  int
	alarms   *alarmRing
	stats    Stats
	seq      uint64
}

// CriticalBits returns the state that must move synchronously during
// the switch: the top-of-stack table frame (the paper's "around 1K
// bits").
func (ps *ProcessState) CriticalBits() int {
	if len(ps.stack) == 0 {
		return 0
	}
	b1, b2, b3 := ps.stack[len(ps.stack)-1].bits()
	return b1 + b2 + b3
}

// LazyBits returns the state restorable in parallel with execution:
// every non-top resident frame.
func (ps *ProcessState) LazyBits() int {
	total := 0
	for i := ps.resident; i < len(ps.stack)-1 && i >= 0; i++ {
		b1, b2, b3 := ps.stack[i].bits()
		total += b1 + b2 + b3
	}
	return total
}

// Depth returns the suspended table-stack depth.
func (ps *ProcessState) Depth() int { return len(ps.stack) }

// Stats returns the suspended process's activity counters.
func (ps *ProcessState) Stats() Stats { return ps.stats }

// Alarms returns the alarms the suspended process accumulated.
func (ps *ProcessState) Alarms() []Alarm { return ps.alarms.all() }

// Suspend captures the machine's per-process state and resets the
// machine for the next process. The returned state resumes exactly
// where it left off.
//
// The suspended state takes the activation arena with it (stack
// truncation must not share backing storage across processes), so the
// machine warms a fresh arena for the next process.
func (m *Machine) Suspend() *ProcessState {
	ps := &ProcessState{
		img:      m.img,
		stack:    m.stack,
		resident: m.resident,
		bsvBits:  m.bsvBits,
		bcvBits:  m.bcvBits,
		batBits:  m.batBits,
		alarms:   m.alarms,
		stats:    m.stats,
		seq:      m.seq,
	}
	m.stack = nil
	m.resident = 0
	m.bsvBits, m.bcvBits, m.batBits = 0, 0, 0
	m.alarms = newAlarmRing(m.cfg.AlarmBuffer)
	m.stats = Stats{}
	m.seq = 0
	m.syncGauges()
	return ps
}

// Resume installs a previously suspended process state.
func (m *Machine) Resume(ps *ProcessState) {
	m.img = ps.img
	m.stack = ps.stack
	m.resident = ps.resident
	m.bsvBits = ps.bsvBits
	m.bcvBits = ps.bcvBits
	m.batBits = ps.batBits
	m.alarms = ps.alarms
	m.stats = ps.stats
	m.seq = ps.seq
	m.syncGauges()
}
