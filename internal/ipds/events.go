package ipds

// Event stream: instead of consumers polling the machine's alarm slice,
// the machine publishes runtime occurrences (alarms, table-frame
// spill/fill traffic, function enter/leave) to an optional EventSink.
// Alarm storage itself is a bounded ring buffer so long-running
// simulations cannot grow without bound; overflow is counted, never
// silent.

// EventKind discriminates machine events.
type EventKind uint8

// Machine event kinds.
const (
	// EvAlarm: an infeasible path was detected; Event.Alarm is set.
	EvAlarm EventKind = iota
	// EvSpill: a table frame moved off-chip; Event.Bits is the traffic.
	EvSpill
	// EvFill: a spilled frame moved back on-chip; Event.Bits is set.
	EvFill
	// EvEnter: a function's table frame was pushed; Event.Base is set.
	EvEnter
	// EvLeave: the top table frame was popped.
	EvLeave
	// EvBranch: a committed conditional branch. Branch events appear
	// only in flight-recorder windows (RecEvent) — the EventSink stream
	// never carries them, on either the per-event or the batched path:
	// at millions of branches per second a per-branch sink call would
	// be the hot path, which is exactly what the recorder's value ring
	// exists to avoid.
	EvBranch
)

// String names the event kind as emitted on the event stream
// ("alarm", "spill", "fill", "enter", "leave", "branch").
func (k EventKind) String() string {
	switch k {
	case EvAlarm:
		return "alarm"
	case EvSpill:
		return "spill"
	case EvFill:
		return "fill"
	case EvEnter:
		return "enter"
	case EvLeave:
		return "leave"
	case EvBranch:
		return "branch"
	}
	return "?"
}

// Event is one runtime occurrence published to the EventSink.
type Event struct {
	Kind  EventKind
	Seq   uint64 // branch-event sequence number at emission
	Depth int    // table-stack depth after the event
	Bits  int    // bits moved (spill/fill)
	Base  uint64 // function base address (enter)
	Alarm *Alarm // set for EvAlarm
}

// EventSink receives machine events synchronously. Implementations must
// be fast; they run inside the simulated hardware path.
//
// Semantics are identical on the per-event path (EnterFunc/LeaveFunc/
// OnBranch) and the batched path (OnBatch): both route through the same
// internal helpers, so a sink observes the same enter/leave/spill/fill/
// alarm stream — in the same order, with the same Seq and Depth values —
// whichever way the events were driven (TestEventSinkBatchedEquivalence
// pins this). Committed branches are never published (see EvBranch).
//
// Note the allocation trade: an attached sink boxes each alarm for its
// EvAlarm event, so the zero-allocation guarantee of the warm OnBatch
// path holds only sinkless. The flight recorder (Config.Recorder) is
// the allocation-free way to retain per-event history on the serve
// path; a sink is the right tool for simulators and experiments that
// want a synchronous callback.
type EventSink interface {
	Emit(Event)
}

// FuncSink adapts a function to EventSink.
type FuncSink func(Event)

// Emit calls the function.
func (f FuncSink) Emit(e Event) { f(e) }

// SetEventSink subscribes a consumer to machine events (nil to
// unsubscribe). Alarms keep accumulating in the bounded ring regardless.
func (m *Machine) SetEventSink(s EventSink) { m.sink = s }

func (m *Machine) emit(e Event) {
	if m.sink != nil {
		m.sink.Emit(e)
	}
}

// DefaultAlarmBuffer is the alarm ring capacity when Config.AlarmBuffer
// is zero. Large enough that short campaigns never wrap; bounded so a
// pathological long-running simulation cannot grow without bound.
const DefaultAlarmBuffer = 1024

// alarmRing is a fixed-capacity FIFO of alarms. When full, pushing
// overwrites the oldest entry and counts the drop.
type alarmRing struct {
	buf     []Alarm
	start   int // index of the oldest entry
	n       int // live entries
	dropped uint64
}

func newAlarmRing(capacity int) *alarmRing {
	if capacity <= 0 {
		capacity = DefaultAlarmBuffer
	}
	return &alarmRing{buf: make([]Alarm, capacity)}
}

// push appends an alarm, overwriting the oldest when full.
func (r *alarmRing) push(a Alarm) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = a
		r.n++
		return
	}
	r.buf[r.start] = a
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// all returns the live alarms, oldest first.
func (r *alarmRing) all() []Alarm {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Alarm, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

func (r *alarmRing) reset() {
	r.start, r.n, r.dropped = 0, 0, 0
}
