package ipds

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/wire"
)

// benchSrc is a branch-heavy guarded program: a loop whose body mixes
// checked correlated branches (the `mode` pair), a BAT-killing
// redefinition, and cross-call traffic, so the captured trace exercises
// verify hits, BAT walks and enter/leave table-stack churn — the same
// mix the daemon sees, not a synthetic best case.
const benchSrc = `
int mode;
int acc;
void bump() {
	if (acc > 50) {
		acc = acc - 1;
	}
}
int main() {
	int i;
	mode = read_int();
	acc = 0;
	i = 0;
	while (i < 64) {
		if (mode == 1) {
			acc = acc + 3;
		}
		bump();
		if (mode == 1) {
			acc = acc + 1;
		}
		if (acc > 100) {
			mode = 2;
		}
		if (mode == 2) {
			acc = acc + 2;
		}
		i = i + 1;
	}
	print_int(acc);
	return 0;
}`

// benchTrace compiles benchSrc and captures its clean branch-event
// stream (the wire form a daemon would receive).
func benchTrace(tb testing.TB) (*world, []wire.Event) {
	tb.Helper()
	w := buildWorld(tb, benchSrc)
	var evs []wire.Event
	v := vm.New(w.prog, vm.DefaultConfig, []string{"1"})
	v.AddHooks(vm.Hooks{
		OnCall: func(fn *ir.Func) {
			evs = append(evs, wire.Event{Kind: wire.EvEnter, PC: fn.Base})
		},
		OnRet: func(fn *ir.Func) {
			evs = append(evs, wire.Event{Kind: wire.EvLeave})
		},
		OnBranch: func(br *ir.Instr, taken bool) {
			evs = append(evs, wire.Event{Kind: wire.EvBranch, PC: br.PC, Taken: taken})
		},
	})
	if res := v.Run(); res.Status != vm.Exited {
		tb.Fatalf("trace program did not exit cleanly: %v", res.Status)
	}
	if len(evs) < 256 {
		tb.Fatalf("trace too small to benchmark: %d events", len(evs))
	}
	return w, evs
}

// replayPerEvent drives evs through the per-event entry points,
// returning the alarm count and the summed per-branch cost (the
// paper's 1 + BAT-walk accesses per event).
func replayPerEvent(m *Machine, evs []wire.Event) (alarms, cost int) {
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case wire.EvBranch:
			a, c := m.OnBranch(ev.PC, ev.Taken)
			if a != nil {
				alarms++
			}
			cost += c
		case wire.EvEnter:
			m.EnterFunc(ev.PC)
		case wire.EvLeave:
			m.LeaveFunc()
		}
	}
	return alarms, cost
}

// BenchmarkOnBranch measures the per-event kernel: one OnBranch (or
// enter/leave) call per trace event on a warmed machine.
func BenchmarkOnBranch(b *testing.B) {
	w, evs := benchTrace(b)
	m := New(w.img, DefaultConfig)
	replayPerEvent(m, evs) // warm the activation arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayPerEvent(m, evs)
	}
	b.StopTimer()
	reportEventRate(b, len(evs))
}

// BenchmarkOnBatch measures the batched kernel over the same trace,
// split into daemon-sized batches.
func BenchmarkOnBatch(b *testing.B) {
	w, evs := benchTrace(b)
	const batch = 512
	m := New(w.img, DefaultConfig)
	m.OnBatch(evs) // warm arena + result buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rest := evs
		for len(rest) > 0 {
			n := batch
			if n > len(rest) {
				n = len(rest)
			}
			m.OnBatch(rest[:n])
			rest = rest[n:]
		}
	}
	b.StopTimer()
	reportEventRate(b, len(evs))
}

// BenchmarkOnBatchRecorder is BenchmarkOnBatch with the flight recorder
// enabled at its default depth — the daemon's forensic configuration.
// checkallocs.sh gates it to 0 allocs/op alongside the other kernels,
// and comparing its ns/event against BenchmarkOnBatch bounds the
// recorder tax.
func BenchmarkOnBatchRecorder(b *testing.B) {
	w, evs := benchTrace(b)
	const batch = 512
	cfg := DefaultConfig
	cfg.Recorder = DefaultRecorderDepth
	m := New(w.img, cfg)
	m.OnBatch(evs) // warm arena + result buffer + recorder ring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rest := evs
		for len(rest) > 0 {
			n := batch
			if n > len(rest) {
				n = len(rest)
			}
			m.OnBatch(rest[:n])
			rest = rest[n:]
		}
	}
	b.StopTimer()
	reportEventRate(b, len(evs))
}

func reportEventRate(b *testing.B, eventsPerIter int) {
	total := float64(eventsPerIter) * float64(b.N)
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(total/s, "events/s")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/event")
}

// TestOnBatchZeroAlloc is the hot-path allocation gate: after one
// warming batch (arena + result-buffer growth), feeding the machine
// further batches must perform zero heap allocations, alarms included.
func TestOnBatchZeroAlloc(t *testing.T) {
	w, evs := benchTrace(t)

	// Clean stream: verify-and-update only.
	m := New(w.img, DefaultConfig)
	m.OnBatch(evs)
	if allocs := testing.AllocsPerRun(10, func() { m.OnBatch(evs) }); allocs != 0 {
		t.Errorf("clean OnBatch allocates %.1f per batch, want 0", allocs)
	}

	// Tampered stream: every alarm path (ring push, result append) must
	// stay allocation-free too once the result buffer has grown.
	bent := make([]wire.Event, len(evs))
	copy(bent, evs)
	flipped := 0
	for i := range bent {
		if bent[i].Kind == wire.EvBranch && i%7 == 0 {
			bent[i].Taken = !bent[i].Taken
			flipped++
		}
	}
	if flipped == 0 {
		t.Fatal("trace has no branches to tamper")
	}
	mt := New(w.img, DefaultConfig)
	if alarms := mt.OnBatch(bent); len(alarms) == 0 {
		t.Fatal("tampered batch raised no alarms; gate would not cover the alarm path")
	}
	if allocs := testing.AllocsPerRun(10, func() { mt.OnBatch(bent) }); allocs != 0 {
		t.Errorf("alarming OnBatch allocates %.1f per batch, want 0", allocs)
	}

	// Flight recorder on, tampered stream, storm throttle off (the
	// harshest capture rate): every record() store and every per-alarm
	// captureContext (ring snapshot, stack summary, BSV copy) must
	// reuse its preallocated slot slices once warmed.
	rcfg := DefaultConfig
	rcfg.Recorder = DefaultRecorderDepth
	rcfg.CtxGap = -1
	mr := New(w.img, rcfg)
	if alarms := mr.OnBatch(bent); len(alarms) == 0 {
		t.Fatal("tampered batch raised no alarms on the recorder machine")
	}
	if mr.LastContext() == nil {
		t.Fatal("recorder machine captured no context; gate would not cover capture")
	}
	if allocs := testing.AllocsPerRun(10, func() { mr.OnBatch(bent) }); allocs != 0 {
		t.Errorf("recorder-enabled OnBatch allocates %.1f per batch, want 0", allocs)
	}
}

// TestOnBatchMatchesPerEvent holds the batched kernel to the per-event
// one: same alarms (sequence, site, verdict), same stats, same final
// stack state, clean and tampered.
func TestOnBatchMatchesPerEvent(t *testing.T) {
	w, evs := benchTrace(t)
	bent := make([]wire.Event, len(evs))
	copy(bent, evs)
	for i := range bent {
		if bent[i].Kind == wire.EvBranch && i%11 == 0 {
			bent[i].Taken = !bent[i].Taken
		}
	}
	for name, trace := range map[string][]wire.Event{"clean": evs, "tampered": bent} {
		ref := New(w.img, DefaultConfig)
		_, refCost := replayPerEvent(ref, trace)
		got := New(w.img, DefaultConfig)
		got.OnBatch(trace)
		// The per-event kernel returns cost = 1 + BAT accesses per
		// branch; the batched kernel must account the identical total
		// through its flushed counters (bit-for-bit, not approximately).
		if batchCost := got.Stats().Branches + got.Stats().BATAccesses; uint64(refCost) != batchCost {
			t.Errorf("%s: batched cost %d != per-event cost sum %d", name, batchCost, refCost)
		}
		if ref.Stats() != got.Stats() {
			t.Errorf("%s: stats diverge:\n per-event %+v\n batched   %+v", name, ref.Stats(), got.Stats())
		}
		ra, ga := ref.Alarms(), got.Alarms()
		if len(ra) != len(ga) {
			t.Fatalf("%s: alarm count %d (batched) != %d (per-event)", name, len(ga), len(ra))
		}
		for i := range ra {
			if ra[i] != ga[i] {
				t.Errorf("%s: alarm %d diverges: %+v vs %+v", name, i, ga[i], ra[i])
			}
		}
		if ref.Depth() != got.Depth() {
			t.Errorf("%s: depth %d != %d", name, got.Depth(), ref.Depth())
		}
	}
}
