package ipds

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/tables"
	"repro/internal/vm"
)

// guardSrc is a tiny program with a checked store->load correlation:
// the store to flag on the taken side of the first branch forces the
// second branch taken.
const guardSrc = `
int flag;
int main() {
    int x;
    x = read_int();
    flag = 0;
    if (x > 0) { flag = 1; }
    if (flag > 0) { print_int(1); } else { print_int(0); }
    return 0;
}
`

// --- Alarm ring buffer ------------------------------------------------

func TestAlarmRingBounded(t *testing.T) {
	r := newAlarmRing(4)
	for i := 0; i < 10; i++ {
		r.push(Alarm{Seq: uint64(i)})
	}
	got := r.all()
	if len(got) != 4 {
		t.Fatalf("ring holds %d alarms, want 4", len(got))
	}
	for i, a := range got {
		if a.Seq != uint64(6+i) {
			t.Fatalf("ring[%d].Seq = %d, want %d (oldest-first after eviction)", i, a.Seq, 6+i)
		}
	}
	if r.dropped != 6 {
		t.Fatalf("dropped = %d, want 6", r.dropped)
	}
	r.reset()
	if len(r.all()) != 0 || r.dropped != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

func TestMachineAlarmOverflowCounted(t *testing.T) {
	w := buildWorld(t, guardSrc)
	cfg := DefaultConfig
	cfg.AlarmBuffer = 2
	reg := obs.NewRegistry()

	v := vm.New(w.prog, vm.DefaultConfig, []string{"5"})
	m := New(w.img, cfg)
	m.Instrument(reg)
	Attach(v, m)
	// Force repeated mismatches by corrupting the BSV expectation after
	// every branch: raise alarms straight from the machine instead.
	v.Run()
	main := w.img.FuncByName("main")
	if main == nil {
		t.Fatal("no main image")
	}
	// Raise 5 synthetic alarms through the bounded ring.
	for i := 0; i < 5; i++ {
		m.pushAlarm(Alarm{Seq: uint64(100 + i), Func: "main"})
	}
	if got := len(m.Alarms()); got != 2 {
		t.Fatalf("retained %d alarms, want 2 (bounded)", got)
	}
	if m.Stats().AlarmsDropped != 3 {
		t.Fatalf("AlarmsDropped = %d, want 3", m.Stats().AlarmsDropped)
	}
	if got := reg.Counter("ipds_alarms_dropped_total").Value(); got != 3 {
		t.Fatalf("ipds_alarms_dropped_total = %d, want 3", got)
	}
	if got := reg.Counter("ipds_alarms_total").Value(); got != 5 {
		t.Fatalf("ipds_alarms_total = %d, want 5", got)
	}
}

// --- Event stream -----------------------------------------------------

func TestEventSinkReceivesLifecycle(t *testing.T) {
	w := buildWorld(t, guardSrc)
	v := vm.New(w.prog, vm.DefaultConfig, []string{"5"})
	m := New(w.img, DefaultConfig)
	counts := map[EventKind]int{}
	m.SetEventSink(FuncSink(func(e Event) { counts[e.Kind]++ }))
	Attach(v, m)
	if res := v.Run(); res.Status != vm.Exited {
		t.Fatalf("run: %+v", res)
	}
	if counts[EvEnter] == 0 || counts[EvLeave] == 0 {
		t.Fatalf("missing enter/leave events: %v", counts)
	}
	if counts[EvAlarm] != 0 {
		t.Fatalf("clean run published alarms: %v", counts)
	}

	// A tampered expectation must publish exactly the raised alarms.
	var alarms []Alarm
	m.SetEventSink(FuncSink(func(e Event) {
		if e.Kind == EvAlarm {
			alarms = append(alarms, *e.Alarm)
		}
	}))
	m.pushAlarm(Alarm{Seq: 42, Func: "main"})
	if len(alarms) != 1 || alarms[0].Seq != 42 {
		t.Fatalf("alarm event not delivered: %v", alarms)
	}
}

func TestEventSinkSpillFill(t *testing.T) {
	img, bases := syntheticImage(64, 4096)
	cfg := Config{BSVStackBits: 3 * 64, BCVStackBits: 1 << 20, BATStackBits: 1 << 30}
	m := New(img, cfg)
	var spills, fills, spillBits, fillBits int
	m.SetEventSink(FuncSink(func(e Event) {
		switch e.Kind {
		case EvSpill:
			spills++
			spillBits += e.Bits
		case EvFill:
			fills++
			fillBits += e.Bits
		}
	}))
	for _, b := range bases[:8] {
		m.EnterFunc(b)
	}
	for i := 0; i < 8; i++ {
		m.LeaveFunc()
	}
	if spills == 0 || fills == 0 {
		t.Fatalf("no spill/fill traffic observed (spills=%d fills=%d)", spills, fills)
	}
	if spillBits != fillBits {
		t.Fatalf("event bits disagree: spilled %d, filled %d", spillBits, fillBits)
	}
	st := m.Stats()
	if uint64(spills) != st.SpillEvents || uint64(fills) != st.FillEvents {
		t.Fatalf("event counts (%d,%d) != stats (%d,%d)", spills, fills, st.SpillEvents, st.FillEvents)
	}
}

// --- Strict slot validation -------------------------------------------

func TestStrictModeRejectsNonBranchPC(t *testing.T) {
	w := buildWorld(t, guardSrc)
	main := w.img.FuncByName("main")
	if main == nil {
		t.Fatal("no main image")
	}
	if len(main.BranchPCs) == 0 {
		t.Fatal("image has no branch PC metadata")
	}
	// A PC inside main that is not one of its branches.
	bogus := main.Base + 4
	for isBranchPC(main, bogus) {
		bogus += 4
	}

	cfg := DefaultConfig
	cfg.Strict = true
	reg := obs.NewRegistry()
	m := New(w.img, cfg)
	m.Instrument(reg)
	m.EnterFunc(main.Base)

	if a, cost := m.OnBranch(bogus, true); a != nil || cost != 1 {
		t.Fatalf("strict machine processed a non-branch PC (alarm=%v cost=%d)", a, cost)
	}
	st := m.Stats()
	if st.StrictRejects != 1 {
		t.Fatalf("StrictRejects = %d, want 1", st.StrictRejects)
	}
	if st.Verified != 0 || st.BATAccesses != 0 || st.Updates != 0 {
		t.Fatalf("rejected PC still touched tables: %+v", st)
	}
	if got := reg.Counter("ipds_strict_rejects_total").Value(); got != 1 {
		t.Fatalf("ipds_strict_rejects_total = %d, want 1", got)
	}

	// Real branch PCs still verify normally.
	if _, cost := m.OnBranch(main.BranchPCs[0], true); cost < 1 {
		t.Fatalf("strict machine refused a real branch")
	}
	if m.Stats().StrictRejects != 1 {
		t.Fatalf("real branch counted as reject")
	}

	// The default (lax) machine aliases the same PC onto some slot,
	// exactly the hazard strict mode closes.
	lax := New(w.img, DefaultConfig)
	lax.EnterFunc(main.Base)
	lax.OnBranch(bogus, true)
	if lax.Stats().StrictRejects != 0 {
		t.Fatal("lax machine rejected")
	}
}

func isBranchPC(fi *tables.FuncImage, pc uint64) bool {
	for _, p := range fi.BranchPCs {
		if p == pc {
			return true
		}
	}
	return false
}

// --- Invariants -------------------------------------------------------

// syntheticImage builds an image of n same-shaped functions whose table
// frames are big enough to force spill traffic against small buffers.
func syntheticImage(n, frameBits int) (*tables.Image, []uint64) {
	im := &tables.Image{}
	var bases []uint64
	for i := 0; i < n; i++ {
		base := uint64(0x1000 * (i + 1))
		fi := &tables.FuncImage{
			Name:     "f",
			Base:     base,
			NumSlots: 32,
			BCV:      make([]uint64, 1),
			BATHeads: make([][2]int32, 32),
			BSVBits:  frameBits / 2,
			BCVBits:  frameBits / 4,
			BATBits:  frameBits,
		}
		for j := range fi.BATHeads {
			fi.BATHeads[j] = [2]int32{-1, -1}
		}
		im.Funcs = append(im.Funcs, fi)
		bases = append(bases, base)
	}
	im.Index()
	return im, bases
}

func TestCheckInvariantsHoldsThroughRandomWalk(t *testing.T) {
	img, bases := syntheticImage(64, 1024)
	// Buffers sized from Table 1's ratios, small enough to spill under
	// deep recursion over these synthetic frames.
	cfg := Config{BSVStackBits: 2 * 1024, BCVStackBits: 1 * 1024, BATStackBits: 4 * 1024}
	rng := rand.New(rand.NewSource(7))
	m := New(img, cfg)
	depth := 0
	for step := 0; step < 20000; step++ {
		if depth == 0 || rng.Intn(3) != 0 {
			m.EnterFunc(bases[rng.Intn(len(bases))])
			depth++
		} else {
			m.LeaveFunc()
			depth--
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("step %d (depth %d): %v", step, depth, err)
		}
		if m.Resident() > m.Depth() {
			t.Fatalf("resident %d > depth %d", m.Resident(), m.Depth())
		}
	}
}

// TestLeaveFuncSpilledTopRecovery drives the LeaveFunc branch that
// handles popping a frame at or below the resident floor ("cannot
// happen with the fill-on-pop policy"): the machine must clamp the
// floor and keep every invariant intact rather than corrupting the bit
// accounting.
func TestLeaveFuncSpilledTopRecovery(t *testing.T) {
	img, bases := syntheticImage(8, 256)
	m := New(img, Config{BSVStackBits: 1 << 20, BCVStackBits: 1 << 20, BATStackBits: 1 << 20})
	for _, b := range bases[:4] {
		m.EnterFunc(b)
	}
	// Force the impossible state: pretend every frame including the top
	// was spilled.
	m.resident = len(m.stack)
	m.bsvBits, m.bcvBits, m.batBits = 0, 0, 0
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("setup state should satisfy invariants: %v", err)
	}

	m.LeaveFunc() // pops a spilled frame -> recovery branch

	if m.resident != len(m.stack) {
		t.Fatalf("resident = %d, want clamped to %d", m.resident, len(m.stack))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("recovery left broken bookkeeping: %v", err)
	}
	// Subsequent operation stays sane.
	m.EnterFunc(bases[0])
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Spill/fill accounting property (Table 1 buffer sizes) ------------

func TestSpillFillBalancedAfterUnwind(t *testing.T) {
	img, bases := syntheticImage(128, 4096)
	cfg := DefaultConfig // the Table 1 2K/1K/32K-bit buffers
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		m := New(img, cfg)
		depth := 0
		minResident := 0
		// Deep recursion with random partial unwinds.
		for step := 0; step < 2000; step++ {
			if depth == 0 || rng.Intn(5) < 3 {
				m.EnterFunc(bases[rng.Intn(len(bases))])
				depth++
			} else {
				m.LeaveFunc()
				depth--
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			// Resident-floor monotonicity: it may only move down via
			// fill-on-pop, never below zero, never above the depth.
			if r := m.Resident(); r < 0 || r > depth {
				t.Fatalf("trial %d: resident %d out of [0,%d]", trial, r, depth)
			}
			if m.Resident() < minResident {
				minResident = m.Resident()
			}
		}
		// Full unwind: every spilled bit must have been filled back.
		for depth > 0 {
			m.LeaveFunc()
			depth--
		}
		st := m.Stats()
		if st.SpillBits != st.FillBits {
			t.Fatalf("trial %d: SpillBits %d != FillBits %d after unwind",
				trial, st.SpillBits, st.FillBits)
		}
		if st.SpillEvents != st.FillEvents {
			t.Fatalf("trial %d: SpillEvents %d != FillEvents %d after unwind",
				trial, st.SpillEvents, st.FillEvents)
		}
		if st.SpillEvents == 0 {
			t.Fatalf("trial %d: recursion never spilled; buffers too large for the test", trial)
		}
		if m.Resident() != 0 || m.Depth() != 0 {
			t.Fatalf("trial %d: unwind left depth=%d resident=%d", trial, m.Depth(), m.Resident())
		}
	}
}

// --- Instrumented run vs Stats ----------------------------------------

func TestInstrumentMatchesStats(t *testing.T) {
	w := buildWorld(t, guardSrc)
	reg := obs.NewRegistry()
	v := vm.New(w.prog, vm.DefaultConfig, []string{"5"})
	m := New(w.img, DefaultConfig)
	m.Instrument(reg, "workload", "guard")
	Attach(v, m)
	if res := v.Run(); res.Status != vm.Exited {
		t.Fatalf("run: %+v", res)
	}
	st := m.Stats()
	n := func(base string) string { return obs.Name(base, "workload", "guard") }
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{n("ipds_branches_total"), reg.Counter(n("ipds_branches_total")).Value(), st.Branches},
		{n("ipds_verified_total"), reg.Counter(n("ipds_verified_total")).Value(), st.Verified},
		{n("ipds_updates_total"), reg.Counter(n("ipds_updates_total")).Value(), st.Updates},
		{n("ipds_bat_accesses_total"), reg.Counter(n("ipds_bat_accesses_total")).Value(), st.BATAccesses},
		{n("ipds_pushes_total"), reg.Counter(n("ipds_pushes_total")).Value(), st.Pushes},
		{n("ipds_pops_total"), reg.Counter(n("ipds_pops_total")).Value(), st.Pops},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, stats say %d", c.name, c.got, c.want)
		}
	}
	if st.Branches == 0 {
		t.Fatal("run processed no branches")
	}
	if h := reg.Histogram(n("ipds_bat_walk_len")); h.Count() != st.Branches-st.StrictRejects {
		// every non-rejected in-frame branch observes one walk length
		t.Logf("walk histogram count %d vs branches %d (unprotected frames skip)", h.Count(), st.Branches)
	}
}

// TestInstrumentedRunIsRaceFreeUnderScrape runs a guarded execution
// while another goroutine scrapes the registry, mirroring a live
// /metrics endpoint during a workload (go test -race is the assertion).
func TestInstrumentedRunIsRaceFreeUnderScrape(t *testing.T) {
	w := buildWorld(t, guardSrc)
	reg := obs.NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				reg.WritePrometheus(io.Discard)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		v := vm.New(w.prog, vm.DefaultConfig, []string{"5"})
		m := New(w.img, DefaultConfig)
		m.Instrument(reg, "workload", "guard")
		Attach(v, m)
		if res := v.Run(); res.Status != vm.Exited {
			t.Fatalf("run: %+v", res)
		}
	}
	close(done)
	wg.Wait()
	if reg.Counter(obs.Name("ipds_branches_total", "workload", "guard")).Value() == 0 {
		t.Fatal("no branches recorded")
	}
}
