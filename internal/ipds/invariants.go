package ipds

import "fmt"

// CheckInvariants verifies the table-stack bookkeeping the spill/fill
// machinery must preserve:
//
//  1. 0 <= resident <= stack depth (the resident floor never points
//     below the stack bottom or above its top);
//  2. bsvBits/bcvBits/batBits equal the bit sums over the resident
//     frames [resident, depth);
//  3. an over-budget buffer is only permitted when nothing more can
//     spill — the single top frame alone exceeds the buffer (spillToFit
//     never evicts the top frame).
//
// It is assertable from tests after every machine operation and cheap
// enough to run inside property loops. The same quantities are exported
// as gauges by Instrument (ipds_stack_depth, ipds_resident_floor,
// ipds_onchip_*_bits), so a production scrape can watch the invariant
// inputs live.
func (m *Machine) CheckInvariants() error {
	depth := len(m.stack)
	if m.resident < 0 || m.resident > depth {
		return fmt.Errorf("ipds: resident %d out of range [0,%d]", m.resident, depth)
	}
	var b1, b2, b3 int
	for _, act := range m.stack[m.resident:] {
		x1, x2, x3 := act.bits()
		b1 += x1
		b2 += x2
		b3 += x3
	}
	if b1 != m.bsvBits || b2 != m.bcvBits || b3 != m.batBits {
		return fmt.Errorf("ipds: on-chip bits (%d,%d,%d) != resident frame sums (%d,%d,%d)",
			m.bsvBits, m.bcvBits, m.batBits, b1, b2, b3)
	}
	over := m.bsvBits > m.cfg.BSVStackBits ||
		m.bcvBits > m.cfg.BCVStackBits ||
		m.batBits > m.cfg.BATStackBits
	if over && m.resident < depth-1 {
		return fmt.Errorf("ipds: buffers over budget (%d/%d, %d/%d, %d/%d bits) with %d spillable frames",
			m.bsvBits, m.cfg.BSVStackBits, m.bcvBits, m.cfg.BCVStackBits,
			m.batBits, m.cfg.BATStackBits, depth-1-m.resident)
	}
	return nil
}

// Resident returns the lowest on-chip frame index (diagnostics; frames
// below it are spilled to their home locations).
func (m *Machine) Resident() int { return m.resident }
