package ipds

import (
	"testing"

	"repro/internal/tables"
	"repro/internal/wire"
)

// TestStatusStrictInvalidPC pins the Config.Strict contract on the
// Status accessor: a PC that is not a known branch of the active
// function must read as Unknown instead of aliasing through the masked
// hash onto another branch's slot — the same ValidPC gate the
// verification kernel applies. Without the gate, a strict machine's
// diagnostics could report a confident Taken/NotTaken for a PC the
// kernel itself would reject.
func TestStatusStrictInvalidPC(t *testing.T) {
	w, evs := benchTrace(t)

	strictCfg := DefaultConfig
	strictCfg.Strict = true
	strict := New(w.img, strictCfg)
	loose := New(w.img, DefaultConfig)

	// Replay a prefix so the top activation has verified state but the
	// program has not returned from main.
	prefix := evs[:len(evs)/2]
	replayPerEvent(strict, prefix)
	replayPerEvent(loose, prefix)
	if strict.Depth() == 0 {
		t.Fatal("prefix replay left an empty stack")
	}

	act := strict.stack[len(strict.stack)-1]
	fi := act.img
	if fi == nil {
		t.Fatal("top activation has no image")
	}

	// Find a PC the function does not know that aliases onto a slot
	// holding a real (non-Unknown) status, so the two accessors can
	// disagree observably.
	var bogus uint64
	found := false
	for off := uint64(0); off < uint64(fi.NumSlots)*64; off += 4 {
		pc := fi.Base + off
		if !fi.ValidPC(pc) && act.bsv[fi.Slot(pc)] != tables.Unknown {
			bogus, found = pc, true
			break
		}
	}
	if !found {
		t.Skip("no aliasing invalid PC over a non-Unknown slot in this image")
	}

	if got := strict.Status(bogus); got != tables.Unknown {
		t.Errorf("strict Status(%#x) = %v, want Unknown for an invalid PC", bogus, got)
	}
	// The non-strict machine keeps the paper's tagless-table behaviour:
	// the PC hashes onto a slot and that slot's status is returned.
	if got := loose.Status(bogus); got == tables.Unknown {
		t.Errorf("non-strict Status(%#x) = Unknown, want the aliased slot's status", bogus)
	}

	// Valid PCs still read through under strict.
	valid := fi.BranchPCs[0]
	if got, want := strict.Status(valid), act.bsv[fi.Slot(valid)]; got != want {
		t.Errorf("strict Status(%#x) = %v, want %v for a known branch PC", valid, got, want)
	}
}

// TestLeaveFuncSpilledTopFrame exercises the defensive branch in
// LeaveFunc for a popped frame that was itself spilled off-chip. The
// fill-on-pop policy keeps the top frame resident, so the state is
// reached here by hand: mark every frame spilled (resident == depth,
// on-chip counters zeroed, as spillToFit leaves them) and pop. The
// frame's bits must not be subtracted a second time and the resident
// watermark must follow the shrinking stack.
func TestLeaveFuncSpilledTopFrame(t *testing.T) {
	w, _ := benchTrace(t)
	m := New(w.img, DefaultConfig)
	mainFn := w.img.Funcs[0]
	m.EnterFunc(mainFn.Base)
	m.EnterFunc(mainFn.Base)

	// Simulate both frames spilled: first on-chip frame index == depth,
	// nothing counted on-chip (spillToFit subtracts each victim's bits
	// as it goes).
	m.resident = len(m.stack)
	m.bsvBits, m.bcvBits, m.batBits = 0, 0, 0
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("forced spill state is not self-consistent: %v", err)
	}

	popsBefore := m.Stats().Pops
	m.LeaveFunc()

	if got := m.Stats().Pops; got != popsBefore+1 {
		t.Errorf("Pops = %d, want %d", got, popsBefore+1)
	}
	if m.resident != len(m.stack) {
		t.Errorf("resident = %d after popping a spilled frame, want %d", m.resident, len(m.stack))
	}
	if m.bsvBits != 0 || m.bcvBits != 0 || m.batBits != 0 {
		t.Errorf("on-chip bits (%d,%d,%d) changed: spilled frame double-subtracted",
			m.bsvBits, m.bcvBits, m.batBits)
	}
	if got := m.Stats().FillEvents; got != 0 {
		t.Errorf("FillEvents = %d, want 0 (popped frame was off-chip)", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("invariants broken after spilled-frame pop: %v", err)
	}

	// Popping the remaining spilled frame walks the same branch down to
	// an empty stack.
	m.LeaveFunc()
	if m.Depth() != 0 || m.resident != 0 {
		t.Errorf("depth %d resident %d after final pop, want 0,0", m.Depth(), m.resident)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("invariants broken on empty stack: %v", err)
	}
}

// TestOnBatchSpillBoundaryMidBatch holds the batched kernel to the
// per-event one across the on-chip/off-chip boundary: a tiny BSV
// budget plus deep nesting forces spills on the enter ramp and fills
// on the leave ramp inside a single batch, with verified branch
// traffic in between. Alarms, Stats and depth must match the per-event
// replay exactly, clean and tampered.
func TestOnBatchSpillBoundaryMidBatch(t *testing.T) {
	w, branchy := benchTrace(t)
	mainFn := w.img.Funcs[0]

	// Budget roughly two frames' BSV bits so the nesting ramp below
	// crosses the boundary mid-batch.
	cfg := DefaultConfig
	cfg.BSVStackBits = 4 * mainFn.NumSlots // 2 bits/slot -> two frames
	const nest = 6

	var evs []wire.Event
	for k := 0; k < nest; k++ {
		evs = append(evs, wire.Event{Kind: wire.EvEnter, PC: mainFn.Base})
	}
	evs = append(evs, branchy...)
	for k := 0; k < nest; k++ {
		evs = append(evs, wire.Event{Kind: wire.EvLeave})
	}

	bent := make([]wire.Event, len(evs))
	copy(bent, evs)
	for i := range bent {
		if bent[i].Kind == wire.EvBranch && i%13 == 0 {
			bent[i].Taken = !bent[i].Taken
		}
	}

	for name, trace := range map[string][]wire.Event{"clean": evs, "tampered": bent} {
		ref := New(w.img, cfg)
		replayPerEvent(ref, trace)
		got := New(w.img, cfg)
		got.OnBatch(trace)

		if ref.Stats().SpillEvents == 0 || ref.Stats().FillEvents == 0 {
			t.Fatalf("%s: trace did not cross the spill boundary (spills %d fills %d); test is vacuous",
				name, ref.Stats().SpillEvents, ref.Stats().FillEvents)
		}
		if ref.Stats() != got.Stats() {
			t.Errorf("%s: stats diverge across the spill boundary:\n per-event %+v\n batched   %+v",
				name, ref.Stats(), got.Stats())
		}
		ra, ga := ref.Alarms(), got.Alarms()
		if len(ra) != len(ga) {
			t.Fatalf("%s: alarm count %d (batched) != %d (per-event)", name, len(ga), len(ra))
		}
		for i := range ra {
			if ra[i] != ga[i] {
				t.Errorf("%s: alarm %d diverges: %+v vs %+v", name, i, ga[i], ra[i])
			}
		}
		if ref.Depth() != got.Depth() {
			t.Errorf("%s: depth %d != %d", name, got.Depth(), ref.Depth())
		}
		if err := got.CheckInvariants(); err != nil {
			t.Errorf("%s: batched machine invariants: %v", name, err)
		}
	}
}
