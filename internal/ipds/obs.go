package ipds

import "repro/internal/obs"

// machineMetrics holds the registry handles the machine feeds. A
// zero-value machineMetrics (all nil metrics) is the disabled state:
// every update degrades to a nil-receiver no-op, so the OnBranch hot
// path pays one predictable branch when telemetry is off and one atomic
// add per counter when it is on.
type machineMetrics struct {
	branches      *obs.Counter
	verified      *obs.Counter
	updates       *obs.Counter
	batAccesses   *obs.Counter
	alarms        *obs.Counter
	alarmsDropped *obs.Counter
	strictRejects *obs.Counter
	pushes        *obs.Counter
	pops          *obs.Counter
	spillEvents   *obs.Counter
	fillEvents    *obs.Counter
	spillBits     *obs.Counter
	fillBits      *obs.Counter

	batWalk *obs.Histogram // BAT list nodes walked per branch event

	depth     *obs.Gauge // table-stack depth
	resident  *obs.Gauge // lowest on-chip frame index
	onchipBSV *obs.Gauge // resident BSV bits
	onchipBCV *obs.Gauge
	onchipBAT *obs.Gauge
}

// Instrument attaches the machine to a metrics registry; every counter
// in Stats gets a live `ipds_*` series, BAT walk lengths feed a
// power-of-two histogram, and the table-stack bookkeeping (depth,
// resident floor, on-chip bits — the invariant inputs) is exported as
// gauges. labels are name/value pairs appended to every metric name
// (e.g. "workload", "httpd"). A nil registry detaches.
func (m *Machine) Instrument(r *obs.Registry, labels ...string) {
	if r == nil {
		m.met = &machineMetrics{}
		return
	}
	n := func(base string) string { return obs.Name(base, labels...) }
	m.met = &machineMetrics{
		branches:      r.Counter(n("ipds_branches_total")),
		verified:      r.Counter(n("ipds_verified_total")),
		updates:       r.Counter(n("ipds_updates_total")),
		batAccesses:   r.Counter(n("ipds_bat_accesses_total")),
		alarms:        r.Counter(n("ipds_alarms_total")),
		alarmsDropped: r.Counter(n("ipds_alarms_dropped_total")),
		strictRejects: r.Counter(n("ipds_strict_rejects_total")),
		pushes:        r.Counter(n("ipds_pushes_total")),
		pops:          r.Counter(n("ipds_pops_total")),
		spillEvents:   r.Counter(n("ipds_spill_events_total")),
		fillEvents:    r.Counter(n("ipds_fill_events_total")),
		spillBits:     r.Counter(n("ipds_spill_bits_total")),
		fillBits:      r.Counter(n("ipds_fill_bits_total")),
		batWalk:       r.Histogram(n("ipds_bat_walk_len")),
		depth:         r.Gauge(n("ipds_stack_depth")),
		resident:      r.Gauge(n("ipds_resident_floor")),
		onchipBSV:     r.Gauge(n("ipds_onchip_bsv_bits")),
		onchipBCV:     r.Gauge(n("ipds_onchip_bcv_bits")),
		onchipBAT:     r.Gauge(n("ipds_onchip_bat_bits")),
	}
	m.syncGauges()
}

// syncGauges publishes the table-stack bookkeeping. Called after every
// push/pop, outside the per-branch hot path.
func (m *Machine) syncGauges() {
	mm := m.met
	if mm == nil || mm.depth == nil {
		return
	}
	mm.depth.Set(int64(len(m.stack)))
	mm.resident.Set(int64(m.resident))
	mm.onchipBSV.Set(int64(m.bsvBits))
	mm.onchipBCV.Set(int64(m.bcvBits))
	mm.onchipBAT.Set(int64(m.batBits))
}
