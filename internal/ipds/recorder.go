package ipds

// Flight recorder: a fixed-size, value-typed ring of the last N
// committed events the machine processed — function entries and
// returns, every committed conditional branch with its direction, and
// table-frame spill/fill traffic. When verification raises an alarm the
// machine snapshots the ring (plus the activation stack and the
// alarming frame's branch-status vector) into an AlarmContext, turning
// the alarm from a bare (PC, direction) pair into a self-contained
// forensic record of how execution reached the infeasible path.
//
// Everything here is built for the zero-allocation serve path: the ring
// is preallocated when the machine is created, recording is a struct
// store into it, and context capture reuses the slices of a bounded
// context ring, so a warmed machine records and captures without
// touching the heap — TestOnBatchZeroAlloc gates exactly that with the
// recorder enabled.

import "repro/internal/tables"

// DefaultRecorderDepth is the flight-recorder ring capacity selected by
// Config.Recorder = 0 when a caller (the daemon) asks for forensics
// without sizing them. 64 events cover several protocol phases of the
// paper's workloads while keeping a context frame around 1KiB on the
// wire.
const DefaultRecorderDepth = 64

// DefaultAlarmCtxBuffer is the number of alarm contexts retained when
// Config.AlarmCtxBuffer is zero. Contexts are much heavier than alarms
// (each carries a ring snapshot), so the ring is intentionally shallow:
// forensics want the latest violations, the alarm ring keeps the count.
const DefaultAlarmCtxBuffer = 8

// DefaultCtxGap is the alarm-storm capture throttle selected by
// Config.CtxGap = 0: after a forensic capture, the branch sequence
// must advance 2048 events before the next alarm is snapshotted.
// Sparse alarms always capture; at flood rates (every branch
// alarming) the capture cost is bounded to one snapshot per gap
// instead of one per alarm, which is what keeps the recorder's serve
// path overhead a few percent even under wholesale tampering.
const DefaultCtxGap = 2048

// MaxContextStack bounds the activation-stack snapshot in an
// AlarmContext to the innermost frames. The cap keeps capture O(1) no
// matter how deep the activation stack grows (looped replays of a
// trace that never returns from its entry function grow it without
// bound), and it keeps every context within the wire protocol's
// per-frame stack limit. The innermost frames are the forensically
// interesting ones — they name the violating function and its callers;
// each window event still carries the full depth in RecEvent.Depth.
const MaxContextStack = 64

// RecEvent is one flight-recorder entry. PC carries the function base
// (EvEnter), the branch address (EvBranch) or is zero (EvLeave); Bits
// is the table traffic of a spill/fill. Depth is the table-stack depth
// after the event, Seq the branch-event sequence number at recording
// time.
type RecEvent struct {
	Seq   uint64
	PC    uint64
	Kind  EventKind
	Taken bool
	Depth int32
	Bits  int32
}

// StackEntry summarises one activation frame in an AlarmContext: the
// function's code base and its name ("" for unprotected library frames
// that pushed an inert activation).
type StackEntry struct {
	Base uint64
	Func string
}

// AlarmContext is the forensic record captured when an alarm fires:
// the alarm itself, the recorder's recent-event window (oldest first —
// the violating branch is always the last entry), the activation stack
// at the moment of violation (outermost kept frame first, truncated to
// the innermost MaxContextStack frames), and the alarming frame's
// branch-status vector as the BAT update actions had left it.
// Recorded is the recorder's lifetime event count, so a consumer can
// tell how much history scrolled out of the window.
type AlarmContext struct {
	Alarm    Alarm
	Recorded uint64
	Recent   []RecEvent
	Stack    []StackEntry
	BSV      []tables.Status
}

// CopyInto deep-copies the context into dst, reusing dst's slice
// capacity. Steady-state consumers (the daemon's per-session forensic
// snapshot) therefore copy contexts without allocating once warmed.
func (c *AlarmContext) CopyInto(dst *AlarmContext) {
	dst.Alarm = c.Alarm
	dst.Recorded = c.Recorded
	dst.Recent = append(dst.Recent[:0], c.Recent...)
	dst.Stack = append(dst.Stack[:0], c.Stack...)
	dst.BSV = append(dst.BSV[:0], c.BSV...)
}

// recSlot is the ring's internal event encoding: 24 bytes instead of
// RecEvent's 32, written with three stores instead of six. The small
// fields share one word — kind in bits 0..7, taken in bit 8, depth in
// bits 9..31 (truncated past 2^23 frames; forensics past eight million
// activations are not a regime the recorder serves), spill/fill bits in
// the high word. Slots are unpacked into RecEvent only at snapshot
// time, off the serve path.
type recSlot struct {
	seq, pc, meta uint64
}

const recDepthMask = 1<<23 - 1

func (s *recSlot) unpack() RecEvent {
	return RecEvent{
		Seq:   s.seq,
		PC:    s.pc,
		Kind:  EventKind(s.meta & 0xff),
		Taken: s.meta&(1<<8) != 0,
		Depth: int32(s.meta >> 9 & recDepthMask),
		Bits:  int32(uint32(s.meta >> 32)),
	}
}

// recorder is the fixed-capacity event ring. Unlike alarmRing it stores
// small value events and overwrites silently: losing old history is the
// point of a flight recorder, and total tracks how much was seen. The
// capacity is rounded up to a power of two so the per-event index math
// is a mask (total & (len-1)), not a division — record runs on every
// committed event of the serve path. The struct is embedded by value in
// Machine: the ring cursor lives on the machine's own cache lines, so
// recording never dirties a second heap object. A disabled recorder is
// the zero value (nil buf).
type recorder struct {
	buf   []recSlot
	total uint64
}

func newRecorder(capacity int) recorder {
	if capacity <= 0 {
		return recorder{}
	}
	pow := 1
	for pow < capacity {
		pow <<= 1
	}
	return recorder{buf: make([]recSlot, pow)}
}

// enabled reports whether the ring exists (Config.Recorder > 0).
func (r *recorder) enabled() bool { return len(r.buf) != 0 }

// push packs and stores one boxed event, overwriting the oldest when
// full — the seeding/test path. The serve path bypasses the box and
// writes slot words in place via Machine.record.
func (r *recorder) push(e RecEvent) {
	t := uint64(0)
	if e.Taken {
		t = 1
	}
	s := &r.buf[r.total&uint64(len(r.buf)-1)]
	r.total++
	s.seq = e.Seq
	s.pc = e.PC
	s.meta = uint64(e.Kind)&0xff | t<<8 |
		(uint64(uint32(e.Depth))&recDepthMask)<<9 | uint64(uint32(e.Bits))<<32
}

// live returns the number of events currently held in the window.
func (r *recorder) live() int {
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// snapshotInto appends the live window, oldest first, onto dst (which
// the caller has truncated); dst's capacity is reused.
func (r *recorder) snapshotInto(dst []RecEvent) []RecEvent {
	n := uint64(r.live())
	mask := uint64(len(r.buf) - 1)
	for i := r.total - n; i != r.total; i++ {
		dst = append(dst, r.buf[i&mask].unpack())
	}
	return dst
}

func (r *recorder) reset() {
	r.total = 0
}

// record stores one event in the flight recorder; a disabled recorder
// costs the length check. The slot is written in place and packed —
// three word stores per event, no temporary RecEvent — and the len-1
// index lets the compiler drop the bounds check.
func (m *Machine) record(kind EventKind, pc uint64, taken bool, bits int) {
	r := &m.rec
	if len(r.buf) == 0 {
		return
	}
	t := uint64(0)
	if taken {
		t = 1
	}
	s := &r.buf[r.total&uint64(len(r.buf)-1)]
	r.total++
	s.seq = m.seq
	s.pc = pc
	s.meta = uint64(kind)&0xff | t<<8 |
		(uint64(len(m.stack))&recDepthMask)<<9 | uint64(uint32(bits))<<32
}

// captureContext snapshots the flight recorder, activation stack
// (innermost MaxContextStack frames) and alarming frame's BSV into the
// next slot of the bounded context ring. Slot slices are reused
// (truncate + append), so capture allocates only while a slot grows
// past its high-water mark, and the stack cap keeps each capture O(1)
// even when a looped replay grows the live stack without bound.
func (m *Machine) captureContext(a Alarm) {
	m.ctxTotal++
	var dst *AlarmContext
	if m.ctxN < len(m.ctxBuf) {
		dst = &m.ctxBuf[(m.ctxStart+m.ctxN)%len(m.ctxBuf)]
		m.ctxN++
	} else {
		dst = &m.ctxBuf[m.ctxStart]
		m.ctxStart = (m.ctxStart + 1) % len(m.ctxBuf)
	}
	dst.Alarm = a
	dst.Recorded = m.rec.total
	dst.Recent = m.rec.snapshotInto(dst.Recent[:0])
	dst.Stack = dst.Stack[:0]
	lo := 0
	if len(m.stack) > MaxContextStack {
		lo = len(m.stack) - MaxContextStack
	}
	for i := lo; i < len(m.stack); i++ {
		act := &m.stack[i]
		e := StackEntry{Base: act.base}
		if act.img != nil {
			e.Func = act.img.Name
		}
		dst.Stack = append(dst.Stack, e)
	}
	dst.BSV = dst.BSV[:0]
	if top := &m.stack[len(m.stack)-1]; top.img != nil {
		dst.BSV = append(dst.BSV, top.bsv...)
	}
}

// RecorderDepth returns the flight-recorder ring capacity (0 when the
// recorder is disabled).
func (m *Machine) RecorderDepth() int {
	return len(m.rec.buf)
}

// RecorderLive returns the number of events currently held in the
// flight-recorder window.
func (m *Machine) RecorderLive() int {
	return m.rec.live()
}

// RecorderTotal returns the recorder's lifetime event count (how many
// events have passed through the window since the last Reset).
func (m *Machine) RecorderTotal() uint64 {
	return m.rec.total
}

// ContextFor returns the retained alarm context whose alarm carries the
// given sequence number, or nil. The pointer aims into the machine's
// context ring: it is valid until the ring slot is overwritten by a
// later alarm (the daemon consumes contexts immediately after each
// OnBatch, inside the machine's single-owner discipline).
func (m *Machine) ContextFor(seq uint64) *AlarmContext {
	for i := m.ctxN - 1; i >= 0; i-- {
		c := &m.ctxBuf[(m.ctxStart+i)%len(m.ctxBuf)]
		if c.Alarm.Seq == seq {
			return c
		}
	}
	return nil
}

// LastContext returns the most recently captured alarm context (nil
// when no alarm has fired or the recorder is disabled). Same ownership
// rule as ContextFor.
func (m *Machine) LastContext() *AlarmContext {
	if m.ctxN == 0 {
		return nil
	}
	return &m.ctxBuf[(m.ctxStart+m.ctxN-1)%len(m.ctxBuf)]
}

// CtxCaptured returns the lifetime count of forensic captures (alarms
// that passed the storm throttle and were snapshotted). A consumer
// that drains the context ring incrementally — the daemon does, once
// per batch — compares this against its own high-water mark to find
// how many ring entries are new, paying nothing when none are.
func (m *Machine) CtxCaptured() uint64 { return m.ctxTotal }

// ContextCount returns the number of contexts currently retained.
func (m *Machine) ContextCount() int { return m.ctxN }

// ContextAt returns the i-th retained context, oldest first (nil when
// out of range). Same ownership rule as ContextFor: the pointer aims
// into the ring and is valid until that slot is overwritten.
func (m *Machine) ContextAt(i int) *AlarmContext {
	if i < 0 || i >= m.ctxN {
		return nil
	}
	return &m.ctxBuf[(m.ctxStart+i)%len(m.ctxBuf)]
}

// Contexts returns deep copies of the retained alarm contexts, oldest
// first — the boxed, caller-owned view for CLIs and tests, off the hot
// path.
func (m *Machine) Contexts() []AlarmContext {
	if m.ctxN == 0 {
		return nil
	}
	out := make([]AlarmContext, m.ctxN)
	for i := 0; i < m.ctxN; i++ {
		m.ctxBuf[(m.ctxStart+i)%len(m.ctxBuf)].CopyInto(&out[i])
	}
	return out
}
