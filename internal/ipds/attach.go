package ipds

import (
	"repro/internal/ir"
	"repro/internal/vm"
)

// Attach wires a Machine to a VM execution: function entries and exits
// push and pop table frames, and every committed conditional branch is
// sent to the detector. This is the software model of the hardware path
// "each committed branch is sent to the IPDS" (§5.4).
func Attach(v *vm.VM, m *Machine) {
	v.AddHooks(vm.Hooks{
		OnCall: func(fn *ir.Func) { m.EnterFunc(fn.Base) },
		OnRet:  func(fn *ir.Func) { m.LeaveFunc() },
		OnBranch: func(br *ir.Instr, taken bool) {
			m.OnBranch(br.PC, taken)
		},
	})
}
