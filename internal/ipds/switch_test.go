package ipds

import (
	"testing"

	"repro/internal/vm"
)

// scheduler timeshares one hardware Machine between two guarded VMs,
// suspending/resuming per-process IPDS state every quantum — the §5.4
// context-switch model.
type process struct {
	v  *vm.VM
	ps *ProcessState
}

func TestContextSwitchTwoProcesses(t *testing.T) {
	wA := buildWorld(t, `
		int flag;
		int main() {
			int i;
			flag = 1;
			for (i = 0; i < 50; i++) {
				if (flag == 1) { print_int(i); }
			}
			return 1;
		}`)
	wB := buildWorld(t, `
		int mode;
		int main() {
			int i;
			mode = 3;
			for (i = 0; i < 70; i++) {
				if (mode > 2) { print_int(i); }
			}
			return 2;
		}`)

	// One hardware unit.
	hw := New(wA.img, DefaultConfig)

	vA := vm.New(wA.prog, vm.DefaultConfig, nil)
	Attach(vA, hw)
	vB := vm.New(wB.prog, vm.DefaultConfig, nil)
	Attach(vB, hw)

	// Process A starts on the hardware; B's state begins suspended and
	// empty (bound to B's image).
	if err := vA.Start(); err != nil {
		t.Fatal(err)
	}
	psA := hw.Suspend()
	hwB := New(wB.img, DefaultConfig)
	// Transplant B's empty state into the shared unit via a
	// suspend/resume round trip.
	psB := hwB.Suspend()
	hw.Resume(psB)
	if err := vB.Start(); err != nil {
		t.Fatal(err)
	}
	psB = hw.Suspend()

	procs := []*process{{v: vA, ps: psA}, {v: vB, ps: psB}}
	cur := -1
	const quantum = 37
	switches := 0
	for !vA.Done() || !vB.Done() {
		next := -1
		for i, p := range procs {
			if !p.v.Done() {
				next = i
				break
			}
		}
		if cur != next {
			if cur >= 0 {
				procs[cur].ps = hw.Suspend()
			}
			hw.Resume(procs[next].ps)
			switches++
			cur = next
		}
		for i := 0; i < quantum && !procs[cur].v.Done(); i++ {
			procs[cur].v.Step()
		}
		// Round-robin: force a switch if the other is alive.
		other := 1 - cur
		if !procs[other].v.Done() {
			procs[cur].ps = hw.Suspend()
			hw.Resume(procs[other].ps)
			switches++
			cur = other
		}
	}
	procs[cur].ps = hw.Suspend()

	if switches < 3 {
		t.Fatalf("only %d context switches; scheduler broken", switches)
	}
	resA, resB := vA.Result(), vB.Result()
	if resA.Status != vm.Exited || resA.ExitCode != 1 {
		t.Fatalf("A: %+v", resA)
	}
	if resB.Status != vm.Exited || resB.ExitCode != 2 {
		t.Fatalf("B: %+v", resB)
	}
	// Zero false positives across interleaving, and per-process stats
	// stayed separated.
	if len(procs[0].ps.Alarms()) != 0 || len(procs[1].ps.Alarms()) != 0 {
		t.Fatalf("false positives across context switches: %v %v",
			procs[0].ps.Alarms(), procs[1].ps.Alarms())
	}
	if procs[0].ps.stats.Branches == 0 || procs[1].ps.stats.Branches == 0 {
		t.Error("per-process branch counts lost across switches")
	}
	if procs[0].ps.stats.Branches == procs[1].ps.stats.Branches {
		t.Error("suspiciously identical branch counts; state may be shared")
	}
}

func TestContextSwitchDetectionSurvives(t *testing.T) {
	// Tampering process A's flag while B timeshares the hardware must
	// still be detected in A's state.
	w := buildWorld(t, `
		int flag;
		int main() {
			int i;
			flag = 1;
			for (i = 0; i < 40; i++) {
				if (flag == 1) { print_int(i); }
			}
			return 0;
		}`)
	hw := New(w.img, DefaultConfig)
	v := vm.New(w.prog, vm.DefaultConfig, nil)
	Attach(v, hw)
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}

	flagID := objID(t, w.prog, "flag")
	steps := 0
	for !v.Done() {
		v.Step()
		steps++
		if steps == 60 {
			// Mid-run context switch: out and back.
			ps := hw.Suspend()
			if ps.Depth() == 0 {
				t.Fatal("no table stack captured")
			}
			hw.Resume(ps)
			// Tamper right after resuming.
			addr, _ := v.AddrOfObj(flagID)
			_ = v.Poke(addr, 0, 8)
		}
	}
	if len(hw.Alarms()) == 0 {
		t.Fatal("tamper across a context switch went undetected")
	}
}

func TestProcessStateBits(t *testing.T) {
	w := buildWorld(t, guardedSrc)
	m := New(w.img, DefaultConfig)
	main := w.prog.ByName["main"]
	m.EnterFunc(main.Base)
	m.EnterFunc(w.prog.ByName["touch"].Base)
	ps := m.Suspend()
	if ps.Depth() != 2 {
		t.Fatalf("depth = %d", ps.Depth())
	}
	// touch has no branches; its frame is tiny but present. Critical
	// bits cover only the top frame; lazy bits the rest.
	if ps.CriticalBits() < 0 || ps.LazyBits() <= 0 {
		t.Errorf("bits: critical=%d lazy=%d", ps.CriticalBits(), ps.LazyBits())
	}
	m.Resume(ps)
	if m.Depth() != 2 {
		t.Errorf("resume lost stack depth")
	}
	// Machine is clean after Suspend: usable for another process.
	ps2 := m.Suspend()
	if ps2.Depth() != 2 {
		t.Errorf("second suspend depth = %d", ps2.Depth())
	}
	if m.Depth() != 0 || m.Stats().Branches != 0 {
		t.Errorf("machine not clean after suspend")
	}
}
