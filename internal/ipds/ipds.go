// Package ipds implements the runtime half of the Infeasible Path
// Detection System (§5.4 of the paper): the hardware unit that receives
// every committed conditional branch, verifies checked branches against
// the Branch Status Vector, and applies Branch Action Table updates.
//
// BSV/BCV/BAT table sets are pushed and popped as functions are entered
// and left, forming stacks whose tops live in bounded on-chip buffers;
// deeper frames spill to protected memory (modelled by spill/fill
// counters that the CPU timing model in internal/cpu charges cycles
// for).
//
// The Machine is purely functional with respect to time: it answers
// "is this path infeasible" and "how many table accesses did this event
// cost"; cycle accounting lives in internal/cpu.
package ipds

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tables"
	"repro/internal/wire"
)

// Config sizes the on-chip table buffers, in bits (Table 1 defaults).
type Config struct {
	BSVStackBits int
	BCVStackBits int
	BATStackBits int

	// AlarmBuffer bounds the alarm ring (0 = DefaultAlarmBuffer). When
	// full, the oldest alarm is overwritten and the drop is counted.
	AlarmBuffer int

	// Strict rejects branch PCs that are not known branches of the
	// active function instead of letting the masked hash alias them
	// onto another branch's slot. Rejects are counted, never alarmed.
	Strict bool

	// Recorder enables the flight recorder: a preallocated ring of the
	// last Recorder committed events (enter/leave/branch/spill/fill)
	// snapshotted into an AlarmContext whenever an alarm fires. The
	// ring capacity rounds up to a power of two (index math on the
	// per-event path is a mask). 0 disables forensics entirely (no
	// ring, no contexts).
	Recorder int

	// AlarmCtxBuffer bounds the retained alarm contexts (0 =
	// DefaultAlarmCtxBuffer). Only meaningful with Recorder > 0.
	AlarmCtxBuffer int

	// CtxGap throttles forensic capture under alarm storms: once a
	// context is captured, later alarms are still counted and
	// ring-buffered but not snapshotted until the branch-event
	// sequence has advanced by at least CtxGap. Sparse alarms — the
	// anomaly-detection regime the paper targets — are never
	// throttled; only floods degrade to sampled forensics, keeping
	// the capture cost bounded per event rather than per alarm. 0
	// selects DefaultCtxGap, negative disables the throttle (every
	// alarm captures). Only meaningful with Recorder > 0.
	CtxGap int
}

// DefaultConfig mirrors Table 1: 2K/1K/32K bits.
var DefaultConfig = Config{
	BSVStackBits: 2 * 1024,
	BCVStackBits: 1 * 1024,
	BATStackBits: 32 * 1024,
}

// Alarm reports one detected infeasible path.
type Alarm struct {
	Seq      uint64 // branch event sequence number
	PC       uint64
	Func     string
	Slot     int
	Expected tables.Status
	Taken    bool
}

// String renders the alarm as the one-line diagnostic the CLIs print:
// the branch PC, its function, the BSV status the BAT predicted (§4.2)
// and the direction actually taken.
func (a Alarm) String() string {
	return fmt.Sprintf("infeasible path: branch %#x in %s expected %s, went taken=%v (event %d)",
		a.PC, a.Func, a.Expected, a.Taken, a.Seq)
}

// Stats counts runtime activity, feeding the performance model and the
// experiment harness.
type Stats struct {
	Branches    uint64 // branch events received
	Verified    uint64 // events verified against the BSV (BCV-marked)
	Updates     uint64 // BAT update actions applied
	BATAccesses uint64 // BAT linked-list nodes walked
	Pushes      uint64 // function entries
	Pops        uint64 // function returns
	SpillEvents uint64 // frames moved off-chip
	FillEvents  uint64 // frames moved back on-chip
	SpillBits   uint64 // total bits spilled
	FillBits    uint64 // total bits filled
	Alarms      uint64

	// AlarmsDropped counts alarms evicted from the full ring buffer.
	AlarmsDropped uint64
	// StrictRejects counts branch PCs refused by strict slot checking.
	StrictRejects uint64
}

// activation is one table-stack frame. Frames are stored by value in
// the machine's stack slice, which doubles as an arena: popping a
// frame truncates the slice but leaves the frame's bsv slice parked in
// the unused capacity, so the next push at that depth reuses it
// (re-zeroed) instead of allocating. Steady-state enter/leave traffic
// therefore allocates only while the stack or a frame's slot count
// grows past its high-water mark.
type activation struct {
	img  *tables.FuncImage
	base uint64 // entry address the frame was pushed for (forensics)
	bsv  []tables.Status
}

func (a *activation) bits() (bsv, bcv, bat int) {
	if a.img == nil {
		return 0, 0, 0
	}
	return a.img.BSVBits, a.img.BCVBits, a.img.BATBits
}

// Machine is one protected process's IPDS state: the hardware unit of
// §4 — a stack of per-function table frames (BSV/BCV/BAT activations)
// fed by the branch stream.
//
// Ownership: a Machine models one hardware context and is NOT safe for
// concurrent use; exactly one goroutine (the VM or simulator driving
// it) may call its methods. The tables.Image it checks against is
// read-only and may be shared between machines (multi-process runs
// share one image per program).
type Machine struct {
	img   *tables.Image
	cfg   Config
	stack []activation // value arena; see activation

	// resident marks the lowest stack index currently on-chip; frames
	// below it are spilled to their home location.
	resident int
	bsvBits  int // on-chip bits across resident frames
	bcvBits  int
	batBits  int

	// batchAlarms is the machine-owned result buffer OnBatch returns a
	// view of; reused (truncated, never freed) across batches.
	batchAlarms []Alarm

	// Flight recorder (nil when Config.Recorder == 0) and the bounded
	// ring of captured alarm contexts; see recorder.go. ctxGap/ctxNext
	// implement the alarm-storm capture throttle.
	rec      recorder
	ctxBuf   []AlarmContext
	ctxStart int
	ctxN     int
	ctxGap   int
	ctxNext  uint64
	ctxTotal uint64

	alarms *alarmRing
	sink   EventSink
	met    *machineMetrics
	stats  Stats
	seq    uint64
}

// New creates a machine for a program's table image. With
// cfg.Recorder > 0 the flight-recorder ring and the alarm-context ring
// are preallocated here, so enabling forensics never allocates on the
// serve path later.
func New(img *tables.Image, cfg Config) *Machine {
	m := &Machine{
		img:    img,
		cfg:    cfg,
		alarms: newAlarmRing(cfg.AlarmBuffer),
		rec:    newRecorder(cfg.Recorder),
		met:    &machineMetrics{}, // disabled until Instrument
	}
	if m.rec.enabled() {
		n := cfg.AlarmCtxBuffer
		if n <= 0 {
			n = DefaultAlarmCtxBuffer
		}
		m.ctxBuf = make([]AlarmContext, n)
		m.ctxGap = cfg.CtxGap
		if m.ctxGap == 0 {
			m.ctxGap = DefaultCtxGap
		}
	}
	return m
}

// Reset clears all state, keeping the image, configuration, any
// attached sink or registry instrumentation, and the warmed activation
// arena (so a reused machine stays allocation-free).
func (m *Machine) Reset() {
	m.stack = m.stack[:0]
	m.resident = 0
	m.bsvBits, m.bcvBits, m.batBits = 0, 0, 0
	m.batchAlarms = m.batchAlarms[:0]
	m.alarms.reset()
	m.rec.reset()
	m.ctxStart, m.ctxN, m.ctxNext, m.ctxTotal = 0, 0, 0, 0
	m.stats = Stats{}
	m.seq = 0
	m.syncGauges()
}

// EnterFunc pushes the table frame for the function whose code starts
// at base. Unknown functions (library code without tables) push an
// inert frame, matching the paper's unprotected-library behaviour.
//
// The frame comes from the arena: a slot parked in the stack slice's
// spare capacity is recycled when one fits, so a warmed machine pushes
// without allocating.
func (m *Machine) EnterFunc(base uint64) {
	m.stats.Pushes++
	m.met.pushes.Inc()
	img := m.img.FuncAt(base)
	n := len(m.stack)
	if n < cap(m.stack) {
		m.stack = m.stack[:n+1]
	} else {
		m.stack = append(m.stack, activation{})
	}
	act := &m.stack[n]
	act.img = img
	act.base = base
	if img != nil {
		if cap(act.bsv) >= img.NumSlots {
			act.bsv = act.bsv[:img.NumSlots]
			clear(act.bsv)
		} else {
			act.bsv = make([]tables.Status, img.NumSlots)
		}
	} else {
		act.bsv = act.bsv[:0]
	}
	b1, b2, b3 := act.bits()
	m.bsvBits += b1
	m.bcvBits += b2
	m.batBits += b3
	m.spillToFit()
	m.record(EvEnter, base, false, 0)
	m.emit(Event{Kind: EvEnter, Seq: m.seq, Depth: len(m.stack), Base: base})
	m.syncGauges()
}

// LeaveFunc pops the top table frame. The frame's storage stays parked
// in the arena for the next push at this depth.
func (m *Machine) LeaveFunc() {
	if len(m.stack) == 0 {
		return
	}
	m.stats.Pops++
	m.met.pops.Inc()
	top := &m.stack[len(m.stack)-1]
	b1, b2, b3 := top.bits()
	m.stack = m.stack[:len(m.stack)-1]
	if len(m.stack) < m.resident {
		// The popped frame was itself spilled (cannot happen with the
		// fill-on-pop policy, but keep the invariant safe).
		m.resident = len(m.stack)
		m.record(EvLeave, 0, false, 0)
		m.emit(Event{Kind: EvLeave, Seq: m.seq, Depth: len(m.stack)})
		m.syncGauges()
		return
	}
	m.bsvBits -= b1
	m.bcvBits -= b2
	m.batBits -= b3
	// Fill the new top if it had been spilled.
	if m.resident > 0 && m.resident == len(m.stack) && len(m.stack) > 0 {
		m.fillTop()
	}
	m.record(EvLeave, 0, false, 0)
	m.emit(Event{Kind: EvLeave, Seq: m.seq, Depth: len(m.stack)})
	m.syncGauges()
}

func (m *Machine) spillToFit() {
	for m.resident < len(m.stack)-1 &&
		(m.bsvBits > m.cfg.BSVStackBits ||
			m.bcvBits > m.cfg.BCVStackBits ||
			m.batBits > m.cfg.BATStackBits) {
		victim := m.stack[m.resident]
		b1, b2, b3 := victim.bits()
		m.bsvBits -= b1
		m.bcvBits -= b2
		m.batBits -= b3
		m.resident++
		m.stats.SpillEvents++
		m.stats.SpillBits += uint64(b1 + b2 + b3)
		if mm := m.met; mm != nil {
			mm.spillEvents.Inc()
			mm.spillBits.Add(uint64(b1 + b2 + b3))
		}
		m.record(EvSpill, 0, false, b1+b2+b3)
		m.emit(Event{Kind: EvSpill, Seq: m.seq, Depth: len(m.stack), Bits: b1 + b2 + b3})
	}
}

func (m *Machine) fillTop() {
	m.resident--
	frame := m.stack[m.resident]
	b1, b2, b3 := frame.bits()
	m.bsvBits += b1
	m.bcvBits += b2
	m.batBits += b3
	m.stats.FillEvents++
	m.stats.FillBits += uint64(b1 + b2 + b3)
	if mm := m.met; mm != nil {
		mm.fillEvents.Inc()
		mm.fillBits.Add(uint64(b1 + b2 + b3))
	}
	m.record(EvFill, 0, false, b1+b2+b3)
	m.emit(Event{Kind: EvFill, Seq: m.seq, Depth: len(m.stack), Bits: b1 + b2 + b3})
	m.spillToFit()
}

// branch is the verification kernel shared by OnBranch and OnBatch: it
// verifies one committed conditional branch and applies its BAT update
// actions, returning everything by value so the hot path allocates
// nothing — the BAT walk goes through tables.BATIter (a stack cursor,
// no func value) and the alarm, when one fires, is copied into the
// bounded ring rather than boxed.
func (m *Machine) branch(pc uint64, taken bool) (alarm Alarm, fired bool, cost int) {
	m.seq++
	m.stats.Branches++
	m.met.branches.Inc()
	// Record before verifying, so the violating branch is always the
	// last entry of a captured context's recent-event window.
	m.record(EvBranch, pc, taken, 0)
	if len(m.stack) == 0 {
		return Alarm{}, false, 1
	}
	act := &m.stack[len(m.stack)-1]
	img := act.img
	if img == nil {
		return Alarm{}, false, 1
	}
	if m.cfg.Strict && !img.ValidPC(pc) {
		// The masked hash would alias this PC onto another branch's
		// slot; refuse it instead of risking a bogus verify or update.
		m.stats.StrictRejects++
		m.met.strictRejects.Inc()
		return Alarm{}, false, 1
	}
	slot := img.Slot(pc)
	cost = 1 // BCV + BSV probe (single wide access)

	if img.Checked(slot) {
		m.stats.Verified++
		m.met.verified.Inc()
		if st := act.bsv[slot]; !st.Matches(taken) {
			alarm = Alarm{
				Seq: m.seq, PC: pc, Func: img.Name, Slot: slot,
				Expected: st, Taken: taken,
			}
			fired = true
			m.pushAlarm(alarm)
		}
	}

	// Update phase: apply the BAT actions for this (branch, direction)
	// event whether or not the branch is checked.
	walked := 0
	it := img.ActionList(slot, taken)
	for e, ok := it.Next(); ok; e, ok = it.Next() {
		switch e.Act {
		case core.SetTaken:
			act.bsv[e.Target] = tables.Taken
		case core.SetNotTaken:
			act.bsv[e.Target] = tables.NotTaken
		default:
			act.bsv[e.Target] = tables.Unknown
		}
		walked++
	}
	m.stats.Updates += uint64(walked)
	m.stats.BATAccesses += uint64(walked)
	if mm := m.met; mm != nil {
		mm.updates.Add(uint64(walked))
		mm.batAccesses.Add(uint64(walked))
		mm.batWalk.Observe(uint64(walked))
	}
	cost += walked
	return alarm, fired, cost
}

// OnBranch processes one committed conditional branch. It returns the
// alarm raised (nil if the path is consistent) and the number of table
// accesses the event cost (BSV/BCV probe plus BAT list walk), which the
// CPU model converts into request-queue occupancy.
func (m *Machine) OnBranch(pc uint64, taken bool) (*Alarm, int) {
	a, fired, cost := m.branch(pc, taken)
	if !fired {
		return nil, cost
	}
	boxed := a
	return &boxed, cost
}

// batchWalkBuckets sizes the batch-local BAT walk-length tally OnBatch
// flushes into the batWalk histogram: walks shorter than this (all of
// them, in practice — see BakedInline) are counted in a stack array
// and flushed with one ObserveN per length; longer walks observe
// directly.
const batchWalkBuckets = 16

// OnBatch drives a whole decoded event batch — function entries,
// returns and committed branches, in stream order — through the
// machine and returns the alarms the batch raised.
//
// This is the daemon's hot path, rewritten over the baked slot-record
// form (tables.Baked): a run of consecutive branch events shares one
// load of the top activation, its image and its baked records (the
// stack cannot change between enter/leave events), each branch is
// resolved with a single fixed-stride record probe fusing the checked
// bit and the inline BAT actions, the flight-recorder store is inlined
// behind a precomputed meta word, and Stats plus obs metrics
// accumulate in batch-local scalars flushed once per call instead of
// per event.
//
// It is behaviourally identical to calling EnterFunc/LeaveFunc/
// OnBranch per event: same alarms, same Stats, same table-stack state,
// and the same per-event cost (1 + BAT actions walked — BATAccesses
// advances exactly as the reference kernel's walk does, so the
// internal/cpu timing model sees identical access counts). The golden
// equivalence test in internal/server holds all three paths to that,
// and TestOnBatchMatchesPerEvent pins the cost identity directly. It
// performs zero heap allocations per event on a warmed machine.
//
// The returned slice is owned by the machine and valid only until the
// next OnBatch or Reset call; callers that retain alarms must copy
// them out before feeding the next batch.
func (m *Machine) OnBatch(evs []wire.Event) []Alarm {
	m.batchAlarms = m.batchAlarms[:0]

	// Batch-local accumulators, flushed once after the loop.
	var (
		branches uint64
		verified uint64
		updates  uint64
		rejects  uint64
		walkLens [batchWalkBuckets]uint64
	)
	seq := m.seq // kept in a register; synced to m.seq outside branch runs
	strict := m.cfg.Strict
	rec := m.rec.buf
	recMask := uint64(len(rec)) - 1

	i := 0
	for i < len(evs) {
		// Stack-shape events go through the full per-event entry points:
		// they are rare relative to branches and own their record/emit/
		// gauge semantics.
		for i < len(evs) && evs[i].Kind != wire.EvBranch {
			switch evs[i].Kind {
			case wire.EvEnter:
				m.EnterFunc(evs[i].PC)
			case wire.EvLeave:
				m.LeaveFunc()
			}
			i++
		}
		if i == len(evs) {
			break
		}

		// Hoist the top activation state across the run of consecutive
		// branch events starting here.
		var (
			img *tables.FuncImage
			bk  *tables.Baked
			bsv []tables.Status
		)
		if n := len(m.stack); n > 0 {
			act := &m.stack[n-1]
			if act.img != nil {
				img = act.img
				bk = img.Baked()
				bsv = act.bsv
			}
		}
		metaBase := uint64(EvBranch)&0xff | (uint64(len(m.stack))&recDepthMask)<<9

		// Pre-scan the run extent: the work loops below then bound on a
		// plain index compare instead of re-testing Kind per event.
		end := i
		for end < len(evs) && evs[end].Kind == wire.EvBranch {
			end++
		}

		switch {
		case img == nil:
			// No protected frame on top: each branch only counts (and
			// records), cost 1, like the reference kernel's early return.
			runStart := i
			for ; i < end; i++ {
				ev := &evs[i]
				if rec != nil {
					t := uint64(0)
					if ev.Taken {
						t = 1
					}
					s := &rec[m.rec.total&recMask]
					m.rec.total++
					s.seq = seq + uint64(i-runStart) + 1
					s.pc = ev.PC
					s.meta = metaBase | t<<8
				}
			}
			run := uint64(i - runStart)
			seq += run
			branches += run
		case bk == nil:
			// Unbaked image (hand-assembled, never through Image.Index):
			// fall back to the reference kernel, which keeps its own
			// stats, so nothing accumulates locally for this run.
			m.seq = seq
			for ; i < end; i++ {
				if a, fired, _ := m.branch(evs[i].PC, evs[i].Taken); fired {
					m.batchAlarms = append(m.batchAlarms, a)
				}
			}
			seq = m.seq
		default:
			recs := bk.Recs
			acts := bk.Acts
			// Hoist the slot hash into registers: the compiler cannot
			// prove the bsv stores below never alias the image fields,
			// so without this every event reloads Base and the params.
			base := img.Base
			s1, s2 := img.Hash.S1, img.Hash.S2
			mask := uint64(img.Hash.Slots() - 1)
			runStart := i
			for ; i < end; i++ {
				ev := &evs[i]
				pc := ev.PC
				t := uint64(0)
				if ev.Taken {
					t = 1
				}
				// Record before verifying, like the reference kernel, so
				// a violating branch closes its captured context window.
				// With the recorder off, seq/branches advance once per
				// run (below), not per event.
				if rec != nil {
					s := &rec[m.rec.total&recMask]
					m.rec.total++
					s.seq = seq + uint64(i-runStart) + 1
					s.pc = pc
					s.meta = metaBase | t<<8
				}
				if strict && !img.ValidPC(pc) {
					rejects++
					continue
				}
				x := (pc - base) >> 2 // hashfn.Params.Slot, hoisted form
				slot := int((x ^ x>>s1 ^ x>>s2) & mask)
				r := &recs[slot]
				// Verify edge, branch-free: the BCV checked bit (fused
				// into the record) ANDed with the status/direction
				// verdict. Only the rare alarm dispatch branches.
				mb := uint64(r.Meta) & 1
				verified += mb
				st := bsv[slot]
				if mb&st.MatchFail(t) != 0 {
					cur := seq + uint64(i-runStart) + 1
					a := Alarm{
						Seq: cur, PC: pc, Func: img.Name, Slot: slot,
						Expected: st, Taken: ev.Taken,
					}
					m.seq = cur // pushAlarm captures context off m.seq-consistent state
					m.batchAlarms = append(m.batchAlarms, a)
					m.pushAlarm(a)
				}
				// Update phase: inline actions (unrolled — BakedInline is
				// 4) or one contiguous scan of a flattened longer list.
				// The overflow flag rides in the already-loaded Meta
				// word, so the common inline case never touches Off/Tail.
				dir := t ^ 1 // 0 taken, 1 not-taken (BATHeads convention)
				n := int(r.Meta >> (2 + dir*3) & 7)
				if n != 0 {
					inl := &r.Inline[dir]
					a := inl[0]
					bsv[a>>2] = tables.Status(a & 3)
					if n >= 2 {
						a = inl[1]
						bsv[a>>2] = tables.Status(a & 3)
						if n >= 3 {
							a = inl[2]
							bsv[a>>2] = tables.Status(a & 3)
							if n == 4 {
								a = inl[3]
								bsv[a>>2] = tables.Status(a & 3)
							}
						}
					}
				} else if r.Meta>>(8+dir)&1 != 0 {
					tail := int(r.Tail[dir])
					for _, a := range acts[r.Off[dir] : int(r.Off[dir])+tail] {
						bsv[a>>2] = tables.Status(a & 3)
					}
					n = tail
				}
				// updates is derived from walkLens at flush; only walks too
				// long for the tally are accumulated directly.
				if n < batchWalkBuckets {
					walkLens[n]++
				} else {
					updates += uint64(n)
					m.met.batWalk.Observe(uint64(n))
				}
			}
			run := uint64(i - runStart)
			seq += run
			branches += run
		}
		m.seq = seq
	}
	m.seq = seq

	// Flush: owner-local Stats, then one atomic add per touched series.
	mm := m.met
	for l, c := range walkLens {
		updates += uint64(l) * c
		mm.batWalk.ObserveN(uint64(l), c)
	}
	m.stats.Branches += branches
	m.stats.Verified += verified
	m.stats.Updates += updates
	m.stats.BATAccesses += updates
	m.stats.StrictRejects += rejects
	mm.branches.Add(branches)
	mm.verified.Add(verified)
	mm.updates.Add(updates)
	mm.batAccesses.Add(updates)
	mm.strictRejects.Add(rejects)
	return m.batchAlarms
}

// pushAlarm records an alarm in the bounded ring and publishes it. The
// event-stream copy is only materialised when a sink is attached, so
// the alarmless fast path and the sinkless serving path never box an
// alarm onto the heap.
func (m *Machine) pushAlarm(a Alarm) {
	before := m.alarms.dropped
	m.alarms.push(a)
	m.stats.Alarms++
	m.met.alarms.Inc()
	if m.rec.enabled() {
		if m.ctxGap < 0 {
			m.captureContext(a)
		} else if a.Seq >= m.ctxNext {
			m.captureContext(a)
			m.ctxNext = a.Seq + uint64(m.ctxGap)
		}
	}
	if m.alarms.dropped != before {
		m.stats.AlarmsDropped++
		m.met.alarmsDropped.Inc()
	}
	if m.sink != nil {
		boxed := a
		m.sink.Emit(Event{Kind: EvAlarm, Seq: a.Seq, Depth: len(m.stack), Alarm: &boxed})
	}
}

// Status returns the current expectation for a branch PC in the active
// frame (tests/diagnostics). Under Config.Strict it applies the same
// ValidPC check the verification kernel does: a PC that is not a known
// branch of the active function reports Unknown instead of aliasing
// onto another branch's slot through the masked hash.
func (m *Machine) Status(pc uint64) tables.Status {
	if len(m.stack) == 0 {
		return tables.Unknown
	}
	act := m.stack[len(m.stack)-1]
	if act.img == nil {
		return tables.Unknown
	}
	if m.cfg.Strict && !act.img.ValidPC(pc) {
		return tables.Unknown
	}
	return act.bsv[act.img.Slot(pc)]
}

// Depth returns the current table-stack depth.
func (m *Machine) Depth() int { return len(m.stack) }

// Alarms returns the retained alarms (oldest first) since the last
// Reset. Storage is a bounded ring: once more than the configured
// AlarmBuffer alarms have fired, the oldest are gone and
// Stats().AlarmsDropped says how many.
func (m *Machine) Alarms() []Alarm { return m.alarms.all() }

// Stats returns the activity counters.
func (m *Machine) Stats() Stats { return m.stats }
