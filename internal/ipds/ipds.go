// Package ipds implements the runtime half of the Infeasible Path
// Detection System (§5.4 of the paper): the hardware unit that receives
// every committed conditional branch, verifies checked branches against
// the Branch Status Vector, and applies Branch Action Table updates.
//
// BSV/BCV/BAT table sets are pushed and popped as functions are entered
// and left, forming stacks whose tops live in bounded on-chip buffers;
// deeper frames spill to protected memory (modelled by spill/fill
// counters that the CPU timing model in internal/cpu charges cycles
// for).
//
// The Machine is purely functional with respect to time: it answers
// "is this path infeasible" and "how many table accesses did this event
// cost"; cycle accounting lives in internal/cpu.
package ipds

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tables"
)

// Config sizes the on-chip table buffers, in bits (Table 1 defaults).
type Config struct {
	BSVStackBits int
	BCVStackBits int
	BATStackBits int
}

// DefaultConfig mirrors Table 1: 2K/1K/32K bits.
var DefaultConfig = Config{
	BSVStackBits: 2 * 1024,
	BCVStackBits: 1 * 1024,
	BATStackBits: 32 * 1024,
}

// Alarm reports one detected infeasible path.
type Alarm struct {
	Seq      uint64 // branch event sequence number
	PC       uint64
	Func     string
	Slot     int
	Expected tables.Status
	Taken    bool
}

func (a Alarm) String() string {
	return fmt.Sprintf("infeasible path: branch %#x in %s expected %s, went taken=%v (event %d)",
		a.PC, a.Func, a.Expected, a.Taken, a.Seq)
}

// Stats counts runtime activity, feeding the performance model and the
// experiment harness.
type Stats struct {
	Branches    uint64 // branch events received
	Verified    uint64 // events verified against the BSV (BCV-marked)
	Updates     uint64 // BAT update actions applied
	BATAccesses uint64 // BAT linked-list nodes walked
	Pushes      uint64 // function entries
	Pops        uint64 // function returns
	SpillEvents uint64 // frames moved off-chip
	FillEvents  uint64 // frames moved back on-chip
	SpillBits   uint64 // total bits spilled
	FillBits    uint64 // total bits filled
	Alarms      uint64
}

type activation struct {
	img *tables.FuncImage
	bsv []tables.Status
}

func (a *activation) bits() (bsv, bcv, bat int) {
	if a.img == nil {
		return 0, 0, 0
	}
	return a.img.BSVBits, a.img.BCVBits, a.img.BATBits
}

// Machine is one protected process's IPDS state.
type Machine struct {
	img   *tables.Image
	cfg   Config
	stack []*activation

	// resident marks the lowest stack index currently on-chip; frames
	// below it are spilled to their home location.
	resident int
	bsvBits  int // on-chip bits across resident frames
	bcvBits  int
	batBits  int

	alarms []Alarm
	stats  Stats
	seq    uint64
}

// New creates a machine for a program's table image.
func New(img *tables.Image, cfg Config) *Machine {
	return &Machine{img: img, cfg: cfg}
}

// Reset clears all state, keeping the image and configuration.
func (m *Machine) Reset() {
	m.stack = m.stack[:0]
	m.resident = 0
	m.bsvBits, m.bcvBits, m.batBits = 0, 0, 0
	m.alarms = nil
	m.stats = Stats{}
	m.seq = 0
}

// EnterFunc pushes the table frame for the function whose code starts
// at base. Unknown functions (library code without tables) push an
// inert frame, matching the paper's unprotected-library behaviour.
func (m *Machine) EnterFunc(base uint64) {
	m.stats.Pushes++
	act := &activation{img: m.img.ByBase[base]}
	if act.img != nil {
		act.bsv = make([]tables.Status, act.img.NumSlots)
	}
	m.stack = append(m.stack, act)
	b1, b2, b3 := act.bits()
	m.bsvBits += b1
	m.bcvBits += b2
	m.batBits += b3
	m.spillToFit()
}

// LeaveFunc pops the top table frame.
func (m *Machine) LeaveFunc() {
	if len(m.stack) == 0 {
		return
	}
	m.stats.Pops++
	top := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	if len(m.stack) < m.resident {
		// The popped frame was itself spilled (cannot happen with the
		// fill-on-pop policy, but keep the invariant safe).
		m.resident = len(m.stack)
		return
	}
	b1, b2, b3 := top.bits()
	m.bsvBits -= b1
	m.bcvBits -= b2
	m.batBits -= b3
	// Fill the new top if it had been spilled.
	if m.resident > 0 && m.resident == len(m.stack) && len(m.stack) > 0 {
		m.fillTop()
	}
}

func (m *Machine) spillToFit() {
	for m.resident < len(m.stack)-1 &&
		(m.bsvBits > m.cfg.BSVStackBits ||
			m.bcvBits > m.cfg.BCVStackBits ||
			m.batBits > m.cfg.BATStackBits) {
		victim := m.stack[m.resident]
		b1, b2, b3 := victim.bits()
		m.bsvBits -= b1
		m.bcvBits -= b2
		m.batBits -= b3
		m.resident++
		m.stats.SpillEvents++
		m.stats.SpillBits += uint64(b1 + b2 + b3)
	}
}

func (m *Machine) fillTop() {
	m.resident--
	frame := m.stack[m.resident]
	b1, b2, b3 := frame.bits()
	m.bsvBits += b1
	m.bcvBits += b2
	m.batBits += b3
	m.stats.FillEvents++
	m.stats.FillBits += uint64(b1 + b2 + b3)
	m.spillToFit()
}

// OnBranch processes one committed conditional branch. It returns the
// alarm raised (nil if the path is consistent) and the number of table
// accesses the event cost (BSV/BCV probe plus BAT list walk), which the
// CPU model converts into request-queue occupancy.
func (m *Machine) OnBranch(pc uint64, taken bool) (*Alarm, int) {
	m.seq++
	m.stats.Branches++
	if len(m.stack) == 0 {
		return nil, 1
	}
	act := m.stack[len(m.stack)-1]
	if act.img == nil {
		return nil, 1
	}
	img := act.img
	slot := img.Slot(pc)
	cost := 1 // BCV + BSV probe (single wide access)

	var alarm *Alarm
	if img.Checked(slot) {
		m.stats.Verified++
		if st := act.bsv[slot]; !st.Matches(taken) {
			alarm = &Alarm{
				Seq: m.seq, PC: pc, Func: img.Name, Slot: slot,
				Expected: st, Taken: taken,
			}
			m.alarms = append(m.alarms, *alarm)
			m.stats.Alarms++
		}
	}

	// Update phase: apply the BAT actions for this (branch, direction)
	// event whether or not the branch is checked.
	walked := img.Actions(slot, taken, func(e tables.BATEntry) {
		switch e.Act {
		case core.SetTaken:
			act.bsv[e.Target] = tables.Taken
		case core.SetNotTaken:
			act.bsv[e.Target] = tables.NotTaken
		default:
			act.bsv[e.Target] = tables.Unknown
		}
		m.stats.Updates++
	})
	m.stats.BATAccesses += uint64(walked)
	cost += walked
	return alarm, cost
}

// Status returns the current expectation for a branch PC in the active
// frame (tests/diagnostics).
func (m *Machine) Status(pc uint64) tables.Status {
	if len(m.stack) == 0 {
		return tables.Unknown
	}
	act := m.stack[len(m.stack)-1]
	if act.img == nil {
		return tables.Unknown
	}
	return act.bsv[act.img.Slot(pc)]
}

// Depth returns the current table-stack depth.
func (m *Machine) Depth() int { return len(m.stack) }

// Alarms returns all alarms raised since the last Reset.
func (m *Machine) Alarms() []Alarm { return m.alarms }

// Stats returns the activity counters.
func (m *Machine) Stats() Stats { return m.stats }
