package tables

import "testing"

// TestFuncAtDenseIndex exercises the sorted-slice function index that
// replaced the base map: exact hits for every function, nil for misses
// below, between and above the known bases.
func TestFuncAtDenseIndex(t *testing.T) {
	p, _, im := encode(t, testSrc)
	var lo, hi uint64
	for _, fn := range p.Funcs {
		fi := im.FuncAt(fn.Base)
		if fi == nil || fi.Base != fn.Base {
			t.Fatalf("FuncAt(%#x) = %v, want image of %s", fn.Base, fi, fn.Name)
		}
		if lo == 0 || fn.Base < lo {
			lo = fn.Base
		}
		if fn.Base > hi {
			hi = fn.Base
		}
	}
	for _, miss := range []uint64{0, lo - 1, lo + 1, hi + 1, ^uint64(0)} {
		if fi := im.FuncAt(miss); fi != nil {
			t.Errorf("FuncAt(%#x) = %s, want nil", miss, fi.Name)
		}
	}
}

// TestFuncAtSurvivesRoundTrip checks that Unmarshal rebuilds the index
// (the index itself is never serialised).
func TestFuncAtSurvivesRoundTrip(t *testing.T) {
	p, _, im := encode(t, testSrc)
	again, err := Unmarshal(im.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, fn := range p.Funcs {
		fi := again.FuncAt(fn.Base)
		if fi == nil || fi.Name != fn.Name {
			t.Fatalf("round-tripped FuncAt(%#x) lost %s", fn.Base, fn.Name)
		}
	}
}

// TestValidPCBinarySearch exercises the sorted branch-PC membership test
// that replaced the per-function PC set.
func TestValidPCBinarySearch(t *testing.T) {
	p, res, im := encode(t, testSrc)
	for _, fn := range p.Funcs {
		fi := im.FuncByName(fn.Name)
		ft := res.Tables[fn]
		real := map[uint64]bool{}
		for _, br := range ft.Branches {
			real[br.PC] = true
		}
		for _, br := range ft.Branches {
			if !fi.ValidPC(br.PC) {
				t.Errorf("%s: ValidPC rejected real branch %#x", fn.Name, br.PC)
			}
			// Near misses on both sides must be rejected.
			if !real[br.PC+1] && fi.ValidPC(br.PC+1) {
				t.Errorf("%s: ValidPC accepted %#x", fn.Name, br.PC+1)
			}
			if br.PC > 0 && !real[br.PC-1] && fi.ValidPC(br.PC-1) {
				t.Errorf("%s: ValidPC accepted %#x", fn.Name, br.PC-1)
			}
		}
		if len(ft.Branches) > 0 && (fi.ValidPC(0) || fi.ValidPC(^uint64(0))) {
			t.Errorf("%s: ValidPC accepted out-of-range PC", fn.Name)
		}
	}
}

// TestValidPCNoBranches: a *compiled* branchless function carries an
// empty (but present) branch-PC list, so every PC is rejected — no
// branch can be legal where none exist. A hand-built image that never
// installed the list has no metadata to check against and accepts
// everything (the unprotected-library behaviour).
func TestValidPCNoBranches(t *testing.T) {
	_, _, im := encode(t, `void f() { }`)
	fi := im.FuncByName("f")
	if fi == nil {
		t.Fatal("no image for f")
	}
	if len(fi.BranchPCs) != 0 {
		t.Skip("frontend emitted branches for a straight-line function")
	}
	for _, pc := range []uint64{0, fi.Base, fi.Base + 4, ^uint64(0)} {
		if fi.ValidPC(pc) {
			t.Errorf("compiled branchless function accepted PC %#x", pc)
		}
	}
	bare := &FuncImage{Name: "lib", Base: 0x9000}
	for _, pc := range []uint64{0, 0x9004, ^uint64(0)} {
		if !bare.ValidPC(pc) {
			t.Errorf("metadata-free image rejected PC %#x", pc)
		}
	}
}

// TestActionListMatchesActions holds the allocation-free iterator to the
// callback walk over every (slot, direction) pair of every function.
func TestActionListMatchesActions(t *testing.T) {
	p, _, im := encode(t, testSrc)
	for _, fn := range p.Funcs {
		fi := im.FuncByName(fn.Name)
		for slot := 0; slot < fi.NumSlots; slot++ {
			for _, taken := range []bool{true, false} {
				var want []BATEntry
				walked := fi.Actions(slot, taken, func(e BATEntry) { want = append(want, e) })
				var got []BATEntry
				it := fi.ActionList(slot, taken)
				for e, ok := it.Next(); ok; e, ok = it.Next() {
					got = append(got, e)
				}
				if len(got) != walked || len(got) != len(want) {
					t.Fatalf("%s slot %d taken=%v: iterator walked %d entries, callback %d",
						fn.Name, slot, taken, len(got), walked)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s slot %d taken=%v entry %d: %+v != %+v",
							fn.Name, slot, taken, i, got[i], want[i])
					}
				}
				// A drained iterator stays drained.
				if _, ok := it.Next(); ok {
					t.Fatalf("%s slot %d: iterator yielded past the end", fn.Name, slot)
				}
			}
		}
	}
}
