package tables

import "repro/internal/core"

// Baked slot-record layout: the load-time form of a function's tables
// that the runtime verification kernel (internal/ipds OnBatch) probes.
//
// The paper's hardware IPDS answers one committed branch with a single
// wide indexed access that yields the BCV checked bit, the BSV status
// and the BAT actions together (§4, Table 1). The wire-format FuncImage
// keeps the three structures separate — BCV bit array, BSV in the
// activation, BAT as per-slot linked lists through a shared Entries
// slice — which costs the software kernel three dependent probes plus a
// pointer-chase per event. Baking derives, per function, a fixed-stride
// array of slot records that fuse the checked flag and the first
// BakedInline actions of each direction's BAT list into one record,
// with longer lists flattened into a contiguous overflow array. The
// bake is derived state only: Marshal bytes are computed from the
// original structures and stay byte-identical, and walk order and walk
// length (the runtime's cost accounting) are exactly those of the
// linked lists.

// BakedInline is the number of BAT actions stored inline per (slot,
// direction) in a SlotRec. Runtime walk-length histograms
// (ipds_bat_walk_len) show walks of 1–2 entries dominate with a
// correlated-cluster mode at 4, so four inline slots resolve >90% of
// walks without touching the overflow array while keeping the record
// within one cache line.
const BakedInline = 4

// SlotRec is one baked slot record: the kernel's single-probe view of
// a slot. Meta packs the BCV checked flag (bit 0), the inline action
// counts for direction 0/taken (bits 2–4) and direction 1/not-taken
// (bits 5–7), and per-direction overflow flags (bits 8–9). A
// direction whose list fits in BakedInline actions stores them in
// Inline; a longer list is flattened whole into Baked.Acts (inline
// count 0, overflow flag set, Off/Tail giving its extent), so the
// kernel walks it as one contiguous scan instead of an inline prefix
// plus a tail — and, because the flag lives in the Meta word it has
// already loaded, the (overwhelmingly common) inline case never
// touches Off/Tail at all. Actions are packed as target<<2|status:
// applying one is a single bsv[a>>2] = Status(a&3) store.
type SlotRec struct {
	Meta   uint32
	Inline [2][BakedInline]uint32
	Off    [2]uint32
	Tail   [2]uint32

	_ [3]uint32 // pad to 64 bytes: one cache line per probe, shift-indexed
}

// Baked is a function's baked table set: the fixed-stride slot records
// plus the flattened overflow actions. Like the FuncImage it derives
// from, it is immutable once built and shared without synchronisation.
type Baked struct {
	Recs []SlotRec
	Acts []uint32
}

// bakeStatus maps a BAT entry to the packed status its action writes,
// mirroring the reference kernel's switch (SetTaken, SetNotTaken,
// anything else clears to Unknown).
func bakeStatus(e BATEntry) uint32 {
	switch e.Act {
	case core.SetTaken:
		return uint32(Taken)
	case core.SetNotTaken:
		return uint32(NotTaken)
	}
	return uint32(Unknown)
}

// Bake derives the baked slot-record form from the function's BCV and
// BAT. It is idempotent and must be called before the image is shared
// (Image.Index bakes every function, so any image that reaches the
// runtime through Encode, Unmarshal or the pipeline arrives baked);
// calling it concurrently with readers is a data race, like Index.
// Functions whose entries cannot be packed (corrupt targets outside
// the slot space) are left unbaked — Baked returns nil and the runtime
// falls back to the linked-list walk.
func (fi *FuncImage) Bake() {
	if fi.baked != nil {
		return
	}
	n := len(fi.BATHeads)
	b := &Baked{Recs: make([]SlotRec, n)}
	for _, e := range fi.Entries {
		if e.Target < 0 || e.Target >= n || uint64(e.Target) >= 1<<30 {
			return // unpackable target: leave unbaked
		}
	}
	for slot := range b.Recs {
		r := &b.Recs[slot]
		if len(fi.BCV) > 0 && fi.Checked(slot) {
			r.Meta |= 1
		}
		for dir := 0; dir < 2; dir++ {
			// First pass: list length decides inline vs flattened.
			count := 0
			it := BATIter{entries: fi.Entries, idx: fi.BATHeads[slot][dir]}
			for _, ok := it.Next(); ok; _, ok = it.Next() {
				count++
			}
			it = BATIter{entries: fi.Entries, idx: fi.BATHeads[slot][dir]}
			if count <= BakedInline {
				r.Meta |= uint32(count) << (2 + dir*3)
				for k := 0; k < count; k++ {
					e, _ := it.Next()
					r.Inline[dir][k] = uint32(e.Target)<<2 | bakeStatus(e)
				}
				continue
			}
			r.Meta |= 1 << (8 + dir)
			r.Off[dir] = uint32(len(b.Acts))
			r.Tail[dir] = uint32(count)
			for e, ok := it.Next(); ok; e, ok = it.Next() {
				b.Acts = append(b.Acts, uint32(e.Target)<<2|bakeStatus(e))
			}
		}
	}
	fi.baked = b
}

// Baked returns the function's baked slot records, or nil when the
// image has not been baked (hand-assembled fixtures that never went
// through Image.Index or Bake).
func (fi *FuncImage) Baked() *Baked { return fi.baked }
