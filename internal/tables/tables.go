// Package tables encodes the per-function analysis results of
// internal/core into the runtime's bit-level table images: the Branch
// Status Vector (BSV, 2 bits per slot, maintained at runtime), the
// Branch Checking Vector (BCV, 1 bit per slot) and the Branch Action
// Table (BAT, a per-slot, per-direction linked list of actions), all
// indexed by the collision-free hash of internal/hashfn.
//
// The bit sizes reported here regenerate the paper's Figure 8; the
// binary Marshal/Unmarshal round trip models attaching the tables to
// the program binary for the loader to map into reserved memory.
package tables

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/hashfn"
)

// Status is a BSV entry: the expected direction of a branch.
type Status uint8

// Branch statuses. Unknown matches any direction.
const (
	Unknown Status = iota
	Taken
	NotTaken
)

// String renders the status as the paper's UN/T/NT shorthand.
func (s Status) String() string {
	switch s {
	case Unknown:
		return "UN"
	case Taken:
		return "T"
	case NotTaken:
		return "NT"
	}
	return "?"
}

// matchBits is the Matches truth table: bit (s<<1 | taken) holds the
// verdict for status s. Unknown (bits 0,1) matches both directions,
// Taken (bit 3) only taken, NotTaken (bit 4) only not-taken.
const matchBits = 0b011011

// Matches reports whether an observed direction is compatible with the
// expected status. It is a branch-free truth-table probe — it sits
// inside the per-branch verification kernel, where a data-dependent
// status switch would mispredict on exactly the irregular histories
// the checker exists to examine. Statuses are always one of the three
// defined constants (nothing in this package or the runtime produces
// others).
func (s Status) Matches(taken bool) bool {
	t := uint(0)
	if taken {
		t = 1
	}
	return matchBits>>(uint(s)<<1|t)&1 != 0
}

// MatchFail is the branch-free complement of Matches for the batched
// verification kernel: it returns 1 when the status is incompatible
// with the direction bit t (1 = taken), 0 otherwise. The kernel ANDs
// it with the slot's checked bit, so the only branch left on the
// verify edge is the rare alarm dispatch.
func (s Status) MatchFail(t uint64) uint64 {
	return ^uint64(matchBits) >> (uint64(s)<<1 | t) & 1
}

// StatusFor converts a direction to the corresponding status.
func StatusFor(taken bool) Status {
	if taken {
		return Taken
	}
	return NotTaken
}

// BATEntry is one node of a BAT action list.
type BATEntry struct {
	Target int         // slot index of the branch to update
	Act    core.Action // SET_T / SET_NT / SET_UN
	Next   int32       // next entry index, -1 terminates
}

// FuncImage is the encoded table set of one function (the compiler's
// half of §5.4's function information table). It is immutable after
// EncodeFunc/Unmarshal: the runtime (internal/ipds) and any number of
// concurrent readers share it without synchronisation; per-run mutable
// state (the BSV) lives in the runtime's activation, never here.
type FuncImage struct {
	Name     string
	Base     uint64 // function code base address
	Hash     hashfn.Params
	NumSlots int

	// BranchPCs lists the function's conditional-branch PCs (sorted).
	// The slot hash is masked, so any PC maps onto *some* slot; this
	// list lets a strict runtime reject PCs that are not actually
	// branches of the function instead of silently aliasing them onto
	// another branch's slot. ValidPC binary-searches this slice
	// directly — there is no side map, so a FuncImage costs no pointer
	// chasing beyond the slice itself on the verification hot path.
	BranchPCs []uint64
	// hasPCs distinguishes an image encoded with (possibly zero)
	// branch-PC metadata from a hand-built fixture without any: only
	// the latter accepts every PC.
	hasPCs bool

	// BCV is the checking vector, one bit per slot.
	BCV []uint64

	// BATHeads holds, per slot and direction (0 taken, 1 not-taken),
	// the index of the first BAT entry, or -1.
	BATHeads [][2]int32
	Entries  []BATEntry

	// Sizes in bits of the three tables (Figure 8).
	BSVBits int
	BCVBits int
	BATBits int

	// baked is the load-time slot-record form of BCV+BAT the runtime
	// kernel probes (see baked.go). Derived state only: it never
	// marshals, and Bake builds it deterministically from the fields
	// above before the image is shared.
	baked *Baked
}

// Checked reports whether the slot is marked in the BCV.
func (fi *FuncImage) Checked(slot int) bool {
	return fi.BCV[slot/64]&(1<<(slot%64)) != 0
}

// Slot maps a branch PC to its table slot.
func (fi *FuncImage) Slot(pc uint64) int { return fi.Hash.Slot(fi.Base, pc) }

// ValidPC reports whether pc is one of the function's known branch PCs
// by binary search over the sorted BranchPCs slice (no map, no
// allocation). Images without branch-PC metadata (hand-built test
// fixtures) accept every PC, preserving the paper's tagless-table
// behaviour.
func (fi *FuncImage) ValidPC(pc uint64) bool {
	if !fi.hasPCs {
		return true
	}
	lo, hi := 0, len(fi.BranchPCs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if fi.BranchPCs[mid] < pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(fi.BranchPCs) && fi.BranchPCs[lo] == pc
}

// setBranchPCs installs the sorted branch-PC list ValidPC searches.
func (fi *FuncImage) setBranchPCs(pcs []uint64) {
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	fi.BranchPCs = pcs
	fi.hasPCs = true
}

// BATIter is an allocation-free cursor over one (slot, direction) BAT
// action list. The zero value is exhausted; obtain one with
// FuncImage.ActionList. It is a value type: copying it forks the
// cursor, and no call on it allocates or escapes to the heap — this is
// what lets the runtime's branch hot path walk update lists without a
// func value.
type BATIter struct {
	entries []BATEntry
	idx     int32
}

// Next returns the next action entry, or ok=false when the list is
// exhausted.
func (it *BATIter) Next() (e BATEntry, ok bool) {
	if it.idx < 0 {
		return BATEntry{}, false
	}
	e = it.entries[it.idx]
	it.idx = e.Next
	return e, true
}

// ActionList returns a cursor over the BAT list for (slot, taken).
func (fi *FuncImage) ActionList(slot int, taken bool) BATIter {
	dir := 0
	if !taken {
		dir = 1
	}
	return BATIter{entries: fi.Entries, idx: fi.BATHeads[slot][dir]}
}

// Actions iterates the BAT list for (slot, taken), reporting the number
// of entries walked (the runtime's per-update table accesses). The
// runtime itself uses ActionList; this closure form remains for tests
// and diagnostics.
func (fi *FuncImage) Actions(slot int, taken bool, yield func(BATEntry)) int {
	it := fi.ActionList(slot, taken)
	n := 0
	for e, ok := it.Next(); ok; e, ok = it.Next() {
		yield(e)
		n++
	}
	return n
}

// Image is the whole-program table set plus the function information
// table the compiler hands to the runtime (§5.4).
//
// Function lookup by entry address goes through FuncAt, which binary
// searches a dense base-sorted index (two parallel slices) instead of
// a map: the index is one cache-friendly []uint64 probe on the
// runtime's EnterFunc path, and the whole structure is immutable after
// Index, so any number of concurrent machines may share it.
type Image struct {
	Funcs []*FuncImage

	// bases/byBase form the dense sorted index FuncAt searches:
	// bases[i] is the entry address of byBase[i], ascending.
	bases  []uint64
	byBase []*FuncImage
}

// Index (re)builds the base-address lookup index over Funcs and bakes
// every function's slot-record form (see baked.go), so any image the
// runtime sees arrives ready for the fused-probe kernel. Encode,
// Unmarshal and the pipeline call it before an image is shared;
// hand-assembled images (tests, tools) must call it before FuncAt —
// concurrently sharing an image while calling Index is a data race.
func (im *Image) Index() {
	for _, fi := range im.Funcs {
		fi.Bake()
	}
	im.bases = make([]uint64, 0, len(im.Funcs))
	im.byBase = make([]*FuncImage, 0, len(im.Funcs))
	fns := make([]*FuncImage, len(im.Funcs))
	copy(fns, im.Funcs)
	sort.Slice(fns, func(i, j int) bool { return fns[i].Base < fns[j].Base })
	for _, fi := range fns {
		im.bases = append(im.bases, fi.Base)
		im.byBase = append(im.byBase, fi)
	}
}

// FuncAt locates a function image from its entry address (nil when the
// address belongs to no table-carrying function, e.g. library code).
// It allocates nothing and is safe for concurrent use once the image
// is indexed.
func (im *Image) FuncAt(base uint64) *FuncImage {
	bases := im.bases
	lo, hi := 0, len(bases)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bases[mid] < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(bases) && bases[lo] == base {
		return im.byBase[lo]
	}
	return nil
}

// FuncByName returns the image for the named function, or nil.
func (im *Image) FuncByName(name string) *FuncImage {
	for _, fi := range im.Funcs {
		if fi.Name == name {
			return fi
		}
	}
	return nil
}

// Encode builds table images for every function in the analysis result.
func Encode(res *core.Result) (*Image, error) {
	im := &Image{}
	for _, fn := range res.Prog.Funcs {
		fi, err := EncodeFunc(res.Tables[fn])
		if err != nil {
			return nil, fmt.Errorf("tables: %s: %w", fn.Name, err)
		}
		im.Funcs = append(im.Funcs, fi)
	}
	im.Index()
	return im, nil
}

// EncodeFunc encodes one function's analysis result: it searches for
// the collision-free hash parameterisation (§5.2) and lays out the
// BCV bits and BAT action lists. EncodeFunc only reads ft, so
// concurrent calls on distinct FuncTables are safe — this is the unit
// of work the parallel pipeline fans out per function. The result is
// deterministic: identical FuncTables yield byte-identical MarshalFunc
// output.
func EncodeFunc(ft *core.FuncTables) (*FuncImage, error) {
	fn := ft.Fn
	pcs := make([]uint64, 0, len(ft.Branches))
	for _, br := range ft.Branches {
		pcs = append(pcs, br.PC)
	}
	params, err := hashfn.Find(fn.Base, pcs, 0)
	if err != nil {
		return nil, err
	}
	n := params.Slots()
	fi := &FuncImage{
		Name:     fn.Name,
		Base:     fn.Base,
		Hash:     params,
		NumSlots: n,
		BCV:      make([]uint64, (n+63)/64),
		BATHeads: make([][2]int32, n),
	}
	for i := range fi.BATHeads {
		fi.BATHeads[i] = [2]int32{-1, -1}
	}
	fi.setBranchPCs(pcs)
	for br := range ft.Checked {
		s := fi.Slot(br.PC)
		fi.BCV[s/64] |= 1 << (s % 64)
	}

	// Deterministic event order: by branch PC, taken before not-taken.
	evs := make([]core.Event, 0, len(ft.Actions))
	for ev := range ft.Actions {
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Br.PC != evs[j].Br.PC {
			return evs[i].Br.PC < evs[j].Br.PC
		}
		return evs[i].Dir < evs[j].Dir
	})
	for _, ev := range evs {
		slot := fi.Slot(ev.Br.PC)
		dir := 0
		if ev.Dir == cfg.NotTaken {
			dir = 1
		}
		// Build the chain in update order.
		prev := int32(-1)
		for i := len(ft.Actions[ev]) - 1; i >= 0; i-- {
			u := ft.Actions[ev][i]
			fi.Entries = append(fi.Entries, BATEntry{
				Target: fi.Slot(u.Target.PC),
				Act:    u.Act,
				Next:   prev,
			})
			prev = int32(len(fi.Entries) - 1)
		}
		fi.BATHeads[slot][dir] = prev
	}

	fi.BSVBits = 2 * n
	fi.BCVBits = n
	ptrBits := log2ceil(len(fi.Entries) + 1)
	slotBits := log2ceil(n)
	fi.BATBits = 2*n*ptrBits + len(fi.Entries)*(slotBits+2+ptrBits)
	return fi, nil
}

func log2ceil(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Stats aggregates table sizes across an image (Figure 8 inputs).
type Stats struct {
	Funcs        int
	AvgBSVBits   float64
	AvgBCVBits   float64
	AvgBATBits   float64
	TotalEntries int
}

// Sizes computes average per-function table sizes.
func (im *Image) Sizes() Stats {
	var s Stats
	if len(im.Funcs) == 0 {
		return s
	}
	for _, fi := range im.Funcs {
		s.AvgBSVBits += float64(fi.BSVBits)
		s.AvgBCVBits += float64(fi.BCVBits)
		s.AvgBATBits += float64(fi.BATBits)
		s.TotalEntries += len(fi.Entries)
	}
	n := float64(len(im.Funcs))
	s.Funcs = len(im.Funcs)
	s.AvgBSVBits /= n
	s.AvgBCVBits /= n
	s.AvgBATBits /= n
	return s
}

const magic = uint32(0x49504453) // "IPDS"

// Marshal serialises the image to the binary form attached to program
// binaries.
func (im *Image) Marshal() []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(im.Funcs)))
	for _, fi := range im.Funcs {
		buf = appendFunc(buf, fi)
	}
	return buf
}

// Hash is the image's content address: the SHA-256 of its marshalled
// bytes. Because Marshal is deterministic (same source + options ⇒
// byte-identical image), the hash identifies a program's table set
// across processes and machines — it is what a wire.Hello carries and
// what the serving daemon resolves images by.
func (im *Image) Hash() [sha256.Size]byte {
	return sha256.Sum256(im.Marshal())
}

// appendFunc appends one function's serialised record to buf.
func appendFunc(buf []byte, fi *FuncImage) []byte {
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }

	u32(uint32(len(fi.Name)))
	buf = append(buf, fi.Name...)
	u64(fi.Base)
	buf = append(buf, fi.Hash.S1, fi.Hash.S2, fi.Hash.SizeLog2, 0)
	u32(uint32(len(fi.BranchPCs)))
	for _, pc := range fi.BranchPCs {
		u64(pc)
	}
	u32(uint32(len(fi.BCV)))
	for _, w := range fi.BCV {
		u64(w)
	}
	u32(uint32(len(fi.Entries)))
	for _, e := range fi.Entries {
		u32(uint32(e.Target))
		u32(uint32(e.Act))
		u32(uint32(e.Next))
	}
	for _, h := range fi.BATHeads {
		u32(uint32(h[0]))
		u32(uint32(h[1]))
	}
	return buf
}

// MarshalFunc serialises a single function image using the same record
// layout Marshal embeds per function. The per-function table cache
// (internal/tcache) stores these records as its blob payload.
func MarshalFunc(fi *FuncImage) []byte {
	return appendFunc(nil, fi)
}

// UnmarshalFunc reads a single function record produced by MarshalFunc,
// returning the image and the number of bytes consumed.
func UnmarshalFunc(data []byte) (*FuncImage, int, error) {
	fi, off, err := readFunc(data, 0)
	if err != nil {
		return nil, 0, err
	}
	return fi, off, nil
}

// Unmarshal reads a serialised image.
func Unmarshal(data []byte) (*Image, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("tables: truncated image at header")
	}
	if binary.LittleEndian.Uint32(data) != magic {
		return nil, fmt.Errorf("tables: bad magic")
	}
	nf := binary.LittleEndian.Uint32(data[4:])
	off := 8
	im := &Image{}
	for i := uint32(0); i < nf; i++ {
		fi, next, err := readFunc(data, off)
		if err != nil {
			return nil, err
		}
		off = next
		im.Funcs = append(im.Funcs, fi)
	}
	im.Index()
	return im, nil
}

// readFunc decodes one function record starting at off, returning the
// image and the offset just past the record.
func readFunc(data []byte, off int) (*FuncImage, int, error) {
	fail := func(what string) error { return fmt.Errorf("tables: truncated image at %s", what) }
	u32 := func() (uint32, bool) {
		if off+4 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, true
	}

	nameLen, ok := u32()
	if !ok || off+int(nameLen) > len(data) {
		return nil, 0, fail("name")
	}
	name := string(data[off : off+int(nameLen)])
	off += int(nameLen)
	base, ok := u64()
	if !ok {
		return nil, 0, fail("base")
	}
	if off+4 > len(data) {
		return nil, 0, fail("hash params")
	}
	params := hashfn.Params{S1: data[off], S2: data[off+1], SizeLog2: data[off+2]}
	off += 4
	nPCs, ok := u32()
	if !ok {
		return nil, 0, fail("branch pc count")
	}
	pcs := make([]uint64, 0, nPCs)
	for j := uint32(0); j < nPCs; j++ {
		pc, ok := u64()
		if !ok {
			return nil, 0, fail("branch pc")
		}
		pcs = append(pcs, pc)
	}
	nBCV, ok := u32()
	if !ok {
		return nil, 0, fail("bcv len")
	}
	fi := &FuncImage{Name: name, Base: base, Hash: params, NumSlots: params.Slots()}
	fi.setBranchPCs(pcs)
	for j := uint32(0); j < nBCV; j++ {
		w, ok := u64()
		if !ok {
			return nil, 0, fail("bcv")
		}
		fi.BCV = append(fi.BCV, w)
	}
	nEnt, ok := u32()
	if !ok {
		return nil, 0, fail("entry count")
	}
	for j := uint32(0); j < nEnt; j++ {
		tgt, ok1 := u32()
		act, ok2 := u32()
		next, ok3 := u32()
		if !ok1 || !ok2 || !ok3 {
			return nil, 0, fail("entry")
		}
		fi.Entries = append(fi.Entries, BATEntry{
			Target: int(tgt), Act: core.Action(act), Next: int32(next),
		})
	}
	fi.BATHeads = make([][2]int32, fi.NumSlots)
	for j := 0; j < fi.NumSlots; j++ {
		h0, ok1 := u32()
		h1, ok2 := u32()
		if !ok1 || !ok2 {
			return nil, 0, fail("heads")
		}
		fi.BATHeads[j] = [2]int32{int32(h0), int32(h1)}
	}
	n := fi.NumSlots
	fi.BSVBits = 2 * n
	fi.BCVBits = n
	ptrBits := log2ceil(len(fi.Entries) + 1)
	slotBits := log2ceil(n)
	fi.BATBits = 2*n*ptrBits + len(fi.Entries)*(slotBits+2+ptrBits)
	return fi, off, nil
}
