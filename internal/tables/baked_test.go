package tables

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// bakedWalk replays the baked action list for (slot, dir) onto bsv the
// way the runtime kernel does — inline records for short lists, one
// contiguous scan of the flattened list otherwise — returning the
// number of actions applied.
func bakedWalk(b *Baked, slot, dir int, bsv []Status) int {
	r := &b.Recs[slot]
	n := int(r.Meta >> (2 + dir*3) & 7)
	for k := 0; k < n; k++ {
		a := r.Inline[dir][k]
		bsv[a>>2] = Status(a & 3)
	}
	if r.Meta>>(8+dir)&1 != 0 {
		tail := int(r.Tail[dir])
		for _, a := range b.Acts[r.Off[dir] : int(r.Off[dir])+tail] {
			bsv[a>>2] = Status(a & 3)
		}
		n += tail
	}
	return n
}

// refWalk replays the linked-list form with the reference kernel's
// action switch.
func refWalk(fi *FuncImage, slot int, taken bool, bsv []Status) int {
	walked := 0
	it := fi.ActionList(slot, taken)
	for e, ok := it.Next(); ok; e, ok = it.Next() {
		switch e.Act {
		case core.SetTaken:
			bsv[e.Target] = Taken
		case core.SetNotTaken:
			bsv[e.Target] = NotTaken
		default:
			bsv[e.Target] = Unknown
		}
		walked++
	}
	return walked
}

// TestBakedMatchesActionLists holds the baked form to the linked-list
// form over compiled programs: for every (slot, direction), the same
// walk length and the same BSV effect, and the checked bit mirrors the
// BCV.
func TestBakedMatchesActionLists(t *testing.T) {
	_, _, im := encode(t, testSrc)
	for _, fi := range im.Funcs {
		b := fi.Baked()
		if b == nil {
			t.Fatalf("%s: not baked after Encode", fi.Name)
		}
		if len(b.Recs) != len(fi.BATHeads) {
			t.Fatalf("%s: %d records for %d slots", fi.Name, len(b.Recs), len(fi.BATHeads))
		}
		for slot := range b.Recs {
			if got, want := b.Recs[slot].Meta&1 != 0, fi.Checked(slot); got != want {
				t.Errorf("%s slot %d: baked checked %v, BCV %v", fi.Name, slot, got, want)
			}
			for dir := 0; dir < 2; dir++ {
				ref := make([]Status, fi.NumSlots)
				got := make([]Status, fi.NumSlots)
				wn := refWalk(fi, slot, dir == 0, ref)
				gn := bakedWalk(b, slot, dir, got)
				if wn != gn {
					t.Errorf("%s slot %d dir %d: baked walk %d actions, reference %d",
						fi.Name, slot, dir, gn, wn)
				}
				for s := range ref {
					if ref[s] != got[s] {
						t.Errorf("%s slot %d dir %d: bsv[%d] = %v after baked walk, want %v",
							fi.Name, slot, dir, s, got[s], ref[s])
					}
				}
			}
		}
	}
}

// overflowImage hand-builds a function whose slot-0 taken list is
// longer than BakedInline, with a short not-taken list behind it, so
// both the inline records and the flattened tail are exercised.
func overflowImage() *FuncImage {
	fi := &FuncImage{
		Name:     "overflow",
		Base:     0x1000,
		NumSlots: 8,
		BCV:      []uint64{0b1},
		BATHeads: [][2]int32{{0, 5}, {-1, -1}, {-1, -1}, {-1, -1}, {-1, -1}, {-1, -1}, {-1, -1}, {-1, -1}},
		Entries: []BATEntry{
			{Target: 1, Act: core.SetTaken, Next: 1},
			{Target: 2, Act: core.SetNotTaken, Next: 2},
			{Target: 3, Act: core.SetTaken, Next: 3},
			{Target: 4, Act: core.SetUnknown, Next: 4},
			{Target: 5, Act: core.SetTaken, Next: -1},
			{Target: 6, Act: core.SetNotTaken, Next: -1},
		},
	}
	return fi
}

func TestBakedOverflowTail(t *testing.T) {
	fi := overflowImage()
	fi.Bake()
	b := fi.Baked()
	if b == nil {
		t.Fatal("Bake left image unbaked")
	}
	r := &b.Recs[0]
	if n := r.Meta >> 2 & 7; n != 0 {
		t.Fatalf("taken inline count = %d, want 0 (list overflows inline)", n)
	}
	if r.Meta>>8&1 != 1 {
		t.Fatal("taken overflow flag not set for a flattened list")
	}
	if r.Meta>>9&1 != 0 {
		t.Fatal("not-taken overflow flag set for an inline list")
	}
	if r.Tail[0] != 5 {
		t.Fatalf("taken flattened length = %d, want 5", r.Tail[0])
	}
	if n := r.Meta >> 5 & 7; n != 1 {
		t.Fatalf("not-taken inline count = %d, want 1", n)
	}
	if r.Tail[1] != 0 {
		t.Fatalf("not-taken tail = %d, want 0", r.Tail[1])
	}
	for dir := 0; dir < 2; dir++ {
		ref := make([]Status, fi.NumSlots)
		got := make([]Status, fi.NumSlots)
		wn := refWalk(fi, 0, dir == 0, ref)
		gn := bakedWalk(b, 0, dir, got)
		if wn != gn {
			t.Fatalf("dir %d: walk %d, want %d", dir, gn, wn)
		}
		for s := range ref {
			if ref[s] != got[s] {
				t.Fatalf("dir %d: bsv[%d] = %v, want %v", dir, s, got[s], ref[s])
			}
		}
	}

	// Idempotent: a second Bake keeps the derived form.
	before := fi.Baked()
	fi.Bake()
	if fi.Baked() != before {
		t.Fatal("second Bake rebuilt the baked form")
	}
}

// TestBakeRefusesUnpackableTargets leaves images with out-of-range BAT
// targets unbaked, so the runtime falls back to the linked-list walk
// instead of writing through a bogus packed index.
func TestBakeRefusesUnpackableTargets(t *testing.T) {
	fi := &FuncImage{
		Name:     "corrupt",
		NumSlots: 2,
		BCV:      []uint64{0},
		BATHeads: [][2]int32{{0, -1}, {-1, -1}},
		Entries:  []BATEntry{{Target: 99, Act: core.SetTaken, Next: -1}},
	}
	fi.Bake()
	if fi.Baked() != nil {
		t.Fatal("corrupt image was baked")
	}
}

// TestBakeDoesNotChangeMarshal pins the tentpole's wire-format
// constraint: the baked form is derived state only, and marshalled
// bytes are identical with and without it.
func TestBakeDoesNotChangeMarshal(t *testing.T) {
	_, _, im := encode(t, testSrc)
	baked := im.Marshal()
	for _, fi := range im.Funcs {
		fi.baked = nil
	}
	unbaked := im.Marshal()
	if !bytes.Equal(baked, unbaked) {
		t.Fatal("Marshal bytes differ between baked and unbaked images")
	}
	im.Index() // restore the shared-image invariant
	for _, fi := range im.Funcs {
		if fi.Baked() == nil {
			t.Fatalf("%s: Index did not re-bake", fi.Name)
		}
	}
}
