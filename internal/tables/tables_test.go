package tables

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minic"
)

const testSrc = `
int x; int y;
void f(int n) {
	while (n > 0) {
		if (y < 5) {
			if (x > 10) {
				x = read_int();
			}
		}
		if (y < 10) {
			print_int(1);
		}
		n = n - 1;
	}
}
int g() {
	if (y == 2) { return 1; }
	if (y == 2) { return 2; }
	return 0;
}`

func encode(t *testing.T, src string) (*ir.Program, *core.Result, *Image) {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	res := core.Build(p, nil)
	im, err := Encode(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return p, res, im
}

func TestEncodeBasics(t *testing.T) {
	p, res, im := encode(t, testSrc)
	if len(im.Funcs) != len(p.Funcs) {
		t.Fatalf("images = %d, want %d", len(im.Funcs), len(p.Funcs))
	}
	for _, fn := range p.Funcs {
		fi := im.FuncByName(fn.Name)
		if fi == nil {
			t.Fatalf("no image for %s", fn.Name)
		}
		if im.FuncAt(fn.Base) != fi {
			t.Error("FuncAt lookup broken")
		}
		ft := res.Tables[fn]
		// Every branch maps to a distinct in-range slot.
		seen := map[int]bool{}
		for _, br := range ft.Branches {
			s := fi.Slot(br.PC)
			if s < 0 || s >= fi.NumSlots {
				t.Fatalf("slot out of range")
			}
			if seen[s] {
				t.Fatalf("%s: slot collision", fn.Name)
			}
			seen[s] = true
		}
		// BCV bits match the checked set.
		for _, br := range ft.Branches {
			if fi.Checked(fi.Slot(br.PC)) != ft.Checked[br] {
				t.Errorf("%s: BCV mismatch for branch at %#x", fn.Name, br.PC)
			}
		}
	}
}

func TestEncodeActionsRoundTrip(t *testing.T) {
	p, res, im := encode(t, testSrc)
	fn := p.ByName["f"]
	ft := res.Tables[fn]
	fi := im.FuncByName("f")
	for ev, ups := range ft.Actions {
		slot := fi.Slot(ev.Br.PC)
		var got []BATEntry
		walked := fi.Actions(slot, ev.Dir == 0, func(e BATEntry) { got = append(got, e) })
		if walked != len(ups) {
			t.Fatalf("event %v: walked %d, want %d", ev, walked, len(ups))
		}
		for i, u := range ups {
			if got[i].Target != fi.Slot(u.Target.PC) || got[i].Act != u.Act {
				t.Errorf("event %v update %d: got %+v, want target %d act %v",
					ev, i, got[i], fi.Slot(u.Target.PC), u.Act)
			}
		}
	}
}

func TestEncodeSizes(t *testing.T) {
	_, _, im := encode(t, testSrc)
	s := im.Sizes()
	if s.Funcs != 2 {
		t.Fatalf("funcs = %d", s.Funcs)
	}
	if s.AvgBSVBits <= 0 || s.AvgBCVBits <= 0 {
		t.Error("table sizes must be positive")
	}
	if s.AvgBSVBits != 2*s.AvgBCVBits {
		t.Errorf("BSV (%v) must be 2x BCV (%v)", s.AvgBSVBits, s.AvgBCVBits)
	}
	fi := im.FuncByName("f")
	if fi.BATBits <= fi.BSVBits {
		t.Errorf("BAT (%d bits) should dominate BSV (%d bits) for correlated code",
			fi.BATBits, fi.BSVBits)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	_, _, im := encode(t, testSrc)
	data := im.Marshal()
	im2, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(im2.Funcs) != len(im.Funcs) {
		t.Fatalf("func count mismatch")
	}
	for i, fi := range im.Funcs {
		fi2 := im2.Funcs[i]
		if fi.Name != fi2.Name || fi.Base != fi2.Base || fi.Hash != fi2.Hash {
			t.Errorf("header mismatch: %+v vs %+v", fi, fi2)
		}
		if !reflect.DeepEqual(fi.BCV, fi2.BCV) {
			t.Errorf("%s: BCV mismatch", fi.Name)
		}
		if !reflect.DeepEqual(fi.Entries, fi2.Entries) {
			t.Errorf("%s: entries mismatch", fi.Name)
		}
		if !reflect.DeepEqual(fi.BATHeads, fi2.BATHeads) {
			t.Errorf("%s: heads mismatch", fi.Name)
		}
		if fi.BATBits != fi2.BATBits || fi.BSVBits != fi2.BSVBits || fi.BCVBits != fi2.BCVBits {
			t.Errorf("%s: size mismatch", fi.Name)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	_, _, im := encode(t, testSrc)
	data := im.Marshal()
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil data must fail")
	}
	if _, err := Unmarshal([]byte{1, 2, 3, 4}); err == nil {
		t.Error("bad magic must fail")
	}
	for _, cut := range []int{5, 9, 17, len(data) / 2, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
}

func TestStatusHelpers(t *testing.T) {
	if !Unknown.Matches(true) || !Unknown.Matches(false) {
		t.Error("unknown matches anything")
	}
	if !Taken.Matches(true) || Taken.Matches(false) {
		t.Error("taken matching")
	}
	if NotTaken.Matches(true) || !NotTaken.Matches(false) {
		t.Error("not-taken matching")
	}
	if StatusFor(true) != Taken || StatusFor(false) != NotTaken {
		t.Error("StatusFor")
	}
	if Unknown.String() != "UN" || Taken.String() != "T" || NotTaken.String() != "NT" {
		t.Error("status strings")
	}
}

func TestEncodeFunctionWithoutBranches(t *testing.T) {
	_, _, im := encode(t, `void f() { print_int(1); }`)
	fi := im.FuncByName("f")
	if fi == nil {
		t.Fatal("missing image")
	}
	if len(fi.Entries) != 0 {
		t.Error("no actions expected")
	}
}

func TestMarshalRoundTripAllWorkloadSizes(t *testing.T) {
	// Round-trip stability across a spread of real table shapes: empty
	// functions, single-branch helpers, dense mains.
	srcs := []string{
		`void f() { }`,
		`int f(int x) { if (x) { return 1; } return 0; }`,
		testSrc,
	}
	for _, src := range srcs {
		_, _, im := encode(t, src)
		data := im.Marshal()
		im2, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		data2 := im2.Marshal()
		if len(data) != len(data2) {
			t.Fatalf("re-marshal size changed: %d vs %d", len(data), len(data2))
		}
		for i := range data {
			if data[i] != data2[i] {
				t.Fatalf("re-marshal differs at byte %d", i)
			}
		}
	}
}
