package pipeline_test

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/pipeline"
)

// ExampleCompile compiles a five-line MiniC program and prints the
// branch-correlation tables the paper's Figure 5 construction derives
// for it: `g < 3` taken forces `g < 7` taken (g is untouched in
// between), so the second branch is checked and the first branch's
// outcomes carry BAT actions.
func ExampleCompile() {
	art, err := pipeline.Compile(`int g;
int main() {
	g = read_int();
	if (g < 3) { print_int(1); }
	if (g < 7) { print_int(2); }
	return 0; }`, ir.DefaultOptions)
	if err != nil {
		panic(err)
	}
	main := art.Prog.ByName["main"]
	ft := art.Tables.Tables[main]
	fmt.Printf("branches=%d checked=%d actions=%d\n",
		len(ft.Branches), ft.NumChecked(), ft.NumActions())
	for _, c := range ft.Correlations {
		fmt.Println(c)
	}
	fi := art.Image.FuncByName("main")
	fmt.Printf("slots=%d bsv=%d bcv=%d bat=%d bits\n",
		fi.NumSlots, fi.BSVBits, fi.BCVBits, fi.BATBits)
	// Output:
	// branches=2 checked=1 actions=3
	// store→load: br@0x1010 T -> SET_T br@0x1028 (obj0 via instr 1)
	// load→load: br@0x1028 T -> SET_T br@0x1028 (obj0 via instr 8)
	// load→load: br@0x1028 NT -> SET_NT br@0x1028 (obj0 via instr 8)
	// slots=2 bsv=4 bcv=2 bat=23 bits
}
