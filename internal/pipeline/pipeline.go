// Package pipeline bundles the full IPDS compiler pipeline — frontend,
// lowering, pointer analysis, correlation analysis, table encoding —
// into one call used by the tools, experiments and the public facade.
//
// Two compilation modes share one implementation. The sequential mode
// (Compile, CompileTraced) analyses functions one at a time. The
// parallel mode (CompileWith with Config.Workers != 1) runs the shared
// frontend and alias phases once, then fans the per-function work —
// core.BuildFunc correlation discovery plus tables.EncodeFunc hash
// search and encoding — out to a bounded worker pool, collecting
// results in program order so the emitted tables.Image is byte-for-byte
// identical to the sequential output. An optional content-addressed
// cache (Config.Cache, internal/tcache) skips both steps for functions
// whose lowered IR and alias slice are unchanged since a previous
// compile.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/tables"
	"repro/internal/tcache"
)

// Artifacts is everything the compiler produces for a program.
type Artifacts struct {
	Source *minic.Program
	Prog   *ir.Program
	Alias  *alias.Analysis
	Tables *core.Result
	Image  *tables.Image
}

// Config selects the compilation strategy. The zero value reproduces
// the historical sequential, uncached pipeline.
type Config struct {
	// Workers bounds the per-function worker pool: 1 analyses
	// sequentially, N > 1 fans out to N goroutines, and 0 — the
	// parallel mode's default — selects GOMAXPROCS. Output is
	// byte-identical regardless of the worker count (the golden test
	// TestParallelCompileByteIdentical holds this). Compile and
	// CompileTraced pin Workers to 1, preserving the historical
	// sequential pipeline for existing call sites and benchmarks.
	Workers int

	// Cache, when non-nil, is consulted per function before analysis
	// and filled after. Hits bypass core.BuildFunc and
	// tables.EncodeFunc entirely.
	Cache *tcache.Cache

	// Core carries the correlation-analysis ablation toggles; it is
	// part of every cache key.
	Core core.Config
}

// workers resolves the configured pool size against the function count.
func (c Config) workers(nfuncs int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nfuncs {
		w = nfuncs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Compile runs the whole pipeline on MiniC source, sequentially and
// uncached.
func Compile(src string, opts ir.Options) (*Artifacts, error) {
	return CompileWith(src, opts, Config{Workers: 1}, nil)
}

// CompileTraced is CompileWith with the sequential, uncached Config: it
// exists for the common "just give me phase spans" call sites.
//
// The tracer may be nil, in which case tracing is a complete no-op: no
// spans are recorded anywhere and no span_ns histograms are created —
// obs.Tracer's nil receiver returns a no-op stop function, so the
// compile itself is unaffected. Only when tr is non-nil does each phase
// feed a `span_ns{span="compile/<phase>"}` histogram in the tracer's
// registry (and only if the tracer was built over a registry).
func CompileTraced(src string, opts ir.Options, tr *obs.Tracer) (*Artifacts, error) {
	return CompileWith(src, opts, Config{Workers: 1}, tr)
}

// CompileWith runs the pipeline under an explicit Config, recording
// per-phase spans on tr (nil for no tracing; see CompileTraced for the
// nil contract): lex, parse, sema, ir (lowering, CFG construction),
// alias, core (per-function region/range analysis, Figure 5 correlation
// discovery and table encoding, one `compile/core/<fn>` sub-span per
// function) and tables (deterministic image assembly).
//
// When cfg.Cache is set, per-function cache traffic is also counted on
// tr's registry as tcache_hits_total / tcache_misses_total.
func CompileWith(src string, opts ir.Options, cfg Config, tr *obs.Tracer) (*Artifacts, error) {
	stopAll := tr.Span("compile")
	defer stopAll()

	stop := tr.Span("compile/lex")
	toks, lerrs := minic.Lex(src)
	stop()

	stop = tr.Span("compile/parse")
	file, err := minic.ParseTokens(toks, lerrs)
	stop()
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}

	stop = tr.Span("compile/sema")
	mp, err := minic.Check(file)
	stop()
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}

	stop = tr.Span("compile/ir")
	prog, err := ir.Lower(mp, opts)
	stop()
	if err != nil {
		return nil, err
	}

	stop = tr.Span("compile/alias")
	al := alias.Analyze(prog)
	stop()

	stop = tr.Span("compile/core")
	funcs, err := buildFuncs(prog, al, cfg, tr)
	stop()
	if err != nil {
		return nil, err
	}

	stop = tr.Span("compile/tables")
	res := &core.Result{Prog: prog, Alias: al, Tables: map[*ir.Func]*core.FuncTables{}}
	img := &tables.Image{}
	for i, fn := range prog.Funcs {
		res.Tables[fn] = funcs[i].ft
		img.Funcs = append(img.Funcs, funcs[i].fi)
	}
	img.Index()
	stop()
	return &Artifacts{Source: mp, Prog: prog, Alias: al, Tables: res, Image: img}, nil
}

// funcResult is one function's compiled tables.
type funcResult struct {
	ft  *core.FuncTables
	fi  *tables.FuncImage
	err error
}

// buildFuncs produces every function's FuncTables and FuncImage,
// fanning out to cfg.workers goroutines. Results land in a slice
// indexed by function position, so assembly order — and therefore the
// final image bytes — never depends on scheduling.
func buildFuncs(prog *ir.Program, al *alias.Analysis, cfg Config, tr *obs.Tracer) ([]funcResult, error) {
	out := make([]funcResult, len(prog.Funcs))
	reg := tr.Registry()
	hits := reg.Counter("tcache_hits_total")
	misses := reg.Counter("tcache_misses_total")

	work := func(i int) {
		fn := prog.Funcs[i]
		stop := tr.Span("compile/core/" + fn.Name)
		defer stop()

		var key tcache.Key
		if cfg.Cache != nil {
			key = tcache.KeyFunc(al, fn, cfg.Core)
			if blob, ok := cfg.Cache.Get(key); ok {
				fi, ft, err := tcache.DecodeBlob(blob, fn)
				if err == nil {
					hits.Inc()
					out[i] = funcResult{ft: ft, fi: fi}
					return
				}
				// A corrupt or mismatched blob degrades to a miss.
			}
			misses.Inc()
		}

		ft := core.BuildFunc(prog, al, fn, cfg.Core)
		fi, err := tables.EncodeFunc(ft)
		if err != nil {
			out[i] = funcResult{err: fmt.Errorf("tables: %s: %w", fn.Name, err)}
			return
		}
		if cfg.Cache != nil {
			cfg.Cache.Put(key, tcache.EncodeBlob(fi, ft))
		}
		out[i] = funcResult{ft: ft, fi: fi}
	}

	if w := cfg.workers(len(prog.Funcs)); w <= 1 {
		for i := range prog.Funcs {
			work(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					work(i)
				}
			}()
		}
		for i := range prog.Funcs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i := range out {
		if out[i].err != nil {
			return nil, out[i].err
		}
	}
	return out, nil
}

// MustCompile is Compile for known-good sources (workloads, examples).
func MustCompile(src string, opts ir.Options) *Artifacts {
	a, err := Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return a
}

// Rebuild re-runs the correlation analysis and table encoding with a
// different core configuration, reusing the lowered program and the
// pointer analysis. Used by the component-ablation experiments.
func (a *Artifacts) Rebuild(cfg core.Config) (*Artifacts, error) {
	res := core.BuildWith(a.Prog, a.Alias, cfg)
	img, err := tables.Encode(res)
	if err != nil {
		return nil, err
	}
	return &Artifacts{
		Source: a.Source,
		Prog:   a.Prog,
		Alias:  a.Alias,
		Tables: res,
		Image:  img,
	}, nil
}
