// Package pipeline bundles the full IPDS compiler pipeline — frontend,
// lowering, pointer analysis, correlation analysis, table encoding —
// into one call used by the tools, experiments and the public facade.
package pipeline

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/tables"
)

// Artifacts is everything the compiler produces for a program.
type Artifacts struct {
	Source *minic.Program
	Prog   *ir.Program
	Alias  *alias.Analysis
	Tables *core.Result
	Image  *tables.Image
}

// Compile runs the whole pipeline on MiniC source.
func Compile(src string, opts ir.Options) (*Artifacts, error) {
	return CompileTraced(src, opts, nil)
}

// CompileTraced runs the pipeline with per-phase spans recorded on tr
// (nil for no tracing): lex, parse, sema, ir (lowering, CFG
// construction), alias, core (region/range analysis and Figure 5
// correlation discovery) and tables (hash search + bit-level encoding).
// Each span feeds a `span_ns{span="compile/<phase>"}` histogram in the
// tracer's registry.
func CompileTraced(src string, opts ir.Options, tr *obs.Tracer) (*Artifacts, error) {
	stopAll := tr.Span("compile")
	defer stopAll()

	stop := tr.Span("compile/lex")
	toks, lerrs := minic.Lex(src)
	stop()

	stop = tr.Span("compile/parse")
	file, err := minic.ParseTokens(toks, lerrs)
	stop()
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}

	stop = tr.Span("compile/sema")
	mp, err := minic.Check(file)
	stop()
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}

	stop = tr.Span("compile/ir")
	prog, err := ir.Lower(mp, opts)
	stop()
	if err != nil {
		return nil, err
	}

	stop = tr.Span("compile/alias")
	al := alias.Analyze(prog)
	stop()

	stop = tr.Span("compile/core")
	res := core.Build(prog, al)
	stop()

	stop = tr.Span("compile/tables")
	img, err := tables.Encode(res)
	stop()
	if err != nil {
		return nil, err
	}
	return &Artifacts{Source: mp, Prog: prog, Alias: al, Tables: res, Image: img}, nil
}

// MustCompile is Compile for known-good sources (workloads, examples).
func MustCompile(src string, opts ir.Options) *Artifacts {
	a, err := Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return a
}

// Rebuild re-runs the correlation analysis and table encoding with a
// different core configuration, reusing the lowered program and the
// pointer analysis. Used by the component-ablation experiments.
func (a *Artifacts) Rebuild(cfg core.Config) (*Artifacts, error) {
	res := core.BuildWith(a.Prog, a.Alias, cfg)
	img, err := tables.Encode(res)
	if err != nil {
		return nil, err
	}
	return &Artifacts{
		Source: a.Source,
		Prog:   a.Prog,
		Alias:  a.Alias,
		Tables: res,
		Image:  img,
	}, nil
}
