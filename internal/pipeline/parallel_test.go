package pipeline

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/progen"
	"repro/internal/tcache"
	"repro/internal/workload"
)

// multiFuncSrc is a small deterministic multi-function program used by
// the cache tests; the workload servers and progen programs cover the
// larger cases.
const multiFuncSrc = `
int mode;
int limit;

int clamp(int v) {
	if (v > limit) { return limit; }
	if (v < 0) { return 0; }
	return v;
}

int classify(int v) {
	if (v < 5) { return 1; }
	if (v < 10) { return 2; }
	return 3;
}

int main() {
	int x;
	limit = 20;
	x = read_int();
	mode = classify(x);
	if (mode < 2) { print_int(clamp(x)); }
	if (mode < 3) { print_int(x); }
	return 0;
}`

// TestParallelCompileByteIdentical is the golden determinism test: the
// parallel pipeline must emit byte-for-byte the image of the sequential
// one, for every worker count, on every workload and on generated
// programs.
func TestParallelCompileByteIdentical(t *testing.T) {
	srcs := map[string]string{"multifunc": multiFuncSrc}
	for _, w := range workload.All() {
		srcs[w.Name] = w.Source
	}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := progen.DefaultConfig
		cfg.MaxHelpers = 8
		srcs[fmt.Sprintf("progen-%d", seed)] = progen.GenerateWith(seed, cfg).Source
	}

	for name, src := range srcs {
		seq, err := Compile(src, ir.DefaultOptions)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		golden := seq.Image.Marshal()
		for _, workers := range []int{0, 2, 4, 16} {
			par, err := CompileWith(src, ir.DefaultOptions, Config{Workers: workers}, nil)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", name, workers, err)
			}
			if !bytes.Equal(par.Image.Marshal(), golden) {
				t.Errorf("%s: workers=%d image differs from sequential", name, workers)
			}
		}
	}
}

// TestParallelCompileArtifactsComplete checks the fan-out path fills
// every artifact exactly like the sequential one (same correlations,
// same per-function tables).
func TestParallelCompileArtifactsComplete(t *testing.T) {
	seq := MustCompile(multiFuncSrc, ir.DefaultOptions)
	par, err := CompileWith(multiFuncSrc, ir.DefaultOptions, Config{Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Tables.Tables) != len(seq.Tables.Tables) {
		t.Fatalf("tables for %d funcs, want %d", len(par.Tables.Tables), len(seq.Tables.Tables))
	}
	for _, fn := range par.Prog.Funcs {
		ft := par.Tables.Tables[fn]
		if ft == nil {
			t.Fatalf("no FuncTables for %s", fn.Name)
		}
		sf := seq.Prog.ByName[fn.Name]
		if got, want := ft.NumChecked(), seq.Tables.Tables[sf].NumChecked(); got != want {
			t.Errorf("%s: %d checked branches, want %d", fn.Name, got, want)
		}
		if got, want := ft.NumActions(), seq.Tables.Tables[sf].NumActions(); got != want {
			t.Errorf("%s: %d BAT actions, want %d", fn.Name, got, want)
		}
	}
}

// TestParallelCompileCacheHits asserts the content-addressed cache
// behaviour the tentpole promises: a recompile of identical source hits
// for every function; editing one function re-analyses only that
// function; artifacts served from cache are byte-identical.
func TestParallelCompileCacheHits(t *testing.T) {
	cache, err := tcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 4, Cache: cache}

	cold, err := CompileWith(multiFuncSrc, ir.DefaultOptions, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	nfuncs := uint64(len(cold.Prog.Funcs))
	if s := cache.Stats(); s.Hits != 0 || s.Misses != nfuncs {
		t.Fatalf("cold compile: stats %+v, want 0 hits / %d misses", s, nfuncs)
	}

	warm, err := CompileWith(multiFuncSrc, ir.DefaultOptions, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != nfuncs || s.Misses != nfuncs {
		t.Fatalf("warm compile: stats %+v, want %d hits / %d misses", s, nfuncs, nfuncs)
	}
	if !bytes.Equal(warm.Image.Marshal(), cold.Image.Marshal()) {
		t.Fatal("cache-served image differs from cold image")
	}
	// Diagnostics must be rehydrated too, not stubbed out.
	for _, fn := range warm.Prog.Funcs {
		cf := cold.Prog.ByName[fn.Name]
		if got, want := len(warm.Tables.Tables[fn].Correlations),
			len(cold.Tables.Tables[cf].Correlations); got != want {
			t.Errorf("%s: %d correlations from cache, want %d", fn.Name, got, want)
		}
	}

	// Edit one function (classify's threshold 10 -> 11): exactly one
	// miss, everything else hits.
	edited := bytes.Replace([]byte(multiFuncSrc), []byte("v < 10"), []byte("v < 11"), 1)
	before := cache.Stats()
	edit, err := CompileWith(string(edited), ir.DefaultOptions, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if hits := after.Hits - before.Hits; hits != nfuncs-1 {
		t.Errorf("edited compile: %d hits, want %d", hits, nfuncs-1)
	}
	if misses := after.Misses - before.Misses; misses != 1 {
		t.Errorf("edited compile: %d misses, want 1", misses)
	}
	// And the edited program still compiles to a self-consistent image.
	// (The image bytes may legitimately match the original: BAT/BCV
	// encode branch structure, not comparison constants.)
	if edit.Image.FuncByName("classify") == nil {
		t.Fatal("edited function lost its image")
	}
}

// TestCompileCacheCountersInRegistry checks the tcache_hit/miss wiring
// through CompileWith's tracer registry.
func TestCompileCacheCountersInRegistry(t *testing.T) {
	cache, err := tcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	cfg := Config{Workers: 2, Cache: cache}
	art, err := CompileWith(multiFuncSrc, ir.DefaultOptions, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileWith(multiFuncSrc, ir.DefaultOptions, cfg, tr); err != nil {
		t.Fatal(err)
	}
	nfuncs := uint64(len(art.Prog.Funcs))
	if got := reg.Counter("tcache_misses_total").Value(); got != nfuncs {
		t.Errorf("tcache_misses_total = %d, want %d", got, nfuncs)
	}
	if got := reg.Counter("tcache_hits_total").Value(); got != nfuncs {
		t.Errorf("tcache_hits_total = %d, want %d", got, nfuncs)
	}
	// Per-function core spans appear under compile/core/<fn>.
	for _, fn := range art.Prog.Funcs {
		name := obs.Name("span_ns", "span", "compile/core/"+fn.Name)
		if h := reg.Histogram(name); h.Count() != 2 {
			t.Errorf("span %s recorded %d times, want 2", name, h.Count())
		}
	}
}

// TestCompileCacheOnDisk checks the persistent tier: a fresh cache over
// the same directory serves a fresh process's compile from disk.
func TestCompileCacheOnDisk(t *testing.T) {
	dir := t.TempDir()
	c1, err := tcache.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := CompileWith(multiFuncSrc, ir.DefaultOptions, Config{Cache: c1}, nil)
	if err != nil {
		t.Fatal(err)
	}

	c2, err := tcache.New(0, dir) // same dir, empty memory: a "new process"
	if err != nil {
		t.Fatal(err)
	}
	warm, err := CompileWith(multiFuncSrc, ir.DefaultOptions, Config{Cache: c2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := c2.Stats()
	if want := uint64(len(cold.Prog.Funcs)); s.DiskHits != want || s.Misses != 0 {
		t.Fatalf("disk-backed compile: stats %+v, want %d disk hits / 0 misses", s, want)
	}
	if !bytes.Equal(warm.Image.Marshal(), cold.Image.Marshal()) {
		t.Fatal("disk-served image differs")
	}
}

// TestParallelCompileErrorsPropagate ensures a per-function encoding
// error surfaces from the pool like it does sequentially.
func TestParallelCompileErrorsPropagate(t *testing.T) {
	// No MiniC source can make hashfn.Find fail (it would need > 2^30
	// slots), so exercise the error path at the unit level instead:
	// compile errors from the frontend still propagate through
	// CompileWith regardless of worker count.
	for _, workers := range []int{1, 4} {
		if _, err := CompileWith(`int main() { return x; }`,
			ir.DefaultOptions, Config{Workers: workers}, nil); err == nil {
			t.Errorf("workers=%d: expected frontend error", workers)
		}
	}
}
