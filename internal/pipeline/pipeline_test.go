package pipeline

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestCompileProducesAllArtifacts(t *testing.T) {
	art, err := Compile(`
		int g;
		int main() {
			g = read_int();
			if (g < 5) { print_int(1); }
			if (g < 9) { return 1; }
			return 0;
		}`, ir.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if art.Source == nil || art.Prog == nil || art.Alias == nil ||
		art.Tables == nil || art.Image == nil {
		t.Fatal("missing artifacts")
	}
	if art.Prog.ByName["main"] == nil {
		t.Error("main not lowered")
	}
	if art.Image.FuncByName("main") == nil {
		t.Error("main has no table image")
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	cases := []string{
		`int main() { undefined_fn(); }`,
		`int main() { return x; }`,
		`@@@`,
	}
	for _, src := range cases {
		if _, err := Compile(src, ir.DefaultOptions); err == nil {
			t.Errorf("%q: expected error", src)
		} else if !strings.Contains(err.Error(), "frontend") {
			t.Errorf("%q: error %v not attributed to frontend", src, err)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile must panic on bad source")
		}
	}()
	MustCompile(`nonsense`, ir.DefaultOptions)
}
