package pipeline

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/obs"
)

func TestCompileProducesAllArtifacts(t *testing.T) {
	art, err := Compile(`
		int g;
		int main() {
			g = read_int();
			if (g < 5) { print_int(1); }
			if (g < 9) { return 1; }
			return 0;
		}`, ir.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if art.Source == nil || art.Prog == nil || art.Alias == nil ||
		art.Tables == nil || art.Image == nil {
		t.Fatal("missing artifacts")
	}
	if art.Prog.ByName["main"] == nil {
		t.Error("main not lowered")
	}
	if art.Image.FuncByName("main") == nil {
		t.Error("main has no table image")
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	cases := []string{
		`int main() { undefined_fn(); }`,
		`int main() { return x; }`,
		`@@@`,
	}
	for _, src := range cases {
		if _, err := Compile(src, ir.DefaultOptions); err == nil {
			t.Errorf("%q: expected error", src)
		} else if !strings.Contains(err.Error(), "frontend") {
			t.Errorf("%q: error %v not attributed to frontend", src, err)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile must panic on bad source")
		}
	}()
	MustCompile(`nonsense`, ir.DefaultOptions)
}

func TestCompileTracedRecordsPhases(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	_, err := CompileTraced(`
		int main() {
			int x;
			x = read_int();
			if (x < 5) { print_int(1); }
			return 0;
		}`, ir.DefaultOptions, tr)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range tr.Spans() {
		seen[s.Name] = true
	}
	for _, phase := range []string{
		"compile", "compile/lex", "compile/parse", "compile/sema",
		"compile/ir", "compile/alias", "compile/core", "compile/tables",
	} {
		if !seen[phase] {
			t.Errorf("phase %q not traced (got %v)", phase, tr.Spans())
		}
		if h := reg.Histogram(obs.Name("span_ns", "span", phase)); h.Count() != 1 {
			t.Errorf("phase %q histogram count = %d, want 1", phase, h.Count())
		}
	}

	// Tracing must not change compile error behaviour.
	if _, err := CompileTraced("int main( {", ir.DefaultOptions, tr); err == nil {
		t.Fatal("syntax error not reported")
	}
}

// TestCompileTracedNilTracerIsNoOp pins the documented nil contract: a
// nil tracer records nothing anywhere (no spans, no span_ns
// histograms), and a tracer without a registry records spans but
// creates no histograms. Neither may change the compile result.
func TestCompileTracedNilTracerIsNoOp(t *testing.T) {
	src := "int main() { return 0; }"
	if _, err := CompileTraced(src, ir.DefaultOptions, nil); err != nil {
		t.Fatal(err)
	}
	var nilTracer *obs.Tracer
	if spans := nilTracer.Spans(); len(spans) != 0 {
		t.Errorf("nil tracer recorded %d spans", len(spans))
	}
	if reg := nilTracer.Registry(); reg != nil {
		t.Error("nil tracer must expose a nil registry")
	}

	// Registry-less tracer: spans yes, histograms nowhere to go.
	tr := obs.NewTracer(nil)
	if _, err := CompileTraced(src, ir.DefaultOptions, tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans()) == 0 {
		t.Error("registry-less tracer must still record spans")
	}
	if tr.Registry() != nil {
		t.Error("registry-less tracer must expose a nil registry")
	}
}
