package vm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func run(t *testing.T, src string, input ...string) Result {
	t.Helper()
	p := compile(t, src)
	return New(p, DefaultConfig, input).Run()
}

func wantExit(t *testing.T, res Result, code int64) {
	t.Helper()
	if res.Status != Exited {
		t.Fatalf("status = %v (fault %v), want exit", res.Status, res.Fault)
	}
	if res.ExitCode != code {
		t.Fatalf("exit = %d, want %d", res.ExitCode, code)
	}
}

func TestRunArithmetic(t *testing.T) {
	res := run(t, `
		int main() {
			int a; int b;
			a = 7; b = 3;
			return a*b + a/b - a%b + (a<<1) + (b>>1) + (a&b) + (a|b) + (a^b) + -b + ~0;
		}`)
	// 21 + 2 - 1 + 14 + 1 + 3 + 7 + 4 - 3 - 1 = 47
	wantExit(t, res, 47)
}

func TestRunControlFlow(t *testing.T) {
	res := run(t, `
		int main() {
			int s; int i;
			s = 0;
			for (i = 1; i <= 10; i++) {
				if (i % 2 == 0) { continue; }
				if (i > 7) { break; }
				s = s + i;
			}
			return s;
		}`)
	wantExit(t, res, 1+3+5+7)
}

func TestRunWhileAndFunctions(t *testing.T) {
	res := run(t, `
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n-1) + fib(n-2);
		}
		int main() { return fib(10); }`)
	wantExit(t, res, 55)
}

func TestRunPointers(t *testing.T) {
	res := run(t, `
		void bump(int* p, int by) { *p = *p + by; }
		int main() {
			int x;
			x = 40;
			bump(&x, 2);
			return x;
		}`)
	wantExit(t, res, 42)
}

func TestRunArrays(t *testing.T) {
	res := run(t, `
		int a[5];
		int main() {
			int i;
			for (i = 0; i < 5; i++) { a[i] = i * i; }
			return a[0] + a[1] + a[2] + a[3] + a[4];
		}`)
	wantExit(t, res, 0+1+4+9+16)
}

func TestRunCharsAndStrings(t *testing.T) {
	res := run(t, `
		int main() {
			char buf[8];
			buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;
			print_str(buf);
			return strlen(buf);
		}`)
	wantExit(t, res, 2)
	if len(res.Output) != 1 || res.Output[0] != "hi" {
		t.Errorf("output = %v", res.Output)
	}
}

func TestRunGlobalInitAndShadow(t *testing.T) {
	res := run(t, `
		int g = 11;
		int main() {
			int g2;
			g2 = g + 1;
			return g2;
		}`)
	wantExit(t, res, 12)
}

func TestRunStrcmpFamily(t *testing.T) {
	res := run(t, `
		int main() {
			char a[8];
			strcpy(a, "abc");
			if (strcmp(a, "abc") != 0) { return 1; }
			if (strcmp(a, "abd") >= 0) { return 2; }
			if (strncmp(a, "abX", 2) != 0) { return 3; }
			if (strlen(a) != 3) { return 4; }
			return 0;
		}`)
	wantExit(t, res, 0)
}

func TestRunStrcatAndStrncpy(t *testing.T) {
	res := run(t, `
		int main() {
			char a[16];
			strcpy(a, "ab");
			strcat(a, "cd");
			if (strcmp(a, "abcd") != 0) { return 1; }
			strncpy(a, "wxyz", 3);
			if (strcmp(a, "wx") != 0) { return 2; }
			return 0;
		}`)
	wantExit(t, res, 0)
}

func TestRunInputBuiltins(t *testing.T) {
	res := run(t, `
		int main() {
			char buf[32];
			int n; int x;
			n = read_line(buf);
			x = read_int();
			if (input_avail()) { return 100; }
			print_str(buf);
			print_int(x + n);
			return atoi(buf);
		}`, "123abc", "7")
	wantExit(t, res, 123)
	if len(res.Output) != 2 || res.Output[0] != "123abc" || res.Output[1] != "13" {
		t.Errorf("output = %v", res.Output)
	}
}

func TestRunReadLineEOF(t *testing.T) {
	res := run(t, `
		int main() {
			char buf[8];
			if (read_line(buf) < 0) { return 5; }
			return 0;
		}`)
	wantExit(t, res, 5)
}

func TestRunReadLineN(t *testing.T) {
	res := run(t, `
		int main() {
			char buf[4];
			read_line_n(buf, 4);
			return strlen(buf);
		}`, "abcdefgh")
	wantExit(t, res, 3) // truncated to 3 chars + NUL
}

func TestRunMemset(t *testing.T) {
	res := run(t, `
		int main() {
			char b[8];
			memset(b, 'x', 7);
			b[7] = 0;
			return strlen(b);
		}`)
	wantExit(t, res, 7)
}

func TestRunExitProg(t *testing.T) {
	res := run(t, `
		int main() {
			exit_prog(9);
			return 1;
		}`)
	wantExit(t, res, 9)
}

func TestBufferOverflowClobbersAdjacentLocal(t *testing.T) {
	// The overflow vector: str and user are adjacent in the frame;
	// copying a long input into str rewrites user (paper Figure 1).
	res := run(t, `
		int main() {
			char str[8];
			char user[8];
			strcpy(user, "guest");
			read_line(str);
			if (strcmp(user, "admin") == 0) { return 77; }
			return 1;
		}`, "AAAAAAAAadmin")
	wantExit(t, res, 77)
}

func TestDivByZeroFaults(t *testing.T) {
	res := run(t, `
		int main() {
			int z;
			z = 0;
			return 5 / z;
		}`)
	if res.Status != Faulted || !errors.Is(res.Fault, ErrDivZero) {
		t.Fatalf("status = %v fault = %v", res.Status, res.Fault)
	}
}

func TestNullDerefFaults(t *testing.T) {
	res := run(t, `
		int main() {
			int* p;
			p = 0;
			return *p;
		}`)
	if res.Status != Faulted || !errors.Is(res.Fault, ErrNull) {
		t.Fatalf("fault = %v", res.Fault)
	}
}

func TestWildPointerFaults(t *testing.T) {
	res := run(t, `
		int main() {
			int* p;
			p = 0;
			p = p + 999999999;
			return *p;
		}`)
	if res.Status != Faulted {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestStepLimit(t *testing.T) {
	p := compile(t, `int main() { while (1) { } return 0; }`)
	cfg := DefaultConfig
	cfg.MaxSteps = 1000
	res := New(p, cfg, nil).Run()
	if res.Status != StepLimit {
		t.Fatalf("status = %v, want step-limit", res.Status)
	}
	if res.Steps != 1000 {
		t.Errorf("steps = %d", res.Steps)
	}
}

func TestRecursionDepthFaults(t *testing.T) {
	res := run(t, `
		int down(int n) { return down(n+1); }
		int main() { return down(0); }`)
	if res.Status != Faulted {
		t.Fatalf("status = %v", res.Status)
	}
	if !errors.Is(res.Fault, ErrCallDepth) && !errors.Is(res.Fault, ErrStack) {
		t.Fatalf("fault = %v", res.Fault)
	}
}

func TestNoMain(t *testing.T) {
	p := compile(t, `void f() { }`)
	res := New(p, DefaultConfig, nil).Run()
	if !errors.Is(res.Fault, ErrNoMain) {
		t.Fatalf("fault = %v", res.Fault)
	}
}

func TestBranchTraceRecorded(t *testing.T) {
	res := run(t, `
		int main() {
			int i;
			for (i = 0; i < 3; i++) { }
			return 0;
		}`)
	// Loop condition: 3 taken + 1 not-taken.
	if len(res.Branches) != 4 {
		t.Fatalf("branch events = %d, want 4", len(res.Branches))
	}
	takens := 0
	for _, b := range res.Branches {
		if b.Taken {
			takens++
		}
	}
	if takens != 3 {
		t.Errorf("taken = %d, want 3", takens)
	}
}

func TestHooksFire(t *testing.T) {
	p := compile(t, `
		int helper(int a) { if (a > 0) { return a; } return -a; }
		int main() { return helper(-5); }`)
	v := New(p, DefaultConfig, nil)
	var calls, rets, branches, instrs, steps int
	v.Hooks = Hooks{
		OnBranch: func(br *ir.Instr, taken bool) { branches++ },
		OnCall:   func(fn *ir.Func) { calls++ },
		OnRet:    func(fn *ir.Func) { rets++ },
		OnInstr:  func(in *ir.Instr, addr uint64, size int) { instrs++ },
		OnStep:   func(step uint64) { steps++ },
	}
	res := v.Run()
	wantExit(t, res, 5)
	if calls != 2 { // main + helper
		t.Errorf("calls = %d, want 2", calls)
	}
	if rets != 2 {
		t.Errorf("rets = %d, want 2", rets)
	}
	if branches != 1 {
		t.Errorf("branches = %d, want 1", branches)
	}
	if uint64(instrs) != res.Steps {
		t.Errorf("OnInstr fired %d times for %d steps", instrs, res.Steps)
	}
	if steps == 0 {
		t.Error("OnStep never fired")
	}
}

func TestPokeTampersVariable(t *testing.T) {
	// Corrupt `secret` mid-run via the OnStep hook and observe the
	// control-flow change.
	// The noop user call forces a reload of the global (user calls may
	// write globals), so the tampered memory value reaches the branch.
	p := compile(t, `
		int secret;
		void barrier() { }
		int main() {
			secret = 1;
			barrier();
			if (secret == 1) { return 10; }
			return 20;
		}`)
	var secretObj *ir.Object
	for _, o := range p.Objects {
		if o.Name == "secret" {
			secretObj = o
		}
	}
	v := New(p, DefaultConfig, nil)
	addr, ok := v.AddrOfObj(secretObj.ID)
	if !ok {
		t.Fatal("secret address unresolved")
	}
	// Poke right after the store to secret (const + store = 2 steps),
	// before the post-call reload.
	poked := false
	v.Hooks.OnStep = func(step uint64) {
		if !poked && step >= 2 {
			if err := v.Poke(addr, 999, 8); err != nil {
				t.Fatal(err)
			}
			poked = true
		}
	}
	res := v.Run()
	wantExit(t, res, 20)
}

func TestPeekPokeBounds(t *testing.T) {
	p := compile(t, `int main() { return 0; }`)
	v := New(p, DefaultConfig, nil)
	if err := v.Poke(uint64(len(v.mem)), 1, 8); err == nil {
		t.Error("poke past end must fail")
	}
	if _, err := v.Peek(uint64(len(v.mem))-4, 8); err == nil {
		t.Error("peek past end must fail")
	}
	if err := v.Poke(0x2000, 42, 8); err != nil {
		t.Error(err)
	}
	if got, _ := v.Peek(0x2000, 8); got != 42 {
		t.Errorf("peek = %d", got)
	}
}

func TestAddrOfObjFrameResolution(t *testing.T) {
	p := compile(t, `
		int helper() {
			int local;
			local = 3;
			return local;
		}
		int main() { return helper(); }`)
	var localObj *ir.Object
	for _, o := range p.Objects {
		if strings.HasSuffix(o.Name, ".local") {
			localObj = o
		}
	}
	v := New(p, DefaultConfig, nil)
	if _, ok := v.AddrOfObj(localObj.ID); ok {
		t.Error("local of inactive function must not resolve")
	}
	resolved := false
	v.Hooks.OnCall = func(fn *ir.Func) {
		if fn.Name == "helper" {
			if _, ok := v.AddrOfObj(localObj.ID); !ok {
				t.Error("local of active function must resolve")
			}
			resolved = true
		}
	}
	v.Run()
	if !resolved {
		t.Error("helper never entered")
	}
}

func TestValueContextLogicalBothSides(t *testing.T) {
	res := run(t, `
		int main() {
			int a; int b; int c;
			a = 3; b = 0;
			c = (a && b) + (a || b) * 10;
			return c;
		}`)
	wantExit(t, res, 10)
}

func TestShortCircuitConditionSemantics(t *testing.T) {
	res := run(t, `
		int calls;
		int bump() { calls = calls + 1; return 1; }
		int main() {
			if (0 && bump()) { }
			if (1 || bump()) { }
			return calls;
		}`)
	wantExit(t, res, 0)
}

func TestCharTruncationAndZeroExtension(t *testing.T) {
	res := run(t, `
		int main() {
			char c;
			c = 300; // truncates to 44
			return c;
		}`)
	wantExit(t, res, 44)
}

func TestOutputHelper(t *testing.T) {
	p := compile(t, `int main() { print_int(1); print_int(2); return 0; }`)
	v := New(p, DefaultConfig, nil)
	v.Run()
	out := v.Output()
	if len(out) != 2 || out[0] != "1" || out[1] != "2" {
		t.Errorf("output = %v", out)
	}
}

func TestGlobalStringDataPlacement(t *testing.T) {
	p := compile(t, `int main() { return strlen("hello"); }`)
	v := New(p, DefaultConfig, nil)
	res := v.Run()
	wantExit(t, res, 5)
}

func TestReadOnlyStringSegment(t *testing.T) {
	// Writing through a pointer into a string literal faults: the
	// paper's machine model maps static constants read-only.
	res := run(t, `
		int main() {
			char* p;
			p = "const";
			p[0] = 'X';
			return 0;
		}`)
	if res.Status != Faulted || !errors.Is(res.Fault, ErrReadOnly) {
		t.Fatalf("status=%v fault=%v, want read-only fault", res.Status, res.Fault)
	}
}

func TestReadOnlyViaStrcpy(t *testing.T) {
	res := run(t, `
		int main() {
			char* p;
			p = "target";
			strcpy(p, "boom");
			return 0;
		}`)
	if res.Status != Faulted || !errors.Is(res.Fault, ErrReadOnly) {
		t.Fatalf("status=%v fault=%v", res.Status, res.Fault)
	}
}

func TestReadOnlyViaMemset(t *testing.T) {
	res := run(t, `
		int main() {
			char* p;
			p = "zzz";
			memset(p, 0, 2);
			return 0;
		}`)
	if res.Status != Faulted || !errors.Is(res.Fault, ErrReadOnly) {
		t.Fatalf("status=%v fault=%v", res.Status, res.Fault)
	}
}

func TestStringReadsStillWork(t *testing.T) {
	res := run(t, `
		int main() {
			char buf[16];
			strcpy(buf, "hello");
			return strcmp(buf, "hello");
		}`)
	wantExit(t, res, 0)
}
