package vm

import (
	"fmt"
	"testing"
)

// TestExpressionSemantics table-drives one expression per case through
// the full pipeline (parse, lower, forward, execute) and compares
// against the expected C-semantics value.
func TestExpressionSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		// Arithmetic and precedence.
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 3 - 2", 5},
		{"17 / 5", 3},
		{"-17 / 5", -3},
		{"17 % 5", 2},
		{"-17 % 5", -2},
		{"2 * -3", -6},
		// Unary.
		{"-(-5)", 5},
		{"~0", -1},
		{"~5 + 6", 0},
		{"!0", 1},
		{"!7", 0},
		{"!!9", 1},
		// Bitwise.
		{"12 & 10", 8},
		{"12 | 10", 14},
		{"12 ^ 10", 6},
		{"1 << 10", 1024},
		{"1024 >> 3", 128},
		{"5 & 3 | 4", 5},
		{"5 ^ 3 & 1", 4},
		// Comparisons produce 0/1.
		{"3 < 4", 1},
		{"4 < 3", 0},
		{"3 <= 3", 1},
		{"3 > 3", 0},
		{"3 >= 3", 1},
		{"3 == 3", 1},
		{"3 != 3", 0},
		{"(1 < 2) + (2 < 1)", 1},
		// Logical value context (both sides evaluated).
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 0", 0},
		{"0 || 5", 1},
		{"(3 < 4) && (4 < 5)", 1},
		// Shifts with larger counts mask like hardware.
		{"1 << 3 << 2", 32},
		// Char literals are small ints.
		{"'A'", 65},
		{"'a' - 'A'", 32},
		{"'0' + 9 - '9'", 0},
	}
	for _, c := range cases {
		src := fmt.Sprintf("int main() { return %s; }", c.expr)
		res := run(t, src)
		if res.Status != Exited {
			t.Errorf("%s: %v (%v)", c.expr, res.Status, res.Fault)
			continue
		}
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.expr, res.ExitCode, c.want)
		}
	}
}

// TestStatementSemantics covers control-flow lowering corners.
func TestStatementSemantics(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int64
	}{
		{"nested-if", `
			int x; x = 5;
			if (x > 0) { if (x > 3) { return 1; } return 2; }
			return 3;`, 1},
		{"else-chain", `
			int x; x = 2;
			if (x == 1) { return 10; }
			else if (x == 2) { return 20; }
			else { return 30; }`, 20},
		{"while-sum", `
			int n; int s; n = 5; s = 0;
			while (n > 0) { s = s + n; n = n - 1; }
			return s;`, 15},
		{"for-decl-scope", `
			int s; s = 0;
			for (int i = 0; i < 3; i++) { s = s + i; }
			for (int i = 0; i < 3; i++) { s = s + i; }
			return s;`, 6},
		{"nested-loops", `
			int s; s = 0;
			for (int i = 0; i < 3; i++) {
				for (int j = 0; j < 3; j++) {
					if (j > i) { continue; }
					s = s + 1;
				}
			}
			return s;`, 6},
		{"break-inner-only", `
			int s; s = 0;
			for (int i = 0; i < 3; i++) {
				for (int j = 0; j < 10; j++) {
					if (j == 2) { break; }
					s = s + 1;
				}
			}
			return s;`, 6},
		{"chained-assign", `
			int a; int b; int c;
			a = b = c = 4;
			return a + b + c;`, 12},
		{"compound-assign", `
			int x; x = 10;
			x += 5; x -= 3; x++; ++x; x--;
			return x;`, 13},
		{"empty-stmt", `
			;
			return 9;`, 9},
		{"short-circuit-and", `
			int x; x = 0;
			if (x != 0 && 10 / x > 1) { return 1; }
			return 2;`, 2}, // division guarded by short circuit
		{"short-circuit-or", `
			int x; x = 0;
			if (x == 0 || 10 / x > 1) { return 1; }
			return 2;`, 1},
		{"not-in-cond", `
			int x; x = 0;
			if (!x) { return 5; }
			return 6;`, 5},
		{"cmp-chain-mixed", `
			int a; a = 7;
			if (a >= 5 && a <= 9 && a != 8) { return 1; }
			return 0;`, 1},
	}
	for _, c := range cases {
		src := fmt.Sprintf("int main() { %s }", c.body)
		res := run(t, src)
		if res.Status != Exited {
			t.Errorf("%s: %v (%v)", c.name, res.Status, res.Fault)
			continue
		}
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.name, res.ExitCode, c.want)
		}
	}
}

// TestPointerSemantics covers address/indirection lowering corners.
func TestPointerSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"double-pointer", `
			int main() {
				int x; int* p; int** pp;
				x = 3; p = &x; pp = &p;
				**pp = 8;
				return x;
			}`, 8},
		{"pointer-walk", `
			int main() {
				int a[4];
				int* p;
				a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
				p = a;
				p = p + 2;
				return *p + *(p + 1);
			}`, 7},
		{"pointer-difference", `
			int main() {
				int a[8];
				int* p; int* q;
				p = &a[1]; q = &a[6];
				return q - p;
			}`, 5},
		{"addr-of-element", `
			int main() {
				int a[3];
				a[1] = 9;
				return *(&a[1]);
			}`, 9},
		{"char-pointer-string", `
			int main() {
				char* s;
				s = "hi";
				return s[0] + s[1];
			}`, int64('h' + 'i')},
		{"pointer-through-call", `
			void twice(int* p) { *p = *p * 2; }
			int main() {
				int v; v = 21;
				twice(&v);
				return v;
			}`, 42},
		{"array-as-param", `
			int sum3(int* a) { return a[0] + a[1] + a[2]; }
			int main() {
				int xs[3];
				xs[0] = 1; xs[1] = 2; xs[2] = 3;
				return sum3(xs);
			}`, 6},
		{"negated-variable", `
			int main() {
				int x; x = 7;
				return -x + 10;
			}`, 3},
		{"bnot-variable", `
			int main() {
				int x; x = 0;
				return ~x;
			}`, -1},
		{"not-variable", `
			int main() {
				int x; x = 3;
				return !x;
			}`, 0},
	}
	for _, c := range cases {
		res := run(t, c.src)
		if res.Status != Exited {
			t.Errorf("%s: %v (%v)", c.name, res.Status, res.Fault)
			continue
		}
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.name, res.ExitCode, c.want)
		}
	}
}

// TestCharSemantics: chars are unsigned bytes in memory.
func TestCharSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"truncate-store", `
			int main() { char c; c = 256 + 7; return c; }`, 7},
		{"zero-extend-load", `
			int main() { char c; c = 200; return c; }`, 200},
		{"char-in-arith", `
			int main() { char c; c = 'z'; return c * 2; }`, 244},
		{"char-array-bytes", `
			int main() {
				char b[4];
				b[0] = 255; b[1] = 1;
				return b[0] + b[1];
			}`, 256},
	}
	for _, c := range cases {
		res := run(t, c.src)
		if res.Status != Exited {
			t.Errorf("%s: %v (%v)", c.name, res.Status, res.Fault)
			continue
		}
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.name, res.ExitCode, c.want)
		}
	}
}

// TestCallSemantics: evaluation order, recursion, void calls.
func TestCallSemantics(t *testing.T) {
	res := run(t, `
		int order;
		int mark(int v) { order = order * 10 + v; return v; }
		int sub(int a, int b) { return a - b; }
		int main() {
			int r;
			order = 0;
			r = sub(mark(1), mark(2));
			if (order != 12) { return 100; }
			return r + 10;
		}`)
	wantExit(t, res, 9) // args left-to-right, 1-2 = -1
}

func TestMutualHelperChain(t *testing.T) {
	res := run(t, `
		int c(int x) { return x + 1; }
		int b(int x) { return c(x) * 2; }
		int a(int x) { return b(x) + c(x); }
		int main() { return a(3); }`)
	wantExit(t, res, 12) // b(3)=8, c(3)=4
}

// TestGlobalsAcrossCalls: callees observe and mutate globals.
func TestGlobalsAcrossCalls(t *testing.T) {
	res := run(t, `
		int g = 5;
		void bump() { g = g + 1; }
		int get() { return g; }
		int main() {
			bump(); bump();
			return get();
		}`)
	wantExit(t, res, 7)
}

// TestSwitchSemantics: C switch with fallthrough, break and default.
func TestSwitchSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"plain-dispatch", `
			int main() {
				int x; int r;
				x = 2; r = 0;
				switch (x) {
				case 1: r = 10; break;
				case 2: r = 20; break;
				case 3: r = 30; break;
				}
				return r;
			}`, 20},
		{"fallthrough", `
			int main() {
				int r; r = 0;
				switch (2) {
				case 1: r = r + 1;
				case 2: r = r + 2;
				case 3: r = r + 4;
				}
				return r;
			}`, 6}, // enters at 2, falls into 3
		{"default-taken", `
			int main() {
				switch (99) {
				case 1: return 1;
				default: return 42;
				case 2: return 2;
				}
				return 0;
			}`, 42},
		{"no-default-miss", `
			int main() {
				int r; r = 7;
				switch (99) {
				case 1: r = 1; break;
				}
				return r;
			}`, 7},
		{"shared-labels", `
			int main() {
				switch (5) {
				case 4:
				case 5:
				case 6: return 1;
				}
				return 0;
			}`, 1},
		{"negative-and-char-labels", `
			int main() {
				int x; x = -3;
				switch (x) {
				case -3: return 'A';
				case 'B': return 2;
				}
				return 0;
			}`, 65},
		{"switch-in-loop-break", `
			int main() {
				int i; int s; s = 0;
				for (i = 0; i < 5; i++) {
					switch (i % 2) {
					case 0: s = s + 10; break;
					case 1: s = s + 1; break;
					}
				}
				return s;
			}`, 32},
		{"continue-through-switch", `
			int main() {
				int i; int s; s = 0;
				for (i = 0; i < 6; i++) {
					switch (i) {
					case 2: continue;
					case 4: continue;
					}
					s = s + i;
				}
				return s;
			}`, 0 + 1 + 3 + 5},
		{"tag-evaluated-once", `
			int calls;
			int tag() { calls = calls + 1; return 2; }
			int main() {
				switch (tag()) {
				case 1: return 100;
				case 2: return calls;
				}
				return 0;
			}`, 1},
		{"return-inside-case", `
			int main() {
				switch (1) {
				case 1: return 11;
				case 2: return 22;
				}
				return 0;
			}`, 11},
	}
	for _, c := range cases {
		res := run(t, c.src)
		if res.Status != Exited {
			t.Errorf("%s: %v (%v)", c.name, res.Status, res.Fault)
			continue
		}
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.name, res.ExitCode, c.want)
		}
	}
}

// TestStructSemantics: struct fields, pointers to structs, split and
// blob representations.
func TestStructSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"split-fields", `
			struct Session { int authed; int level; };
			int main() {
				struct Session s;
				s.authed = 1;
				s.level = 41;
				return s.authed + s.level;
			}`, 42},
		{"global-struct", `
			struct Counter { int hits; int misses; };
			struct Counter c;
			int main() {
				c.hits = 3;
				c.misses = 4;
				return c.hits * 10 + c.misses;
			}`, 34},
		{"struct-pointer-arrow", `
			struct Box { int v; int w; };
			void fill(struct Box* b) {
				b->v = 7;
				b->w = 8;
			}
			int main() {
				struct Box b;
				fill(&b);
				return b.v * 10 + b.w;
			}`, 78},
		{"char-array-field", `
			struct User { int uid; char name[8]; };
			int main() {
				struct User u;
				u.uid = 5;
				strcpy(u.name, "bob");
				if (strcmp(u.name, "bob") == 0) { return u.uid; }
				return 0;
			}`, 5},
		{"field-addr", `
			struct P { int x; int y; };
			int main() {
				struct P p;
				int* q;
				p.x = 1;
				q = &p.y;
				*q = 9;
				return p.x + p.y;
			}`, 10},
		{"mixed-field-offsets", `
			struct M { char tag; int big; char c2; int big2; };
			int main() {
				struct M m;
				m.tag = 7;
				m.big = 1000;
				m.c2 = 3;
				m.big2 = 2000;
				return m.tag + m.big + m.c2 + m.big2;
			}`, 3010},
		{"deref-member", `
			struct B { int v; int u; };
			int main() {
				struct B b;
				struct B* p;
				b.u = 31;
				p = &b;
				return (*p).u + p->u;
			}`, 62},
		{"struct-in-branches", `
			struct S { int flag; int n; };
			int main() {
				struct S s;
				s.flag = 1;
				s.n = 0;
				if (s.flag == 1) { s.n = s.n + 5; }
				if (s.flag == 1) { s.n = s.n + 6; }
				return s.n;
			}`, 11},
	}
	for _, c := range cases {
		res := run(t, c.src)
		if res.Status != Exited {
			t.Errorf("%s: %v (%v)", c.name, res.Status, res.Fault)
			continue
		}
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.name, res.ExitCode, c.want)
		}
	}
}
