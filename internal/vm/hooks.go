package vm

import "repro/internal/ir"

// AddHooks composes h with any hooks already installed, so several
// observers (IPDS runtime, attack injector, CPU timing model) can watch
// one execution. Existing hooks run first.
func (v *VM) AddHooks(h Hooks) {
	old := v.Hooks
	v.Hooks = Hooks{
		OnBranch: chain2(old.OnBranch, h.OnBranch),
		OnCall:   chain1(old.OnCall, h.OnCall),
		OnRet:    chain1(old.OnRet, h.OnRet),
		OnInstr:  chain3(old.OnInstr, h.OnInstr),
		OnStep:   chainStep(old.OnStep, h.OnStep),
	}
}

func chain1(a, b func(*ir.Func)) func(*ir.Func) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(f *ir.Func) { a(f); b(f) }
}

func chain2(a, b func(*ir.Instr, bool)) func(*ir.Instr, bool) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(in *ir.Instr, taken bool) { a(in, taken); b(in, taken) }
}

func chain3(a, b func(*ir.Instr, uint64, int)) func(*ir.Instr, uint64, int) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(in *ir.Instr, addr uint64, size int) { a(in, addr, size); b(in, addr, size) }
}

func chainStep(a, b func(uint64)) func(uint64) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(s uint64) { a(s); b(s) }
}
