package vm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadBuiltin reports an unknown builtin at runtime (cannot happen
// for sema-checked programs).
var ErrBadBuiltin = errors.New("unknown builtin")

// cString reads a NUL-terminated string at addr, bounded by memory.
func (v *VM) cString(addr uint64) (string, bool) {
	if addr < nullBoundary || addr >= uint64(len(v.mem)) {
		return "", false
	}
	end := addr
	for end < uint64(len(v.mem)) && v.mem[end] != 0 {
		end++
	}
	if end == uint64(len(v.mem)) {
		return "", false
	}
	return string(v.mem[addr:end]), true
}

func (v *VM) nextLine() (string, bool) {
	if v.inPos >= len(v.input) {
		return "", false
	}
	s := v.input[v.inPos]
	v.inPos++
	return s, true
}

func (v *VM) flushOut() {
	if len(v.outBuf) > 0 {
		v.output = append(v.output, string(v.outBuf))
		v.outBuf = v.outBuf[:0]
	}
}

func (v *VM) emit(s string) {
	for _, c := range []byte(s) {
		if c == '\n' {
			v.output = append(v.output, string(v.outBuf))
			v.outBuf = v.outBuf[:0]
			continue
		}
		v.outBuf = append(v.outBuf, c)
	}
}

// callBuiltin executes one of the modelled libc functions. Writers
// deliberately mirror their C counterparts' (lack of) bounds checking:
// strcpy/strcat/read_line copy until NUL with no limit, which is the
// overflow vector the attack experiments exploit.
func (v *VM) callBuiltin(name string, args []int64) (int64, error) {
	switch name {
	case "strcmp", "strncmp":
		a, ok1 := v.cString(uint64(args[0]))
		b, ok2 := v.cString(uint64(args[1]))
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("%w in %s", ErrOOB, name)
		}
		if name == "strncmp" {
			n := int(args[2])
			if n < 0 {
				n = 0
			}
			if len(a) > n {
				a = a[:n]
			}
			if len(b) > n {
				b = b[:n]
			}
		}
		return int64(strings.Compare(a, b)), nil

	case "strcpy":
		src, ok := v.cString(uint64(args[1]))
		if !ok {
			return 0, fmt.Errorf("%w in strcpy src", ErrOOB)
		}
		return 0, v.copyOut(uint64(args[0]), src)

	case "strcat":
		src, ok := v.cString(uint64(args[1]))
		if !ok {
			return 0, fmt.Errorf("%w in strcat src", ErrOOB)
		}
		dst, ok := v.cString(uint64(args[0]))
		if !ok {
			return 0, fmt.Errorf("%w in strcat dst", ErrOOB)
		}
		return 0, v.copyOut(uint64(args[0])+uint64(len(dst)), src)

	case "strncpy":
		src, ok := v.cString(uint64(args[1]))
		if !ok {
			return 0, fmt.Errorf("%w in strncpy src", ErrOOB)
		}
		n := int(args[2])
		if n <= 0 {
			return 0, nil
		}
		if len(src) >= n {
			src = src[:n-1]
		}
		return 0, v.copyOut(uint64(args[0]), src)

	case "strlen":
		s, ok := v.cString(uint64(args[0]))
		if !ok {
			return 0, fmt.Errorf("%w in strlen", ErrOOB)
		}
		return int64(len(s)), nil

	case "atoi":
		s, ok := v.cString(uint64(args[0]))
		if !ok {
			return 0, fmt.Errorf("%w in atoi", ErrOOB)
		}
		return atoi(s), nil

	case "memset":
		addr := uint64(args[0])
		n := args[2]
		if n < 0 {
			n = 0
		}
		if addr < nullBoundary || addr+uint64(n) > uint64(len(v.mem)) {
			return 0, fmt.Errorf("%w in memset", ErrOOB)
		}
		if v.readOnly(addr, int(n)) {
			return 0, fmt.Errorf("%w in memset", ErrReadOnly)
		}
		b := byte(args[1])
		for i := int64(0); i < n; i++ {
			v.mem[addr+uint64(i)] = b
		}
		return 0, nil

	case "print_str":
		s, ok := v.cString(uint64(args[0]))
		if !ok {
			return 0, fmt.Errorf("%w in print_str", ErrOOB)
		}
		v.emit(s + "\n")
		return 0, nil

	case "print_int":
		v.emit(strconv.FormatInt(args[0], 10) + "\n")
		return 0, nil

	case "read_line":
		line, ok := v.nextLine()
		if !ok {
			// EOF: store an empty string, return -1 like a failed gets.
			if err := v.copyOut(uint64(args[0]), ""); err != nil {
				return 0, err
			}
			return -1, nil
		}
		if err := v.copyOut(uint64(args[0]), line); err != nil {
			return 0, err
		}
		return int64(len(line)), nil

	case "read_line_n":
		line, ok := v.nextLine()
		n := int(args[1])
		if !ok {
			line = ""
		}
		if n <= 0 {
			return -1, nil
		}
		if len(line) >= n {
			line = line[:n-1]
		}
		if err := v.copyOut(uint64(args[0]), line); err != nil {
			return 0, err
		}
		if !ok {
			return -1, nil
		}
		return int64(len(line)), nil

	case "read_int":
		line, ok := v.nextLine()
		if !ok {
			return -1, nil
		}
		return atoi(line), nil

	case "input_avail":
		if v.inPos < len(v.input) {
			return 1, nil
		}
		return 0, nil

	case "exit_prog":
		v.finish(args[0])
		return 0, nil
	}
	return 0, fmt.Errorf("%w: %s", ErrBadBuiltin, name)
}

// copyOut writes s plus a NUL terminator to addr with C-style abandon:
// no length limit beyond the end of memory itself (and the hardware's
// read-only segments).
func (v *VM) copyOut(addr uint64, s string) error {
	if addr < nullBoundary || addr+uint64(len(s))+1 > uint64(len(v.mem)) {
		return fmt.Errorf("%w in string copy to %#x", ErrOOB, addr)
	}
	if v.readOnly(addr, len(s)+1) {
		return fmt.Errorf("%w in string copy to %#x", ErrReadOnly, addr)
	}
	copy(v.mem[addr:], s)
	v.mem[addr+uint64(len(s))] = 0
	return nil
}

// atoi parses a leading optionally-signed decimal prefix, like C atoi.
func atoi(s string) int64 {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	neg := false
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	var n int64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int64(s[i]-'0')
		i++
	}
	if neg {
		return -n
	}
	return n
}
