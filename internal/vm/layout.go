package vm

import (
	"fmt"

	"repro/internal/ir"
)

// Layout fixes the data-memory addresses of a program: globals and
// string constants get static addresses; locals and parameters get
// offsets within their function's stack frame. Frames are laid out in
// declaration order at ascending addresses, so an unbounded copy into a
// buffer overruns into the variables declared after it — the classic
// stack-overflow behaviour the paper's attacks rely on (Figure 1).
type Layout struct {
	prog *ir.Program

	// staticAddr is the absolute address of globals and strings
	// (0 for frame-resident objects).
	staticAddr []uint64
	// frameOff is the offset of locals/params inside their frame.
	frameOff []uint64

	frameSize  map[*ir.Func]uint64
	globalBase uint64
	globalEnd  uint64
	stackBase  uint64
}

func align(v uint64, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

func objAlign(o *ir.Object) uint64 {
	if o.Kind == ir.ObjString {
		return 1
	}
	if o.Type.Size() == 1 {
		return 1
	}
	return 8
}

// NewLayout computes the memory layout for prog.
func NewLayout(prog *ir.Program, globalBase, stackBase uint64) *Layout {
	l := &Layout{
		prog:       prog,
		staticAddr: make([]uint64, len(prog.Objects)),
		frameOff:   make([]uint64, len(prog.Objects)),
		frameSize:  map[*ir.Func]uint64{},
		globalBase: globalBase,
		stackBase:  stackBase,
	}
	addr := globalBase
	for _, o := range prog.Objects {
		if o.Kind != ir.ObjGlobal && o.Kind != ir.ObjString {
			continue
		}
		addr = align(addr, objAlign(o))
		l.staticAddr[o.ID] = addr
		addr += uint64(o.Size())
	}
	l.globalEnd = addr
	for _, fn := range prog.Funcs {
		off := uint64(0)
		place := func(id ir.ObjID) {
			o := prog.Object(id)
			off = align(off, objAlign(o))
			l.frameOff[id] = off
			off += uint64(o.Size())
		}
		for _, id := range fn.Params {
			place(id)
		}
		for _, id := range fn.Locals {
			place(id)
		}
		l.frameSize[fn] = align(off, 8)
	}
	return l
}

// FrameSize returns the frame size of fn in bytes.
func (l *Layout) FrameSize(fn *ir.Func) uint64 { return l.frameSize[fn] }

// StaticAddr returns the absolute address of a global or string object.
func (l *Layout) StaticAddr(id ir.ObjID) (uint64, error) {
	o := l.prog.Object(id)
	if o.Kind != ir.ObjGlobal && o.Kind != ir.ObjString {
		return 0, fmt.Errorf("vm: object %s is frame-resident", o.Name)
	}
	return l.staticAddr[id], nil
}

// FrameOff returns the frame-relative offset of a local or parameter.
func (l *Layout) FrameOff(id ir.ObjID) uint64 { return l.frameOff[id] }

// GlobalEnd returns the first address past the static data segment.
func (l *Layout) GlobalEnd() uint64 { return l.globalEnd }
