// Package vm executes lowered IR programs over a flat byte-addressed
// memory, replacing the paper's Bochs/Linux execution substrate. The
// interpreter exposes hooks for every committed branch, call, return
// and executed instruction, through which the IPDS runtime, the attack
// injector and the CPU timing model observe execution without the VM
// depending on any of them.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ir"
)

// Config parameterises a VM instance.
type Config struct {
	MemSize    uint64 // total data memory, bytes
	GlobalBase uint64 // static segment base
	StackBase  uint64 // initial stack pointer (stack grows down)
	MaxSteps   uint64 // instruction budget (0 = default)

	// RecordBranches keeps the full branch trace in Result.Branches
	// (needed by the attack experiments; off for pure timing runs).
	RecordBranches bool
}

// DefaultConfig is a 1 MiB machine with a generous step budget.
var DefaultConfig = Config{
	MemSize:        1 << 20,
	GlobalBase:     0x10000,
	StackBase:      1 << 20,
	MaxSteps:       50_000_000,
	RecordBranches: true,
}

// Hooks are observation points. Any field may be nil.
type Hooks struct {
	// OnBranch fires after a conditional branch resolves.
	OnBranch func(br *ir.Instr, taken bool)
	// OnCall fires after a user-function frame is pushed.
	OnCall func(fn *ir.Func)
	// OnRet fires before a user-function frame is popped.
	OnRet func(fn *ir.Func)
	// OnInstr fires before each instruction executes; addr/size are
	// meaningful for loads and stores (post address computation).
	OnInstr func(in *ir.Instr, addr uint64, size int)
	// OnStep fires once per executed instruction with the global step
	// counter, after the instruction completes. The attack injector
	// uses it to tamper memory at a chosen dynamic point.
	OnStep func(step uint64)
}

// BranchEvent is one dynamic conditional-branch outcome.
type BranchEvent struct {
	PC    uint64
	Taken bool
}

// Status describes how a run ended.
type Status int

// Run statuses.
const (
	Exited    Status = iota // main returned or exit_prog called
	Faulted                 // memory fault, division by zero, etc.
	StepLimit               // ran out of instruction budget
)

func (s Status) String() string {
	switch s {
	case Exited:
		return "exited"
	case Faulted:
		return "faulted"
	case StepLimit:
		return "step-limit"
	}
	return "?"
}

// Result summarises a run.
type Result struct {
	Status   Status
	ExitCode int64
	Fault    error
	Steps    uint64
	Output   []string
	Branches []BranchEvent
}

// Fault errors.
var (
	ErrOOB       = errors.New("memory access out of bounds")
	ErrNull      = errors.New("null-page access")
	ErrReadOnly  = errors.New("write to read-only memory")
	ErrDivZero   = errors.New("division by zero")
	ErrStack     = errors.New("stack overflow")
	ErrNoMain    = errors.New("program has no main function")
	ErrCallDepth = errors.New("call depth exceeded")
)

type frame struct {
	fn     *ir.Func
	blk    *ir.Block
	idx    int
	regs   []int64
	args   []int64
	base   uint64 // frame base address
	retDst ir.Reg // caller register receiving the return value
}

// VM is an interpreter instance. A VM is single-run: create a new one
// (or call Reset) per execution.
type VM struct {
	prog   *ir.Program
	layout *Layout
	cfg    Config
	Hooks  Hooks

	mem    []byte
	sp     uint64
	frames []frame

	input  []string
	inPos  int
	output []string
	outBuf []byte

	steps    uint64
	branches []BranchEvent
	roRanges [][2]uint64 // read-only segments (string constants)

	done   bool
	status Status
	exit   int64
	fault  error
}

const nullBoundary = 0x1000
const maxCallDepth = 512

// New creates a VM for prog with the given input lines.
func New(prog *ir.Program, cfg Config, input []string) *VM {
	if cfg.MemSize == 0 {
		cfg = DefaultConfig
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultConfig.MaxSteps
	}
	v := &VM{
		prog:   prog,
		layout: NewLayout(prog, cfg.GlobalBase, cfg.StackBase),
		cfg:    cfg,
		mem:    make([]byte, cfg.MemSize),
		sp:     cfg.StackBase,
		input:  input,
	}
	v.initStatics()
	// Machine-model assumption 3 of the paper: statically defined
	// constants are mapped read-only and the processor enforces it.
	for _, o := range prog.Objects {
		if o.Kind == ir.ObjString {
			base := v.layout.staticAddr[o.ID]
			v.roRanges = append(v.roRanges, [2]uint64{base, base + uint64(o.Size())})
		}
	}
	return v
}

// readOnly reports whether a program write to [addr, addr+size) lands
// in read-only memory.
func (v *VM) readOnly(addr uint64, size int) bool {
	end := addr + uint64(size)
	for _, r := range v.roRanges {
		if addr < r[1] && end > r[0] {
			return true
		}
	}
	return false
}

// Layout exposes the address layout (used by the attack injector to
// pick tamper victims).
func (v *VM) Layout() *Layout { return v.layout }

// Prog returns the program under execution.
func (v *VM) Prog() *ir.Program { return v.prog }

func (v *VM) initStatics() {
	for _, o := range v.prog.Objects {
		switch o.Kind {
		case ir.ObjGlobal:
			addr := v.layout.staticAddr[o.ID]
			if o.Type.IsScalar() {
				v.writeRaw(addr, o.Init, o.Type.Size())
			}
		case ir.ObjString:
			copy(v.mem[v.layout.staticAddr[o.ID]:], o.Data)
		}
	}
}

// Start prepares execution: it pushes main's frame and fires the entry
// hook. Use it with Step for externally driven execution (e.g. the
// context-switch experiments); Run calls it implicitly.
func (v *VM) Start() error {
	main := v.prog.ByName["main"]
	if main == nil {
		v.done = true
		v.status = Faulted
		v.fault = ErrNoMain
		return ErrNoMain
	}
	v.pushFrame(main, nil, ir.NoReg)
	if v.Hooks.OnCall != nil {
		v.Hooks.OnCall(main)
	}
	return nil
}

// Done reports whether execution has ended.
func (v *VM) Done() bool { return v.done }

// Result snapshots the run outcome; complete once Done reports true.
func (v *VM) Result() Result {
	return Result{
		Status:   v.status,
		ExitCode: v.exit,
		Fault:    v.fault,
		Steps:    v.steps,
		Output:   v.output,
		Branches: v.branches,
	}
}

// Run executes main to completion.
func (v *VM) Run() Result {
	if err := v.Start(); err != nil {
		return v.Result()
	}
	for !v.done {
		v.Step()
	}
	return v.Result()
}

func (v *VM) failf(err error, format string, args ...any) {
	v.done = true
	v.status = Faulted
	v.fault = fmt.Errorf("%w: %s (step %d)", err, fmt.Sprintf(format, args...), v.steps)
}

func (v *VM) finish(code int64) {
	v.done = true
	v.status = Exited
	v.exit = code
	v.flushOut()
}

func (v *VM) pushFrame(fn *ir.Func, args []int64, retDst ir.Reg) {
	if len(v.frames) >= maxCallDepth {
		v.failf(ErrCallDepth, "calling %s", fn.Name)
		return
	}
	size := v.layout.FrameSize(fn)
	if v.sp < size || v.sp-size < v.layout.GlobalEnd() {
		v.failf(ErrStack, "frame for %s", fn.Name)
		return
	}
	v.sp -= size
	base := v.sp
	// Zero the frame for deterministic uninitialised reads.
	for i := uint64(0); i < size; i++ {
		v.mem[base+i] = 0
	}
	v.frames = append(v.frames, frame{
		fn:     fn,
		blk:    fn.Entry,
		idx:    0,
		regs:   make([]int64, fn.NumRegs),
		args:   args,
		base:   base,
		retDst: retDst,
	})
}

func (v *VM) popFrame(ret int64) {
	top := v.frames[len(v.frames)-1]
	if v.Hooks.OnRet != nil {
		v.Hooks.OnRet(top.fn)
	}
	v.sp += v.layout.FrameSize(top.fn)
	v.frames = v.frames[:len(v.frames)-1]
	if len(v.frames) == 0 {
		v.finish(ret)
		return
	}
	caller := &v.frames[len(v.frames)-1]
	if top.retDst != ir.NoReg {
		caller.regs[top.retDst] = ret
	}
}

// objAddr resolves a direct object reference against the current frame.
func (v *VM) objAddr(id ir.ObjID) uint64 {
	o := v.prog.Object(id)
	if o.Kind == ir.ObjGlobal || o.Kind == ir.ObjString {
		return v.layout.staticAddr[id]
	}
	f := &v.frames[len(v.frames)-1]
	return f.base + v.layout.frameOff[id]
}

// AddrOfObj resolves an object to its current address: statics always,
// frame objects against the topmost activation of their owning
// function. ok is false when the function is not on the call stack.
func (v *VM) AddrOfObj(id ir.ObjID) (uint64, bool) {
	o := v.prog.Object(id)
	if o.Kind == ir.ObjGlobal || o.Kind == ir.ObjString {
		return v.layout.staticAddr[id], true
	}
	for i := len(v.frames) - 1; i >= 0; i-- {
		if v.frames[i].fn == o.Fn {
			return v.frames[i].base + v.layout.frameOff[id], true
		}
	}
	return 0, false
}

// ActiveObjects returns the memory-resident data objects currently
// addressable: all globals plus the locals and parameters of every
// frame on the call stack. The attack injector samples its tamper
// victims from this set. stackOnly restricts the set to frame-resident
// objects (the buffer-overflow attack model, which can only reach local
// stack data).
func (v *VM) ActiveObjects(stackOnly bool) []ir.ObjID {
	var out []ir.ObjID
	if !stackOnly {
		for _, o := range v.prog.Objects {
			if o.Kind == ir.ObjGlobal {
				out = append(out, o.ID)
			}
		}
	}
	for i := range v.frames {
		fn := v.frames[i].fn
		out = append(out, fn.Params...)
		out = append(out, fn.Locals...)
	}
	return out
}

func (v *VM) checkAddr(addr uint64, size int) bool {
	if addr < nullBoundary {
		v.failf(ErrNull, "address %#x", addr)
		return false
	}
	if addr+uint64(size) > uint64(len(v.mem)) {
		v.failf(ErrOOB, "address %#x size %d", addr, size)
		return false
	}
	return true
}

func (v *VM) writeRaw(addr uint64, val int64, size int) {
	if size == 1 {
		v.mem[addr] = byte(val)
		return
	}
	binary.LittleEndian.PutUint64(v.mem[addr:], uint64(val))
}

func (v *VM) readRaw(addr uint64, size int) int64 {
	if size == 1 {
		return int64(v.mem[addr])
	}
	return int64(binary.LittleEndian.Uint64(v.mem[addr:]))
}

// Poke writes a value directly into memory, bypassing program
// semantics: the attack injector's memory-tampering primitive.
func (v *VM) Poke(addr uint64, val int64, size int) error {
	if addr+uint64(size) > uint64(len(v.mem)) {
		return ErrOOB
	}
	v.writeRaw(addr, val, size)
	return nil
}

// Peek reads memory directly (diagnostics and attack setup).
func (v *VM) Peek(addr uint64, size int) (int64, error) {
	if addr+uint64(size) > uint64(len(v.mem)) {
		return 0, ErrOOB
	}
	return v.readRaw(addr, size), nil
}

// Step executes one instruction.
func (v *VM) Step() {
	if v.done {
		return
	}
	if v.steps >= v.cfg.MaxSteps {
		v.done = true
		v.status = StepLimit
		v.flushOut()
		return
	}
	f := &v.frames[len(v.frames)-1]
	in := f.blk.Instrs[f.idx]
	v.steps++
	f.idx++ // default fallthrough; control-flow ops overwrite

	switch in.Op {
	case ir.OpConst:
		f.regs[in.Dst] = in.Imm
	case ir.OpMov:
		f.regs[in.Dst] = f.regs[in.A]
	case ir.OpParam:
		if int(in.Imm) < len(f.args) {
			f.regs[in.Dst] = f.args[in.Imm]
		}
	case ir.OpAdd:
		f.regs[in.Dst] = f.regs[in.A] + f.regs[in.B]
	case ir.OpSub:
		f.regs[in.Dst] = f.regs[in.A] - f.regs[in.B]
	case ir.OpMul:
		f.regs[in.Dst] = f.regs[in.A] * f.regs[in.B]
	case ir.OpDiv:
		if f.regs[in.B] == 0 {
			v.failf(ErrDivZero, "at %#x", in.PC)
			return
		}
		f.regs[in.Dst] = f.regs[in.A] / f.regs[in.B]
	case ir.OpRem:
		if f.regs[in.B] == 0 {
			v.failf(ErrDivZero, "at %#x", in.PC)
			return
		}
		f.regs[in.Dst] = f.regs[in.A] % f.regs[in.B]
	case ir.OpAnd:
		f.regs[in.Dst] = f.regs[in.A] & f.regs[in.B]
	case ir.OpOr:
		f.regs[in.Dst] = f.regs[in.A] | f.regs[in.B]
	case ir.OpXor:
		f.regs[in.Dst] = f.regs[in.A] ^ f.regs[in.B]
	case ir.OpShl:
		f.regs[in.Dst] = f.regs[in.A] << (uint64(f.regs[in.B]) & 63)
	case ir.OpShr:
		f.regs[in.Dst] = f.regs[in.A] >> (uint64(f.regs[in.B]) & 63)
	case ir.OpNeg:
		f.regs[in.Dst] = -f.regs[in.A]
	case ir.OpBNot:
		f.regs[in.Dst] = ^f.regs[in.A]
	case ir.OpSet:
		if in.Cond.Eval(f.regs[in.A], f.regs[in.B]) {
			f.regs[in.Dst] = 1
		} else {
			f.regs[in.Dst] = 0
		}
	case ir.OpAddr:
		f.regs[in.Dst] = int64(v.objAddr(in.Obj)) + in.Imm
	case ir.OpLoad:
		addr := v.accessAddr(f, in)
		if v.done {
			return
		}
		if v.Hooks.OnInstr != nil {
			v.Hooks.OnInstr(in, addr, in.Size)
		}
		if !v.checkAddr(addr, in.Size) {
			return
		}
		f.regs[in.Dst] = v.readRaw(addr, in.Size)
		v.afterStep()
		return
	case ir.OpStore:
		addr := v.accessAddr(f, in)
		if v.done {
			return
		}
		if v.Hooks.OnInstr != nil {
			v.Hooks.OnInstr(in, addr, in.Size)
		}
		if !v.checkAddr(addr, in.Size) {
			return
		}
		if v.readOnly(addr, in.Size) {
			v.failf(ErrReadOnly, "store to %#x", addr)
			return
		}
		v.writeRaw(addr, f.regs[in.B], in.Size)
		v.afterStep()
		return
	case ir.OpCall:
		if v.Hooks.OnInstr != nil {
			v.Hooks.OnInstr(in, 0, 0)
		}
		v.execCall(f, in)
		v.afterStep()
		return
	case ir.OpRet:
		ret := int64(0)
		if in.A != ir.NoReg {
			ret = f.regs[in.A]
		}
		if v.Hooks.OnInstr != nil {
			v.Hooks.OnInstr(in, 0, 0)
		}
		v.popFrame(ret)
		v.afterStep()
		return
	case ir.OpJmp:
		if v.Hooks.OnInstr != nil {
			v.Hooks.OnInstr(in, 0, 0)
		}
		f.blk = in.Target
		f.idx = 0
		v.afterStep()
		return
	case ir.OpBr:
		taken := in.Cond.Eval(f.regs[in.A], f.regs[in.B])
		if v.Hooks.OnInstr != nil {
			v.Hooks.OnInstr(in, 0, 0)
		}
		if v.cfg.RecordBranches {
			v.branches = append(v.branches, BranchEvent{PC: in.PC, Taken: taken})
		}
		if v.Hooks.OnBranch != nil {
			v.Hooks.OnBranch(in, taken)
		}
		if taken {
			f.blk = in.Target
		} else {
			f.blk = in.Else
		}
		f.idx = 0
		v.afterStep()
		return
	}
	if v.Hooks.OnInstr != nil {
		v.Hooks.OnInstr(in, 0, 0)
	}
	v.afterStep()
}

func (v *VM) afterStep() {
	if v.Hooks.OnStep != nil && !v.done {
		v.Hooks.OnStep(v.steps)
	}
}

// accessAddr computes the effective address of a load/store.
func (v *VM) accessAddr(f *frame, in *ir.Instr) uint64 {
	if in.IsDirectAccess() {
		return v.objAddr(in.Obj)
	}
	return uint64(f.regs[in.A])
}

func (v *VM) execCall(f *frame, in *ir.Instr) {
	args := make([]int64, len(in.Args))
	for i, r := range in.Args {
		args[i] = f.regs[r]
	}
	if fn := v.prog.ByName[in.Callee]; fn != nil {
		v.pushFrame(fn, args, in.Dst)
		if !v.done && v.Hooks.OnCall != nil {
			v.Hooks.OnCall(fn)
		}
		return
	}
	ret, err := v.callBuiltin(in.Callee, args)
	if err != nil {
		v.failf(err, "builtin %s", in.Callee)
		return
	}
	if in.Dst != ir.NoReg {
		f.regs[in.Dst] = ret
	}
}

// Steps returns the executed instruction count so far.
func (v *VM) Steps() uint64 { return v.steps }

// Output returns the lines printed so far (plus any unterminated tail).
func (v *VM) Output() []string {
	v.flushOut()
	return v.output
}
