package fleet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Router is the fleet's front door: a TCP proxy that speaks the wire
// protocol only far enough to read the opening Hello, places the
// session on a ring member, and then splices bytes both ways with
// io.Copy — zero per-event parsing, so router overhead stays flat no
// matter what the protocol grows.
//
// Placement failures are handled inline: a dial error marks the node
// unhealthy and re-places; an upstream that answers the forwarded
// Hello with Error{ErrDraining} is marked draining and the session is
// re-placed on the next node in the ring. Only when no member can
// take the session does the client see the drain error.
type Router struct {
	ring *Ring

	dialTimeout time.Duration
	nextKey     atomic.Uint64

	sessions    *obs.Counter
	retries     *obs.Counter
	dialErrors  *obs.Counter
	noNode      *obs.Counter
	routedBytes *obs.Counter

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// RouterConfig tunes a Router. The zero value works.
type RouterConfig struct {
	// DialTimeout bounds each upstream dial (default 3s).
	DialTimeout time.Duration
	// Reg receives fleet_* metrics; nil disables them.
	Reg *obs.Registry
}

// NewRouter builds a router placing sessions on ring.
func NewRouter(ring *Ring, cfg RouterConfig) *Router {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	return &Router{
		ring:        ring,
		dialTimeout: cfg.DialTimeout,
		sessions:    cfg.Reg.Counter("fleet_sessions_total"),
		retries:     cfg.Reg.Counter("fleet_retries_total"),
		dialErrors:  cfg.Reg.Counter("fleet_dial_errors_total"),
		noNode:      cfg.Reg.Counter("fleet_no_node_total"),
		routedBytes: cfg.Reg.Counter("fleet_routed_bytes_total"),
	}
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean close, or the accept error otherwise.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		ln.Close()
		return fmt.Errorf("fleet: router closed")
	}
	r.ln = ln
	if r.conns == nil {
		r.conns = make(map[net.Conn]struct{})
	}
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		r.track(conn, true)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.track(conn, false)
			r.route(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves in a background
// goroutine, returning the bound address (addr may use port 0).
func (r *Router) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go r.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops accepting and closes every spliced connection, then
// waits for the per-connection goroutines to exit.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	if r.ln != nil {
		r.ln.Close()
	}
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *Router) track(c net.Conn, add bool) {
	r.mu.Lock()
	if add {
		if r.conns == nil {
			r.conns = make(map[net.Conn]struct{})
		}
		r.conns[c] = struct{}{}
	} else {
		delete(r.conns, c)
	}
	r.mu.Unlock()
}

// readRawFrame reads one length-prefixed frame — header and payload —
// without buffering past the frame's end, so the bytes that follow
// can be spliced verbatim. The returned slice is the full frame
// (prefix included), ready to forward; the payload starts at [4:].
func readRawFrame(c net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > wire.MaxFrame {
		return nil, fmt.Errorf("fleet: frame payload %d out of range", n)
	}
	buf := make([]byte, 4+n)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(c, buf[4:]); err != nil {
		return nil, err
	}
	return buf, nil
}

// refuse answers a client that could not be placed: one error frame,
// best effort, then close.
func refuse(c net.Conn, code wire.ErrCode, msg string) {
	if len(msg) > wire.MaxString {
		msg = msg[:wire.MaxString]
	}
	buf, err := wire.Append(nil, wire.Error{Code: code, Msg: msg})
	if err == nil {
		c.SetWriteDeadline(time.Now().Add(2 * time.Second))
		c.Write(buf)
	}
	c.Close()
}

// route drives one client connection: read Hello, place, splice.
func (r *Router) route(client net.Conn) {
	if tc, ok := client.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	rawHello, err := readRawFrame(client)
	if err != nil {
		client.Close()
		return
	}
	f, err := wire.Decode(rawHello[4:])
	if err != nil {
		refuse(client, wire.ErrProtocol, err.Error())
		return
	}
	if _, ok := f.(wire.Hello); !ok {
		refuse(client, wire.ErrProtocol, fmt.Sprintf("expected hello, got %v", f.Type()))
		return
	}
	r.sessions.Inc()

	key := r.nextKey.Add(1)
	idx, ok := r.ring.Place(key)
	for attempt := 0; ok && attempt < r.ring.Len(); attempt++ {
		up, ack, uerr := r.open(idx, rawHello)
		if uerr == errNodeDraining {
			r.ring.SetDraining(idx, true)
			r.retries.Inc()
			idx, ok = r.ring.Next(idx)
			continue
		}
		if uerr != nil {
			r.ring.SetHealthy(idx, false)
			r.dialErrors.Inc()
			r.retries.Inc()
			idx, ok = r.ring.Next(idx)
			continue
		}
		// Forward the upstream's handshake answer, then splice. From
		// here the router never parses another frame.
		if _, err := client.Write(ack); err != nil {
			up.Close()
			client.Close()
			return
		}
		r.track(up, true)
		r.splice(client, up)
		r.track(up, false)
		return
	}
	r.noNode.Inc()
	refuse(client, wire.ErrDraining, "fleet: no node available")
}

// errNodeDraining reports an upstream that refused the forwarded
// Hello because it is shutting down — re-place, don't mark down.
var errNodeDraining = fmt.Errorf("fleet: node draining")

// open dials ring member idx, forwards the raw Hello, and reads the
// node's first answer frame. A drain refusal comes back as
// errNodeDraining; any other Error frame (refusals are terminal) and
// the HelloAck path both return the raw answer for forwarding — the
// client, not the router, owns protocol-level failures like an
// unknown image.
func (r *Router) open(idx int, rawHello []byte) (net.Conn, []byte, error) {
	up, err := net.DialTimeout("tcp", r.ring.Addr(idx), r.dialTimeout)
	if err != nil {
		return nil, nil, err
	}
	if tc, ok := up.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	up.SetDeadline(time.Now().Add(r.dialTimeout))
	if _, err := up.Write(rawHello); err != nil {
		up.Close()
		return nil, nil, err
	}
	ack, err := readRawFrame(up)
	if err != nil {
		up.Close()
		return nil, nil, err
	}
	if f, err := wire.Decode(ack[4:]); err == nil {
		if e, ok := f.(wire.Error); ok && e.Code == wire.ErrDraining {
			up.Close()
			return nil, nil, errNodeDraining
		}
	}
	up.SetDeadline(time.Time{})
	return up, ack, nil
}

// splice copies bytes both ways until either side ends, then closes
// both. Byte counts feed fleet_routed_bytes_total.
func (r *Router) splice(client, up net.Conn) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n, _ := io.Copy(up, client)
		r.routedBytes.Add(uint64(n))
		// The client went quiet: half-close toward the node so its
		// reader sees EOF, but keep reading the node's drain frames.
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	n, _ := io.Copy(client, up)
	r.routedBytes.Add(uint64(n))
	if tc, ok := client.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	wg.Wait()
	up.Close()
	client.Close()
}
