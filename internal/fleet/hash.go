// Package fleet turns a set of ipdsd daemons into one verification
// service: static node membership with health and drain state, session
// placement by the same jump consistent hash the server uses for core
// pinning (two-level: session → node here, session → core inside the
// node), liveness probing over each node's /debug/sessions endpoint,
// and a byte-splicing TCP router that speaks the wire protocol only
// far enough to read the opening Hello.
//
// The package sits below internal/server in the dependency order —
// the server imports fleet for the shared hash, never the reverse —
// so the placement arithmetic is written once and both levels of the
// hierarchy stay in lockstep.
package fleet

// Mix is the splitmix64 finalizer: a cheap full-avalanche bit mix so
// sequential session ids land on uncorrelated jump-hash walks. Both
// placement levels (router → node, server → core) mix before jumping.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Jump is Lamping & Veach's consistent hash: key → bucket in [0,n)
// with minimal movement when n changes. Keys should be pre-mixed
// (see Mix) when they are sequential.
func Jump(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
