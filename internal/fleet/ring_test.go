package fleet

import (
	"testing"
)

func TestJumpProperties(t *testing.T) {
	// Range: every key lands in [0,n).
	for n := 1; n <= 7; n++ {
		for k := uint64(0); k < 1000; k++ {
			b := Jump(Mix(k), n)
			if b < 0 || b >= n {
				t.Fatalf("Jump(Mix(%d), %d) = %d out of range", k, n, b)
			}
		}
	}
	// Determinism.
	for k := uint64(0); k < 100; k++ {
		if Jump(Mix(k), 5) != Jump(Mix(k), 5) {
			t.Fatal("Jump is not deterministic")
		}
	}
	// Balance: mixed sequential keys over 3 buckets stay within a
	// loose band of fair share.
	const keys = 30000
	var counts [3]int
	for k := uint64(0); k < keys; k++ {
		counts[Jump(Mix(k), 3)]++
	}
	for i, c := range counts {
		if c < keys/3-keys/10 || c > keys/3+keys/10 {
			t.Fatalf("bucket %d holds %d of %d keys; want ~%d", i, c, keys, keys/3)
		}
	}
	// Monotonicity (the consistent-hash property): growing the ring
	// only moves keys onto the new bucket, never between old ones.
	for k := uint64(0); k < 5000; k++ {
		b3, b4 := Jump(Mix(k), 3), Jump(Mix(k), 4)
		if b3 != b4 && b4 != 3 {
			t.Fatalf("key %d moved %d→%d when the ring grew", k, b3, b4)
		}
	}
}

func TestRingPlaceSkipsUnavailable(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"})
	if r.Available() != 3 {
		t.Fatalf("Available = %d, want 3", r.Available())
	}
	// With all nodes up, Place is pure consistent hashing.
	for k := uint64(0); k < 100; k++ {
		i, ok := r.Place(k)
		if !ok || i != Jump(Mix(k), 3) {
			t.Fatalf("Place(%d) = %d,%v; want %d,true", k, i, ok, Jump(Mix(k), 3))
		}
	}
	// Drain node 1: its keys move to the next ring member; keys on
	// other nodes stay put.
	r.SetDraining(1, true)
	for k := uint64(0); k < 100; k++ {
		home := Jump(Mix(k), 3)
		i, ok := r.Place(k)
		if !ok {
			t.Fatalf("Place(%d) found no node", k)
		}
		switch home {
		case 1:
			if i != 2 {
				t.Fatalf("key %d: drained node 1's key placed on %d, want 2", k, i)
			}
		default:
			if i != home {
				t.Fatalf("key %d moved %d→%d though its node is up", k, home, i)
			}
		}
	}
	// Next skips the drained node too.
	if n, ok := r.Next(0); !ok || n != 2 {
		t.Fatalf("Next(0) = %d,%v; want 2,true", n, ok)
	}
	// Nothing available: Place and Next report failure.
	r.SetHealthy(0, false)
	r.SetHealthy(2, false)
	if _, ok := r.Place(7); ok {
		t.Fatal("Place succeeded with no available node")
	}
	if _, ok := r.Next(1); ok {
		t.Fatal("Next succeeded with no available node")
	}
	// Recovery restores normal placement.
	r.SetHealthy(0, true)
	r.SetHealthy(2, true)
	r.SetDraining(1, false)
	if r.Available() != 3 {
		t.Fatalf("Available = %d after recovery, want 3", r.Available())
	}
}
