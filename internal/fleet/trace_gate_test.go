// The trace gate: a routed three-node run with every batch stamped
// (-trace-sample 1) must yield one committed span per verified batch,
// each with a complete monotonic stage chain — client origin stamp →
// router splice → core verify → ack flush — and per-session trace ids
// in send order. This is the CI check `make trace-gate` runs under
// -race.
package fleet_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/ipdsclient"
	"repro/internal/obs"
	"repro/internal/server"
)

func TestTraceGateRoutedSpans(t *testing.T) {
	const (
		nodesN   = 3
		sessions = 24
		events   = 20000
		batch    = 256
	)
	art, w := compileTelnetd(t)
	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 97)

	// Three nodes with generous span rings: the gate counts every span,
	// so nothing may be overwritten.
	var nodes []*server.Server
	var addrs []string
	var hash [32]byte
	for i := 0; i < nodesN; i++ {
		store := server.NewImageStore(nil)
		hash = store.Add(w.Name, art.Image)
		srv := server.New(store, server.Config{TraceRing: 1 << 13})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go srv.Serve(ln)
		nodes = append(nodes, srv)
		addrs = append(addrs, ln.Addr().String())
	}

	router := fleet.NewRouter(fleet.NewRing(addrs), fleet.RouterConfig{Reg: obs.NewRegistry()})
	raddr, err := router.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	defer router.Close()

	t0 := time.Now().UnixNano()
	res := ipdsclient.RunLoad(ipdsclient.LoadConfig{
		Addr: raddr, Image: hash, Program: w.Name, Trace: trace,
		Sessions: sessions, EventsPerConn: events, Batch: batch,
		Timeout: 60 * time.Second, TraceSample: 1,
	})
	for _, err := range res.Errors {
		t.Fatalf("load: %v", err)
	}

	// Drain every node before counting: span commits ride the core
	// writers, and shutdown joins them.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, srv := range nodes {
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}

	var spanTotal int
	var batchTotal uint64
	nodesWithSpans := 0
	for ni, srv := range nodes {
		for _, cs := range srv.CoreStats() {
			batchTotal += cs.Batches
		}
		spans := srv.TraceSpans()
		spanTotal += len(spans)
		if len(spans) > 0 {
			nodesWithSpans++
		}
		lastID := map[uint64]uint64{}
		for _, sp := range spans {
			if sp.TraceID == 0 || sp.Events == 0 {
				t.Fatalf("node %d: incomplete span record: %+v", ni, sp)
			}
			// The wire leg spans client encode + router splice + daemon
			// read; same-host clocks make it strictly ordered.
			if sp.OriginNs < t0 || sp.OriginNs > sp.ReadNs {
				t.Errorf("node %d: wire leg not monotonic: origin=%d read=%d", ni, sp.OriginNs, sp.ReadNs)
			}
			if !(sp.ReadNs <= sp.DequeueNs && sp.DequeueNs <= sp.VerifyEndNs &&
				sp.VerifyEndNs <= sp.OfferEndNs && sp.OfferEndNs <= sp.AckNs) {
				t.Errorf("node %d: span chain not monotonic: %+v", ni, sp)
			}
			// One session's batches flow through one reader and one core:
			// its trace ids commit in send order, no gaps.
			if prev, ok := lastID[sp.Session]; ok && sp.TraceID != prev+1 {
				t.Errorf("node %d session %d: trace id %d after %d", ni, sp.Session, sp.TraceID, prev)
			}
			lastID[sp.Session] = sp.TraceID
		}
	}
	// Fully-stamped load: every verified event batch must have become
	// exactly one span, fleet-wide.
	if uint64(spanTotal) != batchTotal || spanTotal == 0 {
		t.Fatalf("fleet committed %d spans for %d verified batches", spanTotal, batchTotal)
	}
	// Placement is deterministic (jump hash over program#i session
	// keys), and 24 sessions do not all land on one of three nodes.
	if nodesWithSpans < 2 {
		t.Fatalf("spans on %d node(s); routed load did not spread", nodesWithSpans)
	}
}
