package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNodeTag(t *testing.T) {
	cases := map[string]string{
		"x_total":           `x_total{node="n:1"}`,
		`x_total{a="b"}`:    `x_total{a="b",node="n:1"}`,
		"lat_ns/p50":        `lat_ns{node="n:1"}/p50`,
		`lat_ns{a="b"}/p99`: `lat_ns{a="b",node="n:1"}/p99`,
	}
	for in, want := range cases {
		if got := nodeTag(in, "n:1"); got != want {
			t.Errorf("nodeTag(%q) = %q, want %q", in, got, want)
		}
	}
}

// fakeNode serves a minimal daemon telemetry surface.
func fakeNode(t *testing.T, events, alarms uint64, sessions int, p50, p99 int64, counter string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/sessions", func(w http.ResponseWriter, _ *http.Request) {
		doc := map[string]any{
			"draining":            false,
			"events_total":        events,
			"alarms_total":        alarms,
			"kernel_ns_per_event": 100.0,
			"trace_spans":         10,
			"e2e_p50_ns":          p50,
			"e2e_p99_ns":          p99,
			"sessions":            make([]map[string]any, sessions),
		}
		json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, _ *http.Request) {
		doc := map[string]any{
			"times_ns": []int64{1000, 2000},
			"series": []map[string]any{
				{"name": counter, "kind": "counter", "points": []int64{1, 2}},
			},
		}
		json.NewEncoder(w).Encode(doc)
	})
	return httptest.NewServer(mux)
}

// TestAggregatorMerge scrapes two fake nodes plus one dead one and
// checks the merged totals, the per-node rows, and the node-tagged
// series — the label-safety contract: same metric name on two nodes,
// two distinct merged series.
func TestAggregatorMerge(t *testing.T) {
	n1 := fakeNode(t, 1000, 5, 2, 100, 900, "server_events_total")
	defer n1.Close()
	n2 := fakeNode(t, 3000, 7, 1, 300, 500, "server_events_total")
	defer n2.Close()

	// The third node is down; its row must carry the error and stay out
	// of the totals. The /debug/sessions suffix from a shared -probe
	// flag value must be tolerated.
	agg := NewAggregator([]string{
		n1.URL + "/debug/sessions",
		n2.URL,
		"127.0.0.1:1", // nothing listens here
	}, 500*time.Millisecond)

	view := agg.Scrape(context.Background())
	if len(view.Nodes) != 3 {
		t.Fatalf("got %d node rows, want 3", len(view.Nodes))
	}
	if view.Nodes[2].Err == "" {
		t.Fatal("dead node did not record a scrape error")
	}
	tot := view.Totals
	if tot.Nodes != 3 || tot.Healthy != 2 {
		t.Fatalf("totals nodes/healthy = %d/%d, want 3/2", tot.Nodes, tot.Healthy)
	}
	if tot.Events != 4000 || tot.Alarms != 12 || tot.Sessions != 3 {
		t.Fatalf("totals events/alarms/sessions = %d/%d/%d, want 4000/12/3",
			tot.Events, tot.Alarms, tot.Sessions)
	}
	if tot.KernelNs != 100 {
		t.Fatalf("weighted kernel ns = %v, want 100", tot.KernelNs)
	}
	// p50: trace-weighted mean of (100, 300) with equal weights = 200;
	// p99: the worse node's 900.
	if tot.E2EP50Ns != 200 || tot.E2EP99Ns != 900 {
		t.Fatalf("e2e p50/p99 = %d/%d, want 200/900", tot.E2EP50Ns, tot.E2EP99Ns)
	}

	if len(view.Series) != 2 {
		t.Fatalf("got %d merged series, want 2 (one per live node)", len(view.Series))
	}
	seen := map[string]bool{}
	for _, s := range view.Series {
		if !strings.Contains(s.Name, `node="`) {
			t.Fatalf("series %q not node-tagged", s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("node tag failed to disambiguate: duplicate %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Points) != 2 || len(s.TimesNs) != 2 {
			t.Fatalf("series %q lost its points/times", s.Name)
		}
	}
}

// TestAggregatorHandler pins the HTTP surface: /debug/fleet returns
// the view as valid JSON.
func TestAggregatorHandler(t *testing.T) {
	n1 := fakeNode(t, 10, 0, 1, 1, 2, "x_total")
	defer n1.Close()
	agg := NewAggregator([]string{n1.URL}, 500*time.Millisecond)

	rec := httptest.NewRecorder()
	agg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleet", nil))
	var view FleetView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if view.Totals.Healthy != 1 || view.Totals.Events != 10 {
		t.Fatalf("handler view totals = %+v", view.Totals)
	}
}
