package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Prober polls each ring member's /debug/sessions endpoint and folds
// the answers back into the ring: an unreachable endpoint marks the
// node unhealthy, a reachable one healthy, and the document's
// "draining" field drives the draining flag — which is how a rolling
// drain announces itself to the router without any control channel
// beyond the telemetry the daemon already serves.
type Prober struct {
	ring     *Ring
	urls     []string // one /debug/sessions URL per ring member
	interval time.Duration
	client   *http.Client
	healthy  *obs.Gauge

	stop   context.CancelFunc
	donewg sync.WaitGroup
}

// NewProber builds a prober over ring, where urls[i] is member i's
// /debug/sessions URL (an empty URL leaves that member unprobed).
// A URL without a scheme gets "http://" prefixed, so bare
// "host:6060/debug/sessions" flag values work. interval <= 0
// defaults to one second; reg may be nil.
func NewProber(ring *Ring, urls []string, interval time.Duration, reg *obs.Registry) *Prober {
	if interval <= 0 {
		interval = time.Second
	}
	normed := make([]string, len(urls))
	for i, u := range urls {
		if u != "" && !strings.Contains(u, "://") {
			u = "http://" + u
		}
		normed[i] = u
	}
	return &Prober{
		ring:     ring,
		urls:     normed,
		interval: interval,
		client:   &http.Client{Timeout: interval},
		healthy:  reg.Gauge("fleet_nodes_healthy"),
	}
}

// ProbeOnce polls every member once, synchronously, and updates the
// ring. The router calls this at startup so the first placement
// already reflects reality; the background loop repeats it.
func (p *Prober) ProbeOnce(ctx context.Context) {
	for i := range p.urls {
		if p.urls[i] == "" {
			continue
		}
		p.probe(ctx, i)
	}
	p.healthy.Set(int64(p.ring.Available()))
}

func (p *Prober) probe(ctx context.Context, i int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.urls[i], nil)
	if err != nil {
		p.ring.SetHealthy(i, false)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		p.ring.SetHealthy(i, false)
		return
	}
	var doc struct {
		Draining bool `json:"draining"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		p.ring.SetHealthy(i, false)
		return
	}
	p.ring.SetHealthy(i, true)
	p.ring.SetDraining(i, doc.Draining)
}

// Start launches the background probe loop. Stop cancels it.
func (p *Prober) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	p.stop = cancel
	p.donewg.Add(1)
	go func() {
		defer p.donewg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.ProbeOnce(ctx)
			}
		}
	}()
}

// Stop halts the probe loop and waits for it to exit.
func (p *Prober) Stop() {
	if p.stop != nil {
		p.stop()
		p.donewg.Wait()
	}
}
