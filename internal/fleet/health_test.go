package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestProberSchemelessURL holds the flag-friendly URL form: a probe
// target given as bare "host:port/path" (no scheme) must still reach
// the endpoint and mark the node healthy, and the document's draining
// field must fold into the ring.
func TestProberSchemelessURL(t *testing.T) {
	draining := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/sessions" {
			http.NotFound(w, r)
			return
		}
		if draining {
			w.Write([]byte(`{"draining":true}`))
		} else {
			w.Write([]byte(`{"draining":false}`))
		}
	}))
	defer srv.Close()

	bare := strings.TrimPrefix(srv.URL, "http://") + "/debug/sessions"
	ring := NewRing([]string{"n0"})
	ring.SetHealthy(0, false) // prober must bring it back
	p := NewProber(ring, []string{bare}, time.Second, nil)

	p.ProbeOnce(context.Background())
	if ring.Available() != 1 {
		t.Fatalf("schemeless probe URL %q left %d nodes available, want 1", bare, ring.Available())
	}

	draining = true
	p.ProbeOnce(context.Background())
	if ring.Available() != 0 {
		t.Fatalf("draining=true probe left %d nodes available, want 0", ring.Available())
	}
}
