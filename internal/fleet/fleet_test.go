// The fleet gate: an in-process three-node cluster behind the router
// must survive a rolling drain of one node with zero sessions lost and
// an alarm/incident record byte-identical to a single uninterrupted
// replay, and a cold node must serve a session for an image it only
// holds via a registry fetch. This is the CI check `make fleet-gate`
// runs under -race.
package fleet_test

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/incident"
	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// compileTelnetd compiles the attack workload once per test.
func compileTelnetd(t *testing.T) (*pipeline.Artifacts, *workload.Workload) {
	t.Helper()
	w := workload.ByName("telnetd")
	if w == nil {
		t.Fatal("telnetd workload missing")
	}
	art, err := pipeline.CompileWith(w.Source, ir.DefaultOptions, pipeline.Config{}, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return art, w
}

// startNode brings up one verification daemon on a loopback port.
func startNode(t *testing.T, store *server.ImageStore) (*server.Server, string) {
	t.Helper()
	srv := server.New(store, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

func alarmsEqual(got []wire.Alarm, ref []ipds.Alarm) error {
	if len(got) != len(ref) {
		return fmt.Errorf("%d alarms, want %d", len(got), len(ref))
	}
	for i, a := range got {
		r := ref[i]
		if a.Seq != r.Seq || a.PC != r.PC || a.Func != r.Func ||
			a.Slot != uint32(r.Slot) || a.Expected != uint8(r.Expected) || a.Taken != r.Taken {
			return fmt.Errorf("alarm %d: got %+v, want %+v", i, a, r)
		}
	}
	return nil
}

// TestFleetRollingDrain is the zero-loss handoff gate. 24 sessions
// stream a tampered trace through the router while one node is drained
// mid-run. Every session must finish fully acked, and — because
// handoffs happen at balanced pass boundaries where the machine holds
// no state — each session's re-based alarm stream must be
// field-identical to one continuous in-process replay, and the fleet's
// merged incident fold identical to the single-node fold.
func TestFleetRollingDrain(t *testing.T) {
	const (
		sessions = 24
		passes   = 6
	)
	art, w := compileTelnetd(t)
	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 31)
	passEvents := len(trace)

	// One pass, encoded once; every session replays the same block.
	block := wire.AppendBatches(nil, trace, 256)
	branchesPerPass := uint64(0)
	for _, ev := range trace {
		if ev.Kind == wire.EvBranch {
			branchesPerPass++
		}
	}

	// Reference: all passes through ONE machine, uninterrupted.
	full := make([]wire.Event, 0, passes*passEvents)
	for p := 0; p < passes; p++ {
		full = append(full, trace...)
	}
	ref := ipdsclient.ReplayLocal(ipds.New(art.Image, ipds.DefaultConfig), full)
	if len(ref) == 0 {
		t.Fatal("tampered trace raised no reference alarms; gate is vacuous")
	}

	// Three nodes, each with its own store holding the image.
	var nodes []*server.Server
	var addrs []string
	var hash [32]byte
	for i := 0; i < 3; i++ {
		store := server.NewImageStore(nil)
		hash = store.Add(w.Name, art.Image)
		srv, addr := startNode(t, store)
		nodes = append(nodes, srv)
		addrs = append(addrs, addr)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, srv := range nodes {
			srv.Shutdown(ctx)
		}
	}()

	ring := fleet.NewRing(addrs)
	reg := obs.NewRegistry()
	router := fleet.NewRouter(ring, fleet.RouterConfig{Reg: reg})
	raddr, err := router.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	defer router.Close()

	// stream drives one session to completion through any number of
	// drain handoffs. Work advances in whole passes; after any redial
	// the resume point is re-derived from the client's own cumulative
	// Sent() — Redial guarantees it is a batch boundary, and because
	// each pass is sent as one block it is in fact a pass boundary.
	var passesDone atomic.Int64
	stream := func(s int) (*ipdsclient.Client, error) {
		cfg := ipdsclient.Config{
			Addr:    raddr,
			Image:   hash,
			Program: fmt.Sprintf("fleet-%d", s),
			Batch:   256,
			Timeout: 20 * time.Second,
		}
		c, err := ipdsclient.Dial(cfg)
		if err != nil {
			return nil, err
		}
		pass := 0
		redial := func() error {
			c.Close()
			c2, err := ipdsclient.Redial(c)
			if err != nil {
				return err
			}
			c = c2
			pass = int(c.Sent()) / passEvents
			return nil
		}
		for {
			ended := false
			select {
			case <-c.Done():
				ended = true
			default:
			}
			switch {
			case ended:
				// The node sealed the session from its side. Everything
				// acked was verified and delivered; if that is everything
				// we sent and we are done, the session is complete.
				// Otherwise resume from the acked boundary.
				if pass == passes && c.Acked() == c.Sent() {
					return c, nil
				}
				if err := redial(); err != nil {
					return nil, err
				}
			case pass == passes:
				if err := c.Drain(); err == nil {
					return c, nil
				}
				<-c.Done() // drain raced a seal; resume via the ended branch
			case c.Draining():
				// Cooperative handoff: finish this node at the pass
				// boundary, then resume wherever the router places us.
				if err := c.Drain(); err == nil {
					if err := redial(); err != nil {
						return nil, err
					}
				} else {
					<-c.Done()
				}
			default:
				if err := c.SendEncoded(block, uint64(passEvents), branchesPerPass); err != nil {
					<-c.Done() // conn died mid-write; resume via the ended branch
					continue
				}
				pass++
				passesDone.Add(1)
			}
		}
	}

	clients := make([]*ipdsclient.Client, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			clients[s], errs[s] = stream(s)
		}(s)
	}

	// Rolling drain: once the fleet is mid-flight, take node 0 out of
	// the ring and shut it down. Its sessions get the advisory drain
	// notice, finish their pass, and redial through the router onto the
	// surviving nodes.
	for passesDone.Load() < sessions {
		time.Sleep(time.Millisecond)
	}
	ring.SetDraining(0, true)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	nodes[0].Shutdown(ctx)
	cancel()

	wg.Wait()

	// Zero sessions lost: every session finished, fully acked, with the
	// exact alarm stream of an uninterrupted replay.
	fleetFold := incident.NewAnalyzer(incident.Config{})
	refFold := incident.NewAnalyzer(incident.Config{})
	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d lost: %v", s, errs[s])
		}
		c := clients[s]
		want := uint64(passes * passEvents)
		if c.Sent() != want || c.Acked() != want {
			t.Fatalf("session %d sent/acked = %d/%d, want %d/%d", s, c.Sent(), c.Acked(), want, want)
		}
		got := c.Alarms()
		if err := alarmsEqual(got, ref); err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
		for _, a := range got {
			fleetFold.Observe(incident.AlarmEvent{Session: uint64(s), Seq: a.Seq, PC: a.PC, Func: a.Func, Taken: a.Taken})
		}
		for _, r := range ref {
			refFold.Observe(incident.AlarmEvent{Session: uint64(s), Seq: r.Seq, PC: r.PC, Func: r.Func, Taken: r.Taken})
		}
		c.Close()
	}
	if !reflect.DeepEqual(fleetFold.Incidents(), refFold.Incidents()) {
		t.Fatalf("fleet incident fold diverges from single-node fold:\n%+v\nvs\n%+v",
			fleetFold.Incidents(), refFold.Incidents())
	}

	// The drain actually exercised the handoff path: the router placed
	// more sessions than the initial 24 (each handoff redials), and
	// every initial placement went through it.
	if n := reg.Counter("fleet_sessions_total").Value(); n < sessions {
		t.Fatalf("fleet_sessions_total = %d, want >= %d", n, sessions)
	}
}

// TestFleetColdCacheFetch is the registry half of the gate: a node
// whose store has never seen an image must serve a session for it by
// fetching the blob from a peer's registry — zero recompiles, with the
// fetch visible in registry_fetch_total.
func TestFleetColdCacheFetch(t *testing.T) {
	art, w := compileTelnetd(t)

	// Node A holds the compiled image and exposes it over a registry.
	storeA := server.NewImageStore(nil)
	hash := storeA.Add(w.Name, art.Image)
	regSrv := registry.NewServer(storeA, nil)
	regAddr, err := regSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("registry listen: %v", err)
	}
	defer regSrv.Close()

	// Node B starts cold — empty store, no compiler anywhere in the
	// path — with node A's registry as its fetch peer.
	regB := obs.NewRegistry()
	storeB := server.NewImageStore(nil)
	storeB.SetFetcher(registry.NewFetcher([]string{regAddr}, 5*time.Second, regB))
	srvB, addrB := startNode(t, storeB)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srvB.Shutdown(ctx)
	}()

	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 31)
	ref := ipdsclient.ReplayLocal(ipds.New(art.Image, ipds.DefaultConfig), trace)
	if len(ref) == 0 {
		t.Fatal("tampered trace raised no reference alarms; gate is vacuous")
	}

	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: addrB, Image: hash, Program: w.Name, Batch: 256})
	if err != nil {
		t.Fatalf("dial cold node: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := alarmsEqual(c.Alarms(), ref); err != nil {
		t.Fatal(err)
	}
	if n := regB.Counter("registry_fetch_total").Value(); n < 1 {
		t.Fatalf("registry_fetch_total = %d, want >= 1", n)
	}

	// The fetched blob is now part of node B's own store: it can serve
	// it onward (replication) without another fetch.
	if _, ok := storeB.Blob(hash); !ok {
		t.Fatal("fetched image not memoized in the cold node's store")
	}
}
