package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/tsdb"
)

// Fleet-wide observability aggregation (PR 10): the router — the one
// process that already knows every node — scrapes each node's
// /debug/sessions totals and /debug/timeline history and serves the
// merged cluster view at /debug/fleet. Per-node series are merged
// label-safely: every series name gains a node tag
// (`x_total{node="host:port"}`), inserted inside existing label
// braces when the name carries some, so two nodes' series can never
// collide and existing labels survive.

// nodeDoc is the slice of a daemon's /debug/sessions document the
// aggregator consumes. Declared locally: fleet cannot import
// internal/server (the server imports fleet for its placement hash),
// and the JSON contract is the stable surface anyway.
type nodeDoc struct {
	Draining bool    `json:"draining"`
	Events   uint64  `json:"events_total"`
	Alarms   uint64  `json:"alarms_total"`
	KernelNs float64 `json:"kernel_ns_per_event"`
	TraceN   int     `json:"trace_spans"`
	E2EP50Ns int64   `json:"e2e_p50_ns"`
	E2EP99Ns int64   `json:"e2e_p99_ns"`
	Sessions []struct {
		ID uint64 `json:"id"`
	} `json:"sessions"`
}

// FleetNode is one node's row in the merged view.
type FleetNode struct {
	Node     string  `json:"node"`          // the node's telemetry base URL
	Err      string  `json:"err,omitempty"` // scrape failure; zero-valued row
	Draining bool    `json:"draining"`
	Sessions int     `json:"sessions"`
	Events   uint64  `json:"events_total"`
	Alarms   uint64  `json:"alarms_total"`
	KernelNs float64 `json:"kernel_ns_per_event"`
	TraceN   int     `json:"trace_spans"`
	E2EP50Ns int64   `json:"e2e_p50_ns"`
	E2EP99Ns int64   `json:"e2e_p99_ns"`
}

// FleetTotals is the cluster roll-up. KernelNs is the event-weighted
// mean across nodes (each node's figure weighted by its event count).
// E2EP50Ns is the trace-weighted mean of per-node medians; E2EP99Ns is
// the worst node's p99 — the conservative cluster tail.
type FleetTotals struct {
	Nodes    int     `json:"nodes"`
	Healthy  int     `json:"healthy"`
	Draining int     `json:"draining"`
	Sessions int     `json:"sessions"`
	Events   uint64  `json:"events_total"`
	Alarms   uint64  `json:"alarms_total"`
	KernelNs float64 `json:"kernel_ns_per_event"`
	E2EP50Ns int64   `json:"e2e_p50_ns"`
	E2EP99Ns int64   `json:"e2e_p99_ns"`
}

// FleetSeries is one node-tagged timeline series in the merged view.
// Each series carries its own timestamps: nodes sample independently,
// and pretending their clocks align would be a lie the consumer can't
// detect.
type FleetSeries struct {
	Node    string  `json:"node"`
	Name    string  `json:"name"` // node-tagged (see nodeTag)
	Kind    string  `json:"kind"`
	TimesNs []int64 `json:"times_ns"`
	Points  []int64 `json:"points"`
}

// FleetView is the full /debug/fleet document.
type FleetView struct {
	NowUnixNs int64         `json:"now_unix_ns"`
	Totals    FleetTotals   `json:"totals"`
	Nodes     []FleetNode   `json:"nodes"`
	Series    []FleetSeries `json:"series"`
}

// nodeTag merges a node label into a series name without disturbing
// labels already present: `x` -> `x{node="n"}`, `x{a="b"}` ->
// `x{a="b",node="n"}`, and a histogram-derived `x{a="b"}/p50` keeps
// its suffix outside the braces.
func nodeTag(name, node string) string {
	if i := strings.LastIndexByte(name, '}'); i >= 0 && strings.IndexByte(name, '{') >= 0 {
		return name[:i] + `,node="` + node + `"` + name[i:]
	}
	// No existing labels; tag before any derived-series suffix so the
	// base metric name stays a valid label-bearing identifier.
	if j := strings.LastIndexByte(name, '/'); j >= 0 {
		return name[:j] + `{node="` + node + `"}` + name[j:]
	}
	return name + `{node="` + node + `"}`
}

// Aggregator scrapes a fixed node set and merges the answers. Nodes
// are telemetry base URLs (scheme optional; a /debug/sessions suffix
// from a shared -probe flag value is stripped).
type Aggregator struct {
	nodes  []string
	client *http.Client
}

// NewAggregator builds an aggregator over the given node telemetry
// URLs. timeout bounds each per-node request (default 1s).
func NewAggregator(urls []string, timeout time.Duration) *Aggregator {
	if timeout <= 0 {
		timeout = time.Second
	}
	nodes := make([]string, 0, len(urls))
	for _, u := range urls {
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		u = strings.TrimSuffix(strings.TrimSuffix(u, "/debug/sessions"), "/")
		nodes = append(nodes, u)
	}
	return &Aggregator{nodes: nodes, client: &http.Client{Timeout: timeout}}
}

// get decodes one JSON endpoint into out.
func (a *Aggregator) get(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &url2Err{url: url, status: resp.Status}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// url2Err is a non-200 scrape response, reported per node row.
type url2Err struct {
	url    string
	status string
}

// Error renders the failed URL with the HTTP status it returned.
func (e *url2Err) Error() string { return e.url + ": " + e.status }

// label strips the scheme off a node URL: the node tag users read in
// merged series and ipdstop columns.
func label(node string) string {
	if i := strings.Index(node, "://"); i >= 0 {
		return node[i+3:]
	}
	return node
}

// Scrape polls every node once, concurrently, and merges.
func (a *Aggregator) Scrape(ctx context.Context) FleetView {
	view := FleetView{
		NowUnixNs: time.Now().UnixNano(),
		Nodes:     make([]FleetNode, len(a.nodes)),
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex // guards view.Series appends
	)
	for i, node := range a.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			row := FleetNode{Node: label(node)}
			var doc nodeDoc
			if err := a.get(ctx, node+"/debug/sessions", &doc); err != nil {
				row.Err = err.Error()
				view.Nodes[i] = row
				return
			}
			row.Draining = doc.Draining
			row.Sessions = len(doc.Sessions)
			row.Events = doc.Events
			row.Alarms = doc.Alarms
			row.KernelNs = doc.KernelNs
			row.TraceN = doc.TraceN
			row.E2EP50Ns = doc.E2EP50Ns
			row.E2EP99Ns = doc.E2EP99Ns
			view.Nodes[i] = row

			// The timeline is optional: a node running without -telemetry
			// history still contributes its totals row.
			var tl tsdb.Timeline
			if err := a.get(ctx, node+"/debug/timeline", &tl); err != nil {
				return
			}
			merged := make([]FleetSeries, 0, len(tl.Series))
			for _, s := range tl.Series {
				merged = append(merged, FleetSeries{
					Node:    row.Node,
					Name:    nodeTag(s.Name, row.Node),
					Kind:    s.Kind,
					TimesNs: tl.TimesNs,
					Points:  s.Points,
				})
			}
			mu.Lock()
			view.Series = append(view.Series, merged...)
			mu.Unlock()
		}(i, node)
	}
	wg.Wait()
	sort.Slice(view.Series, func(i, j int) bool { return view.Series[i].Name < view.Series[j].Name })

	t := &view.Totals
	t.Nodes = len(view.Nodes)
	var kernelW float64
	var p50W, traceW int64
	for _, n := range view.Nodes {
		if n.Err != "" {
			continue
		}
		t.Healthy++
		if n.Draining {
			t.Draining++
		}
		t.Sessions += n.Sessions
		t.Events += n.Events
		t.Alarms += n.Alarms
		kernelW += n.KernelNs * float64(n.Events)
		p50W += n.E2EP50Ns * int64(n.TraceN)
		traceW += int64(n.TraceN)
		if n.E2EP99Ns > t.E2EP99Ns {
			t.E2EP99Ns = n.E2EP99Ns
		}
	}
	if t.Events > 0 {
		t.KernelNs = kernelW / float64(t.Events)
	}
	if traceW > 0 {
		t.E2EP50Ns = p50W / traceW
	}
	return view
}

// Handler serves Scrape() as JSON — mounted by ipdsrouter at
// /debug/fleet, polled by `ipdstop -fleet`.
func (a *Aggregator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(a.Scrape(req.Context()))
	})
}
