package fleet

import (
	"sync"
)

// NodeState is one ring member's placement-relevant state as the
// router sees it: Healthy tracks dial/probe success, Draining tracks
// an announced shutdown (the node still finishes existing sessions
// but must receive no new ones).
type NodeState struct {
	Addr     string
	Healthy  bool
	Draining bool
}

// Ring is the static node membership used for session placement. The
// member list is fixed at construction (the -peers flag); health and
// drain state mutate under a lock as probes and dial failures report
// in. Placement is two-level consistent hashing: Place jumps the mixed
// session key onto the ring, then walks forward past unavailable
// nodes — so a drained node's sessions land on "the next node in the
// hash ring" and everyone else's placement is untouched.
type Ring struct {
	mu    sync.RWMutex
	nodes []NodeState
}

// NewRing builds a ring over addrs, all initially healthy.
func NewRing(addrs []string) *Ring {
	r := &Ring{nodes: make([]NodeState, len(addrs))}
	for i, a := range addrs {
		r.nodes[i] = NodeState{Addr: a, Healthy: true}
	}
	return r
}

// Len returns the member count (fixed for the ring's lifetime).
func (r *Ring) Len() int { return len(r.nodes) }

// Addr returns member i's dial address.
func (r *Ring) Addr(i int) string { return r.nodes[i].Addr }

// SetHealthy records probe/dial success or failure for member i.
func (r *Ring) SetHealthy(i int, ok bool) {
	r.mu.Lock()
	r.nodes[i].Healthy = ok
	r.mu.Unlock()
}

// SetDraining records member i's announced shutdown state.
func (r *Ring) SetDraining(i int, d bool) {
	r.mu.Lock()
	r.nodes[i].Draining = d
	r.mu.Unlock()
}

// Available reports how many members can accept a new session.
func (r *Ring) Available() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, s := range r.nodes {
		if s.Healthy && !s.Draining {
			n++
		}
	}
	return n
}

// Snapshot copies the current member states (for fleet views).
func (r *Ring) Snapshot() []NodeState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]NodeState, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Place picks the node for a session key: jump-hash the mixed key
// onto the ring, then walk forward past unhealthy or draining
// members. ok is false when no member can take the session.
func (r *Ring) Place(key uint64) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.nodes)
	if n == 0 {
		return 0, false
	}
	start := Jump(Mix(key), n)
	for a := 0; a < n; a++ {
		i := (start + a) % n
		if r.nodes[i].Healthy && !r.nodes[i].Draining {
			return i, true
		}
	}
	return 0, false
}

// Next returns the first available member after i in ring order —
// where a session displaced from i is re-placed during a rolling
// drain. ok is false when no other member is available.
func (r *Ring) Next(i int) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.nodes)
	for a := 1; a < n; a++ {
		j := (i + a) % n
		if r.nodes[j].Healthy && !r.nodes[j].Draining {
			return j, true
		}
	}
	return 0, false
}
