package workload

// Crond models the cron daemon (original CVE class: buffer overflow in
// crontab parsing). The clock, the root-jobs policy and the dispatch
// counters live in main's frame; the job table lives in globals.
func Crond() *Workload {
	return &Workload{
		Name: "crond",
		Vuln: "buffer overflow",
		Source: `
// crond: cron daemon (MiniC re-creation).
int jobmin[8];
int jobroot[8];
int jobon[8];
int njobs;

// Reads a job spec; returns the requested minute, and flags root
// ownership through the wantroot out-parameter encoding: minute is
// returned, ownership via return of add_job.
int read_spec() {
	char spec[8];
	read_line_n(spec, 8);
	return atoi(spec) % 60;
}

int read_owner_is_root() {
	char owner[12];
	read_line_n(owner, 12);
	if (strcmp(owner, "root") == 0) {
		return 1;
	}
	return 0;
}

int add_job(int m, int wantroot) {
	if (njobs >= 8) {
		return 0;
	}
	jobmin[njobs] = m;
	jobroot[njobs] = wantroot;
	jobon[njobs] = 1;
	njobs = njobs + 1;
	return 1;
}

// Vulnerable: the command text of a job is copied into a small parse
// buffer with no length check.
void parse_line(int strict) {
	char buf[8];
	int checked;
	checked = 0;
	if (strict == 1) {
		checked = 1;
	}
	read_line(buf); // unbounded crontab line
	if (checked == 1) {
		print_str("parsed (strict)");
	} else {
		print_str("parsed");
	}
}

int run_jobs(int clockmin, int allowroot) {
	int i;
	int launched;
	i = 0;
	launched = 0;
	while (i < njobs) {
		if (jobon[i] == 1) {
			if (jobmin[i] == clockmin) {
				if (jobroot[i] == 1) {
					if (allowroot == 1) {
						print_str("run as root");
						launched = launched + 1;
					} else {
						print_str("skip root job");
					}
				} else {
					print_str("run as user");
					launched = launched + 1;
				}
			}
		}
		i = i + 1;
	}
	return launched;
}

int main() {
	char cmd[8];
	int clockmin;
	int allowroot;
	int ran;
	int strictparse;
	int disabled;
	clockmin = 0;
	allowroot = 1;
	ran = 0;
	strictparse = 0;
	disabled = 0;
	while (input_avail()) {
		read_line_n(cmd, 8);
		if (strcmp(cmd, "add") == 0) {
			int m;
			int wantroot;
			m = read_spec();
			wantroot = read_owner_is_root();
			if (wantroot == 1 && allowroot != 1) {
				print_str("root jobs disabled");
			} else if (add_job(m, wantroot) == 1) {
				print_str("job added");
			} else {
				print_str("job table full");
			}
		} else if (strcmp(cmd, "tick") == 0) {
			clockmin = clockmin + 1;
			if (clockmin >= 60) {
				clockmin = 0;
			}
			ran = ran + run_jobs(clockmin, allowroot);
		} else if (strcmp(cmd, "parse") == 0) {
			if (allowroot == 1) {
				strictparse = 0;
			} else {
				strictparse = 1;
			}
			parse_line(strictparse);
		} else if (strcmp(cmd, "noroot") == 0) {
			allowroot = 0;
			print_str("root jobs off");
		} else if (strcmp(cmd, "disable") == 0) {
			int which;
			which = read_spec();
			if (which < njobs) {
				if (jobon[which] == 1) {
					jobon[which] = 0;
					disabled = disabled + 1;
					print_str("job disabled");
				} else {
					print_str("already disabled");
				}
			} else {
				print_str("no such job");
			}
		} else if (strcmp(cmd, "list") == 0) {
			int j;
			j = 0;
			while (j < njobs) {
				if (jobon[j] == 1) {
					print_int(jobmin[j]);
				}
				j = j + 1;
			}
			if (disabled > 0) {
				print_int(disabled);
			}
		} else if (strcmp(cmd, "quit") == 0) {
			print_int(ran);
			exit_prog(0);
		} else {
			print_str("bad command");
		}
		if (allowroot == 1) {
			if (njobs > 6) {
				print_str("warning: many privileged-capable jobs");
			}
		} else {
			if (strictparse != 1) {
				if (ran > 0) {
					print_str("relaxed parse with root off");
				}
			}
		}
		if (clockmin < 0) {
			print_str("impossible: negative clock");
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"add", "1", "root",
			"add", "2", "alice",
			"add", "1", "bob",
			"parse", "0 * * * * /bin/true",
			"tick", "tick", "tick",
			"noroot",
			"add", "3", "root",
			"tick",
			"parse", "@reboot /bin/sh",
			"tick",
			"quit",
		},
		ExtraSessions: [][]string{
			{
				"add", "1", "root",
				"add", "2", "alice",
				"list",
				"disable", "0",
				"tick",
				"list",
				"disable", "0",
				"disable", "7",
				"quit",
			},
			{
				"noroot",
				"add", "1", "root",
				"add", "1", "bob",
				"tick",
				"list",
				"parse", "* * * * * /bin/long-command-line-overflowing",
				"quit",
			},
		},
		PerfSession: append([]string{
			"add", "1", "root",
			"add", "2", "alice",
			"add", "3", "bob",
			"add", "4", "carol",
		}, repeat(400,
			"tick",
			"parse", "%d * * * * job",
		)...),
	}
}
