package workload

import (
	"fmt"
	"testing"

	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/vm"
)

func TestRegistry(t *testing.T) {
	ws := All()
	if len(ws) != 10 {
		t.Fatalf("workloads = %d, want 10", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if ByName(w.Name) != nil && ByName(w.Name).Name != w.Name {
			t.Errorf("ByName(%s) broken", w.Name)
		}
		if w.Vuln == "" || w.Source == "" {
			t.Errorf("%s: incomplete workload", w.Name)
		}
		if len(w.AttackSession) == 0 || len(w.PerfSession) == 0 {
			t.Errorf("%s: missing sessions", w.Name)
		}
		if len(w.ExtraSessions) < 2 {
			t.Errorf("%s: want at least 2 extra sessions, have %d", w.Name, len(w.ExtraSessions))
		}
		if got := len(w.Sessions()); got != 1+len(w.ExtraSessions) {
			t.Errorf("%s: Sessions() = %d entries", w.Name, got)
		}
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName should return nil for unknown names")
	}
}

func TestAllCompile(t *testing.T) {
	for _, w := range All() {
		if _, err := pipeline.Compile(w.Source, ir.DefaultOptions); err != nil {
			t.Errorf("%s: compile failed: %v", w.Name, err)
		}
	}
}

func TestAllRunCleanSessions(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
			if err != nil {
				t.Fatal(err)
			}
			sessions := map[string][]string{
				"attack": w.AttackSession,
				"perf":   w.PerfSession,
			}
			for i, s := range w.ExtraSessions {
				sessions[fmt.Sprintf("extra%d", i)] = s
			}
			for name, session := range sessions {
				v := vm.New(art.Prog, vm.DefaultConfig, session)
				m := ipds.New(art.Image, ipds.DefaultConfig)
				ipds.Attach(v, m)
				res := v.Run()
				if res.Status != vm.Exited {
					t.Fatalf("%s session: %v (%v)", name, res.Status, res.Fault)
				}
				if len(m.Alarms()) != 0 {
					t.Fatalf("%s session: false positive: %v", name, m.Alarms()[0])
				}
				if len(res.Output) == 0 {
					t.Errorf("%s session: no output", name)
				}
				if len(res.Branches) < 20 {
					t.Errorf("%s session: only %d branch events", name, len(res.Branches))
				}
			}
		})
	}
}

func TestAllHaveCorrelations(t *testing.T) {
	for _, w := range All() {
		art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		actions := 0
		for _, ft := range art.Tables.Tables {
			checked += ft.NumChecked()
			actions += ft.NumActions()
		}
		if checked < 3 {
			t.Errorf("%s: only %d checked branches; the workload is too thin", w.Name, checked)
		}
		if actions < 6 {
			t.Errorf("%s: only %d BAT actions", w.Name, actions)
		}
	}
}

func TestPerfSessionsAreSubstantial(t *testing.T) {
	for _, w := range All() {
		art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		v := vm.New(art.Prog, vm.DefaultConfig, w.PerfSession)
		res := v.Run()
		if res.Status != vm.Exited {
			t.Fatalf("%s: perf run %v (%v)", w.Name, res.Status, res.Fault)
		}
		if res.Steps < 20_000 {
			t.Errorf("%s: perf session too short: %d steps", w.Name, res.Steps)
		}
	}
}

func TestOverflowsActuallyOverflow(t *testing.T) {
	// The telnetd term handler's unbounded read must clobber the
	// adjacent privilege snapshot when fed a long line: a guest
	// session suddenly prints the admin variant.
	w := Telnetd()
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	session := []string{
		"login", "guest", "guest",
		"term", "xxxxxxxx\x01\x00", // overruns termtype[8] into privileged
		"quit",
	}
	v := vm.New(art.Prog, vm.DefaultConfig, session)
	res := v.Run()
	if res.Status != vm.Exited {
		t.Fatalf("run: %v (%v)", res.Status, res.Fault)
	}
	found := false
	for _, line := range res.Output {
		if line == "term set (admin)" {
			found = true
		}
	}
	if !found {
		t.Errorf("overflow did not escalate: output = %v", res.Output)
	}
}
