package workload

// Telnetd models a telnet login daemon (original CVE class: buffer
// overflow in option negotiation). Following the paper's Figure 1
// pattern, the session's decision state — authentication, privilege,
// failure budget — lives in main's stack frame and is only written by
// main itself, so it is both reachable by stack tampering and richly
// branch-correlated across the command loop. Handlers do the I/O and
// carry the vulnerable unbounded copies.
func Telnetd() *Workload {
	return &Workload{
		Name: "telnetd",
		Vuln: "buffer overflow",
		Source: `
// telnetd: login shell daemon (MiniC re-creation).
int sessions;
char curuser[16];

void banner() {
	print_str("telnetd ready");
}

int check_login(char* user, char* pass) {
	if (strcmp(user, "root") == 0) {
		if (strcmp(pass, "toor") == 0) { return 2; }
		return 0;
	}
	if (strcmp(user, "guest") == 0) {
		if (strcmp(pass, "guest") == 0) { return 1; }
		return 0;
	}
	return 0;
}

// Reads credentials and returns the granted level (0 none, 1 user,
// 2 admin).
int login_io() {
	char user[16];
	char pass[16];
	int level;
	read_line_n(user, 16);
	read_line_n(pass, 16);
	level = check_login(user, pass);
	if (level > 0) {
		strncpy(curuser, user, 16);
	}
	return level;
}

// Vulnerable: terminal type is copied unbounded into a stack buffer
// that sits right before the handler's privilege snapshot.
void negotiate_term(int admin) {
	char termtype[8];
	int privileged;
	privileged = 0;
	if (admin == 1) {
		privileged = 1;
	}
	read_line(termtype); // no bounds check: can overrun into privileged
	if (privileged == 1) {
		print_str("term set (admin)");
	} else {
		print_str("term set");
	}
}

int main() {
	char cmd[16];
	char ecmd[24];
	int authed;
	int isadmin;
	int failures;
	int echo_on;
	int pwchanged;
	authed = 0;
	isadmin = 0;
	failures = 0;
	echo_on = 0;
	pwchanged = 0;
	banner();
	while (input_avail()) {
		read_line_n(cmd, 16);
		if (strcmp(cmd, "login") == 0) {
			int lvl;
			lvl = login_io();
			if (lvl > 0) {
				authed = 1;
				if (lvl > 1) {
					isadmin = 1;
				}
				print_str("login ok");
			} else {
				failures = failures + 1;
				if (failures > 3) {
					print_str("too many failures");
					exit_prog(1);
				}
				print_str("login failed");
			}
		} else if (strcmp(cmd, "term") == 0) {
			negotiate_term(isadmin);
			if (isadmin == 1) {
				echo_on = 1;
			}
		} else if (strcmp(cmd, "whoami") == 0) {
			if (authed == 1) {
				if (isadmin == 1) {
					print_str("root");
				} else {
					print_str(curuser);
				}
			} else {
				print_str("nobody");
			}
		} else if (strcmp(cmd, "exec") == 0) {
			read_line_n(ecmd, 24);
			if (authed != 1) {
				print_str("not logged in");
			} else if (strcmp(ecmd, "reboot") == 0) {
				if (isadmin == 1) {
					print_str("rebooting");
				} else {
					print_str("permission denied");
				}
			} else if (strcmp(ecmd, "ls") == 0) {
				print_str("file1 file2");
			} else {
				print_str("exec");
				print_str(ecmd);
			}
		} else if (strcmp(cmd, "passwd") == 0) {
			char np[16];
			read_line_n(np, 16);
			if (authed != 1) {
				print_str("login first");
			} else if (strlen(np) < 4) {
				print_str("password too short");
			} else {
				pwchanged = pwchanged + 1;
				print_str("password changed");
			}
		} else if (strcmp(cmd, "stats") == 0) {
			if (isadmin == 1) {
				print_int(sessions);
				print_int(pwchanged);
			} else {
				print_str("permission denied");
			}
		} else if (strcmp(cmd, "quit") == 0) {
			print_str("bye");
			exit_prog(0);
		} else {
			print_str("bad command");
		}
		// Per-iteration accounting re-checks the same session state.
		if (authed == 1) {
			sessions = sessions + 1;
			if (failures > 0) {
				failures = failures - 1;
			}
		}
		if (echo_on == 1) {
			print_str("[echo]");
		}
		if (isadmin == 1) {
			if (authed != 1) {
				print_str("impossible: admin without auth");
			}
		}
	}
	if (failures > 0) {
		return 1;
	}
	return 0;
}
`,
		AttackSession: []string{
			"whoami",
			"login", "guest", "guest",
			"whoami",
			"term", "vt100",
			"exec", "ls",
			"exec", "reboot",
			"login", "root", "toor",
			"whoami",
			"term", "xterm",
			"exec", "reboot",
			"whoami",
			"quit",
		},
		ExtraSessions: [][]string{
			{
				"login", "root", "bad",
				"login", "root", "toor",
				"passwd", "hunter22",
				"stats",
				"exec", "ls",
				"quit",
			},
			{
				"passwd", "x",
				"stats",
				"login", "guest", "guest",
				"passwd", "abc", // too short
				"passwd", "abcdef",
				"stats",
				"whoami",
				"quit",
			},
		},
		PerfSession: append([]string{
			"login", "root", "toor",
		}, repeat(300,
			"whoami",
			"exec", "ls",
			"term", "vt100",
			"exec", "job-%d",
		)...),
	}
}
