package workload

// Xinetd models the xinetd super-server (original CVE class: buffer
// overflow in logging). The accept/deny policy, connection limit and
// rotation counter live in main's frame; the per-service table lives in
// globals mutated through helpers.
func Xinetd() *Workload {
	return &Workload{
		Name: "xinetd",
		Vuln: "buffer overflow",
		Source: `
// xinetd: internet super-server (MiniC re-creation).
int enabled0 = 1; int enabled1 = 1; int enabled2 = 0;
int conns0; int conns1; int conns2;

int svc_index(char* name) {
	if (strcmp(name, "echo") == 0) { return 0; }
	if (strcmp(name, "ftp") == 0) { return 1; }
	if (strcmp(name, "telnet") == 0) { return 2; }
	return -1;
}

int svc_enabled(int idx) {
	if (idx == 0) { return enabled0; }
	if (idx == 1) { return enabled1; }
	if (idx == 2) { return enabled2; }
	return 0;
}

void svc_enable(int idx, int on) {
	if (idx == 0) { enabled0 = on; }
	if (idx == 1) { enabled1 = on; }
	if (idx == 2) { enabled2 = on; }
}

int svc_conns(int idx) {
	if (idx == 0) { return conns0; }
	if (idx == 1) { return conns1; }
	return conns2;
}

void svc_bump(int idx) {
	if (idx == 0) { conns0 = conns0 + 1; }
	if (idx == 1) { conns1 = conns1 + 1; }
	if (idx == 2) { conns2 = conns2 + 1; }
}

void svc_drain(int idx) {
	if (idx == 0) { conns0 = 0; }
	if (idx == 1) { conns1 = 0; }
	if (idx == 2) { conns2 = 0; }
}

// Vulnerable: the client identifier is logged through an unbounded
// copy into a small stack buffer.
void log_conn(int alert) {
	char rec[8];
	char who[16];
	int sev;
	sev = 1;
	if (alert == 1) {
		sev = 2;
	}
	read_line(who);   // client-controlled identity
	strcpy(rec, who); // overflow reaches sev and beyond
	if (sev == 2) {
		print_str("ALERT conn");
	} else {
		print_str("conn");
	}
	print_str(rec);
}

int read_service() {
	char svc[12];
	read_line_n(svc, 12);
	return svc_index(svc);
}

int main() {
	char cmd[8];
	char op[12];
	char svc2[12];
	int denyall;
	int maxconns;
	int total;
	int alerts;
	int drains;
	denyall = 0;
	maxconns = 4;
	total = 0;
	alerts = 0;
	drains = 0;
	while (input_avail()) {
		read_line_n(cmd, 8);
		if (strcmp(cmd, "conn") == 0) {
			int idx;
			idx = read_service();
			if (idx < 0) {
				read_line_n(svc2, 12); // consume identity line
				print_str("no such service");
			} else if (denyall == 1) {
				read_line_n(svc2, 12);
				alerts = alerts + 1;
				print_str("refused: deny-all");
			} else if (svc_enabled(idx) != 1) {
				read_line_n(svc2, 12);
				print_str("refused: disabled");
			} else if (svc_conns(idx) >= maxconns) {
				read_line_n(svc2, 12);
				print_str("refused: limit");
			} else {
				svc_bump(idx);
				total = total + 1;
				log_conn(denyall);
				print_str("accepted");
			}
		} else if (strcmp(cmd, "admin") == 0) {
			read_line_n(op, 12);
			read_line_n(svc2, 12);
			if (strcmp(op, "enable") == 0) {
				int idx;
				idx = svc_index(svc2);
				if (idx >= 0) {
					svc_enable(idx, 1);
					print_str("enabled");
				}
			} else if (strcmp(op, "disable") == 0) {
				int idx;
				idx = svc_index(svc2);
				if (idx >= 0) {
					svc_enable(idx, 0);
					print_str("disabled");
				}
			} else if (strcmp(op, "lockdown") == 0) {
				denyall = 1;
				print_str("deny-all on");
			} else if (strcmp(op, "open") == 0) {
				denyall = 0;
				print_str("deny-all off");
			} else if (strcmp(op, "limit") == 0) {
				maxconns = maxconns + 2;
				print_str("limit raised");
			} else {
				print_str("bad admin op");
			}
		} else if (strcmp(cmd, "stat") == 0) {
			print_int(total);
			if (denyall == 1) {
				print_str("locked");
			}
			if (alerts > 0) {
				print_int(alerts);
			}
		} else if (strcmp(cmd, "drain") == 0) {
			int idx;
			idx = read_service();
			if (idx < 0) {
				print_str("no such service");
			} else if (svc_conns(idx) < 1) {
				print_str("nothing to drain");
			} else {
				svc_drain(idx);
				drains = drains + 1;
				print_str("drained");
			}
		} else if (strcmp(cmd, "health") == 0) {
			if (denyall == 1) {
				print_str("degraded: lockdown");
			} else if (drains > 3) {
				print_str("degraded: churn");
			} else {
				print_str("healthy");
			}
		} else if (strcmp(cmd, "quit") == 0) {
			exit_prog(0);
		} else {
			print_str("bad command");
		}
		if (total > 50) {
			print_str("rotating logs");
			total = 0;
		}
		if (denyall == 1) {
			if (maxconns > 2) {
				maxconns = 2;
			}
		}
		if (maxconns < 2) {
			print_str("impossible: limit floor");
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"conn", "echo", "alice",
			"conn", "ftp", "bob",
			"conn", "telnet", "eve",
			"admin", "enable", "telnet",
			"conn", "telnet", "eve",
			"stat",
			"admin", "lockdown", "-",
			"conn", "echo", "mallory",
			"admin", "open", "-",
			"conn", "echo", "carol",
			"conn", "echo", "dan",
			"admin", "limit", "-",
			"conn", "echo", "erin",
			"conn", "echo", "zeke",
			"stat",
			"quit",
		},
		ExtraSessions: [][]string{
			{
				"conn", "echo", "a",
				"conn", "echo", "b",
				"conn", "echo", "c",
				"conn", "echo", "d",
				"conn", "echo", "e", // limit reached
				"drain", "echo",
				"conn", "echo", "f",
				"health",
				"quit",
			},
			{
				"drain", "nosuch",
				"drain", "ftp",
				"admin", "lockdown", "-",
				"health",
				"admin", "open", "-",
				"health",
				"conn", "ftp", "z",
				"quit",
			},
		},
		PerfSession: repeat(220,
			"conn", "echo", "user%d",
			"conn", "ftp", "peer%d",
			"stat",
			"admin", "enable", "telnet",
			"conn", "telnet", "adm%d",
			"admin", "disable", "telnet",
		),
	}
}
