package workload

// Sendmail models the sendmail MTA (original CVE class: buffer overflow
// in header parsing). The SMTP dialogue state — sender present,
// recipient count, relay policy, error budget — lives in main's frame.
func Sendmail() *Workload {
	return &Workload{
		Name: "sendmail",
		Vuln: "buffer overflow",
		Source: `
// sendmail: mail transfer agent (MiniC re-creation).
int msgs;

// Reads an address; returns 1 for local delivery.
int read_addr_local() {
	char a[20];
	int n;
	int i;
	read_line_n(a, 20);
	n = strlen(a);
	i = 0;
	while (i < n) {
		if (a[i] == '@') {
			if (strcmp(a + i + 1, "local") == 0) {
				return 1;
			}
			return 0;
		}
		i = i + 1;
	}
	return 1;
}

// Vulnerable: header line copied unbounded into the parse buffer (the
// crackaddr-style overflow).
void header_io(int trusted) {
	char hbuf[8];
	int audit;
	audit = 1;
	if (trusted == 1) {
		audit = 0;
	}
	read_line(hbuf); // unbounded header
	if (audit == 1) {
		print_str("header audited");
	} else {
		print_str("header accepted (trusted)");
	}
}

int main() {
	char cmd[8];
	int havefrom;
	int rcpts;
	int relayok;
	int rejected;
	int maxrcpt;
	int vrfys;
	vrfys = 0;
	havefrom = 0;
	rcpts = 0;
	relayok = 0;
	rejected = 0;
	maxrcpt = 3;
	print_str("220 smtp ready");
	while (input_avail()) {
		read_line_n(cmd, 8);
		if (strcmp(cmd, "MAIL") == 0) {
			read_addr_local();
			if (havefrom == 1) {
				print_str("503 nested MAIL");
				rejected = rejected + 1;
			} else {
				havefrom = 1;
				rcpts = 0;
				print_str("250 sender ok");
			}
		} else if (strcmp(cmd, "RCPT") == 0) {
			int local;
			local = read_addr_local();
			if (havefrom != 1) {
				print_str("503 need MAIL first");
				rejected = rejected + 1;
			} else if (local != 1 && relayok != 1) {
				print_str("550 relaying denied");
				rejected = rejected + 1;
			} else if (rcpts >= maxrcpt) {
				print_str("452 too many recipients");
			} else {
				rcpts = rcpts + 1;
				print_str("250 recipient ok");
			}
		} else if (strcmp(cmd, "HDR") == 0) {
			header_io(relayok);
		} else if (strcmp(cmd, "DATA") == 0) {
			if (havefrom != 1) {
				print_str("503 need MAIL");
				rejected = rejected + 1;
			} else if (rcpts < 1) {
				print_str("503 need RCPT");
				rejected = rejected + 1;
			} else {
				msgs = msgs + 1;
				havefrom = 0;
				print_str("250 message queued");
			}
		} else if (strcmp(cmd, "RELAY") == 0) {
			relayok = 1;
			print_str("250 relay enabled");
		} else if (strcmp(cmd, "RSET") == 0) {
			havefrom = 0;
			rcpts = 0;
			print_str("250 reset");
		} else if (strcmp(cmd, "VRFY") == 0) {
			int local;
			local = read_addr_local();
			vrfys = vrfys + 1;
			if (vrfys > 5) {
				print_str("252 verification throttled");
			} else if (local == 1) {
				print_str("250 local user");
			} else {
				print_str("551 not local");
			}
		} else if (strcmp(cmd, "EXPN") == 0) {
			read_addr_local();
			if (relayok == 1) {
				print_str("250 list expanded");
			} else {
				print_str("502 expn disabled");
				rejected = rejected + 1;
			}
		} else if (strcmp(cmd, "QUIT") == 0) {
			print_int(msgs);
			exit_prog(0);
		} else {
			print_str("500 unknown");
			rejected = rejected + 1;
		}
		if (rejected > 8) {
			print_str("421 too many errors");
			exit_prog(1);
		}
		if (havefrom == 1) {
			if (rcpts >= maxrcpt) {
				print_str("hint: DATA now");
			}
		} else {
			if (rcpts > 0) {
				if (relayok != 1) {
					print_str("note: dangling recipients");
				}
			}
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"MAIL", "alice@local",
			"RCPT", "bob@local",
			"RCPT", "eve@remote",
			"HDR", "Subject: hi",
			"DATA",
			"RELAY",
			"MAIL", "carol@local",
			"RCPT", "dan@remote",
			"RCPT", "erin@local",
			"RCPT", "frank@local",
			"RCPT", "grace@local",
			"HDR", "X-Loop: no",
			"DATA",
			"RSET",
			"QUIT",
		},
		ExtraSessions: [][]string{
			{
				"VRFY", "alice@local",
				"VRFY", "bob@remote",
				"EXPN", "staff@local",
				"RELAY",
				"EXPN", "staff@local",
				"MAIL", "a@local",
				"RCPT", "b@local",
				"DATA",
				"QUIT",
			},
			{
				"VRFY", "u1@local",
				"VRFY", "u2@local",
				"VRFY", "u3@local",
				"VRFY", "u4@local",
				"VRFY", "u5@local",
				"VRFY", "u6@local",
				"VRFY", "u7@local",
				"HDR", "X-Probe: 1",
				"QUIT",
			},
		},
		PerfSession: append([]string{"RELAY"}, repeat(200,
			"MAIL", "user%d@local",
			"RCPT", "peer%d@remote",
			"RCPT", "other%d@local",
			"HDR", "Seq: %d",
			"DATA",
		)...),
	}
}
