package workload

// HTTPD models a small HTTP daemon (original CVE class: buffer overflow
// in request parsing). Authentication, keep-alive and the error budget
// live in main's frame; the router carries the vulnerable URL copy.
func HTTPD() *Workload {
	return &Workload{
		Name: "httpd",
		Vuln: "buffer overflow",
		Source: `
// httpd: HTTP daemon (MiniC re-creation). Session state lives in a
// struct in main's frame; the analysis splits it into per-field
// objects, so the fields correlate like scalars.
struct Session { int authed; int keepalive; int requests; int errors; int posts; };
int served;

int safe_path(char* p) {
	int i;
	int n;
	n = strlen(p);
	i = 0;
	while (i + 1 < n) {
		if (p[i] == '.') {
			if (p[i+1] == '.') {
				return 0;
			}
		}
		i = i + 1;
	}
	return 1;
}

// Vulnerable: the URL is copied into a fixed stack buffer before
// routing (the classic long-URL overflow). Returns 1 for the private
// admin tree.
int route_is_private(char* url) {
	char buf[8];
	strcpy(buf, url); // unbounded URL copy
	if (strncmp(buf, "/admin", 6) == 0) {
		return 1;
	}
	return 0;
}

int main() {
	char cmd[8];
	char url[32];
	char token[16];
	char kv[8];
	struct Session ses;
	ses.authed = 0;
	ses.keepalive = 0;
	ses.requests = 0;
	ses.errors = 0;
	ses.posts = 0;
	while (input_avail()) {
		read_line_n(cmd, 8);
		if (strcmp(cmd, "GET") == 0) {
			read_line(url); // request line, attacker length-controlled
			ses.requests = ses.requests + 1;
			if (safe_path(url) != 1) {
				print_str("403 forbidden");
				ses.errors = ses.errors + 1;
			} else if (route_is_private(url) == 1) {
				if (ses.authed == 1) {
					print_str("200 admin page");
				} else {
					print_str("401 unauthorized");
					ses.errors = ses.errors + 1;
				}
			} else {
				print_str("200 ok");
				served = served + 1;
			}
			if (ses.keepalive != 1) {
				print_str("connection: close");
			}
		} else if (strcmp(cmd, "AUTH") == 0) {
			read_line_n(token, 16);
			if (strcmp(token, "letmein") == 0) {
				ses.authed = 1;
				print_str("auth ok");
			} else {
				ses.authed = 0;
				print_str("auth failed");
				ses.errors = ses.errors + 1;
			}
		} else if (strcmp(cmd, "KEEP") == 0) {
			read_line_n(kv, 8);
			if (strcmp(kv, "on") == 0) {
				ses.keepalive = 1;
			} else {
				ses.keepalive = 0;
			}
			print_str("keepalive set");
		} else if (strcmp(cmd, "STAT") == 0) {
			print_int(ses.requests);
			print_int(served);
			if (ses.authed == 1) {
				print_int(ses.errors);
			}
		} else if (strcmp(cmd, "POST") == 0) {
			char body[24];
			read_line(url);
			read_line_n(body, 24);
			ses.requests = ses.requests + 1;
			if (safe_path(url) != 1) {
				print_str("403 forbidden");
				ses.errors = ses.errors + 1;
			} else if (ses.authed != 1) {
				print_str("401 unauthorized");
				ses.errors = ses.errors + 1;
			} else if (strlen(body) == 0) {
				print_str("400 empty body");
				ses.errors = ses.errors + 1;
			} else {
				ses.posts = ses.posts + 1;
				print_str("201 created");
			}
		} else if (strcmp(cmd, "LOGOUT") == 0) {
			if (ses.authed == 1) {
				ses.authed = 0;
				print_str("logged out");
			} else {
				print_str("no session");
			}
		} else if (strcmp(cmd, "QUIT") == 0) {
			exit_prog(0);
		} else {
			print_str("400 bad request");
			ses.errors = ses.errors + 1;
		}
		if (ses.errors > 10) {
			print_str("too many errors, closing");
			exit_prog(1);
		}
		if (ses.keepalive == 1) {
			if (ses.requests > 900) {
				ses.keepalive = 0;
				print_str("keepalive budget spent");
			}
		}
		if (ses.authed == 1) {
			if (ses.errors > 8) {
				print_str("authenticated client misbehaving");
			}
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"GET", "/index.html",
			"GET", "/admin",
			"AUTH", "letmein",
			"GET", "/admin",
			"KEEP", "on",
			"GET", "/styles.css",
			"GET", "/../etc/passwd",
			"GET", "/img/logo",
			"AUTH", "wrong",
			"GET", "/admin",
			"STAT",
			"QUIT",
		},
		ExtraSessions: [][]string{
			{
				"POST", "/api/items", "payload",
				"AUTH", "letmein",
				"POST", "/api/items", "payload",
				"POST", "/api/items", "",
				"LOGOUT",
				"POST", "/api/items", "again",
				"STAT",
				"QUIT",
			},
			{
				"AUTH", "letmein",
				"GET", "/admin",
				"LOGOUT",
				"GET", "/admin",
				"LOGOUT",
				"KEEP", "on",
				"GET", "/p1",
				"KEEP", "off",
				"GET", "/p2",
				"QUIT",
			},
		},
		PerfSession: append([]string{
			"AUTH", "letmein",
			"KEEP", "on",
		}, repeat(250,
			"GET", "/page-%d",
			"GET", "/admin",
			"STAT",
		)...),
	}
}
