package workload

// WuFTPD models wu-ftpd (original CVE class: format string in SITE
// EXEC). Protocol state — login, anonymity, write permission, transfer
// mode, quota — lives in main's frame and is checked at several sites
// per command; handlers parse arguments and carry the vulnerable
// unbounded copy.
func WuFTPD() *Workload {
	return &Workload{
		Name: "wu-ftpd",
		Vuln: "format string",
		Source: `
// wu-ftpd: FTP daemon (MiniC re-creation).
int xfers;
char account[16];

void reply(char* msg) {
	print_str(msg);
}

// Reads the username; returns 1 for anonymous accounts.
int user_io() {
	char name[16];
	read_line_n(name, 16);
	strncpy(account, name, 16);
	if (strcmp(name, "anonymous") == 0) {
		return 1;
	}
	return 0;
}

// Reads the password; returns the granted level given the anonymity
// flag: 0 denied, 1 guest, 2 admin.
int pass_io(int anon) {
	char pw[16];
	read_line_n(pw, 16);
	if (anon == 1) {
		return 1;
	}
	if (strcmp(account, "ftpadmin") == 0) {
		if (strcmp(pw, "secret") == 0) {
			return 2;
		}
	}
	return 0;
}

// Reads a path; returns 1 when it points into the restricted tree.
int path_io() {
	char path[24];
	read_line_n(path, 24);
	if (strncmp(path, "/etc", 4) == 0) {
		return 1;
	}
	return 0;
}

// SITE: the format-string-style vulnerability — the argument is copied
// into a log record with no validation.
void site_io(int permit) {
	char arg[12];
	int audited;
	audited = 0;
	if (permit != 1) {
		audited = 1;
	}
	read_line(arg); // unbounded: models %n-style corruption reach
	if (audited == 1) {
		print_str("site audited");
	}
}

int main() {
	char cmd[12];
	char t[8];
	int loggedin;
	int anonymous;
	int canwrite;
	int binmode;
	int quota;
	int deletes;
	deletes = 0;
	loggedin = 0;
	anonymous = 0;
	canwrite = 0;
	binmode = 0;
	quota = 5;
	reply("220 ftp ready");
	while (input_avail()) {
		read_line_n(cmd, 12);
		if (strcmp(cmd, "USER") == 0) {
			anonymous = user_io();
			loggedin = 0;
			reply("331 password required");
		} else if (strcmp(cmd, "PASS") == 0) {
			int lvl;
			lvl = pass_io(anonymous);
			if (lvl > 0) {
				loggedin = 1;
				if (lvl > 1) {
					canwrite = 1;
					reply("230 admin login ok");
				} else {
					canwrite = 0;
					reply("230 guest login ok");
				}
			} else {
				reply("530 login incorrect");
			}
		} else if (strcmp(cmd, "RETR") == 0) {
			int restricted;
			restricted = path_io();
			if (loggedin != 1) {
				reply("530 not logged in");
			} else if (restricted == 1 && anonymous == 1) {
				reply("550 permission denied");
			} else {
				if (binmode == 1) {
					reply("150 binary transfer");
				} else {
					reply("150 ascii transfer");
				}
				xfers = xfers + 1;
				reply("226 transfer complete");
			}
		} else if (strcmp(cmd, "STOR") == 0) {
			path_io();
			if (loggedin != 1) {
				reply("530 not logged in");
			} else if (canwrite != 1) {
				reply("550 read-only access");
			} else if (quota <= 0) {
				reply("552 quota exceeded");
			} else {
				quota = quota - 1;
				xfers = xfers + 1;
				reply("226 stored");
			}
		} else if (strcmp(cmd, "SITE") == 0) {
			int permit;
			permit = 0;
			if (loggedin == 1) {
				if (canwrite == 1) {
					permit = 1;
				}
			}
			site_io(permit);
			if (permit == 1) {
				reply("200 site command ok");
			} else {
				reply("550 site denied");
			}
		} else if (strcmp(cmd, "TYPE") == 0) {
			read_line_n(t, 8);
			if (strcmp(t, "I") == 0) {
				binmode = 1;
				reply("200 type set to I");
			} else {
				binmode = 0;
				reply("200 type set to A");
			}
		} else if (strcmp(cmd, "DELE") == 0) {
			int restricted;
			restricted = path_io();
			if (loggedin != 1) {
				reply("530 not logged in");
			} else if (canwrite != 1) {
				reply("550 permission denied");
			} else if (restricted == 1) {
				reply("550 refusing to delete system file");
			} else {
				deletes = deletes + 1;
				reply("250 deleted");
			}
		} else if (strcmp(cmd, "STAT") == 0) {
			print_int(xfers);
			if (loggedin == 1) {
				print_int(quota);
				if (anonymous == 1) {
					reply("211 anonymous session");
				}
			}
			print_int(deletes);
		} else if (strcmp(cmd, "QUIT") == 0) {
			reply("221 goodbye");
			exit_prog(0);
		} else {
			reply("500 unknown command");
		}
		if (loggedin == 1) {
			if (xfers > 100) {
				reply("421 transfer limit");
				exit_prog(2);
			}
		}
		if (canwrite == 1) {
			if (loggedin != 1) {
				reply("impossible: write without login");
			}
			if (quota < 0) {
				reply("impossible: negative quota");
			}
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"USER", "anonymous",
			"PASS", "whatever",
			"TYPE", "I",
			"RETR", "/pub/file",
			"RETR", "/etc/passwd",
			"STOR", "/pub/up",
			"SITE", "chmod 777",
			"USER", "ftpadmin",
			"PASS", "secret",
			"STOR", "/pub/up2",
			"SITE", "exec",
			"RETR", "/etc/motd",
			"QUIT",
		},
		ExtraSessions: [][]string{
			{
				"USER", "ftpadmin",
				"PASS", "secret",
				"DELE", "/pub/old",
				"DELE", "/etc/passwd",
				"STAT",
				"STOR", "/pub/new",
				"STAT",
				"QUIT",
			},
			{
				"DELE", "/pub/x",
				"STAT",
				"USER", "anonymous",
				"PASS", "guest",
				"DELE", "/pub/y",
				"RETR", "/pub/z",
				"STAT",
				"QUIT",
			},
		},
		PerfSession: append([]string{
			"USER", "ftpadmin",
			"PASS", "secret",
		}, repeat(250,
			"TYPE", "I",
			"RETR", "/pub/data-%d",
			"SITE", "idle",
			"TYPE", "A",
		)...),
	}
}
