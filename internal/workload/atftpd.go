package workload

// ATFTPD models the atftpd TFTP daemon (original CVE class: buffer
// overflow in filename handling). The transfer state machine —
// read-only policy, active flag, block counter, retry budget — lives in
// main's frame.
func ATFTPD() *Workload {
	return &Workload{
		Name: "atftpd",
		Vuln: "buffer overflow",
		Source: `
// atftpd: TFTP daemon (MiniC re-creation).
int served;

// Vulnerable: the requested filename is copied into a fixed stack
// buffer with no length check (the atftpd CVE shape). Returns 1 when
// the file is in the public tree.
int read_filename_public() {
	char fname[8];
	char name[24];
	read_line_n(name, 24);
	strcpy(fname, name); // unbounded filename copy
	if (strncmp(fname, "pub", 3) == 0) {
		return 1;
	}
	return 0;
}

int main() {
	char cmd[8];
	int readonly;
	int active;
	int blocks;
	int retries;
	int uploads;
	int aborted;
	readonly = 1;
	active = 0;
	blocks = 0;
	retries = 0;
	uploads = 0;
	aborted = 0;
	while (input_avail()) {
		read_line_n(cmd, 8);
		if (strcmp(cmd, "rrq") == 0) {
			int public;
			public = read_filename_public();
			if (active == 1) {
				print_str("error: busy");
			} else if (public != 1 && readonly == 1) {
				print_str("error: access denied");
			} else {
				active = 1;
				blocks = 0;
				retries = 3;
				print_str("transfer start");
			}
		} else if (strcmp(cmd, "wrq") == 0) {
			read_filename_public();
			if (readonly == 1) {
				print_str("error: read-only server");
			} else if (active == 1) {
				print_str("error: busy");
			} else {
				active = 1;
				blocks = 0;
				retries = 3;
				uploads = uploads + 1;
				print_str("upload start");
			}
		} else if (strcmp(cmd, "data") == 0) {
			if (active != 1) {
				print_str("error: no transfer");
			} else {
				blocks = blocks + 1;
				if (blocks >= 4) {
					active = 0;
					served = served + 1;
					print_str("transfer done");
				} else {
					print_str("ack");
				}
			}
		} else if (strcmp(cmd, "tmo") == 0) {
			if (active == 1) {
				retries = retries - 1;
				if (retries <= 0) {
					active = 0;
					print_str("transfer aborted");
				} else {
					print_str("retransmit");
				}
			}
		} else if (strcmp(cmd, "rw") == 0) {
			readonly = 0;
			print_str("read-write mode");
		} else if (strcmp(cmd, "ro") == 0) {
			readonly = 1;
			print_str("read-only mode");
		} else if (strcmp(cmd, "abort") == 0) {
			if (active == 1) {
				active = 0;
				aborted = aborted + 1;
				print_str("aborted by client");
			} else {
				print_str("no transfer");
			}
		} else if (strcmp(cmd, "stat") == 0) {
			print_int(served);
			print_int(aborted);
			if (active == 1) {
				print_int(blocks);
			}
		} else if (strcmp(cmd, "quit") == 0) {
			print_int(served);
			exit_prog(0);
		} else {
			print_str("bad command");
		}
		if (active == 1) {
			if (blocks > 100) {
				print_str("error: runaway transfer");
				active = 0;
			}
			if (retries > 3) {
				print_str("impossible: retry budget grew");
			}
		}
		if (readonly == 1) {
			if (uploads > 0) {
				print_str("note: uploads before lockdown");
			}
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"rrq", "pub/readme",
			"data", "data", "data", "data",
			"rrq", "secret/key",
			"rw",
			"wrq", "upload.bin",
			"data", "tmo", "data", "data", "data",
			"rrq", "pub/other",
			"tmo", "tmo", "tmo",
			"rrq", "pub/file2",
			"data", "data", "data", "data",
			"quit",
		},
		ExtraSessions: [][]string{
			{
				"rrq", "pub/a",
				"data", "abort",
				"stat",
				"rrq", "pub/b",
				"data", "data", "data", "data",
				"stat",
				"abort",
				"quit",
			},
			{
				"rw",
				"wrq", "up1",
				"data", "data", "data", "data",
				"ro",
				"wrq", "up2",
				"rrq", "private/file",
				"stat",
				"quit",
			},
		},
		PerfSession: repeat(200,
			"rrq", "pub/data-%d",
			"data", "data", "data", "data",
			"tmo",
		),
	}
}
