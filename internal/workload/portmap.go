package workload

// Portmap models the RPC portmapper (original CVE class: buffer
// overflow via callit). The privileged-port policy and the counters
// live in main's frame; the registration table lives in globals.
func Portmap() *Workload {
	return &Workload{
		Name: "portmap",
		Vuln: "buffer overflow",
		Source: `
// portmap: RPC portmapper (MiniC re-creation).
int mapprog[8];
int mapport[8];
int mapon[8];
int nmaps;

int find_prog(int prog) {
	int i;
	i = 0;
	while (i < nmaps) {
		if (mapon[i] == 1) {
			if (mapprog[i] == prog) {
				return i;
			}
		}
		i = i + 1;
	}
	return -1;
}

int read_num() {
	char buf[8];
	read_line_n(buf, 8);
	return atoi(buf);
}

int register_map(int prog, int port) {
	if (find_prog(prog) >= 0) {
		return 0;
	}
	if (nmaps >= 8) {
		return 0;
	}
	mapprog[nmaps] = prog;
	mapport[nmaps] = port;
	mapon[nmaps] = 1;
	nmaps = nmaps + 1;
	return 1;
}

// Vulnerable: the callit argument blob is copied into a fixed stack
// buffer (the portmap callit overflow).
void callit_io(int forward) {
	char blob[8];
	char line[24];
	int fwd;
	fwd = 0;
	if (forward == 1) {
		fwd = 1;
	}
	read_line(line);
	strcpy(blob, line); // unbounded RPC argument blob
	if (fwd == 1) {
		print_str("callit forwarded");
	} else {
		print_str("callit rejected");
	}
}

int main() {
	char cmd[8];
	int secure;
	int lookups;
	int regs;
	int pings;
	secure = 1;
	lookups = 0;
	regs = 0;
	pings = 0;
	while (input_avail()) {
		read_line_n(cmd, 8);
		if (strcmp(cmd, "set") == 0) {
			int prog;
			int port;
			prog = read_num();
			port = read_num();
			if (port < 1024 && secure == 1) {
				print_str("denied: privileged port");
			} else if (register_map(prog, port) == 1) {
				regs = regs + 1;
				print_str("registered");
			} else {
				print_str("rejected");
			}
		} else if (strcmp(cmd, "unset") == 0) {
			int idx;
			idx = find_prog(read_num());
			if (idx < 0) {
				print_str("not registered");
			} else if (secure == 1 && mapport[idx] < 1024) {
				print_str("denied: privileged mapping");
			} else {
				mapon[idx] = 0;
				print_str("unregistered");
			}
		} else if (strcmp(cmd, "get") == 0) {
			int idx;
			idx = find_prog(read_num());
			lookups = lookups + 1;
			if (idx < 0) {
				print_int(0);
			} else {
				print_int(mapport[idx]);
			}
		} else if (strcmp(cmd, "call") == 0) {
			int forward;
			forward = 0;
			if (secure != 1) {
				forward = 1;
			}
			callit_io(forward);
		} else if (strcmp(cmd, "open") == 0) {
			secure = 0;
			print_str("insecure mode");
		} else if (strcmp(cmd, "dump") == 0) {
			print_int(nmaps);
			print_int(lookups);
			if (secure == 1) {
				print_str("secure");
			}
		} else if (strcmp(cmd, "ping") == 0) {
			int idx;
			idx = find_prog(read_num());
			pings = pings + 1;
			if (idx < 0) {
				print_str("program unavailable");
			} else if (mapport[idx] < 1024 && secure == 1) {
				print_str("alive (privileged)");
			} else {
				print_str("alive");
			}
		} else if (strcmp(cmd, "gc") == 0) {
			int j;
			int live;
			j = 0;
			live = 0;
			while (j < nmaps) {
				if (mapon[j] == 1) {
					live = live + 1;
				}
				j = j + 1;
			}
			if (live < nmaps) {
				print_str("compacted");
			} else {
				print_str("nothing to collect");
			}
			print_int(live);
		} else if (strcmp(cmd, "quit") == 0) {
			exit_prog(0);
		} else {
			print_str("bad rpc");
		}
		if (secure == 1) {
			if (regs > 6) {
				print_str("registration pressure");
			}
		} else {
			if (lookups > 900) {
				secure = 1;
				print_str("auto re-securing");
			}
		}
		if (regs < 0) {
			print_str("impossible: negative registrations");
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"set", "100003", "2049",
			"set", "100000", "111",
			"get", "100003",
			"call", "blob1",
			"open",
			"set", "100005", "635",
			"unset", "100003",
			"get", "100005",
			"call", "blob2",
			"dump",
			"quit",
		},
		ExtraSessions: [][]string{
			{
				"set", "7", "2049",
				"set", "8", "111",
				"ping", "7",
				"ping", "9",
				"unset", "7",
				"gc",
				"ping", "7",
				"dump",
				"quit",
			},
			{
				"open",
				"set", "5", "512",
				"ping", "5",
				"gc",
				"set", "6", "2048",
				"unset", "5",
				"gc",
				"call", "probe",
				"quit",
			},
		},
		PerfSession: repeat(250,
			"set", "%d", "2049",
			"get", "%d",
			"call", "ping",
			"unset", "%d",
			"dump",
		),
	}
}
