package workload

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/vm"
)

// runSession executes one workload session and returns the output.
func runSession(t *testing.T, w *Workload, session []string) []string {
	t.Helper()
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	res := vm.New(art.Prog, vm.DefaultConfig, session).Run()
	if res.Status != vm.Exited {
		t.Fatalf("%s: %v (%v)", w.Name, res.Status, res.Fault)
	}
	return res.Output
}

func wantLines(t *testing.T, w *Workload, out []string, wants ...string) {
	t.Helper()
	joined := strings.Join(out, "\n")
	for _, want := range wants {
		if !strings.Contains(joined, want) {
			t.Errorf("%s: output missing %q\n---\n%s", w.Name, want, joined)
		}
	}
}

// TestProtocolBehaviors locks in each server's observable protocol
// logic: authentication gates, privilege checks, limits. These are the
// behaviors the correlation analysis guards, so regressions here would
// silently change the experiments.
func TestProtocolBehaviors(t *testing.T) {
	t.Run("telnetd-privilege-gate", func(t *testing.T) {
		w := Telnetd()
		out := runSession(t, w, []string{
			"whoami",
			"exec", "reboot",
			"login", "guest", "guest",
			"exec", "reboot",
			"login", "root", "toor",
			"exec", "reboot",
			"quit",
		})
		wantLines(t, w, out, "nobody", "not logged in", "permission denied", "rebooting", "bye")
	})

	t.Run("telnetd-lockout", func(t *testing.T) {
		w := Telnetd()
		out := runSession(t, w, []string{
			"login", "x", "y",
			"login", "x", "y",
			"login", "x", "y",
			"login", "x", "y",
		})
		wantLines(t, w, out, "too many failures")
	})

	t.Run("ftpd-anonymous-restrictions", func(t *testing.T) {
		w := WuFTPD()
		out := runSession(t, w, []string{
			"USER", "anonymous",
			"PASS", "x",
			"RETR", "/etc/passwd",
			"STOR", "/pub/up",
			"RETR", "/pub/ok",
			"QUIT",
		})
		wantLines(t, w, out, "guest login ok", "550 permission denied",
			"550 read-only access", "226 transfer complete", "221 goodbye")
	})

	t.Run("xinetd-limits-and-lockdown", func(t *testing.T) {
		w := Xinetd()
		out := runSession(t, w, []string{
			"conn", "telnet", "a", // disabled by default
			"admin", "lockdown", "-",
			"conn", "echo", "b",
			"admin", "open", "-",
			"conn", "echo", "c",
			"quit",
		})
		wantLines(t, w, out, "refused: disabled", "refused: deny-all", "accepted")
	})

	t.Run("crond-root-policy", func(t *testing.T) {
		w := Crond()
		out := runSession(t, w, []string{
			"add", "1", "root",
			"noroot",
			"add", "2", "root",
			"tick",
			"quit",
		})
		wantLines(t, w, out, "job added", "root jobs disabled", "skip root job")
	})

	t.Run("sysklogd-threshold", func(t *testing.T) {
		w := Sysklogd()
		out := runSession(t, w, []string{
			"log", "<3>kept",
			"log", "<7>dropped",
			"stat",
			"quit",
		})
		wantLines(t, w, out, "kept", "1")
		for _, line := range out {
			if strings.Contains(line, "dropped-payload") {
				t.Error("high-priority record leaked past threshold")
			}
		}
	})

	t.Run("atftpd-state-machine", func(t *testing.T) {
		w := ATFTPD()
		out := runSession(t, w, []string{
			"data",
			"rrq", "secret/x",
			"rrq", "pub/ok",
			"rrq", "pub/again",
			"data", "data", "data", "data",
			"quit",
		})
		wantLines(t, w, out, "error: no transfer", "error: access denied",
			"transfer start", "error: busy", "transfer done")
	})

	t.Run("httpd-auth-gate", func(t *testing.T) {
		w := HTTPD()
		out := runSession(t, w, []string{
			"GET", "/admin",
			"AUTH", "letmein",
			"GET", "/admin",
			"GET", "/../secret",
			"QUIT",
		})
		wantLines(t, w, out, "401 unauthorized", "auth ok", "200 admin page", "403 forbidden")
	})

	t.Run("sendmail-relay-policy", func(t *testing.T) {
		w := Sendmail()
		out := runSession(t, w, []string{
			"MAIL", "a@local",
			"RCPT", "b@remote",
			"RELAY",
			"RCPT", "b@remote",
			"DATA",
			"QUIT",
		})
		wantLines(t, w, out, "550 relaying denied", "250 relay enabled",
			"250 recipient ok", "250 message queued")
	})

	t.Run("sshd-root-gate", func(t *testing.T) {
		w := SSHD()
		out := runSession(t, w, []string{
			"ver", "2",
			"auth", "alice", "userkey",
			"open",
			"exec", "shutdown",
			"quit",
		})
		wantLines(t, w, out, "auth success", "channel open", "permission denied")
	})

	t.Run("portmap-privileged-ports", func(t *testing.T) {
		w := Portmap()
		out := runSession(t, w, []string{
			"set", "9", "111",
			"open",
			"set", "9", "111",
			"get", "9",
			"quit",
		})
		wantLines(t, w, out, "denied: privileged port", "insecure mode", "registered", "111")
	})
}
