// Package workload provides the ten vulnerable server programs used in
// the paper's evaluation (telnetd, wu-ftpd, xinetd, crond, sysklogd,
// atftpd, httpd, sendmail, sshd, portmap), re-created in MiniC.
//
// The originals are tens of thousands of lines of C; what the
// experiments actually exercise is their *shape*: a command loop over
// attacker-influenced input, memory-resident authentication/privilege/
// mode state consulted at multiple program points, and unbounded copies
// into fixed stack buffers (the vulnerability classes of the paper:
// buffer overflow and format string). Each re-creation preserves that
// shape — the same protocol state machines, privilege checks and
// vulnerable copies — at a few hundred lines each, which is what the
// branch-correlation analysis and the tampering campaigns need.
package workload

import (
	"fmt"
	"strings"
)

// Workload is one server program plus the sessions that drive it.
type Workload struct {
	Name string
	Vuln string // the original program's headline vulnerability class

	// Source is the MiniC program text.
	Source string

	// AttackSession is the input used for the detection campaigns: a
	// benign session long enough to open many tamper windows.
	AttackSession []string

	// ExtraSessions are additional benign sessions exercising other
	// protocol paths; campaigns and the false-positive suite run over
	// all of them.
	ExtraSessions [][]string

	// PerfSession drives the performance runs (Figure 9); built by
	// repeating the server's command mix.
	PerfSession []string
}

// Sessions returns every benign session: the attack session first,
// then the extras.
func (w *Workload) Sessions() [][]string {
	out := [][]string{w.AttackSession}
	return append(out, w.ExtraSessions...)
}

// All returns the ten servers in the paper's order.
func All() []*Workload {
	return []*Workload{
		Telnetd(), WuFTPD(), Xinetd(), Crond(), Sysklogd(),
		ATFTPD(), HTTPD(), Sendmail(), SSHD(), Portmap(),
	}
}

// Names lists the workload names in the paper's order, for CLI
// help strings and iteration without building every program.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// ByName returns the named workload, or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// repeat builds a perf session by cycling the given command block n
// times, substituting %d with the iteration number where present.
func repeat(n int, block ...string) []string {
	out := make([]string, 0, n*len(block))
	for i := 0; i < n; i++ {
		for _, s := range block {
			if strings.Contains(s, "%d") {
				s = fmt.Sprintf(s, i)
			}
			out = append(out, s)
		}
	}
	return out
}
