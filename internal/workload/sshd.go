package workload

// SSHD models the ssh daemon (original CVE class: buffer overflow in
// challenge-response). Protocol version, auth budget, the
// authenticated/privileged flags and the channel count live in main's
// frame; the response check carries the vulnerable copy.
func SSHD() *Workload {
	return &Workload{
		Name: "sshd",
		Vuln: "buffer overflow",
		Source: `
// sshd: secure shell daemon (MiniC re-creation).
int audits;

// Reads the protocol version line; returns 2 or 1.
int version_io() {
	char v[8];
	read_line_n(v, 8);
	if (strcmp(v, "2") == 0) {
		return 2;
	}
	return 1;
}

// Vulnerable: the challenge response is copied into a fixed buffer
// (the CRC32/challenge-response overflow class). Returns 0 denied,
// 1 user, 2 root.
int check_response() {
	char user[12];
	char resp[8];
	char line[24];
	read_line_n(user, 12);
	read_line(line);
	strcpy(resp, line); // unbounded response copy
	if (strcmp(user, "root") == 0) {
		if (strcmp(resp, "rootkey") == 0) {
			return 2;
		}
		return 0;
	}
	if (strcmp(resp, "userkey") == 0) {
		return 1;
	}
	return 0;
}

int main() {
	char cmd[8];
	char ecmd[16];
	int protover;
	int attempts;
	int maxtries;
	int authok;
	int isroot;
	int channels;
	int copies;
	int envs;
	copies = 0;
	envs = 0;
	protover = 0;
	attempts = 0;
	maxtries = 3;
	authok = 0;
	isroot = 0;
	channels = 0;
	while (input_avail()) {
		read_line_n(cmd, 8);
		if (strcmp(cmd, "ver") == 0) {
			protover = version_io();
			if (protover == 2) {
				print_str("protocol 2");
			} else {
				print_str("protocol 1 (legacy)");
			}
		} else if (strcmp(cmd, "auth") == 0) {
			if (authok == 1) {
				read_line_n(ecmd, 16); // discard user
				read_line_n(ecmd, 16); // discard response
				print_str("already authenticated");
			} else if (attempts >= maxtries) {
				print_str("too many auth failures");
				exit_prog(1);
			} else {
				attempts = attempts + 1;
				if (protover != 2) {
					read_line_n(ecmd, 16);
					read_line_n(ecmd, 16);
					print_str("auth requires protocol 2");
				} else {
					int r;
					r = check_response();
					if (r > 0) {
						authok = 1;
						if (r > 1) {
							isroot = 1;
						}
						print_str("auth success");
					} else {
						print_str("auth failed");
					}
				}
			}
		} else if (strcmp(cmd, "open") == 0) {
			if (authok != 1) {
				print_str("no session");
			} else if (channels >= 4) {
				print_str("channel limit");
			} else {
				channels = channels + 1;
				print_str("channel open");
			}
		} else if (strcmp(cmd, "exec") == 0) {
			read_line_n(ecmd, 16);
			if (authok != 1) {
				print_str("not authenticated");
			} else if (channels < 1) {
				print_str("no channel");
			} else if (strcmp(ecmd, "shutdown") == 0) {
				if (isroot == 1) {
					print_str("system going down");
				} else {
					print_str("permission denied");
					audits = audits + 1;
				}
			} else {
				print_str("exec ok");
			}
		} else if (strcmp(cmd, "close") == 0) {
			if (channels > 0) {
				channels = channels - 1;
			}
			print_str("channel closed");
		} else if (strcmp(cmd, "scp") == 0) {
			read_line_n(ecmd, 16);
			if (authok != 1) {
				print_str("not authenticated");
			} else if (channels < 1) {
				print_str("no channel");
			} else if (strncmp(ecmd, "/etc", 4) == 0 && isroot != 1) {
				print_str("scp: permission denied");
			} else {
				copies = copies + 1;
				print_str("scp ok");
			}
		} else if (strcmp(cmd, "env") == 0) {
			read_line_n(ecmd, 16);
			if (authok == 1) {
				envs = envs + 1;
				print_str("env set");
			} else {
				print_str("env refused");
			}
		} else if (strcmp(cmd, "quit") == 0) {
			exit_prog(0);
		} else {
			print_str("bad packet");
		}
		if (authok == 1) {
			if (attempts > 0) {
				attempts = 0;
			}
			if (protover != 2) {
				print_str("impossible: session on legacy protocol");
			}
		}
		if (isroot == 1) {
			if (authok != 1) {
				print_str("impossible: root without auth");
			}
		}
		if (channels > 4) {
			print_str("impossible: channel overflow");
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"ver", "2",
			"auth", "alice", "wrongkey",
			"auth", "alice", "userkey",
			"open",
			"exec", "ls",
			"exec", "shutdown",
			"auth", "root", "rootkey",
			"open",
			"exec", "shutdown",
			"close",
			"exec", "uptime",
			"quit",
		},
		ExtraSessions: [][]string{
			{
				"ver", "2",
				"auth", "alice", "userkey",
				"open",
				"scp", "/home/a",
				"scp", "/etc/shadow",
				"env", "TERM=x",
				"close",
				"scp", "/home/b",
				"quit",
			},
			{
				"env", "LANG=C",
				"ver", "1",
				"auth", "alice", "userkey",
				"ver", "2",
				"auth", "root", "rootkey",
				"open",
				"scp", "/etc/shadow",
				"env", "PATH=/bin",
				"quit",
			},
		},
		PerfSession: append([]string{
			"ver", "2",
			"auth", "root", "rootkey",
			"open",
		}, repeat(300,
			"exec", "cmd-%d",
			"open",
			"close",
		)...),
	}
}
