package workload

// Sysklogd models the syslog daemon (original CVE class: format
// string). The priority threshold, forwarding flag and buffer
// accounting live in main's frame and gate every record.
func Sysklogd() *Workload {
	return &Workload{
		Name: "sysklogd",
		Vuln: "format string",
		Source: `
// sysklogd: system log daemon (MiniC re-creation).
int wrapped;

// Reads a record and returns its priority ("<n>message", default 6).
int read_record(char* line) {
	read_line(line); // raw client record
	if (line[0] != '<') { return 6; }
	if (line[1] >= '0') {
		if (line[1] <= '9') {
			return line[1] - '0';
		}
	}
	return 6;
}

// Vulnerable: the record is expanded into a fixed buffer with no
// bounds check (the format-string write primitive).
void format_rec(char* line, int marked) {
	char buf[8];
	int mark;
	mark = 0;
	if (marked == 1) {
		mark = 1;
	}
	strcpy(buf, line); // unbounded
	if (mark == 1) {
		print_str("fwd:");
	}
	print_str(buf);
}

int main() {
	char cmd[8];
	char line[32];
	char key[12];
	char val[8];
	int threshold;
	int forwarding;
	int dropped;
	int stored;
	threshold = 6;
	forwarding = 0;
	dropped = 0;
	stored = 0;
	while (input_avail()) {
		read_line_n(cmd, 8);
		if (strcmp(cmd, "log") == 0) {
			int pri;
			pri = read_record(line);
			if (pri > threshold) {
				dropped = dropped + 1;
			} else {
				stored = stored + 1;
				format_rec(line, forwarding);
				if (forwarding == 1) {
					print_str("relayed");
				}
				if (stored > 20) {
					wrapped = wrapped + 1;
					stored = 0;
				}
			}
		} else if (strcmp(cmd, "conf") == 0) {
			read_line_n(key, 12);
			read_line_n(val, 8);
			if (strcmp(key, "threshold") == 0) {
				threshold = atoi(val);
				print_str("threshold set");
			} else if (strcmp(key, "forward") == 0) {
				if (strcmp(val, "on") == 0) {
					forwarding = 1;
				} else {
					forwarding = 0;
				}
				print_str("forwarding set");
			} else {
				print_str("bad key");
			}
		} else if (strcmp(cmd, "stat") == 0) {
			print_int(stored);
			print_int(dropped);
			if (forwarding == 1) {
				print_str("forwarding");
			}
		} else if (strcmp(cmd, "rotate") == 0) {
			if (stored > 0) {
				wrapped = wrapped + 1;
				stored = 0;
				print_str("rotated");
			} else {
				print_str("nothing to rotate");
			}
		} else if (strcmp(cmd, "panic") == 0) {
			// kernel emergency: bypass the threshold once
			char line2[32];
			int save;
			save = threshold;
			threshold = 9;
			read_record(line2);
			stored = stored + 1;
			format_rec(line2, forwarding);
			threshold = save;
			print_str("emergency logged");
		} else if (strcmp(cmd, "quit") == 0) {
			exit_prog(0);
		} else {
			print_str("bad command");
		}
		if (threshold < 0) {
			threshold = 0;
		}
		if (forwarding == 1) {
			if (threshold > 9) {
				print_str("warning: forwarding everything");
			}
		}
		if (stored < 0) {
			print_str("impossible: negative store count");
		}
	}
	return 0;
}
`,
		AttackSession: []string{
			"log", "<3>disk failing",
			"log", "<7>debug noise",
			"conf", "threshold", "7",
			"log", "<7>debug kept",
			"conf", "forward", "on",
			"log", "<1>kernel panic",
			"stat",
			"log", "<5>auth ok",
			"conf", "forward", "off",
			"log", "<2>raid degraded",
			"stat",
			"quit",
		},
		ExtraSessions: [][]string{
			{
				"log", "<5>boot",
				"rotate",
				"rotate",
				"panic", "<0>oom",
				"stat",
				"conf", "threshold", "2",
				"log", "<5>filtered",
				"stat",
				"quit",
			},
			{
				"conf", "forward", "on",
				"panic", "<1>fire",
				"log", "<1>smoke",
				"conf", "bogus", "x",
				"rotate",
				"stat",
				"quit",
			},
		},
		PerfSession: append([]string{
			"conf", "threshold", "7",
			"conf", "forward", "on",
		}, repeat(300,
			"log", "<3>event %d",
			"log", "<6>info %d",
			"stat",
		)...),
	}
}
