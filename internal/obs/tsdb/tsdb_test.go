package tsdb

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// series fetches one named series from a timeline, failing the test if
// it is absent.
func series(t *testing.T, tl Timeline, name string) Series {
	t.Helper()
	for _, s := range tl.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q missing; have %d series", name, len(tl.Series))
	return Series{}
}

// TestCounterDeltas pins the core encoding: counter points are the
// per-interval increment, not the cumulative value, so each retained
// sample is self-contained and eviction needs no rebase.
func TestCounterDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("x_total")
	db := New(reg, 8, time.Second)

	steps := []uint64{5, 0, 120, 1}
	var now int64 = 1000
	for _, d := range steps {
		c.Add(d)
		db.sampleAt(now, reg.Snapshot())
		now += 1000
	}
	tl := db.Timeline()
	if len(tl.TimesNs) != len(steps) {
		t.Fatalf("got %d samples, want %d", len(tl.TimesNs), len(steps))
	}
	s := series(t, tl, "x_total")
	if s.Kind != KindCounter {
		t.Fatalf("kind = %q, want %q", s.Kind, KindCounter)
	}
	for i, d := range steps {
		if s.Points[i] != int64(d) {
			t.Fatalf("point %d = %d, want %d (points %v)", i, s.Points[i], d, s.Points)
		}
	}
}

// TestRingWraparound fills a small ring far past capacity and checks
// the window holds exactly the newest samples in order, with counter
// deltas still correct across the wrap — the first retained point's
// delta references an evicted sample, which must not matter.
func TestRingWraparound(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("x_total")
	g := reg.Gauge("depth")
	const capSamples = 4
	db := New(reg, capSamples, time.Second)

	const total = 11
	for i := 1; i <= total; i++ {
		c.Add(uint64(i)) // delta at sample i is exactly i
		g.Set(int64(i * 10))
		db.sampleAt(int64(i)*1000, reg.Snapshot())
	}
	tl := db.Timeline()
	if len(tl.TimesNs) != capSamples {
		t.Fatalf("got %d samples, want %d", len(tl.TimesNs), capSamples)
	}
	for j := 0; j < capSamples; j++ {
		wantIdx := total - capSamples + 1 + j // samples 8..11
		if tl.TimesNs[j] != int64(wantIdx)*1000 {
			t.Fatalf("time %d = %d, want %d", j, tl.TimesNs[j], wantIdx*1000)
		}
		if got := series(t, tl, "x_total").Points[j]; got != int64(wantIdx) {
			t.Fatalf("counter point %d = %d, want %d", j, got, wantIdx)
		}
		if got := series(t, tl, "depth").Points[j]; got != int64(wantIdx*10) {
			t.Fatalf("gauge point %d = %d, want %d", j, got, wantIdx*10)
		}
	}
}

// TestDeltaDecodeBoundaries pins the unpack edge cases: a series that
// appears mid-window decodes zeros before its first sample, negative
// gauges survive the zigzag round trip, and histogram-derived series
// report windowed (not lifetime) quantiles.
func TestDeltaDecodeBoundaries(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("temp")
	db := New(reg, 8, time.Second)

	g.Set(-42)
	db.sampleAt(1000, reg.Snapshot())

	// A histogram born after the first sample: its series join late.
	h := reg.Histogram("lat_ns")
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket upper bound 127
	}
	db.sampleAt(2000, reg.Snapshot())

	// Next interval is much slower; the windowed p50 must move to the
	// new regime even though the lifetime distribution is still
	// dominated by the fast observations.
	for i := 0; i < 100; i++ {
		h.Observe(100_000) // bucket upper bound 131071
	}
	db.sampleAt(3000, reg.Snapshot())

	tl := db.Timeline()
	if got := series(t, tl, "temp").Points; got[0] != -42 {
		t.Fatalf("negative gauge decoded as %d", got[0])
	}
	cnt := series(t, tl, "lat_ns/count")
	if cnt.Points[0] != 0 || cnt.Points[1] != 100 || cnt.Points[2] != 100 {
		t.Fatalf("lat_ns/count points = %v, want [0 100 100]", cnt.Points)
	}
	p50 := series(t, tl, "lat_ns/p50")
	if p50.Points[1] != 127 {
		t.Fatalf("first-window p50 = %d, want 127", p50.Points[1])
	}
	if p50.Points[2] != 131071 {
		t.Fatalf("second-window p50 = %d, want 131071 (windowed, not lifetime)", p50.Points[2])
	}
}

// TestHandler exercises the HTTP surface end to end: valid JSON with
// aligned series lengths.
func TestHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total").Add(3)
	db := New(reg, 4, time.Second)
	db.Sample()
	db.Sample()

	rec := httptest.NewRecorder()
	db.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	var tl Timeline
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(tl.TimesNs) != 2 {
		t.Fatalf("got %d samples, want 2", len(tl.TimesNs))
	}
	for _, s := range tl.Series {
		if len(s.Points) != len(tl.TimesNs) {
			t.Fatalf("series %q has %d points for %d samples", s.Name, len(s.Points), len(tl.TimesNs))
		}
	}
}

// TestNilSafety pins the disabled-DB convention: capacity <= 0 (or a
// nil registry) yields a nil DB whose methods are all no-ops.
func TestNilSafety(t *testing.T) {
	var db *DB
	db.Sample()
	db.Start()
	db.Stop()
	if tl := db.Timeline(); len(tl.Series) != 0 || len(tl.TimesNs) != 0 {
		t.Fatalf("nil DB timeline not empty: %+v", tl)
	}
	if New(obs.NewRegistry(), 0, time.Second) != nil {
		t.Fatal("capacity 0 should disable the DB")
	}
	if New(nil, 8, time.Second) != nil {
		t.Fatal("nil registry should disable the DB")
	}
}

// TestSampler smoke-tests Start/Stop with a fast ticker under -race:
// the sampler goroutine and a Timeline reader share the DB.
func TestSampler(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("x_total")
	db := New(reg, 16, 2*time.Millisecond)
	db.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.Inc()
		if len(db.Timeline().TimesNs) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no samples in 2s")
		}
		time.Sleep(time.Millisecond)
	}
	db.Stop()
	db.Stop() // idempotent
}
