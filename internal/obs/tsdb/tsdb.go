// Package tsdb is the daemon's in-process metric history: a
// fixed-footprint ring of periodic registry snapshots, exposed as the
// /debug/timeline JSON document and rendered by `ipdstop -history`.
//
// It is deliberately not a database. One sample is the delta since the
// previous sample, varint-packed into a single blob: counters store
// their per-interval increment (small numbers, short varints),
// gauges store their instantaneous value, and each histogram
// contributes a per-interval observation count plus windowed p50/p99
// series computed from its bucket deltas at sample time — so the
// quantile timeline tracks what the last interval looked like, not the
// lifetime distribution the raw histogram converges to. The ring
// overwrites oldest-first; because every retained point is
// self-contained (a delta or an absolute value), eviction never needs
// a rebase.
package tsdb

import (
	"encoding/binary"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Series kinds. A counter series' points are per-interval increments
// (a rate numerator); a gauge series' points are instantaneous values.
// Histogram-derived series reuse them: "/count" is a counter, "/p50"
// and "/p99" are gauges.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
)

// DB is one registry's sampled history. All methods are safe for
// concurrent use; the sampler goroutine (Start) and any number of
// Timeline readers share one mutex held only for the pack/unpack.
type DB struct {
	reg      *obs.Registry
	interval time.Duration

	mu    sync.Mutex
	ids   map[string]int // series name -> dense id
	names []string       // id -> name
	kinds []string       // id -> KindCounter / KindGauge
	lastC []uint64       // id -> previous absolute value (counter series)
	lastH map[string]obs.HistSnapshot

	samples []sample
	n       uint64 // lifetime samples; samples[(n-1) % len] is newest

	stopC chan struct{}
	done  chan struct{}
}

// sample is one packed snapshot delta: uvarint entry count, then
// (uvarint series id, uvarint value) pairs. Counter values are the
// interval's increment; gauge values are zigzag-encoded absolutes.
type sample struct {
	unixNs int64
	blob   []byte
}

// New sizes a history of capacity samples taken every interval.
// capacity <= 0 disables the DB entirely (all methods are no-ops), the
// same convention as a nil registry.
func New(reg *obs.Registry, capacity int, interval time.Duration) *DB {
	if capacity <= 0 || reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &DB{
		reg:      reg,
		interval: interval,
		ids:      map[string]int{},
		lastH:    map[string]obs.HistSnapshot{},
		samples:  make([]sample, capacity),
	}
}

// Start launches the background sampler. Stop tears it down.
func (db *DB) Start() {
	if db == nil || db.stopC != nil {
		return
	}
	db.stopC = make(chan struct{})
	db.done = make(chan struct{})
	go func() {
		defer close(db.done)
		t := time.NewTicker(db.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				db.Sample()
			case <-db.stopC:
				return
			}
		}
	}()
}

// Stop halts the sampler started by Start and waits for it to exit.
func (db *DB) Stop() {
	if db == nil || db.stopC == nil {
		return
	}
	close(db.stopC)
	<-db.done
	db.stopC, db.done = nil, nil
}

// Sample takes one snapshot now. Exposed so tests (and callers without
// a sampler goroutine) can drive the clock themselves.
func (db *DB) Sample() {
	if db == nil {
		return
	}
	db.sampleAt(time.Now().UnixNano(), db.reg.Snapshot())
}

// sid interns a series name under the given kind.
func (db *DB) sid(name, kind string) int {
	id, ok := db.ids[name]
	if !ok {
		id = len(db.names)
		db.ids[name] = id
		db.names = append(db.names, name)
		db.kinds = append(db.kinds, kind)
		db.lastC = append(db.lastC, 0)
	}
	return id
}

// zigzag maps signed values onto uvarint-friendly unsigned ones.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// sampleAt packs one registry snapshot into the ring. Split from
// Sample so tests control the timestamps.
func (db *DB) sampleAt(nowNs int64, snap obs.Snapshot) {
	db.mu.Lock()
	defer db.mu.Unlock()

	// Deterministic blob layout (sorted names) keeps samples
	// byte-comparable in tests; the cost is sorting a few dozen strings
	// once per second.
	type entry struct {
		id int
		v  uint64
	}
	var entries []entry

	for _, name := range sortedKeys(snap.Counters) {
		id := db.sid(name, KindCounter)
		v := snap.Counters[name]
		entries = append(entries, entry{id, v - db.lastC[id]})
		db.lastC[id] = v
	}
	for _, name := range sortedKeys(snap.Gauges) {
		id := db.sid(name, KindGauge)
		entries = append(entries, entry{id, zigzag(snap.Gauges[name])})
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		prev := db.lastH[name]
		// The interval's own distribution: cumulative buckets minus the
		// previous sample's. Quantiles over this window move with the
		// traffic instead of being anchored by history.
		win := obs.HistSnapshot{
			Count:   h.Count - prev.Count,
			Buckets: make([]uint64, len(h.Buckets)),
		}
		for i := range h.Buckets {
			var p uint64
			if i < len(prev.Buckets) {
				p = prev.Buckets[i]
			}
			win.Buckets[i] = h.Buckets[i] - p
		}
		db.lastH[name] = h

		cid := db.sid(name+"/count", KindCounter)
		entries = append(entries, entry{cid, win.Count})
		if win.Count > 0 {
			entries = append(entries,
				entry{db.sid(name+"/p50", KindGauge), zigzag(int64(win.Quantile(0.50)))},
				entry{db.sid(name+"/p99", KindGauge), zigzag(int64(win.Quantile(0.99)))})
		}
	}

	blob := binary.AppendUvarint(nil, uint64(len(entries)))
	for _, e := range entries {
		blob = binary.AppendUvarint(blob, uint64(e.id))
		blob = binary.AppendUvarint(blob, e.v)
	}
	db.samples[db.n%uint64(len(db.samples))] = sample{unixNs: nowNs, blob: blob}
	db.n++
}

// Timeline is the decoded /debug/timeline document: aligned series
// over the retained sample window, oldest first.
type Timeline struct {
	NowUnixNs  int64    `json:"now_unix_ns"`
	IntervalNs int64    `json:"interval_ns"`
	TimesNs    []int64  `json:"times_ns"`
	Series     []Series `json:"series"`
}

// Series is one metric's timeline. Points is index-aligned with the
// Timeline's TimesNs; samples where the series was absent read 0.
type Series struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []int64 `json:"points"`
}

// Timeline decodes the ring into the JSON document. nil-safe.
func (db *DB) Timeline() Timeline {
	tl := Timeline{TimesNs: []int64{}, Series: []Series{}}
	if db == nil {
		return tl
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tl.NowUnixNs = time.Now().UnixNano()
	tl.IntervalNs = int64(db.interval)

	size := uint64(len(db.samples))
	start := uint64(0)
	if db.n > size {
		start = db.n - size
	}
	nPts := int(db.n - start)
	points := make([][]int64, len(db.names))
	for j := uint64(0); start+j < db.n; j++ {
		s := db.samples[(start+j)%size]
		tl.TimesNs = append(tl.TimesNs, s.unixNs)
		b := s.blob
		cnt, off := binary.Uvarint(b)
		for k := uint64(0); k < cnt; k++ {
			id, n1 := binary.Uvarint(b[off:])
			off += n1
			raw, n2 := binary.Uvarint(b[off:])
			off += n2
			if int(id) >= len(points) {
				continue // blob from a future writer; ignore
			}
			if points[id] == nil {
				points[id] = make([]int64, nPts)
			}
			if db.kinds[id] == KindGauge {
				points[id][j] = unzigzag(raw)
			} else {
				points[id][j] = int64(raw)
			}
		}
	}
	for id, pts := range points {
		if pts == nil {
			continue // series known but absent from the retained window
		}
		tl.Series = append(tl.Series, Series{Name: db.names[id], Kind: db.kinds[id], Points: pts})
	}
	sort.Slice(tl.Series, func(i, j int) bool { return tl.Series[i].Name < tl.Series[j].Name })
	return tl
}

// Handler serves Timeline() as JSON — mounted at /debug/timeline.
func (db *DB) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(db.Timeline())
	})
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
