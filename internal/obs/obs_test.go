package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z")
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	var tr *Tracer
	stop := tr.Span("phase")
	stop() // must not panic
	if tr.Spans() != nil {
		t.Fatal("nil tracer recorded spans")
	}
	r.WritePrometheus(io.Discard)
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("branches_total")
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	c.Add(5)
	if got := r.Counter("branches_total").Value(); got != 15 {
		t.Fatalf("counter = %d, want 15", got)
	}
	g := r.Gauge("depth")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}

	h := r.Histogram("walk")
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1025 {
		t.Fatalf("sum = %d", h.Sum())
	}
	s := h.Snapshot()
	// 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4,7 -> bucket 3;
	// 8 -> bucket 4; 1000 -> bucket 10.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

func TestHistogramObserveN(t *testing.T) {
	r := NewRegistry()
	a, b := r.Histogram("a"), r.Histogram("b")
	values := map[uint64]uint64{0: 5, 1: 3, 2: 7, 5: 2, 1 << 40: 1}
	for v, n := range values {
		a.ObserveN(v, n)
		for i := uint64(0); i < n; i++ {
			b.Observe(v)
		}
	}
	a.ObserveN(9, 0) // no-op
	var nilH *Histogram
	nilH.ObserveN(1, 1) // nil-safe
	as, bs := a.Snapshot(), b.Snapshot()
	if as.Count != bs.Count || as.Sum != bs.Sum {
		t.Fatalf("ObserveN count/sum (%d,%d) != Observe loop (%d,%d)",
			as.Count, as.Sum, bs.Count, bs.Sum)
	}
	for i := range as.Buckets {
		if as.Buckets[i] != bs.Buckets[i] {
			t.Fatalf("bucket %d: ObserveN %d != Observe loop %d", i, as.Buckets[i], bs.Buckets[i])
		}
	}
}

func TestNameAndPrometheusText(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Fatal(got)
	}
	if got := Name("x_total", "workload", "httpd"); got != `x_total{workload="httpd"}` {
		t.Fatal(got)
	}

	r := NewRegistry()
	r.Counter(Name("branches_total", "workload", "httpd")).Add(42)
	r.Gauge("depth").Set(3)
	h := r.Histogram(Name("walk", "workload", "httpd"))
	h.Observe(0)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`branches_total{workload="httpd"} 42`,
		`depth 3`,
		`walk_bucket{workload="httpd",le="0"} 1`,
		`walk_bucket{workload="httpd",le="7"} 2`,
		`walk_bucket{workload="httpd",le="+Inf"} 2`,
		`walk_sum{workload="httpd"} 5`,
		`walk_count{workload="httpd"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(uint64(j))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	// Concurrent scrapes while writers run.
	for i := 0; i < 10; i++ {
		r.WritePrometheus(io.Discard)
		r.Snapshot()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	if r.Histogram("h").Count() != 8000 {
		t.Fatalf("histogram count = %d", r.Histogram("h").Count())
	}
}

func TestTracerSpansAndChromeTrace(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	stop := tr.Span("parse")
	time.Sleep(time.Millisecond)
	stop()
	tr.Span("sema")()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Name != "parse" || spans[0].Dur <= 0 {
		t.Fatalf("bad span %+v", spans[0])
	}
	if h := r.Histogram(Name("span_ns", "span", "parse")); h.Count() != 1 {
		t.Fatalf("span histogram not fed: %d", h.Count())
	}

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &evs); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(evs) != 2 || evs[0]["name"] != "parse" || evs[0]["ph"] != "X" {
		t.Fatalf("bad chrome trace: %v", evs)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up").Inc()
	r.PublishExpvar("test_registry")
	r.PublishExpvar("test_registry") // duplicate must not panic

	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "up 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "test_registry") {
		t.Fatalf("/debug/vars missing published registry:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ not serving an index:\n%s", body)
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	// 100 observations of 3 (bucket 2, upper edge 3) and one of 1000
	// (bucket 10, upper edge 1023).
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	h.Observe(1000)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	if got := s.Quantile(0); got != 3 {
		t.Fatalf("p0 = %d, want 3", got)
	}
	if got := s.Quantile(1); got != 1023 {
		t.Fatalf("p100 = %d, want 1023", got)
	}
	// Zeros land in bucket 0 with upper edge 0.
	z := r.Histogram("z")
	z.Observe(0)
	if got := z.Snapshot().Quantile(1); got != 0 {
		t.Fatalf("all-zero p100 = %d, want 0", got)
	}
	// Out-of-range q clamps instead of panicking or extrapolating.
	if got := s.Quantile(-0.5); got != 3 {
		t.Fatalf("q<0 = %d, want the p0 bound 3", got)
	}
	if got := s.Quantile(2); got != 1023 {
		t.Fatalf("q>1 = %d, want the p100 bound 1023", got)
	}
	// A single populated bucket answers every quantile with its upper
	// edge — the only bound a one-bucket distribution can honestly give.
	one := r.Histogram("one")
	one.Observe(5) // bucket 3, upper edge 7
	os := one.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := os.Quantile(q); got != 7 {
			t.Fatalf("single-bucket Quantile(%v) = %d, want 7", q, got)
		}
	}
}

// TestPrometheusLabelEscaping holds the exposition format where label
// values carry quotes, backslashes or newlines: Name renders them with
// %q, whose Go escapes (\" \\ \n) are exactly the three escapes the
// Prometheus text format defines for label values, so the scraped
// series stays parseable however hostile the program name.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("esc_total", "prog", `say "hi"`)).Add(1)
	r.Counter(Name("esc_total", "prog", `c:\boot`)).Add(2)
	r.Counter(Name("esc_total", "prog", "two\nlines")).Add(3)
	r.Histogram(Name("esc_ns", "prog", `q"\`)).Observe(1)

	var b strings.Builder
	r.WritePrometheus(&b)
	got := b.String()

	for _, want := range []string{
		`esc_total{prog="say \"hi\""} 1`,
		`esc_total{prog="c:\\boot"} 2`,
		`esc_total{prog="two\nlines"} 3`, // literal backslash-n, not a line break
		`esc_ns_bucket{prog="q\"\\",le="1"} 1`,
		`esc_ns_sum{prog="q\"\\"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition lacks %q:\n%s", want, got)
		}
	}
	// No label value may smuggle a raw newline into the middle of a
	// series line: every line must still be "name{labels} value".
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if !strings.HasPrefix(line, "esc_") {
			t.Errorf("escaping broke line framing: %q", line)
		}
	}
}

// TestWritePrometheusGolden pins the full text exposition format byte
// for byte: sorted counters, then gauges, then histograms; cumulative
// _bucket counts with exact power-of-two upper edges; empty buckets
// skipped; every histogram closed by le="+Inf" == _count plus _sum and
// _count series; labels composed with le last. Scrapers parse this
// surface — any drift is a regression, not a formatting choice.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("alarms_total").Add(7)
	r.Counter(Name("events_total", "workload", "ftpd")).Add(100)
	r.Gauge("sessions_active").Set(2)

	v := r.Histogram("verify_ns")
	for _, obs := range []uint64{0, 1, 1, 6, 200} {
		v.Observe(obs)
	}
	// An observation past the last finite bucket saturates into it.
	r.Histogram("sat").Observe(1 << 40)
	r.Histogram(Name("wait_ns", "shard", "0")).Observe(9)

	var b strings.Builder
	r.WritePrometheus(&b)
	got := b.String()

	want := `alarms_total 7
events_total{workload="ftpd"} 100
sessions_active 2
sat_bucket{le="4294967295"} 1
sat_bucket{le="+Inf"} 1
sat_sum 1099511627776
sat_count 1
verify_ns_bucket{le="0"} 1
verify_ns_bucket{le="1"} 3
verify_ns_bucket{le="7"} 4
verify_ns_bucket{le="255"} 5
verify_ns_bucket{le="+Inf"} 5
verify_ns_sum 208
verify_ns_count 5
wait_ns_bucket{shard="0",le="15"} 1
wait_ns_bucket{shard="0",le="+Inf"} 1
wait_ns_sum{shard="0"} 9
wait_ns_count{shard="0"} 1
`
	if got != want {
		t.Fatalf("prometheus text drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Cumulative invariant, independent of the golden string: within
	// each histogram the _bucket counts never decrease.
	var last uint64
	var cur string
	for _, line := range strings.Split(got, "\n") {
		i := strings.Index(line, "_bucket")
		if i < 0 {
			continue
		}
		if line[:i] != cur {
			cur, last = line[:i], 0
		}
		var n uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q (%d < %d)", line, n, last)
		}
		last = n
	}
}
