package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one recorded phase: a named interval relative to the tracer's
// start time.
type Span struct {
	Name  string
	Start time.Duration // offset from the tracer's first span
	Dur   time.Duration
}

// Tracer records named phase spans (compiler phases, per-workload
// experiment runs). Every finished span feeds a `span_ns{span="name"}`
// histogram in the attached registry, and the full span list can be
// dumped as a Chrome trace-event JSON file (chrome://tracing,
// Perfetto).
//
// A nil *Tracer is valid and free: Span returns a no-op stop function.
type Tracer struct {
	reg *Registry

	mu    sync.Mutex
	t0    time.Time
	spans []Span
}

// NewTracer creates a tracer feeding reg (which may be nil: spans are
// then only kept for the trace file).
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: reg}
}

var nopStop = func() {}

// Registry returns the registry the tracer feeds, nil for a nil tracer
// or a tracer created without one. Callers use it to hang counters next
// to the tracer's span histograms (e.g. the pipeline's tcache_hits
// counters); the nil-safety contract of Registry methods makes the
// result usable unconditionally.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Span starts a named span and returns its stop function. Safe for
// concurrent use; nested spans are fine (they simply overlap in the
// trace).
func (t *Tracer) Span(name string) func() {
	if t == nil {
		return nopStop
	}
	start := time.Now()
	t.mu.Lock()
	if t.t0.IsZero() {
		t.t0 = start
	}
	t0 := t.t0
	t.mu.Unlock()
	return func() {
		d := time.Since(start)
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t0), Dur: d})
		t.mu.Unlock()
		t.reg.Histogram(Name("span_ns", "span", name)).Observe(uint64(d.Nanoseconds()))
	}
}

// Spans returns a copy of all finished spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event; ts/dur in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace dumps all finished spans as a Chrome trace-event
// JSON array, loadable in chrome://tracing or Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := []chromeEvent{}
	for _, s := range t.Spans() {
		evs = append(evs, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  1,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}
