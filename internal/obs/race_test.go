package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentExposition hammers one registry from writers (hot-path
// metric updates and new-metric registration) while readers render the
// Prometheus text exposition and take snapshots. Run under -race (the
// Makefile's race target covers ./internal/...), this pins the
// registry's central claim: exposition never excludes or torments a
// concurrently-updating metric, and metric creation during a render is
// safe.
func TestConcurrentExposition(t *testing.T) {
	r := NewRegistry()
	const writers, iters = 4, 2000

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			c := r.Counter("shared_total")
			g := r.Gauge("shared_depth")
			h := r.Histogram("shared_ns")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(uint64(i))
				if i%100 == 0 {
					// Registration mid-flight: a label variant a renderer
					// may or may not see, but must never trip over.
					r.Counter(Name("late_total", "writer", string(rune('a'+w)))).Inc()
				}
			}
		}(w)
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				r.WritePrometheus(io.Discard)
				snap := r.Snapshot()
				if snap.Counters == nil || snap.Histograms == nil {
					t.Error("nil snapshot maps")
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := r.Counter("shared_total").Value(); got != writers*iters {
		t.Fatalf("shared_total = %d, want %d", got, writers*iters)
	}
	if got := r.Histogram("shared_ns").Count(); got != writers*iters {
		t.Fatalf("shared_ns count = %d, want %d", got, writers*iters)
	}
}
