// Package obs is the repo's zero-dependency observability layer: a
// metrics registry (atomic counters, gauges, fixed power-of-two-bucket
// histograms), a phase tracer, and HTTP exposure (Prometheus text,
// expvar, pprof).
//
// Everything is built to be safe to thread through hot paths
// unconditionally: a nil *Registry hands out nil metrics, and every
// metric method is a no-op on a nil receiver, so instrumented code pays
// one predictable branch when telemetry is off and one atomic add when
// it is on.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 holds
// zeros). The upper bound of bucket i is therefore 2^i - 1, which is
// what the Prometheus "le" labels report.
const histBuckets = 33

// Histogram is a fixed power-of-two-bucket histogram for small integer
// quantities (BAT walk lengths, spilled bits, span nanoseconds).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveN records n observations of the same value in one shot:
// bucket, count and sum move exactly as n Observe(v) calls would, but
// with three atomic adds total. This is the flush primitive for hot
// loops that tally observations in batch-local scalars (the ipds
// OnBatch kernel counts BAT walk lengths locally and flushes once per
// batch). n == 0 is a no-op.
func (h *Histogram) ObserveN(v, n uint64) {
	if h == nil || n == 0 {
		return
	}
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets []uint64 // len histBuckets, bucket i: values with bit length i
}

// Quantile returns an upper bound on the q-th quantile (q in 0..1): the
// upper edge of the power-of-two bucket where the cumulative count
// crosses rank q. Bucket resolution, not interpolation — good to a
// factor of two, which is what latency percentiles over power-of-two
// buckets can honestly claim. Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(s.Count-1)) + 1
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<uint(len(s.Buckets)-1) - 1
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: make([]uint64, histBuckets)}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Registry holds named metrics. Metric creation (Counter/Gauge/
// Histogram) is get-or-create and guarded by a mutex; the returned
// metric objects are lock-free. Names may carry Prometheus-style
// labels produced by Name.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Name renders a metric name with label pairs: Name("x_total",
// "workload", "httpd") -> `x_total{workload="httpd"}`.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, JSON-friendly for
// expvar and report rendering.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies all metric values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// splitName separates a labelled name into base and label body:
// `x{a="b"}` -> ("x", `a="b"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// joinLabels recombines label bodies, dropping empties.
func joinLabels(parts ...string) string {
	var kept []string
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format. Histograms expose cumulative buckets with exact power-of-two
// upper bounds (le="2^i - 1") plus +Inf, _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	snap := r.Snapshot()

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, snap.Gauges[name])
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		base, labels := splitName(name)
		var cum uint64
		for i, b := range h.Buckets {
			cum += b
			if b == 0 {
				continue // keep output compact: only non-empty buckets (+Inf closes the series)
			}
			le := fmt.Sprintf(`le="%d"`, uint64(1)<<uint(i)-1)
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, le), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), h.Count)
		fmt.Fprintf(w, "%s_sum%s %d\n", base, joinLabels(labels), h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels), h.Count)
	}
}
