package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// MetricsHandler serves the registry in Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry's snapshot as a named expvar (under
// /debug/vars). Repeated publishes of the same name are ignored —
// expvar itself panics on duplicates, and tests create many registries.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	reg := r
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

// NewMux builds the telemetry mux: /metrics (Prometheus text),
// /debug/vars (expvar) and /debug/pprof/* (net/http/pprof), without
// touching http.DefaultServeMux.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry endpoint on addr (":6060", "127.0.0.1:0")
// in a background goroutine. It returns the server (Close it to stop)
// and the bound address, useful when addr requested port 0.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	return ServeHandler(addr, NewMux(r))
}

// ServeHandler is Serve for a caller-built handler — typically an
// obs.NewMux the caller has mounted extra endpoints on (ipdsd adds the
// daemon's /debug/sessions next to /metrics this way).
func ServeHandler(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
