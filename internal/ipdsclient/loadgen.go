package ipdsclient

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// LoadConfig parameterises a load-generation run against a daemon.
type LoadConfig struct {
	// Addr is the daemon's address.
	Addr string

	// Image is the table-image hash every session verifies against.
	Image [32]byte

	// Program labels the sessions.
	Program string

	// Trace is the event stream each session replays. Sessions loop it
	// until they have sent at least EventsPerConn events.
	Trace []wire.Event

	// Sessions is the number of concurrent connections (default 1).
	Sessions int

	// EventsPerConn is the minimum events each session ships
	// (default: one pass over Trace).
	EventsPerConn int

	// Batch is the per-frame event count (default 512).
	Batch int

	// Timeout bounds each session's network operations.
	Timeout time.Duration

	// TraceSample, when > 0, stamps every TraceSample-th batch of each
	// session with the wire trace extension (Config.TraceSample). A
	// tracing run takes the re-encoding Send path — the shared
	// pre-encoded block cannot carry per-batch origin timestamps — so
	// throughput numbers from a traced run measure the traced protocol,
	// not the replay fast path.
	TraceSample int
}

// LoadResult aggregates a load run.
type LoadResult struct {
	Sessions  int
	Events    uint64        // total events verified across sessions
	Alarms    uint64        // total alarms delivered
	AlarmCtxs uint64        // forensic AlarmCtx frames delivered
	Elapsed   time.Duration // wall clock, dial to last drain
	EventsSec float64       // Events / Elapsed

	// Ack round-trip latency percentiles across all sessions.
	AckP50, AckP95, AckP99 time.Duration

	// Alarm delivery latency percentiles (send of the batch carrying
	// the offending branch → alarm frame arrival); zero when the trace
	// raises no alarms.
	AlarmP50, AlarmP95, AlarmP99 time.Duration

	// Incidents is the ranked incident list the daemon emitted during
	// drain (one session's copy — every session receives the same
	// server-wide list, so keeping one avoids double counting). Empty
	// when the daemon runs with its incident stage disabled.
	Incidents []wire.Incident

	// Errors collects per-session failures (nil entries elided).
	Errors []error
}

// RunLoad replays cfg.Trace from cfg.Sessions concurrent connections
// and reports aggregate throughput and latency percentiles.
func RunLoad(cfg LoadConfig) LoadResult {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.EventsPerConn <= 0 {
		cfg.EventsPerConn = len(cfg.Trace)
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		events    uint64
		alarms    uint64
		ctxs      uint64
		incidents []wire.Incident
		ackLat    []time.Duration
		alarmLat  []time.Duration
		errs      []error
	)

	// Pre-encode the trace into one block of Batch frames, shared
	// read-only by every session. Replaying the block costs one socket
	// write instead of re-encoding the same events each pass, so the
	// generator's CPU measures the daemon rather than its own encoder —
	// which matters most when client and daemon share cores. The event
	// sequence is byte-for-byte the sequence Send would produce; only
	// frame boundaries differ (the machine carries state across frames,
	// so alarms are identical).
	batch := cfg.Batch
	if batch <= 0 || batch > wire.MaxBatch {
		batch = 512
	}
	var (
		block         []byte
		blockEvents   int
		blockBranches uint64
	)
	if len(cfg.Trace) > 0 && cfg.TraceSample <= 0 {
		const targetBlock = 16384 // events per block: enough to amortize per-write marks
		reps := targetBlock / len(cfg.Trace)
		if c := cfg.EventsPerConn / len(cfg.Trace); c >= 1 && c < reps {
			reps = c // keep the overshoot past EventsPerConn bounded
		}
		if reps < 1 {
			reps = 1
		}
		evs := make([]wire.Event, 0, reps*len(cfg.Trace))
		for i := 0; i < reps; i++ {
			evs = append(evs, cfg.Trace...)
		}
		block = wire.AppendBatches(nil, evs, batch)
		blockEvents = len(evs)
		for _, ev := range evs {
			if ev.Kind == wire.EvBranch {
				blockBranches++
			}
		}
	}

	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(Config{
				Addr:    cfg.Addr,
				Image:   cfg.Image,
				Program: fmt.Sprintf("%s#%d", cfg.Program, id),
				Batch:   cfg.Batch,
				Timeout: cfg.Timeout,
				// Forensic contexts are counted, not decoded: the load
				// run measures the daemon, not this process's allocator.
				DiscardCtx:  true,
				TraceSample: cfg.TraceSample,
			})
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("session %d: %w", id, err))
				mu.Unlock()
				return
			}
			defer c.Close()
			// The pre-encoded block requires the negotiated per-frame
			// limit to cover the batch size it was built with; a daemon
			// advertising a smaller MaxBatch gets the re-encoding path.
			useBlock := len(block) > 0 && c.Batch() >= batch
			sent := 0
			for sent < cfg.EventsPerConn && len(cfg.Trace) > 0 {
				var err error
				if useBlock {
					err = c.SendEncoded(block, uint64(blockEvents), blockBranches)
					sent += blockEvents
				} else {
					err = c.Send(cfg.Trace...)
					sent += len(cfg.Trace)
				}
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("session %d: %w", id, err))
					mu.Unlock()
					return
				}
			}
			if err := c.Drain(); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("session %d: %w", id, err))
				mu.Unlock()
				return
			}
			ack, al := c.Latencies()
			mu.Lock()
			events += c.Acked()
			alarms += uint64(len(c.Alarms()))
			ctxs += c.CtxCount()
			if inc := c.Incidents(); len(inc) > len(incidents) {
				incidents = inc // keep the fullest drain-time list, not a sum
			}
			ackLat = append(ackLat, ack...)
			alarmLat = append(alarmLat, al...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := LoadResult{
		Sessions:  cfg.Sessions,
		Events:    events,
		Alarms:    alarms,
		AlarmCtxs: ctxs,
		Elapsed:   elapsed,
		AckP50:    Percentile(ackLat, 0.50),
		AckP95:    Percentile(ackLat, 0.95),
		AckP99:    Percentile(ackLat, 0.99),
		AlarmP50:  Percentile(alarmLat, 0.50),
		AlarmP95:  Percentile(alarmLat, 0.95),
		AlarmP99:  Percentile(alarmLat, 0.99),
		Incidents: incidents,
		Errors:    errs,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.EventsSec = float64(events) / secs
	}
	return res
}
