package ipdsclient

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// LoadConfig parameterises a load-generation run against a daemon.
type LoadConfig struct {
	// Addr is the daemon's address.
	Addr string

	// Image is the table-image hash every session verifies against.
	Image [32]byte

	// Program labels the sessions.
	Program string

	// Trace is the event stream each session replays. Sessions loop it
	// until they have sent at least EventsPerConn events.
	Trace []wire.Event

	// Sessions is the number of concurrent connections (default 1).
	Sessions int

	// EventsPerConn is the minimum events each session ships
	// (default: one pass over Trace).
	EventsPerConn int

	// Batch is the per-frame event count (default 512).
	Batch int

	// Timeout bounds each session's network operations.
	Timeout time.Duration
}

// LoadResult aggregates a load run.
type LoadResult struct {
	Sessions  int
	Events    uint64        // total events verified across sessions
	Alarms    uint64        // total alarms delivered
	Elapsed   time.Duration // wall clock, dial to last drain
	EventsSec float64       // Events / Elapsed

	// Ack round-trip latency percentiles across all sessions.
	AckP50, AckP95, AckP99 time.Duration

	// Alarm delivery latency percentiles (send of the batch carrying
	// the offending branch → alarm frame arrival); zero when the trace
	// raises no alarms.
	AlarmP50, AlarmP95, AlarmP99 time.Duration

	// Errors collects per-session failures (nil entries elided).
	Errors []error
}

// RunLoad replays cfg.Trace from cfg.Sessions concurrent connections
// and reports aggregate throughput and latency percentiles.
func RunLoad(cfg LoadConfig) LoadResult {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.EventsPerConn <= 0 {
		cfg.EventsPerConn = len(cfg.Trace)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		events   uint64
		alarms   uint64
		ackLat   []time.Duration
		alarmLat []time.Duration
		errs     []error
	)
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(Config{
				Addr:    cfg.Addr,
				Image:   cfg.Image,
				Program: fmt.Sprintf("%s#%d", cfg.Program, id),
				Batch:   cfg.Batch,
				Timeout: cfg.Timeout,
			})
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("session %d: %w", id, err))
				mu.Unlock()
				return
			}
			defer c.Close()
			sent := 0
			for sent < cfg.EventsPerConn && len(cfg.Trace) > 0 {
				if err := c.Send(cfg.Trace...); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("session %d: %w", id, err))
					mu.Unlock()
					return
				}
				sent += len(cfg.Trace)
			}
			if err := c.Drain(); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("session %d: %w", id, err))
				mu.Unlock()
				return
			}
			ack, al := c.Latencies()
			mu.Lock()
			events += c.Acked()
			alarms += uint64(len(c.Alarms()))
			ackLat = append(ackLat, ack...)
			alarmLat = append(alarmLat, al...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := LoadResult{
		Sessions: cfg.Sessions,
		Events:   events,
		Alarms:   alarms,
		Elapsed:  elapsed,
		AckP50:   Percentile(ackLat, 0.50),
		AckP95:   Percentile(ackLat, 0.95),
		AckP99:   Percentile(ackLat, 0.99),
		AlarmP50: Percentile(alarmLat, 0.50),
		AlarmP95: Percentile(alarmLat, 0.95),
		AlarmP99: Percentile(alarmLat, 0.99),
		Errors:   errs,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.EventsSec = float64(events) / secs
	}
	return res
}
