package ipdsclient

import (
	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Capture executes art.Prog under the VM with the given input and
// records the branch-event stream an attached detector would see —
// function entries, exits, and every committed conditional branch — as
// wire events ready to ship to an ipdsd daemon.
func Capture(art *pipeline.Artifacts, input []string) []wire.Event {
	var evs []wire.Event
	v := vm.New(art.Prog, vm.DefaultConfig, input)
	v.AddHooks(vm.Hooks{
		OnCall: func(fn *ir.Func) {
			evs = append(evs, wire.Event{Kind: wire.EvEnter, PC: fn.Base})
		},
		OnRet: func(fn *ir.Func) {
			evs = append(evs, wire.Event{Kind: wire.EvLeave})
		},
		OnBranch: func(br *ir.Instr, taken bool) {
			evs = append(evs, wire.Event{Kind: wire.EvBranch, PC: br.PC, Taken: taken})
		},
	})
	v.Run()
	return evs
}

// Tamper returns a copy of a captured trace with every stride-th branch
// direction flipped (stride <= 0 means 97, a prime that scatters flips
// across protocol phases). This is the wire-level model of a control
// flow bent by memory corruption: the PCs are still legal branch sites,
// but the directions contradict the correlations the tables encode, so
// the verifier raises alarms exactly where a live detector would.
func Tamper(evs []wire.Event, stride int) []wire.Event {
	if stride <= 0 {
		stride = 97
	}
	out := make([]wire.Event, len(evs))
	copy(out, evs)
	nb := 0
	for i := range out {
		if out[i].Kind != wire.EvBranch {
			continue
		}
		if nb%stride == stride-1 {
			out[i].Taken = !out[i].Taken
		}
		nb++
	}
	return out
}

// TamperPoint returns a copy of a captured trace where, from the
// from-th event onward, every other visit to the branch at pc is
// flipped. Where Tamper models scattered corruption noise, TamperPoint
// models one persistent corruption with an onset: a repeatedly
// clobbered flag that makes a single branch site thrash, contradicting
// the invariant-direction correlation the tables encode for it on
// every other visit. (A constant forced direction would be
// self-consistent — the detector checks branches against correlations,
// not absolute directions — so the corrupted site must keep disagreeing
// with itself to flood the verifier from one root cause.) The
// incident-pipeline gate seeds exactly this shape and requires the
// pipeline to fold the flood into its top-ranked incident.
func TamperPoint(evs []wire.Event, pc uint64, from int) []wire.Event {
	out := make([]wire.Event, len(evs))
	copy(out, evs)
	if from < 0 {
		from = 0
	}
	flip := true
	for i := from; i < len(out); i++ {
		if out[i].Kind == wire.EvBranch && out[i].PC == pc {
			if flip {
				out[i].Taken = !out[i].Taken
			}
			flip = !flip
		}
	}
	return out
}

// ReplayLocalBatched feeds a trace through the machine's batched kernel
// (ipds.Machine.OnBatch) in batches of the given size (<= 0 means
// wire.MaxBatch), copying each batch's alarms out of the machine-owned
// result buffer. It must produce the same alarms, in the same order, as
// ReplayLocal over the same trace — the golden equivalence test in
// internal/server holds both (and the remote daemon) to that.
func ReplayLocalBatched(m *ipds.Machine, evs []wire.Event, batch int) []ipds.Alarm {
	if batch <= 0 {
		batch = wire.MaxBatch
	}
	var out []ipds.Alarm
	for len(evs) > 0 {
		n := batch
		if n > len(evs) {
			n = len(evs)
		}
		out = append(out, m.OnBatch(evs[:n])...)
		evs = evs[n:]
	}
	return out
}

// WireContext converts a machine-captured forensic context to its wire
// frame form — the same mapping the daemon's no-box encoder performs
// when it follows an Alarm frame with an AlarmCtx. Tests use it to hold
// the daemon's forensics byte-identical to an in-process machine's:
// WireContext over the local machine's context must equal the AlarmCtx
// the client received. Spill/fill events carry their bits moved in the
// wire event's PC slot, as the wire format specifies.
func WireContext(c *ipds.AlarmContext) wire.AlarmCtx {
	out := wire.AlarmCtx{
		Seq:      c.Alarm.Seq,
		Recorded: c.Recorded,
	}
	if len(c.Stack) > 0 {
		out.Stack = make([]wire.CtxFrame, len(c.Stack))
		for i, fr := range c.Stack {
			out.Stack[i] = wire.CtxFrame{Base: fr.Base, Func: fr.Func}
		}
	}
	if len(c.Recent) > 0 {
		out.Recent = make([]wire.CtxEvent, len(c.Recent))
		for i, ev := range c.Recent {
			we := wire.CtxEvent{Seq: ev.Seq, Depth: uint32(ev.Depth)}
			switch ev.Kind {
			case ipds.EvEnter:
				we.Kind, we.PC = wire.EvEnter, ev.PC
			case ipds.EvLeave:
				we.Kind = wire.EvLeave
			case ipds.EvBranch:
				we.Kind, we.PC, we.Taken = wire.EvBranch, ev.PC, ev.Taken
			case ipds.EvSpill:
				we.Kind, we.PC = wire.EvSpill, uint64(uint32(ev.Bits))
			case ipds.EvFill:
				we.Kind, we.PC = wire.EvFill, uint64(uint32(ev.Bits))
			}
			out.Recent[i] = we
		}
	}
	if len(c.BSV) > 0 {
		out.BSV = make([]uint8, len(c.BSV))
		for i, st := range c.BSV {
			out.BSV[i] = uint8(st)
		}
	}
	return out
}

// ReplayLocal feeds a trace to an in-process ipds.Machine and returns
// every alarm raised, in order. This is the reference the remote path
// must match byte for byte: the daemon runs the same machine over the
// same events, so the alarm sets (Seq/PC/Func/Slot) are identical.
func ReplayLocal(m *ipds.Machine, evs []wire.Event) []ipds.Alarm {
	var out []ipds.Alarm
	for _, ev := range evs {
		switch ev.Kind {
		case wire.EvEnter:
			m.EnterFunc(ev.PC)
		case wire.EvLeave:
			m.LeaveFunc()
		case wire.EvBranch:
			if a, _ := m.OnBranch(ev.PC, ev.Taken); a != nil {
				out = append(out, *a)
			}
		}
	}
	return out
}
