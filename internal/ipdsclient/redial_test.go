package ipdsclient_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestRedialResumesSession is the handoff primitive's unit test: a
// session that drains cleanly and redials must read exactly like one
// uninterrupted session — cumulative acks, and alarms whose re-based
// sequence numbers match a single continuous in-process replay of
// both passes. This is what makes a fleet-level drain handoff
// invisible: machine state is empty at a balanced pass boundary, so
// only the branch-sequence offset (which Redial re-bases) and the
// event total (which it carries) distinguish the resumed session.
func TestRedialResumesSession(t *testing.T) {
	w := workload.ByName("telnetd")
	if w == nil {
		t.Fatal("telnetd workload missing")
	}
	art, err := pipeline.CompileWith(w.Source, ir.DefaultOptions, pipeline.Config{}, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	store := server.NewImageStore(nil)
	hash := store.Add(w.Name, art.Image)
	srv := server.New(store, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 31)
	// Reference: both passes through ONE machine, uninterrupted.
	full := append(append([]wire.Event{}, trace...), trace...)
	ref := ipdsclient.ReplayLocal(ipds.New(art.Image, ipds.DefaultConfig), full)
	if len(ref) == 0 {
		t.Fatal("tampered trace raised no reference alarms; test is vacuous")
	}

	cfg := ipdsclient.Config{Addr: ln.Addr().String(), Image: hash, Program: w.Name, Batch: 256}
	c, err := ipdsclient.Dial(cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send pass 1: %v", err)
	}

	// A still-live session must refuse to redial.
	if _, err := ipdsclient.Redial(c); err == nil {
		t.Fatal("Redial succeeded on a live session")
	}

	if err := c.Drain(); err != nil {
		t.Fatalf("drain pass 1: %v", err)
	}
	c.Close()

	c2, err := ipdsclient.Redial(c)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer c2.Close()
	if err := c2.Send(trace...); err != nil {
		t.Fatalf("send pass 2: %v", err)
	}
	if err := c2.Drain(); err != nil {
		t.Fatalf("drain pass 2: %v", err)
	}

	if want := uint64(2 * len(trace)); c2.Sent() != want || c2.Acked() != want {
		t.Fatalf("resumed session sent/acked = %d/%d, want %d/%d", c2.Sent(), c2.Acked(), want, want)
	}
	got := c2.Alarms()
	if len(got) != len(ref) {
		t.Fatalf("resumed session raised %d alarms, want %d", len(got), len(ref))
	}
	for i, a := range got {
		r := ref[i]
		if a.Seq != r.Seq || a.PC != r.PC || a.Func != r.Func ||
			a.Slot != uint32(r.Slot) || a.Expected != uint8(r.Expected) || a.Taken != r.Taken {
			t.Fatalf("alarm %d: got %+v, want %+v", i, a, r)
		}
	}
	// Alarm/AlarmCtx pairing survives the re-basing: every context's
	// Seq must name an alarm the resumed client holds.
	seqs := map[uint64]bool{}
	for _, a := range got {
		seqs[a.Seq] = true
	}
	for i, cx := range c2.AlarmContexts() {
		if !seqs[cx.Seq] {
			t.Fatalf("context %d names seq %d, which matches no alarm", i, cx.Seq)
		}
	}
}
