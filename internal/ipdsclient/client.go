// Package ipdsclient is the client half of the remote-attestation
// stack: it connects a branch-event stream to an ipdsd verification
// daemon (internal/server) over the internal/wire protocol. The
// package also carries the trace tooling the daemon's tests and the
// load generator share — capturing a program's event trace from a VM
// run, tampering a trace the way a memory-corruption attack bends
// control flow, replaying a trace against an in-process machine for a
// reference alarm set, and a multi-session load generator.
package ipdsclient

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Config parameterises a client connection.
type Config struct {
	// Addr is the daemon's TCP address.
	Addr string

	// Image is the content hash (tables.Image.Hash) of the table image
	// the event stream must be verified against.
	Image [32]byte

	// Program names the client for daemon-side diagnostics.
	Program string

	// Batch is the events-per-frame flush threshold (default 512,
	// capped at wire.MaxBatch).
	Batch int

	// Timeout bounds dial, handshake and individual writes
	// (default 10s).
	Timeout time.Duration

	// OnAlarm, when set, observes each alarm as it arrives (called
	// from the client's reader goroutine).
	OnAlarm func(wire.Alarm)

	// OnAlarmCtx, when set, observes each forensic alarm context as it
	// arrives (called from the reader goroutine). A daemon running with
	// its flight recorder enabled (the default) follows every Alarm
	// frame with the AlarmCtx that annotates it, paired by Seq.
	OnAlarmCtx func(wire.AlarmCtx)

	// DiscardCtx makes the client count AlarmCtx frames without
	// decoding or retaining them: AlarmContexts stays empty and
	// OnAlarmCtx is never called, but CtxCount still tallies every
	// frame. Load generation uses this — at adversarial alarm rates
	// the forensic stream is bulky, and decoding it in-process would
	// measure the client's allocator instead of the daemon.
	DiscardCtx bool

	// TraceSample, when > 0, stamps every TraceSample-th flushed batch
	// with the wire trace extension (a fresh trace id plus the client's
	// clock at flush), making the daemon expand that batch into a
	// per-stage span record behind /debug/trace. 0 (the default) sends
	// batches byte-identical to a pre-trace client.
	TraceSample int
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 || c.Batch > wire.MaxBatch {
		if c.Batch > wire.MaxBatch {
			c.Batch = wire.MaxBatch
		} else {
			c.Batch = 512
		}
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// batchMark remembers when a flushed batch was sent so acks and alarms
// can be turned into latency samples. The lower bounds (evLo, brLo)
// also let Redial roll a cut-off session back to the last boundary the
// server acked: acks always land on batch boundaries, so the acked
// point is the base of some unretired mark.
type batchMark struct {
	evLo, events   uint64 // cumulative events before / after this batch
	brLo, branchHi uint64 // cumulative branch events before / after
	sent           time.Time
}

// Client is one verifier session. Send/Flush/Drain must be called from
// a single goroutine; alarm and ack delivery runs on an internal
// reader goroutine.
type Client struct {
	cfg  Config
	conn net.Conn
	buf  []byte
	pend []wire.Event

	sent     uint64 // events flushed (cumulative across redials)
	branches uint64 // branch events flushed (cumulative across redials)

	// Resume bases, set by Redial: the event and branch totals carried
	// over from the previous connection. Server-reported acks and alarm
	// sequence numbers restart from zero on the new session; re-basing
	// them keeps Acked() and Alarms() cumulative, so a handed-off
	// session's stream is indistinguishable from an uninterrupted one.
	evBase uint64
	brBase uint64

	// Trace stamping state (single sender goroutine, like pend): flushCnt
	// picks every TraceSample-th batch, traceBase keys this session's
	// trace ids so two clients' samples stay distinguishable fleet-wide.
	flushCnt  uint64
	traceBase uint64

	ctxN atomic.Uint64 // AlarmCtx frames seen (decoded or discarded)

	mu        sync.Mutex
	marks     []batchMark
	alarms    []wire.Alarm
	ctxs      []wire.AlarmCtx
	incidents []wire.Incident
	acked     uint64
	ackLat    []time.Duration
	alarmLat  []time.Duration
	srvErr    *wire.Error
	readerErr error

	sawBye  chan struct{}
	readerD chan struct{}
}

// Dial connects, performs the hello handshake and starts the reader.
func Dial(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return DialConn(conn, cfg)
}

// DialConn performs the handshake and starts the reader over an
// already-established connection — net.Pipe in in-process benchmarks,
// a TCP conn in Dial. Ownership of conn passes to the client, which
// closes it on any handshake failure.
func DialConn(conn net.Conn, cfg Config) (*Client, error) {
	return dialConn(conn, cfg.withDefaults(), nil, 0, 0)
}

// dialConn is DialConn with an optional resume source: when prev is
// non-nil the new client starts from the given event/branch bases
// (usually prev's cumulative totals; less than them when Redial rolled
// back to the server's acked boundary) and carries prev's accumulated
// alarms, contexts, incidents and latency samples — seeded before the
// reader goroutine starts, so there is no window in which new frames
// and carried state interleave wrongly.
func dialConn(conn net.Conn, cfg Config, prev *Client, evBase, brBase uint64) (*Client, error) {
	c := &Client{
		cfg:     cfg,
		conn:    conn,
		sawBye:  make(chan struct{}),
		readerD: make(chan struct{}),
		// Clock-derived, shifted to leave room for the per-batch counter;
		// |1 keeps the first stamped id nonzero (zero means "untraced" on
		// the wire).
		traceBase: uint64(time.Now().UnixNano())<<16 | 1,
	}
	if prev != nil {
		c.evBase, c.brBase = evBase, brBase
		c.sent, c.branches = evBase, brBase
		prev.mu.Lock()
		c.acked = prev.acked
		c.alarms = append([]wire.Alarm(nil), prev.alarms...)
		c.ctxs = append([]wire.AlarmCtx(nil), prev.ctxs...)
		c.incidents = append([]wire.Incident(nil), prev.incidents...)
		c.ackLat = append([]time.Duration(nil), prev.ackLat...)
		c.alarmLat = append([]time.Duration(nil), prev.alarmLat...)
		prev.mu.Unlock()
		c.ctxN.Store(prev.ctxN.Load())
	}
	hello, err := wire.Append(nil, wire.Hello{
		Version: wire.Version,
		Image:   cfg.Image,
		Program: cfg.Program,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(cfg.Timeout))
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	rd := wire.NewReader(conn)
	f, err := rd.Next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ipdsclient: handshake: %w", err)
	}
	switch fr := f.(type) {
	case wire.HelloAck:
		if fr.Version != wire.Version {
			conn.Close()
			return nil, fmt.Errorf("ipdsclient: server speaks version %d, want %d", fr.Version, wire.Version)
		}
		if int(fr.MaxBatch) > 0 && c.cfg.Batch > int(fr.MaxBatch) {
			c.cfg.Batch = int(fr.MaxBatch)
		}
	case wire.Error:
		conn.Close()
		return nil, fmt.Errorf("ipdsclient: refused: %s: %s", fr.Code, fr.Msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("ipdsclient: handshake: unexpected %v frame", f.Type())
	}
	conn.SetDeadline(time.Time{})
	go c.readLoop(rd)
	return c, nil
}

// readLoop consumes server frames until Bye, error or EOF.
func (c *Client) readLoop(rd *wire.Reader) {
	defer close(c.readerD)
	for {
		typ, raw, err := rd.NextHeader()
		if err == nil && typ == wire.TypeAlarmCtx {
			c.ctxN.Add(1)
			if c.cfg.DiscardCtx {
				continue // counted, never decoded
			}
		}
		var f wire.Frame
		if err == nil {
			f, err = wire.Decode(raw)
		}
		if err != nil {
			c.mu.Lock()
			c.readerErr = err
			c.mu.Unlock()
			return
		}
		now := time.Now()
		switch fr := f.(type) {
		case wire.Ack:
			fr.Events += c.evBase
			c.mu.Lock()
			c.acked = fr.Events
			// Retire every mark this cumulative ack covers; the newest
			// retired mark timestamps the ack round trip.
			retired := -1
			for i, mk := range c.marks {
				if mk.events <= fr.Events {
					retired = i
				}
			}
			if retired >= 0 {
				c.ackLat = append(c.ackLat, now.Sub(c.marks[retired].sent))
				c.marks = c.marks[retired+1:]
			}
			c.mu.Unlock()
		case wire.Alarm:
			fr.Seq += c.brBase
			c.mu.Lock()
			c.alarms = append(c.alarms, fr)
			// The alarm's Seq counts branch events; find the batch that
			// carried it for a delivery-latency sample.
			for _, mk := range c.marks {
				if fr.Seq <= mk.branchHi {
					c.alarmLat = append(c.alarmLat, now.Sub(mk.sent))
					break
				}
			}
			c.mu.Unlock()
			if c.cfg.OnAlarm != nil {
				c.cfg.OnAlarm(fr)
			}
		case wire.AlarmCtx:
			// Keep Alarm/AlarmCtx Seq pairing intact across redials.
			fr.Seq += c.brBase
			for i := range fr.Recent {
				fr.Recent[i].Seq += c.brBase
			}
			c.mu.Lock()
			c.ctxs = append(c.ctxs, fr)
			c.mu.Unlock()
			if c.cfg.OnAlarmCtx != nil {
				c.cfg.OnAlarmCtx(fr)
			}
		case wire.Incident:
			c.mu.Lock()
			c.incidents = append(c.incidents, fr)
			c.mu.Unlock()
		case wire.Error:
			e := fr
			c.mu.Lock()
			c.srvErr = &e
			c.mu.Unlock()
		case wire.Bye:
			close(c.sawBye)
			return
		}
	}
}

// Send buffers events, flushing whole batches as the threshold fills.
func (c *Client) Send(evs ...wire.Event) error {
	c.pend = append(c.pend, evs...)
	for len(c.pend) >= c.cfg.Batch {
		if err := c.flushN(c.cfg.Batch); err != nil {
			return err
		}
	}
	return nil
}

// Flush sends any buffered partial batch.
func (c *Client) Flush() error {
	for len(c.pend) > 0 {
		n := len(c.pend)
		if n > c.cfg.Batch {
			n = c.cfg.Batch
		}
		if err := c.flushN(n); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) flushN(n int) error {
	evs := c.pend[:n]
	b := wire.Batch{Events: evs}
	if s := c.cfg.TraceSample; s > 0 && c.flushCnt%uint64(s) == 0 {
		b.TraceID = c.traceBase + c.flushCnt
		b.OriginNs = uint64(time.Now().UnixNano())
	}
	c.flushCnt++
	c.buf = c.buf[:0]
	var err error
	c.buf, err = wire.Append(c.buf, b)
	if err != nil {
		return err
	}
	evLo, brLo := c.sent, c.branches
	for _, ev := range evs {
		if ev.Kind == wire.EvBranch {
			c.branches++
		}
	}
	c.sent += uint64(n)
	mark := batchMark{evLo: evLo, events: c.sent, brLo: brLo, branchHi: c.branches, sent: time.Now()}
	c.mu.Lock()
	c.marks = append(c.marks, mark)
	c.mu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.Timeout))
	if _, err := c.conn.Write(c.buf); err != nil {
		return fmt.Errorf("ipdsclient: %w", err)
	}
	copy(c.pend, c.pend[n:])
	c.pend = c.pend[:len(c.pend)-n]
	return nil
}

// SendEncoded ships pre-encoded Batch frames — typically built once
// with wire.AppendBatches and replayed many times by a load generator,
// so the per-replay client cost is one socket write instead of
// re-encoding every event. events and branches must describe the
// frames' contents (total events, total branch events); they feed the
// same ack/alarm latency marks Send maintains, with one mark covering
// the whole block. Events buffered by Send are flushed first so stream
// order is preserved.
func (c *Client) SendEncoded(frames []byte, events, branches uint64) error {
	if err := c.Flush(); err != nil {
		return err
	}
	if len(frames) == 0 || events == 0 {
		return nil
	}
	evLo, brLo := c.sent, c.branches
	c.sent += events
	c.branches += branches
	mark := batchMark{evLo: evLo, events: c.sent, brLo: brLo, branchHi: c.branches, sent: time.Now()}
	c.mu.Lock()
	c.marks = append(c.marks, mark)
	c.mu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.Timeout))
	if _, err := c.conn.Write(frames); err != nil {
		return fmt.Errorf("ipdsclient: %w", err)
	}
	return nil
}

// Drain flushes, sends Bye, and waits until the server has verified
// everything and said Bye back (or the timeout expires). The client's
// alarm set is complete once Drain returns nil.
func (c *Client) Drain() error {
	if err := c.Flush(); err != nil {
		return err
	}
	bye := wire.MustAppend(nil, wire.Bye{})
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.Timeout))
	if _, err := c.conn.Write(bye); err != nil {
		return fmt.Errorf("ipdsclient: %w", err)
	}
	select {
	case <-c.sawBye:
	case <-c.readerD:
		// The reader closes sawBye and then readerD when a Bye lands, so
		// both can be ready at once and the select may pick either; only
		// a retired reader that never saw Bye is a failure.
		select {
		case <-c.sawBye:
		default:
			if e := c.ServerError(); e != nil {
				return fmt.Errorf("ipdsclient: session ended: %s: %s", e.Code, e.Msg)
			}
			c.mu.Lock()
			err := c.readerErr
			c.mu.Unlock()
			return fmt.Errorf("ipdsclient: session ended: %w", err)
		}
	case <-time.After(c.cfg.Timeout):
		return fmt.Errorf("ipdsclient: drain timed out after %v", c.cfg.Timeout)
	}
	if c.Acked() != c.sent {
		return fmt.Errorf("ipdsclient: drained with %d/%d events acked", c.Acked(), c.sent)
	}
	return nil
}

// Close tears the connection down. Safe after Drain.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerD
	return err
}

// Done returns a channel closed when the session ends from the server
// side — Bye received or connection lost. It lets a caller observe a
// server-initiated drain without sending its own Bye.
func (c *Client) Done() <-chan struct{} { return c.readerD }

// Draining reports whether the server has sent a mid-session
// ErrDraining advisory: it is shutting down and the client should
// finish its current work, Drain, and Redial — through a fleet
// router, the redial lands on another node.
func (c *Client) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srvErr != nil && c.srvErr.Code == wire.ErrDraining
}

// Redial resumes a finished session on a fresh connection: same
// config (and so the same image hash and dial address — a router will
// re-place the session), with the previous connection's cumulative
// event and branch totals carried over. Server acks and alarm
// sequence numbers on the new session are re-based onto those totals,
// and the accumulated alarms, contexts, incidents and latency samples
// carry forward, so the resumed client reads exactly like one
// uninterrupted session. The previous session must have ended first
// (Drain returned, or Done closed).
//
// If the server sealed the session before everything sent was verified
// — a drain cut off a write still in flight — the resumed session
// rolls back to the acked boundary: every verified event was acked,
// and acks land on batch boundaries, so the acked point is the base of
// an unretired batch mark. The new client's Sent() restarts from that
// boundary and the caller must re-send everything after it; the unacked
// tail was never verified, so re-sending it keeps the stream exact.
func Redial(c *Client) (*Client, error) {
	select {
	case <-c.readerD:
	default:
		return nil, fmt.Errorf("ipdsclient: redial with the session still live")
	}
	evBase, brBase := c.sent, c.branches
	if acked := c.Acked(); acked != c.sent {
		c.mu.Lock()
		ok := len(c.marks) > 0 && c.marks[0].evLo == acked
		brLo := uint64(0)
		if ok {
			brLo = c.marks[0].brLo
		}
		c.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("ipdsclient: redial with %d/%d events acked, off any batch boundary", acked, c.sent)
		}
		evBase, brBase = acked, brLo
	}
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.Timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return dialConn(conn, c.cfg, c, evBase, brBase)
}

// Alarms returns the alarms received so far (in delivery order).
func (c *Client) Alarms() []wire.Alarm {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Alarm, len(c.alarms))
	copy(out, c.alarms)
	return out
}

// AlarmContexts returns the forensic contexts received so far (in
// delivery order, one per alarm the daemon had a retained context
// for). Always empty under Config.DiscardCtx — use CtxCount there.
func (c *Client) AlarmContexts() []wire.AlarmCtx {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.AlarmCtx, len(c.ctxs))
	copy(out, c.ctxs)
	return out
}

// Incidents returns the ranked incident summaries received so far —
// the daemon emits them (highest score first) during a graceful drain,
// so after Drain returns nil this is the server's view of what the
// session's alarm storm folded into.
func (c *Client) Incidents() []wire.Incident {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Incident, len(c.incidents))
	copy(out, c.incidents)
	return out
}

// CtxCount returns the number of AlarmCtx frames received so far,
// whether decoded or discarded by Config.DiscardCtx.
func (c *Client) CtxCount() uint64 { return c.ctxN.Load() }

// Acked returns the server's cumulative verified-event count.
func (c *Client) Acked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked
}

// Sent returns the events flushed to the server so far.
func (c *Client) Sent() uint64 { return c.sent }

// Batch returns the session's events-per-frame limit after HelloAck
// negotiation (the configured batch, lowered to the server's MaxBatch).
func (c *Client) Batch() int { return c.cfg.Batch }

// ServerError returns the last Error frame received, if any.
func (c *Client) ServerError() *wire.Error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srvErr == nil {
		return nil
	}
	e := *c.srvErr
	return &e
}

// Latencies returns the collected ack round-trip and alarm delivery
// samples (both may be empty).
func (c *Client) Latencies() (ack, alarm []time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ack = append([]time.Duration(nil), c.ackLat...)
	alarm = append([]time.Duration(nil), c.alarmLat...)
	return ack, alarm
}

// Percentile returns the q-th (0..1) percentile of samples (0 when
// empty). Samples are sorted in place.
func Percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q * float64(len(samples)-1))
	return samples[i]
}
