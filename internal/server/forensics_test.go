package server_test

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/server"
	"repro/internal/wire"
)

// replayCollectContexts replays a trace per-event through a local
// recorder-enabled machine, converting each fresh capture to wire form
// as it happens — before the shallow context ring can overwrite it —
// exactly as the daemon's capture-driven verifier does per batch.
func replayCollectContexts(m *ipds.Machine, evs []wire.Event) (alarms []ipds.Alarm, ctxs []wire.AlarmCtx) {
	var seen uint64
	for _, ev := range evs {
		switch ev.Kind {
		case wire.EvEnter:
			m.EnterFunc(ev.PC)
		case wire.EvLeave:
			m.LeaveFunc()
		case wire.EvBranch:
			if a, _ := m.OnBranch(ev.PC, ev.Taken); a != nil {
				alarms = append(alarms, *a)
			}
			if tot := m.CtxCaptured(); tot != seen {
				fresh := int(tot - seen)
				seen = tot
				if n := m.ContextCount(); fresh > n {
					fresh = n
				}
				for i := m.ContextCount() - fresh; i < m.ContextCount(); i++ {
					ctxs = append(ctxs, ipdsclient.WireContext(m.ContextAt(i)))
				}
			}
		}
	}
	return alarms, ctxs
}

// TestForensicsE2E is the PR's acceptance path: a tampered trace served
// by a live daemon produces, for every alarm, an AlarmCtx frame whose
// recent-event window ends with the violating branch, whose stack names
// the violating function, and which is value-identical to what an
// in-process machine with the same recorder configuration captures —
// the forensic analogue of the alarm-equivalence golden test.
func TestForensicsE2E(t *testing.T) {
	// Storm throttle off on both sides: the test traffic is a dense
	// tamper, and the contract under test is per-alarm equivalence.
	scfg := ipds.DefaultConfig
	scfg.CtxGap = -1
	w := startWorld(t, server.Config{IPDS: scfg})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	// Loop the trace so later alarms carry full recorder windows
	// (>= 32 events), per the acceptance criteria.
	var long []wire.Event
	for i := 0; i < 3; i++ {
		long = append(long, trace...)
	}

	refCfg := scfg
	refCfg.Recorder = ipds.DefaultRecorderDepth
	refM := ipds.New(w.art.Image, refCfg)
	refAlarms, refCtxs := replayCollectContexts(refM, long)
	if len(refAlarms) == 0 {
		t.Fatal("tampered trace raised no reference alarms; test is vacuous")
	}
	if len(refCtxs) != len(refAlarms) {
		t.Fatalf("local machine captured %d contexts for %d alarms", len(refCtxs), len(refAlarms))
	}

	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "forensics", Batch: 8})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(long...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	requireAlarmsEqual(t, refAlarms, c.Alarms())
	got := c.AlarmContexts()
	if len(got) != len(refCtxs) {
		t.Fatalf("daemon delivered %d contexts, local machine captured %d", len(got), len(refCtxs))
	}
	if !reflect.DeepEqual(got, refCtxs) {
		for i := range got {
			if !reflect.DeepEqual(got[i], refCtxs[i]) {
				t.Fatalf("context %d diverges between daemon and in-process machine:\n got  %+v\n want %+v",
					i, got[i], refCtxs[i])
			}
		}
	}

	// Each context identifies its alarm: paired by Seq, the window ends
	// with the violating branch, the stack bottoms out in the violating
	// function's activation.
	alarms := c.Alarms()
	fullWindows := 0
	for i, ctx := range got {
		a := alarms[i]
		if ctx.Seq != a.Seq {
			t.Fatalf("context %d pairs seq %d, alarm has %d", i, ctx.Seq, a.Seq)
		}
		if len(ctx.Recent) == 0 {
			t.Fatalf("context %d has an empty window", i)
		}
		last := ctx.Recent[len(ctx.Recent)-1]
		wantKind := wire.EvBranch
		if last.Kind != wantKind || last.PC != a.PC || last.Taken != a.Taken || last.Seq != a.Seq {
			t.Fatalf("context %d window does not end with the violating branch: %+v vs alarm %+v", i, last, a)
		}
		if len(ctx.Stack) == 0 || ctx.Stack[len(ctx.Stack)-1].Func != a.Func {
			t.Fatalf("context %d stack does not top out in %q: %+v", i, a.Func, ctx.Stack)
		}
		if len(ctx.Recent) >= 32 {
			fullWindows++
		}
	}
	if fullWindows == 0 {
		t.Fatal("no context carried >= 32 recent events; looped trace should fill the window")
	}
	if got := w.reg.Counter("server_alarm_ctx_total").Value(); got != uint64(len(refCtxs)) {
		t.Fatalf("server_alarm_ctx_total = %d, want %d", got, len(refCtxs))
	}
}

// TestForensicsDisabled: a negative RecorderDepth turns the machinery
// off — no AlarmCtx frames, no context counters, alarms unchanged.
func TestForensicsDisabled(t *testing.T) {
	w := startWorld(t, server.Config{RecorderDepth: -1})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "noforensics"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(c.Alarms()) == 0 {
		t.Fatal("tampered trace raised no alarms")
	}
	if n := len(c.AlarmContexts()); n != 0 {
		t.Fatalf("recorder disabled but %d AlarmCtx frames arrived", n)
	}
	if got := w.reg.Counter("server_alarm_ctx_total").Value(); got != 0 {
		t.Fatalf("server_alarm_ctx_total = %d with forensics disabled", got)
	}
}

// TestDebugSessions exercises the /debug/sessions document: live
// sessions appear with their verifier-maintained telemetry and forensic
// snapshot, and retire from the document when they end.
func TestDebugSessions(t *testing.T) {
	// Throttle off so the forensic snapshot tracks the newest alarm.
	scfg := ipds.DefaultConfig
	scfg.CtxGap = -1
	w := startWorld(t, server.Config{IPDS: scfg})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)

	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "topper", Batch: 16})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Wait until the verifier has processed everything sent.
	deadline := time.Now().Add(5 * time.Second)
	for c.Acked() < c.Sent() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	w.srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/sessions", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var info server.DebugInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, rec.Body.String())
	}
	if len(info.Sessions) != 1 {
		t.Fatalf("debug lists %d sessions, want 1:\n%s", len(info.Sessions), rec.Body.String())
	}
	ds := info.Sessions[0]
	if ds.Program != "topper" {
		t.Fatalf("program = %q", ds.Program)
	}
	if ds.Events != uint64(len(trace)) {
		t.Fatalf("events = %d, want %d", ds.Events, len(trace))
	}
	if ds.Batches == 0 || ds.Alarms == 0 {
		t.Fatalf("batches=%d alarms=%d, want both > 0", ds.Batches, ds.Alarms)
	}
	if ds.Recorded < uint64(len(trace)) {
		t.Fatalf("recorded = %d, want >= %d (recorder sees every committed event)", ds.Recorded, len(trace))
	}
	if ds.LastAlarm == nil {
		t.Fatal("no forensic snapshot on an alarming session")
	}
	alarms := c.Alarms()
	last := alarms[len(alarms)-1]
	if ds.LastAlarm.Seq != last.Seq || ds.LastAlarm.Func != last.Func || ds.LastAlarm.PC != last.PC {
		t.Fatalf("LastAlarm %+v does not match newest alarm %+v", ds.LastAlarm, last)
	}
	if ds.LastAlarm.Window == 0 || len(ds.LastAlarm.Stack) == 0 {
		t.Fatalf("forensic snapshot is empty: %+v", ds.LastAlarm)
	}

	// After the session ends the document must be empty — no leaked
	// per-session telemetry.
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c.Close()
	w.waitSessions(t, 0)
	if got := w.srv.Debug(); len(got.Sessions) != 0 {
		t.Fatalf("debug lists %d sessions after close", len(got.Sessions))
	}
}

// TestEvictionFlushesSessionTelemetry holds the no-leak satellite on
// the idle-eviction path: when the daemon evicts a session, the active
// gauge returns to zero, the machine's counters are absorbed into the
// server-wide series, and the debug document forgets the session.
func TestEvictionFlushesSessionTelemetry(t *testing.T) {
	w := startWorld(t, server.Config{ReadTimeout: 80 * time.Millisecond})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "evictee"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Go idle; the server evicts on its read deadline.
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("idle session was not evicted")
	}
	w.waitSessions(t, 0)

	if got := w.reg.Gauge("server_sessions_active").Value(); got != 0 {
		t.Fatalf("server_sessions_active = %d after eviction", got)
	}
	if got := w.reg.Counter("server_evictions_total").Value(); got != 1 {
		t.Fatalf("server_evictions_total = %d, want 1", got)
	}
	// The evicted machine's verified work was absorbed, not lost.
	if got := w.reg.Counter("server_machine_branches_total").Value(); got == 0 {
		t.Fatal("server_machine_branches_total = 0; machine counters were not absorbed")
	}
	if got := w.reg.Counter("server_events_total").Value(); got != uint64(len(trace)) {
		t.Fatalf("server_events_total = %d, want %d", got, len(trace))
	}
	if got := w.srv.Debug(); len(got.Sessions) != 0 {
		t.Fatalf("debug lists %d sessions after eviction", len(got.Sessions))
	}
}

// TestDrainFlushesSessionTelemetry is the same no-leak contract on the
// graceful-drain path, plus the serve-path histograms having filled.
func TestDrainFlushesSessionTelemetry(t *testing.T) {
	w := startWorld(t, server.Config{})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "drainee", Batch: 8})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	w.shut(t)
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drain never ended the session")
	}
	if got := w.reg.Gauge("server_sessions_active").Value(); got != 0 {
		t.Fatalf("server_sessions_active = %d after drain", got)
	}
	if got := w.reg.Counter("server_machine_branches_total").Value(); got == 0 {
		t.Fatal("machine counters were not absorbed on drain")
	}
	if got := w.srv.Debug(); len(got.Sessions) != 0 {
		t.Fatalf("debug lists %d sessions after drain", len(got.Sessions))
	}
	// The serve-path telemetry filled while the session ran: batch
	// verify latency, ring depth and write coalescing all saw
	// every batch (the sampled span histograms only see 1-in-64 batches,
	// so a short session legitimately leaves them empty; the first batch
	// of every session is always sampled, so queue-wait is never empty).
	for _, h := range []string{"server_verify_ns", "server_ring_depth", "server_write_coalesced_bytes"} {
		if got := w.reg.Histogram(h).Count(); got == 0 {
			t.Fatalf("%s histogram is empty after a served session", h)
		}
	}
	if got := w.reg.Histogram("server_queue_wait_ns").Count(); got == 0 {
		t.Fatal("server_queue_wait_ns is empty; the first batch of a session is always sampled")
	}
}
