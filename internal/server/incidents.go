package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/incident"
	"repro/internal/ipds"
	"repro/internal/obs"
	"repro/internal/wire"
)

// The incident stage: a bounded queue and one consumer goroutine
// between the verifier pool and an incident.Analyzer. The serve path
// only ever performs a non-blocking channel send of a small value (and,
// for the rare forensic capture, a pooled deep copy), so the OnBatch
// loop keeps its zero-allocation, never-blocks-on-analytics contract;
// when the analytics fall behind the queue, alarms are dropped from
// analysis — counted, never silently — while verification and alarm
// delivery continue untouched.

// DefaultIncidentQueue bounds the analytics feed queue (alarms plus
// forensic contexts) between the verifier pool and the analyzer.
const DefaultIncidentQueue = 8192

// incMsg is one queue entry: an alarm observation, a forensic context
// (ctx != nil), or a drain barrier (done != nil).
type incMsg struct {
	ev   incident.AlarmEvent
	ctx  *ipds.AlarmContext
	done chan struct{}
}

// incidentStage owns the analyzer and its feed queue.
type incidentStage struct {
	an *incident.Analyzer
	ch chan incMsg

	// ctxPool recycles the deep copies that carry forensic captures
	// across the queue (the machine-owned originals are only valid
	// until the machine's next batch).
	ctxPool sync.Pool

	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool

	dropped *obs.Counter // incident_queue_dropped_total
	depth   *obs.Gauge   // incident_queue_depth (sampled on offer)
}

// newIncidentStage starts the consumer goroutine.
func newIncidentStage(cfg incident.Config, queue int, reg *obs.Registry) *incidentStage {
	if queue <= 0 {
		queue = DefaultIncidentQueue
	}
	cfg.Reg = reg
	st := &incidentStage{
		an:      incident.NewAnalyzer(cfg),
		ch:      make(chan incMsg, queue),
		dropped: reg.Counter("incident_queue_dropped_total"),
		depth:   reg.Gauge("incident_queue_depth"),
	}
	st.ctxPool.New = func() any { return &ipds.AlarmContext{} }
	st.wg.Add(1)
	go st.run()
	return st
}

// run is the single consumer: it preserves queue FIFO order, which is
// what makes a drain barrier mean "everything offered before me has
// been analyzed".
func (st *incidentStage) run() {
	defer st.wg.Done()
	for m := range st.ch {
		switch {
		case m.done != nil:
			close(m.done)
		case m.ctx != nil:
			st.an.ObserveContext(m.ctx)
			st.ctxPool.Put(m.ctx)
		default:
			st.an.Observe(m.ev)
		}
	}
}

// offer feeds one alarm, non-blocking: a full queue drops the
// observation (counted) rather than stalling a verifier.
func (st *incidentStage) offer(ev incident.AlarmEvent) {
	select {
	case st.ch <- incMsg{ev: ev}:
		st.depth.Set(int64(len(st.ch)))
	default:
		st.dropped.Inc()
	}
}

// offerCtx feeds one forensic capture, non-blocking. The capture is
// deep-copied into a pooled context first; c stays caller-owned.
func (st *incidentStage) offerCtx(c *ipds.AlarmContext) {
	cc := st.ctxPool.Get().(*ipds.AlarmContext)
	c.CopyInto(cc)
	select {
	case st.ch <- incMsg{ctx: cc}:
	default:
		st.ctxPool.Put(cc)
		st.dropped.Inc()
	}
}

// sync blocks until every observation offered before the call has been
// consumed by the analyzer. It is a no-op after close.
func (st *incidentStage) sync() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	done := make(chan struct{})
	st.ch <- incMsg{done: done} // blocking: run() always drains
	st.mu.Unlock()
	<-done
}

// close stops the consumer after draining the queue. Callable once all
// producers have stopped (the server sequences this after its worker
// and writer pools exit).
func (st *incidentStage) close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	close(st.ch)
	st.mu.Unlock()
	st.wg.Wait()
}

// incidentFrame converts one ranked incident to its wire form: score
// in fixed-point milli-units, evidence lines joined with "; " and
// clamped to the wire string limit.
func incidentFrame(in *incident.Incident) wire.Incident {
	fn := in.Func
	if len(fn) > wire.MaxString {
		fn = fn[:wire.MaxString]
	}
	ev := strings.Join(in.Evidence, "; ")
	if len(ev) > wire.MaxString {
		ev = ev[:wire.MaxString]
	}
	return wire.Incident{
		ID:         uint32(in.ID),
		ScoreMilli: uint64(in.Score*1000 + 0.5),
		Alarms:     in.Alarms,
		Folded:     in.Folded,
		Sessions:   uint32(in.Sessions),
		Bursts:     uint32(in.Bursts),
		PC:         in.PC,
		FirstSeq:   in.FirstSeq,
		LastSeq:    in.LastSeq,
		Func:       fn,
		Evidence:   ev,
	}
}

// maxIncidentFrames bounds the ranked incidents a draining session is
// sent: the point of the stage is that the interesting list is short.
const maxIncidentFrames = 16

// Incidents drains the analytics queue and returns the ranked incident
// list (nil when the stage is disabled).
func (s *Server) Incidents() []incident.Incident {
	if s.incidents == nil {
		return nil
	}
	s.incidents.sync()
	return s.incidents.an.Incidents()
}

// DebugIncidents is the full /debug/incidents document.
type DebugIncidents struct {
	NowUnixNs int64               `json:"now_unix_ns"`
	Enabled   bool                `json:"enabled"`
	Alarms    uint64              `json:"alarms"`    // alarms analyzed
	Folded    uint64              `json:"folded"`    // alarms folded by dedup
	Dropped   uint64              `json:"dropped"`   // observations lost to queue overflow
	Incidents int                 `json:"incidents"` // ranked list length
	Reduction float64             `json:"reduction"` // 1 - incidents/alarms
	List      []incident.Incident `json:"list"`
}

// DebugIncidents snapshots the incident pipeline: stats plus the
// current ranked list.
func (s *Server) DebugIncidents() DebugIncidents {
	out := DebugIncidents{NowUnixNs: time.Now().UnixNano()}
	if s.incidents == nil {
		return out
	}
	out.Enabled = true
	out.List = s.Incidents()
	st := s.incidents.an.Stats()
	out.Alarms = st.Alarms
	out.Folded = st.Folded
	out.Dropped = s.incidents.dropped.Value()
	out.Incidents = len(out.List)
	if st.Alarms > 0 {
		out.Reduction = 1 - float64(len(out.List))/float64(st.Alarms)
	}
	return out
}

// IncidentsHandler serves DebugIncidents() as JSON — mounted by ipdsd
// at /debug/incidents next to /debug/sessions.
func (s *Server) IncidentsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.DebugIncidents())
	})
}
