package server

import (
	"bytes"
	"testing"

	"repro/internal/ipds"
	"repro/internal/tables"
	"repro/internal/wire"
)

// sampleCtx covers every recorder event kind, an unprotected ("") stack
// frame, and a BSV with every status value.
func sampleCtx() *ipds.AlarmContext {
	return &ipds.AlarmContext{
		Alarm:    ipds.Alarm{Seq: 9912, PC: 0x40_1234, Func: "check", Slot: 2, Expected: tables.Taken, Taken: false},
		Recorded: 150_000,
		Recent: []ipds.RecEvent{
			{Seq: 9906, PC: 0x40_0000, Kind: ipds.EvEnter, Depth: 2},
			{Seq: 9907, PC: 0, Kind: ipds.EvSpill, Depth: 2, Bits: 96},
			{Seq: 9908, PC: 0x40_1000, Kind: ipds.EvBranch, Taken: true, Depth: 2},
			{Seq: 9909, PC: 0, Kind: ipds.EvFill, Depth: 2, Bits: 96},
			{Seq: 9910, PC: 0, Kind: ipds.EvLeave, Depth: 1},
			{Seq: 9912, PC: 0x40_1234, Kind: ipds.EvBranch, Taken: false, Depth: 1},
		},
		Stack: []ipds.StackEntry{
			{Base: 0x40_0000, Func: "main"},
			{Base: 0x40_0800, Func: ""},
			{Base: 0x40_1000, Func: "check"},
		},
		BSV: []tables.Status{tables.Unknown, tables.Taken, tables.NotTaken},
	}
}

// TestAppendAlarmCtxMatchesWire pins the server's no-box forensic
// encoder byte-identical to the wire package's canonical AppendAlarmCtx
// over the client-side WireContext conversion — so a client cannot tell
// (and tests need not care) which encoder produced an AlarmCtx frame.
func TestAppendAlarmCtxMatchesWire(t *testing.T) {
	for name, c := range map[string]*ipds.AlarmContext{
		"full":        sampleCtx(),
		"emptyWindow": {Alarm: ipds.Alarm{Seq: 1}},
	} {
		got, ok := appendAlarmCtx(nil, c)
		if !ok {
			t.Fatalf("%s: appendAlarmCtx refused a legal context", name)
		}
		// Convert by hand the way ipdsclient.WireContext does (the client
		// package cannot be imported here without care; the mapping is
		// small enough to restate and diverging restatements would fail).
		wc := wire.AlarmCtx{Seq: c.Alarm.Seq, Recorded: c.Recorded}
		for _, fr := range c.Stack {
			wc.Stack = append(wc.Stack, wire.CtxFrame{Base: fr.Base, Func: fr.Func})
		}
		for _, ev := range c.Recent {
			we := wire.CtxEvent{Seq: ev.Seq, Depth: uint32(ev.Depth), Taken: ev.Taken}
			switch ev.Kind {
			case ipds.EvEnter:
				we.Kind, we.PC = wire.EvEnter, ev.PC
			case ipds.EvLeave:
				we.Kind = wire.EvLeave
			case ipds.EvBranch:
				we.Kind, we.PC = wire.EvBranch, ev.PC
			case ipds.EvSpill:
				we.Kind, we.PC = wire.EvSpill, uint64(ev.Bits)
			case ipds.EvFill:
				we.Kind, we.PC = wire.EvFill, uint64(ev.Bits)
			}
			wc.Recent = append(wc.Recent, we)
		}
		for _, st := range c.BSV {
			wc.BSV = append(wc.BSV, uint8(st))
		}
		want, err := wire.AppendAlarmCtx(nil, wc)
		if err != nil {
			t.Fatalf("%s: wire encoder: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: server encoding diverges from wire encoding:\n got  %x\n want %x", name, got, want)
		}
		// And the bytes must decode back to the converted value.
		dec, err := wire.Decode(got[4:])
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		back, ok2 := dec.(wire.AlarmCtx)
		if !ok2 || back.Seq != wc.Seq || back.Recorded != wc.Recorded ||
			len(back.Recent) != len(wc.Recent) || len(back.Stack) != len(wc.Stack) || len(back.BSV) != len(wc.BSV) {
			t.Fatalf("%s: round trip diverged: %+v", name, dec)
		}
	}
}

// TestAppendAlarmCtxRefusesOversize: contexts past the wire limits are
// dropped whole — dst unchanged — rather than emitted corrupt.
func TestAppendAlarmCtxRefusesOversize(t *testing.T) {
	prefix := []byte{1, 2, 3}
	big := &ipds.AlarmContext{Recent: make([]ipds.RecEvent, wire.MaxCtxEvents+1)}
	if out, ok := appendAlarmCtx(prefix, big); ok || len(out) != len(prefix) {
		t.Fatalf("oversized window: ok=%v len=%d", ok, len(out))
	}
	deep := &ipds.AlarmContext{Stack: make([]ipds.StackEntry, wire.MaxCtxStack+1)}
	if out, ok := appendAlarmCtx(prefix, deep); ok || len(out) != len(prefix) {
		t.Fatalf("oversized stack: ok=%v len=%d", ok, len(out))
	}
	wide := &ipds.AlarmContext{BSV: make([]tables.Status, wire.MaxCtxBSV+1)}
	if out, ok := appendAlarmCtx(prefix, wide); ok || len(out) != len(prefix) {
		t.Fatalf("oversized bsv: ok=%v len=%d", ok, len(out))
	}
}
