package server_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/workload"
)

// TestScalePerCoreMatchesLocal is the multi-core correctness stress:
// 64 sessions spread by consistent hash across 4 per-core verifiers,
// with deliberately tiny rings so readers stall, verifiers park and
// wake, and the writer rings backpressure — and every session's alarm
// stream must still match a single-core in-process replay event for
// event. Run under -race this doubles as the serve path's ownership
// audit: any machine, ring or write-buffer access crossing its owning
// goroutine is a detected race.
func TestScalePerCoreMatchesLocal(t *testing.T) {
	const (
		sessions  = 64
		verifiers = 4
	)

	w := workload.ByName("telnetd")
	if w == nil {
		t.Fatal("telnetd workload missing")
	}
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("compile %s: %v", w.Name, err)
	}
	store := server.NewImageStore(nil)
	hash := store.Add(w.Name, art.Image)
	srv := server.New(store, server.Config{
		Verifiers:  verifiers,
		RingSize:   4, // force reader stalls and verifier park/wake churn
		AlarmQueue: 4, // force verifier→writer backpressure
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	addr := ln.Addr().String()

	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 17)
	ref := ipdsclient.ReplayLocal(ipds.New(art.Image, ipds.DefaultConfig), trace)
	if len(ref) == 0 {
		t.Fatal("tampered telnetd trace raised no reference alarms; test is vacuous")
	}

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Small client batches: many ring operations per session, so
			// the tiny server rings actually wrap and fill.
			c, err := ipdsclient.Dial(ipdsclient.Config{
				Addr: addr, Image: hash, Program: w.Name, Batch: 64,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			if err := c.Send(trace...); err != nil {
				errCh <- err
				return
			}
			if err := c.Drain(); err != nil {
				errCh <- err
				return
			}
			got := c.Alarms()
			if len(got) != len(ref) {
				t.Errorf("session %d: %d alarms, want %d", id, len(got), len(ref))
				return
			}
			for j, a := range got {
				r := ref[j]
				if a.Seq != r.Seq || a.PC != r.PC || a.Func != r.Func ||
					a.Slot != uint32(r.Slot) || a.Expected != uint8(r.Expected) || a.Taken != r.Taken {
					t.Errorf("session %d alarm %d: got %+v, want %+v", id, j, a, r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("session: %v", err)
	}

	// The per-core breakdown must account for every event exactly once.
	stats := srv.CoreStats()
	if len(stats) != verifiers {
		t.Fatalf("CoreStats returned %d cores, want %d", len(stats), verifiers)
	}
	var events, pinned, verifyNs uint64
	for _, cs := range stats {
		events += cs.Events
		pinned += cs.SessionsTotal
		verifyNs += cs.VerifyNs
		// 64 sessions over 4 hash buckets: an empty core means the pin
		// hash is broken (P ≈ 4·(3/4)^64 by chance).
		if cs.SessionsTotal == 0 {
			t.Errorf("core %d was never pinned a session", cs.Core)
		}
		if cs.RingHighWater == 0 {
			t.Errorf("core %d ring high-water is zero after %d sessions", cs.Core, cs.SessionsTotal)
		}
	}
	if want := uint64(len(trace)) * sessions; events != want {
		t.Errorf("per-core events sum to %d, want %d", events, want)
	}
	if pinned != sessions {
		t.Errorf("per-core sessions_total sum to %d, want %d", pinned, sessions)
	}
	// Kernel time accounting: every core that verified events spent
	// wall time doing it (the ipdsload kernel_ns_per_event source).
	if verifyNs == 0 {
		t.Error("per-core verify_ns sum to 0 after verifying events")
	}
}
