package server

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipds"
	"repro/internal/wire"
)

// session is one live verifier connection. Field ownership:
//
//   - rd and conn reads: the reader goroutine (readLoop)
//   - m (the machine): the session's shard verifier, exclusively
//   - out and conn writes: the writer goroutine (writeLoop)
//   - mu guards the lifecycle bookkeeping (pending/readerDone/
//     finished/events) shared by reader and verifier
//
// The outbound queue `out` is closed exactly once, by maybeFinish,
// strictly after the reader has stopped and every queued batch has
// been verified — which is what makes graceful drain deliver
// already-queued alarms before the closing Ack+Bye.
type session struct {
	id        uint64
	shard     int
	srv       *Server
	conn      net.Conn
	rd        *wire.Reader
	m         *ipds.Machine
	out       chan *frameBuf
	program   string
	forensics bool // the machine records; emit AlarmCtx after each Alarm
	started   time.Time
	stopSpan  func()

	// sampleCnt is reader-owned: it picks every spanSampleEvery-th
	// batch to carry pipeline-span timestamps.
	sampleCnt uint64

	mu         sync.Mutex
	pending    int    // batches enqueued to the shard, not yet verified
	readerDone bool   // readLoop exited; no further batches will arrive
	finished   bool   // out has been sealed with the final Ack+Bye
	events     uint64 // events fully verified (ack currency)

	// Telemetry for /debug/sessions: verifier-written, handler-read.
	batchesN  atomic.Uint64
	alarmsN   atomic.Uint64
	recTotal  atomic.Uint64
	lastBatch atomic.Int64 // unix nanos of the last verified batch

	// Windowed alarm rate: the verifier closes ≥1s windows over its own
	// plain fields (one shard owns a session's batches, so no races) and
	// publishes the last closed window's rate for the debug handler.
	rateWinStart int64         // unix nanos of the open window's start
	rateWinBase  uint64        // lifetime alarms at the window's start
	rateMilli    atomic.Uint64 // 1 + milli-alarms/s of the last closed window; 0 = none yet

	// lastCtx is the session's most recent forensic capture, deep-copied
	// out of the machine so the debug endpoint never touches machine
	// state owned by the shard verifier.
	ctxMu   sync.Mutex
	hasCtx  bool
	lastCtx ipds.AlarmContext

	// ctxSeen is the verifier-owned high-water mark of the machine's
	// lifetime capture count; fresh captures past it are emitted once.
	ctxSeen uint64
}

// isClosedErr reports a read failing because the connection was closed
// locally (forced shutdown), which is not a client protocol error.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// send queues one pooled frame encoding for the writer, counting a
// backpressure stall when the bounded queue is full. It never drops:
// the writer always drains `out` (discarding after a write failure),
// so this blocks only while the client is slow, not forever. Ownership
// of the buffer transfers to the writer, which releases it to the pool
// once the frame is on the wire.
func (s *session) send(fb *frameBuf) {
	select {
	case s.out <- fb:
	default:
		s.srv.met.backpressure.Inc()
		s.out <- fb
	}
}

// sendFrame encodes f into a pooled buffer and queues it.
func (s *session) sendFrame(f wire.Frame) {
	fb := s.srv.bufPool.Get().(*frameBuf)
	fb.b = wire.MustAppend(fb.b[:0], f)
	fb.t0 = time.Time{} // pooled; a stale sample stamp would skew spans
	s.send(fb)
}

// addEvents credits n verified events and returns the new total.
func (s *session) addEvents(n uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events += n
	return s.events
}

// updateRate advances the session's alarm-rate window: called by the
// owning verifier after each batch with the batch's start time and the
// session's lifetime alarm total; windows at least one second wide are
// closed into the published rate.
func (s *session) updateRate(nowNs int64, totalAlarms uint64) {
	if s.rateWinStart == 0 {
		s.rateWinStart = s.started.UnixNano()
	}
	dt := nowNs - s.rateWinStart
	if dt < int64(time.Second) {
		return
	}
	delta := totalAlarms - s.rateWinBase
	milli := delta * 1000 * uint64(time.Second) / uint64(dt)
	s.rateMilli.Store(1 + milli) // +1 keeps "a closed window of zero" distinct from "no window yet"
	s.rateWinStart, s.rateWinBase = nowNs, totalAlarms
}

// alarmRate reports the session's alarms per second: the last closed
// window when one exists, otherwise the lifetime average since start —
// so a young or just-idle session still reads sensibly.
func (s *session) alarmRate(now time.Time) float64 {
	if m := s.rateMilli.Load(); m != 0 {
		return float64(m-1) / 1000
	}
	age := now.Sub(s.started).Seconds()
	if age <= 0 {
		return 0
	}
	return float64(s.alarmsN.Load()) / age
}

// taskDone retires one verified batch and finishes the session if the
// reader is already gone.
func (s *session) taskDone() {
	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
	s.maybeFinish()
}

// maybeFinish seals the session once no more input can arrive
// (readerDone) and everything that did arrive has been verified
// (pending == 0): queue the final cumulative Ack and a Bye, then close
// the outbound queue so the writer flushes and tears the session down.
func (s *session) maybeFinish() {
	s.mu.Lock()
	if !s.readerDone || s.pending != 0 || s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	total := s.events
	s.mu.Unlock()

	// A draining session is told what its alarm storm folded into: the
	// ranked incident list, highest score first, ahead of the closing
	// Ack+Bye. The barrier sync inside Server.Incidents guarantees every
	// alarm this session offered has been analyzed (its offers preceded
	// pending reaching zero, and the queue is FIFO).
	if s.srv.incidents != nil {
		incs := s.srv.Incidents()
		if len(incs) > maxIncidentFrames {
			incs = incs[:maxIncidentFrames]
		}
		for i := range incs {
			s.sendFrame(incidentFrame(&incs[i]))
		}
	}

	// The final Ack and Bye ride the same pooled queue as every other
	// frame, strictly after any still-queued alarms/acks; the writer
	// flushes the whole queue — releasing each pooled buffer only after
	// its bytes are on the wire — before the close tears the session
	// down, so a drained session never loses its closing Ack.
	s.sendFrame(wire.Ack{Events: total})
	s.sendFrame(wire.Bye{})
	close(s.out)
}

// drainGrace is the per-read deadline a draining session reads with:
// long enough to pick up everything a client already had in flight on
// loopback or a LAN, short enough that shutdown stays prompt. A client
// that keeps streaming past the drain is bounded by the Shutdown
// context, which closes connections hard on expiry.
const drainGrace = 50 * time.Millisecond

// readLoop drains the socket: decode frames, enqueue batches to the
// session's verifier shard, stop on Bye / error / idle deadline.
// During server drain the loop keeps reading under drainGrace
// deadlines until the socket goes quiet, so events the client sent
// before the shutdown began are still verified (wire.Reader resumes
// cleanly across the shutdown's deadline poke).
func (s *session) readLoop() {
	defer s.srv.readerWG.Done()
	srv := s.srv
	// One leased batch at a time: NextInto decodes into it without
	// allocating; enqueueing a task transfers ownership to the verifier
	// (which returns it to the pool), non-batch frames leave the lease
	// in hand for the next frame.
	b := srv.batchPool.Get().(*wire.Batch)
	for {
		graced := srv.draining.Load()
		d := srv.cfg.ReadTimeout
		if graced {
			d = drainGrace
		}
		s.conn.SetReadDeadline(time.Now().Add(d))
		f, err := s.rd.NextInto(b)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if srv.draining.Load() {
					if graced {
						// Quiet under a grace deadline: fully drained.
						break
					}
					// The shutdown poke interrupted a blocked read; go
					// around once more to sweep buffered frames.
					continue
				}
				// Idle eviction: tell the client why, then drain.
				srv.met.evictionsTotal.Inc()
				s.sendFrame(wire.Error{Code: wire.ErrIdle, Msg: "idle deadline exceeded"})
			} else if err != nil && !isClosedErr(err) {
				// Hard protocol garbage or a vanished peer; io.EOF is
				// the silent variant of Bye.
				srv.met.errorsTotal.Inc()
			}
			break
		}
		switch fr := f.(type) {
		case *wire.Batch:
			if len(fr.Events) > srv.cfg.MaxBatch {
				srv.met.errorsTotal.Inc()
				s.sendFrame(wire.Error{Code: wire.ErrProtocol, Msg: "batch exceeds advertised maximum"})
				goto out
			}
			s.mu.Lock()
			s.pending++
			s.mu.Unlock()
			// Every spanSampleEvery-th batch carries timestamps through
			// the pipeline, feeding the sampled reader→verifier→writer
			// span histograms at negligible steady-state cost.
			var t0 time.Time
			if s.sampleCnt%spanSampleEvery == 0 {
				t0 = time.Now()
			}
			s.sampleCnt++
			// Blocking enqueue: a full shard queue is backpressure to
			// this socket, counted like an alarm-queue stall.
			select {
			case srv.shards[s.shard] <- task{s: s, b: fr, t0: t0}:
			default:
				srv.met.backpressure.Inc()
				srv.shards[s.shard] <- task{s: s, b: fr, t0: t0}
			}
			srv.met.shardDepth.Observe(uint64(len(srv.shards[s.shard])))
			b = srv.batchPool.Get().(*wire.Batch)
		case wire.Bye:
			goto out
		default:
			srv.met.errorsTotal.Inc()
			s.sendFrame(wire.Error{Code: wire.ErrProtocol, Msg: "unexpected " + fr.Type().String() + " frame"})
			goto out
		}
	}
out:
	srv.batchPool.Put(b)
	s.mu.Lock()
	s.readerDone = true
	s.mu.Unlock()
	s.maybeFinish()
}

// maxWriteCoalesce bounds the writer's merged buffer: big enough to
// swallow a burst of per-batch alarm+ack buffers in one syscall, small
// enough to keep write latency and memory per session bounded.
const maxWriteCoalesce = 256 << 10

// spanSampleEvery picks which batches carry pipeline-span timestamps
// (reader enqueue → verifier dequeue → writer flush). 1-in-64 keeps the
// histograms live on any sustained stream while the extra time.Now()
// calls stay invisible next to the verify kernel itself.
const spanSampleEvery = 64

// writeLoop owns conn writes: it drains the outbound queue until
// maybeFinish closes it, then closes the connection and retires the
// session. Queued buffers are coalesced — everything waiting in the
// queue is copied into one write buffer and flushed with a single
// conn.Write — so an alarm burst or a run of acks costs one syscall,
// not one per frame. After the first write failure the loop keeps
// consuming (and discarding) so verifiers can never block forever on a
// dead peer. Every pooled buffer is released here, after its bytes have
// been copied into the write buffer (or deliberately discarded), never
// while still queued — which is what keeps pooling safe under drain.
func (s *session) writeLoop() {
	defer s.srv.writerWG.Done()
	failed := false
	open := true
	var wbuf []byte
	for open {
		fb, ok := <-s.out
		if !ok {
			break
		}
		span := fb.t0
		wbuf = append(wbuf[:0], fb.b...)
		s.srv.bufPool.Put(fb)
	drain:
		for len(wbuf) < maxWriteCoalesce {
			select {
			case more, ok := <-s.out:
				if !ok {
					open = false
					break drain
				}
				if span.IsZero() {
					span = more.t0
				}
				wbuf = append(wbuf, more.b...)
				s.srv.bufPool.Put(more)
			default:
				break drain
			}
		}
		if !failed && len(wbuf) > 0 {
			s.srv.met.coalesceBytes.Observe(uint64(len(wbuf)))
			s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
			if _, err := s.conn.Write(wbuf); err != nil {
				failed = true
			} else if !span.IsZero() {
				s.srv.met.writeWaitNs.Observe(uint64(time.Since(span).Nanoseconds()))
			}
		}
	}
	s.conn.Close()
	s.srv.unregister(s)
}
