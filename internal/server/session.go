package server

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipds"
	"repro/internal/ring"
	"repro/internal/wire"
)

// session is one live verifier connection. Field ownership:
//
//   - rd and conn reads: the reader goroutine (readLoop), the ring's
//     only producer
//   - m (the machine) and the rate-window fields: the pinned per-core
//     verifier, exclusively — the ring's only consumer
//   - wbuf/wdirty/wfailed/wspan and conn writes: the core writer
//     goroutine, exclusively
//   - the remaining counters are atomics, written by their owner and
//     read by the debug endpoint
//
// Lifecycle rides the ring: the reader's last task is done-marked, so
// the verifier observes it strictly after every batch the session
// queued (ring FIFO), seals the session with incidents + final Ack +
// Bye, and hands the close to the writer — which flushes everything
// queued ahead of it before retiring the connection. No pending
// counters, no lifecycle mutex.
type session struct {
	id        uint64
	core      int
	srv       *Server
	conn      net.Conn
	rd        *wire.Reader
	m         *ipds.Machine
	ring      *ring.SPSC[task]
	v         *verifier
	program   string
	forensics bool // the machine records; emit AlarmCtx after each Alarm
	started   time.Time
	stopSpan  func()

	// sampleCnt is reader-owned: it picks every spanSampleEvery-th
	// batch to carry pipeline-span timestamps.
	sampleCnt uint64

	// events counts fully verified events (ack currency):
	// verifier-written, read by the finish path and the debug endpoint.
	events atomic.Uint64

	// Telemetry for /debug/sessions: verifier-written, handler-read.
	batchesN  atomic.Uint64
	alarmsN   atomic.Uint64
	recTotal  atomic.Uint64
	verifyNs  atomic.Uint64 // cumulative wall time inside verifyBatch
	lastBatch atomic.Int64  // unix nanos of the last verified batch

	// Windowed alarm rate: the verifier closes ≥1s windows over its own
	// plain fields (the pinned core owns a session's batches, so no
	// races) and publishes the last closed window's rate for the debug
	// handler.
	rateWinStart int64         // unix nanos of the open window's start
	rateWinBase  uint64        // lifetime alarms at the window's start
	rateMilli    atomic.Uint64 // 1 + milli-alarms/s of the last closed window; 0 = none yet

	// lastCtx is the session's most recent forensic capture, deep-copied
	// out of the machine so the debug endpoint never touches machine
	// state owned by the verifier.
	ctxMu   sync.Mutex
	hasCtx  bool
	lastCtx ipds.AlarmContext

	// ctxSeen is the verifier-owned high-water mark of the machine's
	// lifetime capture count; fresh captures past it are emitted once.
	ctxSeen uint64

	// Core-writer-owned coalescing state: frames queued for this
	// session in the current write cycle accumulate in wbuf and go out
	// as one conn.Write. wfailed latches the first write error; output
	// is discarded from then on so a dead peer never blocks a core.
	wbuf    []byte
	wdirty  bool
	wfailed bool
	wspan   time.Time // first sampled frame's queue time in this cycle

	// wspans holds the trace records of this cycle's coalesced traced
	// batches: detached from their frame buffers at append time,
	// committed (ack stamp) when the cycle's single write lands.
	wspans []*SpanRec
}

// isClosedErr reports a read failing because the connection was closed
// locally (forced shutdown), which is not a client protocol error.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// readStage bounds how many decoded frames the reader accumulates
// before publishing them to the session's ring in one operation. One
// socket read often delivers several batch frames (the client pipelines
// them); staging turns those into a single ring publish and at most one
// verifier wakeup instead of one each.
const readStage = 16

// publish pushes the staged tasks into the session's ring, blocking
// (counted as backpressure, once per stall) while the pinned verifier
// is behind, and wakes the verifier. The reader is the ring's only
// producer.
func (s *session) publish(staged []task) {
	if len(staged) == 0 {
		return
	}
	s.srv.met.readFrames.Observe(uint64(len(staged)))
	off, spins, stalled := 0, 0, false
	for off < len(staged) {
		n := s.ring.PushSlice(staged[off:])
		if n > 0 {
			off += n
			s.v.pk.Wake()
			continue
		}
		if !stalled {
			stalled = true
			s.srv.met.backpressure.Inc()
		}
		if spins++; spins < spinPasses {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
	s.srv.met.ringDepth.Observe(uint64(s.ring.Len()))
}

// stageCtrl encodes a reader-originated frame (eviction or protocol
// error) into a pooled buffer and stages it as a control task: the
// verifier forwards it to the core writer, keeping the writer ring
// single-producer.
func (s *session) stageCtrl(staged []task, f wire.Frame) []task {
	fb := s.srv.bufPool.Get().(*frameBuf)
	fb.b = wire.MustAppend(fb.b[:0], f)
	fb.t0 = time.Time{} // pooled; a stale sample stamp would skew spans
	fb.sp = nil
	return append(staged, task{fb: fb})
}

// updateRate advances the session's alarm-rate window: called by the
// owning verifier after each batch with the batch's start time and the
// session's lifetime alarm total; windows at least one second wide are
// closed into the published rate.
func (s *session) updateRate(nowNs int64, totalAlarms uint64) {
	if s.rateWinStart == 0 {
		s.rateWinStart = s.started.UnixNano()
	}
	dt := nowNs - s.rateWinStart
	if dt < int64(time.Second) {
		return
	}
	delta := totalAlarms - s.rateWinBase
	milli := delta * 1000 * uint64(time.Second) / uint64(dt)
	s.rateMilli.Store(1 + milli) // +1 keeps "a closed window of zero" distinct from "no window yet"
	s.rateWinStart, s.rateWinBase = nowNs, totalAlarms
}

// alarmRate reports the session's alarms per second: the last closed
// window when one exists, otherwise the lifetime average since start —
// so a young or just-idle session still reads sensibly.
func (s *session) alarmRate(now time.Time) float64 {
	if m := s.rateMilli.Load(); m != 0 {
		return float64(m-1) / 1000
	}
	age := now.Sub(s.started).Seconds()
	if age <= 0 {
		return 0
	}
	return float64(s.alarmsN.Load()) / age
}

// drainGrace is the per-read deadline a draining session reads with:
// long enough to pick up everything a client already had in flight on
// loopback or a LAN, short enough that shutdown stays prompt. A client
// that keeps streaming past the drain is bounded by the Shutdown
// context, which closes connections hard on expiry.
const drainGrace = 50 * time.Millisecond

// readLoop drains the socket: decode frames, stage them, publish the
// stage to the session's ring whenever the socket has no more buffered
// bytes (everything one syscall delivered becomes one ring publish) or
// the stage is full. Stops on Bye / error / idle deadline, always
// ending with a done-marked task — the FIFO drain barrier. During
// server drain the loop keeps reading under drainGrace deadlines until
// the socket goes quiet, so events the client sent before the shutdown
// began are still verified (wire.Reader resumes cleanly across the
// shutdown's deadline poke).
func (s *session) readLoop() {
	defer s.srv.readerWG.Done()
	srv := s.srv
	staged := make([]task, 0, readStage)
	// One leased batch at a time: NextInto decodes into it without
	// allocating; staging a task transfers ownership to the verifier
	// (which returns it to the pool), non-batch frames leave the lease
	// in hand for the next frame.
	b := srv.batchPool.Get().(*wire.Batch)
	notified := false
	for {
		graced := srv.draining.Load()
		if graced && !notified {
			// Advisory drain notice, staged once through the verifier so
			// the writer ring stays single-producer: a fleet-aware client
			// finishes its current pass, drains cleanly and redials — the
			// router places it on another node. Plain clients ignore it
			// (an Error frame is informational until the close).
			notified = true
			staged = s.stageCtrl(staged, wire.Error{Code: wire.ErrDraining, Msg: "server draining; drain and redial"})
			s.publish(staged)
			staged = staged[:0]
		}
		d := srv.cfg.ReadTimeout
		if graced {
			d = drainGrace
		}
		s.conn.SetReadDeadline(time.Now().Add(d))
		f, err := s.rd.NextInto(b)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if srv.draining.Load() {
					if graced {
						// Quiet under a grace deadline: fully drained.
						break
					}
					// The shutdown poke interrupted a blocked read; go
					// around once more to sweep buffered frames.
					continue
				}
				// Idle eviction: tell the client why, then drain.
				srv.met.evictionsTotal.Inc()
				staged = s.stageCtrl(staged, wire.Error{Code: wire.ErrIdle, Msg: "idle deadline exceeded"})
			} else if err != nil && !isClosedErr(err) {
				// Hard protocol garbage or a vanished peer; io.EOF is
				// the silent variant of Bye.
				srv.met.errorsTotal.Inc()
			}
			break
		}
		switch fr := f.(type) {
		case *wire.Batch:
			if len(fr.Events) > srv.cfg.MaxBatch {
				srv.met.errorsTotal.Inc()
				staged = s.stageCtrl(staged, wire.Error{Code: wire.ErrProtocol, Msg: "batch exceeds advertised maximum"})
				goto out
			}
			// Every spanSampleEvery-th batch carries timestamps through
			// the pipeline, feeding the sampled reader→verifier→writer
			// span histograms at negligible steady-state cost.
			var t0 time.Time
			if s.sampleCnt%spanSampleEvery == 0 {
				t0 = time.Now()
			}
			s.sampleCnt++
			// A client-stamped trace context expands into a full span
			// record; the untraced steady state pays this one predictable
			// branch and nothing else.
			var sp *SpanRec
			if fr.TraceID != 0 && srv.cfg.TraceRing > 0 {
				sp = srv.spanGet()
				sp.TraceID = fr.TraceID
				sp.OriginNs = int64(fr.OriginNs)
				sp.Session = s.id
				sp.Core = s.core
				sp.ReadNs = nowNs()
			}
			staged = append(staged, task{b: fr, t0: t0, sp: sp})
			// Publish when the socket buffer is dry — the next NextInto
			// would block — or the stage is full. (A frame split across
			// TCP segments can briefly block with tasks staged; its tail
			// is already in flight, so the stall is one segment's RTT.)
			if len(staged) == readStage || s.rd.Buffered() == 0 {
				s.publish(staged)
				staged = staged[:0]
			}
			b = srv.batchPool.Get().(*wire.Batch)
		case wire.Bye:
			goto out
		default:
			srv.met.errorsTotal.Inc()
			staged = s.stageCtrl(staged, wire.Error{Code: wire.ErrProtocol, Msg: "unexpected " + fr.Type().String() + " frame"})
			goto out
		}
	}
out:
	srv.batchPool.Put(b)
	// The done task is published strictly last: the verifier sees every
	// staged batch and control frame first, then seals the session.
	staged = append(staged, task{done: true})
	s.publish(staged)
}

// maxWriteCoalesce bounds a session's merged write buffer: big enough
// to swallow a burst of per-batch alarm+ack buffers in one syscall,
// small enough to keep write latency and memory per session bounded.
const maxWriteCoalesce = 256 << 10

// spanSampleEvery picks which batches carry pipeline-span timestamps
// (reader publish → verifier pop → writer flush). 1-in-64 keeps the
// histograms live on any sustained stream while the extra time.Now()
// calls stay invisible next to the verify kernel itself.
const spanSampleEvery = 64
