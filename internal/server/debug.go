package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// Live-session introspection: the JSON document behind the daemon's
// /debug/sessions endpoint and the ipdstop CLI. Everything here reads
// session telemetry the verifiers maintain as atomics (plus one short
// mutex hold for the forensic snapshot), so the endpoint never touches
// an ipds.Machine — those stay owned by their pinned per-core verifier.

// DebugAlarm summarises a session's most recent alarm and its captured
// forensic context.
type DebugAlarm struct {
	Seq      uint64   `json:"seq"`
	PC       uint64   `json:"pc"`
	Func     string   `json:"func"`
	Expected string   `json:"expected"`
	Taken    bool     `json:"taken"`
	Window   int      `json:"window"`          // events in the captured context
	Stack    []string `json:"stack,omitempty"` // outermost first; "" = unprotected frame
}

// DebugSession is one live session's telemetry snapshot.
type DebugSession struct {
	ID        uint64      `json:"id"`
	Program   string      `json:"program"`
	Core      int         `json:"core"` // verifier core the session is pinned to
	AgeMs     int64       `json:"age_ms"`
	UptimeS   float64     `json:"uptime_s"`
	IdleMs    int64       `json:"idle_ms"`
	Events    uint64      `json:"events"`
	Batches   uint64      `json:"batches"`
	Alarms    uint64      `json:"alarms"`
	AlarmRate float64     `json:"alarm_rate_per_s"`    // last ≥1s window, else lifetime average
	Recorded  uint64      `json:"recorded"`            // flight-recorder lifetime events
	KernelNs  float64     `json:"kernel_ns_per_event"` // verify wall time / verified events
	LastAlarm *DebugAlarm `json:"last_alarm,omitempty"`
}

// DebugInfo is the full /debug/sessions document. The node-level
// totals exist for the fleet aggregation (PR 10): /debug/fleet and
// `ipdstop -fleet` merge them across nodes without re-deriving
// anything from the per-session list.
type DebugInfo struct {
	NowUnixNs int64          `json:"now_unix_ns"`
	Draining  bool           `json:"draining"`
	Events    uint64         `json:"events_total"`        // lifetime verified events, all cores
	Alarms    uint64         `json:"alarms_total"`        // lifetime alarms, all cores
	KernelNs  float64        `json:"kernel_ns_per_event"` // lifetime verify wall time / events
	TraceN    int            `json:"trace_spans"`         // span records currently retained
	E2EP50Ns  int64          `json:"e2e_p50_ns"`          // traced-batch end-to-end latency
	E2EP99Ns  int64          `json:"e2e_p99_ns"`
	Sessions  []DebugSession `json:"sessions"`
}

// Debug snapshots every live session, ordered by session id.
func (s *Server) Debug() DebugInfo {
	now := time.Now()
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		live = append(live, ss)
	}
	s.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })

	info := DebugInfo{
		NowUnixNs: now.UnixNano(),
		Draining:  s.draining.Load(),
		Sessions:  make([]DebugSession, 0, len(live)),
	}
	var verifyNs uint64
	for _, v := range s.verifiers {
		info.Events += v.events.Load()
		info.Alarms += v.alarms.Load()
		verifyNs += v.verifyNs.Load()
	}
	if info.Events > 0 {
		info.KernelNs = float64(verifyNs) / float64(info.Events)
	}
	if spans := s.TraceSpans(); len(spans) > 0 {
		info.TraceN = len(spans)
		info.E2EP50Ns, info.E2EP99Ns = s.TraceE2E()
	}
	for _, ss := range live {
		d := DebugSession{
			ID:        ss.id,
			Program:   ss.program,
			Core:      ss.core,
			AgeMs:     now.Sub(ss.started).Milliseconds(),
			UptimeS:   now.Sub(ss.started).Seconds(),
			Batches:   ss.batchesN.Load(),
			Alarms:    ss.alarmsN.Load(),
			AlarmRate: ss.alarmRate(now),
			Recorded:  ss.recTotal.Load(),
		}
		last := ss.started.UnixNano()
		if t := ss.lastBatch.Load(); t != 0 {
			last = t
		}
		d.IdleMs = (now.UnixNano() - last) / int64(time.Millisecond)
		d.Events = ss.events.Load()
		if ev := d.Events; ev > 0 {
			d.KernelNs = float64(ss.verifyNs.Load()) / float64(ev)
		}
		ss.ctxMu.Lock()
		if ss.hasCtx {
			c := &ss.lastCtx
			da := &DebugAlarm{
				Seq:      c.Alarm.Seq,
				PC:       c.Alarm.PC,
				Func:     c.Alarm.Func,
				Expected: c.Alarm.Expected.String(),
				Taken:    c.Alarm.Taken,
				Window:   len(c.Recent),
				Stack:    make([]string, len(c.Stack)),
			}
			for i := range c.Stack {
				da.Stack[i] = c.Stack[i].Func
			}
			d.LastAlarm = da
		}
		ss.ctxMu.Unlock()
		info.Sessions = append(info.Sessions, d)
	}
	return info
}

// DebugHandler serves Debug() as JSON — mounted by ipdsd at
// /debug/sessions on the telemetry endpoint, polled by ipdstop.
func (s *Server) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Debug())
	})
}
