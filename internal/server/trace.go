package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Wire-level trace expansion: a client that stamps a Batch with the
// trace extension (wire.Batch.TraceID) gets that batch expanded, on
// the daemon, into a per-stage span record — read/decode, ring
// enqueue→dequeue wait, kernel verify, incident offer + forensics
// emission, write coalesce → ack flush — committed into a bounded
// per-core ring once the ack bytes are on the wire. /debug/trace
// exports the rings as Chrome trace-event JSON (chrome://tracing,
// Perfetto), one track per verifier core.
//
// Cost model: an untraced batch pays exactly one predictable branch
// (TraceID == 0) on the reader — the PR 4/7/9 zero-alloc serve path,
// alloc-gate enforced. A traced batch borrows its record from a pool,
// stamps five timestamps as it moves through the stages it already
// moves through, and is committed by the core writer under a mutex no
// unsampled batch ever touches.

// SpanRec is one traced batch's per-stage latency record. All *Ns
// fields except OriginNs are the daemon's clock (unix nanoseconds)
// stamped by the stage that owns the batch at that moment, so within
// a record ReadNs ≤ DequeueNs ≤ VerifyEndNs ≤ OfferEndNs ≤ AckNs by
// construction. OriginNs is the client's clock: the wire leg derived
// from it absorbs any cross-host skew, never the daemon-side ordering.
type SpanRec struct {
	TraceID uint64 `json:"trace_id"`
	Session uint64 `json:"session"`
	Core    int    `json:"core"`
	Events  int    `json:"events"`
	Alarms  int    `json:"alarms"`

	OriginNs    int64 `json:"origin_ns"` // client stamp; 0 = none sent
	ReadNs      int64 `json:"read_ns"`   // reader: frame read + decoded
	DequeueNs   int64 `json:"dequeue_ns"`
	VerifyEndNs int64 `json:"verify_end_ns"`
	OfferEndNs  int64 `json:"offer_end_ns"`
	AckNs       int64 `json:"ack_ns"` // writer: coalesced flush completed
}

// E2ENs is the record's end-to-end batch latency: client origin → ack
// flush when the client stamped an origin (same-host clocks in the
// gates; skewed cross-host stamps fall back), daemon read → ack flush
// otherwise.
func (r SpanRec) E2ENs() int64 {
	if r.OriginNs > 0 && r.OriginNs <= r.AckNs {
		return r.AckNs - r.OriginNs
	}
	return r.AckNs - r.ReadNs
}

// spanRing is one core's bounded committed-record ring. The core's
// writer is the only committer; the debug endpoint snapshots under the
// same mutex. Unsampled traffic never touches it.
type spanRing struct {
	mu  sync.Mutex
	buf []SpanRec
	n   uint64 // lifetime commits; buf[(n-1) % len] is the newest
}

func newSpanRing(capacity int) *spanRing {
	if capacity <= 0 {
		return nil
	}
	return &spanRing{buf: make([]SpanRec, capacity)}
}

// commit stores one finished record, overwriting the oldest.
func (r *spanRing) commit(rec SpanRec) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = rec
	r.n++
	r.mu.Unlock()
}

// snapshot appends the ring's live records onto dst, oldest first.
func (r *spanRing) snapshot(dst []SpanRec) []SpanRec {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n, size := r.n, uint64(len(r.buf))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	for i := start; i < n; i++ {
		dst = append(dst, r.buf[i%size])
	}
	return dst
}

// TraceSpans snapshots every core's committed span records, ordered by
// daemon read time. The rings are bounded (Config.TraceRing per core),
// so this is the most recent window, not a full history.
func (s *Server) TraceSpans() []SpanRec {
	var out []SpanRec
	for _, v := range s.verifiers {
		out = v.wr.spans.snapshot(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ReadNs < out[j].ReadNs })
	return out
}

// TraceE2E reports the p50 and p99 end-to-end batch latency over the
// currently retained span records, in nanoseconds; zeros when nothing
// has been traced.
func (s *Server) TraceE2E() (p50, p99 int64) {
	recs := s.TraceSpans()
	if len(recs) == 0 {
		return 0, 0
	}
	lat := make([]int64, len(recs))
	for i, r := range recs {
		lat[i] = r.E2ENs()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return idx(0.50), idx(0.99)
}

// chromeTraceEvent is one Chrome trace-event entry ("X" = complete
// event, ts/dur in microseconds). Pid groups the daemon, tid is the
// verifier core, so each core renders as its own track.
type chromeTraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceStages turns one record into its Chrome stage events. Stages
// are emitted only when their interval is well-formed, so a record
// from a skewed client still renders its daemon-side stages.
func traceStages(r SpanRec, t0 int64) []chromeTraceEvent {
	us := func(ns int64) float64 { return float64(ns-t0) / 1e3 }
	args := map[string]any{
		"trace_id": r.TraceID,
		"session":  r.Session,
		"events":   r.Events,
		"alarms":   r.Alarms,
	}
	var evs []chromeTraceEvent
	add := func(name string, from, to int64, tid int) {
		if from <= 0 || to < from {
			return
		}
		evs = append(evs, chromeTraceEvent{
			Name: name, Ph: "X",
			Ts: us(from), Dur: float64(to-from) / 1e3,
			Pid: 1, Tid: tid, Args: args,
		})
	}
	// The wire leg (client encode + router splice + socket read) is
	// derived from the client's origin stamp; it renders on a separate
	// track (-1) because it is not a core's work.
	if r.OriginNs > 0 && r.OriginNs <= r.ReadNs {
		add("wire", r.OriginNs, r.ReadNs, -1)
	}
	add("queue_wait", r.ReadNs, r.DequeueNs, r.Core)
	add("verify", r.DequeueNs, r.VerifyEndNs, r.Core)
	add("offer", r.VerifyEndNs, r.OfferEndNs, r.Core)
	add("write_ack", r.OfferEndNs, r.AckNs, r.Core)
	return evs
}

// WriteChromeTrace renders the retained span records as a Chrome
// trace-event JSON array. Timestamps are rebased to the earliest
// record so the trace starts at t=0.
func (s *Server) WriteChromeTrace(w http.ResponseWriter) {
	recs := s.TraceSpans()
	var t0 int64
	for _, r := range recs {
		base := r.ReadNs
		if r.OriginNs > 0 && r.OriginNs < base {
			base = r.OriginNs
		}
		if t0 == 0 || base < t0 {
			t0 = base
		}
	}
	evs := []chromeTraceEvent{}
	for _, r := range recs {
		evs = append(evs, traceStages(r, t0)...)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(evs)
}

// TraceHandler serves the span rings as Chrome trace-event JSON —
// mounted by ipdsd at /debug/trace, fetched by `ipdsload trace`. With
// ?spans=1 it serves the raw SpanRec list instead (what the fleet
// aggregation and tests consume).
func (s *Server) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("spans") != "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Spans []SpanRec `json:"spans"`
			}{s.TraceSpans()})
			return
		}
		s.WriteChromeTrace(w)
	})
}

// spanGet leases a zeroed record from the span pool.
func (s *Server) spanGet() *SpanRec {
	sp := s.spanPool.Get().(*SpanRec)
	*sp = SpanRec{}
	return sp
}

// spanCommit finishes a record at ack-flush time: stamps AckNs, feeds
// the e2e histogram, commits the value into the core's ring and
// returns the lease to the pool. Runs on the core writer.
func (s *Server) spanCommit(w *coreWriter, sp *SpanRec, ackNs int64) {
	sp.AckNs = ackNs
	if e2e := sp.E2ENs(); e2e > 0 {
		s.met.e2eNs.Observe(uint64(e2e))
	}
	w.spans.commit(*sp)
	s.spanPool.Put(sp)
}

// spanDiscard abandons a record whose batch never reached the wire (a
// failed session's output is discarded, not acked).
func (s *Server) spanDiscard(sp *SpanRec) {
	s.spanPool.Put(sp)
}

// nowNs is the span clock: one name for "the daemon's monotonic-ish
// wall clock in unix nanoseconds".
func nowNs() int64 { return time.Now().UnixNano() }
