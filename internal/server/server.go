// Package server hosts many concurrent IPDS verifier sessions over
// TCP: the daemon half of the remote-attestation stack (cmd/ipdsd is
// its CLI shell). Each accepted connection opens with a wire.Hello
// naming a table image by content hash; the server resolves the image
// through its ImageStore, dedicates one ipds.Machine to the session,
// and from then on verifies the client's batched branch-event stream,
// pushing wire.Alarm frames back as infeasible paths are detected.
//
// Concurrency model. The serve path is per-core: one verifier loop
// per configured core (default GOMAXPROCS), each paired with its own
// writer loop, connected by single-producer/single-consumer rings
// (internal/ring) so no steady-state queue ever has more than one
// goroutine on either end. A session is pinned to a verifier by a
// consistent hash of its id for its whole life — the verifier is the
// only goroutine that ever touches the session's ipds.Machine, which
// preserves the machine single-owner rule and per-session event order
// while independent sessions verify on independent cores. The
// per-connection reader goroutine only decodes frames — coalescing
// everything one socket read delivered into a single ring publish —
// and the per-core writer owns the outbound side of every session on
// its core, so ack/alarm/incident encoding and write syscalls never
// cross cores. See percore.go for the loop mechanics.
//
// Bounded everything: batch size (wire limits), per-session task
// rings (readers stall when a verifier falls behind — backpressure to
// the socket, counted, never unbounded buffering), and per-core
// writer rings (verifiers stall when clients won't drain their
// alarms, counted as server_backpressure_stalls_total). Sessions
// carry a per-frame read deadline, so an idle client is evicted with
// wire.ErrIdle instead of holding a machine forever. Shutdown drains
// gracefully: already-queued batches are verified and already-queued
// alarms delivered, each session ending in a final Ack and Bye. The
// incident analytics queue remains the system's single
// multi-producer merge point, deliberately off the serve path.
package server

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/incident"
	"repro/internal/ipds"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/wire"
)

// Config parameterises a Server. The zero value of any field selects
// the documented default.
type Config struct {
	// MaxBatch caps the events accepted in one Batch frame (default
	// wire.MaxBatch). Advertised to clients in the HelloAck.
	MaxBatch int

	// ReadTimeout is the per-frame read deadline; a session that sends
	// nothing for this long is evicted (default 60s).
	ReadTimeout time.Duration

	// WriteTimeout bounds each outbound frame write (default 10s). A
	// client that stops draining alarms past the queue and this
	// deadline loses the session rather than wedging a verifier.
	WriteTimeout time.Duration

	// AlarmQueue bounds each core's outbound writer ring (default 256
	// ops, rounded to a power of two). When full, the core's verifier
	// stalls — backpressure, counted — instead of buffering without
	// bound.
	AlarmQueue int

	// Verifiers is the number of per-core verifier/writer loop pairs
	// (default GOMAXPROCS). Sessions are pinned across them by
	// consistent hash of session id.
	Verifiers int

	// RingSize bounds each session's reader→verifier task ring
	// (default 64 tasks, rounded to a power of two). A full ring
	// stalls the session's reader — backpressure to the socket.
	RingSize int

	// IPDS configures each session's machine (zero value selects
	// ipds.DefaultConfig, matching in-process runs).
	IPDS ipds.Config

	// RecorderDepth sizes each session machine's flight recorder when
	// IPDS.Recorder is zero: 0 selects ipds.DefaultRecorderDepth —
	// forensics are ON by default in the daemon, the recorder being
	// allocation-free on the warm path — and a negative depth disables
	// them. With the recorder enabled, every Alarm frame is followed by
	// a wire.AlarmCtx frame carrying the captured forensic context.
	RecorderDepth int

	// DisableIncidents turns off the incident analytics stage. It is ON
	// by default: the stage runs behind a bounded queue off the serve
	// path, so its steady-state cost is one non-blocking channel send
	// per alarm.
	DisableIncidents bool

	// IncidentQueue bounds the analytics feed queue (default
	// DefaultIncidentQueue). When full, observations are dropped from
	// analysis — counted as incident_queue_dropped_total — never
	// stalling a verifier.
	IncidentQueue int

	// Incident configures the analyzer (zero value selects the
	// incident package defaults).
	Incident incident.Config

	// TraceRing is the per-core capacity of the committed span-record
	// ring behind /debug/trace (default 256; negative disables trace
	// expansion entirely). Records are only ever created for batches a
	// client stamped with the wire trace extension — unstamped traffic
	// pays one branch and allocates nothing, whatever this is set to.
	TraceRing int

	// Reg receives server_* metrics; nil disables (free).
	Reg *obs.Registry

	// Tracer records per-session serve spans; nil disables (free).
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 || c.MaxBatch > wire.MaxBatch {
		c.MaxBatch = wire.MaxBatch
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.AlarmQueue <= 0 {
		c.AlarmQueue = 256
	}
	if c.Verifiers <= 0 {
		c.Verifiers = runtime.GOMAXPROCS(0)
	}
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	switch {
	case c.TraceRing == 0:
		c.TraceRing = 256
	case c.TraceRing < 0:
		c.TraceRing = 0
	}
	if c.IPDS == (ipds.Config{}) {
		c.IPDS = ipds.DefaultConfig
	}
	if c.IPDS.Recorder == 0 && c.RecorderDepth >= 0 {
		c.IPDS.Recorder = c.RecorderDepth
		if c.RecorderDepth == 0 {
			c.IPDS.Recorder = ipds.DefaultRecorderDepth
		}
	}
	return c
}

// task is one entry in a session's reader→verifier ring. Exactly one
// of b, fb or done is set:
//
//   - b: a decoded batch. Pool-owned — the reader leases it from
//     Server.batchPool, ownership rides the ring, the verifier returns
//     it once OnBatch has consumed the events.
//   - fb: a reader-originated control frame (eviction or protocol
//     error) the verifier forwards to the core writer — readers never
//     touch a writer ring themselves, which keeps it SPSC.
//   - done: the reader's final task. Ring FIFO guarantees the verifier
//     sees it strictly after every batch the session ever queued, so
//     "done observed" IS the drain barrier — no pending counters.
type task struct {
	b    *wire.Batch
	fb   *frameBuf
	done bool
	// t0 is non-zero on sampled batches (1 in spanSampleEvery per
	// session): the reader's publish time, observed by the verifier as
	// server_queue_wait_ns — the reader→verifier leg of the sampled
	// pipeline span.
	t0 time.Time
	// sp is non-nil on client-trace-stamped batches: the pooled span
	// record the stages fill in as the batch moves through them (see
	// trace.go). Ownership rides the ring with the batch; the core
	// writer commits and releases it at ack-flush time.
	sp *SpanRec
}

// frameBuf is one pooled outbound encoding: one frame, or several
// concatenated frames (a batch's alarms and its ack travel as one
// buffer — the stream is self-delimiting, so receivers cannot tell the
// difference, and the verifier pays one ring operation per batch
// instead of one per alarm). Ownership rule: the encoder leases it, the
// core writer is the only party that may release it, and only once it
// is done with the bytes — after copying them into the session's
// coalesced write buffer (or discarding them) — never while the frame
// is still queued, or a reuse would corrupt bytes in flight.
type frameBuf struct {
	b []byte
	// t0 is non-zero when this buffer continues a sampled batch's span:
	// the verifier's queue time, observed by the writer (once the bytes
	// are on the wire) as server_write_wait_ns — the verifier→writer leg.
	t0 time.Time
	// sp continues a trace-stamped batch's span record into the writer:
	// non-nil only when the buffer carries such a batch's alarms+ack.
	// The writer detaches it on append (into session.wspans) and the
	// flush that puts the bytes on the wire commits it.
	sp *SpanRec
}

// Server hosts verifier sessions. Create with New, feed with Serve (or
// ListenAndServe), stop with Shutdown — which must be called exactly
// once to release the per-core loops.
type Server struct {
	cfg   Config
	store *ImageStore
	met   metrics

	// batchPool recycles decoded event batches between the per-conn
	// readers and the verifiers; bufPool recycles outbound frame
	// encodings between verifiers/readers and the per-core writers.
	// Together they make the steady-state serve loop allocation-free
	// per event.
	batchPool sync.Pool
	bufPool   sync.Pool

	// spanPool recycles trace span records (trace.go); leased by the
	// reader for stamped batches only, released by the core writer.
	spanPool sync.Pool

	// incidents is the off-path analytics stage (nil when disabled):
	// verifiers offer alarms and forensic captures to its bounded queue
	// and a dedicated goroutine folds them into ranked incidents.
	incidents *incidentStage

	// verifiers are the per-core loops; each owns a writer. stopping
	// flips once all readers have drained, telling verifiers to finish
	// their remaining sessions and exit.
	verifiers []*verifier
	stopping  atomic.Bool

	workerWG sync.WaitGroup
	readerWG sync.WaitGroup
	writerWG sync.WaitGroup

	draining atomic.Bool

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	nextID   uint64
}

// New creates a server over an image store. The per-core loops start
// immediately; Shutdown stops them.
func New(store *ImageStore, cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		store:    store,
		sessions: map[uint64]*session{},
	}
	s.batchPool.New = func() any { return &wire.Batch{} }
	s.bufPool.New = func() any { return &frameBuf{} }
	s.spanPool.New = func() any { return &SpanRec{} }
	s.met = newMetrics(s.cfg.Reg)
	if !s.cfg.DisableIncidents {
		s.incidents = newIncidentStage(s.cfg.Incident, s.cfg.IncidentQueue, s.cfg.Reg)
	}
	s.verifiers = make([]*verifier, s.cfg.Verifiers)
	for i := range s.verifiers {
		v := newVerifier(s, i)
		s.verifiers[i] = v
		s.workerWG.Add(1)
		go v.loop()
		s.writerWG.Add(1)
		go v.wr.loop()
	}
	return s
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil after a clean shutdown, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// ActiveSessions reports the live session count.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Shutdown drains the server: stop accepting, wake every session
// reader, verify everything already queued, deliver every queued alarm
// (final Ack + Bye per session), then stop the per-core loops. It
// returns nil on a full drain or ctx.Err() if the context expired
// first (remaining connections are then closed hard).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining.Swap(true)
	ln := s.ln
	live := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		live = append(live, ss)
	}
	s.mu.Unlock()
	if already {
		return fmt.Errorf("server: Shutdown called twice")
	}
	if ln != nil {
		ln.Close()
	}
	// Wake blocked readers; in-flight reads fail immediately with a
	// timeout, and the draining flag turns that into a graceful stop.
	for _, ss := range live {
		ss.conn.SetReadDeadline(time.Now().Add(-time.Second))
	}

	done := make(chan struct{})
	go func() {
		// Drain order: once every reader has exited, every session's done
		// task is in its ring, so telling the verifiers to stop lets each
		// finish its remaining sessions (FIFO guarantees the batches come
		// first) and push its writer's stop op last.
		s.readerWG.Wait()
		s.stopping.Store(true)
		for _, v := range s.verifiers {
			v.pk.Wake()
		}
		s.workerWG.Wait()
		s.writerWG.Wait()
		// Every producer into the incident queue lives inside the loops
		// above; with them drained the stage can close and flush.
		if s.incidents != nil {
			s.incidents.close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, ss := range s.sessions {
			ss.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// register adds a session under a fresh id, refusing during drain. The
// session's ring and verifier pin are established here, before any
// frame can flow.
func (s *Server) register(ss *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.nextID++
	ss.id = s.nextID
	ss.v = s.pinVerifier(ss.id)
	ss.core = ss.v.id
	ss.ring = ring.New[task](s.cfg.RingSize)
	s.sessions[ss.id] = ss
	s.met.sessionsTotal.Inc()
	s.met.sessionsActive.Set(int64(len(s.sessions)))
	return true
}

// unregister removes a finished session and absorbs its machine's
// counters into the server-wide series.
func (s *Server) unregister(ss *session) {
	s.mu.Lock()
	delete(s.sessions, ss.id)
	s.met.sessionsActive.Set(int64(len(s.sessions)))
	s.mu.Unlock()
	s.met.absorb(ss.m.Stats())
	if ss.stopSpan != nil {
		ss.stopSpan()
	}
}

// refuse answers a connection that never became a session: one error
// frame, best effort, then close.
func (s *Server) refuse(conn net.Conn, code wire.ErrCode, msg string) {
	s.met.errorsTotal.Inc()
	if len(msg) > wire.MaxString {
		msg = msg[:wire.MaxString]
	}
	b := wire.MustAppend(nil, wire.Error{Code: code, Msg: msg})
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	conn.Write(b)
	conn.Close()
}

// handleConn performs the hello handshake and promotes the connection
// into a session.
func (s *Server) handleConn(conn net.Conn) {
	if s.draining.Load() {
		s.refuse(conn, wire.ErrDraining, "server draining")
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	rd := wire.NewReader(conn)
	f, err := rd.Next()
	if err != nil {
		s.met.errorsTotal.Inc()
		conn.Close()
		return
	}
	hello, ok := f.(wire.Hello)
	if !ok {
		s.refuse(conn, wire.ErrProtocol, fmt.Sprintf("expected hello, got %v", f.Type()))
		return
	}
	if hello.Version != wire.Version {
		s.refuse(conn, wire.ErrBadVersion, fmt.Sprintf("server speaks version %d", wire.Version))
		return
	}
	img, ok := s.store.Resolve(hello.Image)
	if !ok {
		s.refuse(conn, wire.ErrUnknownImage, fmt.Sprintf("no table image %x", hello.Image[:8]))
		return
	}

	ss := &session{
		srv:       s,
		conn:      conn,
		rd:        rd,
		m:         ipds.New(img, s.cfg.IPDS),
		program:   hello.Program,
		forensics: s.cfg.IPDS.Recorder > 0,
		started:   time.Now(),
	}
	if !s.register(ss) {
		s.refuse(conn, wire.ErrDraining, "server draining")
		return
	}
	ss.stopSpan = s.cfg.Tracer.Span(obs.Name("serve/session", "program", ss.program))

	ack := wire.MustAppend(nil, wire.HelloAck{Version: wire.Version, MaxBatch: uint32(s.cfg.MaxBatch)})
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if _, err := conn.Write(ack); err != nil {
		// The session was never adopted by its verifier; unwind by hand.
		conn.Close()
		s.unregister(ss)
		return
	}

	// Adopt before the reader starts so the first published task always
	// finds the verifier scanning (or parkable-and-wakeable).
	ss.v.adopt(ss)
	s.readerWG.Add(1)
	go ss.readLoop()
}

// verifyBatch feeds one batch through the session's machine via the
// zero-allocation OnBatch kernel, streams the raised alarms out through
// pooled encode buffers, acknowledges the batch, and returns the batch
// to the pool. Runs on the session's pinned verifier — the machine's
// only driver.
func (s *Server) verifyBatch(v *verifier, ss *session, t task) {
	n := len(t.b.Events)
	start := time.Now()
	if !t.t0.IsZero() {
		s.met.queueWaitNs.Observe(uint64(start.Sub(t.t0).Nanoseconds()))
		s.met.queueWaitSampled.Inc()
	}
	if t.sp != nil {
		t.sp.DequeueNs = start.UnixNano()
	}
	// The returned alarm slice is machine-owned and valid until the
	// machine's next batch; this verifier is the machine's only driver,
	// so encoding the alarms here, before releasing the batch, is safe.
	alarms := ss.m.OnBatch(t.b.Events)
	if t.sp != nil {
		t.sp.VerifyEndNs = nowNs()
		t.sp.Events = n
		t.sp.Alarms = len(alarms)
	}
	// The batch's alarms and its ack ride one pooled buffer: one ring
	// operation and (after writer coalescing) one socket write per
	// batch, however many alarms it raised.
	fb := s.bufPool.Get().(*frameBuf)
	fb.b = fb.b[:0]
	fb.t0 = time.Time{}
	fb.sp = nil
	for i := range alarms {
		s.met.alarmsTotal.Inc()
		var err error
		if fb.b, err = wire.AppendAlarm(fb.b, alarmFrame(&alarms[i])); err != nil {
			panic(err) // alarmFrame clamps Func; unreachable absent a bug
		}
		// Feed the analytics stage off the hot path: a non-blocking
		// send of a detached value copy (drops are counted), so the
		// serve loop never stalls or allocates for analysis. This is
		// the one multi-producer queue in the system — the merge point
		// where all cores' alarms meet.
		if s.incidents != nil {
			a := &alarms[i]
			s.incidents.offer(incident.AlarmEvent{
				Session: ss.id, Seq: a.Seq, PC: a.PC, Func: a.Func, Taken: a.Taken,
			})
		}
	}
	// Emission is capture-driven: each context the machine snapshotted
	// during this batch (alarms past the storm throttle) goes out once,
	// after the batch's alarm frames, paired to its alarm by Seq. A
	// batch whose alarms were all throttled costs one counter compare.
	if ss.forensics {
		if tot := ss.m.CtxCaptured(); tot != ss.ctxSeen {
			fresh := int(tot - ss.ctxSeen)
			ss.ctxSeen = tot
			// The context ring is shallow: in a pathological burst the
			// oldest captures of this batch may already be overwritten
			// before emission. Counted, never silent.
			if n := ss.m.ContextCount(); fresh > n {
				s.met.ctxDropped.Add(uint64(fresh - n))
				fresh = n
			}
			for i := ss.m.ContextCount() - fresh; i < ss.m.ContextCount(); i++ {
				c := ss.m.ContextAt(i)
				var ok bool
				fb.b, ok = appendAlarmCtx(fb.b, c)
				if ok {
					s.met.ctxTotal.Inc()
				} else {
					s.met.ctxDropped.Inc()
				}
				if s.incidents != nil {
					s.incidents.offerCtx(c)
				}
			}
			if c := ss.m.LastContext(); c != nil {
				// Refresh the session's forensic snapshot for
				// /debug/sessions. CopyInto reuses the snapshot's
				// slices, so the steady state stays allocation-free.
				ss.ctxMu.Lock()
				c.CopyInto(&ss.lastCtx)
				ss.hasCtx = true
				ss.ctxMu.Unlock()
			}
		}
	}
	s.batchPool.Put(t.b)
	spent := uint64(time.Since(start).Nanoseconds())
	s.met.verifyNs.Observe(spent)
	s.met.eventsTotal.Add(uint64(n))
	s.met.batchesTotal.Inc()
	s.met.batchLen.Observe(uint64(n))
	v.events.Add(uint64(n))
	v.batches.Add(1)
	v.alarms.Add(uint64(len(alarms)))
	v.verifyNs.Add(spent)
	ss.verifyNs.Add(spent)
	ss.batchesN.Add(1)
	total := ss.alarmsN.Add(uint64(len(alarms)))
	ss.recTotal.Store(ss.m.RecorderTotal())
	ss.lastBatch.Store(start.UnixNano())
	ss.updateRate(start.UnixNano(), total)
	done := ss.events.Add(uint64(n))
	fb.b = wire.AppendAck(fb.b, wire.Ack{Events: done})
	if !t.t0.IsZero() {
		fb.t0 = time.Now()
	}
	if t.sp != nil {
		// Incident offer + forensics emission + ack encode are done; the
		// record rides the frame buffer to the core writer, which stamps
		// AckNs and commits once the coalesced write lands.
		t.sp.OfferEndNs = nowNs()
		fb.sp = t.sp
	}
	v.send(writeOp{s: ss, fb: fb})
}

// alarmFrame converts a machine alarm to its wire form.
func alarmFrame(a *ipds.Alarm) wire.Alarm {
	fn := a.Func
	if len(fn) > wire.MaxString {
		fn = fn[:wire.MaxString]
	}
	return wire.Alarm{
		Seq:      a.Seq,
		PC:       a.PC,
		Func:     fn,
		Slot:     uint32(a.Slot),
		Expected: uint8(a.Expected),
		Taken:    a.Taken,
	}
}
