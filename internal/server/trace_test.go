package server_test

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ipdsclient"
	"repro/internal/server"
)

// sendTraced drives one session with every batch stamped and returns
// the number of event batches the client flushed.
func sendTraced(t *testing.T, w *testWorld, program string, batch, sample int) int {
	t.Helper()
	trace := ipdsclient.Capture(w.art, nil)
	c, err := ipdsclient.Dial(ipdsclient.Config{
		Addr: w.addr, Image: w.hash, Program: program,
		Batch: batch, TraceSample: sample,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return (len(trace) + batch - 1) / batch
}

// TestTraceSpansE2E pins the daemon half of the trace plane: a client
// stamping every batch produces exactly one committed span per event
// batch, each with a complete, monotonic stage chain whose wire leg
// starts at the client's origin stamp; per-session trace ids arrive in
// send order; and TraceE2E derives nonzero quantiles from the records.
func TestTraceSpansE2E(t *testing.T) {
	w := startWorld(t, server.Config{TraceRing: 1024})
	t0 := time.Now().UnixNano()
	batches := sendTraced(t, w, "traced", 8, 1)
	w.shut(t) // spans commit on the core writers; drain flushes them all

	spans := w.srv.TraceSpans()
	if len(spans) != batches {
		t.Fatalf("committed %d spans for %d event batches", len(spans), batches)
	}
	lastID := map[uint64]uint64{}
	for _, sp := range spans {
		if sp.TraceID == 0 || sp.Events == 0 {
			t.Fatalf("incomplete span record: %+v", sp)
		}
		if sp.OriginNs < t0 || sp.OriginNs > sp.ReadNs {
			t.Errorf("wire leg not monotonic: origin=%d read=%d", sp.OriginNs, sp.ReadNs)
		}
		if !(sp.ReadNs <= sp.DequeueNs && sp.DequeueNs <= sp.VerifyEndNs &&
			sp.VerifyEndNs <= sp.OfferEndNs && sp.OfferEndNs <= sp.AckNs) {
			t.Errorf("span chain not monotonic: %+v", sp)
		}
		// One session, one reader, one core: ids commit in send order.
		if prev, ok := lastID[sp.Session]; ok && sp.TraceID != prev+1 {
			t.Errorf("session %d: trace id %d after %d", sp.Session, sp.TraceID, prev)
		}
		lastID[sp.Session] = sp.TraceID
	}
	p50, p99 := w.srv.TraceE2E()
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("TraceE2E = %d/%d", p50, p99)
	}
}

// TestTraceSamplingAndDisable pins the opt-in contracts: an unstamped
// client leaves the rings untouched, 1-in-N stamping commits only the
// sampled batches, and TraceRing < 0 disables the plane entirely even
// for stamping clients.
func TestTraceSamplingAndDisable(t *testing.T) {
	w := startWorld(t, server.Config{TraceRing: 1024})
	sendTraced(t, w, "untraced", 8, 0)
	if n := len(w.srv.TraceSpans()); n != 0 {
		t.Fatalf("unstamped client committed %d spans", n)
	}
	batches := sendTraced(t, w, "sampled", 8, 4)
	w.shut(t)                 // commits happen on the core writers; drain flushes them
	want := (batches + 3) / 4 // flushes 0, 4, 8, … carry the stamp
	if n := len(w.srv.TraceSpans()); n != want {
		t.Fatalf("1-in-4 sampling committed %d spans for %d batches, want %d", n, batches, want)
	}
	if p50, p99 := w.srv.TraceE2E(); p50 <= 0 || p99 < p50 {
		t.Fatalf("TraceE2E = %d/%d", p50, p99)
	}

	off := startWorld(t, server.Config{TraceRing: -1})
	sendTraced(t, off, "traced", 8, 1)
	if n := len(off.srv.TraceSpans()); n != 0 {
		t.Fatalf("TraceRing<0 daemon committed %d spans", n)
	}
}

// TestTraceHandler pins the HTTP surface: /debug/trace serves a Chrome
// trace-event array covering every daemon-side stage plus the wire
// leg, and ?spans=1 serves the raw records.
func TestTraceHandler(t *testing.T) {
	w := startWorld(t, server.Config{TraceRing: 1024})
	sendTraced(t, w, "traced", 8, 1)
	w.shut(t)

	rec := httptest.NewRecorder()
	w.srv.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	var evs []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	stages := map[string]int{}
	for _, ev := range evs {
		if ev.Ph != "X" || ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("malformed trace event: %+v", ev)
		}
		stages[ev.Name]++
	}
	for _, name := range []string{"wire", "queue_wait", "verify", "offer", "write_ack"} {
		if stages[name] == 0 {
			t.Errorf("trace document lacks %q stage events (have %v)", name, stages)
		}
	}

	rec = httptest.NewRecorder()
	w.srv.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?spans=1", nil))
	var doc struct {
		Spans []server.SpanRec `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid spans JSON: %v", err)
	}
	if len(doc.Spans) == 0 || doc.Spans[0].TraceID == 0 {
		t.Fatalf("spans document empty or unstamped: %+v", doc.Spans)
	}
}

// TestSpanE2EFallback pins the latency definition: origin-based when
// the client stamped a plausible clock, daemon read→ack otherwise.
func TestSpanE2EFallback(t *testing.T) {
	withOrigin := server.SpanRec{OriginNs: 100, ReadNs: 400, AckNs: 600}
	if got := withOrigin.E2ENs(); got != 500 {
		t.Fatalf("origin-based e2e = %d, want 500", got)
	}
	skewed := server.SpanRec{OriginNs: 700, ReadNs: 400, AckNs: 600}
	if got := skewed.E2ENs(); got != 200 {
		t.Fatalf("skewed-clock fallback e2e = %d, want 200", got)
	}
	none := server.SpanRec{ReadNs: 400, AckNs: 600}
	if got := none.E2ENs(); got != 200 {
		t.Fatalf("originless e2e = %d, want 200", got)
	}
}
