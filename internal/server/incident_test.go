package server_test

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/tables"
	"repro/internal/wire"
)

// The incident-pipeline gate: a seeded persistent corruption (one
// branch bent the same wrong way from a mid-run onset, over sparse
// tamper noise) must come back from a live daemon as the #1 ranked
// incident, the alarm flood must fold by >= 95%, and the daemon's list
// must equal — field for field — an in-process replay of the same
// per-session streams through a fresh incident.Analyzer. Run by
// `make incident-gate` under the race detector.

// buildFloodScenario loops the captured guard trace reps times, lays a
// sparse Tamper drip across the whole run, then bends one branch site
// into a thrash from the midpoint onward — picking, by local replay,
// the PC that alarms loudest, i.e. the most flood-like seedable
// corruption this program admits.
func buildFloodScenario(t *testing.T, art *pipeline.Artifacts, reps int) (evs []wire.Event, floodPC uint64, onset int) {
	t.Helper()
	base := ipdsclient.Capture(art, nil)
	if len(base) == 0 {
		t.Fatal("empty capture")
	}
	long := make([]wire.Event, 0, reps*len(base))
	for i := 0; i < reps; i++ {
		long = append(long, base...)
	}
	noisy := ipdsclient.Tamper(long, 1009)
	onset = len(noisy) / 2

	best := -1
	seen := map[uint64]bool{}
	for _, ev := range base {
		if ev.Kind != wire.EvBranch || seen[ev.PC] {
			continue
		}
		seen[ev.PC] = true
		cand := ipdsclient.TamperPoint(noisy, ev.PC, onset)
		n := len(ipdsclient.ReplayLocalBatched(ipds.New(art.Image, ipds.DefaultConfig), cand, 512))
		if n > best {
			best, floodPC, evs = n, ev.PC, cand
		}
	}
	if best < 500 {
		t.Fatalf("loudest seedable flood raises only %d alarms; scenario too quiet for a gate", best)
	}
	return evs, floodPC, onset
}

// replayIncidents feeds the scenario through fresh local machines — one
// per session, numbered 1..sessions — into a fresh analyzer, and
// returns its ranked list plus the total alarm count. This is the
// reference the live daemon must match exactly.
func replayIncidents(img *tables.Image, evs []wire.Event, sessions int) ([]incident.Incident, int) {
	an := incident.NewAnalyzer(incident.Config{})
	alarms := 0
	for s := 1; s <= sessions; s++ {
		m := ipds.New(img, ipds.DefaultConfig)
		for _, a := range ipdsclient.ReplayLocalBatched(m, evs, 512) {
			an.Observe(incident.AlarmEvent{
				Session: uint64(s), Seq: a.Seq, PC: a.PC, Func: a.Func, Taken: a.Taken,
			})
			alarms++
		}
	}
	return an.Incidents(), alarms
}

func TestIncidentGateFloodRanksFirst(t *testing.T) {
	w := startWorld(t, server.Config{IncidentQueue: 1 << 16})
	trace, floodPC, _ := buildFloodScenario(t, w.art, 600)
	const sessions = 4

	ref, refAlarms := replayIncidents(w.art.Image, trace, sessions)
	if len(ref) == 0 {
		t.Fatal("reference replay produced no incidents")
	}
	top := ref[0]
	if top.PC != floodPC {
		t.Fatalf("reference top incident is %s@%#x, want the seeded corruption at %#x",
			top.Func, top.PC, floodPC)
	}
	if top.ID != 1 || !top.Root {
		t.Fatalf("seeded corruption ranked ID=%d root=%v, want the #1 root incident", top.ID, top.Root)
	}
	if top.Sessions != sessions {
		t.Fatalf("top incident seen in %d sessions, want %d", top.Sessions, sessions)
	}
	if top.Bursts == 0 {
		t.Fatal("flood onset raised no alarm-rate change-points")
	}
	if red := 1 - float64(len(ref))/float64(refAlarms); red < 0.95 {
		t.Fatalf("fold reduction %.4f < 0.95 (%d incidents from %d alarms)",
			red, len(ref), refAlarms)
	}

	// Live run: the same trace from 4 concurrent sessions.
	clients := make([]*ipdsclient.Client, sessions)
	for i := range clients {
		c, err := ipdsclient.Dial(ipdsclient.Config{
			Addr: w.addr, Image: w.hash, Program: fmt.Sprintf("flood#%d", i),
			Batch: 512, DiscardCtx: true,
		})
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		clients[i] = c
	}
	var wg sync.WaitGroup
	sendErrs := make([]error, sessions)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *ipdsclient.Client) {
			defer wg.Done()
			sendErrs[i] = c.Send(trace...)
		}(i, c)
	}
	wg.Wait()
	for i, err := range sendErrs {
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Drain in order; the last session to leave sees the complete list.
	for _, c := range clients {
		if err := c.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	last := clients[sessions-1]

	di := w.srv.DebugIncidents()
	if !di.Enabled {
		t.Fatal("incident stage disabled in default config")
	}
	if di.Dropped != 0 {
		t.Fatalf("incident queue dropped %d observations", di.Dropped)
	}
	if di.Alarms != uint64(refAlarms) {
		t.Fatalf("daemon analyzed %d alarms, reference %d", di.Alarms, refAlarms)
	}
	if di.Reduction < 0.95 {
		t.Fatalf("live fold reduction %.4f < 0.95", di.Reduction)
	}

	// Determinism: the live list must equal the in-process replay field
	// for field. Forensic contexts are live-only (the replay feeds bare
	// alarms), so they are stripped before the comparison and checked
	// separately.
	live := make([]incident.Incident, len(di.List))
	copy(live, di.List)
	for i := range live {
		live[i].Context = nil
	}
	if !reflect.DeepEqual(live, ref) {
		t.Fatalf("live incidents diverge from in-process replay:\n live %+v\n want %+v", live, ref)
	}
	if ctx := di.List[0].Context; ctx == nil {
		t.Fatal("top incident carries no forensic context")
	} else if ctx.Seq < di.List[0].FirstSeq || ctx.Seq > di.List[0].LastSeq {
		t.Fatalf("context seq %d outside incident range [%d, %d]",
			ctx.Seq, di.List[0].FirstSeq, di.List[0].LastSeq)
	}

	// The wire copy: the last-drained client received the ranked list as
	// Incident frames during its graceful drain.
	frames := last.Incidents()
	want := min(len(di.List), 16)
	if len(frames) != want {
		t.Fatalf("client received %d incident frames, want %d", len(frames), want)
	}
	lt := di.List[0]
	wantTop := wire.Incident{
		ID:         uint32(lt.ID),
		ScoreMilli: uint64(lt.Score*1000 + 0.5),
		Alarms:     lt.Alarms,
		Folded:     lt.Folded,
		Sessions:   uint32(lt.Sessions),
		Bursts:     uint32(lt.Bursts),
		PC:         lt.PC,
		FirstSeq:   lt.FirstSeq,
		LastSeq:    lt.LastSeq,
		Func:       lt.Func,
		Evidence:   strings.Join(lt.Evidence, "; "),
	}
	if !reflect.DeepEqual(frames[0], wantTop) {
		t.Fatalf("top incident frame:\n got %+v\nwant %+v", frames[0], wantTop)
	}

	// Metrics satellite: the pipeline's registry series.
	if got := w.reg.Counter("incident_alarms_total").Value(); got != uint64(refAlarms) {
		t.Fatalf("incident_alarms_total = %d, want %d", got, refAlarms)
	}
	if got := w.reg.Counter("incident_queue_dropped_total").Value(); got != 0 {
		t.Fatalf("incident_queue_dropped_total = %d, want 0", got)
	}
	if w.reg.Counter("incident_dedup_folds_total").Value() == 0 {
		t.Fatal("incident_dedup_folds_total = 0 after a flood")
	}
	if w.reg.Counter("incident_changepoints_total").Value() == 0 {
		t.Fatal("incident_changepoints_total = 0 after a flood onset")
	}
}

// TestIncidentStageDisabled holds the opt-out: with DisableIncidents
// the serve path runs bare — no analyzer, no /debug/incidents content,
// no Incident frames at drain.
func TestIncidentStageDisabled(t *testing.T) {
	w := startWorld(t, server.Config{DisableIncidents: true})
	if got := w.srv.Incidents(); got != nil {
		t.Fatalf("Incidents() = %v with the stage disabled, want nil", got)
	}
	if di := w.srv.DebugIncidents(); di.Enabled {
		t.Fatal("DebugIncidents().Enabled with the stage disabled")
	}
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "noinc"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(c.Alarms()) == 0 {
		t.Fatal("tampered trace raised no alarms; test is vacuous")
	}
	if got := c.Incidents(); len(got) != 0 {
		t.Fatalf("client received %d incident frames from a stage-disabled daemon", len(got))
	}
}

// waitAcked polls until the client has had want events acknowledged.
func waitAcked(t *testing.T, c *ipdsclient.Client, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Acked() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("acked %d of %d events", c.Acked(), want)
}

// TestIncidentDebugSessionUptimeAndRate holds the /debug/sessions
// satellite: live rows report uptime and a windowed alarm rate.
func TestIncidentDebugSessionUptimeAndRate(t *testing.T) {
	w := startWorld(t, server.Config{})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	c, err := ipdsclient.Dial(ipdsclient.Config{
		Addr: w.addr, Image: w.hash, Program: "ratey", Batch: 8, DiscardCtx: true,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	waitAcked(t, c, uint64(len(trace)))
	// Age the session past one rate window, then land more alarms so the
	// window closes with a non-zero delta.
	time.Sleep(1100 * time.Millisecond)
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	waitAcked(t, c, uint64(2*len(trace)))

	d := w.srv.Debug()
	if len(d.Sessions) != 1 {
		t.Fatalf("got %d live sessions, want 1", len(d.Sessions))
	}
	s0 := d.Sessions[0]
	if s0.UptimeS < 1.0 {
		t.Fatalf("uptime_s = %.3f after sleeping past 1s", s0.UptimeS)
	}
	if s0.AlarmRate <= 0 {
		t.Fatalf("alarm_rate_per_s = %v with alarms flowing", s0.AlarmRate)
	}
	if s0.Alarms == 0 {
		t.Fatal("session row reports zero alarms; rate assertion is vacuous")
	}
}
