package server

import (
	"encoding/binary"

	"repro/internal/ipds"
	"repro/internal/wire"
)

// Forensic frame emission. When a session's machine runs with the
// flight recorder enabled, every Alarm frame the verifier streams out
// is followed by an AlarmCtx frame carrying the machine's captured
// forensic context (recent-event window, activation stack, BSV).
//
// The context lives in machine-owned ring slots (ipds.AlarmContext with
// three slices), while wire.AppendAlarmCtx wants a wire.AlarmCtx with
// three differently-typed slices — converting per alarm would put three
// allocations back on the serve path the rest of the server works hard
// to keep allocation-free. appendAlarmCtx therefore encodes the frame
// directly from the machine's representation into the pooled outbound
// buffer. TestAppendAlarmCtxMatchesWire pins it byte-identical to the
// wire package's canonical encoder, so clients cannot tell which side
// produced the bytes.

// ctxKindByte maps an ipds recorder event to its wire kind byte,
// mirroring the EventKind switch in wire's appendAlarmCtx. The bool is
// false for a kind the wire format cannot carry (impossible for
// recorder output; checked anyway so a future kind fails closed).
func ctxKindByte(kind ipds.EventKind, taken bool) (byte, bool) {
	switch kind {
	case ipds.EvEnter:
		return 0, true // evEnter
	case ipds.EvLeave:
		return 1, true // evLeave
	case ipds.EvBranch:
		if taken {
			return 2, true // evBranchTaken
		}
		return 3, true // evBranchNotTaken
	case ipds.EvSpill:
		return 4, true // evSpill
	case ipds.EvFill:
		return 5, true // evFill
	}
	return 0, false
}

// appendAlarmCtx appends one length-prefixed wire.TypeAlarmCtx frame
// encoding c, allocation-free beyond dst's own growth. It reports
// false — with dst unchanged — when the context exceeds a wire limit
// (stack deeper than MaxCtxStack, window larger than MaxCtxEvents, BSV
// larger than MaxCtxBSV, frame larger than MaxFrame); the caller counts
// the drop instead of losing the session.
func appendAlarmCtx(dst []byte, c *ipds.AlarmContext) ([]byte, bool) {
	if len(c.Stack) > wire.MaxCtxStack || len(c.Recent) > wire.MaxCtxEvents || len(c.BSV) > wire.MaxCtxBSV {
		return dst, false
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(wire.TypeAlarmCtx))
	dst = binary.AppendUvarint(dst, c.Alarm.Seq)
	dst = binary.AppendUvarint(dst, c.Recorded)
	dst = binary.AppendUvarint(dst, uint64(len(c.Stack)))
	for i := range c.Stack {
		fr := &c.Stack[i]
		name := fr.Func
		if len(name) > wire.MaxString {
			name = name[:wire.MaxString]
		}
		dst = binary.AppendUvarint(dst, fr.Base)
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.Recent)))
	for i := range c.Recent {
		ev := &c.Recent[i]
		kb, ok := ctxKindByte(ev.Kind, ev.Taken)
		if !ok {
			return dst[:start], false
		}
		dst = append(dst, kb)
		dst = binary.AppendUvarint(dst, ev.Seq)
		dst = binary.AppendUvarint(dst, uint64(uint32(ev.Depth)))
		switch ev.Kind {
		case ipds.EvLeave:
			// leave carries no PC on the wire
		case ipds.EvSpill, ipds.EvFill:
			// spill/fill reuse the PC slot for the bits moved
			dst = binary.AppendUvarint(dst, uint64(uint32(ev.Bits)))
		default:
			dst = binary.AppendUvarint(dst, ev.PC)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.BSV)))
	for _, st := range c.BSV {
		dst = append(dst, uint8(st))
	}
	payload := len(dst) - start - 4
	if payload > wire.MaxFrame {
		return dst[:start], false
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	return dst, true
}
