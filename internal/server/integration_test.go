package server_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/tcache"
	"repro/internal/workload"
)

// TestEndToEndRemoteMatchesLocal is the PR's acceptance bar: compile a
// real workload through the parallel cached pipeline, serve its image
// from the daemon engine, replay the workload's tamper trace from many
// remote sessions at once, and require every session's alarm set to be
// byte-identical (Seq/PC/Func/Slot/Expected/Taken) to what an
// in-process ipds.Machine raises on the same events.
func TestEndToEndRemoteMatchesLocal(t *testing.T) {
	const sessions = 8

	w := workload.ByName("telnetd")
	if w == nil {
		t.Fatal("telnetd workload missing")
	}
	cache, err := tcache.New(256, t.TempDir())
	if err != nil {
		t.Fatalf("tcache: %v", err)
	}
	art, err := pipeline.CompileWith(w.Source, ir.DefaultOptions,
		pipeline.Config{Workers: 0, Cache: cache}, nil)
	if err != nil {
		t.Fatalf("compile %s: %v", w.Name, err)
	}

	// The daemon resolves the image by content hash through the same
	// cache the compiler filled.
	store := server.NewImageStore(cache)
	hash := store.Add(w.Name, art.Image)
	reg := obs.NewRegistry()
	srv := server.New(store, server.Config{Reg: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	addr := ln.Addr().String()

	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 31)
	ref := ipdsclient.ReplayLocal(ipds.New(art.Image, ipds.DefaultConfig), trace)
	if len(ref) == 0 {
		t.Fatal("tampered telnetd trace raised no reference alarms; test is vacuous")
	}
	t.Logf("%s: %d events, %d reference alarms", w.Name, len(trace), len(ref))

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := ipdsclient.Dial(ipdsclient.Config{
				Addr: addr, Image: hash, Program: w.Name, Batch: 256,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			if err := c.Send(trace...); err != nil {
				errCh <- err
				return
			}
			if err := c.Drain(); err != nil {
				errCh <- err
				return
			}
			got := c.Alarms()
			if len(got) != len(ref) {
				t.Errorf("session %d: %d alarms, want %d", id, len(got), len(ref))
				return
			}
			for j, a := range got {
				r := ref[j]
				if a.Seq != r.Seq || a.PC != r.PC || a.Func != r.Func ||
					a.Slot != uint32(r.Slot) || a.Expected != uint8(r.Expected) || a.Taken != r.Taken {
					t.Errorf("session %d alarm %d: got %+v, want %+v", id, j, a, r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("session: %v", err)
	}

	wantEvents := uint64(len(trace)) * sessions
	if got := reg.Counter("server_events_total").Value(); got != wantEvents {
		t.Errorf("server_events_total = %d, want %d", got, wantEvents)
	}
	if got := reg.Counter("server_sessions_total").Value(); got != sessions {
		t.Errorf("server_sessions_total = %d, want %d", got, sessions)
	}
}

// TestEndToEndRestartedDaemon replays against a second daemon sharing
// only the disk cache: the image must resolve by hash with no
// recompilation and verify identically.
func TestEndToEndRestartedDaemon(t *testing.T) {
	w := workload.ByName("atftpd")
	if w == nil {
		t.Fatal("atftpd workload missing")
	}
	dir := t.TempDir()
	cache1, err := tcache.New(256, dir)
	if err != nil {
		t.Fatalf("tcache: %v", err)
	}
	art, err := pipeline.CompileWith(w.Source, ir.DefaultOptions,
		pipeline.Config{Cache: cache1}, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	hash := server.NewImageStore(cache1).Add(w.Name, art.Image)

	// "Restart": a brand-new store over a brand-new cache handle on the
	// same directory, never Add-ed to.
	cache2, err := tcache.New(256, dir)
	if err != nil {
		t.Fatalf("tcache: %v", err)
	}
	srv := server.New(server.NewImageStore(cache2), server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 31)
	ref := ipdsclient.ReplayLocal(ipds.New(art.Image, ipds.DefaultConfig), trace)

	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: ln.Addr().String(), Image: hash, Program: w.Name})
	if err != nil {
		t.Fatalf("dial restarted daemon: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	requireAlarmsEqual(t, ref, c.Alarms())
}
