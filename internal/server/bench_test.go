package server_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// pipeListener adapts net.Pipe to net.Listener so the daemon can be
// benchmarked fully in-process: no TCP stack, no loopback syscalls —
// what remains is decode, verify and encode, which is exactly the
// serve-loop cost the zero-allocation work targets.
type pipeListener struct {
	conns chan net.Conn
	once  sync.Once
	done  chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr {
	return &net.UnixAddr{Name: "pipe", Net: "pipe"}
}

// dialPipe opens an in-process session against the served listener.
func dialPipe(tb testing.TB, l *pipeListener, hash [32]byte, batch int) *ipdsclient.Client {
	tb.Helper()
	cc, sc := net.Pipe()
	select {
	case l.conns <- sc:
	case <-time.After(5 * time.Second):
		tb.Fatal("server never accepted the pipe")
	}
	c, err := ipdsclient.DialConn(cc, ipdsclient.Config{
		Image: hash, Program: "bench", Batch: batch,
	})
	if err != nil {
		tb.Fatalf("handshake: %v", err)
	}
	return c
}

// BenchmarkServeSession measures steady-state daemon throughput for one
// session over an in-process pipe: a captured telnetd trace, replayed
// b.N times through the full client→wire→decode→OnBatch→ack path.
func BenchmarkServeSession(b *testing.B) {
	w := workload.ByName("telnetd")
	if w == nil {
		b.Fatal("telnetd workload missing")
	}
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	trace := ipdsclient.Capture(art, w.Sessions()[0])
	if len(trace) == 0 {
		b.Fatal("empty trace")
	}

	store := server.NewImageStore(nil)
	hash := store.Add("telnetd", art.Image)
	srv := server.New(store, server.Config{})
	ln := newPipeListener()
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	c := dialPipe(b, ln, hash, wire.MaxBatch)
	defer c.Close()
	// Warm the session: pools, arena, reader buffers.
	if err := c.Send(trace...); err != nil {
		b.Fatalf("warm send: %v", err)
	}
	if err := c.Flush(); err != nil {
		b.Fatalf("warm flush: %v", err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(trace...); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatalf("flush: %v", err)
	}
	if err := c.Drain(); err != nil {
		b.Fatalf("drain: %v", err)
	}
	b.StopTimer()
	total := float64(len(trace)) * float64(b.N)
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(total/s, "events/s")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/event")
}
