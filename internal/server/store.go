package server

import (
	"fmt"
	"sync"

	"repro/internal/tables"
	"repro/internal/tcache"
)

// ImageStore resolves wire.Hello image hashes to decoded table images.
//
// Two tiers: an in-memory map of decoded *tables.Image (what sessions
// actually verify against — images are immutable and shared between
// any number of concurrent machines), and an optional tcache.Cache
// holding the *marshalled* image bytes keyed by tcache.KeyOf (==
// tables.Image.Hash). With a disk-backed cache, a restarted daemon
// resolves a reconnecting client's hash straight from the blob store
// — no recompilation — while the per-function tier of the same cache
// keeps any recompilation that is needed warm.
//
// An ImageStore is safe for concurrent use.
type ImageStore struct {
	mu    sync.Mutex
	cache *tcache.Cache // optional persistent tier; nil = memory only
	byH   map[[32]byte]*tables.Image
	names map[[32]byte]string // diagnostic name per image
}

// NewImageStore creates a store over an optional blob cache (nil for a
// purely in-memory store).
func NewImageStore(cache *tcache.Cache) *ImageStore {
	return &ImageStore{
		cache: cache,
		byH:   map[[32]byte]*tables.Image{},
		names: map[[32]byte]string{},
	}
}

// Add registers an image under its content hash and persists the
// marshalled bytes to the blob cache when one is configured. It
// returns the hash clients must put in their Hello.
func (st *ImageStore) Add(name string, img *tables.Image) [32]byte {
	blob := img.Marshal()
	k := tcache.KeyOf(blob)
	h := [32]byte(k)
	st.mu.Lock()
	st.byH[h] = img
	st.names[h] = name
	st.mu.Unlock()
	st.cache.Put(k, blob)
	return h
}

// Resolve returns the image for a hash: from memory first, then — on a
// miss — from the blob cache, unmarshalling and memoising the result.
func (st *ImageStore) Resolve(h [32]byte) (*tables.Image, bool) {
	st.mu.Lock()
	img, ok := st.byH[h]
	st.mu.Unlock()
	if ok {
		return img, true
	}
	blob, ok := st.cache.Get(tcache.Key(h))
	if !ok {
		return nil, false
	}
	img, err := tables.Unmarshal(blob)
	if err != nil {
		// A corrupt blob is a miss, not a fault: the cache tier is an
		// optimisation and the client will be refused cleanly.
		return nil, false
	}
	if tcache.KeyOf(img.Marshal()) != tcache.Key(h) {
		// The blob decoded but does not re-marshal to its own address;
		// refuse rather than verify against the wrong tables.
		return nil, false
	}
	st.mu.Lock()
	st.byH[h] = img
	if _, named := st.names[h]; !named {
		st.names[h] = fmt.Sprintf("image-%x", h[:4])
	}
	st.mu.Unlock()
	return img, true
}

// Name returns the diagnostic name an image was registered under.
func (st *ImageStore) Name(h [32]byte) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.names[h]
}

// Images lists the registered (hash, name) pairs in unspecified order.
func (st *ImageStore) Images() map[[32]byte]string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[[32]byte]string, len(st.names))
	for h, n := range st.names {
		out[h] = n
	}
	return out
}
