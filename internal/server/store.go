package server

import (
	"fmt"
	"sync"

	"repro/internal/tables"
	"repro/internal/tcache"
)

// ImageStore resolves wire.Hello image hashes to decoded table images.
//
// Two tiers: an in-memory map of decoded *tables.Image (what sessions
// actually verify against — images are immutable and shared between
// any number of concurrent machines), and an optional tcache.Cache
// holding the *marshalled* image bytes keyed by tcache.KeyOf (==
// tables.Image.Hash). With a disk-backed cache, a restarted daemon
// resolves a reconnecting client's hash straight from the blob store
// — no recompilation — while the per-function tier of the same cache
// keeps any recompilation that is needed warm.
//
// An ImageStore is safe for concurrent use.
type ImageStore struct {
	mu      sync.Mutex
	cache   *tcache.Cache // optional persistent tier; nil = memory only
	byH     map[[32]byte]*tables.Image
	names   map[[32]byte]string // diagnostic name per image
	fetcher BlobFetcher         // optional fleet tier; nil = local only
}

// BlobFetcher is the fleet hook under Resolve: given a content hash
// neither the memory map nor the blob cache holds, fetch the
// marshalled image bytes from somewhere else (a peer registry).
// Implemented by registry.Fetcher; the indirection keeps the server
// free of a registry dependency.
type BlobFetcher interface {
	// FetchBlob returns the marshalled tables.Image whose SHA-256 is h.
	FetchBlob(h [32]byte) ([]byte, bool)
}

// NewImageStore creates a store over an optional blob cache (nil for a
// purely in-memory store).
func NewImageStore(cache *tcache.Cache) *ImageStore {
	return &ImageStore{
		cache: cache,
		byH:   map[[32]byte]*tables.Image{},
		names: map[[32]byte]string{},
	}
}

// Add registers an image under its content hash and persists the
// marshalled bytes to the blob cache when one is configured. It
// returns the hash clients must put in their Hello.
func (st *ImageStore) Add(name string, img *tables.Image) [32]byte {
	blob := img.Marshal()
	k := tcache.KeyOf(blob)
	h := [32]byte(k)
	st.mu.Lock()
	st.byH[h] = img
	st.names[h] = name
	st.mu.Unlock()
	st.cache.Put(k, blob)
	return h
}

// SetFetcher installs the fleet tier consulted when both local tiers
// miss. Call before serving; the fetcher must be safe for concurrent
// use.
func (st *ImageStore) SetFetcher(f BlobFetcher) {
	st.mu.Lock()
	st.fetcher = f
	st.mu.Unlock()
}

// Blob returns the marshalled bytes of a registered image — the
// registry.Source side of the store, serving peers' fetches. The
// blob cache is tried first (it already holds the marshalled form);
// a memory-only store re-marshals the decoded image.
func (st *ImageStore) Blob(h [32]byte) ([]byte, bool) {
	if blob, ok := st.cache.Get(tcache.Key(h)); ok {
		return blob, true
	}
	st.mu.Lock()
	img, ok := st.byH[h]
	st.mu.Unlock()
	if !ok {
		return nil, false
	}
	return img.Marshal(), true
}

// Resolve returns the image for a hash: from memory first, then — on a
// miss — from the blob cache, then from the fleet fetcher when one is
// installed, unmarshalling and memoising the result. Every non-memory
// tier is verified by re-marshalling to the requested address before
// any session trusts it.
func (st *ImageStore) Resolve(h [32]byte) (*tables.Image, bool) {
	st.mu.Lock()
	img, ok := st.byH[h]
	fetcher := st.fetcher
	st.mu.Unlock()
	if ok {
		return img, true
	}
	blob, ok := st.cache.Get(tcache.Key(h))
	if !ok && fetcher != nil {
		if blob, ok = fetcher.FetchBlob(h); ok && tcache.KeyOf(blob) != tcache.Key(h) {
			// A peer that serves bytes not matching their own address is
			// lying or corrupt; treat it as a miss.
			ok = false
		}
		if ok {
			// Persist the fetched image so the next restart (and the
			// node's own registry endpoint) serve it locally.
			st.cache.Put(tcache.Key(h), blob)
		}
	}
	if !ok {
		return nil, false
	}
	img, err := tables.Unmarshal(blob)
	if err != nil {
		// A corrupt blob is a miss, not a fault: the cache tier is an
		// optimisation and the client will be refused cleanly.
		return nil, false
	}
	if tcache.KeyOf(img.Marshal()) != tcache.Key(h) {
		// The blob decoded but does not re-marshal to its own address;
		// refuse rather than verify against the wrong tables.
		return nil, false
	}
	st.mu.Lock()
	st.byH[h] = img
	if _, named := st.names[h]; !named {
		st.names[h] = fmt.Sprintf("image-%x", h[:4])
	}
	st.mu.Unlock()
	return img, true
}

// Name returns the diagnostic name an image was registered under.
func (st *ImageStore) Name(h [32]byte) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.names[h]
}

// Images lists the registered (hash, name) pairs in unspecified order.
func (st *ImageStore) Images() map[[32]byte]string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[[32]byte]string, len(st.names))
	for h, n := range st.names {
		out[h] = n
	}
	return out
}
