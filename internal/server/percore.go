package server

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/ring"
	"repro/internal/wire"
)

// The per-core serve path. One verifier goroutine and one writer
// goroutine per configured core (default GOMAXPROCS), wired with SPSC
// rings so no queue in the steady state ever has more than one
// producer and one consumer:
//
//	reader (per conn) ──session ring──▶ verifier (per core)
//	verifier (per core) ──writer ring──▶ writer (per core)
//
// Sessions are pinned to a verifier by a consistent hash of the
// session id (jump hash over the verifier count), so one goroutine
// owns a session's ipds.Machine for the session's whole life and the
// machines never migrate — no locks, no cache-line ping-pong, and the
// per-session event order the verification semantics require falls out
// of ring FIFO. There is deliberately NO work stealing: stealing a
// session would move its machine across goroutines mid-stream, which
// the single-owner memory layout (DESIGN.md §8) forbids; imbalance is
// handled by the hash spreading sessions, and surfaces in the
// per-core breakdown (CoreStats) rather than being papered over.
//
// Lifecycle traffic rides the same rings as data: a reader that stops
// pushes a final done-marked task, so by ring FIFO the verifier sees
// it strictly after every batch the session ever queued — the drain
// guarantee needs no pending counters or mutexes. The verifier folds
// the session's close into the writer ring the same way, and the
// writer retires the connection after flushing everything queued
// before it.

// verifyPop bounds how many tasks a verifier pops from one session's
// ring per scan pass — large enough to amortise the head publish,
// small enough that a chatty session cannot starve its core-mates.
const verifyPop = 32

// writePop bounds the writer's per-cycle pop; everything popped in one
// cycle coalesces into at most one conn.Write per distinct session.
const writePop = 64

// spinPasses is how many empty scan passes (each ending in a
// runtime.Gosched) a per-core loop burns before parking. Spinning
// absorbs the sub-microsecond gaps of a saturated stream; parking
// keeps an idle daemon at zero CPU.
const spinPasses = 128

// pinVerifier picks the verifier a session id is pinned to: the same
// mix-then-jump consistent hash (fleet.Mix, fleet.Jump) the router
// uses one level up to pick the node. Session ids are sequential, so
// the key is pre-mixed to decorrelate adjacent ids before the jump
// walk.
func (s *Server) pinVerifier(id uint64) *verifier {
	return s.verifiers[fleet.Jump(fleet.Mix(id), len(s.verifiers))]
}

// writeOp is one entry in a per-core writer ring. Exactly one of fb,
// close or stop is meaningful: fb hands over one pooled frame
// encoding, close retires the session's connection after a flush, and
// stop (s == nil) ends the writer — pushed by the verifier as its very
// last op, so ring FIFO guarantees nothing is left behind it.
type writeOp struct {
	s     *session
	fb    *frameBuf
	close bool
	stop  bool
}

// verifier is one per-core verify loop. It exclusively owns the
// ipds.Machine of every session pinned to it, scans their rings round
// robin, and is the only producer into its core's writer ring.
type verifier struct {
	srv *Server
	id  int
	wr  *coreWriter
	pk  *ring.Parker

	// inbox hands freshly-registered sessions to the loop; hasNew makes
	// the empty-inbox check one atomic load per pass.
	inMu   chMutex
	inbox  []*session
	hasNew atomic.Bool

	// sessions is the loop-private scan list.
	sessions []*session

	// Per-core telemetry, atomics so CoreStats can read cross-goroutine.
	events      atomic.Uint64
	batches     atomic.Uint64
	alarms      atomic.Uint64
	verifyNs    atomic.Uint64 // cumulative wall time inside verifyBatch
	stalls      atomic.Uint64 // writer-ring-full waits
	sessionsCum atomic.Uint64 // sessions ever pinned here
	ringHW      atomic.Uint64 // max ring occupancy over retired sessions
}

// chMutex is a tiny channel-based mutex; it exists so verifier stays
// copy-vet-clean while holding no sync.Mutex by value.
type chMutex chan struct{}

func newChMutex() chMutex { return make(chMutex, 1) }

func (m chMutex) lock()   { m <- struct{}{} }
func (m chMutex) unlock() { <-m }

// newVerifier wires one verifier/writer pair for core id.
func newVerifier(s *Server, id int) *verifier {
	return &verifier{
		srv:  s,
		id:   id,
		pk:   ring.NewParker(),
		inMu: newChMutex(),
		wr: &coreWriter{
			srv:   s,
			id:    id,
			ring:  ring.New[writeOp](s.cfg.AlarmQueue),
			pk:    ring.NewParker(),
			spans: newSpanRing(s.cfg.TraceRing),
		},
	}
}

// adopt hands a registered session to the verifier's loop. Called from
// handleConn after the HelloAck is on the wire.
func (v *verifier) adopt(ss *session) {
	v.inMu.lock()
	v.inbox = append(v.inbox, ss)
	v.hasNew.Store(true)
	v.inMu.unlock()
	v.sessionsCum.Add(1)
	v.pk.Wake()
}

// anyReady reports whether the loop has work without popping any:
// fresh sessions, a stop request, or a non-empty session ring.
func (v *verifier) anyReady() bool {
	if v.hasNew.Load() || v.srv.stopping.Load() {
		return true
	}
	for _, ss := range v.sessions {
		if ss.ring.Len() > 0 {
			return true
		}
	}
	return false
}

// loop is the per-core verify loop: adopt newcomers, scan owned
// session rings round robin, verify batches, forward control frames,
// finish sessions whose reader is done — then spin, then park.
func (v *verifier) loop() {
	defer v.srv.workerWG.Done()
	var tasks [verifyPop]task
	spins := 0
	for {
		if v.hasNew.Load() {
			v.inMu.lock()
			v.sessions = append(v.sessions, v.inbox...)
			v.inbox = v.inbox[:0]
			v.hasNew.Store(false)
			v.inMu.unlock()
		}
		worked := false
		for i := 0; i < len(v.sessions); {
			ss := v.sessions[i]
			n := ss.ring.PopSlice(tasks[:])
			finished := false
			for j := 0; j < n; j++ {
				t := tasks[j]
				tasks[j] = task{}
				switch {
				case t.b != nil:
					v.srv.verifyBatch(v, ss, t)
				case t.fb != nil:
					v.send(writeOp{s: ss, fb: t.fb})
				case t.done:
					v.finish(ss)
					finished = true
				}
			}
			if n > 0 {
				worked = true
			}
			if finished {
				last := len(v.sessions) - 1
				v.sessions[i] = v.sessions[last]
				v.sessions[last] = nil
				v.sessions = v.sessions[:last]
			} else {
				i++
			}
		}
		if worked {
			spins = 0
			continue
		}
		if v.srv.stopping.Load() && !v.hasNew.Load() && len(v.sessions) == 0 {
			v.send(writeOp{stop: true})
			return
		}
		if spins++; spins < spinPasses {
			runtime.Gosched()
			continue
		}
		v.pk.Prepare()
		if v.anyReady() {
			v.pk.Cancel()
		} else {
			v.pk.Park()
		}
		spins = 0
	}
}

// send pushes one op into the core's writer ring, blocking (counted as
// backpressure) while the writer is behind — the per-core analogue of
// the old per-session alarm-queue stall. The verifier is the ring's
// only producer.
func (v *verifier) send(op writeOp) {
	w := v.wr
	if w.ring.TryPush(op) {
		w.pk.Wake()
		return
	}
	v.srv.met.backpressure.Inc()
	v.stalls.Add(1)
	spins := 0
	for !w.ring.TryPush(op) {
		w.pk.Wake()
		if spins++; spins < spinPasses {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
	w.pk.Wake()
}

// sendFrame encodes f into a pooled buffer and queues it for the
// session's writer.
func (v *verifier) sendFrame(ss *session, f wire.Frame) {
	fb := v.srv.bufPool.Get().(*frameBuf)
	fb.b = wire.MustAppend(fb.b[:0], f)
	fb.t0 = time.Time{} // pooled; a stale sample stamp would skew spans
	fb.sp = nil
	v.send(writeOp{s: ss, fb: fb})
}

// finish seals a session whose reader has stopped. Ring FIFO has
// already guaranteed every batch the session queued was verified, so
// this is purely the closing sequence: the ranked incident fold (a
// draining session is told what its alarm storm meant), the final
// cumulative Ack, Bye, and the writer-side close.
func (v *verifier) finish(ss *session) {
	if hw := uint64(ss.ring.HighWater()); hw > v.ringHW.Load() {
		v.ringHW.Store(hw)
	}
	// The barrier sync inside Server.Incidents guarantees every alarm
	// this session offered has been analyzed: its offers happened on
	// this goroutine before its done task, and the queue is FIFO.
	if v.srv.incidents != nil {
		incs := v.srv.Incidents()
		if len(incs) > maxIncidentFrames {
			incs = incs[:maxIncidentFrames]
		}
		for i := range incs {
			v.sendFrame(ss, incidentFrame(&incs[i]))
		}
	}
	v.sendFrame(ss, wire.Ack{Events: ss.events.Load()})
	v.sendFrame(ss, wire.Bye{})
	v.send(writeOp{s: ss, close: true})
}

// coreWriter owns conn writes for every session pinned to its core,
// fed by an SPSC ring whose only producer is the core's verifier. Ops
// popped in one cycle are coalesced per session — one conn.Write per
// distinct session per cycle, however many frames queued — so
// ack/alarm/incident encoding and the write syscalls never cross
// cores.
type coreWriter struct {
	srv  *Server
	id   int
	ring *ring.SPSC[writeOp]
	pk   *ring.Parker

	// spans is the core's committed trace-record ring (/debug/trace).
	// The writer is its only committer: a traced batch's record is
	// finished and stored only once its ack bytes hit the socket. nil
	// when tracing is disabled.
	spans *spanRing
}

// flush writes a session's coalesced buffer. After the first write
// failure the session's output is discarded (never blocks a core on a
// dead peer); pooled buffers were already released at append time.
func (w *coreWriter) flush(ss *session) {
	ss.wdirty = false
	if len(ss.wbuf) == 0 {
		return
	}
	if !ss.wfailed {
		w.srv.met.coalesceBytes.Observe(uint64(len(ss.wbuf)))
		ss.conn.SetWriteDeadline(time.Now().Add(w.srv.cfg.WriteTimeout))
		if _, err := ss.conn.Write(ss.wbuf); err != nil {
			ss.wfailed = true
		} else {
			if !ss.wspan.IsZero() {
				w.srv.met.writeWaitNs.Observe(uint64(time.Since(ss.wspan).Nanoseconds()))
				w.srv.met.writeWaitSampled.Inc()
			}
			if len(ss.wspans) > 0 {
				// One clock read stamps every traced batch this flush acked.
				now := nowNs()
				for _, sp := range ss.wspans {
					w.srv.spanCommit(w, sp, now)
				}
				ss.wspans = ss.wspans[:0]
			}
		}
	}
	if ss.wfailed {
		for _, sp := range ss.wspans {
			w.srv.spanDiscard(sp)
		}
		ss.wspans = ss.wspans[:0]
	}
	ss.wspan = time.Time{}
	ss.wbuf = ss.wbuf[:0]
}

// loop is the per-core write loop: pop a cycle of ops, append each
// frame to its session's write buffer (releasing the pooled encoding
// immediately after the copy — the ownership rule that keeps pooling
// safe), then flush every session the cycle touched.
func (w *coreWriter) loop() {
	defer w.srv.writerWG.Done()
	var ops [writePop]writeOp
	dirty := make([]*session, 0, writePop)
	spins := 0
	for {
		n := w.ring.PopSlice(ops[:])
		if n == 0 {
			if spins++; spins < spinPasses {
				runtime.Gosched()
				continue
			}
			w.pk.Prepare()
			if w.ring.Len() > 0 {
				w.pk.Cancel()
			} else {
				w.pk.Park()
			}
			spins = 0
			continue
		}
		spins = 0
		for i := 0; i < n; i++ {
			op := ops[i]
			ops[i] = writeOp{}
			if op.stop {
				// The verifier pushes stop strictly last; nothing can be
				// queued behind it.
				return
			}
			ss := op.s
			if op.fb != nil {
				if !ss.wfailed {
					if ss.wspan.IsZero() {
						ss.wspan = op.fb.t0
					}
					ss.wbuf = append(ss.wbuf, op.fb.b...)
					if op.fb.sp != nil {
						// Detach the span record from the pooled buffer: it
						// completes (AckNs) when this coalesce cycle flushes.
						ss.wspans = append(ss.wspans, op.fb.sp)
					}
					if !ss.wdirty {
						ss.wdirty = true
						dirty = append(dirty, ss)
					}
				} else if op.fb.sp != nil {
					w.srv.spanDiscard(op.fb.sp)
				}
				op.fb.sp = nil
				w.srv.bufPool.Put(op.fb)
				if len(ss.wbuf) >= maxWriteCoalesce {
					w.flush(ss)
				}
			}
			if op.close {
				w.flush(ss)
				ss.conn.Close()
				ss.wbuf = nil // session is gone; free its write buffer
				w.srv.unregister(ss)
			}
		}
		for _, ss := range dirty {
			if ss.wdirty {
				w.flush(ss)
			}
		}
		dirty = dirty[:0]
	}
}

// CoreStats is one verifier core's slice of the serve work: the
// per-core breakdown behind BENCH_pr6.json and `ipdsload -selfserve`.
// Events/Batches/Alarms are lifetime totals for sessions pinned to
// this core; Parks/Wakes count the verifier's spin-then-park cycles
// (WriterParks the writer's); Stalls counts writer-ring-full waits;
// RingHighWater is the deepest any session ring pinned here ever got.
type CoreStats struct {
	Core          int    `json:"core"`
	Sessions      int    `json:"sessions"`       // live now
	SessionsTotal uint64 `json:"sessions_total"` // ever pinned
	Events        uint64 `json:"events"`
	Batches       uint64 `json:"batches"`
	Alarms        uint64 `json:"alarms"`
	VerifyNs      uint64 `json:"verify_ns"` // cumulative wall time in verifyBatch
	Parks         uint64 `json:"parks"`
	Wakes         uint64 `json:"wakes"`
	WriterParks   uint64 `json:"writer_parks"`
	Stalls        uint64 `json:"stalls"`
	RingHighWater int    `json:"ring_high_water"`
}

// CoreStats snapshots every verifier core. Safe from any goroutine;
// the numbers are racy snapshots of live counters.
func (s *Server) CoreStats() []CoreStats {
	out := make([]CoreStats, len(s.verifiers))
	s.mu.Lock()
	liveHW := make([]uint64, len(s.verifiers))
	liveN := make([]int, len(s.verifiers))
	for _, ss := range s.sessions {
		liveN[ss.core]++
		if hw := uint64(ss.ring.HighWater()); hw > liveHW[ss.core] {
			liveHW[ss.core] = hw
		}
	}
	s.mu.Unlock()
	for i, v := range s.verifiers {
		hw := v.ringHW.Load()
		if liveHW[i] > hw {
			hw = liveHW[i]
		}
		out[i] = CoreStats{
			Core:          i,
			Sessions:      liveN[i],
			SessionsTotal: v.sessionsCum.Load(),
			Events:        v.events.Load(),
			Batches:       v.batches.Load(),
			Alarms:        v.alarms.Load(),
			VerifyNs:      v.verifyNs.Load(),
			Parks:         v.pk.Parks(),
			Wakes:         v.pk.Wakes(),
			WriterParks:   v.wr.pk.Parks(),
			Stalls:        v.stalls.Load(),
			RingHighWater: int(hw),
		}
	}
	return out
}
