package server

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/wire"
	"repro/internal/workload"
)

// discardConn is a no-op net.Conn: writes succeed and vanish. The
// bench routes the session's output through the real core writer but
// must not touch sockets (net.Pipe deadlines allocate timers, which
// would poison the allocs/op measurement).
type discardConn struct{}

func (discardConn) Read(p []byte) (int, error)         { return 0, io.EOF }
func (discardConn) Write(p []byte) (int, error)        { return len(p), nil }
func (discardConn) Close() error                       { return nil }
func (discardConn) LocalAddr() net.Addr                { return nil }
func (discardConn) RemoteAddr() net.Addr               { return nil }
func (discardConn) SetDeadline(t time.Time) error      { return nil }
func (discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(t time.Time) error { return nil }

// BenchmarkVerifyBatchIncident measures the verifier's per-batch cost
// with the incident stage enabled — the serve path's side of the
// analytics contract. It drives verifyBatch directly (no sockets, no
// client), so the allocs/op it reports is the verifier goroutine's
// own: `make alloc-gate` requires it to stay 0 even while every alarm
// is offered to the incident queue and every forensic capture is
// deep-copied across it.
func BenchmarkVerifyBatchIncident(b *testing.B) {
	w := workload.ByName("telnetd")
	if w == nil {
		b.Fatal("telnetd workload missing")
	}
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.Sessions()[0]), 5)
	if len(trace) == 0 {
		b.Fatal("empty trace")
	}
	// The capture ends mid-call (the VM halts inside main), so looping
	// it would deepen the machine's stack every pass and turn the
	// arena's record-depth growth into a per-op allocation. Balance the
	// tail: the loop then measures a long-lived session at steady depth.
	depth := 0
	for _, ev := range trace {
		switch ev.Kind {
		case wire.EvEnter:
			depth++
		case wire.EvLeave:
			depth--
		}
	}
	for ; depth > 0; depth-- {
		trace = append(trace, wire.Event{Kind: wire.EvLeave})
	}

	store := NewImageStore(nil)
	store.Add("bench", art.Image)
	// A roomy queue: benchmark iterations outrun the analyzer goroutine,
	// and overflow drops — while allocation-free — would leave the
	// Observe path itself unmeasured.
	srv := New(store, Config{IncidentQueue: 1 << 16})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// The session borrows verifier 0's writer ring: that verifier owns
	// no sessions here, so until Shutdown (strictly after the timed
	// section) the bench goroutine is the ring's sole producer and the
	// SPSC contract holds. The core writer drains the ring for real —
	// coalescing into wbuf, "writing" to the discard conn, releasing
	// pooled frames — so the measurement covers the whole verifier-side
	// serve path.
	v := srv.verifiers[0]
	ss := &session{
		srv:       srv,
		conn:      discardConn{},
		m:         ipds.New(art.Image, srv.cfg.IPDS),
		v:         v,
		program:   "bench",
		forensics: srv.cfg.IPDS.Recorder > 0,
		started:   time.Now(),
	}
	if !ss.forensics {
		b.Fatal("daemon default config has forensics off; benchmark would under-measure")
	}

	const batchLen = 512
	var chunks [][]wire.Event
	for off := 0; off < len(trace); off += batchLen {
		end := min(off+batchLen, len(trace))
		chunks = append(chunks, trace[off:end])
	}
	events := 0
	feed := func(n int) {
		for i := 0; i < n; i++ {
			bt := srv.batchPool.Get().(*wire.Batch)
			bt.Events = chunks[i%len(chunks)]
			events += len(bt.Events)
			srv.verifyBatch(v, ss, task{b: bt})
		}
	}
	// Warm everything the steady state reuses: pools, encode buffers,
	// the machine's rings, the analyzer's signal and series maps, the
	// forensic-context free list. The sync barrier then lets the
	// analyzer goroutine drain its backlog so every pooled context is
	// back in inventory before the timed section.
	feed(max(512, 64*len(chunks)))
	srv.incidents.sync()
	events = 0

	b.ReportAllocs()
	b.ResetTimer()
	feed(b.N)
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/s")
	}
}
