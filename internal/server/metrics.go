package server

import (
	"repro/internal/ipds"
	"repro/internal/obs"
)

// metrics is the server-wide instrument set. All fields may be nil
// (registry absent); obs metrics are nil-receiver no-ops, so the hot
// path never branches on telemetry being configured.
type metrics struct {
	sessionsActive *obs.Gauge   // server_sessions_active
	sessionsTotal  *obs.Counter // server_sessions_total
	eventsTotal    *obs.Counter // server_events_total
	batchesTotal   *obs.Counter // server_batches_total
	backpressure   *obs.Counter // server_backpressure_stalls_total
	alarmsTotal    *obs.Counter // server_alarms_total
	errorsTotal    *obs.Counter // server_errors_total
	evictionsTotal *obs.Counter // server_evictions_total
	batchLen       *obs.Histogram
	verifyNs       *obs.Histogram

	// Serve-path telemetry: ring and coalescing shape plus the sampled
	// pipeline spans. readFrames is the reader-side coalescing twin of
	// coalesceBytes — frames one socket read delivered per ring publish.
	ringDepth     *obs.Histogram // server_ring_depth (at publish)
	readFrames    *obs.Histogram // server_read_coalesced_frames (per publish)
	coalesceBytes *obs.Histogram // server_write_coalesced_bytes (per flush)
	queueWaitNs   *obs.Histogram // server_queue_wait_ns (sampled batches)
	writeWaitNs   *obs.Histogram // server_write_wait_ns (sampled batches)

	// Sampling companions (DESIGN.md §9): the wait histograms above see
	// only every spanSampleEvery-th batch, so their _count undercounts
	// traffic by the sampling factor. These paired counters record how
	// many observations actually fed each series, letting a reader
	// de-bias rates without knowing the sampling constant.
	queueWaitSampled *obs.Counter // server_queue_wait_sampled_total
	writeWaitSampled *obs.Counter // server_write_wait_sampled_total

	// e2eNs is the traced-batch end-to-end latency (client origin → ack
	// flush), observed at span commit time — only traced batches feed it.
	e2eNs *obs.Histogram // server_e2e_ns

	// Forensics: AlarmCtx frames emitted, and contexts that could not
	// be (overwritten in the machine's shallow context ring, or past a
	// wire limit) — counted, never silent.
	ctxTotal   *obs.Counter // server_alarm_ctx_total
	ctxDropped *obs.Counter // server_alarm_ctx_dropped_total

	// Aggregated machine counters, absorbed from each session's
	// ipds.Machine when the session ends. alarmsDropped is the
	// satellite fix: ring drops were only visible in per-machine Stats;
	// the daemon surfaces them registry-wide.
	mBranches      *obs.Counter // server_machine_branches_total
	mVerified      *obs.Counter // server_machine_verified_total
	mAlarmsDropped *obs.Counter // server_alarms_dropped_total
	mStrictRejects *obs.Counter // server_strict_rejects_total
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		sessionsActive:   r.Gauge("server_sessions_active"),
		sessionsTotal:    r.Counter("server_sessions_total"),
		eventsTotal:      r.Counter("server_events_total"),
		batchesTotal:     r.Counter("server_batches_total"),
		backpressure:     r.Counter("server_backpressure_stalls_total"),
		alarmsTotal:      r.Counter("server_alarms_total"),
		errorsTotal:      r.Counter("server_errors_total"),
		evictionsTotal:   r.Counter("server_evictions_total"),
		batchLen:         r.Histogram("server_batch_events"),
		verifyNs:         r.Histogram("server_verify_ns"),
		ringDepth:        r.Histogram("server_ring_depth"),
		readFrames:       r.Histogram("server_read_coalesced_frames"),
		coalesceBytes:    r.Histogram("server_write_coalesced_bytes"),
		queueWaitNs:      r.Histogram("server_queue_wait_ns"),
		writeWaitNs:      r.Histogram("server_write_wait_ns"),
		queueWaitSampled: r.Counter("server_queue_wait_sampled_total"),
		writeWaitSampled: r.Counter("server_write_wait_sampled_total"),
		e2eNs:            r.Histogram("server_e2e_ns"),
		ctxTotal:         r.Counter("server_alarm_ctx_total"),
		ctxDropped:       r.Counter("server_alarm_ctx_dropped_total"),
		mBranches:        r.Counter("server_machine_branches_total"),
		mVerified:        r.Counter("server_machine_verified_total"),
		mAlarmsDropped:   r.Counter("server_alarms_dropped_total"),
		mStrictRejects:   r.Counter("server_strict_rejects_total"),
	}
}

// absorb folds a finished session machine's counters into the
// server-wide series.
func (m *metrics) absorb(st ipds.Stats) {
	m.mBranches.Add(st.Branches)
	m.mVerified.Add(st.Verified)
	m.mAlarmsDropped.Add(st.AlarmsDropped)
	m.mStrictRejects.Add(st.StrictRejects)
}
