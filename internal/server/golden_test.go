package server_test

import (
	"testing"

	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/workload"
)

// TestGoldenEquivalenceThreePaths is the behavioural anchor for the
// zero-allocation kernel: one tampered telnetd trace fed through
//
//  1. the per-event API (EnterFunc/LeaveFunc/OnBranch),
//  2. the batched kernel (Machine.OnBatch, daemon-sized batches), and
//  3. a live daemon session (ipdsclient over the wire protocol),
//
// must produce identical alarms (every field), identical machine Stats
// and identical final table-stack depth. Any divergence means the hot
// path optimisations changed behaviour, not just speed.
func TestGoldenEquivalenceThreePaths(t *testing.T) {
	w := workload.ByName("telnetd")
	if w == nil {
		t.Fatal("telnetd workload missing")
	}
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("compile telnetd: %v", err)
	}
	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 31)
	if len(trace) == 0 {
		t.Fatal("empty telnetd trace")
	}

	// Path 1: per-event reference.
	ref := ipds.New(art.Image, ipds.DefaultConfig)
	refAlarms := ipdsclient.ReplayLocal(ref, trace)
	if len(refAlarms) == 0 {
		t.Fatal("tampered trace raised no reference alarms; equivalence would be vacuous")
	}

	// Path 2: batched kernel, daemon-sized batches.
	bat := ipds.New(art.Image, ipds.DefaultConfig)
	batAlarms := ipdsclient.ReplayLocalBatched(bat, trace, 256)
	if len(batAlarms) != len(refAlarms) {
		t.Fatalf("OnBatch raised %d alarms, per-event %d", len(batAlarms), len(refAlarms))
	}
	for i := range refAlarms {
		if batAlarms[i] != refAlarms[i] {
			t.Errorf("alarm %d: OnBatch %+v, per-event %+v", i, batAlarms[i], refAlarms[i])
		}
	}
	if ref.Stats() != bat.Stats() {
		t.Errorf("stats diverge:\n per-event %+v\n batched   %+v", ref.Stats(), bat.Stats())
	}
	if ref.Depth() != bat.Depth() {
		t.Errorf("final stack depth: per-event %d, batched %d", ref.Depth(), bat.Depth())
	}
	// The retained-ring view must agree too (it is what CLIs display).
	ra, ba := ref.Alarms(), bat.Alarms()
	if len(ra) != len(ba) {
		t.Fatalf("ring sizes diverge: %d vs %d", len(ra), len(ba))
	}
	for i := range ra {
		if ra[i] != ba[i] {
			t.Errorf("ring alarm %d diverges: %+v vs %+v", i, ba[i], ra[i])
		}
	}

	// Path 3: the daemon, which routes sessions through the same OnBatch
	// kernel behind pooled decode/encode buffers.
	world := startWorldWith(t, art, "telnetd", server.Config{})
	c, err := ipdsclient.Dial(ipdsclient.Config{
		Addr: world.addr, Image: world.hash, Program: "golden", Batch: 256,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	requireAlarmsEqual(t, refAlarms, c.Alarms())
	if got, want := c.Acked(), uint64(len(trace)); got != want {
		t.Fatalf("daemon acked %d events, want %d", got, want)
	}
	c.Close()
	world.waitSessions(t, 0)

	// The daemon absorbs its machine's counters on session retirement;
	// they must match the reference machine's Stats exactly.
	st := ref.Stats()
	if got := world.reg.Counter("server_machine_branches_total").Value(); got != st.Branches {
		t.Errorf("server_machine_branches_total = %d, want %d", got, st.Branches)
	}
	if got := world.reg.Counter("server_machine_verified_total").Value(); got != st.Verified {
		t.Errorf("server_machine_verified_total = %d, want %d", got, st.Verified)
	}
	if got := world.reg.Counter("server_alarms_total").Value(); got != st.Alarms {
		t.Errorf("server_alarms_total = %d, want %d", got, st.Alarms)
	}
	if got := world.reg.Counter("server_events_total").Value(); got != uint64(len(trace)) {
		t.Errorf("server_events_total = %d, want %d", got, len(trace))
	}
}
