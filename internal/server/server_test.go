package server_test

import (
	"context"
	"encoding/binary"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/tcache"
	"repro/internal/wire"
)

// guardSrc is a small program with a checkable correlation: `priv` is
// set by branch outcome and consulted later, so flipping either branch
// direction in a captured trace contradicts the tables.
const guardSrc = `
int priv;

int check(int code) {
	if (code == 7) {
		priv = 1;
	} else {
		priv = 0;
	}
	return priv;
}

int act(int n) {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < n; i = i + 1) {
		if (priv == 1) {
			sum = sum + 2;
		} else {
			sum = sum + 1;
		}
	}
	return sum;
}

int main() {
	int r;
	r = check(7);
	r = r + act(5);
	r = check(3);
	r = r + act(5);
	return r;
}
`

// testWorld is one compiled program served by a live daemon.
type testWorld struct {
	art  *pipeline.Artifacts
	hash [32]byte
	srv  *server.Server
	addr string
	reg  *obs.Registry
}

// startWorld compiles guardSrc, serves it on a loopback listener and
// registers cleanup. Shutdown is owned by the cleanup unless the test
// calls shut() itself.
func startWorld(t *testing.T, cfg server.Config) *testWorld {
	t.Helper()
	art, err := pipeline.Compile(guardSrc, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return startWorldWith(t, art, "guard", cfg)
}

// startWorldWith serves an already-compiled artifact set.
func startWorldWith(t *testing.T, art *pipeline.Artifacts, name string, cfg server.Config) *testWorld {
	t.Helper()
	reg := obs.NewRegistry()
	if cfg.Reg == nil {
		cfg.Reg = reg
	} else {
		reg = cfg.Reg
	}
	store := server.NewImageStore(nil)
	hash := store.Add(name, art.Image)
	srv := server.New(store, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	w := &testWorld{art: art, hash: hash, srv: srv, addr: ln.Addr().String(), reg: reg}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // second calls error harmlessly
	})
	return w
}

// shut drains the server now and fails the test if the drain stalls.
func (w *testWorld) shut(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// waitSessions polls until the active session count reaches want.
func (w *testWorld) waitSessions(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w.srv.ActiveSessions() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sessions: got %d, want %d", w.srv.ActiveSessions(), want)
}

func TestRoundTripMatchesLocal(t *testing.T) {
	w := startWorld(t, server.Config{})
	trace := ipdsclient.Capture(w.art, nil)
	if len(trace) == 0 {
		t.Fatal("empty capture")
	}
	tampered := ipdsclient.Tamper(trace, 5)
	ref := ipdsclient.ReplayLocal(ipds.New(w.art.Image, ipds.DefaultConfig), tampered)
	if len(ref) == 0 {
		t.Fatal("tampered trace raised no reference alarms; test is vacuous")
	}

	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "rt", Batch: 8})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(tampered...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	requireAlarmsEqual(t, ref, c.Alarms())
}

// requireAlarmsEqual asserts the remote alarm set is byte-identical to
// the local machine's, field by field.
func requireAlarmsEqual(t *testing.T, ref []ipds.Alarm, got []wire.Alarm) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("alarms: got %d, want %d", len(got), len(ref))
	}
	for i, a := range got {
		r := ref[i]
		if a.Seq != r.Seq || a.PC != r.PC || a.Func != r.Func ||
			a.Slot != uint32(r.Slot) || a.Expected != uint8(r.Expected) || a.Taken != r.Taken {
			t.Fatalf("alarm %d: got %+v, want %+v", i, a, r)
		}
	}
}

func TestHelloUnknownImage(t *testing.T) {
	w := startWorld(t, server.Config{})
	bogus := w.hash
	bogus[0] ^= 0xff
	_, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: bogus, Program: "bogus"})
	if err == nil {
		t.Fatal("dial with unknown image succeeded")
	}
	if !strings.Contains(err.Error(), wire.ErrUnknownImage.String()) {
		t.Fatalf("error %q does not name %s", err, wire.ErrUnknownImage)
	}
	w.waitSessions(t, 0)
}

func TestHelloBadVersion(t *testing.T) {
	w := startWorld(t, server.Config{})
	conn, err := net.Dial("tcp", w.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	b, err := wire.Append(nil, wire.Hello{Version: wire.Version + 9, Image: w.hash})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := conn.Write(b); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := wire.NewReader(conn).Next()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	e, ok := f.(wire.Error)
	if !ok || e.Code != wire.ErrBadVersion {
		t.Fatalf("got %+v, want ErrBadVersion", f)
	}
}

func TestClientVanishesMidBatch(t *testing.T) {
	w := startWorld(t, server.Config{})
	conn, err := net.Dial("tcp", w.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	hello, err := wire.Append(nil, wire.Hello{Version: wire.Version, Image: w.hash, Program: "vanish"})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := conn.Write(hello); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := wire.NewReader(conn).Next(); err != nil {
		t.Fatalf("helloack: %v", err)
	}
	w.waitSessions(t, 1)

	// A length prefix promising 500 bytes, then only 3 of them, then
	// gone: the server must treat the truncated frame as a vanished
	// peer and retire the session without wedging a verifier.
	var part [7]byte
	binary.LittleEndian.PutUint32(part[:4], 500)
	part[4] = byte(wire.TypeBatch)
	if _, err := conn.Write(part[:]); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.Close()
	w.waitSessions(t, 0)
}

func TestIdleEviction(t *testing.T) {
	w := startWorld(t, server.Config{ReadTimeout: 80 * time.Millisecond})
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "idle"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("idle session was not evicted")
	}
	e := c.ServerError()
	if e == nil || e.Code != wire.ErrIdle {
		t.Fatalf("server error = %+v, want ErrIdle", e)
	}
	w.waitSessions(t, 0)
	if got := w.reg.Counter("server_evictions_total").Value(); got != 1 {
		t.Fatalf("server_evictions_total = %d, want 1", got)
	}
}

// TestGracefulDrainDeliversAlarms sends a tampered trace with no Bye,
// then shuts the server down: every already-queued batch must still be
// verified and its alarms delivered before the final Ack and Bye.
func TestGracefulDrainDeliversAlarms(t *testing.T) {
	w := startWorld(t, server.Config{})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	ref := ipdsclient.ReplayLocal(ipds.New(w.art.Image, ipds.DefaultConfig), trace)
	if len(ref) == 0 {
		t.Fatal("no reference alarms; test is vacuous")
	}

	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "drainee", Batch: 4})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	w.shut(t)
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drain never ended the session")
	}
	requireAlarmsEqual(t, ref, c.Alarms())
	if got, want := c.Acked(), c.Sent(); got != want {
		t.Fatalf("drain acked %d of %d events", got, want)
	}

	// New connections are refused while (and after) draining.
	if _, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Timeout: time.Second}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestDrainFlushesPooledWriterBuffers stresses the pooled outbound
// path under drain: a 1-frame queue forces every alarm, ack and the
// closing Ack+Bye through constant pool recycling while the server is
// shutting down. Every frame must still arrive intact and in order —
// a buffer released before its bytes hit the wire would corrupt the
// alarm set or lose the final Ack.
func TestDrainFlushesPooledWriterBuffers(t *testing.T) {
	w := startWorld(t, server.Config{AlarmQueue: 1})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	var ref []ipds.Alarm
	m := ipds.New(w.art.Image, ipds.DefaultConfig)
	// Loop the trace so hundreds of alarm frames recycle the 1-frame
	// queue's pooled buffers.
	const loops = 50
	for i := 0; i < loops; i++ {
		ref = append(ref, ipdsclient.ReplayLocalBatched(m, trace, 4)...)
	}
	if len(ref) < 100 {
		t.Fatalf("only %d reference alarms; not enough pool churn", len(ref))
	}

	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "pooldrain", Batch: 4})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < loops; i++ {
		if err := c.Send(trace...); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	w.shut(t)
	select {
	case <-c.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("drain never ended the session")
	}
	requireAlarmsEqual(t, ref, c.Alarms())
	if got, want := c.Acked(), c.Sent(); got != want {
		t.Fatalf("drain acked %d of %d events; the final pooled Ack was lost", got, want)
	}
}

func TestShutdownTwiceErrors(t *testing.T) {
	w := startWorld(t, server.Config{})
	w.shut(t)
	if err := w.srv.Shutdown(context.Background()); err == nil {
		t.Fatal("second Shutdown returned nil")
	}
}

// TestAlarmsDroppedSurfaced holds the satellite: machine-level ring
// drops become the registry-wide server_alarms_dropped_total series
// when sessions retire.
func TestAlarmsDroppedSurfaced(t *testing.T) {
	w := startWorld(t, server.Config{
		IPDS: ipds.Config{AlarmBuffer: 1},
	})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "droppy"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(c.Alarms()) < 2 {
		t.Fatalf("want >= 2 alarms to overflow a 1-slot ring, got %d", len(c.Alarms()))
	}
	c.Close()
	w.waitSessions(t, 0)
	if got := w.reg.Counter("server_alarms_dropped_total").Value(); got == 0 {
		t.Fatal("server_alarms_dropped_total = 0 after overflowing a 1-slot alarm ring")
	}
}

func TestServerMetrics(t *testing.T) {
	w := startWorld(t, server.Config{})
	trace := ipdsclient.Capture(w.art, nil)
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "metrics", Batch: 16})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	w.waitSessions(t, 0)
	if got := w.reg.Counter("server_events_total").Value(); got != uint64(len(trace)) {
		t.Fatalf("server_events_total = %d, want %d", got, len(trace))
	}
	if got := w.reg.Counter("server_batches_total").Value(); got == 0 {
		t.Fatal("server_batches_total = 0")
	}
	if got := w.reg.Counter("server_sessions_total").Value(); got != 1 {
		t.Fatalf("server_sessions_total = %d, want 1", got)
	}
	if got := w.reg.Gauge("server_sessions_active").Value(); got != 0 {
		t.Fatalf("server_sessions_active = %d, want 0", got)
	}
}

// TestBenignTraceRaisesNoAlarms is the remote false-positive check: an
// untampered capture verifies silently.
func TestBenignTraceRaisesNoAlarms(t *testing.T) {
	w := startWorld(t, server.Config{})
	trace := ipdsclient.Capture(w.art, nil)
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "benign"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(trace...); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := len(c.Alarms()); n != 0 {
		t.Fatalf("benign trace raised %d alarms", n)
	}
}

// TestBackpressureCounted squeezes the alarm queue to 1 so alarm bursts
// stall the verifier measurably.
func TestBackpressureCounted(t *testing.T) {
	w := startWorld(t, server.Config{AlarmQueue: 1})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	c, err := ipdsclient.Dial(ipdsclient.Config{Addr: w.addr, Image: w.hash, Program: "bp", Batch: wire.MaxBatch})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// Loop the trace so hundreds of alarm frames squeeze through the
	// 1-frame queue; some sends inevitably find it occupied.
	for i := 0; i < 100; i++ {
		if err := c.Send(trace...); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(c.Alarms()) < 100 {
		t.Fatalf("only %d alarms; cannot exercise a 1-frame queue", len(c.Alarms()))
	}
	if got := w.reg.Counter("server_backpressure_stalls_total").Value(); got == 0 {
		t.Fatal("server_backpressure_stalls_total = 0 with a 1-frame alarm queue")
	}
}

func TestServeAfterShutdownRefused(t *testing.T) {
	w := startWorld(t, server.Config{})
	w.shut(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if err := w.srv.Serve(ln); err == nil {
		t.Fatal("Serve after Shutdown returned nil")
	}
}

func TestProtocolErrorOnUnexpectedFrame(t *testing.T) {
	w := startWorld(t, server.Config{})
	conn, err := net.Dial("tcp", w.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	b, err := wire.Append(nil, wire.Hello{Version: wire.Version, Image: w.hash, Program: "odd"})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := conn.Write(b); err != nil {
		t.Fatalf("write: %v", err)
	}
	rd := wire.NewReader(conn)
	if _, err := rd.Next(); err != nil {
		t.Fatalf("helloack: %v", err)
	}
	// A second Hello mid-session is a protocol error.
	if _, err := conn.Write(b); err != nil {
		t.Fatalf("write: %v", err)
	}
	sawErr := false
	for {
		f, err := rd.Next()
		if err != nil {
			break
		}
		if e, ok := f.(wire.Error); ok {
			if e.Code != wire.ErrProtocol {
				t.Fatalf("error code = %v, want ErrProtocol", e.Code)
			}
			sawErr = true
		}
		if _, ok := f.(wire.Bye); ok {
			break
		}
	}
	if !sawErr {
		t.Fatal("no ErrProtocol frame for mid-session Hello")
	}
	w.waitSessions(t, 0)
}

func TestResolveFromBlobCache(t *testing.T) {
	// An image added through one store is resolvable by a second store
	// sharing the same disk cache — the restarted-daemon path: no
	// recompilation for a hash the old process served.
	art, err := pipeline.Compile(guardSrc, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cache, err := tcache.New(16, t.TempDir())
	if err != nil {
		t.Fatalf("tcache: %v", err)
	}
	st1 := server.NewImageStore(cache)
	h := st1.Add("guard", art.Image)

	st2 := server.NewImageStore(cache)
	img, ok := st2.Resolve(h)
	if !ok {
		t.Fatal("fresh store could not resolve via shared cache")
	}
	if got := img.Hash(); got != h {
		t.Fatalf("resolved image hashes to %x, want %x", got[:4], h[:4])
	}
	if _, ok := st2.Resolve([32]byte{1, 2, 3}); ok {
		t.Fatal("resolved a hash that was never added")
	}
}

// TestSendEncodedMatchesSend replays the same tampered trace through a
// per-event Send session and a pre-encoded SendEncoded session (the
// load generator's fast path) and requires identical alarms and acks:
// the pre-encoded block is the same event sequence, so only frame
// boundaries may differ, and the daemon must not care.
func TestSendEncodedMatchesSend(t *testing.T) {
	w := startWorld(t, server.Config{})
	trace := ipdsclient.Tamper(ipdsclient.Capture(w.art, nil), 5)
	if len(trace) == 0 {
		t.Fatal("empty capture")
	}
	const loops = 20

	run := func(encoded bool) ([]wire.Alarm, uint64) {
		c, err := ipdsclient.Dial(ipdsclient.Config{
			Addr: w.addr, Image: w.hash, Program: "sendenc", Batch: 64,
		})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer c.Close()
		if encoded {
			frames := wire.AppendBatches(nil, trace, c.Batch())
			var branches uint64
			for _, ev := range trace {
				if ev.Kind == wire.EvBranch {
					branches++
				}
			}
			for i := 0; i < loops; i++ {
				if err := c.SendEncoded(frames, uint64(len(trace)), branches); err != nil {
					t.Fatalf("send encoded: %v", err)
				}
			}
		} else {
			for i := 0; i < loops; i++ {
				if err := c.Send(trace...); err != nil {
					t.Fatalf("send: %v", err)
				}
			}
		}
		if err := c.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		return c.Alarms(), c.Acked()
	}

	refAlarms, refAcked := run(false)
	gotAlarms, gotAcked := run(true)
	if len(refAlarms) == 0 {
		t.Fatal("reference session raised no alarms; test is vacuous")
	}
	if gotAcked != refAcked {
		t.Fatalf("acked %d events via SendEncoded, want %d", gotAcked, refAcked)
	}
	if !reflect.DeepEqual(gotAlarms, refAlarms) {
		t.Fatalf("SendEncoded alarms diverged:\n got %d alarms %+v\nwant %d alarms %+v",
			len(gotAlarms), gotAlarms[:min(3, len(gotAlarms))], len(refAlarms), refAlarms[:min(3, len(refAlarms))])
	}
}
