package experiments

import (
	"strings"
	"testing"

	"repro/internal/cpu"
)

// The experiment tests assert the paper's qualitative shape, not its
// absolute numbers (DESIGN.md §4): roughly a quarter to a half of the
// tamperings change control flow, the majority of those are detected,
// BSV/BCV/BAT sizes keep their relative magnitudes, and the IPDS
// slowdown stays in the sub-percent regime on average.

func TestFigure7Shape(t *testing.T) {
	r, err := Figure7(60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(r.Rows))
	}
	if r.AvgCFChange < 0.15 || r.AvgCFChange > 0.7 {
		t.Errorf("avg CF-change %.2f outside plausible band (paper 0.494)", r.AvgCFChange)
	}
	if r.Conditional < 0.35 {
		t.Errorf("conditional detection %.2f too low (paper 0.593)", r.Conditional)
	}
	for _, row := range r.Rows {
		if row.Detected > row.CFChange {
			t.Errorf("%s: detected %.2f exceeds CF-change %.2f", row.Program, row.Detected, row.CFChange)
		}
	}
	out := r.Render()
	for _, want := range []string{"telnetd", "portmap", "average", "59.3%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	r, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// BSV is exactly two bits per slot to BCV's one.
	if r.AvgBSVBits != 2*r.AvgBCVBits {
		t.Errorf("BSV %.1f != 2x BCV %.1f", r.AvgBSVBits, r.AvgBCVBits)
	}
	// BAT dominates by the paper's order of magnitude (393/34 ≈ 12x).
	ratio := r.AvgBATBits / r.AvgBSVBits
	if ratio < 3 || ratio > 40 {
		t.Errorf("BAT/BSV ratio %.1f outside plausible band (paper ~11.6)", ratio)
	}
	// Average sizes in the paper's regime (tens of bits, hundreds for
	// BAT).
	if r.AvgBSVBits < 10 || r.AvgBSVBits > 120 {
		t.Errorf("avg BSV %.1f bits outside band (paper 34)", r.AvgBSVBits)
	}
	if r.AvgBATBits < 100 || r.AvgBATBits > 2000 {
		t.Errorf("avg BAT %.1f bits outside band (paper 393)", r.AvgBATBits)
	}
	if !strings.Contains(r.Render(), "paper: 34 / 17 / 393") {
		t.Error("render missing paper reference")
	}
}

func TestFigure9Shape(t *testing.T) {
	r, err := Figure9(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Normalized < 1 {
			t.Errorf("%s: IPDS run faster than baseline (%.4f)", row.Program, row.Normalized)
		}
	}
	if r.AvgDegradation < 0 || r.AvgDegradation > 0.05 {
		t.Errorf("avg degradation %.4f outside sub-percent regime (paper 0.0079)", r.AvgDegradation)
	}
	if r.AvgDetectLat < 5 || r.AvgDetectLat > 40 {
		t.Errorf("avg detection latency %.1f outside band (paper 11.7)", r.AvgDetectLat)
	}
	if !strings.Contains(r.Render(), "paper: 0.79%") {
		t.Error("render missing paper reference")
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1(cpu.DefaultConfig())
	for _, want := range []string{
		"Fetch queue", "32 entries", "RUU size", "128", "LSQ size", "64",
		"64K, 2 way", "512K, 4 way", "first chunk 80", "TLB miss",
		"30 cycles", "BSV stack", "2K bits", "BAT stack", "32K bits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q\n%s", want, out)
		}
	}
}

func TestCompileTimes(t *testing.T) {
	r, err := CompileTimes()
	if err != nil {
		t.Fatal(err)
	}
	// Ten servers plus the wide synthetic program.
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[len(r.Rows)-1].Program != "progen-wide" {
		t.Errorf("last row = %q, want progen-wide", r.Rows[len(r.Rows)-1].Program)
	}
	// "Up to a few seconds" on 2006 hardware; these MiniC programs
	// must compile in well under a second each, in every mode.
	for _, row := range r.Rows {
		if row.Elapsed.Seconds() > 2 {
			t.Errorf("%s took %v to compile", row.Program, row.Elapsed)
		}
		if row.Parallel <= 0 || row.Cached <= 0 {
			t.Errorf("%s: parallel/cached modes not measured: %v / %v",
				row.Program, row.Parallel, row.Cached)
		}
	}
	if r.Workers < 1 {
		t.Errorf("workers = %d", r.Workers)
	}
	out := r.Render()
	for _, want := range []string{"total", "parallel", "warm-cache", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCheckingSpeed(t *testing.T) {
	r, err := CheckingSpeed(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's claim: checking keeps up with execution on average.
	if r.AvgUtilization >= 1 {
		t.Errorf("average IPDS utilization %.2f >= 1", r.AvgUtilization)
	}
	if r.AvgUtilization <= 0 {
		t.Error("no IPDS activity measured")
	}
	if !strings.Contains(r.Render(), "average utilization") {
		t.Error("render incomplete")
	}
}

func TestAblationComponents(t *testing.T) {
	r, err := AblationComponents(30, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Removing all correlations blinds the detector entirely (while CF
	// change rates stay put: the attacks are identical).
	if r.None.AvgDetected != 0 {
		t.Errorf("no-correlation variant detected %.3f, want 0", r.None.AvgDetected)
	}
	if r.None.AvgCFChange != r.Full.AvgCFChange {
		t.Errorf("ablation changed the attacks themselves: %.3f vs %.3f",
			r.None.AvgCFChange, r.Full.AvgCFChange)
	}
	// Weakened analyses cannot detect more than the full algorithm.
	for name, v := range map[string]*Figure7Result{
		"no store-load": r.NoStoreLoad, "self only": r.SelfOnly, "none": r.None,
	} {
		if v.AvgDetected > r.Full.AvgDetected+1e-9 {
			t.Errorf("%s detected %.3f > full %.3f", name, v.AvgDetected, r.Full.AvgDetected)
		}
	}
	if !strings.Contains(r.Render(), "no correlations") {
		t.Error("render incomplete")
	}
}

func TestAblationRegPromo(t *testing.T) {
	r, err := AblationRegPromo(40, 23)
	if err != nil {
		t.Fatal(err)
	}
	// Register promotion removes loads, shrinking the window in which
	// tampered memory is re-read: detection must not improve.
	if r.Promoted.AvgDetected > r.Baseline.AvgDetected+0.02 {
		t.Errorf("promotion increased detection: %.3f -> %.3f",
			r.Baseline.AvgDetected, r.Promoted.AvgDetected)
	}
	if !strings.Contains(r.Render(), "region promotion") {
		t.Error("render incomplete")
	}
}

func TestExtensionInlining(t *testing.T) {
	r, err := ExtensionInlining(40, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Inlining must strictly increase analysis reach: more checked
	// branches and bigger tables.
	if r.InlinedChecked <= r.BaselineChecked {
		t.Errorf("inlining did not increase checked branches: %d -> %d",
			r.BaselineChecked, r.InlinedChecked)
	}
	if r.InlinedBATBits <= r.BaselineBATBits {
		t.Errorf("inlining did not grow the BAT: %.1f -> %.1f",
			r.BaselineBATBits, r.InlinedBATBits)
	}
	out := r.Render()
	if !strings.Contains(out, "with inlining") {
		t.Error("render incomplete")
	}
}
