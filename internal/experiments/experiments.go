// Package experiments regenerates every table and figure of the
// paper's evaluation (§6): Figure 7 (detection rates), Figure 8 (table
// sizes), Figure 9 (normalized performance), Table 1 (machine
// configuration), plus the in-text measurements (detection latency,
// checking speed, compilation time) and the ablation suggested by the
// paper's note that compiler optimization removes correlations.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ipds"
	"repro/internal/ipdsclient"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/tcache"
	"repro/internal/vm"
	"repro/internal/workload"
)

// DefaultAttacks matches the paper: each server attacked 100 times
// independently.
const DefaultAttacks = 100

// Figure7Row is one benchmark's bars in Figure 7.
type Figure7Row struct {
	Program string
	Vuln    string
	// CFChange is the fraction of tamperings that changed control flow.
	CFChange float64
	// Detected is the fraction of all tamperings detected by IPDS.
	Detected float64
}

// Figure7Result is the detection-rate experiment.
type Figure7Result struct {
	Rows        []Figure7Row
	AvgCFChange float64 // paper: 49.4%
	AvgDetected float64 // paper: 29.3%
	// Conditional is AvgDetected/AvgCFChange (paper: 59.3%).
	Conditional float64
}

// Figure7 runs the simulated-attack campaigns for all ten servers.
// Buffer-overflow programs use the stack-only attack model; format
// string programs use arbitrary writes, as in the paper's methodology.
func Figure7(attacks int, seed int64) (*Figure7Result, error) {
	return figure7With(attacks, seed, ir.DefaultOptions)
}

func figure7With(attacks int, seed int64, opts ir.Options) (*Figure7Result, error) {
	return figure7Transformed(attacks, seed, opts, nil)
}

// figure7Transformed runs the detection campaign with an optional
// artifact transform (used by the component ablation to swap in tables
// built with parts of the algorithm disabled).
func figure7Transformed(attacks int, seed int64, opts ir.Options,
	transform func(*pipeline.Artifacts) (*pipeline.Artifacts, error)) (*Figure7Result, error) {
	out := &Figure7Result{}
	var sumCF, sumDet float64
	for i, w := range workload.All() {
		stop := harnessTracer().Span("figure7/" + w.Name)
		art, err := compile(w.Source, opts)
		if err != nil {
			stop()
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		if transform != nil {
			art, err = transform(art)
			if err != nil {
				stop()
				return nil, fmt.Errorf("%s: %w", w.Name, err)
			}
		}
		model := attack.Overflow
		if w.Vuln == "format string" {
			model = attack.ArbitraryWrite
		}
		// Spread the attack budget across every benign session so the
		// campaign covers the different protocol paths.
		sessions := w.Sessions()
		per := attacks / len(sessions)
		extra := attacks % len(sessions)
		trials, cfChanged, detected := 0, 0, 0
		for si, session := range sessions {
			n := per
			if si < extra {
				n++
			}
			if n == 0 {
				continue
			}
			c := &attack.Campaign{
				Name:      w.Name,
				Artifacts: art,
				Input:     session,
				Model:     model,
				Attacks:   n,
				Seed:      seed + int64(i)*7919 + int64(si)*104729,
			}
			res := c.Run()
			trials += len(res.Trials)
			cfChanged += res.CFChanged
			detected += res.Detected
		}
		stop()
		row := Figure7Row{
			Program:  w.Name,
			Vuln:     w.Vuln,
			CFChange: float64(cfChanged) / float64(trials),
			Detected: float64(detected) / float64(trials),
		}
		out.Rows = append(out.Rows, row)
		sumCF += row.CFChange
		sumDet += row.Detected
	}
	n := float64(len(out.Rows))
	out.AvgCFChange = sumCF / n
	out.AvgDetected = sumDet / n
	if out.AvgCFChange > 0 {
		out.Conditional = out.AvgDetected / out.AvgCFChange
	}
	return out, nil
}

// Render formats the result as the paper's figure-as-table.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: detection rate for simulated attacks\n")
	fmt.Fprintf(&b, "%-10s %-16s %14s %14s\n", "program", "vulnerability", "CF-change %", "detected %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-16s %13.1f%% %13.1f%%\n",
			row.Program, row.Vuln, 100*row.CFChange, 100*row.Detected)
	}
	fmt.Fprintf(&b, "%-10s %-16s %13.1f%% %13.1f%%\n", "average", "",
		100*r.AvgCFChange, 100*r.AvgDetected)
	fmt.Fprintf(&b, "detected / CF-changing: %.1f%% (paper: 59.3%%)\n", 100*r.Conditional)
	return b.String()
}

// Figure8Row is one program's average per-function table sizes.
type Figure8Row struct {
	Program    string
	Functions  int
	AvgBSVBits float64
	AvgBCVBits float64
	AvgBATBits float64
}

// Figure8Result is the table-size experiment. Paper averages: BSV 34,
// BCV 17, BAT 393 bits.
type Figure8Result struct {
	Rows       []Figure8Row
	AvgBSVBits float64
	AvgBCVBits float64
	AvgBATBits float64
}

// Figure8 measures encoded table sizes across all ten servers.
func Figure8() (*Figure8Result, error) {
	out := &Figure8Result{}
	totalFns := 0
	var sumBSV, sumBCV, sumBAT float64
	for _, w := range workload.All() {
		art, err := compile(w.Source, ir.DefaultOptions)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		s := art.Image.Sizes()
		out.Rows = append(out.Rows, Figure8Row{
			Program:    w.Name,
			Functions:  s.Funcs,
			AvgBSVBits: s.AvgBSVBits,
			AvgBCVBits: s.AvgBCVBits,
			AvgBATBits: s.AvgBATBits,
		})
		totalFns += s.Funcs
		sumBSV += s.AvgBSVBits * float64(s.Funcs)
		sumBCV += s.AvgBCVBits * float64(s.Funcs)
		sumBAT += s.AvgBATBits * float64(s.Funcs)
	}
	out.AvgBSVBits = sumBSV / float64(totalFns)
	out.AvgBCVBits = sumBCV / float64(totalFns)
	out.AvgBATBits = sumBAT / float64(totalFns)
	return out, nil
}

// Render formats the result.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: average table sizes per function (bits)\n")
	fmt.Fprintf(&b, "%-10s %6s %10s %10s %10s\n", "program", "funcs", "BSV", "BCV", "BAT")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %6d %10.1f %10.1f %10.1f\n",
			row.Program, row.Functions, row.AvgBSVBits, row.AvgBCVBits, row.AvgBATBits)
	}
	fmt.Fprintf(&b, "%-10s %6s %10.1f %10.1f %10.1f   (paper: 34 / 17 / 393)\n",
		"average", "", r.AvgBSVBits, r.AvgBCVBits, r.AvgBATBits)
	return b.String()
}

// Figure9Row is one benchmark's bar in Figure 9.
type Figure9Row struct {
	Program      string
	BaseCycles   uint64
	IPDSCycles   uint64
	Normalized   float64 // IPDS/base; paper average 1.0079
	Instructions uint64
	IPC          float64
	AvgDetectLat float64
	IPDSStalls   uint64
}

// Figure9Result is the performance experiment.
type Figure9Result struct {
	Rows           []Figure9Row
	AvgNormalized  float64
	AvgDegradation float64 // paper: 0.79%
	AvgDetectLat   float64 // paper: 11.7 cycles
}

// Figure9 times each server's perf session on the Table 1 machine with
// and without the IPDS unit.
func Figure9(cfg cpu.Config) (*Figure9Result, error) {
	out := &Figure9Result{}
	var sumNorm, sumLat float64
	for _, w := range workload.All() {
		stop := harnessTracer().Span("figure9/" + w.Name)
		art, err := compile(w.Source, ir.DefaultOptions)
		if err != nil {
			stop()
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		base, err := timeOne(art, w.Name, w.PerfSession, cfg, false)
		if err != nil {
			stop()
			return nil, fmt.Errorf("%s baseline: %w", w.Name, err)
		}
		guarded, err := timeOne(art, w.Name, w.PerfSession, cfg, true)
		stop()
		if err != nil {
			return nil, fmt.Errorf("%s guarded: %w", w.Name, err)
		}
		row := Figure9Row{
			Program:      w.Name,
			BaseCycles:   base.Cycles,
			IPDSCycles:   guarded.Cycles,
			Normalized:   float64(guarded.Cycles) / float64(base.Cycles),
			Instructions: base.Instructions,
			IPC:          base.IPC(),
			AvgDetectLat: guarded.AvgDetectionLatency(),
			IPDSStalls:   guarded.IPDSStallCycles,
		}
		out.Rows = append(out.Rows, row)
		sumNorm += row.Normalized
		sumLat += row.AvgDetectLat
	}
	n := float64(len(out.Rows))
	out.AvgNormalized = sumNorm / n
	out.AvgDegradation = out.AvgNormalized - 1
	out.AvgDetectLat = sumLat / n
	return out, nil
}

func timeOne(art *pipeline.Artifacts, name string, session []string, cfg cpu.Config, withIPDS bool) (cpu.Stats, error) {
	vcfg := vm.DefaultConfig
	vcfg.RecordBranches = false
	v := vm.New(art.Prog, vcfg, session)
	var m *ipds.Machine
	guard := "off"
	if withIPDS {
		m = ipds.New(art.Image, ipds.DefaultConfig)
		m.Instrument(telemetry.reg, "workload", name)
		guard = "on"
	}
	s := cpu.New(cfg, m)
	s.Instrument(telemetry.reg, "workload", name, "ipds", guard)
	s.Attach(v)
	res := v.Run()
	if res.Status != vm.Exited {
		return cpu.Stats{}, fmt.Errorf("run ended %v: %v", res.Status, res.Fault)
	}
	return s.Stats(), nil
}

// Render formats the result.
func (r *Figure9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: performance normalized to no-IPDS baseline\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %8s %10s\n",
		"program", "base cyc", "ipds cyc", "normalized", "IPC", "det.lat")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12d %12d %10.4f %8.2f %10.1f\n",
			row.Program, row.BaseCycles, row.IPDSCycles, row.Normalized,
			row.IPC, row.AvgDetectLat)
	}
	fmt.Fprintf(&b, "average degradation: %.2f%% (paper: 0.79%%)\n", 100*r.AvgDegradation)
	fmt.Fprintf(&b, "average detection latency: %.1f cycles (paper: 11.7)\n", r.AvgDetectLat)
	return b.String()
}

// Table1 renders the simulated machine configuration.
func Table1(cfg cpu.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: default parameters of the processor simulated\n")
	rows := [][2]string{
		{"Fetch queue", fmt.Sprintf("%d entries", cfg.FetchQueue)},
		{"Decode width", fmt.Sprintf("%d", cfg.DecodeWidth)},
		{"Issue width", fmt.Sprintf("%d", cfg.IssueWidth)},
		{"Commit width", fmt.Sprintf("%d", cfg.CommitWidth)},
		{"RUU size", fmt.Sprintf("%d", cfg.RUUSize)},
		{"LSQ size", fmt.Sprintf("%d", cfg.LSQSize)},
		{"Branch predictor", fmt.Sprintf("2 level (%d-bit history, %d-entry PHT)",
			cfg.PredictorHistBits, 1<<cfg.PredictorTableBits)},
		{"L1 I/D", fmt.Sprintf("%dK, %d way, %d cycle, %dB block",
			cfg.L1Sets*cfg.L1Ways*cfg.L1Line/1024, cfg.L1Ways, cfg.L1Latency, cfg.L1Line)},
		{"Unified L2", fmt.Sprintf("%dK, %d way, %dB block, latency %d cycles",
			cfg.L2Sets*cfg.L2Ways*cfg.L2Line/1024, cfg.L2Ways, cfg.L2Line, cfg.L2Latency)},
		{"Memory bus", fmt.Sprintf("%d byte wide", cfg.BusWidth)},
		{"Memory latency", fmt.Sprintf("first chunk %d cycles, inter chunk %d cycles",
			cfg.MemFirstChunk, cfg.MemInterChunk)},
		{"TLB miss", fmt.Sprintf("%d cycles", cfg.TLBMissCost)},
		{"BSV stack", fmt.Sprintf("%dK bits", ipds.DefaultConfig.BSVStackBits/1024)},
		{"BCV stack", fmt.Sprintf("%dK bits", ipds.DefaultConfig.BCVStackBits/1024)},
		{"BAT stack", fmt.Sprintf("%dK bits", ipds.DefaultConfig.BATStackBits/1024)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %s\n", r[0], r[1])
	}
	return b.String()
}

// CompileTimeRow is one workload's compile-time measurements across
// the three pipeline modes.
type CompileTimeRow struct {
	Program string `json:"program"`
	// Elapsed is the historical sequential, uncached compile.
	Elapsed time.Duration `json:"sequential_ns"`
	// Parallel is the same compile with the per-function worker pool
	// at GOMAXPROCS.
	Parallel time.Duration `json:"parallel_ns"`
	// Cached is a parallel recompile against a warm content-addressed
	// table cache (every function hits).
	Cached time.Duration `json:"cached_ns"`
}

// CompileTimesResult records per-program compilation time (§6: "the
// compilation time for all benchmarks is up to a few seconds"), plus
// the speedups of the parallel and cached pipeline modes over the
// sequential baseline. Serialised as JSON it is the BENCH_pr2.json
// compile-time baseline (perfsim -compile -baseline).
type CompileTimesResult struct {
	Rows          []CompileTimeRow `json:"rows"`
	Workers       int              `json:"workers"`
	Total         time.Duration    `json:"total_ns"`
	TotalParallel time.Duration    `json:"total_parallel_ns"`
	TotalCached   time.Duration    `json:"total_cached_ns"`

	// Kernel, when measured (perfsim -baseline), records the raw batched
	// verification kernel's throughput — the machine alone, no wire
	// protocol — so baseline files track the serve stack's two layers
	// (kernel vs end-to-end ipdsload numbers) separately.
	Kernel *KernelResult `json:"kernel,omitempty"`
}

// KernelResult is the in-process Machine.OnBatch throughput over a
// captured workload trace: the ceiling the daemon's serve loop works
// against. AllocsPerBatch is measured, not assumed; the hot path's
// contract is that it stays 0 on a warmed machine.
type KernelResult struct {
	Program        string  `json:"program"`
	Events         uint64  `json:"events"`
	EventsSec      float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerBatch float64 `json:"allocs_per_batch"`
}

// KernelThroughput measures the batched verification kernel over the
// telnetd attack trace in daemon-sized batches for a fixed wall-clock
// budget.
func KernelThroughput() (*KernelResult, error) {
	w := workload.ByName("telnetd")
	if w == nil {
		return nil, fmt.Errorf("telnetd workload missing")
	}
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", w.Name, err)
	}
	trace := ipdsclient.Tamper(ipdsclient.Capture(art, w.AttackSession), 97)
	if len(trace) == 0 {
		return nil, fmt.Errorf("empty %s trace", w.Name)
	}

	const batch = 512
	m := ipds.New(art.Image, ipds.DefaultConfig)
	// Each replay is one session: the attack trace ends mid-call (the
	// payload kills the server), so without the Reset every round would
	// deepen the table stack past its high-water mark and the arena
	// would keep growing — measurement artefact, not hot-path cost.
	replay := func() {
		rest := trace
		for len(rest) > 0 {
			n := batch
			if n > len(rest) {
				n = len(rest)
			}
			m.OnBatch(rest[:n])
			rest = rest[n:]
		}
		m.Reset()
	}
	replay() // warm the arena and result buffer

	// Allocation check first, on the warmed machine, before the timed
	// run: mallocs across reps divided by batches fed.
	const allocReps = 10
	batches := (len(trace) + batch - 1) / batch
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < allocReps; i++ {
		replay()
	}
	runtime.ReadMemStats(&after)
	allocsPerBatch := float64(after.Mallocs-before.Mallocs) / float64(allocReps*batches)

	const budget = 300 * time.Millisecond
	var events uint64
	start := time.Now()
	for time.Since(start) < budget {
		replay()
		events += uint64(len(trace))
	}
	elapsed := time.Since(start)

	return &KernelResult{
		Program:        w.Name,
		Events:         events,
		EventsSec:      float64(events) / elapsed.Seconds(),
		NsPerEvent:     float64(elapsed.Nanoseconds()) / float64(events),
		AllocsPerBatch: allocsPerBatch,
	}, nil
}

// ParallelSpeedup is the sequential/parallel wall-clock ratio.
func (r *CompileTimesResult) ParallelSpeedup() float64 {
	if r.TotalParallel == 0 {
		return 0
	}
	return float64(r.Total) / float64(r.TotalParallel)
}

// CachedSpeedup is the sequential/warm-cache wall-clock ratio.
func (r *CompileTimesResult) CachedSpeedup() float64 {
	if r.TotalCached == 0 {
		return 0
	}
	return float64(r.Total) / float64(r.TotalCached)
}

// compileReps is the best-of-N repetition count for each compile-time
// measurement: the workloads compile in well under a millisecond, so a
// single sample is mostly scheduler noise.
const compileReps = 3

// bestOf times f compileReps times and keeps the fastest run.
func bestOf(f func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < compileReps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// compileTimeSources returns the measured programs: the paper's ten
// servers plus one wide synthetic program (the BenchmarkCompileParallel
// workload) whose per-function phase dominates — the regime the
// parallel and cached modes exist for.
func compileTimeSources() []*workload.Workload {
	ws := workload.All()
	wide := progen.GenerateWith(8, progen.Config{
		MaxHelpers: 24, MaxGlobals: 10, MaxLocals: 6,
		MaxStmts: 14, MaxDepth: 4, MaxExprDepth: 3, InputLines: 4,
	})
	return append(ws, &workload.Workload{Name: "progen-wide", Source: wide.Source})
}

// CompileTimes measures the full pipeline per program in all three
// modes: sequential (the paper's measurement), parallel fan-out, and a
// warm-cache recompile. Each mode takes the best of three runs.
func CompileTimes() (*CompileTimesResult, error) {
	out := &CompileTimesResult{Workers: runtime.GOMAXPROCS(0)}
	for _, w := range compileTimeSources() {
		row := CompileTimeRow{Program: w.Name}
		var err error

		row.Elapsed, err = bestOf(func() error {
			_, err := compile(w.Source, ir.DefaultOptions)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}

		pcfg := pipeline.Config{Workers: 0} // GOMAXPROCS
		row.Parallel, err = bestOf(func() error {
			_, err := pipeline.CompileWith(w.Source, ir.DefaultOptions, pcfg, telemetry.tracer)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: parallel: %w", w.Name, err)
		}

		cache, cerr := tcache.New(0, "")
		if cerr != nil {
			return nil, cerr
		}
		ccfg := pipeline.Config{Workers: 0, Cache: cache}
		if _, err := pipeline.CompileWith(w.Source, ir.DefaultOptions, ccfg, nil); err != nil {
			return nil, fmt.Errorf("%s: cache warmup: %w", w.Name, err)
		}
		row.Cached, err = bestOf(func() error {
			_, err := pipeline.CompileWith(w.Source, ir.DefaultOptions, ccfg, telemetry.tracer)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: cached: %w", w.Name, err)
		}

		out.Rows = append(out.Rows, row)
		out.Total += row.Elapsed
		out.TotalParallel += row.Parallel
		out.TotalCached += row.Cached
	}
	return out, nil
}

// Render formats the result.
func (r *CompileTimesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compilation time (paper: up to a few seconds per benchmark)\n")
	fmt.Fprintf(&b, "  %-10s %12s %12s %12s\n", "program", "sequential", fmt.Sprintf("parallel(%d)", r.Workers), "warm-cache")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %12v %12v %12v\n", row.Program, row.Elapsed, row.Parallel, row.Cached)
	}
	fmt.Fprintf(&b, "  %-10s %12v %12v %12v\n", "total", r.Total, r.TotalParallel, r.TotalCached)
	fmt.Fprintf(&b, "  speedup vs sequential: parallel %.2fx, warm-cache %.2fx\n",
		r.ParallelSpeedup(), r.CachedSpeedup())
	if k := r.Kernel; k != nil {
		fmt.Fprintf(&b, "  kernel (%s, OnBatch): %.0f events/sec, %.1f ns/event, %.2f allocs/batch\n",
			k.Program, k.EventsSec, k.NsPerEvent, k.AllocsPerBatch)
	}
	return b.String()
}

// CheckingSpeedRow compares IPDS processing throughput to program
// execution (§6: "the average checking speed is normally higher than
// the program execution").
type CheckingSpeedRow struct {
	Program     string
	Cycles      uint64
	IPDSBusy    uint64
	Utilization float64 // IPDSBusy / Cycles; < 1 means the checker keeps up
}

// CheckingSpeedResult aggregates utilization across servers.
type CheckingSpeedResult struct {
	Rows           []CheckingSpeedRow
	AvgUtilization float64
}

// CheckingSpeed measures the IPDS unit's busy fraction on the Table 1
// machine.
func CheckingSpeed(cfg cpu.Config) (*CheckingSpeedResult, error) {
	out := &CheckingSpeedResult{}
	var sum float64
	for _, w := range workload.All() {
		art, err := compile(w.Source, ir.DefaultOptions)
		if err != nil {
			return nil, err
		}
		st, err := timeOne(art, w.Name, w.PerfSession, cfg, true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		row := CheckingSpeedRow{
			Program:     w.Name,
			Cycles:      st.Cycles,
			IPDSBusy:    st.IPDSBusyCycles,
			Utilization: float64(st.IPDSBusyCycles) / float64(st.Cycles),
		}
		out.Rows = append(out.Rows, row)
		sum += row.Utilization
	}
	out.AvgUtilization = sum / float64(len(out.Rows))
	return out, nil
}

// Render formats the result.
func (r *CheckingSpeedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checking speed: IPDS busy fraction (<1 means checking outpaces execution)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s busy %10d / %12d cycles = %.3f\n",
			row.Program, row.IPDSBusy, row.Cycles, row.Utilization)
	}
	fmt.Fprintf(&b, "  average utilization %.3f\n", r.AvgUtilization)
	return b.String()
}

// ComponentAblationResult measures how much each correlation-discovery
// component of the Figure 5 algorithm contributes to detection.
type ComponentAblationResult struct {
	Full        *Figure7Result // the complete algorithm
	NoStoreLoad *Figure7Result // store→load discovery disabled
	SelfOnly    *Figure7Result // only same-branch repetition correlations
	None        *Figure7Result // all discovery disabled (detector blind)
}

// AblationComponents runs the Figure 7 campaign under progressively
// weakened analyses.
func AblationComponents(attacks int, seed int64) (*ComponentAblationResult, error) {
	variant := func(cfg core.Config) (*Figure7Result, error) {
		return figure7Transformed(attacks, seed, ir.DefaultOptions,
			func(a *pipeline.Artifacts) (*pipeline.Artifacts, error) {
				return a.Rebuild(cfg)
			})
	}
	full, err := Figure7(attacks, seed)
	if err != nil {
		return nil, err
	}
	noSL, err := variant(core.Config{DisableStoreLoad: true})
	if err != nil {
		return nil, err
	}
	selfOnly, err := variant(core.Config{SelfOnly: true})
	if err != nil {
		return nil, err
	}
	none, err := variant(core.Config{DisableStoreLoad: true, DisableLoadLoad: true})
	if err != nil {
		return nil, err
	}
	return &ComponentAblationResult{
		Full: full, NoStoreLoad: noSL, SelfOnly: selfOnly, None: none,
	}, nil
}

// Render formats the component ablation.
func (r *ComponentAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Component ablation: detection vs analysis strength\n")
	fmt.Fprintf(&b, "  %-26s %12s %12s\n", "analysis", "CF-change %", "detected %")
	row := func(name string, f *Figure7Result) {
		fmt.Fprintf(&b, "  %-26s %11.1f%% %11.1f%%\n", name,
			100*f.AvgCFChange, 100*f.AvgDetected)
	}
	row("full algorithm", r.Full)
	row("no store→load", r.NoStoreLoad)
	row("self correlations only", r.SelfOnly)
	row("no correlations", r.None)
	return b.String()
}

// InliningExtensionResult measures the repository's future-work
// extension: inlining small leaf callees extends the function-local
// correlation analysis across former call boundaries (the paper
// explicitly avoids inter-procedural analysis; inlining recovers some
// of that precision with no new analysis machinery).
type InliningExtensionResult struct {
	Baseline *Figure7Result
	Inlined  *Figure7Result
	// Checked branches across all workload functions, before/after.
	BaselineChecked int
	InlinedChecked  int
	// Average per-function BAT bits, before/after (the cost side).
	BaselineBATBits float64
	InlinedBATBits  float64
}

// ExtensionInlining runs the detection campaign with and without the
// inliner and reports the precision/space trade.
func ExtensionInlining(attacks int, seed int64) (*InliningExtensionResult, error) {
	out := &InliningExtensionResult{}
	var err error
	out.Baseline, err = Figure7(attacks, seed)
	if err != nil {
		return nil, err
	}
	out.Inlined, err = figure7With(attacks, seed,
		ir.Options{Forwarding: true, InlineSmall: true})
	if err != nil {
		return nil, err
	}
	baseFns, inlFns := 0, 0
	for _, w := range workload.All() {
		base, err := compile(w.Source, ir.DefaultOptions)
		if err != nil {
			return nil, err
		}
		inl, err := compile(w.Source, ir.Options{Forwarding: true, InlineSmall: true})
		if err != nil {
			return nil, err
		}
		for _, ft := range base.Tables.Tables {
			out.BaselineChecked += ft.NumChecked()
		}
		for _, ft := range inl.Tables.Tables {
			out.InlinedChecked += ft.NumChecked()
		}
		// Function-weighted averages, matching Figure 8's aggregation.
		bs, is := base.Image.Sizes(), inl.Image.Sizes()
		out.BaselineBATBits += bs.AvgBATBits * float64(bs.Funcs)
		out.InlinedBATBits += is.AvgBATBits * float64(is.Funcs)
		baseFns += bs.Funcs
		inlFns += is.Funcs
	}
	out.BaselineBATBits /= float64(baseFns)
	out.InlinedBATBits /= float64(inlFns)
	return out, nil
}

// Render formats the extension result.
func (r *InliningExtensionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: inlining small leaf callees (cross-call correlations)\n")
	fmt.Fprintf(&b, "  %-22s %12s %12s %14s %8s %9s\n",
		"", "CF-change %", "detected %", "det/CF-chg %", "checked", "BAT bits")
	row := func(name string, f *Figure7Result, checked int, bat float64) {
		fmt.Fprintf(&b, "  %-22s %11.1f%% %11.1f%% %13.1f%% %8d %9.1f\n", name,
			100*f.AvgCFChange, 100*f.AvgDetected, 100*f.Conditional, checked, bat)
	}
	row("function-local (paper)", r.Baseline, r.BaselineChecked, r.BaselineBATBits)
	row("with inlining", r.Inlined, r.InlinedChecked, r.InlinedBATBits)
	return b.String()
}

// AblationResult contrasts detection with and without the aggressive
// register-promotion optimization (the paper: "compiler optimizations
// can remove some correlations, reducing the detection rate").
type AblationResult struct {
	Baseline *Figure7Result
	Promoted *Figure7Result
}

// AblationRegPromo runs Figure 7 twice: with the default pipeline and
// with extended-basic-block load promotion enabled.
func AblationRegPromo(attacks int, seed int64) (*AblationResult, error) {
	base, err := figure7With(attacks, seed, ir.DefaultOptions)
	if err != nil {
		return nil, err
	}
	promoted, err := figure7With(attacks, seed,
		ir.Options{Forwarding: true, RegionPromotion: true})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Baseline: base, Promoted: promoted}, nil
}

// Render formats the ablation.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: register promotion removes correlations\n")
	fmt.Fprintf(&b, "  %-24s %12s %12s\n", "", "CF-change %", "detected %")
	fmt.Fprintf(&b, "  %-24s %11.1f%% %11.1f%%\n", "default pipeline",
		100*r.Baseline.AvgCFChange, 100*r.Baseline.AvgDetected)
	fmt.Fprintf(&b, "  %-24s %11.1f%% %11.1f%%\n", "with region promotion",
		100*r.Promoted.AvgCFChange, 100*r.Promoted.AvgDetected)
	return b.String()
}
