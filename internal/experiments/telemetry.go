package experiments

// Telemetry for the experiments harness: an optional registry/tracer
// pair threaded through the figure regenerators, and an
// observability-driven per-workload report — the paper's §6 runtime
// quantities (checked-branch coverage, BAT walk traffic, spill rate)
// read back from a live metrics registry instead of ad-hoc counters.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/vm"
	"repro/internal/workload"
)

// telemetry is the harness-wide observability wiring. Both fields are
// nil-safe; SetTelemetry(nil, nil) turns everything off.
var telemetry struct {
	reg    *obs.Registry
	tracer *obs.Tracer
}

// SetTelemetry attaches a registry and tracer to every subsequent
// harness run: compile phases and per-workload experiment runs record
// spans, and instrumented machines feed the registry.
func SetTelemetry(reg *obs.Registry, tr *obs.Tracer) {
	telemetry.reg = reg
	telemetry.tracer = tr
}

func harnessTracer() *obs.Tracer { return telemetry.tracer }

// compile routes every harness compilation through the shared tracer.
func compile(src string, opts ir.Options) (*pipeline.Artifacts, error) {
	return pipeline.CompileTraced(src, opts, telemetry.tracer)
}

// TelemetryRow is one workload's observability-derived numbers: the
// per-workload table the paper's evaluation reports, read back from the
// metrics registry after an instrumented perf-session run.
type TelemetryRow struct {
	Program         string  `json:"program"`
	Branches        uint64  `json:"branches"`
	CheckedPct      float64 `json:"checked_pct"`           // verified / branches
	AvgBATPerBranch float64 `json:"avg_bat_per_branch"`    // BAT nodes walked / branch
	SpillPerKBranch float64 `json:"spills_per_k_branches"` // spill events per 1000 branches
	BranchesPerSec  float64 `json:"branches_per_sec"`      // wall-clock checking throughput
	Alarms          uint64  `json:"alarms"`
	AlarmsDropped   uint64  `json:"alarms_dropped"`
}

// TelemetryResult is the registry-snapshot report across workloads.
type TelemetryResult struct {
	Rows     []TelemetryRow
	Registry *obs.Registry
}

// TelemetryReport runs every workload's perf session on an instrumented
// machine and builds the per-workload table from the registry — the
// numbers flow source -> machine -> registry -> report, proving the
// full telemetry path end to end.
func TelemetryReport() (*TelemetryResult, error) {
	reg := telemetry.reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	out := &TelemetryResult{Registry: reg}
	for _, w := range workload.All() {
		stop := harnessTracer().Span("telemetry/" + w.Name)
		art, err := compile(w.Source, ir.DefaultOptions)
		if err != nil {
			stop()
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		vcfg := vm.DefaultConfig
		vcfg.RecordBranches = false
		v := vm.New(art.Prog, vcfg, w.PerfSession)
		m := ipds.New(art.Image, ipds.DefaultConfig)
		m.Instrument(reg, "workload", w.Name)
		ipds.Attach(v, m)
		start := time.Now()
		res := v.Run()
		elapsed := time.Since(start)
		stop()
		if res.Status != vm.Exited {
			return nil, fmt.Errorf("%s: run ended %v: %v", w.Name, res.Status, res.Fault)
		}

		n := func(base string) string { return obs.Name(base, "workload", w.Name) }
		branches := reg.Counter(n("ipds_branches_total")).Value()
		verified := reg.Counter(n("ipds_verified_total")).Value()
		bat := reg.Counter(n("ipds_bat_accesses_total")).Value()
		spills := reg.Counter(n("ipds_spill_events_total")).Value()
		row := TelemetryRow{
			Program:       w.Name,
			Branches:      branches,
			Alarms:        reg.Counter(n("ipds_alarms_total")).Value(),
			AlarmsDropped: reg.Counter(n("ipds_alarms_dropped_total")).Value(),
		}
		if branches > 0 {
			row.CheckedPct = float64(verified) / float64(branches)
			row.AvgBATPerBranch = float64(bat) / float64(branches)
			row.SpillPerKBranch = 1000 * float64(spills) / float64(branches)
		}
		if secs := elapsed.Seconds(); secs > 0 {
			row.BranchesPerSec = float64(branches) / secs
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the telemetry report.
func (r *TelemetryResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Telemetry: per-workload runtime coverage from the metrics registry\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %14s %14s %12s\n",
		"program", "branches", "checked %", "BAT/branch", "spills/kbr", "branches/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10d %9.1f%% %14.3f %14.3f %12.0f\n",
			row.Program, row.Branches, 100*row.CheckedPct,
			row.AvgBATPerBranch, row.SpillPerKBranch, row.BranchesPerSec)
	}
	return b.String()
}
