package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// buildStream encodes n batch frames of varying sizes (so the reader's
// frame buffer sees oscillating payload lengths) into one byte stream.
func buildStream(tb testing.TB, n int) []byte {
	tb.Helper()
	var stream []byte
	var err error
	for i := 0; i < n; i++ {
		evs := make([]Event, 0, 8)
		evs = append(evs, Event{Kind: EvEnter, PC: 0x1000})
		for j := 0; j < 1+i%7; j++ {
			evs = append(evs, Event{Kind: EvBranch, PC: 0x1000 + uint64(4*j), Taken: j%2 == 0})
		}
		evs = append(evs, Event{Kind: EvLeave})
		stream, err = Append(stream, Batch{Events: evs})
		if err != nil {
			tb.Fatalf("Append: %v", err)
		}
	}
	return stream
}

// TestReaderStreamDoesNotAllocPerFrame is the Reader buffer-churn
// regression gate: decoding a 10k-frame stream through NextInto must
// reuse the frame buffer and the caller's event slice, settling into
// (amortised) zero allocations per frame.
func TestReaderStreamDoesNotAllocPerFrame(t *testing.T) {
	const frames = 10000
	stream := buildStream(t, frames)
	src := bytes.NewReader(stream)
	rd := NewReader(src)
	var batch Batch

	allocs := testing.AllocsPerRun(1, func() {
		src.Reset(stream)
		// The Reader keeps its buffer across resets; only the bufio fill
		// path sees the new source.
		for {
			f, err := rd.NextInto(&batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("NextInto: %v", err)
			}
			if f.Type() != TypeBatch {
				t.Fatalf("unexpected %v frame", f.Type())
			}
		}
	})
	// Budget: far under one allocation per frame. The warm run performs
	// none, but AllocsPerRun rounds scheduling noise up.
	if allocs > 8 {
		t.Fatalf("decoding %d frames cost %.0f allocations (want ~0, i.e. none per frame)", frames, allocs)
	}
}

// TestDecodeBatchIntoMatchesDecode holds the reusing decoder to the
// allocating one, including capacity reuse across calls.
func TestDecodeBatchIntoMatchesDecode(t *testing.T) {
	var b Batch
	for _, f := range sampleFrames() {
		enc, err := Append(nil, f)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		payload := enc[4:]
		want, err := Decode(payload)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if want.Type() != TypeBatch {
			if err := DecodeBatchInto(payload, &b); err == nil {
				t.Errorf("DecodeBatchInto accepted a %v frame", want.Type())
			}
			continue
		}
		if err := DecodeBatchInto(payload, &b); err != nil {
			t.Fatalf("DecodeBatchInto: %v", err)
		}
		wb := want.(Batch)
		if b.TraceID != wb.TraceID || b.OriginNs != wb.OriginNs {
			t.Errorf("DecodeBatchInto trace = (%d, %d), want (%d, %d)",
				b.TraceID, b.OriginNs, wb.TraceID, wb.OriginNs)
		}
		if len(wb.Events) == 0 && len(b.Events) == 0 {
			continue
		}
		if !reflect.DeepEqual(b.Events, wb.Events) {
			t.Errorf("DecodeBatchInto = %+v, want %+v", b.Events, wb.Events)
		}
	}
}

// TestDecodeBatchIntoHostile mirrors the hostile-input contract of
// Decode for the reusing entry point.
func TestDecodeBatchIntoHostile(t *testing.T) {
	var b Batch
	cases := [][]byte{
		nil,
		{byte(TypeBatch)},
		{byte(TypeBatch), 0xff, 0xff, 0xff, 0xff, 0x7f}, // absurd count
		{byte(TypeBatch), 2, 0},                         // count exceeds payload
		{byte(TypeBatch), 1, 9},                         // unknown event kind
		{byte(TypeBatch), 1, 1, 1},                      // trace extension tag, no id
		{byte(TypeBatch), 1, 1, 1, 0},                   // trace extension with zero id
		{byte(TypeBatch), 1, 1, 1, 5},                   // trace extension id but no origin
		{byte(TypeAck), 1},                              // wrong frame type
	}
	for _, payload := range cases {
		if err := DecodeBatchInto(payload, &b); err == nil {
			t.Errorf("DecodeBatchInto(%v) accepted hostile input", payload)
		}
	}
}

// TestNextIntoMixedFrames checks that non-batch frames still arrive
// intact through the NextInto fast path.
func TestNextIntoMixedFrames(t *testing.T) {
	var stream []byte
	for _, f := range sampleFrames() {
		var err error
		stream, err = Append(stream, f)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	rd := NewReader(bytes.NewReader(stream))
	var b Batch
	for _, want := range sampleFrames() {
		f, err := rd.NextInto(&b)
		if err != nil {
			t.Fatalf("NextInto: %v", err)
		}
		if f.Type() != want.Type() {
			t.Fatalf("frame type = %v, want %v", f.Type(), want.Type())
		}
		if want.Type() == TypeBatch {
			wantEvs := want.(Batch).Events
			got := f.(*Batch).Events
			if len(got) != len(wantEvs) {
				t.Fatalf("batch events = %d, want %d", len(got), len(wantEvs))
			}
			for i := range got {
				if got[i] != wantEvs[i] {
					t.Fatalf("event %d = %+v, want %+v", i, got[i], wantEvs[i])
				}
			}
		} else if !reflect.DeepEqual(f, want) {
			t.Fatalf("frame = %+v, want %+v", f, want)
		}
	}
	if _, err := rd.NextInto(&b); err != io.EOF {
		t.Fatalf("tail = %v, want io.EOF", err)
	}
}
