package wire

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Canonical textual event form — the human-readable twin of the Batch
// frame encoding, written by `ipdsrun -eventfile` and consumed by
// `ipdsload -events-file`. One event per line:
//
//	enter 0x40       # function entry, hex code base
//	branch 0x4a T    # committed branch, hex PC, T = taken
//	branch 0x52 NT   # NT = not taken
//	leave            # function return
//
// Blank lines and lines starting with '#' are ignored; a trailing
// '#'-comment on an event line is not permitted (PCs are the only
// variable-width field, keeping the grammar trivially regular). The
// direction letters match the paper's (and tables.Status's) T/NT
// shorthand. Text ↔ wire round trips are byte-exact both ways; the
// golden test in text_test.go holds that.

// Text renders one event in the canonical textual form (without a
// trailing newline).
func (e Event) Text() string {
	switch e.Kind {
	case EvEnter:
		return fmt.Sprintf("enter %#x", e.PC)
	case EvLeave:
		return "leave"
	case EvBranch:
		dir := "NT"
		if e.Taken {
			dir = "T"
		}
		return fmt.Sprintf("branch %#x %s", e.PC, dir)
	}
	return fmt.Sprintf("?%d", e.Kind)
}

// ParseEventText parses one canonical event line (as produced by
// Event.Text). Leading/trailing space is ignored.
func ParseEventText(line string) (Event, error) {
	fields := strings.Fields(line)
	bad := func() (Event, error) {
		return Event{}, fmt.Errorf("wire: bad event line %q", strings.TrimSpace(line))
	}
	if len(fields) == 0 {
		return bad()
	}
	switch fields[0] {
	case "leave":
		if len(fields) != 1 {
			return bad()
		}
		return Event{Kind: EvLeave}, nil
	case "enter":
		if len(fields) != 2 {
			return bad()
		}
		pc, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return bad()
		}
		return Event{Kind: EvEnter, PC: pc}, nil
	case "branch":
		if len(fields) != 3 {
			return bad()
		}
		pc, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return bad()
		}
		switch fields[2] {
		case "T":
			return Event{Kind: EvBranch, PC: pc, Taken: true}, nil
		case "NT":
			return Event{Kind: EvBranch, PC: pc}, nil
		}
		return bad()
	}
	return bad()
}

// WriteEventsText writes events in canonical text, one per line.
func WriteEventsText(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range evs {
		if _, err := bw.WriteString(e.Text()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEventsText parses a canonical text event stream, skipping blank
// lines and '#' comment lines. Errors name the offending line number.
func ReadEventsText(r io.Reader) ([]Event, error) {
	var evs []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := ParseEventText(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}
