package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode is the native fuzz target behind `go test -fuzz=FuzzDecode
// ./internal/wire` (cmd/ipdsfuzz -wire runs the same property from a
// seeded generator for CI). Properties: Decode never panics, never
// over-allocates past the payload size, and every accepted frame
// re-encodes to a payload that decodes to the same frame (canonical
// form fixed point).
func FuzzDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		enc, err := Append(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc[4:])
	}
	f.Add([]byte{byte(TypeBatch), 0x80, 0x80, 0x04})
	f.Add([]byte{})
	// Trace-extension shapes: a traced batch, an unknown extension tag
	// (skipped, not refused), and truncated/zero-id hostile variants.
	f.Add([]byte{byte(TypeBatch), 1, 1, batchExtTrace, 5, 7})
	f.Add([]byte{byte(TypeBatch), 1, 1, 0xee, 1, 2, 3})
	f.Add([]byte{byte(TypeBatch), 1, 1, batchExtTrace})
	f.Add([]byte{byte(TypeBatch), 1, 1, batchExtTrace, 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := Decode(payload)

		// DecodeBatchInto must agree with Decode on every batch payload:
		// same accept/reject verdict, same events.
		var reused Batch
		intoErr := DecodeBatchInto(payload, &reused)
		if len(payload) > 0 && FrameType(payload[0]) == TypeBatch && len(payload) <= MaxFrame {
			if (err == nil) != (intoErr == nil) {
				t.Fatalf("Decode err=%v but DecodeBatchInto err=%v", err, intoErr)
			}
			if err == nil {
				wb := fr.(Batch)
				want := wb.Events
				if len(want) != len(reused.Events) {
					t.Fatalf("DecodeBatchInto decoded %d events, Decode %d", len(reused.Events), len(want))
				}
				for i := range want {
					if want[i] != reused.Events[i] {
						t.Fatalf("event %d: DecodeBatchInto %+v, Decode %+v", i, reused.Events[i], want[i])
					}
				}
				if reused.TraceID != wb.TraceID || reused.OriginNs != wb.OriginNs {
					t.Fatalf("DecodeBatchInto trace (%d, %d), Decode (%d, %d)",
						reused.TraceID, reused.OriginNs, wb.TraceID, wb.OriginNs)
				}
			}
		} else if intoErr == nil {
			t.Fatalf("DecodeBatchInto accepted a non-batch payload")
		}

		if err != nil {
			return
		}
		enc, err := Append(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %v does not re-encode: %v", fr.Type(), err)
		}
		again, err := Decode(enc[4:])
		if err != nil {
			t.Fatalf("re-encoded frame %v does not decode: %v", fr.Type(), err)
		}
		if !reflect.DeepEqual(fr, again) {
			t.Fatalf("decode/encode/decode not a fixed point: %#v vs %#v", fr, again)
		}
		// Canonical senders produce canonical bytes; a decoded frame
		// whose re-encoding is *shorter* than the input reveals a
		// redundant encoding the decoder should have refused (e.g.
		// non-minimal varints are tolerated, so only assert same-frame
		// equality, not byte equality, for fuzz inputs).
		_ = bytes.Equal(enc[4:], payload)
	})
}
