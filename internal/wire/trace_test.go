package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// TestBatchTraceRoundTrip pins the trace-extended Batch encoding: the
// extension survives Decode and DecodeBatchInto, and an untraced batch
// encodes byte-identically to the pre-extension protocol (the
// zero-cost default the serve path's alloc gate depends on).
func TestBatchTraceRoundTrip(t *testing.T) {
	evs := []Event{
		{Kind: EvEnter, PC: 0x40},
		{Kind: EvBranch, PC: 0x4a, Taken: true},
		{Kind: EvLeave},
	}
	traced := Batch{Events: evs, TraceID: 0x1234_5678_9abc, OriginNs: 1_700_000_000_000_000_001}
	enc := MustAppend(nil, traced)
	got, err := Decode(enc[4:])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, traced) {
		t.Fatalf("round trip: got %#v want %#v", got, traced)
	}

	var reused Batch
	if err := DecodeBatchInto(enc[4:], &reused); err != nil {
		t.Fatalf("DecodeBatchInto: %v", err)
	}
	if reused.TraceID != traced.TraceID || reused.OriginNs != traced.OriginNs {
		t.Fatalf("DecodeBatchInto trace = (%d, %d), want (%d, %d)",
			reused.TraceID, reused.OriginNs, traced.TraceID, traced.OriginNs)
	}

	// Untraced batches must not pay a byte: the encoding is identical
	// to a pre-extension sender's.
	plain := MustAppend(nil, Batch{Events: evs})
	var manual []byte
	manual = append(manual, byte(TypeBatch), 3)
	manual = append(manual, evEnter, 0x40, evBranchTaken, 0x4a, evLeave)
	if !bytes.Equal(plain[4:], manual) {
		t.Fatalf("untraced batch encoding changed:\n got %x\nwant %x", plain[4:], manual)
	}

	// Decoding an untraced frame into a previously-traced Batch must
	// reset the trace fields — the reader reuses one leased Batch.
	if err := DecodeBatchInto(plain[4:], &reused); err != nil {
		t.Fatalf("DecodeBatchInto(untraced): %v", err)
	}
	if reused.TraceID != 0 || reused.OriginNs != 0 {
		t.Fatalf("stale trace context survived reuse: (%d, %d)", reused.TraceID, reused.OriginNs)
	}
}

// TestBatchTraceExtensionSkipped pins the forward-compatibility valve:
// a decoder that does not understand an extension tag must still
// accept the events — so a future sender can extend the frame without
// breaking this receiver, exactly as this PR's traced sender relies on
// receivers skipping what they don't know.
func TestBatchTraceExtensionSkipped(t *testing.T) {
	payload := []byte{byte(TypeBatch), 2, evEnter, 0x40, evLeave,
		0x7e /* unknown tag */, 0xde, 0xad, 0xbe, 0xef}
	got, err := Decode(payload)
	if err != nil {
		t.Fatalf("Decode refused an unknown extension: %v", err)
	}
	b := got.(Batch)
	if len(b.Events) != 2 || b.TraceID != 0 || b.OriginNs != 0 {
		t.Fatalf("unknown extension leaked into the frame: %#v", b)
	}

	// Bytes behind a decoded trace block are also extension area.
	payload = []byte{byte(TypeBatch), 1, evLeave, batchExtTrace, 9, 11, 0xff, 0x00}
	got, err = Decode(payload)
	if err != nil {
		t.Fatalf("Decode refused bytes behind the trace block: %v", err)
	}
	b = got.(Batch)
	if b.TraceID != 9 || b.OriginNs != 11 {
		t.Fatalf("trace block misdecoded: %#v", b)
	}
}

// TestBatchTraceHostile pins total decoding of the extension on
// hostile input: truncated blocks and the non-canonical zero id are
// refused, for both decode entry points.
func TestBatchTraceHostile(t *testing.T) {
	cases := map[string][]byte{
		"tag only":         {byte(TypeBatch), 1, evLeave, batchExtTrace},
		"zero id":          {byte(TypeBatch), 1, evLeave, batchExtTrace, 0},
		"id, no origin":    {byte(TypeBatch), 1, evLeave, batchExtTrace, 5},
		"truncated id":     {byte(TypeBatch), 1, evLeave, batchExtTrace, 0xff},
		"truncated origin": {byte(TypeBatch), 1, evLeave, batchExtTrace, 5, 0x80},
	}
	var b Batch
	for name, payload := range cases {
		if _, err := Decode(payload); err == nil {
			t.Errorf("%s: Decode accepted hostile payload % x", name, payload)
		}
		if err := DecodeBatchInto(payload, &b); err == nil {
			t.Errorf("%s: DecodeBatchInto accepted hostile payload % x", name, payload)
		}
	}
}
