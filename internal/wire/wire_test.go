package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// sampleFrames covers every frame type with representative payloads.
func sampleFrames() []Frame {
	var img [HashLen]byte
	for i := range img {
		img[i] = byte(i * 7)
	}
	return []Frame{
		Hello{Version: Version, Image: img, Program: "telnetd"},
		Hello{Version: Version}, // empty program name
		HelloAck{Version: Version, MaxBatch: MaxBatch},
		Batch{Events: []Event{
			{Kind: EvEnter, PC: 0x40},
			{Kind: EvBranch, PC: 0x4a, Taken: true},
			{Kind: EvBranch, PC: 0x52},
			{Kind: EvLeave},
		}},
		Batch{}, // empty batch is legal
		Batch{Events: []Event{
			{Kind: EvEnter, PC: 0x40},
			{Kind: EvBranch, PC: 0x4a, Taken: true},
		}, TraceID: 0xdeadbeefcafe, OriginNs: 1_700_000_000_123_456_789},
		Batch{TraceID: 7, OriginNs: 1}, // traced empty batch is legal
		Alarm{Seq: 912, PC: 0x7fffffff12, Func: "handle_cmd", Slot: 13, Expected: 2, Taken: true},
		AlarmCtx{
			Seq:      912,
			Recorded: 5000,
			Stack:    []CtxFrame{{Base: 0x40, Func: "main"}, {Base: 0x90, Func: "handle_cmd"}, {Base: 0x200}},
			Recent: []CtxEvent{
				{Kind: EvEnter, Seq: 900, PC: 0x90, Depth: 2},
				{Kind: EvBranch, Seq: 901, PC: 0x9a, Depth: 2, Taken: true},
				{Kind: EvSpill, Seq: 901, PC: 4096, Depth: 2},
				{Kind: EvFill, Seq: 905, PC: 4096, Depth: 1},
				{Kind: EvLeave, Seq: 910, Depth: 1},
				{Kind: EvBranch, Seq: 912, PC: 0x7fffffff12, Depth: 1},
			},
			BSV: []uint8{0, 1, 2, 0},
		},
		AlarmCtx{Seq: 1}, // context with an empty window is legal
		Ack{Events: 1 << 40},
		Incident{
			ID: 1, ScoreMilli: 144_250, Alarms: 69632, Folded: 69000,
			Sessions: 4, Bursts: 4, PC: 0x7fffffff12,
			FirstSeq: 524288, LastSeq: 1 << 20, Func: "handle_cmd",
			Evidence: "69632 alarm(s) across 4 session(s) at handle_cmd@0x7fffffff12; 4 alarm-rate change-point(s)",
		},
		Incident{ID: 2}, // evidence-free incident is legal
		Error{Code: ErrUnknownImage, Msg: "no such image"},
		Bye{},
		ImageGet{Hash: img},
		ImageBlob{Hash: img, Data: []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}},
		ImageBlob{Hash: img}, // empty blob is legal on the wire
		ImageMissing{Hash: img},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		enc, err := Append(nil, f)
		if err != nil {
			t.Fatalf("Append(%v): %v", f.Type(), err)
		}
		got, err := Decode(enc[4:])
		if err != nil {
			t.Fatalf("Decode(%v): %v", f.Type(), err)
		}
		want := f
		if b, ok := want.(Batch); ok && b.Events == nil {
			// Decode materialises an empty (non-nil) slice.
			b.Events = []Event{}
			want = b
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %v: got %#v want %#v", f.Type(), got, want)
		}
	}
}

func TestReaderStream(t *testing.T) {
	var buf []byte
	frames := sampleFrames()
	for _, f := range frames {
		var err error
		buf, err = Append(buf, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(buf))
	for i, want := range frames {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("frame %d: got %v want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("stream end: got %v want io.EOF", err)
	}
}

func TestReaderMidFrameEOF(t *testing.T) {
	enc, _ := Append(nil, Ack{Events: 7})
	for cut := 1; cut < len(enc); cut++ {
		r := NewReader(bytes.NewReader(enc[:cut]))
		if _, err := r.Next(); err == nil {
			t.Fatalf("cut at %d: expected error", cut)
		}
	}
}

func TestDecodeHostile(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"unknown type":       {99},
		"zero type":          {0},
		"truncated hello":    {byte(TypeHello), Version, 1, 2, 3},
		"batch count lies":   append([]byte{byte(TypeBatch)}, 0xff, 0xff, 0x3f), // huge count, no events
		"batch bad kind":     {byte(TypeBatch), 1, 9},
		"alarm no func":      {byte(TypeAlarm), 1, 2, 3, 0, 1, 5},
		"trailing garbage":   {byte(TypeBye), 0},
		"helloack big batch": append([]byte{byte(TypeHelloAck), Version}, 0xff, 0xff, 0xff, 0xff, 0x7f),
		"string too long":    append([]byte{byte(TypeError), 1}, 0xff, 0xff, 0x7f),
		"ctx stack lies":     {byte(TypeAlarmCtx), 1, 0, 0xff, 0x7f},    // 16K stack frames, no bytes
		"ctx events lie":     {byte(TypeAlarmCtx), 1, 0, 0, 0xff, 0x1f}, // 4K events, no bytes
		"ctx bad kind":       {byte(TypeAlarmCtx), 1, 0, 0, 1, 9, 1, 1}, // event kind 9
		"ctx bsv truncated":  {byte(TypeAlarmCtx), 1, 0, 0, 0, 8, 1, 2}, // 8 BSV bytes, 2 present
		"ctx trailing":       {byte(TypeAlarmCtx), 1, 0, 0, 0, 0, 0xee}, // garbage after BSV
		"incident no func":   {byte(TypeIncident), 1, 1, 1, 1, 1, 1, 1, 1, 1, 5},
		"incident huge id":   append([]byte{byte(TypeIncident)}, 0xff, 0xff, 0xff, 0xff, 0x7f),
		"incident trailing":  {byte(TypeIncident), 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0xee},
		"imageget short":     append([]byte{byte(TypeImageGet)}, make([]byte, HashLen-1)...),
		"imageget trailing":  append([]byte{byte(TypeImageGet)}, make([]byte, HashLen+1)...),
		"imageblob no len":   append([]byte{byte(TypeImageBlob)}, make([]byte, HashLen)...),
		"imageblob lies":     append(append([]byte{byte(TypeImageBlob)}, make([]byte, HashLen)...), 0x80, 0x08), // 1K claimed, none present
		"imageblob too big":  append(append([]byte{byte(TypeImageBlob)}, make([]byte, HashLen)...), 0xff, 0xff, 0xff, 0x7f),
		"imagemissing short": {byte(TypeImageMissing), 1, 2, 3},
	}
	for name, payload := range cases {
		if _, err := Decode(payload); err == nil {
			t.Errorf("%s: Decode accepted hostile payload % x", name, payload)
		}
	}
}

// TestIncidentRoundTrip pins the Incident frame explicitly: generic
// Append, the no-boxing AppendIncident, and Decode must agree, and the
// encoders must refuse strings past MaxString.
func TestIncidentRoundTrip(t *testing.T) {
	in := Incident{
		ID: 3, ScoreMilli: 57_021, Alarms: 157, Folded: 12, Sessions: 3,
		Bursts: 1, PC: 0x10, FirstSeq: 1, LastSeq: 1048574, Func: "lib",
		Evidence: "157 alarm(s) across 3 session(s) at lib@0x10",
	}
	want := MustAppend(nil, in)
	got, err := AppendIncident([]byte{}, in)
	if err != nil {
		t.Fatalf("AppendIncident: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendIncident diverged from Append:\n got %x\nwant %x", got, want)
	}
	dec, err := Decode(want[4:])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(dec, in) {
		t.Fatalf("round trip: got %#v want %#v", dec, in)
	}
	if _, err := AppendIncident(nil, Incident{Func: strings.Repeat("f", MaxString+1)}); err == nil {
		t.Fatal("AppendIncident accepted an oversized func name")
	}
	if _, err := AppendIncident(nil, Incident{Evidence: strings.Repeat("e", MaxString+1)}); err == nil {
		t.Fatal("AppendIncident accepted oversized evidence")
	}
}

// TestImageFrameRoundTrip pins the registry frames explicitly: Decode
// must invert Append for every shape, the blob decoder must copy its
// data out of the payload (a registry reuses its read buffer between
// requests), and the encoder must refuse blobs past MaxImageBlob.
func TestImageFrameRoundTrip(t *testing.T) {
	var h [HashLen]byte
	for i := range h {
		h[i] = byte(255 - i)
	}
	for _, f := range []Frame{
		ImageGet{Hash: h},
		ImageMissing{Hash: h},
		ImageBlob{Hash: h, Data: bytes.Repeat([]byte{0xab, 0x3c}, 700)},
		ImageBlob{Hash: h},
	} {
		enc := MustAppend(nil, f)
		dec, err := Decode(enc[4:])
		if err != nil {
			t.Fatalf("Decode(%v): %v", f.Type(), err)
		}
		want := f
		if b, ok := want.(ImageBlob); ok && b.Data == nil {
			want = ImageBlob{Hash: b.Hash} // empty blob round-trips to nil Data
		}
		if !reflect.DeepEqual(dec, want) {
			t.Fatalf("round trip %v: got %#v want %#v", f.Type(), dec, want)
		}
		if b, ok := dec.(ImageBlob); ok && len(b.Data) > 0 {
			// Mutating the encoded payload must not reach the decoded blob.
			enc[4+1+HashLen+2] ^= 0xff
			if b.Data[0] != 0xab {
				t.Fatal("decoded blob aliases the frame payload")
			}
		}
	}
	if _, err := Append(nil, ImageBlob{Data: make([]byte, MaxImageBlob+1)}); err == nil {
		t.Fatal("Append accepted an oversized image blob")
	}
	if enc, err := Append(nil, ImageBlob{Data: make([]byte, MaxImageBlob)}); err != nil {
		t.Fatalf("Append refused a MaxImageBlob-sized blob: %v", err)
	} else if _, err := Decode(enc[4:]); err != nil {
		t.Fatalf("Decode refused a MaxImageBlob-sized blob: %v", err)
	}
}

// TestDecodeNoOverAllocate feeds a batch header whose count field
// claims 2^16 events backed by no bytes; the decoder must refuse
// before sizing any slice from the count.
func TestDecodeNoOverAllocate(t *testing.T) {
	payload := []byte{byte(TypeBatch), 0x80, 0x80, 0x04} // uvarint 65536
	if _, err := Decode(payload); err == nil {
		t.Fatal("decoder accepted batch count with no backing bytes")
	}
	if !testing.Short() {
		allocs := testing.AllocsPerRun(100, func() {
			Decode(payload)
		})
		if allocs > 4 { // the fmt.Errorf value, never a 64K event slice
			t.Fatalf("hostile count cost %v allocs", allocs)
		}
	}
}

func TestAppendLimits(t *testing.T) {
	if _, err := Append(nil, Batch{Events: make([]Event, MaxBatch+1)}); err == nil {
		t.Error("Append accepted oversized batch")
	}
	if _, err := Append(nil, Error{Msg: strings.Repeat("x", MaxString+1)}); err == nil {
		t.Error("Append accepted oversized message")
	}
	if _, err := Append(nil, Hello{Program: strings.Repeat("p", MaxString+1)}); err == nil {
		t.Error("Append accepted oversized program name")
	}
}

func TestAppendBatchesSplits(t *testing.T) {
	evs := make([]Event, 2500)
	for i := range evs {
		evs[i] = Event{Kind: EvBranch, PC: uint64(i), Taken: i%2 == 0}
	}
	buf := AppendBatches(nil, evs, 1000)
	r := NewReader(bytes.NewReader(buf))
	var got []Event
	var frames int
	for {
		f, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		got = append(got, f.(Batch).Events...)
	}
	if frames != 3 {
		t.Fatalf("got %d frames, want 3", frames)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("split batches did not reassemble the event stream")
	}
}

// TestDecodeRandomNeverPanics is the in-tree sibling of FuzzDecode:
// random and randomly mutated valid frames must never panic the
// decoder.
func TestDecodeRandomNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	valid, _ := Append(nil, Batch{Events: []Event{
		{Kind: EvEnter, PC: 0x40}, {Kind: EvBranch, PC: 0x44, Taken: true},
	}})
	for i := 0; i < 20000; i++ {
		var payload []byte
		if i%2 == 0 {
			payload = make([]byte, rng.Intn(64))
			rng.Read(payload)
		} else {
			payload = append([]byte(nil), valid[4:]...)
			for j := 0; j < 1+rng.Intn(4); j++ {
				payload[rng.Intn(len(payload))] ^= byte(1 << rng.Intn(8))
			}
			if rng.Intn(2) == 0 && len(payload) > 1 {
				payload = payload[:rng.Intn(len(payload))]
			}
		}
		Decode(payload) // must not panic
	}
}

// TestEventPCVarintWidths pins the decoder's unrolled one- and
// two-byte uvarint fast paths against PCs needing every varint width,
// including the seams (0x7f/0x80, 0x3fff/0x4000) where the fast path
// hands off to the generic fallback.
func TestEventPCVarintWidths(t *testing.T) {
	pcs := []uint64{
		0, 1, 0x7f, // one byte
		0x80, 0x1234, 0x3fff, // two bytes
		0x4000, 0x1fffff, // three bytes
		0x200000, 0xfffffff, // four bytes
		1 << 35, 1 << 56, ^uint64(0), // wide
	}
	var evs []Event
	for i, pc := range pcs {
		evs = append(evs,
			Event{Kind: EvEnter, PC: pc},
			Event{Kind: EvBranch, PC: pc, Taken: i%2 == 0},
			Event{Kind: EvLeave})
	}
	enc := MustAppend(nil, Batch{Events: evs})
	got, err := Decode(enc[4:])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, Batch{Events: evs}) {
		t.Fatalf("varint-width round trip diverged:\n got %#v\nwant %#v", got, evs)
	}

	// A continuation byte with nothing after it must fail, not read
	// past the payload: strip the final terminal byte of a wide PC.
	enc = MustAppend(nil, Batch{Events: []Event{{Kind: EvEnter, PC: 1 << 56}}})
	payload := enc[4 : len(enc)-1]
	if _, err := Decode(payload); err == nil {
		t.Fatal("Decode accepted a batch ending inside a varint PC")
	}
}

// TestAppendAlarmAckMatchAppend pins the no-boxing hot-path encoders
// to the generic Append byte for byte.
func TestAppendAlarmAckMatchAppend(t *testing.T) {
	al := Alarm{Seq: 912, PC: 0x7fffffff12, Func: "handle_cmd", Slot: 13, Expected: 2, Taken: true}
	want := MustAppend(nil, al)
	got, err := AppendAlarm([]byte{}, al)
	if err != nil {
		t.Fatalf("AppendAlarm: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendAlarm diverged from Append:\n got %x\nwant %x", got, want)
	}
	if _, err := AppendAlarm(nil, Alarm{Func: strings.Repeat("x", MaxString+1)}); err == nil {
		t.Fatal("AppendAlarm accepted an oversized func name")
	}

	ack := Ack{Events: 1 << 40}
	if got, want := AppendAck(nil, ack), MustAppend(nil, ack); !bytes.Equal(got, want) {
		t.Fatalf("AppendAck diverged from Append:\n got %x\nwant %x", got, want)
	}

	ctx := AlarmCtx{
		Seq:      912,
		Recorded: 77,
		Stack:    []CtxFrame{{Base: 0x40, Func: "main"}},
		Recent:   []CtxEvent{{Kind: EvBranch, Seq: 912, PC: 0x4a, Depth: 1, Taken: true}},
		BSV:      []uint8{1, 0},
	}
	want = MustAppend(nil, ctx)
	got, err = AppendAlarmCtx([]byte{}, ctx)
	if err != nil {
		t.Fatalf("AppendAlarmCtx: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendAlarmCtx diverged from Append:\n got %x\nwant %x", got, want)
	}
	if _, err := AppendAlarmCtx(nil, AlarmCtx{Recent: make([]CtxEvent, MaxCtxEvents+1)}); err == nil {
		t.Fatal("AppendAlarmCtx accepted an oversized event window")
	}
	if _, err := AppendAlarmCtx(nil, AlarmCtx{Stack: make([]CtxFrame, MaxCtxStack+1)}); err == nil {
		t.Fatal("AppendAlarmCtx accepted an oversized stack summary")
	}
	if _, err := AppendAlarmCtx(nil, AlarmCtx{BSV: make([]uint8, MaxCtxBSV+1)}); err == nil {
		t.Fatal("AppendAlarmCtx accepted an oversized BSV snapshot")
	}
}

// TestAppendAlarmAckNoAlloc holds the hot-path encoders to zero
// allocations once the destination has capacity.
func TestAppendAlarmAckNoAlloc(t *testing.T) {
	al := Alarm{Seq: 1, PC: 0x1234, Func: "f", Slot: 3, Expected: 1}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(100, func() {
		b, err := AppendAlarm(buf, al)
		if err != nil || len(b) == 0 {
			t.Fatal("AppendAlarm failed")
		}
		b = AppendAck(b[:0], Ack{Events: 99})
		_ = b
	}); n != 0 {
		t.Fatalf("alarm+ack encode allocates %v times per run, want 0", n)
	}
}
