// Package wire defines the ipdsd remote-attestation protocol: the
// compact length-prefixed binary frames a monitored process (or a
// replaying client) streams to a verification daemon, and the alarm /
// acknowledgement / error frames the daemon streams back.
//
// The protocol is deliberately minimal and one-directional per frame
// kind: a session opens with a Hello that names the table image the
// client was compiled against (by SHA-256 of the marshalled
// tables.Image, so the daemon can resolve a shared image without
// recompiling), the daemon answers with a HelloAck, and from then on
// the client sends Batch frames of branch events (function enter/leave
// plus committed conditional branches) while the daemon sends Alarm,
// Ack and Error frames. A Bye frame from the client asks for a graceful
// drain; the daemon replies with a final Ack and its own Bye once every
// queued event has been verified and every queued alarm delivered.
//
// Framing: every frame is a little-endian uint32 payload length
// followed by the payload; payload byte 0 is the FrameType. Integers
// inside payloads are unsigned varints (binary.AppendUvarint), which
// keeps batched branch events at ~3 bytes each for typical PCs.
//
// The package has no dependencies beyond the standard library and the
// decoder is pure: hostile, truncated or oversized input yields an
// error, never a panic and never an allocation proportional to an
// attacker-controlled count (counts are validated against the bytes
// actually present before any slice is sized). cmd/ipdsfuzz -wire and
// FuzzDecode hammer exactly that contract.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Version is the protocol version carried in Hello/HelloAck. A daemon
// refuses clients whose version it does not speak.
const Version = 1

// Wire limits. Decode enforces all three; Append* enforce them on the
// encoding side so a conforming sender cannot produce a frame a
// conforming receiver refuses.
const (
	// MaxFrame bounds one frame payload in bytes.
	MaxFrame = 1 << 20
	// MaxBatch bounds the events in one Batch frame.
	MaxBatch = 1 << 16
	// MaxString bounds program and function names.
	MaxString = 1 << 10
	// HashLen is the table-image content-hash length (SHA-256).
	HashLen = 32
	// MaxCtxEvents bounds the recent-event window in one AlarmCtx frame.
	MaxCtxEvents = 1 << 12
	// MaxCtxStack bounds the activation-stack summary in an AlarmCtx.
	MaxCtxStack = 1 << 9
	// MaxCtxBSV bounds the branch-status-vector snapshot in an AlarmCtx.
	MaxCtxBSV = 1 << 16
	// MaxImageBlob bounds the marshalled table image carried in one
	// ImageBlob frame, leaving header room inside MaxFrame.
	MaxImageBlob = MaxFrame - 64
)

// FrameType discriminates frame payloads (payload byte 0).
type FrameType uint8

// Frame types. Zero is reserved so an all-zero payload is invalid.
const (
	TypeHello    FrameType = 1 // client → server: open session
	TypeHelloAck FrameType = 2 // server → client: session accepted
	TypeBatch    FrameType = 3 // client → server: branch events
	TypeAlarm    FrameType = 4 // server → client: infeasible path
	TypeAck      FrameType = 5 // server → client: events verified so far
	TypeError    FrameType = 6 // server → client: refusal/eviction
	TypeBye      FrameType = 7 // either direction: graceful close
	TypeAlarmCtx FrameType = 8 // server → client: forensic context for an alarm
	TypeIncident FrameType = 9 // server → client: folded incident summary

	// Registry frames (PR 8): a fleet node that receives a Hello naming
	// an image hash it cannot resolve locally fetches the marshalled
	// image from a peer registry over the same wire protocol.
	TypeImageGet     FrameType = 10 // node → registry: fetch image by hash
	TypeImageBlob    FrameType = 11 // registry → node: the marshalled image
	TypeImageMissing FrameType = 12 // registry → node: hash unknown here
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeHelloAck:
		return "helloack"
	case TypeBatch:
		return "batch"
	case TypeAlarm:
		return "alarm"
	case TypeAck:
		return "ack"
	case TypeError:
		return "error"
	case TypeBye:
		return "bye"
	case TypeAlarmCtx:
		return "alarmctx"
	case TypeIncident:
		return "incident"
	case TypeImageGet:
		return "imageget"
	case TypeImageBlob:
		return "imageblob"
	case TypeImageMissing:
		return "imagemissing"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// EventKind discriminates branch-stream events.
type EventKind uint8

// Event kinds. On the wire the branch direction is folded into the
// kind byte (see evBranchTaken / evBranchNotTaken) so a branch event
// costs one byte of kind plus one varint of PC.
const (
	// EvEnter pushes the table frame of the function based at PC.
	EvEnter EventKind = iota
	// EvLeave pops the top table frame.
	EvLeave
	// EvBranch verifies one committed conditional branch at PC.
	EvBranch
	// EvSpill reports a table frame moving off-chip. Spill/fill kinds
	// appear only inside AlarmCtx recent-event windows — Batch frames
	// carry the client's committed stream, where spills do not exist.
	EvSpill
	// EvFill reports a spilled frame moving back on-chip (AlarmCtx only).
	EvFill
)

// String names the event kind ("enter", "leave", "branch", ...).
func (k EventKind) String() string {
	switch k {
	case EvEnter:
		return "enter"
	case EvLeave:
		return "leave"
	case EvBranch:
		return "branch"
	case EvSpill:
		return "spill"
	case EvFill:
		return "fill"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Wire encodings of one event's kind byte. The spill/fill codes are
// legal only inside AlarmCtx recent-event lists, never in a Batch.
const (
	evEnter          = 0
	evLeave          = 1
	evBranchTaken    = 2
	evBranchNotTaken = 3
	evSpill          = 4
	evFill           = 5
)

// batchExtTrace tags the optional trace-context extension block that
// may trail a Batch frame's event list: uvarint trace id (nonzero by
// construction — zero means "untraced" in the struct, so a zero id on
// the wire is refused as non-canonical) followed by uvarint origin
// timestamp (client clock, unix nanoseconds). The extension area is
// the batch frame's forward-compatibility valve: a decoder skips tags
// it does not know and any bytes behind the blocks it does, so a
// sender may extend the frame without breaking older receivers, and
// an untraced batch encodes byte-identically to the pre-extension
// protocol.
const batchExtTrace = 1

// Event is one branch-stream occurrence: a function entry (PC = code
// base), a function return, or a committed conditional branch
// (PC = branch address, Taken = direction). This is the unit the
// daemon feeds to ipds.Machine.EnterFunc/LeaveFunc/OnBranch.
type Event struct {
	Kind  EventKind
	PC    uint64
	Taken bool
}

// Frame is any decoded protocol frame.
type Frame interface {
	// Type returns the frame's wire type byte.
	Type() FrameType
}

// Hello opens a session: the protocol version, the SHA-256 of the
// marshalled table image the client's event stream must be verified
// against, and a free-form program name for diagnostics.
type Hello struct {
	Version uint8
	Image   [HashLen]byte
	Program string
}

// Type returns TypeHello.
func (Hello) Type() FrameType { return TypeHello }

// HelloAck accepts a session: the version the server speaks and the
// largest Batch it will accept.
type HelloAck struct {
	Version  uint8
	MaxBatch uint32
}

// Type returns TypeHelloAck.
func (HelloAck) Type() FrameType { return TypeHelloAck }

// Batch carries up to MaxBatch branch-stream events, optionally
// stamped with a sampled trace context (TraceID nonzero): the client's
// trace id and origin timestamp ride a trailing extension block, so
// the daemon can expand the batch into a per-stage latency span.
// TraceID zero means untraced — the batch then encodes byte-identically
// to the pre-extension protocol and the serve path spends nothing on
// it.
type Batch struct {
	Events []Event

	// TraceID is the sampled trace context's id; 0 = untraced (the
	// extension block is then not encoded at all).
	TraceID uint64

	// OriginNs is the client's send timestamp (unix nanoseconds on the
	// client's clock), meaningful only when TraceID is nonzero. The
	// wire leg of a span (client encode → daemon read) is derived from
	// it, so cross-host clock skew affects only that derived leg, never
	// the daemon-side stage ordering.
	OriginNs uint64
}

// Type returns TypeBatch.
func (Batch) Type() FrameType { return TypeBatch }

// Alarm reports one detected infeasible path, mirroring ipds.Alarm
// field for field (Expected is the tables.Status value).
type Alarm struct {
	Seq      uint64 // branch-event sequence number within the session
	PC       uint64
	Func     string
	Slot     uint32
	Expected uint8
	Taken    bool
}

// Type returns TypeAlarm.
func (Alarm) Type() FrameType { return TypeAlarm }

// CtxEvent is one entry of an AlarmCtx recent-event window: a replay of
// the committed events that led up to an alarm, as the verifier's
// flight recorder retained them. PC carries the function base (enter),
// the branch address (branch) or the bits moved (spill/fill); leave
// events carry no PC on the wire.
type CtxEvent struct {
	Seq   uint64 // branch-event sequence number at the event
	PC    uint64 // base / branch PC / bits moved, by kind
	Depth uint32 // table-stack depth after the event
	Kind  EventKind
	Taken bool // branch direction (EvBranch only)
}

// CtxFrame is one activation-stack entry of an AlarmCtx: the function
// base and (for table-carrying functions) its name; unprotected library
// frames have an empty name.
type CtxFrame struct {
	Base uint64
	Func string
}

// AlarmCtx is the optional forensic companion of an Alarm frame,
// paired by Seq: the flight-recorder window of committed events that
// led to the violation (oldest first, the violating branch last), the
// activation stack at the alarm (outermost first), and the alarming
// frame's branch-status vector as the BAT updates had left it.
// Recorded is the recorder's lifetime event count, so a consumer can
// tell how much history scrolled past the window.
type AlarmCtx struct {
	Seq      uint64 // Seq of the Alarm this context annotates
	Recorded uint64 // lifetime events seen by the recorder
	Stack    []CtxFrame
	Recent   []CtxEvent
	BSV      []uint8 // tables.Status per slot of the alarming frame
}

// Type returns TypeAlarmCtx.
func (AlarmCtx) Type() FrameType { return TypeAlarmCtx }

// Incident is one folded incident from the server's analytics stage,
// emitted (highest rank first) during the session's graceful drain so a
// client holding a storm of Alarm frames also receives the short ranked
// list underneath them. An Incident pairs with its Alarm/AlarmCtx
// frames by sequence range: the alarms it folds are exactly those with
// FirstSeq <= Seq <= LastSeq at PC. Score is fixed-point milli-units
// (ScoreMilli = round(score * 1000)) so the frame needs no float
// encoding; Evidence is the "; "-joined human-readable summary.
type Incident struct {
	ID         uint32 // 1-based rank in the server's incident list
	ScoreMilli uint64
	Alarms     uint64 // alarms folded into this incident
	Folded     uint64 // alarms removed by dedup alone
	Sessions   uint32 // sessions that saw the signal
	Bursts     uint32 // alarm-rate change-points detected
	PC         uint64 // branch address of the folded signal
	FirstSeq   uint64 // earliest folded alarm sequence number
	LastSeq    uint64 // latest folded alarm sequence number
	Func       string // enclosing function of the folded signal
	Evidence   string // "; "-joined evidence lines, MaxString-capped
}

// Type returns TypeIncident.
func (Incident) Type() FrameType { return TypeIncident }

// ImageGet asks a registry for the marshalled tables.Image whose
// SHA-256 is Hash — the same content address Hello carries, so a node
// can turn an unknown-image refusal into a fetch without recompiling.
type ImageGet struct {
	Hash [HashLen]byte
}

// Type returns TypeImageGet.
func (ImageGet) Type() FrameType { return TypeImageGet }

// ImageBlob answers an ImageGet with the marshalled image bytes. The
// hash is echoed so a fetcher multiplexing requests can pair replies,
// and so the receiver can (and must) verify SHA-256(Data) == Hash
// before trusting the blob.
type ImageBlob struct {
	Hash [HashLen]byte
	Data []byte
}

// Type returns TypeImageBlob.
func (ImageBlob) Type() FrameType { return TypeImageBlob }

// ImageMissing answers an ImageGet whose hash the registry does not
// hold (or whose blob exceeds MaxImageBlob). The fetcher moves on to
// the next peer.
type ImageMissing struct {
	Hash [HashLen]byte
}

// Type returns TypeImageMissing.
func (ImageMissing) Type() FrameType { return TypeImageMissing }

// Ack reports cumulative verification progress: the total number of
// events (of any kind) the server has fully processed on this session.
type Ack struct {
	Events uint64
}

// Type returns TypeAck.
func (Ack) Type() FrameType { return TypeAck }

// ErrCode classifies an Error frame.
type ErrCode uint8

// Error codes.
const (
	// ErrProtocol: malformed or out-of-order frame.
	ErrProtocol ErrCode = 1
	// ErrBadVersion: the Hello version is not spoken here.
	ErrBadVersion ErrCode = 2
	// ErrUnknownImage: the Hello image hash resolves to no table image.
	ErrUnknownImage ErrCode = 3
	// ErrIdle: the session sat idle past the server deadline.
	ErrIdle ErrCode = 4
	// ErrDraining: the server is shutting down.
	ErrDraining ErrCode = 5
)

// String names the error code.
func (c ErrCode) String() string {
	switch c {
	case ErrProtocol:
		return "protocol"
	case ErrBadVersion:
		return "bad-version"
	case ErrUnknownImage:
		return "unknown-image"
	case ErrIdle:
		return "idle"
	case ErrDraining:
		return "draining"
	}
	return fmt.Sprintf("err(%d)", uint8(c))
}

// Error is a server refusal, eviction notice or drain advisory. It is
// informational: for refusals and evictions the connection closes
// after the frame is delivered, while a mid-session ErrDraining frame
// announces a shutdown the client should react to (finish, drain,
// redial) with the session still live.
type Error struct {
	Code ErrCode
	Msg  string
}

// Type returns TypeError.
func (Error) Type() FrameType { return TypeError }

// Bye asks for (client → server) or announces (server → client) a
// graceful close.
type Bye struct{}

// Type returns TypeBye.
func (Bye) Type() FrameType { return TypeBye }

// Append encodes f as one length-prefixed frame appended to dst. It
// returns an error — leaving dst unusable — if the frame violates a
// wire limit (batch too large, string too long).
func Append(dst []byte, f Frame) ([]byte, error) {
	// Reserve the length prefix, encode the payload, then patch the
	// prefix in place.
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	var err error
	switch fr := f.(type) {
	case Hello:
		dst, err = appendHello(dst, fr)
	case HelloAck:
		dst = append(dst, byte(TypeHelloAck), fr.Version)
		dst = binary.AppendUvarint(dst, uint64(fr.MaxBatch))
	case Batch:
		dst, err = appendBatch(dst, fr)
	case Alarm:
		dst, err = appendAlarm(dst, fr)
	case AlarmCtx:
		dst, err = appendAlarmCtx(dst, fr)
	case Incident:
		dst, err = appendIncident(dst, fr)
	case Ack:
		dst = append(dst, byte(TypeAck))
		dst = binary.AppendUvarint(dst, fr.Events)
	case Error:
		dst, err = appendError(dst, fr)
	case Bye:
		dst = append(dst, byte(TypeBye))
	case ImageGet:
		dst = append(dst, byte(TypeImageGet))
		dst = append(dst, fr.Hash[:]...)
	case ImageBlob:
		dst, err = appendImageBlob(dst, fr)
	case ImageMissing:
		dst = append(dst, byte(TypeImageMissing))
		dst = append(dst, fr.Hash[:]...)
	default:
		err = fmt.Errorf("wire: cannot encode %T", f)
	}
	if err != nil {
		return nil, err
	}
	payload := len(dst) - start - 4
	if payload > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d exceeds MaxFrame", payload)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	return dst, nil
}

func appendHello(dst []byte, h Hello) ([]byte, error) {
	if len(h.Program) > MaxString {
		return nil, fmt.Errorf("wire: program name %d bytes exceeds MaxString", len(h.Program))
	}
	dst = append(dst, byte(TypeHello), h.Version)
	dst = append(dst, h.Image[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(h.Program)))
	return append(dst, h.Program...), nil
}

func appendBatch(dst []byte, b Batch) ([]byte, error) {
	if len(b.Events) > MaxBatch {
		return nil, fmt.Errorf("wire: batch of %d events exceeds MaxBatch", len(b.Events))
	}
	dst = append(dst, byte(TypeBatch))
	dst = binary.AppendUvarint(dst, uint64(len(b.Events)))
	for _, ev := range b.Events {
		switch ev.Kind {
		case EvEnter:
			dst = append(dst, evEnter)
			dst = binary.AppendUvarint(dst, ev.PC)
		case EvLeave:
			dst = append(dst, evLeave)
		case EvBranch:
			if ev.Taken {
				dst = append(dst, evBranchTaken)
			} else {
				dst = append(dst, evBranchNotTaken)
			}
			dst = binary.AppendUvarint(dst, ev.PC)
		default:
			return nil, fmt.Errorf("wire: cannot encode event kind %d", ev.Kind)
		}
	}
	if b.TraceID != 0 {
		dst = append(dst, batchExtTrace)
		dst = binary.AppendUvarint(dst, b.TraceID)
		dst = binary.AppendUvarint(dst, b.OriginNs)
	}
	return dst, nil
}

func appendAlarm(dst []byte, a Alarm) ([]byte, error) {
	if len(a.Func) > MaxString {
		return nil, fmt.Errorf("wire: func name %d bytes exceeds MaxString", len(a.Func))
	}
	dst = append(dst, byte(TypeAlarm))
	dst = binary.AppendUvarint(dst, a.Seq)
	dst = binary.AppendUvarint(dst, a.PC)
	dst = binary.AppendUvarint(dst, uint64(a.Slot))
	dst = append(dst, a.Expected)
	if a.Taken {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(a.Func)))
	return append(dst, a.Func...), nil
}

func appendAlarmCtx(dst []byte, c AlarmCtx) ([]byte, error) {
	if len(c.Stack) > MaxCtxStack {
		return nil, fmt.Errorf("wire: alarmctx stack of %d frames exceeds MaxCtxStack", len(c.Stack))
	}
	if len(c.Recent) > MaxCtxEvents {
		return nil, fmt.Errorf("wire: alarmctx window of %d events exceeds MaxCtxEvents", len(c.Recent))
	}
	if len(c.BSV) > MaxCtxBSV {
		return nil, fmt.Errorf("wire: alarmctx bsv of %d slots exceeds MaxCtxBSV", len(c.BSV))
	}
	dst = append(dst, byte(TypeAlarmCtx))
	dst = binary.AppendUvarint(dst, c.Seq)
	dst = binary.AppendUvarint(dst, c.Recorded)
	dst = binary.AppendUvarint(dst, uint64(len(c.Stack)))
	for _, fr := range c.Stack {
		if len(fr.Func) > MaxString {
			return nil, fmt.Errorf("wire: alarmctx func name %d bytes exceeds MaxString", len(fr.Func))
		}
		dst = binary.AppendUvarint(dst, fr.Base)
		dst = binary.AppendUvarint(dst, uint64(len(fr.Func)))
		dst = append(dst, fr.Func...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.Recent)))
	for _, ev := range c.Recent {
		switch ev.Kind {
		case EvEnter:
			dst = append(dst, evEnter)
		case EvLeave:
			dst = append(dst, evLeave)
		case EvBranch:
			if ev.Taken {
				dst = append(dst, evBranchTaken)
			} else {
				dst = append(dst, evBranchNotTaken)
			}
		case EvSpill:
			dst = append(dst, evSpill)
		case EvFill:
			dst = append(dst, evFill)
		default:
			return nil, fmt.Errorf("wire: cannot encode context event kind %d", ev.Kind)
		}
		dst = binary.AppendUvarint(dst, ev.Seq)
		dst = binary.AppendUvarint(dst, uint64(ev.Depth))
		if ev.Kind != EvLeave {
			dst = binary.AppendUvarint(dst, ev.PC)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.BSV)))
	return append(dst, c.BSV...), nil
}

func appendIncident(dst []byte, in Incident) ([]byte, error) {
	if len(in.Func) > MaxString {
		return nil, fmt.Errorf("wire: func name %d bytes exceeds MaxString", len(in.Func))
	}
	if len(in.Evidence) > MaxString {
		return nil, fmt.Errorf("wire: evidence %d bytes exceeds MaxString", len(in.Evidence))
	}
	dst = append(dst, byte(TypeIncident))
	dst = binary.AppendUvarint(dst, uint64(in.ID))
	dst = binary.AppendUvarint(dst, in.ScoreMilli)
	dst = binary.AppendUvarint(dst, in.Alarms)
	dst = binary.AppendUvarint(dst, in.Folded)
	dst = binary.AppendUvarint(dst, uint64(in.Sessions))
	dst = binary.AppendUvarint(dst, uint64(in.Bursts))
	dst = binary.AppendUvarint(dst, in.PC)
	dst = binary.AppendUvarint(dst, in.FirstSeq)
	dst = binary.AppendUvarint(dst, in.LastSeq)
	dst = binary.AppendUvarint(dst, uint64(len(in.Func)))
	dst = append(dst, in.Func...)
	dst = binary.AppendUvarint(dst, uint64(len(in.Evidence)))
	return append(dst, in.Evidence...), nil
}

func appendImageBlob(dst []byte, b ImageBlob) ([]byte, error) {
	if len(b.Data) > MaxImageBlob {
		return nil, fmt.Errorf("wire: image blob of %d bytes exceeds MaxImageBlob", len(b.Data))
	}
	dst = append(dst, byte(TypeImageBlob))
	dst = append(dst, b.Hash[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(b.Data)))
	return append(dst, b.Data...), nil
}

func appendError(dst []byte, e Error) ([]byte, error) {
	if len(e.Msg) > MaxString {
		return nil, fmt.Errorf("wire: error message %d bytes exceeds MaxString", len(e.Msg))
	}
	dst = append(dst, byte(TypeError), byte(e.Code))
	dst = binary.AppendUvarint(dst, uint64(len(e.Msg)))
	return append(dst, e.Msg...), nil
}

// AppendAlarm encodes a as one length-prefixed Alarm frame appended to
// dst without routing a through the Frame interface. The server calls
// this once per raised alarm on its verify hot path, where boxing the
// frame value would be the only allocation left; encoding and limits
// are exactly those of Append.
func AppendAlarm(dst []byte, a Alarm) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err := appendAlarm(dst, a)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst, nil
}

// AppendAlarmCtx encodes c as one length-prefixed AlarmCtx frame
// appended to dst without routing it through the Frame interface — the
// forensic counterpart of AppendAlarm on the server's alarm path.
func AppendAlarmCtx(dst []byte, c AlarmCtx) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err := appendAlarmCtx(dst, c)
	if err != nil {
		return nil, err
	}
	payload := len(dst) - start - 4
	if payload > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d exceeds MaxFrame", payload)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	return dst, nil
}

// AppendIncident encodes in as one length-prefixed Incident frame
// appended to dst without routing it through the Frame interface,
// matching the AppendAlarm/AppendAlarmCtx pattern the server's send
// path relies on to stay box-free.
func AppendIncident(dst []byte, in Incident) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err := appendIncident(dst, in)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst, nil
}

// AppendAck encodes a cumulative-progress Ack as one length-prefixed
// frame appended to dst, the no-boxing counterpart of AppendAlarm for
// the per-batch acknowledgement.
func AppendAck(dst []byte, a Ack) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(TypeAck))
	dst = binary.AppendUvarint(dst, a.Events)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// MustAppend is Append for frames known to respect the wire limits
// (server-constructed acks, byes, bounded batches). It panics on an
// encoding error, which for such frames means a programming bug.
func MustAppend(dst []byte, f Frame) []byte {
	out, err := Append(dst, f)
	if err != nil {
		panic(err)
	}
	return out
}

// AppendBatches splits evs into Batch frames of at most max events
// (max <= 0 or > MaxBatch selects MaxBatch) and appends them to dst.
func AppendBatches(dst []byte, evs []Event, max int) []byte {
	if max <= 0 || max > MaxBatch {
		max = MaxBatch
	}
	for len(evs) > 0 {
		n := len(evs)
		if n > max {
			n = max
		}
		dst = MustAppend(dst, Batch{Events: evs[:n]})
		evs = evs[n:]
	}
	return dst
}
