package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Decode parses one frame payload (the bytes after the length prefix).
// It is pure and total: any input — truncated, oversized, hostile —
// yields a frame or an error, never a panic, and no allocation is
// sized from an attacker-controlled count without first checking that
// the bytes backing that count are actually present.
func Decode(payload []byte) (Frame, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d exceeds MaxFrame", len(payload))
	}
	d := decoder{b: payload[1:]}
	switch t := FrameType(payload[0]); t {
	case TypeHello:
		return d.hello()
	case TypeHelloAck:
		return d.helloAck()
	case TypeBatch:
		return d.batch()
	case TypeAlarm:
		return d.alarm()
	case TypeAlarmCtx:
		return d.alarmCtx()
	case TypeIncident:
		return d.incident()
	case TypeAck:
		return d.ack()
	case TypeError:
		return d.errorFrame()
	case TypeBye:
		return d.done(Bye{})
	case TypeImageGet:
		return d.imageGet()
	case TypeImageBlob:
		return d.imageBlob()
	case TypeImageMissing:
		return d.imageMissing()
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", payload[0])
	}
}

// decoder is a bounds-checked cursor over one payload body.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) fail(what string) error {
	return fmt.Errorf("wire: truncated frame at %s", what)
}

func (d *decoder) u8(what string) (byte, error) {
	if d.off >= len(d.b) {
		return 0, d.fail(what)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, d.fail(what)
	}
	d.off += n
	return v, nil
}

// str reads a uvarint length and that many bytes, capped at MaxString.
func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > MaxString {
		return "", fmt.Errorf("wire: %s length %d exceeds MaxString", what, n)
	}
	if d.off+int(n) > len(d.b) {
		return "", d.fail(what)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// done rejects trailing garbage, which would otherwise let a sender
// smuggle bytes past version checks.
func (d *decoder) done(f Frame) (Frame, error) {
	if d.off != len(d.b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s frame", len(d.b)-d.off, f.Type())
	}
	return f, nil
}

func (d *decoder) hello() (Frame, error) {
	var h Hello
	v, err := d.u8("hello version")
	if err != nil {
		return nil, err
	}
	h.Version = v
	if d.off+HashLen > len(d.b) {
		return nil, d.fail("hello image hash")
	}
	copy(h.Image[:], d.b[d.off:])
	d.off += HashLen
	if h.Program, err = d.str("hello program"); err != nil {
		return nil, err
	}
	return d.done(h)
}

func (d *decoder) helloAck() (Frame, error) {
	var h HelloAck
	v, err := d.u8("helloack version")
	if err != nil {
		return nil, err
	}
	h.Version = v
	mb, err := d.uvarint("helloack maxbatch")
	if err != nil {
		return nil, err
	}
	if mb > MaxBatch {
		return nil, fmt.Errorf("wire: helloack maxbatch %d exceeds MaxBatch", mb)
	}
	h.MaxBatch = uint32(mb)
	return d.done(h)
}

func (d *decoder) batch() (Frame, error) {
	evs, err := d.events([]Event{}) // non-nil: an empty batch decodes to empty, not absent
	if err != nil {
		return nil, err
	}
	b := Batch{Events: evs}
	if err := d.batchExt(&b.TraceID, &b.OriginNs); err != nil {
		return nil, err
	}
	return d.done(b)
}

// batchExt decodes the optional extension area trailing a batch's
// event list. A trace block (batchExtTrace) fills tid/origin; an
// unknown leading tag — or any bytes behind a decoded block — is
// skipped, not refused: the extension area is the frame's
// forward-compatibility valve, so a decoder predating a tag still
// accepts the events it understands. Truncated known blocks and a
// zero trace id (non-canonical: zero means untraced and is then not
// encoded at all) are hostile and refused.
func (d *decoder) batchExt(tid, origin *uint64) error {
	if d.off >= len(d.b) {
		return nil
	}
	tag, err := d.u8("batch extension tag")
	if err != nil {
		return err
	}
	if tag == batchExtTrace {
		v, err := d.uvarint("batch trace id")
		if err != nil {
			return err
		}
		if v == 0 {
			return fmt.Errorf("wire: batch trace extension with zero id")
		}
		o, err := d.uvarint("batch trace origin")
		if err != nil {
			return err
		}
		*tid, *origin = v, o
	}
	d.off = len(d.b) // skip unknown tags and anything behind known blocks
	return nil
}

// events decodes a batch body, appending onto evs (which may be nil or
// a reused slice already truncated by the caller).
func (d *decoder) events(evs []Event) ([]Event, error) {
	n, err := d.uvarint("batch count")
	if err != nil {
		return nil, err
	}
	if n > MaxBatch {
		return nil, fmt.Errorf("wire: batch of %d events exceeds MaxBatch", n)
	}
	// Every event costs at least one byte, so a count exceeding the
	// remaining bytes is hostile; refusing here bounds the allocation
	// below by the actual payload size.
	if int(n) > len(d.b)-d.off {
		return nil, fmt.Errorf("wire: batch count %d exceeds payload", n)
	}
	if need := len(evs) + int(n); cap(evs) < need {
		grown := make([]Event, len(evs), need)
		copy(grown, evs)
		evs = grown
	}
	// The loop below is the server's per-event decode cost, so it works
	// on local cursor copies and unrolls the one- and two-byte uvarint
	// cases (instrumented PCs are small; multi-byte PCs take the
	// binary.Uvarint fallback). Semantics are identical to u8+uvarint.
	b := d.b
	off := d.off
	for i := uint64(0); i < n; i++ {
		if off >= len(b) {
			d.off = off
			return nil, d.fail("event kind")
		}
		k := b[off]
		off++
		if k == evLeave {
			evs = append(evs, Event{Kind: EvLeave})
			continue
		}
		if k > evBranchNotTaken {
			d.off = off
			return nil, fmt.Errorf("wire: unknown event kind %d", k)
		}
		var pc uint64
		if off < len(b) && b[off] < 0x80 {
			pc = uint64(b[off])
			off++
		} else if off+1 < len(b) && b[off+1] < 0x80 {
			pc = uint64(b[off]&0x7f) | uint64(b[off+1])<<7
			off += 2
		} else {
			v, m := binary.Uvarint(b[off:])
			if m <= 0 {
				d.off = off
				return nil, d.fail("event pc")
			}
			pc = v
			off += m
		}
		switch k {
		case evEnter:
			evs = append(evs, Event{Kind: EvEnter, PC: pc})
		case evBranchTaken:
			evs = append(evs, Event{Kind: EvBranch, PC: pc, Taken: true})
		default:
			evs = append(evs, Event{Kind: EvBranch, PC: pc})
		}
	}
	d.off = off
	return evs, nil
}

// DecodeBatchInto parses a Batch frame payload into *b, reusing the
// capacity of b.Events instead of allocating a fresh slice — the
// zero-allocation (steady-state) counterpart of Decode for the one
// frame kind that dominates a verification stream. The payload must be
// a TypeBatch frame; any other input yields an error and leaves b
// truncated but usable.
func DecodeBatchInto(payload []byte, b *Batch) error {
	b.Events = b.Events[:0]
	b.TraceID, b.OriginNs = 0, 0
	if len(payload) == 0 {
		return fmt.Errorf("wire: empty frame")
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds MaxFrame", len(payload))
	}
	if FrameType(payload[0]) != TypeBatch {
		return fmt.Errorf("wire: DecodeBatchInto on %s frame", FrameType(payload[0]))
	}
	d := decoder{b: payload[1:]}
	evs, err := d.events(b.Events)
	if err != nil {
		return err
	}
	if err := d.batchExt(&b.TraceID, &b.OriginNs); err != nil {
		return err
	}
	b.Events = evs
	return nil
}

func (d *decoder) alarm() (Frame, error) {
	var a Alarm
	var err error
	if a.Seq, err = d.uvarint("alarm seq"); err != nil {
		return nil, err
	}
	if a.PC, err = d.uvarint("alarm pc"); err != nil {
		return nil, err
	}
	slot, err := d.uvarint("alarm slot")
	if err != nil {
		return nil, err
	}
	if slot > 1<<31 {
		return nil, fmt.Errorf("wire: alarm slot %d out of range", slot)
	}
	a.Slot = uint32(slot)
	if a.Expected, err = d.u8("alarm expected"); err != nil {
		return nil, err
	}
	tk, err := d.u8("alarm taken")
	if err != nil {
		return nil, err
	}
	a.Taken = tk != 0
	if a.Func, err = d.str("alarm func"); err != nil {
		return nil, err
	}
	return d.done(a)
}

func (d *decoder) incident() (Frame, error) {
	var in Incident
	var err error
	id, err := d.uvarint("incident id")
	if err != nil {
		return nil, err
	}
	if id > 1<<31 {
		return nil, fmt.Errorf("wire: incident id %d out of range", id)
	}
	in.ID = uint32(id)
	if in.ScoreMilli, err = d.uvarint("incident score"); err != nil {
		return nil, err
	}
	if in.Alarms, err = d.uvarint("incident alarms"); err != nil {
		return nil, err
	}
	if in.Folded, err = d.uvarint("incident folded"); err != nil {
		return nil, err
	}
	sessions, err := d.uvarint("incident sessions")
	if err != nil {
		return nil, err
	}
	if sessions > 1<<31 {
		return nil, fmt.Errorf("wire: incident sessions %d out of range", sessions)
	}
	in.Sessions = uint32(sessions)
	bursts, err := d.uvarint("incident bursts")
	if err != nil {
		return nil, err
	}
	if bursts > 1<<31 {
		return nil, fmt.Errorf("wire: incident bursts %d out of range", bursts)
	}
	in.Bursts = uint32(bursts)
	if in.PC, err = d.uvarint("incident pc"); err != nil {
		return nil, err
	}
	if in.FirstSeq, err = d.uvarint("incident firstseq"); err != nil {
		return nil, err
	}
	if in.LastSeq, err = d.uvarint("incident lastseq"); err != nil {
		return nil, err
	}
	if in.Func, err = d.str("incident func"); err != nil {
		return nil, err
	}
	if in.Evidence, err = d.str("incident evidence"); err != nil {
		return nil, err
	}
	return d.done(in)
}

func (d *decoder) alarmCtx() (Frame, error) {
	var c AlarmCtx
	var err error
	if c.Seq, err = d.uvarint("alarmctx seq"); err != nil {
		return nil, err
	}
	if c.Recorded, err = d.uvarint("alarmctx recorded"); err != nil {
		return nil, err
	}

	nStack, err := d.uvarint("alarmctx stack count")
	if err != nil {
		return nil, err
	}
	if nStack > MaxCtxStack {
		return nil, fmt.Errorf("wire: alarmctx stack of %d frames exceeds MaxCtxStack", nStack)
	}
	// Every stack frame costs at least two bytes (base + name length);
	// a count past the remaining payload is hostile, and checking first
	// bounds the allocation below by the bytes actually present.
	if int(nStack) > len(d.b)-d.off {
		return nil, fmt.Errorf("wire: alarmctx stack count %d exceeds payload", nStack)
	}
	if nStack > 0 {
		c.Stack = make([]CtxFrame, 0, nStack)
	}
	for i := uint64(0); i < nStack; i++ {
		var fr CtxFrame
		if fr.Base, err = d.uvarint("alarmctx frame base"); err != nil {
			return nil, err
		}
		if fr.Func, err = d.str("alarmctx frame func"); err != nil {
			return nil, err
		}
		c.Stack = append(c.Stack, fr)
	}

	nEv, err := d.uvarint("alarmctx event count")
	if err != nil {
		return nil, err
	}
	if nEv > MaxCtxEvents {
		return nil, fmt.Errorf("wire: alarmctx window of %d events exceeds MaxCtxEvents", nEv)
	}
	if int(nEv) > len(d.b)-d.off {
		return nil, fmt.Errorf("wire: alarmctx event count %d exceeds payload", nEv)
	}
	if nEv > 0 {
		c.Recent = make([]CtxEvent, 0, nEv)
	}
	for i := uint64(0); i < nEv; i++ {
		k, err := d.u8("alarmctx event kind")
		if err != nil {
			return nil, err
		}
		if k > evFill {
			return nil, fmt.Errorf("wire: unknown context event kind %d", k)
		}
		var ev CtxEvent
		if ev.Seq, err = d.uvarint("alarmctx event seq"); err != nil {
			return nil, err
		}
		depth, err := d.uvarint("alarmctx event depth")
		if err != nil {
			return nil, err
		}
		if depth > 1<<31 {
			return nil, fmt.Errorf("wire: alarmctx event depth %d out of range", depth)
		}
		ev.Depth = uint32(depth)
		switch k {
		case evEnter:
			ev.Kind = EvEnter
		case evLeave:
			ev.Kind = EvLeave
		case evBranchTaken:
			ev.Kind, ev.Taken = EvBranch, true
		case evBranchNotTaken:
			ev.Kind = EvBranch
		case evSpill:
			ev.Kind = EvSpill
		case evFill:
			ev.Kind = EvFill
		}
		if ev.Kind != EvLeave {
			if ev.PC, err = d.uvarint("alarmctx event pc"); err != nil {
				return nil, err
			}
		}
		c.Recent = append(c.Recent, ev)
	}

	nBSV, err := d.uvarint("alarmctx bsv count")
	if err != nil {
		return nil, err
	}
	if nBSV > MaxCtxBSV {
		return nil, fmt.Errorf("wire: alarmctx bsv of %d slots exceeds MaxCtxBSV", nBSV)
	}
	if d.off+int(nBSV) > len(d.b) {
		return nil, d.fail("alarmctx bsv")
	}
	if nBSV > 0 {
		c.BSV = append([]uint8(nil), d.b[d.off:d.off+int(nBSV)]...)
		d.off += int(nBSV)
	}
	return d.done(c)
}

func (d *decoder) ack() (Frame, error) {
	var a Ack
	var err error
	if a.Events, err = d.uvarint("ack events"); err != nil {
		return nil, err
	}
	return d.done(a)
}

// hash reads the fixed-length content hash common to the registry
// frames.
func (d *decoder) hash(what string) ([HashLen]byte, error) {
	var h [HashLen]byte
	if d.off+HashLen > len(d.b) {
		return h, d.fail(what)
	}
	copy(h[:], d.b[d.off:])
	d.off += HashLen
	return h, nil
}

func (d *decoder) imageGet() (Frame, error) {
	h, err := d.hash("imageget hash")
	if err != nil {
		return nil, err
	}
	return d.done(ImageGet{Hash: h})
}

func (d *decoder) imageBlob() (Frame, error) {
	var b ImageBlob
	var err error
	if b.Hash, err = d.hash("imageblob hash"); err != nil {
		return nil, err
	}
	n, err := d.uvarint("imageblob length")
	if err != nil {
		return nil, err
	}
	if n > MaxImageBlob {
		return nil, fmt.Errorf("wire: image blob of %d bytes exceeds MaxImageBlob", n)
	}
	if d.off+int(n) > len(d.b) {
		return nil, d.fail("imageblob data")
	}
	if n > 0 {
		b.Data = append([]byte(nil), d.b[d.off:d.off+int(n)]...)
		d.off += int(n)
	}
	return d.done(b)
}

func (d *decoder) imageMissing() (Frame, error) {
	h, err := d.hash("imagemissing hash")
	if err != nil {
		return nil, err
	}
	return d.done(ImageMissing{Hash: h})
}

func (d *decoder) errorFrame() (Frame, error) {
	var e Error
	c, err := d.u8("error code")
	if err != nil {
		return nil, err
	}
	e.Code = ErrCode(c)
	if e.Msg, err = d.str("error message"); err != nil {
		return nil, err
	}
	return d.done(e)
}

// Reader decodes a stream of length-prefixed frames. The payload
// buffer is reused between frames and grows geometrically (capped at
// MaxFrame), so a long stream settles into zero per-frame buffer
// allocations no matter how frame sizes fluctuate; decoded frames
// never alias it (strings and event slices are copied out by Decode).
//
// Next is resumable: when a read fails with a temporary error — a
// poked or expiring net deadline, typically — partial header/payload
// progress is kept, and the following Next call continues the same
// frame instead of desynchronising the stream. The server relies on
// this to wake blocked readers during shutdown and still drain the
// bytes a client had in flight.
type Reader struct {
	br  *bufio.Reader
	buf []byte

	hdr  [4]byte
	hdrN int // header bytes read so far
	need int // payload length once the header is complete (0 = no frame open)
	got  int // payload bytes read so far
}

// NewReader wraps r in a buffered frame reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Buffered reports how many bytes are already pulled off the
// underlying connection and waiting in the reader's buffer. A caller
// that has just decoded a frame can keep decoding while Buffered is
// positive without risking a blocking read — the server's per-session
// readers use this to coalesce everything one socket read delivered
// into a single ring publish.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// minFrameBuf is the frame buffer's starting capacity; doubling from
// here reaches MaxFrame in a handful of growth steps.
const minFrameBuf = 4 << 10

// readFrame reads one length-prefixed payload into r.buf, resuming
// partial progress after a temporary error.
func (r *Reader) readFrame() error {
	for r.hdrN < 4 {
		n, err := r.br.Read(r.hdr[r.hdrN:])
		r.hdrN += n
		if err != nil && r.hdrN < 4 {
			if err == io.EOF && r.hdrN > 0 {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	if r.need == 0 {
		n := binary.LittleEndian.Uint32(r.hdr[:])
		if n == 0 {
			return fmt.Errorf("wire: zero-length frame")
		}
		if n > MaxFrame {
			return fmt.Errorf("wire: frame payload %d exceeds MaxFrame", n)
		}
		r.need = int(n)
		r.got = 0
		if cap(r.buf) < r.need {
			// Grow-capped reuse: at least double the old capacity (floor
			// minFrameBuf, ceiling MaxFrame) so oscillating frame sizes
			// cannot force an allocation per oversized frame.
			c := 2 * cap(r.buf)
			if c < minFrameBuf {
				c = minFrameBuf
			}
			if c < r.need {
				c = r.need
			}
			if c > MaxFrame {
				c = MaxFrame
			}
			r.buf = make([]byte, c)
		}
		r.buf = r.buf[:r.need]
	}
	for r.got < r.need {
		n, err := r.br.Read(r.buf[r.got:])
		r.got += n
		if err != nil && r.got < r.need {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	r.hdrN, r.need, r.got = 0, 0, 0
	return nil
}

// Next reads and decodes one frame. It returns io.EOF on a clean
// stream end between frames and io.ErrUnexpectedEOF on a stream that
// dies inside a frame. After a timeout error, calling Next again
// resumes the interrupted frame.
func (r *Reader) Next() (Frame, error) {
	if err := r.readFrame(); err != nil {
		return nil, err
	}
	return Decode(r.buf)
}

// NextHeader reads one frame and returns its type byte alongside the
// raw payload (type byte included), without decoding. The payload
// aliases the reader's internal buffer and is valid only until the
// following read. Callers that route or count certain frame kinds —
// the load generator counts forensic AlarmCtx frames without paying
// their decode — inspect the type and call Decode only when needed.
func (r *Reader) NextHeader() (FrameType, []byte, error) {
	if err := r.readFrame(); err != nil {
		return 0, nil, err
	}
	return FrameType(r.buf[0]), r.buf, nil
}

// NextInto is Next with an allocation-free fast path for Batch frames:
// a batch is decoded into *b — reusing b.Events' capacity — and b
// itself is returned as the Frame, so the dominant frame kind of a
// verification stream costs no per-frame slice or interface boxing.
// Other frame kinds fall back to Decode. The caller owns *b and must
// be done with it before the following NextInto call.
func (r *Reader) NextInto(b *Batch) (Frame, error) {
	if err := r.readFrame(); err != nil {
		return nil, err
	}
	if FrameType(r.buf[0]) == TypeBatch {
		if err := DecodeBatchInto(r.buf, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	return Decode(r.buf)
}
