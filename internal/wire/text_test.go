package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// goldenText is the canonical textual event form documented in text.go
// and DESIGN.md §7: the exact bytes `ipdsrun -eventfile` emits for the
// event sequence below. Changing the format is a wire-compatibility
// change and must update this golden alongside the docs.
const goldenText = `enter 0x40
branch 0x4a T
branch 0x52 NT
enter 0x80
branch 0x92 NT
leave
branch 0x4a T
leave
`

func goldenEvents() []Event {
	return []Event{
		{Kind: EvEnter, PC: 0x40},
		{Kind: EvBranch, PC: 0x4a, Taken: true},
		{Kind: EvBranch, PC: 0x52},
		{Kind: EvEnter, PC: 0x80},
		{Kind: EvBranch, PC: 0x92},
		{Kind: EvLeave},
		{Kind: EvBranch, PC: 0x4a, Taken: true},
		{Kind: EvLeave},
	}
}

// TestTextWireTextGolden is the satellite round trip: text → wire →
// text must reproduce the golden bytes, and wire → text → wire must
// reproduce the frame bytes.
func TestTextWireTextGolden(t *testing.T) {
	// text → events
	evs, err := ReadEventsText(strings.NewReader(goldenText))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, goldenEvents()) {
		t.Fatalf("parsed events mismatch:\n got %#v\nwant %#v", evs, goldenEvents())
	}

	// events → wire → events
	frame, err := Append(nil, Batch{Events: evs})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	got := decoded.(Batch).Events
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("wire round trip changed the event stream")
	}

	// events → text: byte-identical with the golden form.
	var buf bytes.Buffer
	if err := WriteEventsText(&buf, got); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenText {
		t.Fatalf("text round trip:\n got %q\nwant %q", buf.String(), goldenText)
	}

	// wire → text → wire: frame bytes identical.
	reframe, err := Append(nil, Batch{Events: got})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, reframe) {
		t.Fatal("re-encoded frame bytes differ")
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\n  enter 0x10\n\n# mid\nbranch 16 T\nleave\n"
	evs, err := ReadEventsText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{{Kind: EvEnter, PC: 0x10}, {Kind: EvBranch, PC: 16, Taken: true}, {Kind: EvLeave}}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("got %#v want %#v", evs, want)
	}
}

func TestTextRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"enter", "enter zz", "leave 0x10", "branch 0x10", "branch 0x10 X",
		"branch T", "jump 0x10", "branch 0x10 T extra",
	} {
		if _, err := ParseEventText(line); err == nil {
			t.Errorf("ParseEventText(%q) accepted malformed line", line)
		}
		if _, err := ReadEventsText(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ReadEventsText(%q) accepted malformed line", line)
		}
	}
}
