// Package cfg provides control-flow-graph algorithms over internal/ir
// functions: reverse postorder, dominators, the branch regions that the
// Branch Action Table construction attaches actions to, and path
// queries used by the correlation soundness checks.
package cfg

import "repro/internal/ir"

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder.
func ReversePostorder(f *ir.Func) []*ir.Block {
	seen := make([]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree holds immediate-dominator information for a function.
type DomTree struct {
	fn    *ir.Func
	idom  []*ir.Block // by block index; entry's idom is itself
	depth []int
}

// BuildDomTree computes dominators with the classic iterative
// Cooper–Harvey–Kennedy algorithm.
func BuildDomTree(f *ir.Func) *DomTree {
	rpo := ReversePostorder(f)
	rpoNum := make([]int, len(f.Blocks))
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b.Index] = i
	}
	idom := make([]*ir.Block, len(f.Blocks))
	idom[f.Entry.Index] = f.Entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for rpoNum[a.Index] > rpoNum[b.Index] {
				a = idom[a.Index]
			}
			for rpoNum[b.Index] > rpoNum[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == f.Entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if idom[p.Index] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}

	t := &DomTree{fn: f, idom: idom, depth: make([]int, len(f.Blocks))}
	for _, b := range rpo {
		if b == f.Entry {
			continue
		}
		t.depth[b.Index] = t.depth[idom[b.Index].Index] + 1
	}
	return t
}

// Idom returns the immediate dominator of b (entry for itself).
func (t *DomTree) Idom(b *ir.Block) *ir.Block { return t.idom[b.Index] }

// Dominates reports whether block a dominates block b.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if t.idom[b.Index] == nil {
		return false // b unreachable
	}
	for t.depth[b.Index] > t.depth[a.Index] {
		b = t.idom[b.Index]
	}
	return a == b
}

// InstrDominates reports whether instruction a dominates instruction b
// (a executes on every path reaching b). Within a block this is program
// order; across blocks it is block dominance.
func (t *DomTree) InstrDominates(a, b *ir.Instr) bool {
	if a.Blk == b.Blk {
		return a.ID < b.ID
	}
	return t.Dominates(a.Blk, b.Blk)
}

// Direction is a conditional-branch outcome.
type Direction int

// Branch directions.
const (
	Taken Direction = iota
	NotTaken
)

func (d Direction) String() string {
	if d == Taken {
		return "T"
	}
	return "NT"
}

// Other returns the opposite direction.
func (d Direction) Other() Direction { return 1 - d }

// Region is the straight-line code executed after a branch commits with
// a given direction, up to and including the next conditional branch.
// The runtime only observes branch outcomes, so every static effect in
// the region (stores, calls) is attributed to the region's originating
// (branch, direction) event.
//
// The entry region (From == nil) covers code executed before the first
// conditional branch of the function; it needs no kill actions because
// every BSV entry starts out UNKNOWN.
type Region struct {
	From *ir.Instr // originating branch, nil for the entry region
	Dir  Direction // meaningful when From != nil

	// Blocks are the region's blocks in execution order. A block can
	// belong to several regions (it may be reachable from several
	// branch edges through unconditional jumps).
	Blocks []*ir.Block

	// Term is the conditional branch ending the region, nil when the
	// region ends in a return or closes an unconditional cycle.
	Term *ir.Instr
}

// Regions computes the entry region plus one region per (conditional
// branch, direction) edge of f.
func Regions(f *ir.Func) []*Region {
	var out []*Region
	entry := walkRegion(nil, 0, f.Entry)
	out = append(out, entry)
	for _, br := range f.Branches() {
		out = append(out, walkRegion(br, Taken, br.Target))
		out = append(out, walkRegion(br, NotTaken, br.Else))
	}
	return out
}

// walkRegion follows unconditional control flow from start until a
// conditional branch, a return, or a revisited block (an unconditional
// infinite loop).
func walkRegion(from *ir.Instr, dir Direction, start *ir.Block) *Region {
	r := &Region{From: from, Dir: dir}
	seen := map[*ir.Block]bool{}
	b := start
	for b != nil && !seen[b] {
		seen[b] = true
		r.Blocks = append(r.Blocks, b)
		t := b.Term()
		if t == nil {
			break
		}
		switch t.Op {
		case ir.OpBr:
			r.Term = t
			return r
		case ir.OpJmp:
			b = t.Target
		default: // OpRet
			return r
		}
	}
	return r
}

// Instrs iterates the region's instructions in execution order.
func (r *Region) Instrs(yield func(*ir.Instr) bool) {
	for _, b := range r.Blocks {
		for _, in := range b.Instrs {
			if !yield(in) {
				return
			}
		}
	}
}

// Between returns the instructions that can execute strictly between
// stop and to on some path from stop to to that does not pass through
// stop again. It is used to check "no definition of v between the two
// accesses": when stop dominates to, the returned set covers every such
// path, including wrap-arounds through loops containing to.
//
// Precondition: to must be its block's terminator (the analysis only
// ever asks about branches); otherwise wrap-around paths through the
// tail of to's block would be missed.
func Between(stop, to *ir.Instr) []*ir.Instr {
	var out []*ir.Instr
	instrIdx := func(in *ir.Instr) int { return in.ID - in.Blk.Instrs[0].ID }

	// Partial backward scan of to's block above to.
	foundInFirst := false
	for i := instrIdx(to) - 1; i >= 0; i-- {
		in := to.Blk.Instrs[i]
		if in == stop {
			foundInFirst = true
			break
		}
		out = append(out, in)
	}
	if foundInFirst {
		return out
	}

	visited := map[*ir.Block]bool{to.Blk: true}
	var work []*ir.Block
	for _, p := range to.Blk.Preds {
		if !visited[p] {
			visited[p] = true
			work = append(work, p)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		containsStop := false
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in == stop {
				containsStop = true
				break
			}
			out = append(out, in)
		}
		if containsStop {
			continue
		}
		for _, p := range b.Preds {
			if !visited[p] {
				visited[p] = true
				work = append(work, p)
			}
		}
	}
	return out
}
