package cfg

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.Options{})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

const diamondSrc = `
int f(int x) {
	int r;
	if (x < 0) {
		r = 1;
	} else {
		r = 2;
	}
	return r;
}`

func TestReversePostorder(t *testing.T) {
	p := lower(t, diamondSrc)
	f := p.ByName["f"]
	rpo := ReversePostorder(f)
	if len(rpo) != len(f.Blocks) {
		t.Fatalf("rpo covers %d blocks, want %d", len(rpo), len(f.Blocks))
	}
	if rpo[0] != f.Entry {
		t.Error("rpo must start at entry")
	}
	// Every block appears exactly once.
	seen := map[*ir.Block]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Errorf("block b%d repeated", b.Index)
		}
		seen[b] = true
	}
	// RPO property: for acyclic graphs, preds come before succs.
	pos := map[*ir.Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	for _, b := range rpo {
		for _, s := range b.Succs {
			back := false
			// skip back edges (loops) — diamond has none
			if pos[s] <= pos[b] {
				back = true
			}
			if back {
				t.Errorf("b%d -> b%d violates RPO in acyclic CFG", b.Index, s.Index)
			}
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	p := lower(t, diamondSrc)
	f := p.ByName["f"]
	dt := BuildDomTree(f)
	br := f.Branches()[0]
	condBlk := br.Blk
	thenBlk, elseBlk := br.Target, br.Else
	// The join block is the one with two preds.
	var join *ir.Block
	for _, b := range f.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join block")
	}
	if !dt.Dominates(condBlk, thenBlk) || !dt.Dominates(condBlk, elseBlk) || !dt.Dominates(condBlk, join) {
		t.Error("cond block must dominate both arms and the join")
	}
	if dt.Dominates(thenBlk, join) || dt.Dominates(elseBlk, join) {
		t.Error("arms must not dominate the join")
	}
	if dt.Idom(join) != condBlk {
		t.Errorf("idom(join) = b%d, want b%d", dt.Idom(join).Index, condBlk.Index)
	}
	if !dt.Dominates(f.Entry, join) {
		t.Error("entry dominates everything")
	}
}

func TestDominatorsLoop(t *testing.T) {
	p := lower(t, `
		int f(int n) {
			int s;
			s = 0;
			while (n > 0) {
				s = s + n;
				n = n - 1;
			}
			return s;
		}`)
	f := p.ByName["f"]
	dt := BuildDomTree(f)
	br := f.Branches()[0]
	head := br.Blk
	body := br.Target
	exit := br.Else
	if !dt.Dominates(head, body) || !dt.Dominates(head, exit) {
		t.Error("loop head must dominate body and exit")
	}
	if dt.Dominates(body, exit) {
		t.Error("body must not dominate exit")
	}
	if !dt.Dominates(head, head) {
		t.Error("dominance is reflexive")
	}
}

func TestInstrDominatesSameBlock(t *testing.T) {
	p := lower(t, `int f(int x) { return x + 1; }`)
	f := p.ByName["f"]
	dt := BuildDomTree(f)
	ins := f.Entry.Instrs
	if !dt.InstrDominates(ins[0], ins[1]) {
		t.Error("earlier instr dominates later in same block")
	}
	if dt.InstrDominates(ins[1], ins[0]) {
		t.Error("later instr must not dominate earlier")
	}
}

func TestRegionsDiamond(t *testing.T) {
	p := lower(t, diamondSrc)
	f := p.ByName["f"]
	regs := Regions(f)
	// entry + 2 per branch
	if len(regs) != 1+2*len(f.Branches()) {
		t.Fatalf("regions = %d, want %d", len(regs), 1+2*len(f.Branches()))
	}
	entry := regs[0]
	if entry.From != nil {
		t.Error("first region must be the entry region")
	}
	if entry.Term == nil || entry.Term.Op != ir.OpBr {
		t.Error("entry region of diamond must end at the branch")
	}
	br := f.Branches()[0]
	for _, r := range regs[1:] {
		if r.From != br {
			t.Errorf("region from %v, want branch", r.From)
		}
		// Both arm regions flow through the join to the return: no
		// conditional terminator.
		if r.Term != nil {
			t.Errorf("arm region should end at return, got %v", r.Term)
		}
		if len(r.Blocks) < 2 {
			t.Errorf("arm region should include arm and join, got %d blocks", len(r.Blocks))
		}
	}
}

func TestRegionsLoopTerminates(t *testing.T) {
	// while(1) with no conditional branch inside: region walking must
	// not loop forever.
	p := lower(t, `void f() { int x; while (1) { x = x + 1; } }`)
	f := p.ByName["f"]
	regs := Regions(f)
	if len(regs) != 1 {
		t.Fatalf("regions = %d, want 1 (entry only)", len(regs))
	}
	if regs[0].Term != nil {
		t.Error("unconditional infinite loop region has no terminator")
	}
}

func TestRegionsChainThroughJoin(t *testing.T) {
	p := lower(t, `
		int g;
		int f(int x) {
			if (x < 0) { g = 1; } else { g = 2; }
			g = 3;
			if (x > 5) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	brs := f.Branches()
	if len(brs) != 2 {
		t.Fatalf("branches = %d, want 2", len(brs))
	}
	regs := Regions(f)
	// The taken region of the first branch must reach the second branch.
	var found bool
	for _, r := range regs {
		if r.From == brs[0] && r.Dir == Taken {
			found = true
			if r.Term != brs[1] {
				t.Errorf("region term = %v, want second branch", r.Term)
			}
		}
	}
	if !found {
		t.Fatal("missing taken region of first branch")
	}
}

func TestRegionInstrsIteration(t *testing.T) {
	p := lower(t, diamondSrc)
	f := p.ByName["f"]
	regs := Regions(f)
	n := 0
	regs[0].Instrs(func(in *ir.Instr) bool { n++; return true })
	if n == 0 {
		t.Error("entry region has no instructions?")
	}
	// Early stop.
	n = 0
	regs[0].Instrs(func(in *ir.Instr) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d, want 1", n)
	}
}

func TestBetweenStraightLine(t *testing.T) {
	p := lower(t, `
		int g;
		int f(int x) {
			g = x;
			g = x + 1;
			if (x < 0) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	var stores []*ir.Instr
	for _, in := range f.Instrs {
		if in.Op == ir.OpStore && in.IsDirectAccess() && f.Prog().Object(in.Obj).Kind == ir.ObjGlobal {
			stores = append(stores, in)
		}
	}
	if len(stores) != 2 {
		t.Fatalf("stores = %d, want 2", len(stores))
	}
	br := f.Branches()[0]
	// Between first store and branch includes the second store.
	between := Between(stores[0], br)
	has := func(set []*ir.Instr, in *ir.Instr) bool {
		for _, x := range set {
			if x == in {
				return true
			}
		}
		return false
	}
	if !has(between, stores[1]) {
		t.Error("second store must be between first store and branch")
	}
	// Between second store and branch excludes the first store.
	between2 := Between(stores[1], br)
	if has(between2, stores[0]) {
		t.Error("first store must not be between second store and branch")
	}
	if has(between2, br) {
		t.Error("Between is exclusive of the endpoints")
	}
}

func TestBetweenLoopWrapAround(t *testing.T) {
	// stop is the pre-loop store to g; the loop-body store lies on a
	// wrap-around path from stop to the head branch that never
	// re-passes stop, so it must be in the Between set.
	p := lower(t, `
		int g;
		void f(int n) {
			g = n;
			while (n > 0) {
				g = 5;
				n = n - 1;
			}
		}`)
	f := p.ByName["f"]
	br := f.Branches()[0]
	var gStores []*ir.Instr
	for _, in := range f.Instrs {
		if in.Op == ir.OpStore && in.IsDirectAccess() && f.Prog().Object(in.Obj).Kind == ir.ObjGlobal {
			gStores = append(gStores, in)
		}
	}
	if len(gStores) != 2 {
		t.Fatalf("stores to g = %d, want 2", len(gStores))
	}
	between := Between(gStores[0], br)
	found := false
	for _, in := range between {
		if in == gStores[1] {
			found = true
		}
	}
	if !found {
		t.Error("loop-body store missing from Between set (wrap-around path)")
	}
}

func TestBetweenSelfLoopExcludesRepass(t *testing.T) {
	// For a load feeding its own loop branch, every wrap path re-passes
	// the load, so Between contains only the in-block tail: the
	// loop-body defs are the kill mechanism's job, not Between's.
	p := lower(t, `
		int g;
		void f(int n) {
			while (n > 0) {
				g = 5;
				n = n - 1;
			}
		}`)
	f := p.ByName["f"]
	br := f.Branches()[0]
	nLoad := f.DefOf(br.A)
	if nLoad == nil || nLoad.Op != ir.OpLoad {
		t.Fatalf("branch operand def = %v, want load", nLoad)
	}
	for _, in := range Between(nLoad, br) {
		if in.Op == ir.OpStore {
			t.Errorf("unexpected store %v between load and its branch", in)
		}
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Taken.Other() != NotTaken || NotTaken.Other() != Taken {
		t.Error("Other is an involution")
	}
	if Taken.String() != "T" || NotTaken.String() != "NT" {
		t.Error("direction strings")
	}
}
