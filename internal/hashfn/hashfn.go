// Package hashfn implements the paper's collision-free branch-PC
// hashing (§5.2): a parameterisable hash built from shifts and XORs
// that the compiler tunes per function by trial and error so that no
// two branch PCs of the function collide. A collision-free hash lets
// the runtime tables omit tags entirely, which is where the small BSV
// and BCV sizes of Figure 8 come from.
package hashfn

import "fmt"

// Params is a chosen hash parameterisation. The hash operates on
// function-relative instruction indices ((pc-base)>>2) so slot counts
// track function size rather than absolute code addresses:
//
//	h(pc) = (x ^ x>>S1 ^ x>>S2) & (2^SizeLog2 - 1),  x = (pc-base)>>2
type Params struct {
	S1, S2   uint8
	SizeLog2 uint8
}

// Slots returns the hash space size.
func (p Params) Slots() int { return 1 << p.SizeLog2 }

// Slot maps a branch PC to its table slot.
func (p Params) Slot(base, pc uint64) int {
	x := (pc - base) >> 2
	h := x ^ (x >> p.S1) ^ (x >> p.S2)
	return int(h & uint64(p.Slots()-1))
}

// maxShift bounds the shift search space; shifts equal to 63 make the
// shifted term vanish for realistic code sizes, so the space always
// contains near-identity hashes.
const maxShift = 14

// Find searches for collision-free parameters for the given branch PCs
// (all within one function starting at base). It first tries the
// optimally sized hash space and enlarges it only when every shift
// combination collides, mirroring the compiler strategy in the paper.
// minLog2 lets callers impose a floor (0 for none).
func Find(base uint64, pcs []uint64, minLog2 uint8) (Params, error) {
	if len(pcs) == 0 {
		return Params{S1: 1, S2: 2, SizeLog2: minLog2}, nil
	}
	start := log2ceil(len(pcs))
	if start < minLog2 {
		start = minLog2
	}
	used := make(map[int]uint64, len(pcs))
	for size := start; size <= 30; size++ {
		for s1 := uint8(1); s1 <= maxShift; s1++ {
			for s2 := s1; s2 <= maxShift; s2++ {
				p := Params{S1: s1, S2: s2, SizeLog2: size}
				if collisionFree(p, base, pcs, used) {
					return p, nil
				}
			}
		}
	}
	return Params{}, fmt.Errorf("hashfn: no collision-free hash for %d branches", len(pcs))
}

func collisionFree(p Params, base uint64, pcs []uint64, used map[int]uint64) bool {
	for k := range used {
		delete(used, k)
	}
	for _, pc := range pcs {
		s := p.Slot(base, pc)
		if prev, ok := used[s]; ok && prev != pc {
			return false
		}
		used[s] = pc
	}
	return true
}

func log2ceil(n int) uint8 {
	l := uint8(0)
	for (1 << l) < n {
		l++
	}
	return l
}
