package hashfn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFindEmptyAndSingle(t *testing.T) {
	p, err := Find(0x1000, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != 1 {
		t.Errorf("empty function slots = %d, want 1", p.Slots())
	}
	p, err = Find(0x1000, []uint64{0x1010}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != 1 {
		t.Errorf("single branch slots = %d, want 1", p.Slots())
	}
	if got := p.Slot(0x1000, 0x1010); got != 0 {
		t.Errorf("slot = %d, want 0", got)
	}
}

func TestFindCollisionFree(t *testing.T) {
	base := uint64(0x2000)
	// Branches at irregular intervals, as in real code.
	pcs := []uint64{}
	for _, off := range []uint64{4, 12, 16, 36, 40, 52, 80, 100, 124, 160, 161 * 4} {
		pcs = append(pcs, base+off)
	}
	p, err := Find(base, pcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]uint64{}
	for _, pc := range pcs {
		s := p.Slot(base, pc)
		if s < 0 || s >= p.Slots() {
			t.Fatalf("slot %d out of range", s)
		}
		if prev, ok := seen[s]; ok {
			t.Fatalf("collision: %#x and %#x -> slot %d", prev, pc, s)
		}
		seen[s] = pc
	}
}

func TestFindDeterministic(t *testing.T) {
	base := uint64(0x3000)
	pcs := []uint64{base + 4, base + 20, base + 24, base + 48}
	p1, err1 := Find(base, pcs, 0)
	p2, err2 := Find(base, pcs, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if p1 != p2 {
		t.Errorf("Find not deterministic: %+v vs %+v", p1, p2)
	}
}

func TestFindMinLog2Floor(t *testing.T) {
	base := uint64(0x1000)
	pcs := []uint64{base + 4}
	p, err := Find(base, pcs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() < 16 {
		t.Errorf("slots = %d, want >= 16", p.Slots())
	}
}

// Property: Find always produces a collision-free assignment for
// random sets of distinct 4-aligned PCs.
func TestFindAlwaysCollisionFree(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 1
		base := uint64(0x1000)
		set := map[uint64]bool{}
		for len(set) < n {
			set[base+uint64(rng.Intn(4*n*8))*4] = true
		}
		pcs := make([]uint64, 0, n)
		for pc := range set {
			pcs = append(pcs, pc)
		}
		p, err := Find(base, pcs, 0)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, pc := range pcs {
			s := p.Slot(base, pc)
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimalSizePreferred(t *testing.T) {
	// Two branches that fit a 2-slot table must not get a huge table.
	base := uint64(0x1000)
	p, err := Find(base, []uint64{base, base + 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != 2 {
		t.Errorf("slots = %d, want 2", p.Slots())
	}
}
