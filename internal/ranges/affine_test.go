package ranges

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func lowerFwd(t *testing.T, src string) *ir.Program {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.Options{Forwarding: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func onlyBranch(t *testing.T, f *ir.Func) *ir.Instr {
	t.Helper()
	brs := f.Branches()
	if len(brs) != 1 {
		t.Fatalf("branches = %d, want 1", len(brs))
	}
	return brs[0]
}

func TestFromCond(t *testing.T) {
	cases := []struct {
		cond    ir.Cond
		k       int64
		taken   bool
		in, out []int64
	}{
		{ir.CondLt, 10, true, []int64{9, -5}, []int64{10, 11}},
		{ir.CondLt, 10, false, []int64{10, 11}, []int64{9}},
		{ir.CondLe, 10, true, []int64{10}, []int64{11}},
		{ir.CondGt, 10, true, []int64{11}, []int64{10}},
		{ir.CondGe, 10, false, []int64{9}, []int64{10}},
		{ir.CondEq, 5, true, []int64{5}, []int64{4, 6}},
		{ir.CondEq, 5, false, []int64{4, 6}, []int64{5}},
		{ir.CondNe, 5, true, []int64{4, 6}, []int64{5}},
		{ir.CondNe, 5, false, []int64{5}, []int64{4}},
	}
	for _, c := range cases {
		r := FromCond(c.cond, c.k, c.taken)
		for _, v := range c.in {
			if !r.Contains(v) {
				t.Errorf("FromCond(%v,%d,%v)=%v should contain %d", c.cond, c.k, c.taken, r, v)
			}
		}
		for _, v := range c.out {
			if r.Contains(v) {
				t.Errorf("FromCond(%v,%d,%v)=%v should not contain %d", c.cond, c.k, c.taken, r, v)
			}
		}
	}
}

func TestFromCondPartition(t *testing.T) {
	// Taken and not-taken ranges partition the integers.
	conds := []ir.Cond{ir.CondEq, ir.CondNe, ir.CondLt, ir.CondLe, ir.CondGt, ir.CondGe}
	for _, c := range conds {
		tr := FromCond(c, 7, true)
		nr := FromCond(c, 7, false)
		for v := int64(0); v < 15; v++ {
			if tr.Contains(v) == nr.Contains(v) {
				t.Errorf("cond %v: %d in both/neither of %v and %v", c, v, tr, nr)
			}
		}
	}
}

func TestDecomposeSimpleLoad(t *testing.T) {
	p := lowerFwd(t, `int f(int y) { if (y < 5) { return 1; } return 0; }`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	aff, ok := Decompose(f, br.A)
	if !ok {
		t.Fatal("decompose failed")
	}
	if aff.Neg || aff.Offset != 0 {
		t.Errorf("aff = %+v, want identity", aff)
	}
	// The root is the parameter spill's forwarded producer: OpParam.
	if aff.Root.Op != ir.OpParam {
		t.Errorf("root = %v", aff.Root)
	}
}

func TestDecomposeOffsetChain(t *testing.T) {
	// Figure 3.c shape: r1 = y - 1; branch on r1 < 10; root value is y's
	// load with offset -1.
	p := lowerFwd(t, `
		int g;
		int f() {
			int r1;
			r1 = g - 1;
			if (r1 < 10) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	aff, ok := Decompose(f, br.A)
	if !ok {
		t.Fatal("decompose failed")
	}
	if aff.Root.Op != ir.OpLoad {
		t.Fatalf("root = %v, want load of g", aff.Root)
	}
	if aff.Neg || aff.Offset != -1 {
		t.Errorf("aff = %+v, want offset -1", aff)
	}
}

func TestDecomposeNegation(t *testing.T) {
	p := lowerFwd(t, `
		int g;
		int f() {
			int r;
			r = 3 - g;
			if (r < 10) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	aff, ok := Decompose(f, br.A)
	if !ok {
		t.Fatal("decompose failed")
	}
	// value = 3 - g = -g + 3
	if !aff.Neg || aff.Offset != 3 {
		t.Errorf("aff = %+v, want neg with offset 3", aff)
	}
	// Check Apply/Invert round trip on semantics: g in [0,2] => value in [1,3].
	got := aff.Apply(Between(0, 2))
	if !got.Contains(1) || !got.Contains(3) || got.Contains(0) || got.Contains(4) {
		t.Errorf("Apply = %v, want [1,3]", got)
	}
	back := aff.Invert(got)
	if !back.Contains(0) || !back.Contains(2) || back.Contains(3) {
		t.Errorf("Invert = %v, want [0,2]", back)
	}
}

func TestDecomposeDoubleNegation(t *testing.T) {
	p := lowerFwd(t, `
		int g;
		int f() {
			int r;
			r = 0 - (0 - g - 2) + 1;
			if (r < 10) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	aff, ok := Decompose(f, br.A)
	if !ok {
		t.Fatal("decompose failed")
	}
	// r = -(-g-2)+1 = g+3
	if aff.Neg || aff.Offset != 3 {
		t.Errorf("aff = %+v, want +g+3", aff)
	}
}

func TestDecomposeNonAffineFails(t *testing.T) {
	p := lowerFwd(t, `
		int g;
		int f() {
			int r;
			r = g * 2;
			if (r < 10) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	aff, ok := Decompose(f, br.A)
	if ok && aff.Root.Op != ir.OpMul {
		t.Errorf("multiplication must stop the chain, got %+v ok=%v", aff, ok)
	}
	// The chain stops at the opaque multiply: allowed, but the root is
	// not a load, so correlation code will skip it.
	if ok && aff.Root.Op == ir.OpLoad {
		t.Error("g*2 must not decompose to a load root")
	}
}

func TestConstValue(t *testing.T) {
	p := lowerFwd(t, `int f() { if (3 < 10) { return 1; } return 0; }`)
	f := p.ByName["f"]
	// Constant condition still lowers to a branch (only IntLit direct
	// conditions fold); both operands are constants.
	br := onlyBranch(t, f)
	if v, ok := ConstValue(f, br.A); !ok || v != 3 {
		t.Errorf("ConstValue(A) = %d,%v", v, ok)
	}
	if v, ok := ConstValue(f, br.B); !ok || v != 10 {
		t.Errorf("ConstValue(B) = %d,%v", v, ok)
	}
}

func TestBranchConstraintBasic(t *testing.T) {
	p := lowerFwd(t, `
		int g;
		int f() {
			if (g < 5) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	c, ok := BranchConstraint(f, br)
	if !ok {
		t.Fatal("no constraint")
	}
	if c.Aff.Root.Op != ir.OpLoad {
		t.Fatalf("root = %v", c.Aff.Root)
	}
	if !c.Taken.Contains(4) || c.Taken.Contains(5) {
		t.Errorf("taken = %v, want (-inf,4]", c.Taken)
	}
	if !c.Not.Contains(5) || c.Not.Contains(4) {
		t.Errorf("not = %v, want [5,inf)", c.Not)
	}
	if got := c.RootRange(true); got != c.Taken {
		t.Errorf("RootRange(true) = %v", got)
	}
}

func TestBranchConstraintSwappedOperands(t *testing.T) {
	p := lowerFwd(t, `
		int g;
		int f() {
			if (5 < g) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	c, ok := BranchConstraint(f, br)
	if !ok {
		t.Fatal("no constraint")
	}
	// 5 < g taken means g >= 6.
	if !c.Taken.Contains(6) || c.Taken.Contains(5) {
		t.Errorf("taken = %v, want [6,inf)", c.Taken)
	}
}

func TestBranchConstraintOffset(t *testing.T) {
	// Figure 3.c: y<5 loaded, decremented, branch r1<10 — the root
	// (loaded y) range on taken is y<11.
	p := lowerFwd(t, `
		int g;
		int f() {
			int r1;
			r1 = g - 1;
			if (r1 < 10) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	c, ok := BranchConstraint(f, br)
	if !ok {
		t.Fatal("no constraint")
	}
	if !c.Taken.Contains(10) || c.Taken.Contains(11) {
		t.Errorf("taken root range = %v, want (-inf,10]", c.Taken)
	}
}

func TestBranchConstraintSetUnwrap(t *testing.T) {
	// Value-context comparison materialised with OpSet then branched on.
	p := lowerFwd(t, `
		int g;
		int f() {
			int ok;
			ok = g < 5;
			if (ok) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	c, got := BranchConstraint(f, br)
	if !got {
		t.Fatal("set-unwrap constraint failed")
	}
	if c.Aff.Root.Op != ir.OpLoad {
		t.Fatalf("root = %v, want load of g", c.Aff.Root)
	}
	if !c.Taken.Contains(4) || c.Taken.Contains(5) {
		t.Errorf("taken = %v, want (-inf,4]", c.Taken)
	}
}

func TestBranchConstraintSetUnwrapInverted(t *testing.T) {
	p := lowerFwd(t, `
		int g;
		int f() {
			int ok;
			ok = g < 5;
			if (!ok) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	c, got := BranchConstraint(f, br)
	if !got {
		t.Fatal("constraint failed")
	}
	// Lowering of !ok branches with inverted targets or an extra set;
	// either way the taken edge must get a coherent range. Verify the
	// two directions partition around 5.
	for v := int64(0); v < 10; v++ {
		if c.Taken.Contains(v) == c.Not.Contains(v) {
			t.Errorf("value %d in both/neither taken=%v not=%v", v, c.Taken, c.Not)
		}
	}
}

func TestBranchConstraintTwoVariablesFails(t *testing.T) {
	p := lowerFwd(t, `
		int a; int b;
		int f() {
			if (a < b) { return 1; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	if _, ok := BranchConstraint(f, br); ok {
		t.Error("two-variable compare must not produce a constraint")
	}
}

func TestSameRoot(t *testing.T) {
	p := lowerFwd(t, `
		int g;
		int f() {
			int a;
			a = g + 1;
			if (a < 5) { return g; }
			return 0;
		}`)
	f := p.ByName["f"]
	br := onlyBranch(t, f)
	a1, ok1 := Decompose(f, br.A)
	if !ok1 {
		t.Fatal("decompose branch operand")
	}
	a2 := a1
	if !a1.SameRoot(a2) {
		t.Error("identical affines share a root")
	}
	var empty Affine
	if empty.SameRoot(a1) || a1.SameRoot(empty) {
		t.Error("nil roots never match")
	}
}
