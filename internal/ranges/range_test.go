package ranges

import (
	"math"
	"testing"
	"testing/quick"
)

func TestContains(t *testing.T) {
	cases := []struct {
		r    Range
		in   []int64
		out  []int64
		name string
	}{
		{AtMost(4), []int64{4, 0, -100, math.MinInt64}, []int64{5, 100}, "(-inf,4]"},
		{AtLeast(4), []int64{4, 5, math.MaxInt64}, []int64{3, -1}, "[4,inf)"},
		{Between(2, 5), []int64{2, 3, 5}, []int64{1, 6}, "[2,5]"},
		{Point(7), []int64{7}, []int64{6, 8}, "[7,7]"},
		{NotEqual(3), []int64{2, 4, math.MinInt64}, []int64{3}, "!=3"},
		{Full(), []int64{0, math.MinInt64, math.MaxInt64}, nil, "full"},
		{EmptyRange(), nil, []int64{0, 1}, "empty"},
	}
	for _, c := range cases {
		for _, v := range c.in {
			if !c.r.Contains(v) {
				t.Errorf("%s should contain %d", c.name, v)
			}
		}
		for _, v := range c.out {
			if c.r.Contains(v) {
				t.Errorf("%s should not contain %d", c.name, v)
			}
		}
	}
}

func TestBetweenInverted(t *testing.T) {
	if Between(5, 2).Kind != Empty {
		t.Error("inverted interval must be empty")
	}
}

func TestSubsetOf(t *testing.T) {
	yes := [][2]Range{
		{AtMost(4), AtMost(9)},          // y<5 subsumes y<10 (paper example)
		{Between(0, 5), Between(0, 10)}, // [0,5] subsumes [0,10]
		{Point(3), Between(0, 10)},
		{Point(3), NotEqual(4)},
		{Between(1, 2), NotEqual(0)},
		{EmptyRange(), Point(9)},
		{NotEqual(3), NotEqual(3)},
		{NotEqual(3), Full()},
		{AtLeast(5), AtLeast(5)},
		{Full(), Full()},
		{AtMost(3), Full()},
	}
	no := [][2]Range{
		{AtMost(10), AtMost(4)},
		{Between(0, 10), Between(0, 5)},
		{NotEqual(3), NotEqual(4)},
		{NotEqual(3), AtMost(100)},
		{Full(), AtMost(3)},
		{Point(4), NotEqual(4)},
		{AtMost(4), AtLeast(0)},
		{Point(1), EmptyRange()},
		{AtLeast(0), Between(0, 10)},
	}
	for _, c := range yes {
		if !c[0].SubsetOf(c[1]) {
			t.Errorf("%v should be subset of %v", c[0], c[1])
		}
	}
	for _, c := range no {
		if c[0].SubsetOf(c[1]) {
			t.Errorf("%v should not be subset of %v", c[0], c[1])
		}
	}
}

// Property: if a ⊆ b then every sampled member of a is in b.
func TestSubsetConsistentWithMembership(t *testing.T) {
	mk := func(kind uint8, a, b int64) Range {
		switch kind % 6 {
		case 0:
			return AtMost(a % 100)
		case 1:
			return AtLeast(a % 100)
		case 2:
			lo, hi := a%100, b%100
			if lo > hi {
				lo, hi = hi, lo
			}
			return Between(lo, hi)
		case 3:
			return NotEqual(a % 100)
		case 4:
			return Full()
		default:
			return Point(a % 100)
		}
	}
	prop := func(k1, k2 uint8, a1, b1, a2, b2, probe int64) bool {
		r1, r2 := mk(k1, a1, b1), mk(k2, a2, b2)
		v := probe % 150
		if r1.SubsetOf(r2) && r1.Contains(v) && !r2.Contains(v) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: Shift preserves membership: v in r iff v+d in r.Shift(d)
// (modulo conservative widening, which only adds members).
func TestShiftMembership(t *testing.T) {
	prop := func(lo, hi, v, d int64) bool {
		lo, hi, v, d = lo%1000, hi%1000, v%2000, d%1000
		if lo > hi {
			lo, hi = hi, lo
		}
		r := Between(lo, hi)
		if r.Contains(v) && !r.Shift(d).Contains(v+d) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestShiftForms(t *testing.T) {
	r := Between(2, 5).Shift(3)
	if !r.Contains(5) || !r.Contains(8) || r.Contains(4) || r.Contains(9) {
		t.Errorf("[2,5]+3 = %v", r)
	}
	if got := NotEqual(4).Shift(-4); !got.Contains(1) || got.Contains(0) {
		t.Errorf("(!=4)-4 = %v", got)
	}
	if got := EmptyRange().Shift(10); got.Kind != Empty {
		t.Error("empty shifts to empty")
	}
	if got := AtMost(3).Shift(2); !got.Contains(5) || got.Contains(6) {
		t.Errorf("(-inf,3]+2 = %v", got)
	}
}

func TestShiftOverflowWidens(t *testing.T) {
	r := AtMost(math.MaxInt64 - 1).Shift(10)
	if r.HiSet {
		t.Errorf("overflowing shift must widen, got %v", r)
	}
	// Widening is conservative: the range still contains everything the
	// true result would.
	if !r.Contains(math.MaxInt64) {
		t.Error("widened range lost members")
	}
	ex := NotEqual(math.MaxInt64).Shift(5)
	if !ex.IsFull() {
		t.Errorf("overflowing exclude must widen to full, got %v", ex)
	}
}

func TestNeg(t *testing.T) {
	r := Between(2, 5).Neg()
	if !r.Contains(-2) || !r.Contains(-5) || r.Contains(-1) || r.Contains(-6) {
		t.Errorf("-[2,5] = %v", r)
	}
	am := AtMost(3).Neg() // -x for x<=3 is x>=-3
	if !am.Contains(-3) || !am.Contains(100) || am.Contains(-4) {
		t.Errorf("-(-inf,3] = %v", am)
	}
	if got := NotEqual(7).Neg(); !got.Contains(7) || got.Contains(-7) {
		t.Errorf("-(!=7) = %v", got)
	}
	if got := NotEqual(math.MinInt64).Neg(); !got.IsFull() {
		t.Errorf("negating exclude(min) must widen, got %v", got)
	}
	if got := EmptyRange().Neg(); got.Kind != Empty {
		t.Error("empty negates to empty")
	}
}

func TestNegMembershipProperty(t *testing.T) {
	prop := func(lo, hi, v int64) bool {
		lo, hi, v = lo%1000, hi%1000, v%2000
		if lo > hi {
			lo, hi = hi, lo
		}
		r := Between(lo, hi)
		return r.Contains(v) == r.Neg().Contains(-v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRangeString(t *testing.T) {
	cases := map[string]Range{
		"∅":            EmptyRange(),
		"≠3":           NotEqual(3),
		"[2, 5]":       Between(2, 5),
		"(-inf, 4]":    AtMost(4),
		"[-7, +inf)":   AtLeast(-7),
		"(-inf, +inf)": Full(),
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", r, got, want)
		}
	}
}
