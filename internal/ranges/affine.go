package ranges

import "repro/internal/ir"

// FromCond returns the set of x for which `x cond k` has the given
// outcome.
func FromCond(cond ir.Cond, k int64, taken bool) Range {
	if !taken {
		cond = cond.Negate()
	}
	switch cond {
	case ir.CondEq:
		return Point(k)
	case ir.CondNe:
		return NotEqual(k)
	case ir.CondLt:
		if k == -1<<63 {
			return EmptyRange()
		}
		return AtMost(k - 1)
	case ir.CondLe:
		return AtMost(k)
	case ir.CondGt:
		if k == 1<<63-1 {
			return EmptyRange()
		}
		return AtLeast(k + 1)
	case ir.CondGe:
		return AtLeast(k)
	}
	return Full()
}

// Affine describes a register value as ±root + offset, where root is
// the value produced by the Root instruction (typically a load). The
// decomposition walks the unique def chain that single-assignment
// registers guarantee.
type Affine struct {
	Root   *ir.Instr
	Neg    bool
	Offset int64
}

// Decompose resolves register r in f to an affine form. It follows
// moves, negation, and additions/subtractions with constant operands,
// stopping at the first "opaque" producer (load, call, param, set, ...).
// ok is false when the chain uses non-affine arithmetic or overflows.
//
// The walk maintains the invariant value = sign·x + Offset, where x is
// the value of the register currently being chased.
func Decompose(f *ir.Func, r ir.Reg) (Affine, bool) {
	var aff Affine
	for range f.Instrs { // bounded walk; def chains are acyclic
		def := f.DefOf(r)
		if def == nil {
			return aff, false
		}
		switch def.Op {
		case ir.OpMov:
			r = def.A
		case ir.OpNeg:
			// x = -y: sign flips, offset unchanged.
			aff.Neg = !aff.Neg
			r = def.A
		case ir.OpAdd:
			// x = y + c: value = sign·y + (Offset + sign·c).
			if c, ok := ConstValue(f, def.B); ok {
				if !aff.accumulate(c) {
					return aff, false
				}
				r = def.A
				continue
			}
			if c, ok := ConstValue(f, def.A); ok {
				if !aff.accumulate(c) {
					return aff, false
				}
				r = def.B
				continue
			}
			return aff, false
		case ir.OpSub:
			// x = y - c: value = sign·y + (Offset - sign·c).
			if c, ok := ConstValue(f, def.B); ok {
				if c == -1<<63 || !aff.accumulate(-c) {
					return aff, false
				}
				r = def.A
				continue
			}
			// x = c - y: offset gains sign·c, then sign flips.
			if c, ok := ConstValue(f, def.A); ok {
				if !aff.accumulate(c) {
					return aff, false
				}
				aff.Neg = !aff.Neg
				r = def.B
				continue
			}
			return aff, false
		default:
			aff.Root = def
			return aff, true
		}
	}
	return aff, false
}

// accumulate adds sign·c to the affine's offset, failing on overflow.
func (a *Affine) accumulate(c int64) bool {
	if a.Neg {
		if c == -1<<63 {
			return false
		}
		c = -c
	}
	s, ok := addSat(a.Offset, c)
	if !ok {
		return false
	}
	a.Offset = s
	return true
}

// Apply maps a range of the root value to the range of the affine value
// (value = ±root + offset).
func (a Affine) Apply(root Range) Range {
	if a.Neg {
		root = root.Neg()
	}
	return root.Shift(a.Offset)
}

// Invert maps a range of the affine value back to the range of the root
// value.
func (a Affine) Invert(value Range) Range {
	r := value.Shift(-a.Offset)
	if a.Neg {
		r = r.Neg()
	}
	return r
}

// SameRoot reports whether two affine forms share a root instruction.
func (a Affine) SameRoot(b Affine) bool { return a.Root != nil && a.Root == b.Root }

// ConstValue resolves register r to a compile-time constant, following
// moves.
func ConstValue(f *ir.Func, r ir.Reg) (int64, bool) {
	for range f.Instrs {
		def := f.DefOf(r)
		if def == nil {
			return 0, false
		}
		switch def.Op {
		case ir.OpConst:
			return def.Imm, true
		case ir.OpMov:
			r = def.A
		default:
			return 0, false
		}
	}
	return 0, false
}

// Constraint is the range view of a conditional branch: the branch
// compares an affine function of Root's value against a constant, so
// each direction confines the root value to a range.
type Constraint struct {
	Branch *ir.Instr
	Aff    Affine
	Taken  Range // root value range when the branch is taken
	Not    Range // root value range when it is not taken
}

// RootRange returns the root-value range for a direction (taken=true
// for the taken edge).
func (c Constraint) RootRange(taken bool) Range {
	if taken {
		return c.Taken
	}
	return c.Not
}

// BranchConstraint analyses a conditional branch `A cond B`. It
// succeeds when one side is affine in some root value and the other is
// constant, possibly after unwrapping a comparison materialised by
// OpSet (`br (a<b) != 0` is rewritten to `br a<b`).
func BranchConstraint(f *ir.Func, br *ir.Instr) (Constraint, bool) {
	if br.Op != ir.OpBr {
		return Constraint{}, false
	}
	cond, a, b := br.Cond, br.A, br.B
	flip := false

	// Unwrap `set` producers: br (x cond2 y) != 0  ==  br x cond2 y.
	for {
		ca, aOK := ConstValue(f, a)
		cb, bOK := ConstValue(f, b)
		var setSide ir.Reg
		var zeroOther bool
		switch {
		case bOK && cb == 0:
			setSide, zeroOther = a, true
		case aOK && ca == 0:
			setSide, zeroOther = b, true
			cond = cond.Swap()
		}
		if !zeroOther || (cond != ir.CondNe && cond != ir.CondEq) {
			break
		}
		def := chaseMov(f, setSide)
		if def == nil || def.Op != ir.OpSet {
			break
		}
		// set yields 1 when its condition holds; != 0 keeps polarity,
		// == 0 inverts it.
		if cond == ir.CondEq {
			flip = !flip
		}
		cond, a, b = def.Cond, def.A, def.B
	}

	if k, ok := ConstValue(f, b); ok {
		if aff, ok := Decompose(f, a); ok {
			return makeConstraint(br, aff, cond, k, flip), true
		}
		return Constraint{}, false
	}
	if k, ok := ConstValue(f, a); ok {
		if aff, ok := Decompose(f, b); ok {
			return makeConstraint(br, aff, cond.Swap(), k, flip), true
		}
	}
	return Constraint{}, false
}

func makeConstraint(br *ir.Instr, aff Affine, cond ir.Cond, k int64, flip bool) Constraint {
	taken := FromCond(cond, k, !flip)
	not := FromCond(cond, k, flip)
	return Constraint{
		Branch: br,
		Aff:    aff,
		Taken:  aff.Invert(taken),
		Not:    aff.Invert(not),
	}
}

func chaseMov(f *ir.Func, r ir.Reg) *ir.Instr {
	for range f.Instrs {
		def := f.DefOf(r)
		if def == nil {
			return nil
		}
		if def.Op != ir.OpMov {
			return def
		}
		r = def.A
	}
	return nil
}
